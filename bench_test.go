package flywheel

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus ablation benches for the design knobs
// DESIGN.md calls out. Each benchmark regenerates its experiment at a
// reduced instruction budget and reports the headline numbers through
// b.ReportMetric, so `go test -bench . -benchmem` doubles as a smoke-test
// of the whole reproduction pipeline.
//
// For full-budget tables, use cmd/experiments.

import (
	"fmt"
	"testing"

	"flywheel/internal/cacti"
	"flywheel/internal/core"
	"flywheel/internal/emu"
	"flywheel/internal/experiments"
	"flywheel/internal/sim"
	"flywheel/internal/stats"
	"flywheel/internal/workload"
)

// benchBudget keeps the per-run instruction count small enough that the
// whole harness finishes in a few minutes.
const benchBudget = 40_000

func benchOptions() experiments.Options {
	return experiments.Options{Instructions: benchBudget, Node: cacti.Node130}
}

// BenchmarkFigure1 regenerates the latency-scaling curves (analytic).
func BenchmarkFigure1(b *testing.B) {
	var last *stats.Table
	for i := 0; i < b.N; i++ {
		last = experiments.Figure1()
	}
	iw := cacti.IssueWindowLatency(128, 6, cacti.Node60)
	cache := cacti.CacheLatency(64<<10, 2, 1, cacti.Node60)
	b.ReportMetric(cache/iw, "cache/IW-latency-at-60nm")
	_ = last
}

// BenchmarkTable1 regenerates the module-frequency table and reports the
// worst-case deviation from the paper's published values.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table1()
	}
	worst := 0.0
	for node, paper := range cacti.PaperTable1 {
		model := cacti.Table1(node)
		for _, pair := range [][2]float64{
			{model.IssueWindow, paper.IssueWindow},
			{model.ICache, paper.ICache},
			{model.DCache, paper.DCache},
			{model.RegFile, paper.RegFile},
			{model.ExecutionCache, paper.ExecutionCache},
			{model.FlywheelRegFile, paper.FlywheelRegFile},
		} {
			err := pair[0]/pair[1] - 1
			if err < 0 {
				err = -err
			}
			if err > worst {
				worst = err
			}
		}
	}
	b.ReportMetric(worst*100, "worst-error-%")
}

// BenchmarkFigure2 measures the pipelining-sensitivity study.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, tbl, "fe-stage-loss-%", "wakeup-select-loss-%")
	}
}

// BenchmarkFigure11 measures the equal-clock comparison.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure11(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, tbl, "regalloc-normperf", "flywheel-normperf")
	}
}

// sweepOnce runs the shared Figure 12-14 measurement.
func sweepOnce(b *testing.B) *experiments.SweepData {
	b.Helper()
	d, err := experiments.Sweep(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkFigure12 measures the performance sweep (FE x BE+50%).
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := sweepOnce(b)
		tbl := d.Figure12()
		reportAverages(b, tbl, "normperf-FE0", "normperf-FE25", "normperf-FE50",
			"normperf-FE75", "normperf-FE100")
	}
}

// BenchmarkFigure13 measures the energy sweep.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := sweepOnce(b)
		tbl := d.Figure13()
		reportAverages(b, tbl, "normenergy-FE0", "normenergy-FE25",
			"normenergy-FE50", "normenergy-FE75", "normenergy-FE100")
	}
}

// BenchmarkFigure14 measures the power sweep.
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := sweepOnce(b)
		tbl := d.Figure14()
		reportAverages(b, tbl, "normpower-FE0", "normpower-FE25",
			"normpower-FE50", "normpower-FE75", "normpower-FE100")
	}
}

// BenchmarkFigure15 measures the energy-vs-node study.
func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure15(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, tbl, "normenergy-130nm", "normenergy-90nm", "normenergy-60nm")
	}
}

// reportAverages pulls the trailing "average" row of an experiment table
// into benchmark metrics.
func reportAverages(b *testing.B, tbl *stats.Table, names ...string) {
	b.Helper()
	if len(tbl.Rows) == 0 {
		b.Fatal("empty experiment table")
	}
	avg := tbl.Rows[len(tbl.Rows)-1]
	for i, name := range names {
		if i+1 >= len(avg) || avg[i+1] == "" {
			continue
		}
		var v float64
		if _, err := fmtSscan(avg[i+1], &v); err == nil {
			b.ReportMetric(v, name)
		}
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out ---

// ablationRun measures one Flywheel configuration on one benchmark and
// returns execution time in picoseconds.
func ablationRun(b *testing.B, bench string, mutate func(*core.Config)) float64 {
	b.Helper()
	w := workload.MustGet(bench)
	m, err := w.NewMachine()
	if err != nil {
		b.Fatal(err)
	}
	stream := emu.NewStream(m, m.Retired+benchBudget)
	cfg := core.DefaultConfig()
	cfg.BasePeriodPS = cacti.BaselinePeriodPS(cacti.Node130)
	cfg.FEBoostPct, cfg.BEBoostPct = 50, 50
	cfg.MaxCycles = 100_000_000
	if mutate != nil {
		mutate(&cfg)
	}
	c := core.New(cfg, stream)
	st, err := c.Run()
	if err != nil {
		b.Fatal(err)
	}
	return float64(st.TimePS)
}

// BenchmarkAblationSyncLatency quantifies the dual-clock synchronization
// delay (§3.2): the cost of the mixed-clock interface vs an ideal one.
func BenchmarkAblationSyncLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ideal := ablationRun(b, "gzip", func(c *core.Config) { c.SyncCycles = 0 })
		deflt := ablationRun(b, "gzip", nil)
		deep := ablationRun(b, "gzip", func(c *core.Config) { c.SyncCycles = 3 })
		b.ReportMetric(deflt/ideal, "sync1-vs-ideal")
		b.ReportMetric(deep/ideal, "sync3-vs-ideal")
	}
}

// BenchmarkAblationECReadLatency quantifies the Execution Cache access
// latency the fill buffer must hide (§3.3).
func BenchmarkAblationECReadLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fast := ablationRun(b, "ijpeg", func(c *core.Config) { c.EC.ReadCycles = 1 })
		deflt := ablationRun(b, "ijpeg", nil)
		slow := ablationRun(b, "ijpeg", func(c *core.Config) { c.EC.ReadCycles = 6 })
		b.ReportMetric(deflt/fast, "3cyc-vs-1cyc")
		b.ReportMetric(slow/fast, "6cyc-vs-1cyc")
	}
}

// BenchmarkAblationBlockSize quantifies the eight-instruction block choice
// (§3.3: smaller blocks store better, very small blocks hurt performance).
func BenchmarkAblationBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := ablationRun(b, "mesa", func(c *core.Config) { c.EC.BlockSlots = 4 })
		deflt := ablationRun(b, "mesa", nil)
		big := ablationRun(b, "mesa", func(c *core.Config) { c.EC.BlockSlots = 16 })
		b.ReportMetric(small/deflt, "4slot-vs-8slot")
		b.ReportMetric(big/deflt, "16slot-vs-8slot")
	}
}

// BenchmarkAblationRenamePools quantifies the per-register pool capacity
// (§3.4-3.5: the capacity limitation behind Figure 11's drops).
func BenchmarkAblationRenamePools(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tiny := ablationRun(b, "gzip", func(c *core.Config) {
			c.Pools = core.PoolConfig{TotalRegs: 256, MinPool: 2, MaxPool: 8}
		})
		deflt := ablationRun(b, "gzip", nil)
		huge := ablationRun(b, "gzip", func(c *core.Config) {
			c.Pools = core.PoolConfig{TotalRegs: 1024, MinPool: 4, MaxPool: 32}
		})
		b.ReportMetric(tiny/deflt, "256regs-vs-512")
		b.ReportMetric(huge/deflt, "1024regs-vs-512")
	}
}

// BenchmarkSimulatorThroughput reports raw simulation speed (simulated
// instructions per wall-clock second) for both cores.
func BenchmarkSimulatorThroughput(b *testing.B) {
	run := func(b *testing.B, arch sim.Arch) {
		b.Helper()
		total := 0.0
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(sim.RunConfig{
				Workload: "ijpeg", Arch: arch, Node: cacti.Node130,
				FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: benchBudget,
			})
			if err != nil {
				b.Fatal(err)
			}
			total += float64(res.Retired)
		}
		b.ReportMetric(total/b.Elapsed().Seconds(), "sim-inst/s")
	}
	b.Run("baseline", func(b *testing.B) { run(b, sim.ArchBaseline) })
	b.Run("flywheel", func(b *testing.B) { run(b, sim.ArchFlywheel) })
}

// fmtSscan wraps fmt.Sscan for the table-metric extraction above.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }
