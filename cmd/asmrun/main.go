// Command asmrun assembles a program for the flywheel ISA and executes it
// on the functional emulator, printing the final architectural state — a
// quick way to develop new workload kernels.
//
//	asmrun prog.s
//	asmrun -limit 1000000 -regs prog.s
//	asmrun -disasm prog.s
package main

import (
	"flag"
	"fmt"
	"os"

	"flywheel/internal/asm"
	"flywheel/internal/emu"
	"flywheel/internal/isa"
)

func main() {
	var (
		limit  = flag.Uint64("limit", 100_000_000, "maximum executed instructions")
		regs   = flag.Bool("regs", false, "dump all non-zero registers at exit")
		disasm = flag.Bool("disasm", false, "print the disassembly instead of running")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asmrun [flags] prog.s")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(path, string(src))
	if err != nil {
		fatal(err)
	}
	if *disasm {
		for i, in := range prog.Code {
			fmt.Printf("%#06x:  %s\n", asm.CodeBase+uint64(i*isa.InstBytes), in)
		}
		return
	}
	m := emu.New(prog)
	n, err := m.Run(*limit)
	if err != nil {
		fatal(err)
	}
	status := "halted"
	if !m.Halted {
		status = "instruction limit reached"
	}
	fmt.Printf("%s: %s after %d instructions (pc=%#x)\n", path, status, n, m.PC)
	if *regs {
		for i, v := range m.IntRegs {
			if v != 0 {
				fmt.Printf("  r%-2d = %d (%#x)\n", i, int64(v), v)
			}
		}
		for i, v := range m.FPRegs {
			if v != 0 {
				fmt.Printf("  f%-2d = %g\n", i, v)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asmrun:", err)
	os.Exit(1)
}
