// Command asmrun assembles a program for the flywheel ISA and executes it
// on the functional emulator, printing the final architectural state — a
// quick way to develop new workload kernels.
//
//	asmrun prog.s
//	asmrun -limit 1000000 -regs prog.s
//	asmrun -disasm prog.s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"flywheel/internal/asm"
	"flywheel/internal/emu"
	"flywheel/internal/isa"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses the flags and assembles, disassembles or executes the program;
// it is the whole command, factored out of main so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("asmrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		limit  = fs.Uint64("limit", 100_000_000, "maximum executed instructions")
		regs   = fs.Bool("regs", false, "dump all non-zero registers at exit")
		disasm = fs.Bool("disasm", false, "print the disassembly instead of running")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: asmrun [flags] prog.s")
		return 2
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "asmrun:", err)
		return 1
	}
	if err := runSource(path, string(src), *limit, *regs, *disasm, stdout); err != nil {
		fmt.Fprintln(stderr, "asmrun:", err)
		return 1
	}
	return 0
}

// runSource assembles and runs (or disassembles) one program.
func runSource(path, src string, limit uint64, regs, disasm bool, stdout io.Writer) error {
	prog, err := asm.Assemble(path, src)
	if err != nil {
		return err
	}
	if disasm {
		for i, in := range prog.Code {
			fmt.Fprintf(stdout, "%#06x:  %s\n", asm.CodeBase+uint64(i*isa.InstBytes), in)
		}
		return nil
	}
	m := emu.New(prog)
	n, err := m.Run(limit)
	if err != nil {
		return err
	}
	status := "halted"
	if !m.Halted {
		status = "instruction limit reached"
	}
	fmt.Fprintf(stdout, "%s: %s after %d instructions (pc=%#x)\n", path, status, n, m.PC)
	if regs {
		for i, v := range m.IntRegs {
			if v != 0 {
				fmt.Fprintf(stdout, "  r%-2d = %d (%#x)\n", i, int64(v), v)
			}
		}
		for i, v := range m.FPRegs {
			if v != 0 {
				fmt.Fprintf(stdout, "  f%-2d = %g\n", i, v)
			}
		}
	}
	return nil
}
