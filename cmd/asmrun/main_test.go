package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testProgram = `
.text
.global main
main:
	addi r1, r0, 10
	add  r2, r1, r1
	halt
`

func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExecutesProgram(t *testing.T) {
	path := writeProgram(t, testProgram)
	var out, errb bytes.Buffer
	if code := run([]string{"-regs", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "halted after 3 instructions") {
		t.Errorf("output %q lacks halt status", s)
	}
	if !strings.Contains(s, "r1 ") || !strings.Contains(s, "= 10") {
		t.Errorf("output %q lacks the r1=10 register dump", s)
	}
	if !strings.Contains(s, "= 20") {
		t.Errorf("output %q lacks the r2=20 register dump", s)
	}
}

func TestRunDisassembles(t *testing.T) {
	path := writeProgram(t, testProgram)
	var out, errb bytes.Buffer
	if code := run([]string{"-disasm", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"addi r1, r0, 10", "add r2, r1, r1", "halt"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("disassembly lacks %q", want)
		}
	}
}

func TestRunInstructionLimit(t *testing.T) {
	path := writeProgram(t, `
.text
.global main
main:
loop:
	addi r1, r1, 1
	b loop
`)
	var out, errb bytes.Buffer
	if code := run([]string{"-limit", "10", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "instruction limit reached") {
		t.Errorf("output %q lacks the limit status", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "missing.s")}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	errb.Reset()
	bad := writeProgram(t, ".text\nmain:\n\tnot-an-op r1\n")
	if code := run([]string{bad}, &out, &errb); code != 1 {
		t.Errorf("bad program: exit %d, want 1", code)
	}
	if errb.Len() == 0 {
		t.Error("bad program produced no diagnostic")
	}
}
