// Command bench runs the repository's performance benchmarks and emits a
// machine-readable report, so the simulator's throughput trajectory is
// tracked PR over PR. It measures the raw emulator hot loop, each timing
// core (baseline / flywheel / regalloc) end to end, and the experiment
// suite through the lab, reporting ns per simulated instruction, heap
// allocations per instruction and simulated MIPS.
//
// Usage:
//
//	go run ./cmd/bench                  # full run, writes BENCH_<date>.json
//	go run ./cmd/bench -quick -o -      # CI smoke: fast budgets, stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"flywheel/internal/analytic"
	"flywheel/internal/asm"
	"flywheel/internal/branch"
	"flywheel/internal/cacti"
	"flywheel/internal/emu"
	"flywheel/internal/experiments"
	"flywheel/internal/explore"
	"flywheel/internal/lab"
	"flywheel/internal/lab/store"
	"flywheel/internal/mem"
	"flywheel/internal/sample"
	"flywheel/internal/sim"
	"flywheel/internal/trace"
)

// Metrics is one measured configuration.
type Metrics struct {
	NsPerInst     float64 `json:"ns_per_inst"`
	AllocsPerInst float64 `json:"allocs_per_inst"`
	MIPS          float64 `json:"mips"`
}

// SuiteMetrics summarizes the lab-driven experiment suite.
type SuiteMetrics struct {
	Jobs       int     `json:"jobs"`
	Workers    int     `json:"workers"`
	TotalMs    float64 `json:"total_ms"`
	MsPerJob   float64 `json:"ms_per_job"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// DiskHits / SimRuns split the distinct configurations between the
	// persistent store (-store) and fresh simulation; without -store,
	// DiskHits is zero.
	DiskHits uint64 `json:"disk_hits"`
	SimRuns  uint64 `json:"sim_runs"`
	// Trace-cache traffic during the suite: runs that replayed a recorded
	// dynamic trace, runs that recorded one, and the resident encoded size
	// of the recordings afterwards.
	TraceHits   uint64 `json:"trace_hits"`
	TraceMisses uint64 `json:"trace_misses"`
	TraceBytes  int64  `json:"trace_bytes"`
}

// TieredMetrics summarizes a two-tier frontier exploration: how much of
// the grid the calibrated analytic model screened out versus how much was
// escalated to the cycle-accurate simulator, and at what accuracy.
type TieredMetrics struct {
	GridCells        int     `json:"grid_cells"`
	CalibrationCells int     `json:"calibration_cells"`
	AnalyticCells    int     `json:"analytic_cells"`
	ConfirmedCells   int     `json:"confirmed_cells"`
	Margin           float64 `json:"margin"`
	// TimeMAPE is the model's measured (not in-sample) mean relative time
	// error over the confirmed cells.
	TimeMAPE float64 `json:"time_mape"`
	TotalMs  float64 `json:"total_ms"`
}

// SampledMetrics compares sampled execution against an exact run of the
// same core and workload: the per-instruction cost of both, the resulting
// wall-clock speedup, and the estimate's error against the exact result —
// the speed/accuracy trade the sampled tier buys, tracked PR over PR.
type SampledMetrics struct {
	NsPerInstExact   float64 `json:"ns_per_inst_exact"`
	NsPerInstSampled float64 `json:"ns_per_inst_sampled"`
	Speedup          float64 `json:"speedup"`
	Windows          int     `json:"windows"`
	// DetailedFrac is the fraction of the stream simulated in detail
	// (bootstrap, warm-ups and measurement windows); 1-DetailedFrac was
	// fast-forwarded through functional warming.
	DetailedFrac  float64 `json:"detailed_frac"`
	IPCErrPct     float64 `json:"ipc_err_pct"`
	EnergyErrPct  float64 `json:"energy_err_pct"`
	IPCRelCI95Pct float64 `json:"ipc_rel_ci95_pct"`
}

// FrontendMetrics is one (predictor, prefetcher) combination benchmarked
// on the flywheel core: the simulator throughput it sustains and the
// frontend observables it reports, so a predictor that buys accuracy by
// burning host cycles shows both sides of the trade PR over PR.
type FrontendMetrics struct {
	NsPerInst      float64 `json:"ns_per_inst"`
	MIPS           float64 `json:"mips"`
	BranchAcc      float64 `json:"branch_acc"`
	L2HitRate      float64 `json:"l2_hit"`
	PrefetchIssued uint64  `json:"prefetch_issued"`
	PrefetchUseful uint64  `json:"prefetch_useful"`
	PfAccuracy     float64 `json:"pf_acc"`
	PfCoverage     float64 `json:"pf_cov"`
}

// Report is the emitted document.
type Report struct {
	Date            string             `json:"date"`
	GoVersion       string             `json:"go_version"`
	GOOS            string             `json:"goos"`
	GOARCH          string             `json:"goarch"`
	NumCPU          int                `json:"num_cpu"`
	InstructionsPer uint64             `json:"instructions_per_run"`
	Emu             Metrics            `json:"emu"`
	Cores           map[string]Metrics `json:"cores"`
	// Frontend is keyed "predictor/prefetcher" (e.g. "tage/delta").
	Frontend map[string]FrontendMetrics `json:"frontend"`
	Suite    SuiteMetrics               `json:"suite"`
	Tiered   TieredMetrics              `json:"tiered"`
	// Sampled is keyed by core name (flywheel, regalloc): the cores the
	// sampled tier accelerates.
	Sampled map[string]SampledMetrics `json:"sampled"`
}

// emuLoop is the steady-state kernel for the raw emulator measurement.
const emuLoop = `
        .data
buf:    .space 64
        .text
        la   r2, buf
        li   r1, 500000000
loop:   ld   r3, 0(r2)
        addi r3, r3, 1
        sd   r3, 0(r2)
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
`

// benchEmu measures the raw emulator step loop; the kernel is steady-state
// and driven purely by testing.Benchmark's b.N, so it takes no budget.
func benchEmu() (Metrics, error) {
	prog, err := asm.Assemble("bench-loop.s", emuLoop)
	if err != nil {
		return Metrics{}, err
	}
	m := emu.New(prog)
	if _, err := m.Run(1000); err != nil {
		return Metrics{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Step(); err != nil {
				b.Fatal(err)
			}
		}
	})
	ns := float64(r.NsPerOp())
	return Metrics{
		NsPerInst:     ns,
		AllocsPerInst: float64(r.AllocsPerOp()),
		MIPS:          1e3 / ns,
	}, nil
}

func benchCore(arch sim.Arch, instructions uint64) (Metrics, error) {
	cfg := sim.RunConfig{
		Workload: "ijpeg", Arch: arch, Node: cacti.Node130,
		FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: instructions,
	}
	// Prime the warm-snapshot cache so the measurement reflects the
	// steady-state hot loop, not one-time setup.
	if _, err := sim.Run(cfg); err != nil {
		return Metrics{}, err
	}
	var retired uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			retired = res.Retired
		}
	})
	if retired == 0 {
		return Metrics{}, fmt.Errorf("bench %v: no instructions retired", arch)
	}
	nsPerInst := float64(r.NsPerOp()) / float64(retired)
	return Metrics{
		NsPerInst:     nsPerInst,
		AllocsPerInst: float64(r.AllocsPerOp()) / float64(retired),
		MIPS:          1e3 / nsPerInst,
	}, nil
}

// benchFrontend measures the flywheel core under every (predictor,
// prefetcher) combination on the same workload benchCore uses.
func benchFrontend(instructions uint64) (map[string]FrontendMetrics, error) {
	out := map[string]FrontendMetrics{}
	for _, pred := range []string{branch.DirGShare, branch.DirTAGE} {
		for _, pf := range []string{mem.PFNone, mem.PFDelta} {
			cfg := sim.RunConfig{
				Workload: "ijpeg", Arch: sim.ArchFlywheel, Node: cacti.Node130,
				FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: instructions,
				Predictor: pred, Prefetcher: pf,
			}
			res, err := sim.Run(cfg) // warm the snapshot cache and capture observables
			if err != nil {
				return nil, err
			}
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sim.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
			if res.Retired == 0 {
				return nil, fmt.Errorf("bench frontend %s/%s: no instructions retired", pred, pf)
			}
			nsPerInst := float64(r.NsPerOp()) / float64(res.Retired)
			out[pred+"/"+pf] = FrontendMetrics{
				NsPerInst:      nsPerInst,
				MIPS:           1e3 / nsPerInst,
				BranchAcc:      res.BranchAccuracy,
				L2HitRate:      res.DemandL2HitRate,
				PrefetchIssued: res.PrefetchIssued,
				PrefetchUseful: res.PrefetchUseful,
				PfAccuracy:     res.PrefetchAccuracy,
				PfCoverage:     res.PrefetchCoverage,
			}
		}
	}
	return out, nil
}

// benchSampled measures one core exactly and under the sampled schedule
// on the same stream, comparing cost and accuracy. The stream needs to be
// several sampling periods long, so it takes its own instruction budget
// instead of the suite-wide one.
func benchSampled(arch sim.Arch, instructions uint64, samp sim.Sampling) (SampledMetrics, error) {
	cfg := sim.RunConfig{
		Workload: "ijpeg", Arch: arch, Node: cacti.Node130,
		FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: instructions,
	}
	exact, err := sim.Run(cfg) // also primes the snapshot and trace caches
	if err != nil {
		return SampledMetrics{}, err
	}
	scfg := cfg
	scfg.Sampling = samp
	sampled, err := sim.Run(scfg)
	if err != nil {
		return SampledMetrics{}, err
	}
	if sampled.Sampled == nil || exact.Retired == 0 {
		return SampledMetrics{}, fmt.Errorf("bench sampled %v: no sampled stats", arch)
	}
	bench := func(c sim.RunConfig) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(c); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp())
	}
	exactNs, sampledNs := bench(cfg), bench(scfg)
	st := sampled.Sampled
	return SampledMetrics{
		NsPerInstExact:   exactNs / float64(exact.Retired),
		NsPerInstSampled: sampledNs / float64(sampled.Retired),
		Speedup:          exactNs / sampledNs,
		Windows:          st.Windows,
		DetailedFrac:     1 - float64(st.SkippedInsts)/float64(st.TotalInsts),
		IPCErrPct:        100 * (sampled.IPC - exact.IPC) / exact.IPC,
		EnergyErrPct:     100 * (sampled.EnergyPJ - exact.EnergyPJ) / exact.EnergyPJ,
		IPCRelCI95Pct:    100 * st.IPCRelCI95,
	}, nil
}

func benchSuite(instructions uint64, storeDir string) (SuiteMetrics, error) {
	jobs := experiments.SuiteJobs(experiments.Options{
		Instructions: instructions, Node: cacti.Node130,
	})
	cache := lab.NewCache()
	if storeDir != "" {
		st, err := store.Open(storeDir)
		if err != nil {
			return SuiteMetrics{}, err
		}
		cache = lab.NewCacheWithStore(st)
	}
	workers := runtime.GOMAXPROCS(0)
	before := sim.TraceCacheStats()
	start := time.Now()
	if _, err := lab.Run(jobs, lab.Options{Workers: workers, Cache: cache}); err != nil {
		return SuiteMetrics{}, err
	}
	total := time.Since(start)
	cs := cache.Stats()
	after := sim.TraceCacheStats()
	return SuiteMetrics{
		Jobs:        len(jobs),
		Workers:     workers,
		TotalMs:     float64(total.Microseconds()) / 1e3,
		MsPerJob:    float64(total.Microseconds()) / 1e3 / float64(len(jobs)),
		JobsPerSec:  float64(len(jobs)) / total.Seconds(),
		DiskHits:    cs.DiskHits,
		SimRuns:     cs.Misses,
		TraceHits:   after.Hits - before.Hits,
		TraceMisses: after.Misses - before.Misses,
		TraceBytes:  after.ResidentBytes,
	}, nil
}

// benchTiered times an end-to-end two-tier exploration — calibration,
// analytic screen, cycle-accurate confirmation — over a fixed 144-cell
// space, with an in-memory cache so every run starts cold.
func benchTiered(instructions uint64) (TieredMetrics, error) {
	space := explore.Space{
		Profiles:     analytic.DefaultTrainingProfiles(1)[:8],
		Archs:        []sim.Arch{sim.ArchFlywheel},
		FEBoosts:     []int{0, 20, 40, 60, 80, 100},
		BEBoosts:     []int{0, 50, 100},
		Instructions: instructions,
	}
	opt := explore.Options{Cache: lab.NewCache()}
	start := time.Now()
	model, err := analytic.Calibrate(explore.CalibrationConfig(space, opt))
	if err != nil {
		return TieredMetrics{}, err
	}
	rep, err := explore.ExploreTiered(space, model, explore.TieredOptions{Options: opt})
	if err != nil {
		return TieredMetrics{}, err
	}
	return TieredMetrics{
		GridCells:        len(rep.Predicted),
		CalibrationCells: model.TrainingCells,
		AnalyticCells:    len(rep.Predicted) - len(rep.Confirmed),
		ConfirmedCells:   len(rep.Confirmed),
		Margin:           rep.Margin,
		TimeMAPE:         rep.Err.TimeMAPE,
		TotalMs:          float64(time.Since(start).Microseconds()) / 1e3,
	}, nil
}

// loadReport reads a previously emitted BENCH json.
func loadReport(path string) (Report, error) {
	var r Report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// compare prints per-metric deltas against an old report and returns true
// when any ns/inst (or suite ms/job) metric regressed by more than
// maxRegressPct. maxRegressPct <= 0 reports without gating.
func compare(out io.Writer, oldRep, newRep Report, maxRegressPct float64) (regressed bool) {
	type row struct {
		name     string
		old, new float64
	}
	rows := []row{{"emu ns/inst", oldRep.Emu.NsPerInst, newRep.Emu.NsPerInst}}
	for _, name := range []string{"baseline", "flywheel", "regalloc"} {
		o, hasOld := oldRep.Cores[name]
		n, hasNew := newRep.Cores[name]
		if hasOld && hasNew {
			rows = append(rows, row{name + " ns/inst", o.NsPerInst, n.NsPerInst})
		}
	}
	for _, name := range []string{"flywheel", "regalloc"} {
		o, hasOld := oldRep.Sampled[name]
		n, hasNew := newRep.Sampled[name]
		if hasOld && hasNew {
			rows = append(rows, row{name + " sampled ns/inst", o.NsPerInstSampled, n.NsPerInstSampled})
		}
	}
	rows = append(rows, row{"suite ms/job", oldRep.Suite.MsPerJob, newRep.Suite.MsPerJob})

	fmt.Fprintf(out, "compare against %s (gate: +%.1f%%):\n", oldRep.Date, maxRegressPct)
	for _, r := range rows {
		if r.old == 0 {
			continue
		}
		pct := 100 * (r.new - r.old) / r.old
		mark := ""
		if maxRegressPct > 0 && pct > maxRegressPct {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(out, "  %-18s %10.2f -> %10.2f  %+7.1f%%%s\n", r.name, r.old, r.new, pct, mark)
	}
	if maxRegressPct <= 0 {
		return false
	}
	return regressed
}

func run(out io.Writer, quick bool, outPath, storeDir string) (Report, error) {
	instructions := uint64(40_000)
	if quick {
		instructions = 6_000
	}
	rep := Report{
		Date:            time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		InstructionsPer: instructions,
		Cores:           map[string]Metrics{},
		Sampled:         map[string]SampledMetrics{},
	}

	var err error
	if rep.Emu, err = benchEmu(); err != nil {
		return rep, err
	}
	for arch, name := range map[sim.Arch]string{
		sim.ArchBaseline: "baseline",
		sim.ArchFlywheel: "flywheel",
		sim.ArchRegAlloc: "regalloc",
	} {
		m, err := benchCore(arch, instructions)
		if err != nil {
			return rep, err
		}
		rep.Cores[name] = m
	}
	if rep.Frontend, err = benchFrontend(instructions); err != nil {
		return rep, err
	}
	if rep.Suite, err = benchSuite(instructions, storeDir); err != nil {
		return rep, err
	}
	if rep.Tiered, err = benchTiered(instructions); err != nil {
		return rep, err
	}
	// Sampled execution needs a stream several periods long, so it gets
	// its own budget: the production schedule over 300k instructions, or a
	// proportionally scaled-down schedule for the CI smoke.
	sampledInsts, samp := uint64(300_000), sim.Sampling{Period: sample.DefaultPeriod}
	if quick {
		sampledInsts = 60_000
		samp = sim.Sampling{Period: 12_000, WindowInsts: 1_000, WarmupInsts: 500}
	}
	for arch, name := range map[sim.Arch]string{
		sim.ArchFlywheel: "flywheel",
		sim.ArchRegAlloc: "regalloc",
	} {
		m, err := benchSampled(arch, sampledInsts, samp)
		if err != nil {
			return rep, err
		}
		rep.Sampled[name] = m
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return rep, err
	}
	enc = append(enc, '\n')
	if outPath == "-" {
		_, err = out.Write(enc)
		return rep, err
	}
	if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		return rep, err
	}
	fmt.Fprintf(out, "wrote %s\n", outPath)
	fmt.Fprintf(out, "emu: %.1f ns/inst (%.1f MIPS)  baseline: %.0f ns/inst (%.2f MIPS, %.3f allocs/inst)  flywheel: %.0f ns/inst (%.2f MIPS, %.3f allocs/inst)  suite: %.0f ms for %d jobs  tiered: %d/%d cells confirmed in %.0f ms  sampled: flywheel %.1fx (IPC %+.1f%%), regalloc %.1fx (IPC %+.1f%%)\n",
		rep.Emu.NsPerInst, rep.Emu.MIPS,
		rep.Cores["baseline"].NsPerInst, rep.Cores["baseline"].MIPS, rep.Cores["baseline"].AllocsPerInst,
		rep.Cores["flywheel"].NsPerInst, rep.Cores["flywheel"].MIPS, rep.Cores["flywheel"].AllocsPerInst,
		rep.Suite.TotalMs, rep.Suite.Jobs,
		rep.Tiered.ConfirmedCells, rep.Tiered.GridCells, rep.Tiered.TotalMs,
		rep.Sampled["flywheel"].Speedup, rep.Sampled["flywheel"].IPCErrPct,
		rep.Sampled["regalloc"].Speedup, rep.Sampled["regalloc"].IPCErrPct)
	return rep, nil
}

func main() {
	// Indirection so deferred profile flushes run before the process exits
	// (os.Exit inside main would truncate an in-flight CPU profile —
	// precisely on the regressing run whose profile is wanted).
	os.Exit(benchMain())
}

func benchMain() int {
	quick := flag.Bool("quick", false, "reduced instruction budgets (CI smoke)")
	outPath := flag.String("o", "", `output path; "-" for stdout (default BENCH_<date>.json)`)
	storeDir := flag.String("store", "", "persistent result-store directory for the suite benchmark")
	comparePath := flag.String("compare", "", "previous BENCH json to diff against")
	maxRegress := flag.Float64("maxregress", 0, "with -compare: exit nonzero when any ns/inst metric regresses more than this percent (0 = report only)")
	noTrace := flag.Bool("notrace", false, "disable the dynamic-trace cache (A/B the record/replay front end)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	flag.Parse()
	if *outPath == "" {
		*outPath = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01-02"))
	}
	if *noTrace {
		sim.SetTraceCachePolicy(trace.Policy{Disabled: true})
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	rep, err := run(os.Stdout, *quick, *outPath, *storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		f.Close()
	}

	if *comparePath != "" {
		oldRep, err := loadReport(*comparePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		if compare(os.Stdout, oldRep, rep, *maxRegress) {
			fmt.Fprintf(os.Stderr, "bench: ns/inst regression beyond %.1f%%\n", *maxRegress)
			return 2
		}
	}
	return 0
}
