package main

import (
	"encoding/json"
	"testing"
)

// TestReportJSONShape pins the emitted schema: downstream tooling greps
// these keys out of BENCH_<date>.json.
func TestReportJSONShape(t *testing.T) {
	rep := Report{
		Date:            "2026-01-01T00:00:00Z",
		Cores:           map[string]Metrics{"baseline": {NsPerInst: 1, MIPS: 1000}},
		Suite:           SuiteMetrics{Jobs: 3},
		InstructionsPer: 42,
	}
	enc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(enc, &got); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"date", "go_version", "goos", "goarch", "num_cpu",
		"instructions_per_run", "emu", "cores", "suite",
	} {
		if _, ok := got[key]; !ok {
			t.Errorf("report JSON missing key %q", key)
		}
	}
	cores := got["cores"].(map[string]any)
	base := cores["baseline"].(map[string]any)
	for _, key := range []string{"ns_per_inst", "allocs_per_inst", "mips"} {
		if _, ok := base[key]; !ok {
			t.Errorf("core metrics missing key %q", key)
		}
	}
}

// TestBenchSuiteTiny drives the suite measurement end to end with a tiny
// budget.
func TestBenchSuiteTiny(t *testing.T) {
	m, err := benchSuite(500, "")
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs == 0 || m.TotalMs <= 0 || m.JobsPerSec <= 0 {
		t.Fatalf("implausible suite metrics: %+v", m)
	}
	if m.DiskHits != 0 {
		t.Fatalf("disk hits without a store: %+v", m)
	}
}

// TestBenchSuiteWarmStore: the suite over a warm store performs zero
// simulations — every distinct configuration is a disk hit.
func TestBenchSuiteWarmStore(t *testing.T) {
	dir := t.TempDir()
	cold, err := benchSuite(500, dir)
	if err != nil {
		t.Fatal(err)
	}
	if cold.SimRuns == 0 || cold.DiskHits != 0 {
		t.Fatalf("cold pass: %+v, want all sim runs", cold)
	}
	warm, err := benchSuite(500, dir)
	if err != nil {
		t.Fatal(err)
	}
	if warm.SimRuns != 0 || warm.DiskHits != cold.SimRuns {
		t.Fatalf("warm pass: %+v, want %d disk hits and 0 sim runs", warm, cold.SimRuns)
	}
}
