package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flywheel/internal/sim"
)

// TestReportJSONShape pins the emitted schema: downstream tooling greps
// these keys out of BENCH_<date>.json.
func TestReportJSONShape(t *testing.T) {
	rep := Report{
		Date:            "2026-01-01T00:00:00Z",
		Cores:           map[string]Metrics{"baseline": {NsPerInst: 1, MIPS: 1000}},
		Suite:           SuiteMetrics{Jobs: 3},
		Sampled:         map[string]SampledMetrics{"flywheel": {Speedup: 5}},
		InstructionsPer: 42,
	}
	enc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(enc, &got); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"date", "go_version", "goos", "goarch", "num_cpu",
		"instructions_per_run", "emu", "cores", "suite",
	} {
		if _, ok := got[key]; !ok {
			t.Errorf("report JSON missing key %q", key)
		}
	}
	cores := got["cores"].(map[string]any)
	base := cores["baseline"].(map[string]any)
	for _, key := range []string{"ns_per_inst", "allocs_per_inst", "mips"} {
		if _, ok := base[key]; !ok {
			t.Errorf("core metrics missing key %q", key)
		}
	}
	suite := got["suite"].(map[string]any)
	for _, key := range []string{"trace_hits", "trace_misses", "trace_bytes", "disk_hits", "sim_runs"} {
		if _, ok := suite[key]; !ok {
			t.Errorf("suite metrics missing key %q", key)
		}
	}
	tiered := got["tiered"].(map[string]any)
	for _, key := range []string{
		"grid_cells", "calibration_cells", "analytic_cells",
		"confirmed_cells", "margin", "time_mape", "total_ms",
	} {
		if _, ok := tiered[key]; !ok {
			t.Errorf("tiered metrics missing key %q", key)
		}
	}
	fw := got["sampled"].(map[string]any)["flywheel"].(map[string]any)
	for _, key := range []string{
		"ns_per_inst_exact", "ns_per_inst_sampled", "speedup", "windows",
		"detailed_frac", "ipc_err_pct", "energy_err_pct", "ipc_rel_ci95_pct",
	} {
		if _, ok := fw[key]; !ok {
			t.Errorf("sampled metrics missing key %q", key)
		}
	}
}

// TestBenchTieredTiny drives the two-tier measurement end to end with a
// tiny budget: the analytic screen must carry most of the grid.
func TestBenchTieredTiny(t *testing.T) {
	m, err := benchTiered(1000)
	if err != nil {
		t.Fatal(err)
	}
	if m.GridCells == 0 || m.TotalMs <= 0 || m.Margin <= 0 {
		t.Fatalf("implausible tiered metrics: %+v", m)
	}
	if m.AnalyticCells+m.ConfirmedCells != m.GridCells {
		t.Fatalf("analytic %d + confirmed %d != grid %d", m.AnalyticCells, m.ConfirmedCells, m.GridCells)
	}
	if m.ConfirmedCells == 0 || m.AnalyticCells <= m.ConfirmedCells {
		t.Fatalf("screen carried too little: %+v", m)
	}
}

// TestCompareGatesOnRegression pins the -compare contract: deltas print
// per metric, and only a regression beyond the gate trips the exit.
func TestCompareGatesOnRegression(t *testing.T) {
	oldRep := Report{
		Date:  "old",
		Emu:   Metrics{NsPerInst: 10},
		Cores: map[string]Metrics{"baseline": {NsPerInst: 100}, "flywheel": {NsPerInst: 200}},
		Suite: SuiteMetrics{MsPerJob: 5},
	}
	better := Report{
		Emu:   Metrics{NsPerInst: 9},
		Cores: map[string]Metrics{"baseline": {NsPerInst: 90}, "flywheel": {NsPerInst: 150}},
		Suite: SuiteMetrics{MsPerJob: 4},
	}
	var buf strings.Builder
	if compare(&buf, oldRep, better, 10) {
		t.Fatalf("improvement flagged as regression:\n%s", buf.String())
	}
	worse := better
	worse.Cores = map[string]Metrics{"baseline": {NsPerInst: 150}, "flywheel": {NsPerInst: 150}}
	buf.Reset()
	if !compare(&buf, oldRep, worse, 10) {
		t.Fatalf("50%% baseline regression not flagged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("regression marker missing:\n%s", buf.String())
	}
	// Report-only mode never gates.
	buf.Reset()
	if compare(&buf, oldRep, worse, 0) {
		t.Fatal("maxregress 0 must report without gating")
	}
}

// TestLoadReportRoundTrip exercises -compare's input path.
func TestLoadReportRoundTrip(t *testing.T) {
	rep := Report{Date: "x", Emu: Metrics{NsPerInst: 3}}
	enc, _ := json.Marshal(rep)
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Emu.NsPerInst != 3 || got.Date != "x" {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
	if _, err := loadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestBenchSuiteTiny drives the suite measurement end to end with a tiny
// budget.
func TestBenchSuiteTiny(t *testing.T) {
	m, err := benchSuite(500, "")
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs == 0 || m.TotalMs <= 0 || m.JobsPerSec <= 0 {
		t.Fatalf("implausible suite metrics: %+v", m)
	}
	if m.DiskHits != 0 {
		t.Fatalf("disk hits without a store: %+v", m)
	}
}

// TestBenchSuiteWarmStore: the suite over a warm store performs zero
// simulations — every distinct configuration is a disk hit.
func TestBenchSuiteWarmStore(t *testing.T) {
	dir := t.TempDir()
	cold, err := benchSuite(500, dir)
	if err != nil {
		t.Fatal(err)
	}
	if cold.SimRuns == 0 || cold.DiskHits != 0 {
		t.Fatalf("cold pass: %+v, want all sim runs", cold)
	}
	warm, err := benchSuite(500, dir)
	if err != nil {
		t.Fatal(err)
	}
	if warm.SimRuns != 0 || warm.DiskHits != cold.SimRuns {
		t.Fatalf("warm pass: %+v, want %d disk hits and 0 sim runs", warm, cold.SimRuns)
	}
}

// TestBenchSampledTiny drives the sampled measurement end to end with the
// CI-smoke schedule: the sampled run must be cheaper per instruction than
// exact, skip most of the stream, and land near the exact IPC.
func TestBenchSampledTiny(t *testing.T) {
	m, err := benchSampled(sim.ArchFlywheel, 60_000,
		sim.Sampling{Period: 12_000, WindowInsts: 1_000, WarmupInsts: 500})
	if err != nil {
		t.Fatal(err)
	}
	if m.Windows == 0 || m.NsPerInstExact <= 0 || m.NsPerInstSampled <= 0 {
		t.Fatalf("implausible sampled metrics: %+v", m)
	}
	if m.DetailedFrac <= 0 || m.DetailedFrac >= 1 {
		t.Fatalf("detailed fraction %.3f not in (0,1): %+v", m.DetailedFrac, m)
	}
	if m.Speedup <= 1 {
		t.Fatalf("sampled run not faster than exact: %+v", m)
	}
	// A short smoke stream tolerates a loose error bound; the scale test
	// in internal/sim pins the production accuracy target.
	if m.IPCErrPct < -25 || m.IPCErrPct > 25 {
		t.Fatalf("sampled IPC off by %.1f%%: %+v", m.IPCErrPct, m)
	}
}

// TestCompareGatesOnSampledRegression: the -compare gate watches the
// sampled per-instruction cost like any other ns/inst metric.
func TestCompareGatesOnSampledRegression(t *testing.T) {
	oldRep := Report{
		Date:    "old",
		Emu:     Metrics{NsPerInst: 10},
		Sampled: map[string]SampledMetrics{"flywheel": {NsPerInstSampled: 20}},
	}
	worse := Report{
		Emu:     Metrics{NsPerInst: 10},
		Sampled: map[string]SampledMetrics{"flywheel": {NsPerInstSampled: 40}},
	}
	var buf strings.Builder
	if !compare(&buf, oldRep, worse, 10) {
		t.Fatalf("sampled ns/inst regression not flagged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "flywheel sampled ns/inst") {
		t.Fatalf("sampled row missing from compare output:\n%s", buf.String())
	}
}
