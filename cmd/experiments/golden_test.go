package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestDefaultFiguresByteIdentical pins every paper figure produced with the
// default frontend (G-share, no prefetcher) to a golden transcript captured
// before the frontend became pluggable. The pluggable predictor and
// prefetcher are strictly additive: leaving both flags off must reproduce
// the pre-refactor figures byte for byte — same timing, same energy, same
// formatting. Regenerate the golden (only after an intentional model
// change, with the version bump that goes with it) via:
//
//	go run ./cmd/experiments -fig all -n 40000 -parallel 4 \
//	    > cmd/experiments/testdata/golden_frontend_default.txt
func TestDefaultFiguresByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure suite in -short mode")
	}
	goldenPath := filepath.Join("testdata", "golden_frontend_default.txt")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-fig", "all", "-n", "40000", "-parallel", "4"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if bytes.Equal(out.Bytes(), want) {
		return
	}
	// Byte-level diff location beats dumping 8 KiB of tables.
	got := out.Bytes()
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo, hi := i-60, i+60
			if lo < 0 {
				lo = 0
			}
			if hi > n {
				hi = n
			}
			t.Fatalf("output diverges from %s at byte %d:\n got: %s\nwant: %s",
				goldenPath, i, fmt.Sprintf("%q", got[lo:hi]), fmt.Sprintf("%q", want[lo:hi]))
		}
	}
	t.Fatalf("output length %d, golden %d (common prefix identical)", len(got), len(want))
}
