// Command experiments regenerates the paper's tables and figures.
//
// Examples:
//
//	experiments -fig 1             # Figure 1 (latency scaling, analytic)
//	experiments -fig t1            # Table 1 (module frequencies)
//	experiments -fig 12 -n 500000  # Figure 12 (performance sweep)
//	experiments -fig all -md       # everything, as markdown
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flywheel/internal/cacti"
	"flywheel/internal/experiments"
	"flywheel/internal/stats"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "experiment: 1, 2, t1, t2, 11, 12, 13, 14, 15, residency or all")
		n        = flag.Uint64("n", 300_000, "measured dynamic instructions per run")
		node     = flag.Float64("node", 0.13, "technology node in um for figures 2 and 11-14")
		markdown = flag.Bool("md", false, "emit markdown tables")
	)
	flag.Parse()

	opt := experiments.Options{Instructions: *n, Node: cacti.Node(*node)}
	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	emit := func(t *stats.Table) {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
	}

	if all || want["1"] {
		emit(experiments.Figure1())
	}
	if all || want["t1"] {
		emit(experiments.Table1())
	}
	if all || want["t2"] {
		emit(experiments.Table2())
	}
	if all || want["2"] {
		t, err := experiments.Figure2(opt)
		check(err)
		emit(t)
	}
	if all || want["11"] {
		t, err := experiments.Figure11(opt)
		check(err)
		emit(t)
	}
	if all || want["12"] || want["13"] || want["14"] || want["residency"] {
		d, err := experiments.Sweep(opt)
		check(err)
		if all || want["12"] {
			emit(d.Figure12())
		}
		if all || want["13"] {
			emit(d.Figure13())
		}
		if all || want["14"] {
			emit(d.Figure14())
		}
		if all || want["residency"] {
			emit(d.Residency())
		}
	}
	if all || want["15"] {
		t, err := experiments.Figure15(opt)
		check(err)
		emit(t)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
