// Command experiments regenerates the paper's tables and figures.
//
// Examples:
//
//	experiments -fig 1                  # Figure 1 (latency scaling, analytic)
//	experiments -fig t1                 # Table 1 (module frequencies)
//	experiments -fig 12 -n 500000       # Figure 12 (performance sweep)
//	experiments -fig all -md -parallel 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"flywheel/internal/cacti"
	"flywheel/internal/experiments"
	"flywheel/internal/lab"
	"flywheel/internal/lab/store"
	"flywheel/internal/sim"
	"flywheel/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses the flags and regenerates the requested experiments; it is the
// whole command, factored out of main so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig      = fs.String("fig", "all", "experiment: 1, 2, t1, t2, 11, 12, 13, 14, 15, residency or all (comma-separated)")
		n        = fs.Uint64("n", 300_000, "measured dynamic instructions per run")
		node     = fs.Float64("node", 0.13, "technology node in um for figures 2 and 11-14")
		parallel = fs.Int("parallel", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		markdown = fs.Bool("md", false, "emit markdown tables")

		storeDir   = fs.String("store", "", "persistent result-store directory (empty = in-memory only)")
		storeStats = fs.Bool("storestats", false, "print cache/store statistics to stderr after the run")
	)
	fs.Uint64Var(n, "instructions", 300_000, "alias for -n")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opt := experiments.Options{Instructions: *n, Node: cacti.Node(*node), Parallel: *parallel}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		opt.Cache = lab.NewCacheWithStore(st)
		// Persist recorded dynamic traces next to the results: a second
		// process over this directory replays without re-emulating.
		sim.SetTraceSpillDir(filepath.Join(*storeDir, "traces"))
	} else if *storeStats {
		// No persistent tier, but the counters are still wanted: give the
		// run its own observable in-memory cache.
		opt.Cache = lab.NewCache()
	}
	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	if err := emitFigures(opt, want, *markdown, stdout); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	if *storeStats && opt.Cache != nil {
		fmt.Fprintln(stderr, opt.Cache.StatsLine())
		fmt.Fprintln(stderr, sim.TraceCacheStats())
	}
	return 0
}

// emitFigures renders every requested experiment to w.
func emitFigures(opt experiments.Options, want map[string]bool, markdown bool, w io.Writer) error {
	all := want["all"]
	emit := func(t *stats.Table) {
		if markdown {
			fmt.Fprintln(w, t.Markdown())
		} else {
			fmt.Fprintln(w, t.String())
		}
	}

	if all || want["1"] {
		emit(experiments.Figure1())
	}
	if all || want["t1"] {
		emit(experiments.Table1())
	}
	if all || want["t2"] {
		emit(experiments.Table2())
	}
	if all || want["2"] {
		t, err := experiments.Figure2(opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if all || want["11"] {
		t, err := experiments.Figure11(opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if all || want["12"] || want["13"] || want["14"] || want["residency"] {
		d, err := experiments.Sweep(opt)
		if err != nil {
			return err
		}
		if all || want["12"] {
			emit(d.Figure12())
		}
		if all || want["13"] {
			emit(d.Figure13())
		}
		if all || want["14"] {
			emit(d.Figure14())
		}
		if all || want["residency"] {
			emit(d.Residency())
		}
	}
	if all || want["15"] {
		t, err := experiments.Figure15(opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	return nil
}
