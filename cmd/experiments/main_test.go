package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunStaticTables(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fig", "1,t1,t2"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"Figure 1", "Table 1", "Table 2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestRunMarkdown(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fig", "t1", "-md"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "|") {
		t.Error("markdown output lacks table pipes")
	}
}

func TestRunSimulatedFigureWithParallelFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-fig", "11", "-n", "3000", "-parallel", "4"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 11") {
		t.Error("output lacks Figure 11")
	}
	if !strings.Contains(out.String(), "average") {
		t.Error("output lacks the average row")
	}
}

func TestInstructionsAliasMatchesN(t *testing.T) {
	var a, b, errb bytes.Buffer
	if code := run([]string{"-fig", "11", "-n", "3000"}, &a, &errb); code != 0 {
		t.Fatalf("-n run: exit %d, stderr: %s", code, errb.String())
	}
	if code := run([]string{"-fig", "11", "-instructions", "3000"}, &b, &errb); code != 0 {
		t.Fatalf("-instructions run: exit %d, stderr: %s", code, errb.String())
	}
	if a.String() != b.String() {
		t.Error("-n and -instructions produce different output")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "flag") {
		t.Errorf("stderr %q lacks flag usage", errb.String())
	}
}

func TestRunBadNode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fig", "11", "-n", "3000", "-node", "0.42"}, &out, &errb); code != 1 {
		t.Errorf("exit %d, want 1 for an unsupported node", code)
	}
}
