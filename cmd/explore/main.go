// Command explore sweeps the multiple-speed-pipeline design space over
// synthetic workloads: it enumerates a (profile × architecture × FE/BE
// boost × technology node) grid, runs it as one batched, memoized,
// parallel job list, and reports each point's speedup and energy against
// its baseline with the Pareto frontier marked.
//
// Profile knobs take comma-separated lists and cross-product into the
// profile axis. Examples:
//
//	explore -ilp 1,6 -entropy 0,1 -fe 0,50,100         # 4 profiles, 12 points
//	explore -ilp 4 -fp 0,0.5 -node 0.13,0.09 -csv      # CSV to stdout
//	explore -frontier -parallel 8                      # frontier only
//	explore -predictor gshare,tage -prefetcher none,delta  # frontend grid
//	explore -store ~/.flywheel-store                   # persist results;
//	                                                   # a re-run simulates nothing
//
// Large grids can be screened with the two-tier explorer: `-tier analytic`
// calibrates a closed-form model on the space's own profiles, predicts
// every cell, and simulates only the cells near the predicted Pareto
// frontier (plus a random audit sample). `-tier auto` picks a tier by
// comparing the grid size against the calibration cost.
//
//	explore -tier analytic -fe 0,10,...,100 -be 0,25,50,75,100
//	explore -tier auto -margin 0.02 -audit 0.05
//
// Sampled execution trades a small, quantified error for ~5x cheaper
// cycle-accurate cells: each run alternates fast-forwarded functional
// warming with short detailed windows and reports confidence intervals.
// `-tier sampled` runs the whole grid that way; combining `-sample-period`
// with `-tier analytic` or `-tier auto` inserts it as a middle tier —
// analytic screen, sampled shortlist, exact confirmation of only the cells
// whose confidence interval leaves their frontier status ambiguous.
//
//	explore -tier sampled -fe 0,25,50,75,100           # whole grid, sampled
//	explore -tier analytic -sample-period 60000        # three-tier
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"flywheel/internal/analytic"
	"flywheel/internal/explore"
	"flywheel/internal/lab"
	"flywheel/internal/lab/store"
	"flywheel/internal/sample"
	"flywheel/internal/sim"
	"flywheel/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses the flags and performs the exploration; it is the whole
// command, factored out of main so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := explore.DefaultAxes()
	var (
		ilp     = fs.String("ilp", def.ILP, "ILP values (independent chains), comma-separated")
		entropy = fs.String("entropy", def.Entropy, "branch entropies in [0,1], comma-separated")
		fpmix   = fs.String("fp", def.FPMix, "floating-point mixes in [0,1], comma-separated")
		mem     = fs.String("mem", def.Mem, "data footprints in KiB, comma-separated")
		stride  = fs.String("stride", def.Stride, "stride fractions in [0,1], comma-separated")
		reuse   = fs.String("rr", def.Reuse, "register-reuse fractions in [0,1], comma-separated")
		code    = fs.String("code", def.Code, "code footprints in KiB, comma-separated")
		period  = fs.String("period", def.Period, "predictable-branch periods (0 = default 512), comma-separated")
		chase   = fs.String("chase", def.Chase, "pointer-chase fractions in [0,1], comma-separated")
		sbytes  = fs.String("stridebytes", def.StrideBytes, "stride step in bytes (0 = default 8), comma-separated")
		seed    = fs.Uint64("seed", def.Seed, "generator seed shared by all profiles")
		passes  = fs.Int("passes", 0, "measured passes per kernel (0 = default)")
		arch    = fs.String("arch", def.Arch, "architectures: baseline, flywheel, regalloc (comma-separated)")
		pred    = fs.String("predictor", def.Predictor, "branch direction predictors: gshare, tage, always-taken (comma-separated)")
		pf      = fs.String("prefetcher", def.Prefetcher, "L2 prefetchers: none, delta (comma-separated)")
		fe      = fs.String("fe", def.FE, "front-end boost percentages, comma-separated")
		be      = fs.String("be", def.BE, "back-end boost percentages, comma-separated")
		node    = fs.String("node", def.Node, "technology nodes in um: 0.18, 0.13, 0.09, 0.06 (comma-separated)")
		n       = fs.Uint64("n", def.Instructions, "measured dynamic instructions per run")
		workers = fs.Int("parallel", 0, "simulation worker-pool size (0 = GOMAXPROCS)")

		tier      = fs.String("tier", "exact", "evaluation tier: exact, sampled, analytic, or auto")
		margin    = fs.Float64("margin", 0, "analytic frontier slack fraction (0 = derive from model error, negative = frontier only)")
		audit     = fs.Float64("audit", explore.DefaultAudit, "fraction of screened-out cells confirmed anyway (negative disables)")
		auditSeed = fs.Uint64("auditseed", 1, "audit-sample seed")
		maxPoints = fs.Int("maxpoints", 0, "grid-size guard (0 = 4096 for -tier exact/sampled, 262144 otherwise)")

		samplePeriod = fs.Uint64("sample-period", 0, "sampled-execution period in instructions (0 = exact cells; with -tier sampled, 0 = default period)")
		windowInsts  = fs.Uint64("window", 0, "measured instructions per detailed window (0 = default)")
		sampleWarmup = fs.Uint64("sample-warmup", 0, "detailed warm-up instructions before each window (0 = default)")
		sampleSeed   = fs.Uint64("sample-seed", 0, "window-phase seed (0 = 1)")

		storeDir   = fs.String("store", "", "persistent result-store directory (empty = in-memory only)")
		storeStats = fs.Bool("storestats", false, "print cache/store statistics to stderr after the run")

		frontierOnly = fs.Bool("frontier", false, "print only the Pareto frontier")
		csvOut       = fs.Bool("csv", false, "emit CSV instead of tables")
		markdown     = fs.Bool("md", false, "emit markdown tables")
	)
	fs.Uint64Var(n, "instructions", def.Instructions, "alias for -n")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *tier != "exact" && *tier != "sampled" && *tier != "analytic" && *tier != "auto" {
		fmt.Fprintf(stderr, "explore: unknown tier %q (want exact, sampled, analytic or auto)\n", *tier)
		return 2
	}
	sampling := sim.Sampling{
		Period: *samplePeriod, WindowInsts: *windowInsts,
		WarmupInsts: *sampleWarmup, Seed: *sampleSeed,
	}
	if *tier == "sampled" && sampling.Period == 0 {
		sampling.Period = sample.DefaultPeriod
	}
	sampling = sampling.Normalize()
	if err := sampling.Validate(); err != nil {
		fmt.Fprintln(stderr, "explore:", err)
		return 2
	}
	guard := *maxPoints
	if guard == 0 && *tier != "exact" && *tier != "sampled" {
		// The analytic tier screens cells in nanoseconds; the exact guard
		// would defeat its purpose.
		guard = 262_144
	}
	space, err := explore.Axes{
		ILP: *ilp, Entropy: *entropy, FPMix: *fpmix, Mem: *mem,
		Stride: *stride, Reuse: *reuse, Code: *code, Seed: *seed,
		Period: *period, Chase: *chase, StrideBytes: *sbytes,
		Passes: *passes, Arch: *arch, FE: *fe, BE: *be, Node: *node,
		Predictor: *pred, Prefetcher: *pf,
		Instructions: *n, MaxPoints: guard,
	}.Space()
	if err != nil {
		fmt.Fprintln(stderr, "explore:", err)
		return 2
	}

	opt := explore.Options{Workers: *workers}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(stderr, "explore:", err)
			return 1
		}
		opt.Cache = lab.NewCacheWithStore(st)
		// Persist recorded dynamic traces next to the results: a second
		// process over this directory replays without re-emulating.
		sim.SetTraceSpillDir(filepath.Join(*storeDir, "traces"))
	} else if *storeStats {
		// No persistent tier, but the counters are still wanted: give the
		// run its own observable in-memory cache.
		opt.Cache = lab.NewCache()
	}

	useAnalytic := *tier == "analytic"
	if *tier == "auto" {
		// Screen analytically only when the grid comfortably out-sizes the
		// calibration cost; small grids are cheaper to just simulate.
		plan, err := explore.NewPlan(space)
		if err != nil {
			fmt.Fprintln(stderr, "explore:", err)
			return 2
		}
		calibCells := explore.CalibrationConfig(space, opt).Cells()
		useAnalytic = plan.Cells() >= 4*calibCells
		fmt.Fprintf(stderr, "explore: auto tier: %d grid cells vs %d calibration cells -> %s\n",
			plan.Cells(), calibCells, map[bool]string{true: "analytic", false: "exact"}[useAnalytic])
	}

	if useAnalytic {
		model, err := analytic.Calibrate(explore.CalibrationConfig(space, opt))
		if err != nil {
			fmt.Fprintln(stderr, "explore:", err)
			return 1
		}
		rep, err := explore.ExploreTiered(space, model, explore.TieredOptions{
			Options: opt, Margin: *margin, Audit: *audit, AuditSeed: *auditSeed,
			Sampling: sampling,
		})
		if err != nil {
			fmt.Fprintln(stderr, "explore:", err)
			return 1
		}
		fmt.Fprintln(stderr, "explore:", rep.Summary())
		switch {
		case *csvOut:
			fmt.Fprint(stdout, rep.CSV())
		case *frontierOnly:
			emit(stdout, rep.ConfirmedReport().FrontierTable(), *markdown)
		default:
			emit(stdout, rep.ConfirmedReport().Table(), *markdown)
			emit(stdout, rep.ConfirmedReport().FrontierTable(), *markdown)
		}
	} else {
		var rep *explore.Report
		if *tier == "sampled" {
			rep, err = explore.ExploreSampled(space, sampling, opt)
		} else {
			rep, err = explore.Explore(space, opt)
		}
		if err != nil {
			fmt.Fprintln(stderr, "explore:", err)
			return 1
		}
		switch {
		case *csvOut:
			fmt.Fprint(stdout, rep.CSV())
		case *frontierOnly:
			emit(stdout, rep.FrontierTable(), *markdown)
		default:
			emit(stdout, rep.Table(), *markdown)
			emit(stdout, rep.FrontierTable(), *markdown)
		}
	}
	if *storeStats && opt.Cache != nil {
		fmt.Fprintln(stderr, opt.Cache.StatsLine())
		fmt.Fprintln(stderr, sim.TraceCacheStats())
	}
	return 0
}

func emit(w io.Writer, t *stats.Table, markdown bool) {
	if markdown {
		fmt.Fprintln(w, t.Markdown())
	} else {
		fmt.Fprintln(w, t.String())
	}
}
