// Command explore sweeps the multiple-speed-pipeline design space over
// synthetic workloads: it enumerates a (profile × architecture × FE/BE
// boost × technology node) grid, runs it as one batched, memoized,
// parallel job list, and reports each point's speedup and energy against
// its baseline with the Pareto frontier marked.
//
// Profile knobs take comma-separated lists and cross-product into the
// profile axis. Examples:
//
//	explore -ilp 1,6 -entropy 0,1 -fe 0,50,100         # 4 profiles, 12 points
//	explore -ilp 4 -fp 0,0.5 -node 0.13,0.09 -csv      # CSV to stdout
//	explore -frontier -parallel 8                      # frontier only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"flywheel/internal/cacti"
	"flywheel/internal/explore"
	"flywheel/internal/sim"
	"flywheel/internal/stats"
	"flywheel/internal/workload/synth"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// maxGridPoints bounds the enumerated grid so a typo in a list flag fails
// fast instead of queueing hours of simulation.
const maxGridPoints = 4096

// run parses the flags and performs the exploration; it is the whole
// command, factored out of main so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ilp     = fs.String("ilp", "1,4,6", "ILP values (independent chains), comma-separated")
		entropy = fs.String("entropy", "0,1", "branch entropies in [0,1], comma-separated")
		fpmix   = fs.String("fp", "0", "floating-point mixes in [0,1], comma-separated")
		mem     = fs.String("mem", "32", "data footprints in KiB, comma-separated")
		stride  = fs.String("stride", "0.5", "stride fractions in [0,1], comma-separated")
		reuse   = fs.String("rr", "0", "register-reuse fractions in [0,1], comma-separated")
		code    = fs.String("code", "4", "code footprints in KiB, comma-separated")
		seed    = fs.Uint64("seed", 1, "generator seed shared by all profiles")
		passes  = fs.Int("passes", 0, "measured passes per kernel (0 = default)")
		arch    = fs.String("arch", "flywheel", "architectures: baseline, flywheel, regalloc (comma-separated)")
		fe      = fs.String("fe", "0,50,100", "front-end boost percentages, comma-separated")
		be      = fs.String("be", "50", "back-end boost percentages, comma-separated")
		node    = fs.String("node", "0.13", "technology nodes in um: 0.18, 0.13, 0.09, 0.06 (comma-separated)")
		n       = fs.Uint64("n", 300_000, "measured dynamic instructions per run")
		workers = fs.Int("parallel", 0, "simulation worker-pool size (0 = GOMAXPROCS)")

		frontierOnly = fs.Bool("frontier", false, "print only the Pareto frontier")
		csvOut       = fs.Bool("csv", false, "emit CSV instead of tables")
		markdown     = fs.Bool("md", false, "emit markdown tables")
	)
	fs.Uint64Var(n, "instructions", 300_000, "alias for -n")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	space, err := buildSpace(axes{
		ilp: *ilp, entropy: *entropy, fpmix: *fpmix, mem: *mem,
		stride: *stride, reuse: *reuse, code: *code, seed: *seed,
		passes: *passes, arch: *arch, fe: *fe, be: *be, node: *node,
		instructions: *n,
	})
	if err != nil {
		fmt.Fprintln(stderr, "explore:", err)
		return 2
	}

	rep, err := explore.Explore(space, explore.Options{Workers: *workers})
	if err != nil {
		fmt.Fprintln(stderr, "explore:", err)
		return 1
	}

	switch {
	case *csvOut:
		fmt.Fprint(stdout, rep.CSV())
	case *frontierOnly:
		emit(stdout, rep.FrontierTable(), *markdown)
	default:
		emit(stdout, rep.Table(), *markdown)
		emit(stdout, rep.FrontierTable(), *markdown)
	}
	return 0
}

func emit(w io.Writer, t *stats.Table, markdown bool) {
	if markdown {
		fmt.Fprintln(w, t.Markdown())
	} else {
		fmt.Fprintln(w, t.String())
	}
}

// axes carries the raw flag values of every grid dimension.
type axes struct {
	ilp, entropy, fpmix, mem, stride, reuse, code string
	seed                                          uint64
	passes                                        int
	arch, fe, be, node                            string
	instructions                                  uint64
}

// buildSpace cross-products the profile knob lists into the profile axis
// and assembles the exploration space.
func buildSpace(a axes) (explore.Space, error) {
	var sp explore.Space
	ilps, err := intList("ilp", a.ilp)
	if err != nil {
		return sp, err
	}
	entropies, err := floatList("entropy", a.entropy)
	if err != nil {
		return sp, err
	}
	fps, err := floatList("fp", a.fpmix)
	if err != nil {
		return sp, err
	}
	mems, err := intList("mem", a.mem)
	if err != nil {
		return sp, err
	}
	strides, err := floatList("stride", a.stride)
	if err != nil {
		return sp, err
	}
	reuses, err := floatList("rr", a.reuse)
	if err != nil {
		return sp, err
	}
	codes, err := intList("code", a.code)
	if err != nil {
		return sp, err
	}
	for _, i := range ilps {
		for _, e := range entropies {
			for _, f := range fps {
				for _, m := range mems {
					for _, s := range strides {
						for _, r := range reuses {
							for _, c := range codes {
								sp.Profiles = append(sp.Profiles, synth.Profile{
									ILP: i, BranchEntropy: e, FPMix: f,
									MemFootprintKB: m, StrideFrac: s, RegReuse: r,
									CodeFootprintKB: c, Seed: a.seed, Passes: a.passes,
								})
							}
						}
					}
				}
			}
		}
	}

	archNames := splitList(a.arch)
	if len(archNames) == 0 {
		return sp, fmt.Errorf("-arch is empty")
	}
	for _, name := range archNames {
		switch name {
		case "baseline":
			sp.Archs = append(sp.Archs, sim.ArchBaseline)
		case "flywheel":
			sp.Archs = append(sp.Archs, sim.ArchFlywheel)
		case "regalloc":
			sp.Archs = append(sp.Archs, sim.ArchRegAlloc)
		default:
			return sp, fmt.Errorf("unknown architecture %q (want baseline, flywheel or regalloc)", name)
		}
	}
	if sp.FEBoosts, err = intList("fe", a.fe); err != nil {
		return sp, err
	}
	if sp.BEBoosts, err = intList("be", a.be); err != nil {
		return sp, err
	}
	nodeNames := splitList(a.node)
	if len(nodeNames) == 0 {
		return sp, fmt.Errorf("-node is empty")
	}
	for _, s := range nodeNames {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return sp, fmt.Errorf("bad node %q", s)
		}
		switch nd := cacti.Node(v); nd {
		case cacti.Node180, cacti.Node130, cacti.Node90, cacti.Node60:
			sp.Nodes = append(sp.Nodes, nd)
		default:
			return sp, fmt.Errorf("unsupported node %v (want 0.18, 0.13, 0.09 or 0.06)", v)
		}
	}
	sp.Instructions = a.instructions

	if size := len(sp.Profiles) * len(sp.Archs) * len(sp.FEBoosts) * len(sp.BEBoosts) * len(sp.Nodes); size > maxGridPoints {
		return sp, fmt.Errorf("grid has %d points, max %d — trim an axis", size, maxGridPoints)
	}
	return sp, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func intList(name, s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad -%s value %q", name, f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s is empty", name)
	}
	return out, nil
}

func floatList(name, s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -%s value %q", name, f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s is empty", name)
	}
	return out, nil
}
