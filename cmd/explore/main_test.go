package main

import (
	"bytes"
	"strings"
	"testing"
)

// tiny keeps command tests fast: one small profile, two boosts, 2k
// instructions per run.
var tiny = []string{
	"-ilp", "1", "-entropy", "0", "-mem", "4", "-code", "1", "-passes", "1",
	"-fe", "0,50", "-n", "2000",
}

func TestRunTables(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(tiny, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"Design space", "Pareto frontier", "speedup", "energy"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestRunFrontierOnly(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(append([]string{"-frontier"}, tiny...), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "Design space") {
		t.Error("-frontier still printed the full grid table")
	}
	if !strings.Contains(out.String(), "Pareto frontier") {
		t.Error("output lacks the frontier table")
	}
}

func TestRunCSV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(append([]string{"-csv"}, tiny...), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if !strings.HasPrefix(lines[0], "profile,arch,node,") {
		t.Errorf("CSV header %q", lines[0])
	}
	// 1 profile × flywheel × 2 FE × 1 BE × 1 node = 2 data rows.
	if len(lines) != 3 {
		t.Errorf("CSV has %d lines, want 3", len(lines))
	}
}

func TestRunMarkdown(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(append([]string{"-md"}, tiny...), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "|") {
		t.Error("markdown output lacks table pipes")
	}
}

func TestInstructionsAliasMatchesN(t *testing.T) {
	var a, b, errb bytes.Buffer
	if code := run(tiny, &a, &errb); code != 0 {
		t.Fatalf("-n run: exit %d, stderr: %s", code, errb.String())
	}
	alias := append([]string{}, tiny...)
	alias[len(alias)-2] = "-instructions"
	if code := run(alias, &b, &errb); code != 0 {
		t.Fatalf("-instructions run: exit %d, stderr: %s", code, errb.String())
	}
	if a.String() != b.String() {
		t.Error("-n and -instructions produce different output")
	}
}

func TestRunBadFlagValues(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"-ilp", "abc"},
		{"-entropy", "x"},
		{"-arch", "vliw"},
		{"-arch", ""},
		{"-node", "0.42"},
		{"-node", ""},
		{"-fe", ""},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

func TestRunRejectsOversizedGrid(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{
		"-ilp", "1,2,3,4,5,6", "-entropy", "0,0.2,0.4,0.6,0.8,1",
		"-fp", "0,0.5", "-mem", "4,8,16,32", "-stride", "0,0.5,1",
		"-fe", "0,25,50,75,100",
	}
	if code := run(args, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 for an oversized grid", code)
	}
	if !strings.Contains(errb.String(), "grid") {
		t.Errorf("stderr %q lacks the grid-size diagnostic", errb.String())
	}
}

func TestRunInvalidProfile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-ilp", "99", "-n", "2000"}, &out, &errb); code != 1 {
		t.Errorf("exit %d, want 1 for an out-of-range profile", code)
	}
}

func TestRunTierAnalytic(t *testing.T) {
	args := append([]string{
		"-tier", "analytic", "-fe", "0,25,50,75,100", "-be", "0,50,100",
	}, tiny[:len(tiny)-2]...) // drop tiny's -fe pair, keep profile knobs
	args = append(args, "-n", "2000")
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "screened analytically") {
		t.Errorf("stderr lacks the tier summary: %s", errb.String())
	}
	if !strings.Contains(out.String(), "Pareto frontier") {
		t.Error("output lacks the confirmed frontier table")
	}
}

func TestRunTierAnalyticCSV(t *testing.T) {
	args := append([]string{"-csv", "-tier", "analytic", "-fe", "0,25,50,75,100"}, tiny[2:]...)
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if !strings.Contains(lines[0], "pred_speedup") || !strings.Contains(lines[0], "pred_energy_ratio") {
		t.Errorf("tiered CSV header lacks prediction columns: %q", lines[0])
	}
	if len(lines) < 2 {
		t.Error("tiered CSV has no confirmed rows")
	}
}

func TestRunTierAuto(t *testing.T) {
	// Tiny grid: auto must choose the exact tier (calibration would cost
	// more than the sweep).
	var out, errb bytes.Buffer
	if code := run(append([]string{"-tier", "auto"}, tiny...), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-> exact") {
		t.Errorf("auto tier did not fall back to exact on a tiny grid: %s", errb.String())
	}
}

func TestRunTierRejectsUnknown(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(append([]string{"-tier", "psychic"}, tiny...), &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunTierSampled(t *testing.T) {
	args := append([]string{
		"-tier", "sampled", "-sample-period", "12000", "-window", "1000",
		"-sample-warmup", "500",
	}, tiny[:len(tiny)-2]...)
	args = append(args, "-n", "60000")
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Pareto frontier") {
		t.Error("sampled tier output lacks the frontier table")
	}
}

func TestRunTierSampledDefaultsPeriod(t *testing.T) {
	// -tier sampled without -sample-period must fall back to the default
	// schedule rather than reject the run. The default period needs a
	// stream a few periods long, so this test uses a bigger workload than
	// tiny.
	args := []string{
		"-tier", "sampled", "-ilp", "1", "-entropy", "0", "-mem", "4",
		"-code", "4", "-passes", "4", "-fe", "0,50", "-n", "200000",
	}
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
}

func TestRunThreeTier(t *testing.T) {
	// -sample-period with an analytic screen inserts the sampled middle
	// tier; the summary must report both the sampled cells and how many
	// escalated to exact.
	args := append([]string{
		"-tier", "analytic", "-sample-period", "12000", "-window", "1000",
		"-sample-warmup", "500", "-fe", "0,25,50,75,100",
	}, tiny[2:len(tiny)-2]...)
	args = append(args, "-n", "60000")
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "sampled") || !strings.Contains(errb.String(), "escalated") {
		t.Errorf("three-tier summary missing sampled/escalated counts: %s", errb.String())
	}
}

func TestRunRejectsBadSamplingSchedule(t *testing.T) {
	// A window span that cannot fit its period is a usage error.
	args := append([]string{
		"-tier", "sampled", "-sample-period", "1000", "-window", "2000",
	}, tiny...)
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", code, errb.String())
	}
}
