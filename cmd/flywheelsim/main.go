// Command flywheelsim runs one benchmark on one machine configuration and
// prints the detailed results: timing, trace behaviour, cache and predictor
// statistics, and the energy model's verdict. With -bench all the runs fan
// out across a worker pool.
//
// Examples:
//
//	flywheelsim -bench gcc -arch flywheel -fe 50 -be 50 -node 0.13 -n 500000
//	flywheelsim -bench all -arch baseline -n 200000 -parallel 8
//	flywheelsim -compare -bench vortex -fe 100 -be 50
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"flywheel/internal/cacti"
	"flywheel/internal/lab"
	"flywheel/internal/sim"
	"flywheel/internal/stats"
	"flywheel/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses the flags, fans the requested runs out through the lab and
// renders the tables; it is the whole command, factored out of main so
// tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flywheelsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench    = fs.String("bench", "all", "benchmark name or 'all'")
		arch     = fs.String("arch", "flywheel", "baseline | flywheel | regalloc")
		fe       = fs.Int("fe", 0, "front-end clock boost percent (0..100)")
		be       = fs.Int("be", 0, "back-end trace-execution clock boost percent (0..50)")
		node     = fs.Float64("node", 0.13, "technology node in um (0.18, 0.13, 0.09, 0.06)")
		n        = fs.Uint64("n", 500_000, "measured dynamic instructions (0 = to completion)")
		parallel = fs.Int("parallel", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		compare  = fs.Bool("compare", false, "also run the baseline and print relative numbers")
	)
	fs.Uint64Var(n, "instructions", 500_000, "alias for -n")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	archv, err := parseArch(*arch)
	if err != nil {
		fmt.Fprintln(stderr, "flywheelsim:", err)
		return 1
	}
	names := []string{*bench}
	if *bench == "all" {
		names = workload.Names()
	}

	// Build the whole job list up front — target runs first, each followed
	// by its baseline when comparing — and let the lab fan it out.
	var jobs []lab.Job
	for _, name := range names {
		job := lab.Job{
			Workload:        name,
			Arch:            archv,
			Node:            cacti.Node(*node),
			FEBoostPct:      *fe,
			BEBoostPct:      *be,
			MaxInstructions: *n,
		}
		jobs = append(jobs, job)
		if *compare {
			base := job
			base.Arch = sim.ArchBaseline
			base.FEBoostPct, base.BEBoostPct = 0, 0
			jobs = append(jobs, base)
		}
	}
	results, err := lab.Run(jobs, lab.Options{Workers: *parallel})
	if err != nil {
		fmt.Fprintln(stderr, "flywheelsim:", err)
		return 1
	}

	tbl := stats.NewTable(
		fmt.Sprintf("%s @ %.2fum, FE+%d%% BE+%d%%, %d instructions", *arch, *node, *fe, *be, *n),
		"bench", "time(us)", "IPC", "EC-resid", "mispred", "diverge", "energy(uJ)", "power(W)")
	var compTbl *stats.Table
	if *compare {
		compTbl = stats.NewTable("relative to baseline at the same node",
			"bench", "speedup", "energy-ratio", "power-ratio")
	}

	stride := 1
	if *compare {
		stride = 2
	}
	for i, name := range names {
		res := results[stride*i]
		tbl.Add(name,
			stats.F(float64(res.TimePS)/1e6, 1),
			stats.F(res.IPC, 2),
			stats.Pct(res.ECResidency),
			fmt.Sprint(res.Mispredicts),
			fmt.Sprint(res.Divergences),
			stats.F(res.EnergyPJ/1e6, 1),
			stats.F(res.PowerW, 2),
		)
		if *compare {
			base := results[stride*i+1]
			compTbl.Add(name,
				stats.F(res.Speedup(base), 3),
				stats.F(res.EnergyPJ/base.EnergyPJ, 3),
				stats.F(res.PowerW/base.PowerW, 3),
			)
		}
	}
	fmt.Fprintln(stdout, tbl.String())
	if compTbl != nil {
		fmt.Fprintln(stdout, compTbl.String())
	}
	return 0
}

func parseArch(s string) (sim.Arch, error) {
	switch s {
	case "baseline":
		return sim.ArchBaseline, nil
	case "flywheel":
		return sim.ArchFlywheel, nil
	case "regalloc":
		return sim.ArchRegAlloc, nil
	default:
		return 0, fmt.Errorf("unknown architecture %q (want baseline, flywheel or regalloc)", s)
	}
}
