// Command flywheelsim runs one benchmark on one machine configuration and
// prints the detailed results: timing, trace behaviour, cache and predictor
// statistics, and the energy model's verdict.
//
// Examples:
//
//	flywheelsim -bench gcc -arch flywheel -fe 50 -be 50 -node 0.13 -n 500000
//	flywheelsim -bench all -arch baseline -n 200000
//	flywheelsim -compare -bench vortex -fe 100 -be 50
package main

import (
	"flag"
	"fmt"
	"os"

	"flywheel/internal/cacti"
	"flywheel/internal/sim"
	"flywheel/internal/stats"
	"flywheel/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "all", "benchmark name or 'all'")
		arch    = flag.String("arch", "flywheel", "baseline | flywheel | regalloc")
		fe      = flag.Int("fe", 0, "front-end clock boost percent (0..100)")
		be      = flag.Int("be", 0, "back-end trace-execution clock boost percent (0..50)")
		node    = flag.Float64("node", 0.13, "technology node in um (0.18, 0.13, 0.09, 0.06)")
		n       = flag.Uint64("n", 500_000, "measured dynamic instructions (0 = to completion)")
		compare = flag.Bool("compare", false, "also run the baseline and print relative numbers")
	)
	flag.Parse()

	archv, err := parseArch(*arch)
	if err != nil {
		fatal(err)
	}
	names := []string{*bench}
	if *bench == "all" {
		names = workload.Names()
	}

	tbl := stats.NewTable(
		fmt.Sprintf("%s @ %.2fum, FE+%d%% BE+%d%%, %d instructions", *arch, *node, *fe, *be, *n),
		"bench", "time(us)", "IPC", "EC-resid", "mispred", "diverge", "energy(uJ)", "power(W)")
	var compTbl *stats.Table
	if *compare {
		compTbl = stats.NewTable("relative to baseline at the same node",
			"bench", "speedup", "energy-ratio", "power-ratio")
	}

	for _, name := range names {
		cfg := sim.RunConfig{
			Workload:        name,
			Arch:            archv,
			Node:            cacti.Node(*node),
			FEBoostPct:      *fe,
			BEBoostPct:      *be,
			MaxInstructions: *n,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			fatal(err)
		}
		tbl.Add(name,
			stats.F(float64(res.TimePS)/1e6, 1),
			stats.F(res.IPC, 2),
			stats.Pct(res.ECResidency),
			fmt.Sprint(res.Mispredicts),
			fmt.Sprint(res.Divergences),
			stats.F(res.EnergyPJ/1e6, 1),
			stats.F(res.PowerW, 2),
		)
		if *compare {
			bcfg := cfg
			bcfg.Arch = sim.ArchBaseline
			base, err := sim.Run(bcfg)
			if err != nil {
				fatal(err)
			}
			compTbl.Add(name,
				stats.F(res.Speedup(base), 3),
				stats.F(res.EnergyPJ/base.EnergyPJ, 3),
				stats.F(res.PowerW/base.PowerW, 3),
			)
		}
	}
	fmt.Println(tbl.String())
	if compTbl != nil {
		fmt.Println(compTbl.String())
	}
}

func parseArch(s string) (sim.Arch, error) {
	switch s {
	case "baseline":
		return sim.ArchBaseline, nil
	case "flywheel":
		return sim.ArchFlywheel, nil
	case "regalloc":
		return sim.ArchRegAlloc, nil
	default:
		return 0, fmt.Errorf("unknown architecture %q (want baseline, flywheel or regalloc)", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flywheelsim:", err)
	os.Exit(1)
}
