package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleBench(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-bench", "gzip", "-arch", "flywheel", "-fe", "50", "-be", "50", "-n", "3000"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "gzip") {
		t.Error("output lacks the benchmark row")
	}
	if !strings.Contains(s, "FE+50% BE+50%") {
		t.Error("output lacks the configuration title")
	}
}

func TestRunCompareParallel(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-bench", "vpr", "-compare", "-fe", "50", "-be", "50", "-n", "3000", "-parallel", "4"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "relative to baseline") {
		t.Error("output lacks the comparison table")
	}
}

func TestRunAllDeterministicAcrossWorkerCounts(t *testing.T) {
	var serial, parallel, errb bytes.Buffer
	if code := run([]string{"-bench", "all", "-arch", "baseline", "-n", "2000", "-parallel", "1"}, &serial, &errb); code != 0 {
		t.Fatalf("serial: exit %d, stderr: %s", code, errb.String())
	}
	if code := run([]string{"-bench", "all", "-arch", "baseline", "-n", "2000", "-parallel", "8"}, &parallel, &errb); code != 0 {
		t.Fatalf("parallel: exit %d, stderr: %s", code, errb.String())
	}
	if serial.String() != parallel.String() {
		t.Error("-parallel 1 and -parallel 8 output differ")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-arch", "warp-drive"}, &out, &errb); code != 1 {
		t.Errorf("bad arch: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "warp-drive") {
		t.Errorf("stderr %q does not name the bad architecture", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-bench", "no-such-bench", "-n", "2000"}, &out, &errb); code != 1 {
		t.Errorf("bad bench: exit %d, want 1", code)
	}
	errb.Reset()
	if code := run([]string{"-not-a-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

func TestParseArch(t *testing.T) {
	for in, want := range map[string]string{
		"baseline": "baseline", "flywheel": "flywheel", "regalloc": "regalloc",
	} {
		a, err := parseArch(in)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != want {
			t.Errorf("parseArch(%q) = %v, want %s", in, a, want)
		}
	}
	if _, err := parseArch("nope"); err == nil {
		t.Error("parseArch accepted an unknown architecture")
	}
}
