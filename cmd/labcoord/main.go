// Command labcoord fronts a cluster of labd workers as one lab: it
// consistent-hashes sweep jobs across the workers (each owning its own
// store shard and trace spill directory) and streams back a single merged,
// job-ordered NDJSON response. The coordinator speaks the same protocol as
// a single labd, so existing clients point at a cluster unchanged.
//
// Usage:
//
//	labd -addr 127.0.0.1:8081 -store /srv/flywheel -shard 0 &
//	labd -addr 127.0.0.1:8082 -store /srv/flywheel -shard 1 &
//	labcoord -addr 127.0.0.1:8080 \
//	  -workers http://127.0.0.1:8081,http://127.0.0.1:8082
//
//	curl -s -X POST localhost:8080/v1/sweep -d '{"jobs":[...]}'
//	curl -s localhost:8080/v1/stats   # cluster-wide, per-worker breakdown
//
// Failure policy: per-shard retry with jittered exponential backoff across
// replicas, hedged duplicate requests when a shard runs past its p99,
// per-job deadlines so a stalled worker fails over instead of hanging a
// sweep, a per-worker circuit breaker (repeated transport failures eject a
// worker from routing; background health probes re-admit it after
// -breaker-cooldown), bounded in-flight jobs per shard with 503 +
// Retry-After once -max-pending is exceeded, and work stealing from skewed
// shards. POST /v1/scrub fans an integrity audit out to every worker. See
// DESIGN.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"flywheel/internal/fabric"
	"flywheel/internal/labd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// control mirrors cmd/labd's test hook: ready reports the bound address,
// closing stop drains gracefully like SIGTERM.
type control struct {
	ready chan<- string
	stop  <-chan struct{}
}

func run(args []string, stdout, stderr io.Writer, ctl *control) int {
	fs := flag.NewFlagSet("labcoord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers  = fs.String("workers", "", "comma-separated labd base URLs (required)")
		replicas = fs.Int("replicas", 2, "ring owners per key: failover/hedging width")
		vnodes   = fs.Int("vnodes", 64, "virtual nodes per worker on the hash ring")
		inflight = fs.Int("max-inflight", 4, "concurrent requests per worker shard")
		pending  = fs.Int("max-pending", 16384, "admitted-job cap before /v1/sweep sheds load with 503")
		hedge    = fs.Duration("hedge-min", 250*time.Millisecond, "minimum stall before hedging a job to a replica (0 disables hedging)")
		backoff  = fs.Duration("retry-backoff", 50*time.Millisecond, "base delay between retries of a failed shard request (doubles per retry, jittered)")
		backmax  = fs.Duration("retry-backoff-max", 2*time.Second, "ceiling on the per-retry backoff")
		jobto    = fs.Duration("job-timeout", 2*time.Minute, "per-job deadline on a single worker request; an accepted-but-stalled job fails over to a replica (0 = default, negative disables)")
		brkN     = fs.Int("breaker-threshold", 5, "consecutive transport failures before a worker is ejected from routing")
		brkCool  = fs.Duration("breaker-cooldown", 5*time.Second, "how long an ejected worker sits out before a trial request may re-admit it")
		probe    = fs.Duration("probe-interval", 2*time.Second, "background health-probe period driving breaker rejoin (0 disables the probe loop)")
		wait     = fs.Duration("wait", 10*time.Second, "how long to wait at startup for every worker to report healthy (0 skips the gate)")
		drain    = fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight requests on SIGINT/SIGTERM")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "labcoord: unexpected arguments %v\n", fs.Args())
		return 2
	}
	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(stderr, "labcoord: -workers is required")
		return 2
	}

	coord, err := fabric.New(fabric.Options{
		Workers:             urls,
		Replicas:            *replicas,
		VNodes:              *vnodes,
		MaxInFlightPerShard: *inflight,
		MaxPending:          *pending,
		HedgeDelayMin:       *hedge,
		DisableHedging:      *hedge == 0,
		RetryBackoff:        *backoff,
		RetryBackoffMax:     *backmax,
		JobTimeout:          *jobto,
		BreakerThreshold:    *brkN,
		BreakerCooldown:     *brkCool,
		ProbeInterval:       *probe,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "labcoord:", err)
		return 2
	}

	// Registration gate: do not accept traffic until the cluster answers.
	if *wait > 0 {
		if err := waitForWorkers(coord, *wait); err != nil {
			fmt.Fprintln(stderr, "labcoord:", err)
			return 1
		}
		fmt.Fprintf(stdout, "labcoord: %d workers healthy\n", len(urls))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "labcoord:", err)
		return 1
	}
	fmt.Fprintf(stdout, "labcoord: listening on %s, workers %s\n", ln.Addr(), strings.Join(urls, " "))
	if ctl != nil && ctl.ready != nil {
		ctl.ready <- ln.Addr().String()
	}

	// Background health probes drive breaker rejoin even when no sweep
	// traffic reaches an ejected worker; they die with the process.
	if *probe > 0 {
		probeCtx, cancelProbes := context.WithCancel(context.Background())
		defer cancelProbes()
		coord.StartHealthProbes(probeCtx)
	}

	srv := labd.NewHTTPServer(coord.Handler())
	var stop <-chan struct{}
	if ctl != nil {
		stop = ctl.stop
	}
	if err := labd.ServeGracefully(srv, ln, stop, *drain); err != nil {
		fmt.Fprintln(stderr, "labcoord:", err)
		return 1
	}
	fmt.Fprintln(stdout, "labcoord: drained, bye")
	return 0
}

func waitForWorkers(coord *fabric.Coordinator, wait time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	var err error
	for {
		if err = coord.CheckWorkers(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(200 * time.Millisecond):
		}
	}
}
