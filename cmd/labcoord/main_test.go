package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flywheel/internal/fabric"
	"flywheel/internal/lab"
	"flywheel/internal/labd"
	"flywheel/internal/sim"
)

// startWorkers brings up n in-process labd workers and returns their URLs.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv := labd.NewServer(lab.NewCache())
		srv.SetLogf(t.Logf)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// startCoord runs the labcoord command against the given workers and
// returns its address plus a stopper reporting the exit code.
func startCoord(t *testing.T, workers []string, extra ...string) (string, func() int) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	code := make(chan int, 1)
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-workers", strings.Join(workers, ","),
	}, extra...)
	var out, errb bytes.Buffer
	go func() {
		code <- run(args, &out, &errb, &control{ready: ready, stop: stop})
	}()
	var addr string
	select {
	case addr = <-ready:
	case c := <-code:
		t.Fatalf("labcoord exited early with %d\nstdout: %s\nstderr: %s", c, out.String(), errb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("labcoord never became ready")
	}
	var once sync.Once
	stopper := func() int {
		once.Do(func() { close(stop) })
		select {
		case c := <-code:
			code <- c
			return c
		case <-time.After(30 * time.Second):
			t.Fatal("labcoord never exited")
			return -1
		}
	}
	t.Cleanup(func() { stopper() })
	return addr, stopper
}

// TestClusterEndToEnd: the packaged coordinator over two packaged-style
// workers matches an in-process run, reports cluster stats, and drains
// cleanly.
func TestClusterEndToEnd(t *testing.T) {
	workers := startWorkers(t, 2)
	addr, stop := startCoord(t, workers)

	jobs := make([]lab.Job, 0, 10)
	for i := 0; i < 10; i++ {
		jobs = append(jobs, lab.Job{
			Workload: "ijpeg", Arch: sim.ArchFlywheel,
			FEBoostPct: i * 3, BEBoostPct: 50, MaxInstructions: 20000,
		})
	}
	client := labd.NewClient("http://" + addr)
	lines, err := client.Sweep(labd.SweepRequest{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	want, err := lab.Run(jobs, lab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range lines {
		got, _ := json.Marshal(line.Result)
		exp, _ := json.Marshal(want[i])
		if line.Index != i || string(got) != string(exp) {
			t.Fatalf("job %d: cluster differs from in-process:\n %s\n %s", i, got, exp)
		}
	}

	// The coordinator's stats speak for the whole cluster.
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Misses == 0 {
		t.Fatalf("cluster stats show no simulations: %+v", stats.Cache)
	}

	if code := stop(); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestRegistrationGate: with an unreachable worker the coordinator refuses
// to start (exit 1) instead of serving a half-dead cluster.
func TestRegistrationGate(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close() // nothing listens here anymore

	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", "127.0.0.1:0",
		"-workers", dead,
		"-wait", "300ms",
	}, &out, &errb, nil)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unhealthy") {
		t.Fatalf("stderr does not name the unhealthy worker: %s", errb.String())
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{},                         // no workers
		{"-workers", " , "},        // empty after trimming
		{"-bogus"},                 // unknown flag
		{"-workers", "x", "stray"}, // positional junk
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb, nil); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}

// TestResilienceFlagsAndScrub: the packaged coordinator accepts the
// breaker/probe/deadline flags, surfaces per-worker breaker state on
// /v1/health, and fans POST /v1/scrub out to every worker.
func TestResilienceFlagsAndScrub(t *testing.T) {
	workers := startWorkers(t, 2)
	addr, _ := startCoord(t, workers,
		"-breaker-threshold", "2",
		"-breaker-cooldown", "100ms",
		"-probe-interval", "25ms",
		"-job-timeout", "30s",
		"-retry-backoff-max", "1s",
	)

	resp, err := http.Get("http://" + addr + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health fabric.ClusterHealth
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if len(health.Breakers) != 2 {
		t.Fatalf("health lists %d breakers, want 2: %+v", len(health.Breakers), health)
	}
	for _, u := range workers {
		if health.Breakers[u] != "closed" {
			t.Fatalf("breaker for %s is %q, want closed", u, health.Breakers[u])
		}
	}

	sresp, err := http.Post("http://"+addr+"/v1/scrub", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("scrub status %d", sresp.StatusCode)
	}
	var scrub fabric.ClusterScrub
	if err := json.NewDecoder(sresp.Body).Decode(&scrub); err != nil {
		t.Fatal(err)
	}
	if len(scrub.Workers) != 2 {
		t.Fatalf("scrub reached %d workers, want 2: %+v", len(scrub.Workers), scrub)
	}
	for _, w := range scrub.Workers {
		if w.Error != "" {
			t.Fatalf("worker %s scrub error: %s", w.URL, w.Error)
		}
	}
}
