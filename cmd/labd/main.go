// Command labd serves the lab as a long-running batch service: a resident
// process that fronts the two-tier run cache over HTTP, so every client —
// CLI invocations, curl, other machines — shares one warm memory tier and
// one persistent store, and each distinct configuration in the paper's
// cross-product simulates exactly once, ever.
//
// Usage:
//
//	labd -addr 127.0.0.1:8080 -store ~/.flywheel-store
//
//	curl -s localhost:8080/v1/stats
//	curl -s -X POST localhost:8080/v1/sweep -d '{"jobs":[
//	  {"Workload":"gcc","Arch":1,"FEBoostPct":50,"BEBoostPct":50,
//	   "MaxInstructions":300000}]}'
//	curl -s 'localhost:8080/v1/frontier?ilp=1,6&fe=0,50,100&n=20000'
//
// As one worker of a labcoord cluster, give each process its own shard of
// a shared store root:
//
//	labd -addr 127.0.0.1:8081 -store /srv/flywheel -shard 0
//	labd -addr 127.0.0.1:8082 -store /srv/flywheel -shard 1
//
// SIGINT/SIGTERM drain gracefully: in-flight sweeps finish streaming
// (bounded by -drain) before the process exits. See DESIGN.md for the
// protocol.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"time"

	"flywheel/internal/lab"
	"flywheel/internal/lab/store"
	"flywheel/internal/labd"
	"flywheel/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// control lets tests observe the bound address and stop the server; both
// channels may be nil. Closing stop triggers the same graceful drain as
// SIGTERM.
type control struct {
	ready chan<- string   // receives the bound address once listening
	stop  <-chan struct{} // closing it shuts the server down gracefully
}

// run is the whole command, factored out of main so tests can drive it.
func run(args []string, stdout, stderr io.Writer, ctl *control) int {
	fs := flag.NewFlagSet("labd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		storeDir = fs.String("store", "", "persistent result-store directory (empty = memory only; results die with the process)")
		shard    = fs.Int("shard", -1, "shard index: open <store>/shard-<n> instead of <store> (requires -store; for labcoord clusters)")
		drain    = fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight requests on SIGINT/SIGTERM")
		scrub    = fs.Bool("scrub", false, "one-shot integrity audit: verify the store and trace spill, quarantine corrupt files, exit (0 clean, 3 corruption found; requires -store)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "labd: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if *shard >= 0 && *storeDir == "" {
		fmt.Fprintln(stderr, "labd: -shard requires -store")
		return 2
	}
	if *scrub && *storeDir == "" {
		fmt.Fprintln(stderr, "labd: -scrub requires -store")
		return 2
	}

	cache := lab.NewCache()
	if *storeDir != "" {
		dir := *storeDir
		if *shard >= 0 {
			dir = store.ShardDir(dir, *shard)
		}
		st, err := store.Open(dir)
		if err != nil {
			fmt.Fprintln(stderr, "labd:", err)
			return 1
		}
		cache = lab.NewCacheWithStore(st)
		// Persist recorded dynamic traces next to the results: a restarted
		// service replays from disk without re-emulating anything. Sharded
		// workers spill under their own shard directory.
		sim.SetTraceSpillDir(filepath.Join(dir, "traces"))
		fmt.Fprintf(stdout, "labd: store %s (version %s)\n", st.Dir(), store.Version())
	}

	if *scrub {
		return runScrub(cache, stdout, stderr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "labd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "labd: listening on %s\n", ln.Addr())
	if ctl != nil && ctl.ready != nil {
		ctl.ready <- ln.Addr().String()
	}

	service := labd.NewServer(cache)
	service.SetLogf(func(format string, args ...any) {
		fmt.Fprintf(stderr, format+"\n", args...)
	})
	srv := labd.NewHTTPServer(service.Handler())
	var stop <-chan struct{}
	if ctl != nil {
		stop = ctl.stop
	}
	if err := labd.ServeGracefully(srv, ln, stop, *drain); err != nil {
		fmt.Fprintln(stderr, "labd:", err)
		return 1
	}
	fmt.Fprintln(stdout, "labd: drained, bye")
	return 0
}

// runScrub audits the opened store offline — same walk the service runs
// for POST /v1/scrub — and reports every quarantined file. Exit code 3
// (not 1, which means "could not run") tells scripts corruption was found
// and moved aside.
func runScrub(cache *lab.Cache, stdout, stderr io.Writer) int {
	service := labd.NewServer(cache)
	service.SetLogf(func(string, ...any) {})
	rep, err := service.Scrub()
	if err != nil {
		fmt.Fprintln(stderr, "labd: scrub:", err)
		return 1
	}
	fmt.Fprintf(stdout, "labd: scrub %s: %d entries, %d traces checked, %d quarantined\n",
		rep.Dir, rep.Entries, rep.Traces, len(rep.Quarantined))
	for _, q := range rep.Quarantined {
		fmt.Fprintf(stdout, "labd: quarantined %s -> %s (%s)\n", q.Path, q.To, q.Reason)
	}
	if len(rep.Quarantined) > 0 {
		return 3
	}
	return 0
}
