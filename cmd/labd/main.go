// Command labd serves the lab as a long-running batch service: a resident
// process that fronts the two-tier run cache over HTTP, so every client —
// CLI invocations, curl, other machines — shares one warm memory tier and
// one persistent store, and each distinct configuration in the paper's
// cross-product simulates exactly once, ever.
//
// Usage:
//
//	labd -addr 127.0.0.1:8080 -store ~/.flywheel-store
//
//	curl -s localhost:8080/v1/stats
//	curl -s -X POST localhost:8080/v1/sweep -d '{"jobs":[
//	  {"Workload":"gcc","Arch":1,"FEBoostPct":50,"BEBoostPct":50,
//	   "MaxInstructions":300000}]}'
//	curl -s 'localhost:8080/v1/frontier?ilp=1,6&fe=0,50,100&n=20000'
//
// See DESIGN.md for the protocol.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"flywheel/internal/lab"
	"flywheel/internal/lab/store"
	"flywheel/internal/labd"
	"flywheel/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// control lets tests observe the bound address and stop the server; both
// channels may be nil.
type control struct {
	ready chan<- string   // receives the bound address once listening
	stop  <-chan struct{} // closing it shuts the server down
}

// run is the whole command, factored out of main so tests can drive it.
func run(args []string, stdout, stderr io.Writer, ctl *control) int {
	fs := flag.NewFlagSet("labd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		storeDir = fs.String("store", "", "persistent result-store directory (empty = memory only; results die with the process)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "labd: unexpected arguments %v\n", fs.Args())
		return 2
	}

	cache := lab.NewCache()
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(stderr, "labd:", err)
			return 1
		}
		cache = lab.NewCacheWithStore(st)
		// Persist recorded dynamic traces next to the results: a restarted
		// service replays from disk without re-emulating anything.
		sim.SetTraceSpillDir(filepath.Join(*storeDir, "traces"))
		fmt.Fprintf(stdout, "labd: store %s (version %s)\n", st.Dir(), store.Version())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "labd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "labd: listening on %s\n", ln.Addr())
	if ctl != nil && ctl.ready != nil {
		ctl.ready <- ln.Addr().String()
	}

	srv := &http.Server{Handler: labd.NewServer(cache).Handler()}
	if ctl != nil && ctl.stop != nil {
		go func() {
			<-ctl.stop
			srv.Close()
		}()
	}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(stderr, "labd:", err)
		return 1
	}
	return 0
}
