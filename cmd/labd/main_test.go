package main

import (
	"bufio"
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"flywheel/internal/lab/store"
)

// startLabd runs the command against port 0 and returns its base URL plus
// a stop func (idempotent) that triggers the graceful drain and waits for
// exit, reporting the exit code.
func startLabd(t *testing.T, extra ...string) (string, func() int) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	exited := make(chan int, 1)
	var out, errb bytes.Buffer
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() {
		exited <- run(args, &out, &errb, &control{ready: ready, stop: stop})
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-exited:
		t.Fatalf("labd exited %d before listening, stderr: %s", code, errb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("labd never became ready")
	}
	var once sync.Once
	code := -1
	stopper := func() int {
		once.Do(func() {
			close(stop)
			select {
			case code = <-exited:
			case <-time.After(30 * time.Second):
				t.Error("labd did not shut down")
			}
		})
		return code
	}
	t.Cleanup(func() { stopper() })
	return "http://" + addr, stopper
}

func TestServesStats(t *testing.T) {
	base, _ := startLabd(t, "-store", t.TempDir())
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
}

func TestServesSweep(t *testing.T) {
	base, _ := startLabd(t)
	body := `{"jobs":[{"Workload":"ijpeg","Arch":0,"MaxInstructions":2000}]}`
	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"index":0`) || !strings.Contains(buf.String(), `"result"`) {
		t.Fatalf("sweep NDJSON lacks the result line: %s", buf.String())
	}
}

// TestShutdownDrainsInFlightSweep: a shutdown request arriving mid-sweep
// must not cut the NDJSON stream — the response runs to completion (all
// lines, all results) and only then does the process exit, cleanly.
func TestShutdownDrainsInFlightSweep(t *testing.T) {
	base, stop := startLabd(t)

	const jobs = 8
	var sb strings.Builder
	sb.WriteString(`{"workers":1,"jobs":[`)
	for i := 0; i < jobs; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"Workload":"ijpeg","Arch":1,"FEBoostPct":` +
			string(rune('0'+i)) + `,"BEBoostPct":50,"MaxInstructions":30000}`)
	}
	sb.WriteString(`]}`)

	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rd := bufio.NewReader(resp.Body)
	// One line is streaming; now ask the server to shut down.
	if _, err := rd.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	shutdownCode := make(chan int, 1)
	go func() { shutdownCode <- stop() }()

	// The remaining lines must still arrive, complete and well-formed.
	got := 1
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			break
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if !strings.Contains(line, `"result"`) {
			t.Fatalf("line %d degraded during drain: %s", got, line)
		}
		got++
	}
	if got != jobs {
		t.Fatalf("stream cut by shutdown: %d of %d lines", got, jobs)
	}
	if code := <-shutdownCode; code != 0 {
		t.Fatalf("drained shutdown exited %d, want 0", code)
	}
	// The listener is really gone.
	if _, err := http.Get(base + "/v1/stats"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
}

// TestShardFlag: -shard opens <store>/shard-<n>, giving each cluster
// worker a disjoint store and trace-spill directory.
func TestShardFlag(t *testing.T) {
	root := t.TempDir()
	base, stop := startLabd(t, "-store", root, "-shard", "2")
	body := `{"jobs":[{"Workload":"ijpeg","Arch":0,"MaxInstructions":2000}]}`
	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	stop()
	entries, err := os.ReadDir(filepath.Join(root, "shard-002"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("shard directory not populated: %v (entries %d)", err, len(entries))
	}
	if _, err := os.Stat(filepath.Join(root, "shard-000")); err == nil {
		t.Fatal("wrong shard directory created")
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"stray-positional"},
		{"-shard", "0"}, // -shard without -store
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb, nil); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestBadStoreDir(t *testing.T) {
	var out, errb bytes.Buffer
	// A file in place of the store directory must fail cleanly.
	if code := run([]string{"-store", "/dev/null/impossible"}, &out, &errb, nil); code != 1 {
		t.Errorf("exit %d, want 1 for an unusable store path", code)
	}
}

func TestBadListenAddr(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:-1"}, &out, &errb, nil); code != 1 {
		t.Errorf("exit %d, want 1 for a bad listen address", code)
	}
}

// TestScrubOneShot: -scrub audits the store offline — exit 0 on a clean
// tree, exit 3 (with the quarantine listed) when corruption was found and
// moved aside, and a second pass over the cleaned tree is quiet again.
func TestScrubOneShot(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-store", dir, "-scrub"}, &out, &errb, nil); code != 0 {
		t.Fatalf("clean scrub exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "0 quarantined") {
		t.Fatalf("clean scrub report: %s", out.String())
	}

	// Plant an unparseable entry where real results live.
	bad := filepath.Join(dir, store.Version(), "deadbeef.json")
	if err := os.MkdirAll(filepath.Dir(bad), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte("{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-store", dir, "-scrub"}, &out, &errb, nil); code != 3 {
		t.Fatalf("dirty scrub exit %d, want 3\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "1 quarantined") || !strings.Contains(out.String(), "deadbeef.json") {
		t.Fatalf("dirty scrub report: %s", out.String())
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatal("corrupt file still in place after -scrub")
	}

	out.Reset()
	if code := run([]string{"-store", dir, "-scrub"}, &out, &errb, nil); code != 0 {
		t.Fatalf("post-quarantine scrub exit %d, stdout: %s", code, out.String())
	}
}

func TestScrubRequiresStore(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scrub"}, &out, &errb, nil); code != 2 {
		t.Errorf("exit %d, want 2 for -scrub without -store", code)
	}
}
