package main

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startLabd runs the command against port 0 and returns its base URL and a
// stopper.
func startLabd(t *testing.T, extra ...string) string {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	exited := make(chan int, 1)
	var out, errb bytes.Buffer
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() {
		exited <- run(args, &out, &errb, &control{ready: ready, stop: stop})
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-exited:
		t.Fatalf("labd exited %d before listening, stderr: %s", code, errb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("labd never became ready")
	}
	t.Cleanup(func() {
		close(stop)
		select {
		case <-exited:
		case <-time.After(10 * time.Second):
			t.Error("labd did not shut down")
		}
	})
	return "http://" + addr
}

func TestServesStats(t *testing.T) {
	base := startLabd(t, "-store", t.TempDir())
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
}

func TestServesSweep(t *testing.T) {
	base := startLabd(t)
	body := `{"jobs":[{"Workload":"ijpeg","Arch":0,"MaxInstructions":2000}]}`
	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"index":0`) || !strings.Contains(buf.String(), `"result"`) {
		t.Fatalf("sweep NDJSON lacks the result line: %s", buf.String())
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"stray-positional"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb, nil); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestBadStoreDir(t *testing.T) {
	var out, errb bytes.Buffer
	// A file in place of the store directory must fail cleanly.
	if code := run([]string{"-store", "/dev/null/impossible"}, &out, &errb, nil); code != 1 {
		t.Errorf("exit %d, want 1 for an unusable store path", code)
	}
}

func TestBadListenAddr(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:-1"}, &out, &errb, nil); code != 1 {
		t.Errorf("exit %d, want 1 for a bad listen address", code)
	}
}
