// Command labload drives a labd worker or a labcoord cluster with a
// replayed mix of sweep and frontier requests and reports what the paper's
// users actually feel: request latency (p50/p95/p99), error rate, and how
// the lab's cache tiers absorbed the load (memory hits vs disk hits vs
// fresh simulations).
//
// Popularity is Zipf-skewed — a handful of configurations dominate, the
// long tail trickles — which is both how real sweep traffic looks and the
// worst case for a sharded fabric, since hot keys pile onto one worker and
// exercise its stealing and hedging paths.
//
// With -chaos it doubles as a self-checking failure drill: a seeded fault
// injector sits between the generator and the service, dropping requests,
// synthesizing 5xx and cutting NDJSON streams mid-flight, and the run
// reports how many cuts the client's resume path absorbed (-minresumes
// turns that into a pass/fail gate for CI).
//
// Usage:
//
//	labload -url http://127.0.0.1:8080 -c 8 -n 200 -batch 4 -zipf 1.2
//	labload -url http://127.0.0.1:8080 -n 100 -chaos 7 -minresumes 1
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"flywheel/internal/chaos"
	"flywheel/internal/lab"
	"flywheel/internal/labd"
	"flywheel/internal/sim"
	"flywheel/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// sample is one finished request.
type sample struct {
	latency time.Duration
	jobs    int
	err     bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("labload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url      = fs.String("url", "http://127.0.0.1:8080", "labd or labcoord base URL")
		conc     = fs.Int("c", 4, "concurrent clients")
		total    = fs.Int("n", 100, "total requests to issue")
		batch    = fs.Int("batch", 4, "jobs per sweep request")
		space    = fs.Int("space", 64, "distinct configurations in the job universe")
		zipfS    = fs.Float64("zipf", 1.2, "Zipf skew of configuration popularity (>1; 0 = uniform)")
		frontier = fs.Float64("frontier", 0.1, "fraction of requests that are /v1/frontier queries")
		ninstr   = fs.Int("ninstr", 20000, "instructions per simulated job")
		seed     = fs.Int64("seed", 1, "random seed (runs are reproducible)")
		timeout  = fs.Duration("timeout", 2*time.Minute, "per-request timeout")
		chaosSee = fs.Uint64("chaos", 0, "inject seeded transport faults (drops, 5xx, mid-stream cuts, delays) into this run's requests; 0 disables")
		minRes   = fs.Int("minresumes", 0, "fail the run unless at least this many stream resumes happened (chaos smoke gate)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "labload: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if *conc < 1 || *total < 1 || *batch < 1 || *space < 2 {
		fmt.Fprintln(stderr, "labload: -c, -n, -batch must be >= 1 and -space >= 2")
		return 2
	}
	if *zipfS != 0 && *zipfS <= 1 {
		fmt.Fprintln(stderr, "labload: -zipf must be > 1 (or 0 for uniform)")
		return 2
	}
	if *frontier < 0 || *frontier > 1 {
		fmt.Fprintln(stderr, "labload: -frontier must be in [0,1]")
		return 2
	}

	universe := buildUniverse(*space, *ninstr)
	client := labd.NewClient(*url)
	var injector *chaos.RoundTripper
	if *chaosSee != 0 {
		// A mix that leans on every recovery path: resumable stream cuts
		// dominate, with a sprinkle of connection drops, synthesized 5xx
		// (including 503s that exercise the shed/retry loop), and delays.
		injector = chaos.New(chaos.Plan{
			Seed:     *chaosSee,
			Drop:     0.03,
			Err5xx:   0.03,
			Truncate: 0.10,
			Delay:    0.05,
			MaxDelay: 50 * time.Millisecond,
			// Sweeps only: the bracketing /v1/stats calls must stay
			// reliable or the report itself becomes flaky.
			PathSubstr: "/v1/sweep",
		}, nil)
		client.HTTPClient = &http.Client{Transport: injector}
	}

	before, err := client.Stats()
	if err != nil {
		fmt.Fprintf(stderr, "labload: %s unreachable: %v\n", *url, err)
		return 1
	}

	var (
		issued  atomic.Int64
		shed    atomic.Uint64
		mu      sync.Mutex
		samples []sample
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			var zipf *rand.Zipf
			if *zipfS != 0 {
				zipf = rand.NewZipf(rng, *zipfS, 1, uint64(len(universe)-1))
			}
			pick := func() lab.Job {
				if zipf != nil {
					return universe[zipf.Uint64()]
				}
				return universe[rng.Intn(len(universe))]
			}
			var local []sample
			for issued.Add(1) <= int64(*total) {
				local = append(local, oneRequest(client, rng, pick, *batch, *frontier, *timeout, &shed))
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := client.Stats()
	if err != nil {
		fmt.Fprintf(stderr, "labload: final stats: %v\n", err)
		return 1
	}
	report(stdout, samples, elapsed, shed.Load(), before.Cache, after.Cache)
	if injector != nil {
		fmt.Fprintf(stdout, "chaos: %s; client resumed %d truncated streams\n", injector.Counts(), client.Resumes())
	}
	if int(client.Resumes()) < *minRes {
		fmt.Fprintf(stderr, "labload: only %d stream resumes, -minresumes wanted %d\n", client.Resumes(), *minRes)
		return 1
	}
	return 0
}

// buildUniverse lays a deterministic grid of n configurations over the
// registered workloads and the paper's FE/BE boost axes.
func buildUniverse(n, ninstr int) []lab.Job {
	names := workload.Names()
	jobs := make([]lab.Job, 0, n)
	for i := 0; len(jobs) < n; i++ {
		jobs = append(jobs, lab.Job{
			Workload:        names[i%len(names)],
			Arch:            sim.ArchFlywheel,
			FEBoostPct:      (i / len(names) * 7) % 100,
			BEBoostPct:      50,
			MaxInstructions: uint64(ninstr),
		})
	}
	return jobs
}

// oneRequest issues a single sweep or frontier request, retrying while the
// service sheds load with 503 + Retry-After.
func oneRequest(client *labd.Client, rng *rand.Rand, pick func() lab.Job, batch int, frontierFrac float64, timeout time.Duration, shed *atomic.Uint64) sample {
	isFrontier := rng.Float64() < frontierFrac
	var jobs []lab.Job
	var params map[string]string
	if isFrontier {
		params = map[string]string{
			"ilp": "1", "entropy": "0", "mem": "4", "code": "1", "passes": "1",
			"fe": "0," + strconv.Itoa(rng.Intn(20)*5),
			"n":  strconv.FormatUint(pick().MaxInstructions, 10),
		}
	} else {
		jobs = make([]lab.Job, batch)
		for i := range jobs {
			jobs[i] = pick()
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	for {
		var err error
		if isFrontier {
			_, err = client.FrontierContext(ctx, params)
		} else {
			_, err = client.SweepContext(ctx, labd.SweepRequest{Jobs: jobs})
		}
		if labd.IsBackpressure(err) && ctx.Err() == nil {
			shed.Add(1)
			select {
			case <-time.After(50 * time.Millisecond):
				continue
			case <-ctx.Done():
			}
		}
		return sample{latency: time.Since(start), jobs: len(jobs), err: err != nil}
	}
}

func report(w io.Writer, samples []sample, elapsed time.Duration, shed uint64, before, after lab.Stats) {
	var lats []time.Duration
	var errs, jobs int
	for _, s := range samples {
		errs += btoi(s.err)
		jobs += s.jobs
		if !s.err {
			lats = append(lats, s.latency)
		}
	}
	fmt.Fprintf(w, "labload: %d requests in %.2fs (%.1f req/s), %d jobs, %d errors (%.2f%%), %d shed+retried\n",
		len(samples), elapsed.Seconds(), float64(len(samples))/elapsed.Seconds(),
		jobs, errs, 100*float64(errs)/float64(len(samples)), shed)

	if len(lats) > 0 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		fmt.Fprintf(w, "latency: p50 %s  p95 %s  p99 %s  (min %s, max %s)\n",
			pct(lats, 50), pct(lats, 95), pct(lats, 99), lats[0].Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}

	hits := after.Hits - before.Hits
	disk := after.DiskHits - before.DiskHits
	miss := after.Misses - before.Misses
	if tot := hits + disk + miss; tot > 0 {
		fmt.Fprintf(w, "cache tiers: memory %.1f%%  disk %.1f%%  sim %.1f%%  (%d lookups)\n",
			100*float64(hits)/float64(tot), 100*float64(disk)/float64(tot), 100*float64(miss)/float64(tot), tot)
	}
}

func pct(sorted []time.Duration, q int) time.Duration {
	i := len(sorted) * q / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Microsecond)
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
