package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"flywheel/internal/lab"
	"flywheel/internal/labd"
)

func startWorker(t *testing.T) string {
	t.Helper()
	srv := labd.NewServer(lab.NewCache())
	srv.SetLogf(t.Logf)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestLoadReport: a short replay against a live worker exits 0 and prints
// the three report lines — throughput, latency percentiles, tier split.
func TestLoadReport(t *testing.T) {
	url := startWorker(t)
	var out, errb bytes.Buffer
	code := run([]string{
		"-url", url, "-n", "12", "-c", "3", "-batch", "2",
		"-space", "8", "-frontier", "0.25", "-ninstr", "2000",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	got := out.String()
	for _, want := range []string{"12 requests", "0 errors", "latency: p50", "p99", "cache tiers:", "sim "} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}

	// After the whole universe is memoized, a replay simulates nothing —
	// the tier report shows it all served from cache.
	if _, err := labd.NewClient(url).Sweep(labd.SweepRequest{Jobs: buildUniverse(8, 2000)}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{
		"-url", url, "-n", "12", "-c", "3", "-batch", "2",
		"-space", "8", "-frontier", "0", "-ninstr", "2000",
	}, &out, &errb); code != 0 {
		t.Fatalf("warm replay failed: %s", errb.String())
	}
	if !strings.Contains(out.String(), "memory 100.0%") || !strings.Contains(out.String(), "sim 0.0%") {
		t.Errorf("warm replay not served from memory:\n%s", out.String())
	}
}

func TestUnreachableTarget(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-url", "http://127.0.0.1:1", "-n", "1"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unreachable") {
		t.Errorf("stderr: %s", errb.String())
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-c", "0"},
		{"-zipf", "0.5"},
		{"-frontier", "2"},
		{"-bogus"},
		{"stray"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}

// TestChaosDrill: with -chaos the run injects seeded transport faults and
// the client's resume path absorbs the stream cuts; -minresumes turns the
// absorption into a hard gate. Fault draws depend on the ephemeral port,
// so the assertion is "recovery happened", not an exact count.
func TestChaosDrill(t *testing.T) {
	url := startWorker(t)
	var out, errb bytes.Buffer
	code := run([]string{
		"-url", url, "-n", "60", "-c", "4", "-batch", "2",
		"-space", "8", "-frontier", "0", "-ninstr", "2000",
		"-chaos", "7", "-minresumes", "1",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "chaos:") || !strings.Contains(got, "resumed") {
		t.Fatalf("report missing chaos summary:\n%s", got)
	}
}

// TestMinResumesGate: a clean run that cannot possibly resume fails the
// gate with a diagnostic instead of passing vacuously.
func TestMinResumesGate(t *testing.T) {
	url := startWorker(t)
	var out, errb bytes.Buffer
	code := run([]string{
		"-url", url, "-n", "4", "-c", "1", "-batch", "1",
		"-space", "4", "-frontier", "0", "-ninstr", "2000",
		"-minresumes", "999",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(errb.String(), "minresumes") {
		t.Fatalf("gate failure not diagnosed: %s", errb.String())
	}
}
