package flywheel

// Synthetic workloads and design-space exploration. The paper's ten proxy
// benchmarks fix the workload axis; Synthesize opens it — a Profile names
// workload characteristics directly and generates a deterministic kernel
// exhibiting them — and Explore sweeps (profile × architecture × clock
// boosts × technology node) grids to the speedup-vs-energy Pareto
// frontier, answering "for which programs does a multiple-speed pipeline
// win?".

import (
	"fmt"

	"flywheel/internal/cacti"
	"flywheel/internal/explore"
	"flywheel/internal/lab"
	"flywheel/internal/sim"
	"flywheel/internal/workload"
	"flywheel/internal/workload/synth"
)

// Profile parameterizes one synthetic workload. Integer knobs default when
// zero (ILP 4, 32 KiB data, 4 KiB code, 4 passes); the float knobs are
// fractions in [0, 1] whose zero value is meaningful. Generation is
// deterministic: the same profile always produces the same program, and
// the profile's canonical name doubles as its identity in the run cache.
type Profile struct {
	// ILP is the number of independent dependency chains (1..6); the total
	// arithmetic per block is fixed, so higher ILP means shorter chains.
	ILP int
	// BranchEntropy is the fraction of conditional branches whose
	// direction depends on pseudo-random data.
	BranchEntropy float64
	// MemFootprintKB is the data working set in KiB (rounded up to a power
	// of two, max 1024).
	MemFootprintKB int
	// StrideFrac is the fraction of memory accesses that walk the working
	// set sequentially; the rest address it pseudo-randomly.
	StrideFrac float64
	// FPMix is the fraction of chain arithmetic done in floating point.
	FPMix float64
	// RegReuse concentrates destination-register writes onto one hot
	// architected register, stressing its rename pool.
	RegReuse float64
	// CodeFootprintKB is the static code footprint in KiB (max 256).
	CodeFootprintKB int
	// Seed selects the generated structure and runtime data.
	Seed uint64
	// Passes scales the dynamic length of a run to completion (1..64).
	Passes int
}

func (p Profile) internal() synth.Profile {
	return synth.Profile{
		ILP: p.ILP, BranchEntropy: p.BranchEntropy,
		MemFootprintKB: p.MemFootprintKB, StrideFrac: p.StrideFrac,
		FPMix: p.FPMix, RegReuse: p.RegReuse,
		CodeFootprintKB: p.CodeFootprintKB, Seed: p.Seed, Passes: p.Passes,
	}
}

func profileFromInternal(p synth.Profile) Profile {
	return Profile{
		ILP: p.ILP, BranchEntropy: p.BranchEntropy,
		MemFootprintKB: p.MemFootprintKB, StrideFrac: p.StrideFrac,
		FPMix: p.FPMix, RegReuse: p.RegReuse,
		CodeFootprintKB: p.CodeFootprintKB, Seed: p.Seed, Passes: p.Passes,
	}
}

// Name returns the profile's canonical benchmark name (defaults resolved):
// the name Synthesize registers it under.
func (p Profile) Name() string { return p.internal().Name() }

// Synthesize generates the profile's kernel and registers it as a
// workload, returning the canonical benchmark name to use in Config.
// Synthesizing the same profile again is a cheap no-op, so callers need no
// coordination; the generated program is deterministic in the profile.
func Synthesize(p Profile) (string, error) {
	w, err := synth.Build(p.internal())
	if err != nil {
		return "", err
	}
	if err := workload.Register(w); err != nil {
		return "", err
	}
	return w.Name, nil
}

// SynthesizeSource returns the generated assembly text of the profile's
// kernel, for inspection or for RunAssembly.
func SynthesizeSource(p Profile) (string, error) {
	return synth.Generate(p.internal())
}

// ExploreSpace is the design-space grid: the cross-product of every
// non-empty axis. Nil axes default — Archs to {ArchFlywheel}, FEBoosts to
// {0, 50, 100}, BEBoosts to {50}, Nodes to {Node130} — and a baseline run
// per (profile, node) is always added for normalization.
type ExploreSpace struct {
	Profiles     []Profile
	Archs        []Arch
	FEBoosts     []int
	BEBoosts     []int
	Nodes        []Node
	Instructions uint64
}

// ExplorePoint is one evaluated configuration of the grid.
type ExplorePoint struct {
	// Profile has its defaults resolved; Benchmark is its registered name.
	Profile    Profile
	Benchmark  string
	Arch       Arch
	Node       Node
	FEBoostPct int
	BEBoostPct int

	// Result is this configuration's run; Baseline is the same profile's
	// baseline machine at the same node.
	Result   Result
	Baseline Result

	// Speedup is baseline time over this time; EnergyRatio is this energy
	// over baseline energy. OnFrontier marks Pareto-optimal points.
	Speedup     float64
	EnergyRatio float64
	OnFrontier  bool
}

// ExploreReport is the outcome of one exploration (produced by Explore),
// points in grid order.
type ExploreReport struct {
	Points []ExplorePoint

	// frontier is precomputed by Explore from the internal report, so the
	// public ordering contract has a single source of truth.
	frontier []ExplorePoint
}

// Frontier returns the Pareto-optimal points, fastest first (descending
// speedup, ties in grid order).
func (r *ExploreReport) Frontier() []ExplorePoint {
	return append([]ExplorePoint(nil), r.frontier...)
}

// Explore synthesizes every profile, runs the whole grid (plus baselines)
// as one batched, memoized, worker-pool submission, and reports each
// point's speedup and energy against its baseline with the Pareto frontier
// marked. Results are deterministic at any worker count.
func Explore(space ExploreSpace, opt SweepOptions) (*ExploreReport, error) {
	isp := explore.Space{
		FEBoosts:     space.FEBoosts,
		BEBoosts:     space.BEBoosts,
		Instructions: space.Instructions,
	}
	for _, p := range space.Profiles {
		isp.Profiles = append(isp.Profiles, p.internal())
	}
	if space.Archs != nil {
		isp.Archs = make([]sim.Arch, len(space.Archs))
		for i, a := range space.Archs {
			isp.Archs[i] = a.internal()
		}
	}
	if space.Nodes != nil {
		isp.Nodes = make([]cacti.Node, len(space.Nodes))
		for i, n := range space.Nodes {
			switch n {
			case Node180, Node130, Node90, Node60:
				isp.Nodes[i] = cacti.Node(n)
			default:
				return nil, fmt.Errorf("flywheel: unsupported node %v", float64(n))
			}
		}
	}
	iopt := explore.Options{Workers: opt.Workers}
	if opt.Progress != nil {
		iopt.Progress = func(done, total int, _ lab.Job) { opt.Progress(done, total) }
	}
	rep, err := explore.Explore(isp, iopt)
	if err != nil {
		return nil, err
	}
	out := &ExploreReport{Points: make([]ExplorePoint, len(rep.Points))}
	for i, p := range rep.Points {
		out.Points[i] = pointFromInternal(p)
	}
	for _, p := range rep.Frontier() {
		out.frontier = append(out.frontier, pointFromInternal(p))
	}
	return out, nil
}

func pointFromInternal(p explore.Point) ExplorePoint {
	return ExplorePoint{
		Profile:     profileFromInternal(p.Profile.Defaulted()),
		Benchmark:   p.Profile.Name(),
		Arch:        archFromInternal(p.Arch),
		Node:        Node(p.Node),
		FEBoostPct:  p.FEBoost,
		BEBoostPct:  p.BEBoost,
		Result:      publicResult(p.Result),
		Baseline:    publicResult(p.Baseline),
		Speedup:     p.Speedup,
		EnergyRatio: p.EnergyRatio,
		OnFrontier:  p.OnFrontier,
	}
}

func archFromInternal(a sim.Arch) Arch {
	switch a {
	case sim.ArchFlywheel:
		return ArchFlywheel
	case sim.ArchRegAlloc:
		return ArchRegAlloc
	default:
		return ArchBaseline
	}
}
