package flywheel

import (
	"strings"
	"testing"
)

func TestSynthesizeAndRun(t *testing.T) {
	p := Profile{MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: 21}
	name, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	if name != p.Name() || !strings.HasPrefix(name, "synth/") {
		t.Fatalf("Synthesize returned %q, want %q", name, p.Name())
	}
	// Idempotent: same profile registers again without error.
	if _, err := Synthesize(p); err != nil {
		t.Fatalf("re-synthesize: %v", err)
	}
	res, err := Run(Config{Benchmark: name, Arch: ArchFlywheel, FEBoostPct: 50, BEBoostPct: 50, Instructions: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired < 5_000 {
		t.Errorf("retired %d, want >= 5000", res.Retired)
	}
	src, err := SynthesizeSource(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "measure:") {
		t.Error("generated source has no measure label")
	}
}

func TestSynthesizeRejectsInvalidProfile(t *testing.T) {
	if _, err := Synthesize(Profile{ILP: 99}); err == nil {
		t.Error("no error for out-of-range ILP")
	}
	if _, err := Explore(ExploreSpace{
		Profiles: []Profile{{MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1}},
		Nodes:    []Node{0.42},
	}, SweepOptions{}); err == nil {
		t.Error("no error for unsupported node")
	}
}

func TestExplorePublicAPI(t *testing.T) {
	space := ExploreSpace{
		Profiles: []Profile{
			{MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: 31},
			{ILP: 1, BranchEntropy: 1, MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: 32},
		},
		FEBoosts:     []int{0, 100},
		Instructions: 4_000,
	}
	var calls int
	rep, err := Explore(space, SweepOptions{Progress: func(done, total int) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	// 2 profiles × 2 FE boosts × default {BE 50} × default flywheel arch.
	if got, want := len(rep.Points), 4; got != want {
		t.Fatalf("points = %d, want %d", got, want)
	}
	if calls == 0 {
		t.Error("progress callback never invoked")
	}
	frontier := rep.Frontier()
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(frontier); i++ {
		if frontier[i].Speedup > frontier[i-1].Speedup {
			t.Error("frontier not sorted by descending speedup")
		}
	}
	for _, p := range rep.Points {
		if p.Profile.ILP == 0 || p.Profile.Passes == 0 {
			t.Errorf("point profile not defaulted: %+v", p.Profile)
		}
		if p.Benchmark == "" || p.Result.TimePS == 0 || p.Baseline.TimePS == 0 {
			t.Errorf("incomplete point: %+v", p)
		}
	}
}
