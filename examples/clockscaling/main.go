// Clockscaling: the paper's Figure 12 experiment in miniature. Sweep the
// front-end clock boost with the execution core fixed at +50% and watch the
// normalized performance of a few benchmarks (the full ten-benchmark sweep
// lives in cmd/experiments -fig 12).
package main

import (
	"fmt"
	"log"

	"flywheel"
)

func main() {
	benchmarks := []string{"ijpeg", "vpr", "vortex"}
	boosts := []int{0, 25, 50, 75, 100}

	fmt.Printf("normalized performance vs fully synchronous baseline (BE +50%%)\n\n")
	fmt.Printf("%-8s", "bench")
	for _, fe := range boosts {
		fmt.Printf("  FE+%-4d", fe)
	}
	fmt.Println()

	for _, b := range benchmarks {
		base, err := flywheel.Run(flywheel.Config{
			Benchmark: b, Arch: flywheel.ArchBaseline, Instructions: 120_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s", b)
		for _, fe := range boosts {
			fly, err := flywheel.Run(flywheel.Config{
				Benchmark:    b,
				Arch:         flywheel.ArchFlywheel,
				FEBoostPct:   fe,
				BEBoostPct:   50,
				Instructions: 120_000,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6.3f", fly.Speedup(base))
		}
		fmt.Println()
	}
}
