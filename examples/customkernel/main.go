// Customkernel: write your own assembly kernel and run it on both machines.
// The toy kernel below is a polynomial evaluation loop — predictable
// control, a serial multiply-add chain, and a little memory traffic.
package main

import (
	"fmt"
	"log"

	"flywheel"
)

const kernel = `
; Horner evaluation of a degree-7 polynomial at 4096 points.
	la  r1, coeffs
	li  r2, 4096          ; points
	li  r3, 3             ; x starts at 3, steps by 5
	la  r10, out
main:
	li  r4, 0             ; accumulator
	li  r5, 8             ; coefficient count
	mv  r6, r1
horner:
	ld  r7, 0(r6)
	mul r4, r4, r3
	add r4, r4, r7
	addi r6, r6, 8
	addi r5, r5, -1
	bnez r5, horner
	sd  r4, 0(r10)
	addi r10, r10, 8
	addi r3, r3, 5
	addi r2, r2, -1
	bnez r2, main
	halt
.data
coeffs:
	.word 7, -3, 11, 2, -9, 5, 1, 13
out:
	.space 32768
`

func main() {
	for _, arch := range []flywheel.Arch{flywheel.ArchBaseline, flywheel.ArchFlywheel} {
		res, err := flywheel.RunAssembly("horner.s", kernel, flywheel.Config{
			Arch:            arch,
			FEBoostPct:      50,
			BEBoostPct:      50,
			RunToCompletion: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s time=%8.1f us  IPC=%.2f  energy=%7.1f uJ  EC residency=%.1f%%\n",
			arch, float64(res.TimePS)/1e6, res.IPC, res.EnergyPJ/1e6, res.ECResidency*100)
	}
}
