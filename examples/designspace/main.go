// Designspace: answer "for which programs does a multiple-speed pipeline
// win?" with synthetic workloads. The paper's fixed benchmarks each bundle
// many characteristics; here we synthesize kernels whose branch entropy
// and ILP are set directly, sweep the Flywheel clock-boost grid over them
// in one batched exploration, and read the speedup-vs-energy Pareto
// frontier off the result.
package main

import (
	"fmt"
	"log"

	"flywheel"
)

func main() {
	// The workload axis: every combination of predictable vs random
	// branches and serial vs parallel arithmetic — the two characteristics
	// the paper's conclusions hinge on (EC residency and front-end
	// pressure). Small footprints keep the example quick.
	var profiles []flywheel.Profile
	for _, entropy := range []float64{0, 1} {
		for _, ilp := range []int{1, 6} {
			profiles = append(profiles, flywheel.Profile{
				ILP:             ilp,
				BranchEntropy:   entropy,
				MemFootprintKB:  8,
				CodeFootprintKB: 2,
				Passes:          2,
				Seed:            1,
			})
		}
	}

	// One call runs the whole grid — profiles × FE boosts × BE 50% plus a
	// baseline per profile — across a worker pool with memoization, and
	// normalizes every point to its own baseline.
	report, err := flywheel.Explore(flywheel.ExploreSpace{
		Profiles:     profiles,
		FEBoosts:     []int{0, 50, 100},
		Instructions: 40_000,
	}, flywheel.SweepOptions{
		Progress: func(done, total int) { fmt.Printf("\r%d/%d runs", done, total) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Printf("%-28s %4s %4s  %8s %8s %s\n", "profile", "FE%", "BE%", "speedup", "energy", "")
	for _, p := range report.Points {
		mark := ""
		if p.OnFrontier {
			mark = "  <- frontier"
		}
		fmt.Printf("%-28s %4d %4d  %8.3f %8.3f%s\n",
			label(p.Profile), p.FEBoostPct, p.BEBoostPct, p.Speedup, p.EnergyRatio, mark)
	}

	// The frontier is the design answer: the boost settings worth building
	// for each kind of program. Expect high-entropy kernels to favor
	// front-end boost (the machine lives in trace-creation mode) and
	// predictable kernels to win on energy (the front-end stays gated).
	fmt.Println("\nPareto frontier (fastest first):")
	for _, p := range report.Frontier() {
		fmt.Printf("  %-28s FE+%d%% -> %.3fx at %.3fx energy\n",
			label(p.Profile), p.FEBoostPct, p.Speedup, p.EnergyRatio)
	}
}

func label(p flywheel.Profile) string {
	return fmt.Sprintf("ilp=%d entropy=%.0f", p.ILP, p.BranchEntropy)
}
