// Energynodes: the paper's Figure 15 experiment in miniature. As feature
// sizes shrink, leakage grows relative to dynamic power and the Flywheel's
// energy advantage narrows — its Execution Cache and larger register file
// leak regardless of how much front-end switching they save.
package main

import (
	"fmt"
	"log"

	"flywheel"
)

func main() {
	nodes := []flywheel.Node{flywheel.Node130, flywheel.Node90, flywheel.Node60}
	bench := "equake"

	fmt.Printf("%s at (FE+100%%, BE+50%%): energy vs same-node baseline\n\n", bench)
	fmt.Printf("%-8s %14s %14s %14s %14s\n",
		"node", "base energy", "fly energy", "ratio", "fly leakage")
	for _, n := range nodes {
		base, err := flywheel.Run(flywheel.Config{
			Benchmark: bench, Arch: flywheel.ArchBaseline, Node: n, Instructions: 150_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fly, err := flywheel.Run(flywheel.Config{
			Benchmark: bench, Arch: flywheel.ArchFlywheel, Node: n,
			FEBoostPct: 100, BEBoostPct: 50, Instructions: 150_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.2f %11.1f uJ %11.1f uJ %14.3f %13.1f%%\n",
			float64(n), base.EnergyPJ/1e6, fly.EnergyPJ/1e6,
			fly.EnergyPJ/base.EnergyPJ, fly.LeakageFrac*100)
	}
}
