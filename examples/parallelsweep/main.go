// Parallelsweep: regenerate the paper's Figure 12 measurement — every
// benchmark at every front-end boost — in one flywheel.Sweep call. The runs
// fan out across a worker pool sized to the machine, duplicates are served
// from the run cache, and a progress callback reports completion.
package main

import (
	"fmt"
	"log"

	"flywheel"
)

func main() {
	boosts := []int{0, 25, 50, 75, 100}
	base := flywheel.Config{
		Arch:         flywheel.ArchFlywheel,
		BEBoostPct:   50,
		Instructions: 50_000,
	}
	benches := flywheel.Benchmarks()

	results, err := flywheel.Sweep(base, benches, boosts, flywheel.SweepOptions{
		Progress: func(done, total int) {
			if done%10 == 0 || done == total {
				fmt.Printf("\r%d/%d runs", done, total)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Baselines for normalization, batched through the same machinery.
	baseCfgs := make([]flywheel.Config, len(benches))
	for i, b := range benches {
		baseCfgs[i] = flywheel.Config{Benchmark: b, Instructions: base.Instructions}
	}
	baselines, err := flywheel.RunMany(baseCfgs, flywheel.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s", "bench")
	for _, fe := range boosts {
		fmt.Printf("  FE+%3d%%", fe)
	}
	fmt.Println()
	for i, b := range benches {
		fmt.Printf("%-8s", b)
		for j := range boosts {
			fmt.Printf("  %7.3f", results[i][j].Speedup(baselines[i]))
		}
		fmt.Println()
	}
}
