// Quickstart: run one benchmark on the baseline machine and on the Flywheel
// machine with the paper's headline clock plan (front-end +50%, back-end
// +50% in trace-execution mode), and print the comparison.
package main

import (
	"fmt"
	"log"

	"flywheel"
)

func main() {
	cfg := flywheel.Config{
		Benchmark:    "vpr",
		Arch:         flywheel.ArchFlywheel,
		Node:         flywheel.Node130,
		FEBoostPct:   50,
		BEBoostPct:   50,
		Instructions: 200_000,
	}
	fly, base, err := flywheel.Compare(cfg)
	if err != nil {
		log.Fatal(err)
	}

	info, _ := flywheel.Describe(cfg.Benchmark)
	fmt.Printf("benchmark: %s (%s)\n%s\n\n", info.Name, info.Suite, info.Description)

	fmt.Printf("%-22s %15s %15s\n", "", "baseline", "flywheel")
	row := func(name, a, b string) { fmt.Printf("%-22s %15s %15s\n", name, a, b) }
	row("time", us(base.TimePS), us(fly.TimePS))
	row("energy", uj(base.EnergyPJ), uj(fly.EnergyPJ))
	row("avg power", fmt.Sprintf("%.2f W", base.PowerW), fmt.Sprintf("%.2f W", fly.PowerW))
	row("branch accuracy", pct(base.BranchAccuracy), pct(fly.BranchAccuracy))
	row("EC residency", "-", pct(fly.ECResidency))
	fmt.Println()
	fmt.Printf("speedup:       %.2fx\n", fly.Speedup(base))
	fmt.Printf("energy ratio:  %.2f\n", fly.EnergyPJ/base.EnergyPJ)
	fmt.Printf("power ratio:   %.2f\n", fly.PowerW/base.PowerW)
}

func us(ps int64) string      { return fmt.Sprintf("%.1f us", float64(ps)/1e6) }
func uj(pj float64) string    { return fmt.Sprintf("%.1f uJ", pj/1e6) }
func pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }
