// Package flywheel is a from-scratch Go reproduction of "Increased
// Scalability and Power Efficiency by Using Multiple Speed Pipelines"
// (Talpes & Marculescu, ISCA 2005): the Flywheel microarchitecture, in
// which a dual-clock issue window decouples the pipeline front-end into its
// own faster clock domain and an Execution Cache replays pre-scheduled
// issue units so the execution core can run at a higher frequency with the
// front-end and scheduler clock-gated.
//
// The package exposes the complete evaluation stack: a cycle-level
// simulator of the baseline superscalar out-of-order machine and of the
// Flywheel machine, the CACTI-style technology model that sets per-module
// clock frequencies, a Wattch-style energy model, the ten benchmark-proxy
// workloads, and runners for every table and figure in the paper.
//
// Quick start:
//
//	res, err := flywheel.Run(flywheel.Config{
//	    Benchmark:  "gcc",
//	    Arch:       flywheel.ArchFlywheel,
//	    FEBoostPct: 50,
//	    BEBoostPct: 50,
//	})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package flywheel

import (
	"fmt"
	"path/filepath"

	"flywheel/internal/cacti"
	"flywheel/internal/lab"
	"flywheel/internal/lab/store"
	"flywheel/internal/labd"
	"flywheel/internal/sim"
	"flywheel/internal/trace"
	"flywheel/internal/workload"
)

// Arch selects the simulated machine.
type Arch int

// Machine architectures.
const (
	// ArchBaseline is the paper's fully synchronous four-way superscalar
	// out-of-order processor (Table 2).
	ArchBaseline Arch = iota
	// ArchFlywheel is the full proposal: dual-clock issue window,
	// execution cache and two-phase renaming.
	ArchFlywheel
	// ArchRegAlloc is the intermediate configuration of Figure 11: the
	// dual-clock issue window and new register allocation without the
	// execution cache.
	ArchRegAlloc
)

// String names the architecture.
func (a Arch) String() string { return a.internal().String() }

func (a Arch) internal() sim.Arch {
	switch a {
	case ArchFlywheel:
		return sim.ArchFlywheel
	case ArchRegAlloc:
		return sim.ArchRegAlloc
	default:
		return sim.ArchBaseline
	}
}

// Node is a process technology feature size in micrometers. It selects the
// baseline clock (the issue-window frequency from the latency model) and
// the power model's electrical parameters.
type Node float64

// Supported technology nodes.
const (
	Node180 Node = 0.18
	Node130 Node = 0.13
	Node90  Node = 0.09
	Node60  Node = 0.06
)

// Config describes one simulation run.
type Config struct {
	// Benchmark names one of the workloads (see Benchmarks()).
	Benchmark string
	// Arch selects the machine; the zero value is the baseline.
	Arch Arch
	// Node selects the technology point; the zero value is 0.13 µm.
	Node Node
	// FEBoostPct speeds up the front-end clock domain (0..100, §5).
	FEBoostPct int
	// BEBoostPct speeds up the trace-execution back-end clock (0..50).
	BEBoostPct int
	// Instructions bounds the measured dynamic instruction count after the
	// workload's warm-up; the zero value runs 300k instructions. Use
	// RunToCompletion to simulate the whole program.
	Instructions uint64
	// RunToCompletion ignores Instructions and runs the workload to halt.
	RunToCompletion bool
}

// Result is one simulation outcome.
type Result struct {
	// TimePS is the simulated execution time in picoseconds — the paper's
	// performance metric (clock domains differ, so cycle counts don't
	// compare).
	TimePS int64
	// Cycles counts executed back-end clock cycles.
	Cycles uint64
	// Retired counts committed instructions.
	Retired uint64
	// IPC is Retired/Cycles (back-end cycles).
	IPC float64
	// EnergyPJ is the total energy estimate in picojoules.
	EnergyPJ float64
	// PowerW is the average power in watts.
	PowerW float64
	// LeakageFrac is leakage's share of total energy.
	LeakageFrac float64
	// ECResidency is the fraction of time spent in trace-execution mode
	// (zero for the baseline).
	ECResidency float64
	// Mispredicts counts front-end branch mispredictions; Divergences
	// counts trace-path mispredictions during replay.
	Mispredicts uint64
	Divergences uint64
	// BranchAccuracy is the front-end predictor's accuracy.
	BranchAccuracy float64
}

// Speedup returns base's execution time divided by r's.
func (r Result) Speedup(base Result) float64 {
	if r.TimePS == 0 {
		return 0
	}
	return float64(base.TimePS) / float64(r.TimePS)
}

// job converts the public configuration into the lab's job spec, applying
// the public defaults (300k instructions, the 0.13 µm node).
func (cfg Config) job() lab.Job {
	instructions := cfg.Instructions
	if instructions == 0 && !cfg.RunToCompletion {
		instructions = 300_000
	}
	if cfg.RunToCompletion {
		instructions = 0
	}
	node := cacti.Node(cfg.Node)
	if cfg.Node == 0 {
		node = cacti.Node130
	}
	return lab.Job{
		Workload:        cfg.Benchmark,
		Arch:            cfg.Arch.internal(),
		Node:            node,
		FEBoostPct:      cfg.FEBoostPct,
		BEBoostPct:      cfg.BEBoostPct,
		MaxInstructions: instructions,
	}
}

// Run executes one simulation.
func Run(cfg Config) (Result, error) {
	res, err := sim.Run(cfg.job().Config())
	if err != nil {
		return Result{}, err
	}
	return publicResult(res), nil
}

// Store is a persistent, content-addressed run cache: results are
// memoized in memory and written through to a directory of versioned JSON
// entries, so a sweep re-run in a new process — or in another process
// sharing the directory — simulates each distinct configuration exactly
// once, ever. Open one Store per process and share it across calls; the
// in-memory tier then also dedupes within the process.
type Store struct {
	cache *lab.Cache
}

// OpenStore creates (if needed) and opens a result store rooted at dir.
// Opening a store also attaches the trace cache's spill directory (a
// "traces" subdirectory): completed dynamic-trace recordings persist next
// to the results, so a second process over a warm store re-executes no
// functional emulation at all. The spill attachment is process-wide; the
// last OpenStore wins.
func OpenStore(dir string) (*Store, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	sim.SetTraceSpillDir(filepath.Join(dir, "traces"))
	return &Store{cache: lab.NewCacheWithStore(st)}, nil
}

// StatsLine renders the store's cache counters (memory hits, disk hits,
// simulation runs, on-disk size) as one line for logs.
func (s *Store) StatsLine() string { return s.cache.StatsLine() }

// Client submits runs to a labd batch service (cmd/labd) instead of
// simulating in-process, sharing that service's warm store with every
// other client.
type Client struct {
	c *labd.Client
}

// NewClient returns a client for the labd service at baseURL, e.g.
// "http://127.0.0.1:8080".
func NewClient(baseURL string) *Client {
	return &Client{c: labd.NewClient(baseURL)}
}

// SweepOptions controls the concurrent batch runners RunMany and Sweep.
type SweepOptions struct {
	// Workers is the worker-pool size; zero or negative uses GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is called after each completed run with the
	// number finished so far (1..total) and the total. Calls are serialized
	// but arrive in completion order. Ignored when Client is set (the
	// service does not stream progress, only results).
	Progress func(done, total int)
	// Store persists results across processes; nil keeps the sweep's
	// memoization in-memory only.
	Store *Store
	// Client, when non-nil, routes the whole batch to a labd service and
	// takes precedence over Store (the service has its own store).
	Client *Client

	// DisableTraceCache opts this process out of the record-once,
	// replay-many dynamic-trace cache: every run executes the functional
	// emulator live, the pre-cache behavior. Results are byte-identical
	// either way (the cache only changes where the instruction stream
	// comes from); the knob exists for memory-constrained runs and for
	// differential testing. The setting is process-wide and applied when
	// the sweep starts; the last sweep's options win.
	DisableTraceCache bool
	// TraceCacheMaxBytes caps the resident size of recorded traces; zero
	// keeps the default (trace.DefaultMaxBytes, 256 MiB). Recordings are
	// evicted least-recently-used first, and a workload whose recording
	// cannot fit at all falls back to live emulation — never an error.
	TraceCacheMaxBytes int64
}

func (o SweepOptions) labOptions() lab.Options {
	lo := lab.Options{Workers: o.Workers}
	if o.Store != nil {
		lo.Cache = o.Store.cache
	}
	if o.Progress != nil {
		lo.Progress = func(done, total int, _ lab.Job) { o.Progress(done, total) }
	}
	return lo
}

// RunMany executes the given configurations concurrently on a worker pool
// and returns the results in configuration order, independent of completion
// order. Configurations that are identical after defaulting simulate
// exactly once and share one result. If any run fails, the error of the
// lowest-indexed failing configuration is returned.
func RunMany(cfgs []Config, opt SweepOptions) ([]Result, error) {
	if len(cfgs) == 0 {
		// Both paths agree on empty input; the service would reject an
		// empty batch.
		return []Result{}, nil
	}
	if opt.Client == nil {
		// The trace-cache policy is process-wide (the cache is shared so
		// recordings amortize across sweeps); the latest sweep's options
		// win. A labd-routed batch leaves the local policy alone.
		sim.SetTraceCachePolicy(trace.Policy{Disabled: opt.DisableTraceCache, MaxBytes: opt.TraceCacheMaxBytes})
	}
	jobs := make([]lab.Job, len(cfgs))
	for i, c := range cfgs {
		jobs[i] = c.job()
	}
	if opt.Client != nil {
		lines, err := opt.Client.c.Sweep(labd.SweepRequest{Jobs: jobs, Workers: opt.Workers})
		if err != nil {
			return nil, err
		}
		out := make([]Result, len(lines))
		for i, line := range lines {
			out[i] = publicResult(*line.Result)
		}
		return out, nil
	}
	res, err := lab.Run(jobs, opt.labOptions())
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = publicResult(r)
	}
	return out, nil
}

// Sweep runs base once per (benchmark, front-end boost) combination and
// returns the results indexed [benchmark][boost], aligned with the input
// slices. A nil benchmarks slice sweeps every workload (Benchmarks()); a
// nil feBoosts slice runs only base's own FEBoostPct. The cross-product is
// executed concurrently with duplicate configurations deduplicated — the
// paper's Figure 12-14 measurement is one Sweep call.
func Sweep(base Config, benchmarks []string, feBoosts []int, opt SweepOptions) ([][]Result, error) {
	if benchmarks == nil {
		benchmarks = Benchmarks()
	}
	if feBoosts == nil {
		feBoosts = []int{base.FEBoostPct}
	}
	cfgs := make([]Config, 0, len(benchmarks)*len(feBoosts))
	for _, b := range benchmarks {
		for _, fe := range feBoosts {
			c := base
			c.Benchmark = b
			c.FEBoostPct = fe
			cfgs = append(cfgs, c)
		}
	}
	flat, err := RunMany(cfgs, opt)
	if err != nil {
		return nil, err
	}
	out := make([][]Result, len(benchmarks))
	for i := range benchmarks {
		out[i] = flat[i*len(feBoosts) : (i+1)*len(feBoosts)]
	}
	return out, nil
}

func publicResult(res sim.Result) Result {
	return Result{
		TimePS:         res.TimePS,
		Cycles:         res.Cycles,
		Retired:        res.Retired,
		IPC:            res.IPC,
		EnergyPJ:       res.EnergyPJ,
		PowerW:         res.PowerW,
		LeakageFrac:    res.LeakageFrac,
		ECResidency:    res.ECResidency,
		Mispredicts:    res.Mispredicts,
		Divergences:    res.Divergences,
		BranchAccuracy: res.BranchAccuracy,
	}
}

// CacheStats reports the process-wide simulator caches: the
// record-once/replay-many dynamic-trace cache and the warm-snapshot cache.
// (The per-store result cache reports through Store.StatsLine.)
type CacheStats struct {
	// Trace-cache traffic: replays served from a recording, recordings
	// made, runs that bypassed the cache, recordings evicted by the memory
	// cap, and recordings exchanged with a store's spill directory.
	TraceHits, TraceMisses, TraceBypasses, TraceEvictions uint64
	TraceSpillLoads, TraceSpillSaves                      uint64
	// TraceEntries recordings are resident, TraceBytes their encoded size.
	TraceEntries int
	TraceBytes   int64

	// Warm-snapshot cache traffic and residency.
	SnapshotHits, SnapshotMisses, SnapshotEvictions uint64
	SnapshotEntries                                 int
	SnapshotBytes                                   int64
}

// Caches returns a snapshot of the simulator cache counters.
func Caches() CacheStats {
	ts := sim.TraceCacheStats()
	ss := sim.SnapshotCacheInfoNow()
	return CacheStats{
		TraceHits: ts.Hits, TraceMisses: ts.Misses, TraceBypasses: ts.Bypasses,
		TraceEvictions: ts.Evictions, TraceSpillLoads: ts.SpillLoads, TraceSpillSaves: ts.SpillSaves,
		TraceEntries: ts.Entries, TraceBytes: ts.ResidentBytes,
		SnapshotHits: ss.Hits, SnapshotMisses: ss.Misses, SnapshotEvictions: ss.Evictions,
		SnapshotEntries: ss.Entries, SnapshotBytes: ss.Bytes,
	}
}

// Compare runs the same benchmark on the baseline and on the given
// configuration, returning both results.
func Compare(cfg Config) (target, baseline Result, err error) {
	target, err = Run(cfg)
	if err != nil {
		return Result{}, Result{}, err
	}
	base := cfg
	base.Arch = ArchBaseline
	base.FEBoostPct, base.BEBoostPct = 0, 0
	baseline, err = Run(base)
	if err != nil {
		return Result{}, Result{}, err
	}
	return target, baseline, nil
}

// Benchmarks lists the available workloads in the paper's figure order.
func Benchmarks() []string { return workload.Names() }

// BenchmarkInfo describes one workload.
type BenchmarkInfo struct {
	Name        string
	Suite       string
	FP          bool
	Description string
}

// Describe returns the metadata of a workload.
func Describe(name string) (BenchmarkInfo, error) {
	w, err := workload.Get(name)
	if err != nil {
		return BenchmarkInfo{}, err
	}
	return BenchmarkInfo{Name: w.Name, Suite: w.Suite, FP: w.FP, Description: w.Description}, nil
}

// ModuleFrequencies returns the latency-model clock frequencies (MHz) of
// the main pipeline modules at a node (the paper's Table 1).
type ModuleFrequencies struct {
	IssueWindow     float64
	ICache          float64
	DCache          float64
	RegFile         float64
	ExecutionCache  float64
	FlywheelRegFile float64
}

// Frequencies computes the Table 1 row for a node.
func Frequencies(n Node) (ModuleFrequencies, error) {
	switch n {
	case Node180, Node130, Node90, Node60:
	default:
		return ModuleFrequencies{}, fmt.Errorf("flywheel: unsupported node %v", float64(n))
	}
	t := cacti.Table1(cacti.Node(n))
	return ModuleFrequencies{
		IssueWindow:     t.IssueWindow,
		ICache:          t.ICache,
		DCache:          t.DCache,
		RegFile:         t.RegFile,
		ExecutionCache:  t.ExecutionCache,
		FlywheelRegFile: t.FlywheelRegFile,
	}, nil
}

// RunAssembly assembles a custom program for the flywheel ISA and runs it
// under the given configuration (the whole program is measured; Benchmark
// is used only as a label). See the assembler syntax in internal/asm and
// the workload kernels for examples.
func RunAssembly(name, source string, cfg Config) (Result, error) {
	node := cacti.Node(cfg.Node)
	if cfg.Node == 0 {
		node = cacti.Node130
	}
	instructions := cfg.Instructions
	if cfg.RunToCompletion {
		instructions = 0
	}
	res, err := sim.RunSource(name, source, sim.RunConfig{
		Workload:        name,
		Arch:            cfg.Arch.internal(),
		Node:            node,
		FEBoostPct:      cfg.FEBoostPct,
		BEBoostPct:      cfg.BEBoostPct,
		MaxInstructions: instructions,
	})
	if err != nil {
		return Result{}, err
	}
	return publicResult(res), nil
}
