package flywheel

import (
	"math/rand"
	"strings"
	"testing"

	"flywheel/internal/asm"
	"flywheel/internal/cacti"
	"flywheel/internal/core"
	"flywheel/internal/emu"
	"flywheel/internal/ooo"
	"flywheel/internal/workload"
)

func TestPublicRunBaselineVsFlywheel(t *testing.T) {
	fly, base, err := Compare(Config{
		Benchmark:    "vpr",
		Arch:         ArchFlywheel,
		FEBoostPct:   50,
		BEBoostPct:   50,
		Instructions: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Retired < 60_000 || fly.Retired < 60_000 {
		t.Fatalf("retired base=%d fly=%d, want >= 60000", base.Retired, fly.Retired)
	}
	if fly.ECResidency <= 0.5 {
		t.Errorf("flywheel EC residency = %.2f, want > 0.5", fly.ECResidency)
	}
	if base.ECResidency != 0 {
		t.Errorf("baseline EC residency = %.2f, want 0", base.ECResidency)
	}
	if sp := fly.Speedup(base); sp < 1.0 {
		t.Errorf("vpr FE50/BE50 speedup = %.2f, want > 1", sp)
	}
	if fly.EnergyPJ <= 0 || base.EnergyPJ <= 0 {
		t.Error("energy not computed")
	}
}

func TestPublicRunRejectsUnknownBenchmark(t *testing.T) {
	if _, err := Run(Config{Benchmark: "nope"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestBenchmarksAndDescribe(t *testing.T) {
	names := Benchmarks()
	if len(names) != 10 {
		t.Fatalf("benchmark count = %d, want 10", len(names))
	}
	for _, n := range names {
		info, err := Describe(n)
		if err != nil {
			t.Fatal(err)
		}
		if info.Description == "" || info.Suite == "" {
			t.Errorf("%s missing metadata", n)
		}
	}
	if _, err := Describe("bogus"); err == nil {
		t.Error("bogus benchmark described")
	}
}

func TestFrequenciesMatchHeadroomStory(t *testing.T) {
	f, err := Frequencies(Node60)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := f.ICache / f.IssueWindow; ratio < 1.8 {
		t.Errorf("front-end headroom at 60nm = %.2f, want ~2", ratio)
	}
	if _, err := Frequencies(Node(0.5)); err == nil {
		t.Error("unsupported node accepted")
	}
}

func TestRunAssemblyCustomKernel(t *testing.T) {
	src := `
	li r1, 2000
	li r2, 0
loop:
	add r2, r2, r1
	addi r1, r1, -1
	bnez r1, loop
	halt
`
	res, err := RunAssembly("sum.s", src, Config{
		Arch: ArchFlywheel, FEBoostPct: 50, BEBoostPct: 50, RunToCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired != 2+3*2000+1 {
		t.Errorf("retired = %d, want %d", res.Retired, 2+3*2000+1)
	}
	if res.ECResidency == 0 {
		t.Error("tight loop never used the EC")
	}
}

// TestGoldenModelEquivalence is the repository's strongest invariant: for
// randomly generated (terminating) programs, the functional emulator, the
// baseline out-of-order core and the Flywheel core must agree on the number
// of retired instructions and on the final architectural state.
func TestGoldenModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		src := randomProgram(rng)

		prog, err := asm.Assemble("rand.s", src)
		if err != nil {
			t.Fatalf("trial %d: assemble: %v\n%s", trial, err, src)
		}

		// Golden: pure functional execution.
		golden := emu.New(prog)
		if _, err := golden.Run(3_000_000); err != nil {
			t.Fatalf("trial %d: emu: %v", trial, err)
		}
		if !golden.Halted {
			t.Fatalf("trial %d: generated program did not halt", trial)
		}

		// Baseline timing core.
		mb := emu.New(prog)
		bcfg := ooo.DefaultConfig()
		bcfg.MaxCycles = 50_000_000
		bcore := ooo.New(bcfg, emu.NewStream(mb, 0))
		bstats, err := bcore.Run()
		if err != nil {
			t.Fatalf("trial %d: baseline: %v\n%s", trial, err, src)
		}

		// Flywheel timing core.
		mf := emu.New(prog)
		fcfg := core.DefaultConfig()
		fcfg.FEBoostPct, fcfg.BEBoostPct = 50, 50
		fcfg.MaxCycles = 50_000_000
		fcore := core.New(fcfg, emu.NewStream(mf, 0))
		fstats, err := fcore.Run()
		if err != nil {
			t.Fatalf("trial %d: flywheel: %v\n%s", trial, err, src)
		}

		if bstats.Retired != golden.Retired || fstats.Retired != golden.Retired {
			t.Fatalf("trial %d: retired emu=%d baseline=%d flywheel=%d",
				trial, golden.Retired, bstats.Retired, fstats.Retired)
		}
		for r := 0; r < 32; r++ {
			if mb.IntRegs[r] != golden.IntRegs[r] || mf.IntRegs[r] != golden.IntRegs[r] {
				t.Fatalf("trial %d: r%d diverged: emu=%d baseline=%d flywheel=%d",
					trial, r, golden.IntRegs[r], mb.IntRegs[r], mf.IntRegs[r])
			}
		}
	}
}

// randomProgram generates a terminating program: a counted outer loop whose
// body mixes arithmetic, memory traffic and data-dependent branches.
func randomProgram(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("\tli r1, ")
	b.WriteString(itoa(200 + rng.Intn(400)))
	b.WriteString(" ; outer counter\n\tla r10, buf\n\tli r9, 88172645\nloop:\n")
	body := 4 + rng.Intn(12)
	for i := 0; i < body; i++ {
		dst := 2 + rng.Intn(7)
		a := 2 + rng.Intn(7)
		c := 2 + rng.Intn(7)
		switch rng.Intn(8) {
		case 0:
			b.WriteString("\tadd r" + itoa(dst) + ", r" + itoa(a) + ", r" + itoa(c) + "\n")
		case 1:
			b.WriteString("\txor r" + itoa(dst) + ", r" + itoa(a) + ", r" + itoa(c) + "\n")
		case 2:
			b.WriteString("\tmul r" + itoa(dst) + ", r" + itoa(a) + ", r" + itoa(c) + "\n")
		case 3:
			b.WriteString("\taddi r" + itoa(dst) + ", r" + itoa(a) + ", " + itoa(rng.Intn(64)) + "\n")
		case 4:
			off := rng.Intn(32) * 8
			b.WriteString("\tsd r" + itoa(dst) + ", " + itoa(off) + "(r10)\n")
		case 5:
			off := rng.Intn(32) * 8
			b.WriteString("\tld r" + itoa(dst) + ", " + itoa(off) + "(r10)\n")
		case 6:
			// Data-dependent skip over one instruction.
			lbl := "s" + itoa(rng.Int())
			b.WriteString("\tandi r8, r" + itoa(a) + ", " + itoa(1+rng.Intn(7)) + "\n")
			b.WriteString("\tbeqz r8, " + lbl + "\n")
			b.WriteString("\taddi r" + itoa(dst) + ", r" + itoa(dst) + ", 1\n")
			b.WriteString(lbl + ":\n")
		case 7:
			b.WriteString("\tslli r9, r9, 1\n\txor r9, r9, r" + itoa(a) + "\n")
		}
	}
	b.WriteString("\taddi r1, r1, -1\n\tbnez r1, loop\n\thalt\n.data\nbuf:\n\t.space 512\n")
	return b.String()
}

func itoa(v int) string {
	if v < 0 {
		v = -v
	}
	digits := "0123456789"
	if v == 0 {
		return "0"
	}
	var out []byte
	for v > 0 {
		out = append([]byte{digits[v%10]}, out...)
		v /= 10
	}
	return string(out)
}

// TestBaselinePeriodDrivesTime checks the public Node knob end to end: the
// same benchmark takes less wall-clock (simulated) time at a finer node.
func TestBaselinePeriodDrivesTime(t *testing.T) {
	old, err := Run(Config{Benchmark: "ijpeg", Node: Node180, Instructions: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	modern, err := Run(Config{Benchmark: "ijpeg", Node: Node60, Instructions: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if modern.TimePS >= old.TimePS {
		t.Errorf("0.06um run (%d ps) not faster than 0.18um (%d ps)", modern.TimePS, old.TimePS)
	}
	if cacti.BaselinePeriodPS(cacti.Node60) >= cacti.BaselinePeriodPS(cacti.Node180) {
		t.Error("node periods not ordered")
	}
}

// TestWorkloadDeterminism: two identical runs must agree exactly.
func TestWorkloadDeterminism(t *testing.T) {
	cfg := Config{Benchmark: "bzip2", Arch: ArchFlywheel, FEBoostPct: 25, BEBoostPct: 50, Instructions: 40_000}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical configs disagree:\n%+v\n%+v", a, b)
	}
}

// TestAllWorkloadsOnBothCores is the broad integration sweep: every
// benchmark proxy runs a window on both machines and retires exactly what
// the oracle executes.
func TestAllWorkloadsOnBothCores(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, arch := range []Arch{ArchBaseline, ArchFlywheel, ArchRegAlloc} {
				res, err := Run(Config{
					Benchmark: name, Arch: arch,
					FEBoostPct: 50, BEBoostPct: 50, Instructions: 25_000,
				})
				if err != nil {
					t.Fatalf("%v: %v", arch, err)
				}
				if res.Retired < 25_000 {
					t.Errorf("%v: retired %d, want >= 25000", arch, res.Retired)
				}
			}
		})
	}
}
