module flywheel

go 1.24
