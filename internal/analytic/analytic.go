// Package analytic fits and evaluates a fast closed-form performance and
// energy model for the multiple-speed-pipeline design space. The
// cycle-accurate simulator costs milliseconds per grid cell; the analytic
// model costs nanoseconds — a dot product — so it can screen 10k–100k-cell
// explorations and leave the simulator to confirm only the cells that
// matter (see explore.ExploreTiered).
//
// The model is calibrated against this repository's own simulator, in the
// style of Lumos' probe sweeps and Charm's closed-form technology models:
// Calibrate runs a small seeded training grid through the lab (so
// calibration runs are memoized and store-persisted like any other job) and
// fits, per (architecture, technology node), ridge-regularized least
// squares from workload-profile and clock-boost features to
// log(time-per-instruction) and log(energy-per-instruction). Log targets
// make the fit multiplicative — boost factors scale execution time as power
// laws, and prediction error is naturally relative — which is what frontier
// screening needs: the Pareto metrics are ratios.
package analytic

import (
	"fmt"
	"math"
	"strconv"

	"flywheel/internal/branch"
	"flywheel/internal/cacti"
	"flywheel/internal/lab"
	"flywheel/internal/mem"
	"flywheel/internal/sim"
	"flywheel/internal/workload"
	"flywheel/internal/workload/synth"
)

// FeatureNames labels the model's feature vector, in order. The profile
// knobs enter directly (fractions) or log-compressed (footprints, whose
// effect on miss rates is roughly logarithmic); the clock boosts enter as
// log(1+boost/100) so a fitted coefficient c means "time scales as
// boost^c"; and two interaction terms let the front-end boost's benefit
// depend on branch entropy and ILP, the couplings the paper's Figures 12-14
// turn on.
var FeatureNames = []string{
	"intercept",
	"inv_ilp",
	"branch_entropy",
	"fp_mix",
	"log2_mem_kb",
	"stride_frac",
	"reg_reuse",
	"log2_code_kb",
	"log_fe_boost",
	"log_be_boost",
	"entropy_x_fe",
	"inv_ilp_x_fe",
	"chase_frac",
	"log2_period_rel",
	"log2_stride_rel",
}

// features maps one grid cell to the model's input vector. The three
// frontend-stress knobs enter relative to their legacy defaults (period
// 512, stride 8 B), so every pre-existing profile's vector keeps zeros
// there and old fits are reproduced exactly.
func features(p synth.Profile, feBoostPct, beBoostPct int) []float64 {
	d := p.Defaulted()
	invILP := 1 / float64(d.ILP)
	logFE := math.Log1p(float64(feBoostPct) / 100)
	logBE := math.Log1p(float64(beBoostPct) / 100)
	period, stride := 512.0, 8.0
	if d.BranchPeriod > 0 {
		period = float64(d.BranchPeriod)
	}
	if d.StrideBytes > 0 {
		stride = float64(d.StrideBytes)
	}
	return []float64{
		1,
		invILP,
		d.BranchEntropy,
		d.FPMix,
		math.Log2(float64(d.MemFootprintKB)),
		d.StrideFrac,
		d.RegReuse,
		math.Log2(float64(d.CodeFootprintKB)),
		logFE,
		logBE,
		d.BranchEntropy * logFE,
		invILP * logFE,
		d.ChaseFrac,
		math.Log2(period / 512),
		math.Log2(stride / 8),
	}
}

// coeffs is one (arch, node) group's fitted weights over the feature
// vector: predictors of log(ps/instruction) and log(pJ/instruction).
type coeffs struct {
	time   []float64
	energy []float64
}

// boostFeatures is the quadratic response basis in the boost axes, used by
// the per-profile residual anchors: rich enough to interpolate a 3×3
// calibration grid's curvature, cheap enough to fit on 9 observations.
func boostFeatures(feBoostPct, beBoostPct int) []float64 {
	fe := math.Log1p(float64(feBoostPct) / 100)
	be := math.Log1p(float64(beBoostPct) / 100)
	return []float64{1, fe, be, fe * fe, be * be, fe * be}
}

// anchor is a per-(profile, arch, node) residual correction over
// boostFeatures, fitted to the profile's own training cells after the
// global fit. Profiles seen during calibration predict with near
// interpolation accuracy; unseen profiles fall back to the global model.
type anchor struct {
	time   []float64
	energy []float64
}

// Frontend names one predictor/prefetcher pairing. The zero value means
// the defaults; normalize canonicalizes it so map keys are stable.
type Frontend struct {
	Predictor  string
	Prefetcher string
}

func (f Frontend) normalize() Frontend {
	if f.Predictor == "" {
		f.Predictor = branch.DirGShare
	}
	if f.Prefetcher == "" {
		f.Prefetcher = mem.PFNone
	}
	return f
}

// groupKey identifies one (arch, node, frontend) coefficient set: frontend
// components change the machine's time/energy response to the profile
// knobs (TAGE flattens the entropy slope, a prefetcher flattens the
// footprint slope), so each pairing gets its own fit.
func groupKey(a sim.Arch, n cacti.Node, fe Frontend) string {
	fe = fe.normalize()
	return fmt.Sprintf("%d@%s/%s/%s", a, strconv.FormatFloat(float64(n), 'g', -1, 64),
		fe.Predictor, fe.Prefetcher)
}

// anchorKey identifies one profile's residual anchor within a group.
func anchorKey(profile string, a sim.Arch, n cacti.Node, fe Frontend) string {
	return profile + "|" + groupKey(a, n, fe)
}

// Summary aggregates prediction error as absolute relative error on the
// per-instruction time and energy (fractions: 0.03 means 3%).
type Summary struct {
	Cells        int     `json:"cells"`
	TimeMAPE     float64 `json:"time_mape"`
	TimeMaxAPE   float64 `json:"time_max_ape"`
	EnergyMAPE   float64 `json:"energy_mape"`
	EnergyMaxAPE float64 `json:"energy_max_ape"`
}

// Observe folds one predicted-vs-measured pair into the summary. The mean
// is accumulated as a running sum in TimeMAPE/EnergyMAPE until Finish.
func (s *Summary) Observe(predTime, actualTime, predEnergy, actualEnergy float64) {
	te := math.Abs(predTime/actualTime - 1)
	ee := math.Abs(predEnergy/actualEnergy - 1)
	s.Cells++
	s.TimeMAPE += te
	s.EnergyMAPE += ee
	s.TimeMaxAPE = math.Max(s.TimeMaxAPE, te)
	s.EnergyMaxAPE = math.Max(s.EnergyMaxAPE, ee)
}

// Finish converts the accumulated sums into means; call once after the
// last Observe.
func (s *Summary) Finish() {
	if s.Cells > 0 {
		s.TimeMAPE /= float64(s.Cells)
		s.EnergyMAPE /= float64(s.Cells)
	}
}

// String renders the summary for log lines and tables.
func (s Summary) String() string {
	return fmt.Sprintf("time %.1f%% mean / %.1f%% max, energy %.1f%% mean / %.1f%% max over %d cells",
		100*s.TimeMAPE, 100*s.TimeMaxAPE, 100*s.EnergyMAPE, 100*s.EnergyMaxAPE, s.Cells)
}

// Model is a calibrated analytic performance/energy model: one coefficient
// set per (architecture, technology node) seen during calibration. A Model
// is immutable after Calibrate and safe for concurrent use.
type Model struct {
	sets    map[string]coeffs
	anchors map[string]anchor
	// TrainingCells is the number of simulator runs the fit consumed;
	// TrainingErr is the in-sample residual summary (out-of-sample error is
	// measured by the tiered explorer's confirmation stage).
	TrainingCells int
	TrainingErr   Summary
}

// Anchored reports whether the profile was part of calibration for the
// given architecture, node and frontend, so predictions carry its residual
// anchor. Unanchored profiles predict from the global fit alone, with
// correspondingly larger error.
func (m *Model) Anchored(p synth.Profile, a sim.Arch, n cacti.Node, front Frontend) bool {
	_, ok := m.anchors[anchorKey(p.Name(), a, n, front)]
	return ok
}

// Covers reports whether the model was calibrated for the given
// architecture, node and frontend.
func (m *Model) Covers(a sim.Arch, n cacti.Node, front Frontend) bool {
	_, ok := m.sets[groupKey(a, n, front)]
	return ok
}

// Predict evaluates the model for one grid cell and shapes the answer as a
// sim.Result so downstream reporting (speedup, energy ratio, CSV) treats
// predictions and measurements uniformly. TimePS and EnergyPJ are the
// predicted per-instruction costs scaled by instructions; Cycles and IPC
// are derived from the node's baseline clock for table cosmetics. The cost
// is two dot products.
func (m *Model) Predict(p synth.Profile, arch sim.Arch, node cacti.Node, feBoostPct, beBoostPct int, front Frontend, instructions uint64) (sim.Result, error) {
	if node == 0 {
		node = cacti.Node130
	}
	if arch == sim.ArchBaseline {
		feBoostPct, beBoostPct = 0, 0
	}
	front = front.normalize()
	c, ok := m.sets[groupKey(arch, node, front)]
	if !ok {
		return sim.Result{}, fmt.Errorf("analytic: model not calibrated for %s at %s with %s/%s",
			arch, node, front.Predictor, front.Prefetcher)
	}
	x := features(p, feBoostPct, beBoostPct)
	logTime := dot(c.time, x)
	logEnergy := dot(c.energy, x)
	if a, ok := m.anchors[anchorKey(p.Name(), arch, node, front)]; ok {
		bf := boostFeatures(feBoostPct, beBoostPct)
		logTime += dot(a.time, bf)
		logEnergy += dot(a.energy, bf)
	}
	psPerInst := math.Exp(logTime)
	pjPerInst := math.Exp(logEnergy)
	n := float64(instructions)
	res := sim.Result{
		Config: sim.RunConfig{
			Workload: p.Name(), Arch: arch, Node: node,
			FEBoostPct: feBoostPct, BEBoostPct: beBoostPct,
			MaxInstructions: instructions,
			Predictor:       front.Predictor, Prefetcher: front.Prefetcher,
		},
		TimePS:   int64(math.Round(psPerInst * n)),
		Retired:  instructions,
		EnergyPJ: pjPerInst * n,
	}
	if period := cacti.BaselinePeriodPS(node); period > 0 && res.TimePS > 0 {
		res.Cycles = uint64(res.TimePS / period)
		if res.Cycles > 0 {
			res.IPC = n / float64(res.Cycles)
		}
		res.PowerW = res.EnergyPJ / float64(res.TimePS)
	}
	return res, nil
}

func dot(w, x []float64) float64 {
	s := 0.0
	for i, v := range w {
		s += v * x[i]
	}
	return s
}

// Config parameterizes Calibrate. Nil or zero fields default: the training
// profiles to DefaultTrainingProfiles(1), archs to all three machines,
// boosts to {0, 50, 100} × {0, 50, 100}, nodes to {0.13 µm}, instructions
// to 20k.
type Config struct {
	Profiles []synth.Profile
	Archs    []sim.Arch
	FEBoosts []int
	BEBoosts []int
	Nodes    []cacti.Node
	// Predictors / Prefetchers are the frontend axes; nil means the
	// defaults ({"gshare"} / {"none"}). Every (predictor, prefetcher)
	// pairing trains its own coefficient set.
	Predictors   []string
	Prefetchers  []string
	Instructions uint64
	// Workers sizes the lab worker pool; Cache memoizes the calibration
	// runs (nil uses a private cache). Progress mirrors lab.Options.
	Workers  int
	Cache    *lab.Cache
	Progress func(done, total int, j lab.Job)
}

func (c Config) normalize() Config {
	if c.Profiles == nil {
		c.Profiles = DefaultTrainingProfiles(1)
	}
	if c.Archs == nil {
		c.Archs = []sim.Arch{sim.ArchBaseline, sim.ArchFlywheel, sim.ArchRegAlloc}
	}
	if c.FEBoosts == nil {
		c.FEBoosts = []int{0, 50, 100}
	}
	if c.BEBoosts == nil {
		c.BEBoosts = []int{0, 50, 100}
	}
	if c.Nodes == nil {
		c.Nodes = []cacti.Node{cacti.Node130}
	}
	if c.Predictors == nil {
		c.Predictors = []string{branch.DirGShare}
	}
	if c.Prefetchers == nil {
		c.Prefetchers = []string{mem.PFNone}
	}
	if c.Instructions == 0 {
		c.Instructions = 20_000
	}
	return c
}

// Cells reports how many simulator runs Calibrate submits for this config
// (after defaulting): the training-grid size, used to decide whether
// calibrating pays for itself against exploring exactly.
func (c Config) Cells() int {
	c = c.normalize()
	perProfile := 0
	for _, a := range c.Archs {
		if a == sim.ArchBaseline {
			perProfile++
		} else {
			perProfile += len(c.FEBoosts) * len(c.BEBoosts)
		}
	}
	return len(c.Profiles) * len(c.Nodes) * len(c.Predictors) * len(c.Prefetchers) * perProfile
}

// DefaultTrainingProfiles returns a deterministic spread of profiles that
// exercises every model feature: fixed corner profiles (serial, parallel,
// high-entropy, FP-heavy, big-footprint) plus seeded quasi-random fills.
// The same seed always yields the same profiles, so calibration jobs are
// memoized and store-persisted like any other lab run.
func DefaultTrainingProfiles(seed uint64) []synth.Profile {
	profiles := []synth.Profile{
		{ILP: 1, MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: seed},
		{ILP: 6, MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: seed},
		{ILP: 4, BranchEntropy: 1, MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: seed},
		{ILP: 4, FPMix: 1, MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: seed},
		{ILP: 4, MemFootprintKB: 128, StrideFrac: 1, CodeFootprintKB: 1, Passes: 1, Seed: seed},
		{ILP: 4, MemFootprintKB: 128, CodeFootprintKB: 16, RegReuse: 1, Passes: 1, Seed: seed},
	}
	r := rng{state: seed*0x9E3779B97F4A7C15 + 0x123456789}
	quarters := func() float64 { return float64(r.intn(5)) / 4 }
	for i := 0; i < 10; i++ {
		profiles = append(profiles, synth.Profile{
			ILP:             1 + r.intn(synth.MaxILP),
			BranchEntropy:   quarters(),
			FPMix:           quarters(),
			MemFootprintKB:  4 << r.intn(6), // 4..128 KiB
			StrideFrac:      quarters(),
			RegReuse:        quarters(),
			CodeFootprintKB: 1 << r.intn(5), // 1..16 KiB
			Passes:          1,
			Seed:            seed + uint64(i) + 1,
		})
	}
	return profiles
}

// rng is a splitmix64 generator, matching the synth package's convention so
// profile selection is deterministic and portable.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Calibrate runs the training grid through the lab and fits the model. The
// baseline architecture ignores clock boosts, so it contributes one cell
// per (profile, node); the boosted machines contribute the full boost
// cross-product. Identical calibration configs share cache entries with any
// other exploration, so re-calibrating against a warm store simulates
// nothing.
func Calibrate(cfg Config) (*Model, error) {
	cfg = cfg.normalize()
	if len(cfg.Profiles) == 0 {
		return nil, fmt.Errorf("analytic: no training profiles")
	}
	for _, p := range cfg.Profiles {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		w, err := synth.Build(p)
		if err != nil {
			return nil, err
		}
		if err := workload.Register(w); err != nil {
			return nil, err
		}
	}

	// Enumerate the training grid in deterministic nested order; remember
	// each job's feature vector and groups alongside it.
	type cell struct {
		key    string // (arch, node) group
		anchor string // (profile, arch, node) residual group
		x      []float64
		bf     []float64
	}
	var jobs []lab.Job
	var cells []cell
	for _, p := range cfg.Profiles {
		name := p.Name()
		for _, node := range cfg.Nodes {
			for _, arch := range cfg.Archs {
				fes, bes := cfg.FEBoosts, cfg.BEBoosts
				if arch == sim.ArchBaseline {
					fes, bes = []int{0}, []int{0}
				}
				for _, pred := range cfg.Predictors {
					for _, pf := range cfg.Prefetchers {
						front := Frontend{Predictor: pred, Prefetcher: pf}
						for _, fe := range fes {
							for _, be := range bes {
								jobs = append(jobs, lab.Job{
									Workload: name, Arch: arch, Node: node,
									FEBoostPct: fe, BEBoostPct: be,
									MaxInstructions: cfg.Instructions,
									Predictor:       pred, Prefetcher: pf,
								})
								cells = append(cells, cell{
									key:    groupKey(arch, node, front),
									anchor: anchorKey(name, arch, node, front),
									x:      features(p, fe, be),
									bf:     boostFeatures(fe, be),
								})
							}
						}
					}
				}
			}
		}
	}

	res, err := lab.Run(jobs, lab.Options{Workers: cfg.Workers, Cache: cfg.Cache, Progress: cfg.Progress})
	if err != nil {
		return nil, err
	}

	// Group the observations and fit each (arch, node) independently,
	// remembering each cell's log targets for the residual pass.
	type group struct {
		X           [][]float64
		timeTargets []float64
		enTargets   []float64
	}
	groups := map[string]*group{}
	logTime := make([]float64, len(cells))
	logEnergy := make([]float64, len(cells))
	for i, c := range cells {
		r := res[i]
		if r.Retired == 0 || r.TimePS <= 0 || r.EnergyPJ <= 0 {
			return nil, fmt.Errorf("analytic: degenerate calibration run %s (retired=%d time=%d energy=%g)",
				jobs[i].Key(), r.Retired, r.TimePS, r.EnergyPJ)
		}
		n := float64(r.Retired)
		logTime[i] = math.Log(float64(r.TimePS) / n)
		logEnergy[i] = math.Log(r.EnergyPJ / n)
		g := groups[c.key]
		if g == nil {
			g = &group{}
			groups[c.key] = g
		}
		g.X = append(g.X, c.x)
		g.timeTargets = append(g.timeTargets, logTime[i])
		g.enTargets = append(g.enTargets, logEnergy[i])
	}

	m := &Model{sets: map[string]coeffs{}, anchors: map[string]anchor{}, TrainingCells: len(jobs)}
	for key, g := range groups {
		m.sets[key] = coeffs{
			time:   fitOrMean(g.X, g.timeTargets),
			energy: fitOrMean(g.X, g.enTargets),
		}
	}

	// Second level: per-(profile, arch, node) residual anchors over the
	// quadratic boost basis, fitted by least squares to what the global
	// model gets wrong on that profile's own training cells. This is what
	// buys frontier-screening accuracy: calibrated profiles predict with
	// near-interpolation error, while unseen profiles still fall back to
	// the global fit. Groups too small to fit store the mean residual as a
	// constant bias (a baseline group is one cell, so its anchor memoizes
	// it exactly).
	type residGroup struct {
		bf    [][]float64
		timeR []float64
		enR   []float64
	}
	residGroups := map[string]*residGroup{}
	for i, c := range cells {
		set := m.sets[c.key]
		g := residGroups[c.anchor]
		if g == nil {
			g = &residGroup{}
			residGroups[c.anchor] = g
		}
		g.bf = append(g.bf, c.bf)
		g.timeR = append(g.timeR, logTime[i]-dot(set.time, c.x))
		g.enR = append(g.enR, logEnergy[i]-dot(set.energy, c.x))
	}
	for key, g := range residGroups {
		m.anchors[key] = anchor{
			time:   fitOrMean(g.bf, g.timeR),
			energy: fitOrMean(g.bf, g.enR),
		}
	}

	// In-sample error with anchors applied: the honest floor for choosing a
	// tiered margin.
	for i, c := range cells {
		set := m.sets[c.key]
		a := m.anchors[c.anchor]
		m.TrainingErr.Observe(
			math.Exp(dot(set.time, c.x)+dot(a.time, c.bf)), math.Exp(logTime[i]),
			math.Exp(dot(set.energy, c.x)+dot(a.energy, c.bf)), math.Exp(logEnergy[i]))
	}
	m.TrainingErr.Finish()
	return m, nil
}

// fitOrMean fits targets by ridge-regularized least squares, falling back
// to a constant mean when the group is too small (fewer than three
// observations — a baseline group for one profile is a single cell) or the
// solve degenerates. The fallback keeps Calibrate total: per-profile
// anchors absorb what a constant global fit misses, and TrainingErr
// reports whatever error remains.
func fitOrMean(X [][]float64, y []float64) []float64 {
	if len(y) >= 3 {
		if w, err := solveRidge(X, y); err == nil {
			return w
		}
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	w := make([]float64, len(X[0]))
	w[0] = mean
	return w
}
