package analytic

import (
	"math"
	"testing"

	"flywheel/internal/cacti"
	"flywheel/internal/lab"
	"flywheel/internal/sim"
	"flywheel/internal/workload/synth"
)

// testConfig is a small, fast calibration grid: 8 profiles × (baseline +
// flywheel × 2 FE boosts) at a tiny instruction budget.
func testConfig() Config {
	return Config{
		Profiles:     DefaultTrainingProfiles(1)[:8],
		Archs:        []sim.Arch{sim.ArchBaseline, sim.ArchFlywheel},
		FEBoosts:     []int{0, 100},
		BEBoosts:     []int{50},
		Instructions: 2_000,
		Cache:        lab.NewCache(),
	}
}

func TestCalibrateFitsTrainingSet(t *testing.T) {
	m, err := Calibrate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainingCells != 8*(1+2) {
		t.Errorf("TrainingCells = %d, want %d", m.TrainingCells, 8*3)
	}
	if m.TrainingErr.Cells != m.TrainingCells {
		t.Errorf("error summary covers %d cells, want %d", m.TrainingErr.Cells, m.TrainingCells)
	}
	// The in-sample fit must be usable for frontier screening: mean
	// relative error well under the default 10% margin.
	if m.TrainingErr.TimeMAPE > 0.08 {
		t.Errorf("training time MAPE %.1f%% too high for screening", 100*m.TrainingErr.TimeMAPE)
	}
	if m.TrainingErr.EnergyMAPE > 0.08 {
		t.Errorf("training energy MAPE %.1f%% too high for screening", 100*m.TrainingErr.EnergyMAPE)
	}
	if !m.Covers(sim.ArchFlywheel, cacti.Node130, Frontend{}) || m.Covers(sim.ArchRegAlloc, cacti.Node130, Frontend{}) {
		t.Error("Covers does not reflect the calibrated groups")
	}
}

func TestPredictShape(t *testing.T) {
	m, err := Calibrate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := synth.Profile{MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: 7}
	r, err := m.Predict(p, sim.ArchFlywheel, cacti.Node130, 50, 50, Frontend{}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.TimePS <= 0 || r.EnergyPJ <= 0 || r.Retired != 10_000 {
		t.Errorf("degenerate prediction: time=%d energy=%g retired=%d", r.TimePS, r.EnergyPJ, r.Retired)
	}
	if r.Config.Arch != sim.ArchFlywheel || r.Config.FEBoostPct != 50 {
		t.Errorf("prediction config not stamped: %+v", r.Config)
	}
	// Deterministic: same query, same answer.
	r2, err := m.Predict(p, sim.ArchFlywheel, cacti.Node130, 50, 50, Frontend{}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if r2.TimePS != r.TimePS || r2.EnergyPJ != r.EnergyPJ {
		t.Error("prediction not deterministic")
	}
	// Per-instruction cost is instruction-count invariant: doubling the
	// budget doubles time and energy (within rounding).
	r3, err := m.Predict(p, sim.ArchFlywheel, cacti.Node130, 50, 50, Frontend{}, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(r3.TimePS)/float64(r.TimePS)-2) > 0.01 {
		t.Errorf("time not linear in instructions: %d vs %d", r.TimePS, r3.TimePS)
	}

	// The baseline architecture collapses boosts, exactly like the grid
	// enumeration does.
	b1, err := m.Predict(p, sim.ArchBaseline, cacti.Node130, 0, 0, Frontend{}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m.Predict(p, sim.ArchBaseline, cacti.Node130, 100, 100, Frontend{}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if b1.TimePS != b2.TimePS {
		t.Error("baseline prediction depends on boosts")
	}

	// An uncalibrated (arch, node) is an explicit error, not a guess.
	if _, err := m.Predict(p, sim.ArchRegAlloc, cacti.Node130, 0, 0, Frontend{}, 1_000); err == nil {
		t.Error("uncalibrated arch predicted without error")
	}
	if _, err := m.Predict(p, sim.ArchFlywheel, cacti.Node90, 0, 0, Frontend{}, 1_000); err == nil {
		t.Error("uncalibrated node predicted without error")
	}
}

func TestCalibrateMemoizes(t *testing.T) {
	cfg := testConfig()
	if _, err := Calibrate(cfg); err != nil {
		t.Fatal(err)
	}
	misses := cfg.Cache.Misses()
	if _, err := Calibrate(cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Cache.Misses() != misses {
		t.Errorf("re-calibration simulated %d new cells", cfg.Cache.Misses()-misses)
	}
}

func TestDefaultTrainingProfiles(t *testing.T) {
	a, b := DefaultTrainingProfiles(1), DefaultTrainingProfiles(1)
	if len(a) != len(b) || len(a) < 12 {
		t.Fatalf("unexpected training set size %d", len(a))
	}
	names := map[string]bool{}
	for i, p := range a {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %d invalid: %v", i, err)
		}
		if p.Name() != b[i].Name() {
			t.Errorf("profile %d not deterministic", i)
		}
		names[p.Name()] = true
	}
	if len(names) != len(a) {
		t.Errorf("training profiles collide: %d distinct of %d", len(names), len(a))
	}
	if DefaultTrainingProfiles(2)[6].Name() == a[6].Name() {
		t.Error("different seeds produce identical fills")
	}
}

func TestSolveRidgeRecoversLinear(t *testing.T) {
	// y = 3 - 2·x1 + 0.5·x2, exactly linear: the solver must recover the
	// coefficients to ridge precision.
	var X [][]float64
	var y []float64
	r := rng{state: 42}
	for i := 0; i < 40; i++ {
		x1 := float64(r.intn(100)) / 10
		x2 := float64(r.intn(100)) / 10
		X = append(X, []float64{1, x1, x2})
		y = append(y, 3-2*x1+0.5*x2)
	}
	w, err := solveRidge(X, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{3, -2, 0.5} {
		if math.Abs(w[i]-want) > 1e-3 {
			t.Errorf("w[%d] = %g, want %g", i, w[i], want)
		}
	}
}

func TestSolveRidgeConstantColumn(t *testing.T) {
	// A constant zero column (the baseline arch's boost features) makes
	// plain normal equations singular; ridge must still solve.
	var X [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		x := float64(i)
		X = append(X, []float64{1, x, 0})
		y = append(y, 1+2*x)
	}
	w, err := solveRidge(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-1) > 1e-3 || math.Abs(w[1]-2) > 1e-3 {
		t.Errorf("w = %v, want [1 2 ~0]", w)
	}
}

func TestSolveRidgeErrors(t *testing.T) {
	if _, err := solveRidge(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := solveRidge([][]float64{{1}, {1}}, []float64{1, 2}); err == nil {
		t.Error("underdetermined 2-row system accepted")
	}
	if _, err := solveRidge([][]float64{{0, 0}, {0, 0}, {0, 0}}, []float64{0, 0, 0}); err == nil {
		t.Error("all-zero design matrix accepted")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	s.Observe(1.1, 1.0, 0.9, 1.0) // 10% high, 10% low
	s.Observe(1.0, 1.0, 1.0, 1.0) // exact
	s.Finish()
	if s.Cells != 2 {
		t.Errorf("cells = %d", s.Cells)
	}
	if math.Abs(s.TimeMAPE-0.05) > 1e-9 || math.Abs(s.TimeMaxAPE-0.1) > 1e-9 {
		t.Errorf("time error stats wrong: %+v", s)
	}
	if math.Abs(s.EnergyMAPE-0.05) > 1e-9 || math.Abs(s.EnergyMaxAPE-0.1) > 1e-9 {
		t.Errorf("energy error stats wrong: %+v", s)
	}
}
