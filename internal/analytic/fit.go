package analytic

import (
	"fmt"
	"math"
)

// solveRidge fits w to minimize ||Xw - y||² + λ||w||² via the normal
// equations (XᵀX + λI) w = Xᵀy, solved by Gaussian elimination with
// partial pivoting. The regularizer is scaled to the problem
// (λ = 1e-6 · trace(XᵀX)/d) so the solve stays stable when a feature
// column is constant — the baseline architecture's boost features are
// identically zero, which would make a plain least-squares system
// singular.
func solveRidge(X [][]float64, y []float64) ([]float64, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("ridge: %d rows vs %d targets", n, len(y))
	}
	d := len(X[0])
	if n < 3 {
		return nil, fmt.Errorf("ridge: %d observations cannot constrain %d features", n, d)
	}

	// A = XᵀX, b = Xᵀy.
	A := make([][]float64, d)
	for i := range A {
		A[i] = make([]float64, d)
	}
	b := make([]float64, d)
	for r, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("ridge: ragged feature row %d", r)
		}
		for i := 0; i < d; i++ {
			for j := i; j < d; j++ {
				A[i][j] += row[i] * row[j]
			}
			b[i] += row[i] * y[r]
		}
	}
	trace := 0.0
	for i := 0; i < d; i++ {
		trace += A[i][i]
		for j := 0; j < i; j++ {
			A[i][j] = A[j][i]
		}
	}
	lambda := 1e-6 * trace / float64(d)
	if lambda <= 0 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("ridge: degenerate design matrix (trace %g)", trace)
	}
	for i := 0; i < d; i++ {
		A[i][i] += lambda
	}

	// Gaussian elimination with partial pivoting.
	w := make([]float64, d)
	for col := 0; col < d; col++ {
		pivot := col
		for r := col + 1; r < d; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[pivot][col]) {
				pivot = r
			}
		}
		if A[pivot][col] == 0 {
			return nil, fmt.Errorf("ridge: singular system at column %d", col)
		}
		A[col], A[pivot] = A[pivot], A[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / A[col][col]
		for r := col + 1; r < d; r++ {
			f := A[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < d; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for col := d - 1; col >= 0; col-- {
		s := b[col]
		for c := col + 1; c < d; c++ {
			s -= A[col][c] * w[c]
		}
		w[col] = s / A[col][col]
	}
	for _, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("ridge: non-finite solution")
		}
	}
	return w, nil
}
