// Package asm assembles text assembly for the flywheel ISA into loadable
// program images. It is a classic two-pass assembler: pass one scans
// sections, expands pseudo-instruction sizes and assigns label addresses;
// pass two encodes instructions with all symbols resolved.
//
// Syntax overview (see the workload kernels under internal/workload for
// larger examples):
//
//	; comment            # comment            // comment
//	.text                                 start of code section (default)
//	.data                                 start of data section
//	.global main                          entry point label
//	loop:   addi r1, r1, -1               labels end with ':'
//	        ld   r2, 8(r3)                memory operands are imm(reg)
//	        bne  r1, r0, loop             control targets are labels
//	.data
//	table:  .word 1, 2, 3                 64-bit data words
//	vec:    .double 1.5, 2.5              64-bit IEEE floats
//	buf:    .space 256                    zeroed bytes
//	        .align 8
//
// Pseudo-instructions: li, la, mv, not, neg, call, ret, jr, b, beqz, bnez,
// bgt, ble.
package asm

import (
	"fmt"
	"strings"

	"flywheel/internal/isa"
)

// Memory layout constants. Code and data live in disjoint regions so the
// timing models can classify accesses.
const (
	CodeBase uint64 = 0x0000_1000
	DataBase uint64 = 0x0010_0000
)

// Program is an assembled, loadable image.
type Program struct {
	Name string
	// Code holds the instruction stream; instruction i lives at address
	// CodeBase + 4*i.
	Code []isa.Instruction
	// Data is the initialized data image, based at DataBase.
	Data []byte
	// Entry is the address of the entry point (the .global label, or
	// CodeBase when none is declared).
	Entry uint64
	// Symbols maps every label to its resolved address.
	Symbols map[string]uint64
}

// CodeEnd returns the first address past the code section.
func (p *Program) CodeEnd() uint64 { return CodeBase + uint64(len(p.Code))*isa.InstBytes }

// InstAt returns the instruction at the given address. ok is false outside
// the code section.
func (p *Program) InstAt(addr uint64) (isa.Instruction, bool) {
	if addr < CodeBase || addr >= p.CodeEnd() || addr%isa.InstBytes != 0 {
		return isa.Nop(), false
	}
	return p.Code[(addr-CodeBase)/isa.InstBytes], true
}

// Error is one assembly diagnostic.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

// ErrorList collects all diagnostics from one assembly run.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	default:
		var b strings.Builder
		fmt.Fprintf(&b, "%s (and %d more errors)", l[0].Error(), len(l)-1)
		return b.String()
	}
}

// Assemble builds a program from source. name is used in diagnostics and as
// the program name.
func Assemble(name, source string) (*Program, error) {
	a := &assembler{
		name:    name,
		prog:    &Program{Name: name, Symbols: make(map[string]uint64)},
		dataPos: 0,
	}
	lines := strings.Split(source, "\n")

	// Pass 1: sizes and symbols.
	a.pass = 1
	a.section = sectText
	for i, raw := range lines {
		a.line = i + 1
		a.scanLine(raw)
	}
	if len(a.errs) > 0 {
		return nil, a.errs
	}

	// Pass 2: encode.
	a.pass = 2
	a.section = sectText
	a.codePos = 0
	a.dataPos = 0
	a.prog.Data = make([]byte, a.dataSize)
	for i, raw := range lines {
		a.line = i + 1
		a.scanLine(raw)
	}
	if len(a.errs) > 0 {
		return nil, a.errs
	}

	a.prog.Entry = CodeBase
	if a.entry != "" {
		addr, ok := a.prog.Symbols[a.entry]
		if !ok {
			return nil, ErrorList{{File: name, Line: a.entryLine, Msg: fmt.Sprintf("entry point %q is not defined", a.entry)}}
		}
		a.prog.Entry = addr
	}
	if len(a.prog.Code) == 0 {
		return nil, ErrorList{{File: name, Line: 1, Msg: "program has no code"}}
	}
	return a.prog, nil
}

// MustAssemble assembles or panics; for static workload tables and tests.
func MustAssemble(name, source string) *Program {
	p, err := Assemble(name, source)
	if err != nil {
		panic(fmt.Sprintf("asm: %s: %v", name, err))
	}
	return p
}

type section int

const (
	sectText section = iota
	sectData
)

type assembler struct {
	name    string
	pass    int
	line    int
	section section

	prog      *Program
	codePos   int // instruction index
	dataPos   int // byte offset in data
	dataSize  int // total data size discovered in pass 1
	entry     string
	entryLine int

	errs ErrorList
}

func (a *assembler) errorf(format string, args ...any) {
	a.errs = append(a.errs, &Error{File: a.name, Line: a.line, Msg: fmt.Sprintf(format, args...)})
}

// scanLine handles one source line in the current pass.
func (a *assembler) scanLine(raw string) {
	text := stripComment(raw)
	text = strings.TrimSpace(text)
	if text == "" {
		return
	}

	// Peel off any leading labels ("name:").
	for {
		idx := strings.Index(text, ":")
		if idx < 0 {
			break
		}
		head := strings.TrimSpace(text[:idx])
		if !isIdent(head) {
			break
		}
		a.defineLabel(head)
		text = strings.TrimSpace(text[idx+1:])
	}
	if text == "" {
		return
	}

	if strings.HasPrefix(text, ".") {
		a.directive(text)
		return
	}
	if a.section != sectText {
		a.errorf("instruction %q outside .text section", text)
		return
	}
	a.instruction(text)
}

func (a *assembler) defineLabel(name string) {
	if a.pass != 1 {
		return
	}
	if _, dup := a.prog.Symbols[name]; dup {
		a.errorf("label %q redefined", name)
		return
	}
	switch a.section {
	case sectText:
		a.prog.Symbols[name] = CodeBase + uint64(a.codePos)*isa.InstBytes
	case sectData:
		a.prog.Symbols[name] = DataBase + uint64(a.dataPos)
	}
}

func stripComment(s string) string {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ';', '#':
			return s[:i]
		case '/':
			if i+1 < len(s) && s[i+1] == '/' {
				return s[:i]
			}
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// emit appends one encoded instruction (pass 2) or just reserves its slot
// (pass 1).
func (a *assembler) emit(in isa.Instruction) {
	if a.pass == 2 {
		if _, err := isa.Encode(in); err != nil {
			a.errorf("%v", err)
		}
		a.prog.Code = append(a.prog.Code, in)
	}
	a.codePos++
}

// emitData appends bytes to the data image.
func (a *assembler) emitData(b []byte) {
	if a.pass == 2 {
		copy(a.prog.Data[a.dataPos:], b)
	}
	a.dataPos += len(b)
	if a.pass == 1 && a.dataPos > a.dataSize {
		a.dataSize = a.dataPos
	}
}

func (a *assembler) reserveData(n int) {
	a.dataPos += n
	if a.pass == 1 && a.dataPos > a.dataSize {
		a.dataSize = a.dataPos
	}
}
