package asm

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"flywheel/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAssembleBasicBlock(t *testing.T) {
	p := mustAssemble(t, `
.text
.global main
main:
	addi r1, r0, 10
	add  r2, r1, r1
	halt
`)
	if p.Entry != CodeBase {
		t.Errorf("entry = %#x, want %#x", p.Entry, CodeBase)
	}
	if len(p.Code) != 3 {
		t.Fatalf("len(code) = %d, want 3", len(p.Code))
	}
	want := []string{"addi r1, r0, 10", "add r2, r1, r1", "halt"}
	for i, w := range want {
		if got := p.Code[i].String(); got != w {
			t.Errorf("code[%d] = %q, want %q", i, got, w)
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
start:
	addi r1, r0, 4      ; 0x1000
loop:
	addi r1, r1, -1     ; 0x1004
	bne  r1, r0, loop   ; 0x1008 -> disp -1
	j    start          ; 0x100c -> disp -3
	halt
`)
	bne := p.Code[2]
	if bne.Op != isa.BNE || bne.Imm != -1 {
		t.Errorf("bne = %v, want disp -1", bne)
	}
	j := p.Code[3]
	if j.Op != isa.J || j.Imm != -3 {
		t.Errorf("j = %v, want disp -3", j)
	}
}

func TestForwardReferences(t *testing.T) {
	p := mustAssemble(t, `
	beq r0, r0, end
	addi r1, r0, 1
end:
	halt
`)
	if p.Code[0].Imm != 2 {
		t.Errorf("forward branch disp = %d, want 2", p.Code[0].Imm)
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
.text
	halt
.data
tbl:
	.word 1, 2, -3
vec:
	.double 1.5
buf:
	.space 16
b:
	.byte 7
	.align 8
end:
	.word 0xdeadbeef
`)
	if got := p.Symbols["tbl"]; got != DataBase {
		t.Errorf("tbl = %#x, want %#x", got, DataBase)
	}
	if got := p.Symbols["vec"]; got != DataBase+24 {
		t.Errorf("vec = %#x, want %#x", got, DataBase+24)
	}
	if got := p.Symbols["buf"]; got != DataBase+32 {
		t.Errorf("buf = %#x, want %#x", got, DataBase+32)
	}
	if got := p.Symbols["b"]; got != DataBase+48 {
		t.Errorf("b = %#x, want %#x", got, DataBase+48)
	}
	// .align 8 pads 48+1 -> 56.
	if got := p.Symbols["end"]; got != DataBase+56 {
		t.Errorf("end = %#x, want %#x", got, DataBase+56)
	}
	if got := int64(binary.LittleEndian.Uint64(p.Data[16:])); got != -3 {
		t.Errorf("tbl[2] = %d, want -3", got)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(p.Data[24:])); got != 1.5 {
		t.Errorf("vec[0] = %v, want 1.5", got)
	}
	if p.Data[48] != 7 {
		t.Errorf("byte = %d, want 7", p.Data[48])
	}
	if got := binary.LittleEndian.Uint64(p.Data[56:]); got != 0xdeadbeef {
		t.Errorf("end word = %#x", got)
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
main:
	li   r1, 42
	li   r2, 0x12345
	mv   r3, r1
	mv   f1, f2
	not  r4, r1
	neg  r5, r1
	call fn
	b    main
	beqz r1, main
	bnez r1, main
	bgt  r1, r2, main
	ble  r1, r2, main
fn:
	ret
	halt
`)
	if p.Code[0].Op != isa.ADDI || p.Code[0].Imm != 42 {
		t.Errorf("li small = %v", p.Code[0])
	}
	// 0x12345 needs lui+addi.
	if p.Code[1].Op != isa.LUI {
		t.Errorf("li large first = %v, want lui", p.Code[1])
	}
	if p.Code[2].Op != isa.ADDI || p.Code[2].Rs1 != isa.IntReg(2) {
		t.Errorf("li large second = %v, want addi r2, r2, lo", p.Code[2])
	}
	// Verify the hi/lo decomposition reconstructs the constant.
	hi, lo := int64(p.Code[1].Imm), int64(p.Code[2].Imm)
	if (hi<<12)+lo != 0x12345 {
		t.Errorf("li decomposition (%d<<12)+%d != 0x12345", hi, lo)
	}
	if p.Code[3].Op != isa.ADDI || p.Code[3].Imm != 0 {
		t.Errorf("mv = %v", p.Code[3])
	}
	if p.Code[4].Op != isa.FMOV {
		t.Errorf("fp mv = %v", p.Code[4])
	}
	if p.Code[5].Op != isa.XORI || p.Code[5].Imm != -1 {
		t.Errorf("not = %v", p.Code[5])
	}
	if p.Code[6].Op != isa.SUB || p.Code[6].Rs1 != isa.IntReg(0) {
		t.Errorf("neg = %v", p.Code[6])
	}
	call := p.Code[7]
	if call.Op != isa.JAL || call.Rd != isa.IntReg(31) {
		t.Errorf("call = %v", call)
	}
	ret := p.Code[13]
	if ret.Op != isa.JALR || ret.Rd != isa.IntReg(0) || ret.Rs1 != isa.IntReg(31) {
		t.Errorf("ret = %v", ret)
	}
}

func TestLoadAddress(t *testing.T) {
	p := mustAssemble(t, `
	la r1, tbl
	halt
.data
	.space 24
tbl:
	.word 9
`)
	addr := p.Symbols["tbl"]
	hi, lo := int64(p.Code[0].Imm), int64(p.Code[1].Imm)
	if got := uint64((hi << 12) + lo); got != addr {
		t.Errorf("la reconstructs %#x, want %#x", got, addr)
	}
}

func TestMemoryOperands(t *testing.T) {
	p := mustAssemble(t, `
	ld  r1, 8(r2)
	ld  r3, (r4)
	sd  r1, -16(r2)
	fld f1, 0(r2)
	fsd f1, 8(r2)
	halt
`)
	if p.Code[0].Rs1 != isa.IntReg(2) || p.Code[0].Imm != 8 {
		t.Errorf("ld = %v", p.Code[0])
	}
	if p.Code[1].Imm != 0 {
		t.Errorf("ld with empty offset = %v", p.Code[1])
	}
	if p.Code[2].Op != isa.SD || p.Code[2].Rs2 != isa.IntReg(1) || p.Code[2].Imm != -16 {
		t.Errorf("sd = %v", p.Code[2])
	}
	if !p.Code[3].Rd.IsFP() {
		t.Errorf("fld dest = %v", p.Code[3])
	}
}

func TestCommentsAndAliases(t *testing.T) {
	p := mustAssemble(t, `
	addi r1, zero, 1   ; semicolon comment
	addi r2, zero, 2   # hash comment
	addi r3, zero, 3   // slash comment
	mv r4, sp
	jr ra
	halt
`)
	if len(p.Code) != 6 {
		t.Fatalf("len(code) = %d, want 6", len(p.Code))
	}
	if p.Code[3].Rs1 != isa.IntReg(29) {
		t.Errorf("sp alias = %v", p.Code[3])
	}
	if p.Code[4].Rs1 != isa.IntReg(31) {
		t.Errorf("ra alias = %v", p.Code[4])
	}
}

func TestEntryPoint(t *testing.T) {
	p := mustAssemble(t, `
.global main
	nop
main:
	halt
`)
	if p.Entry != CodeBase+4 {
		t.Errorf("entry = %#x, want %#x", p.Entry, CodeBase+4)
	}
}

func TestInstAt(t *testing.T) {
	p := mustAssemble(t, "\taddi r1, r0, 1\n\thalt\n")
	if in, ok := p.InstAt(CodeBase); !ok || in.Op != isa.ADDI {
		t.Errorf("InstAt(base) = %v, %v", in, ok)
	}
	if _, ok := p.InstAt(CodeBase + 8); ok {
		t.Error("InstAt past end succeeded")
	}
	if _, ok := p.InstAt(CodeBase + 1); ok {
		t.Error("InstAt unaligned succeeded")
	}
	if _, ok := p.InstAt(0); ok {
		t.Error("InstAt(0) succeeded")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", "\tfoo r1, r2\n", "unknown mnemonic"},
		{"bad register", "\taddi rx, r0, 1\n", "bad register"},
		{"wrong operand count", "\tadd r1, r2\n", "expects 3 operands"},
		{"undefined label", "\tj nowhere\n", "undefined label"},
		{"redefined label", "a:\n\tnop\na:\n\thalt\n", "redefined"},
		{"imm out of range", "\taddi r1, r0, 5000\n", "cannot encode"},
		{"data in text", "\t.word 5\n", "outside .data"},
		{"unknown directive", "\t.bogus\n", "unknown directive"},
		{"bad mem operand", "\tld r1, 8[r2]\n", "bad memory operand"},
		{"no code", ".data\n\t.word 1\n", "no code"},
		{"bad float", ".text\n\thalt\n.data\n\t.double xyz\n", "bad float"},
		{"entry missing", ".global nope\n\thalt\n", "not defined"},
		{"cross-file mv", "\tmv r1, f1\n", "register files"},
		{"li overflow", "\tli r1, 0x7fffffffffffffff\n", "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("t.s", c.src)
			if err == nil {
				t.Fatalf("assembled without error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestErrorListFormat(t *testing.T) {
	_, err := Assemble("t.s", "\tfoo\n\tbar\n\thalt\n")
	if err == nil {
		t.Fatal("want errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "t.s:1") || !strings.Contains(msg, "more error") {
		t.Errorf("multi-error format = %q", msg)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bad.s", "\tfoo\n")
}
