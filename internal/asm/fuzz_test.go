package asm_test

// Native fuzz target for the assembler and the instruction codec. The
// invariants: Assemble never panics on any input, and every instruction of
// a successfully assembled program survives the encode → decode round trip
// with its identity intact (the emulator re-encodes programs into memory
// and the timing cores re-decode them, so a lossy codec would silently
// corrupt workloads). The seed corpus is the real workload kernels — the
// ten proxies plus synthetic programs — so the fuzzer mutates from deep
// inside the accepted grammar. CI runs a short -fuzztime smoke; run longer
// hunts with:
//
//	go test ./internal/asm -run=^$ -fuzz=FuzzAssemble -fuzztime=5m

import (
	"testing"

	"flywheel/internal/asm"
	"flywheel/internal/isa"
	"flywheel/internal/workload"
	"flywheel/internal/workload/synth"
)

func FuzzAssemble(f *testing.F) {
	for _, w := range workload.Sorted() {
		f.Add(w.Source)
	}
	f.Add(synth.MustGenerate(synth.Profile{MemFootprintKB: 1, CodeFootprintKB: 1, Passes: 1}))
	f.Add(synth.MustGenerate(synth.Profile{ILP: 1, BranchEntropy: 1, FPMix: 1, MemFootprintKB: 1, CodeFootprintKB: 1, Passes: 1, Seed: 9}))
	// Grammar corners: every directive and pseudo-instruction, odd
	// spacing, labels on their own lines, both comment styles.
	f.Add("start:\n\tli r1, 42\n\thalt\n")
	f.Add(".global main\nmain: addi r1, r0, 1 ; c\n\tb main\n.data\nx: .word 1, 2\n")
	f.Add("\t.data\nv:\t.double 1.5, -2e3\nbuf: .space 16\n.align 8\nw: .byte 1\n")
	f.Add("a: b: c: ld f1, -8(sp)\n\tfsd f1, 0(r29)\n\tcall a // x\n\tret\n")
	f.Add("\tlui r5, 131071\n\tjalr r0, r5\n\tbgt r1, r2, 4\n\tble r1, r2, -4\n")
	f.Add("\tmv f1, f2\n\tnot r3, r4\n\tneg r5, r6\n\tjr ra\n\tbeqz zero, 0\n")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := asm.Assemble("fuzz.s", src)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		for i, in := range prog.Code {
			word, err := isa.Encode(in)
			if err != nil {
				t.Fatalf("instruction %d %q assembled but does not encode: %v", i, in, err)
			}
			back, err := isa.Decode(word)
			if err != nil {
				t.Fatalf("instruction %d %q encoded to %#x but does not decode: %v", i, in, word, err)
			}
			if back != in {
				t.Errorf("instruction %d round trip: %q -> %#x -> %q", i, in, word, back)
			}
		}
		// The rest of the stack trusts these invariants of a successful
		// assembly; hold them under fuzzing too.
		if len(prog.Code) == 0 {
			t.Error("assembled program has no code")
		}
		if prog.Entry < asm.CodeBase || prog.Entry >= prog.CodeEnd() {
			t.Errorf("entry %#x outside code [%#x, %#x)", prog.Entry, asm.CodeBase, prog.CodeEnd())
		}
		for name, addr := range prog.Symbols {
			if addr >= asm.CodeBase && addr < prog.CodeEnd() && addr%isa.InstBytes != 0 {
				t.Errorf("code symbol %q at misaligned address %#x", name, addr)
			}
		}
	})
}
