package asm

import (
	"encoding/binary"
	"math"
	"strconv"
	"strings"

	"flywheel/internal/isa"
)

// Register aliases accepted in addition to r0..r31 / f0..f31.
var regAliases = map[string]isa.Reg{
	"zero": isa.IntReg(0),
	"ra":   isa.IntReg(31), // link register used by call/ret
	"sp":   isa.IntReg(29),
}

func parseReg(s string) (isa.Reg, bool) {
	if r, ok := regAliases[s]; ok {
		return r, true
	}
	if len(s) < 2 {
		return isa.RegNone, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return isa.RegNone, false
	}
	switch s[0] {
	case 'r':
		return isa.IntReg(n), true
	case 'f':
		return isa.FPReg(n), true
	}
	return isa.RegNone, false
}

// directive handles one dot-directive line.
func (a *assembler) directive(text string) {
	fields := strings.Fields(text)
	name := fields[0]
	rest := strings.TrimSpace(strings.TrimPrefix(text, name))
	switch name {
	case ".text":
		a.section = sectText
	case ".data":
		a.section = sectData
	case ".global", ".globl", ".entry":
		if len(fields) != 2 || !isIdent(fields[1]) {
			a.errorf("%s needs one label operand", name)
			return
		}
		if a.pass == 1 {
			if a.entry != "" && a.entry != fields[1] {
				a.errorf("entry point redefined (%q was set at line %d)", a.entry, a.entryLine)
				return
			}
			a.entry = fields[1]
			a.entryLine = a.line
		}
	case ".word":
		a.dataValues(rest, 8, func(v int64) []byte {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			return b[:]
		})
	case ".byte":
		a.dataValues(rest, 1, func(v int64) []byte { return []byte{byte(v)} })
	case ".double":
		if a.section != sectData {
			a.errorf(".double outside .data section")
			return
		}
		for _, f := range splitOperands(rest) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				a.errorf("bad float literal %q", f)
				continue
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			a.emitData(b[:])
		}
	case ".space":
		if a.section != sectData {
			a.errorf(".space outside .data section")
			return
		}
		n, err := strconv.ParseInt(strings.TrimSpace(rest), 0, 32)
		if err != nil || n < 0 {
			a.errorf("bad .space size %q", rest)
			return
		}
		a.reserveData(int(n))
	case ".align":
		n, err := strconv.ParseInt(strings.TrimSpace(rest), 0, 32)
		if err != nil || n <= 0 || (n&(n-1)) != 0 {
			a.errorf("bad .align %q (need a power of two)", rest)
			return
		}
		if a.section == sectData {
			pad := (int(n) - a.dataPos%int(n)) % int(n)
			a.reserveData(pad)
		}
	default:
		a.errorf("unknown directive %q", name)
	}
}

func (a *assembler) dataValues(rest string, width int, enc func(int64) []byte) {
	if a.section != sectData {
		a.errorf("data directive outside .data section")
		return
	}
	for _, f := range splitOperands(rest) {
		v, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			// Allow unsigned 64-bit literals too.
			u, uerr := strconv.ParseUint(f, 0, 64)
			if uerr != nil {
				a.errorf("bad integer literal %q", f)
				continue
			}
			v = int64(u)
		}
		a.emitData(enc(v))
	}
}

func splitOperands(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// pc returns the address of the instruction being emitted.
func (a *assembler) pc() uint64 { return CodeBase + uint64(a.codePos)*isa.InstBytes }

// branchDisp resolves a label to a branch displacement in instruction units,
// relative to the current instruction.
func (a *assembler) branchDisp(label string) int32 {
	if a.pass == 1 {
		return 0
	}
	target, ok := a.prog.Symbols[label]
	if !ok {
		a.errorf("undefined label %q", label)
		return 0
	}
	return int32((int64(target) - int64(a.pc())) / isa.InstBytes)
}

// symbolAddr resolves a label to its absolute address.
func (a *assembler) symbolAddr(label string) uint64 {
	if a.pass == 1 {
		return 0
	}
	addr, ok := a.prog.Symbols[label]
	if !ok {
		a.errorf("undefined label %q", label)
		return 0
	}
	return addr
}

// instruction assembles one instruction line (real or pseudo).
func (a *assembler) instruction(text string) {
	mnemonic := text
	rest := ""
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		mnemonic, rest = text[:i], strings.TrimSpace(text[i+1:])
	}
	mnemonic = strings.ToLower(mnemonic)
	ops := splitOperands(rest)

	if a.pseudo(mnemonic, ops) {
		return
	}

	op, ok := isa.OpByName(mnemonic)
	if !ok {
		a.errorf("unknown mnemonic %q", mnemonic)
		return
	}
	in := isa.Instruction{Op: op, Rd: isa.RegNone, Rs1: isa.RegNone, Rs2: isa.RegNone}

	need := func(n int) bool {
		if len(ops) != n {
			a.errorf("%s expects %d operands, got %d", mnemonic, n, len(ops))
			return false
		}
		return true
	}
	reg := func(s string) isa.Reg {
		r, ok := parseReg(s)
		if !ok {
			a.errorf("bad register %q", s)
		}
		return r
	}
	imm := func(s string) int32 {
		v, err := strconv.ParseInt(s, 0, 32)
		if err != nil {
			a.errorf("bad immediate %q", s)
			return 0
		}
		return int32(v)
	}

	switch op.Info().Format {
	case isa.FmtNone:
		if !need(0) {
			return
		}
	case isa.FmtRRR:
		if !need(3) {
			return
		}
		in.Rd, in.Rs1, in.Rs2 = reg(ops[0]), reg(ops[1]), reg(ops[2])
	case isa.FmtRR:
		if !need(2) {
			return
		}
		in.Rd, in.Rs1 = reg(ops[0]), reg(ops[1])
	case isa.FmtRRI:
		if !need(3) {
			return
		}
		in.Rd, in.Rs1, in.Imm = reg(ops[0]), reg(ops[1]), imm(ops[2])
	case isa.FmtRI:
		if !need(2) {
			return
		}
		in.Rd, in.Imm = reg(ops[0]), imm(ops[1])
	case isa.FmtMem:
		if !need(2) {
			return
		}
		in.Rd = reg(ops[0])
		base, off, ok := parseMemOperand(ops[1])
		if !ok {
			a.errorf("bad memory operand %q", ops[1])
			return
		}
		in.Rs1, in.Imm = reg(base), imm(off)
	case isa.FmtMemS:
		if !need(2) {
			return
		}
		in.Rs2 = reg(ops[0])
		base, off, ok := parseMemOperand(ops[1])
		if !ok {
			a.errorf("bad memory operand %q", ops[1])
			return
		}
		in.Rs1, in.Imm = reg(base), imm(off)
	case isa.FmtBranch:
		if !need(3) {
			return
		}
		in.Rs1, in.Rs2 = reg(ops[0]), reg(ops[1])
		in.Imm = a.controlTarget(ops[2])
	case isa.FmtJump:
		if !need(1) {
			return
		}
		in.Imm = a.controlTarget(ops[0])
	case isa.FmtJAL:
		if !need(2) {
			return
		}
		in.Rd = reg(ops[0])
		in.Imm = a.controlTarget(ops[1])
	case isa.FmtJALR:
		if !need(2) {
			return
		}
		in.Rd, in.Rs1 = reg(ops[0]), reg(ops[1])
	}
	a.emit(in)
}

// controlTarget accepts either a label or a numeric displacement.
func (a *assembler) controlTarget(s string) int32 {
	if v, err := strconv.ParseInt(s, 0, 32); err == nil {
		return int32(v)
	}
	if !isIdent(s) {
		a.errorf("bad control-flow target %q", s)
		return 0
	}
	return a.branchDisp(s)
}

func parseMemOperand(s string) (base, offset string, ok bool) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", "", false
	}
	offset = strings.TrimSpace(s[:open])
	if offset == "" {
		offset = "0"
	}
	base = strings.TrimSpace(s[open+1 : len(s)-1])
	return base, offset, base != ""
}

// pseudo expands pseudo-instructions; it reports whether the mnemonic was a
// pseudo-instruction.
func (a *assembler) pseudo(mnemonic string, ops []string) bool {
	reg := func(s string) isa.Reg {
		r, ok := parseReg(s)
		if !ok {
			a.errorf("bad register %q", s)
		}
		return r
	}
	need := func(n int) bool {
		if len(ops) != n {
			a.errorf("%s expects %d operands, got %d", mnemonic, n, len(ops))
			return false
		}
		return true
	}
	switch mnemonic {
	case "li":
		if !need(2) {
			return true
		}
		rd := reg(ops[0])
		v, err := strconv.ParseInt(ops[1], 0, 64)
		if err != nil {
			a.errorf("bad immediate %q", ops[1])
			return true
		}
		a.loadConstant(rd, v)
	case "la":
		if !need(2) {
			return true
		}
		rd := reg(ops[0])
		if !isIdent(ops[1]) {
			a.errorf("la needs a label, got %q", ops[1])
			return true
		}
		addr := a.symbolAddr(ops[1])
		// Always two instructions so pass-1 sizing is stable.
		hi, lo := splitHiLo(int64(addr))
		a.emit(isa.Instruction{Op: isa.LUI, Rd: rd, Imm: int32(hi), Rs1: isa.RegNone, Rs2: isa.RegNone})
		a.emit(isa.Instruction{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: int32(lo), Rs2: isa.RegNone})
	case "mv":
		if !need(2) {
			return true
		}
		rd, rs := reg(ops[0]), reg(ops[1])
		if rd.IsFP() != rs.IsFP() {
			a.errorf("mv cannot move between register files (use fcvtif/fcvtfi)")
			return true
		}
		if rd.IsFP() {
			a.emit(isa.Instruction{Op: isa.FMOV, Rd: rd, Rs1: rs, Rs2: isa.RegNone})
		} else {
			a.emit(isa.Instruction{Op: isa.ADDI, Rd: rd, Rs1: rs, Imm: 0, Rs2: isa.RegNone})
		}
	case "not":
		if !need(2) {
			return true
		}
		a.emit(isa.Instruction{Op: isa.XORI, Rd: reg(ops[0]), Rs1: reg(ops[1]), Imm: -1, Rs2: isa.RegNone})
	case "neg":
		if !need(2) {
			return true
		}
		a.emit(isa.Instruction{Op: isa.SUB, Rd: reg(ops[0]), Rs1: isa.IntReg(0), Rs2: reg(ops[1])})
	case "call":
		if !need(1) {
			return true
		}
		a.emit(isa.Instruction{Op: isa.JAL, Rd: isa.IntReg(31), Imm: a.controlTarget(ops[0]), Rs1: isa.RegNone, Rs2: isa.RegNone})
	case "ret":
		if !need(0) {
			return true
		}
		a.emit(isa.Instruction{Op: isa.JALR, Rd: isa.IntReg(0), Rs1: isa.IntReg(31), Rs2: isa.RegNone})
	case "jr":
		if !need(1) {
			return true
		}
		a.emit(isa.Instruction{Op: isa.JALR, Rd: isa.IntReg(0), Rs1: reg(ops[0]), Rs2: isa.RegNone})
	case "b":
		if !need(1) {
			return true
		}
		a.emit(isa.Instruction{Op: isa.J, Imm: a.controlTarget(ops[0]), Rd: isa.RegNone, Rs1: isa.RegNone, Rs2: isa.RegNone})
	case "beqz":
		if !need(2) {
			return true
		}
		a.emit(isa.Instruction{Op: isa.BEQ, Rs1: reg(ops[0]), Rs2: isa.IntReg(0), Imm: a.controlTarget(ops[1]), Rd: isa.RegNone})
	case "bnez":
		if !need(2) {
			return true
		}
		a.emit(isa.Instruction{Op: isa.BNE, Rs1: reg(ops[0]), Rs2: isa.IntReg(0), Imm: a.controlTarget(ops[1]), Rd: isa.RegNone})
	case "bgt":
		if !need(3) {
			return true
		}
		a.emit(isa.Instruction{Op: isa.BLT, Rs1: reg(ops[1]), Rs2: reg(ops[0]), Imm: a.controlTarget(ops[2]), Rd: isa.RegNone})
	case "ble":
		if !need(3) {
			return true
		}
		a.emit(isa.Instruction{Op: isa.BGE, Rs1: reg(ops[1]), Rs2: reg(ops[0]), Imm: a.controlTarget(ops[2]), Rd: isa.RegNone})
	default:
		return false
	}
	return true
}

// loadConstant emits the shortest sequence materializing v into rd.
func (a *assembler) loadConstant(rd isa.Reg, v int64) {
	if v >= isa.MinImm12 && v <= isa.MaxImm12 {
		a.emit(isa.Instruction{Op: isa.ADDI, Rd: rd, Rs1: isa.IntReg(0), Imm: int32(v), Rs2: isa.RegNone})
		return
	}
	hi, lo := splitHiLo(v)
	if hi < isa.MinImm18 || hi > isa.MaxImm18 {
		a.errorf("constant %d out of range for li (max ±2^29)", v)
		return
	}
	a.emit(isa.Instruction{Op: isa.LUI, Rd: rd, Imm: int32(hi), Rs1: isa.RegNone, Rs2: isa.RegNone})
	if lo != 0 {
		a.emit(isa.Instruction{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: int32(lo), Rs2: isa.RegNone})
	}
}

// splitHiLo decomposes v = (hi << 12) + lo with lo in [-2048, 2047].
func splitHiLo(v int64) (hi, lo int64) {
	hi = (v + 0x800) >> 12
	lo = v - (hi << 12)
	return hi, lo
}
