// Package branch implements the branch prediction machinery of the modelled
// machines. The conditional-direction predictor is pluggable behind the
// DirectionPredictor interface — G-share (12-bit global history, 2048-entry
// pattern history table of 2-bit counters, per the paper's Table 2) is the
// default, a TAGE predictor models a modern frontend, and an always-taken
// degenerate exists for differential testing. The branch target buffer for
// indirect jumps and the return-address stack are shared by all direction
// predictors.
//
// The timing cores fetch down the architecturally correct path and use the
// predictor only to decide *whether the real machine would have mispredicted*
// — on disagreement they charge the full redirect penalty, which is the
// quantity the paper's experiments depend on.
package branch

import (
	"flywheel/internal/isa"
)

// Config sizes the predictor.
type Config struct {
	HistoryBits int // G-share global history length
	TableSize   int // pattern history table entries (power of two)
	BTBSize     int // branch target buffer entries (power of two)
	RASDepth    int // return address stack depth
	// Direction selects the conditional-direction predictor: "" or
	// DirGShare for the paper's G-share, DirTAGE for the tagged
	// geometric-history predictor, DirAlwaysTaken for the degenerate.
	// G-share reads HistoryBits/TableSize; TAGE geometry is fixed (see
	// tage.go) so differently sized G-share sweeps stay comparable.
	Direction string
}

// DefaultConfig matches the paper's Table 2 (G-share, 12-bit history,
// 2048 entries) with a conventional BTB and RAS.
func DefaultConfig() Config {
	return Config{HistoryBits: 12, TableSize: 2048, BTBSize: 512, RASDepth: 16, Direction: DirGShare}
}

// Stats counts prediction outcomes.
type Stats struct {
	Lookups       uint64
	CondBranches  uint64
	CondWrong     uint64 // conditional direction mispredicts
	IndirectJumps uint64
	IndirectWrong uint64 // indirect target mispredicts
	ReturnsRight  uint64
	Updates       uint64
}

// Mispredicts is the total number of mispredictions.
func (s Stats) Mispredicts() uint64 { return s.CondWrong + s.IndirectWrong }

// Accuracy is the fraction of correctly predicted mispredictable
// instructions.
func (s Stats) Accuracy() float64 {
	total := s.CondBranches + s.IndirectJumps
	if total == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts())/float64(total)
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// Predictor is the combined direction/target predictor: a pluggable
// conditional-direction predictor plus the shared BTB and RAS.
type Predictor struct {
	cfg    Config
	dir    DirectionPredictor
	btb    []btbEntry
	ras    []uint64
	rasTop int // number of valid entries
	Stats  Stats
}

// New builds a predictor. Table sizes are rounded up to powers of two and
// the Direction name is canonicalized ("" means G-share). Unknown direction
// names panic: validate with KnownDirection first (sim does).
func New(cfg Config) *Predictor {
	if cfg.TableSize <= 0 {
		cfg.TableSize = 2048
	}
	if cfg.BTBSize <= 0 {
		cfg.BTBSize = 512
	}
	cfg.TableSize = ceilPow2(cfg.TableSize)
	cfg.BTBSize = ceilPow2(cfg.BTBSize)
	if cfg.RASDepth <= 0 {
		cfg.RASDepth = 16
	}
	if cfg.HistoryBits <= 0 {
		cfg.HistoryBits = 12
	}
	if cfg.Direction == "" {
		cfg.Direction = DirGShare
	}
	return &Predictor{
		cfg: cfg,
		dir: newDirection(cfg),
		btb: make([]btbEntry, cfg.BTBSize),
		ras: make([]uint64, cfg.RASDepth),
	}
}

// Config returns the predictor configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Direction returns the conditional-direction predictor's canonical name.
func (p *Predictor) Direction() string { return p.dir.Kind() }

// CopyStateFrom copies the table state (direction predictor, BTB, RAS) and
// statistics of an identically configured predictor into this one. It lets
// warmed predictor state be cloned into a fresh core instead of replaying
// the warm branch stream. It panics on configuration mismatch (caller bug).
func (p *Predictor) CopyStateFrom(src *Predictor) {
	if p.cfg != src.cfg {
		panic("branch: CopyStateFrom with mismatched config")
	}
	p.dir.CopyStateFrom(src.dir)
	copy(p.btb, src.btb)
	copy(p.ras, src.ras)
	p.rasTop = src.rasTop
	p.Stats = src.Stats
}

func ceilPow2(n int) int {
	v := 1
	for v < n {
		v <<= 1
	}
	return v
}

func (p *Predictor) btbIndex(pc uint64) int {
	return int((pc >> 2) & uint64(len(p.btb)-1))
}

// Prediction is the front-end's guess for one control instruction.
type Prediction struct {
	Taken  bool
	Target uint64
	// TargetKnown is false when the predictor has no target to offer
	// (BTB miss on an indirect jump); the front-end must then stall until
	// resolution, which counts as a mispredict.
	TargetKnown bool
}

// isCall reports whether the instruction is a linking call.
func isCall(in isa.Instruction) bool {
	return (in.Op == isa.JAL || in.Op == isa.JALR) && in.Rd == isa.IntReg(31)
}

// isReturn reports whether the instruction is a function return.
func isReturn(in isa.Instruction) bool {
	return in.Op == isa.JALR && in.Rd == isa.IntReg(0) && in.Rs1 == isa.IntReg(31)
}

// Predict returns the prediction for a control instruction at pc and
// performs the speculative RAS bookkeeping a real front-end would do.
// Non-control instructions must not be passed.
func (p *Predictor) Predict(pc uint64, in isa.Instruction) Prediction {
	p.Stats.Lookups++
	switch in.Class() {
	case isa.ClassBranch:
		p.Stats.CondBranches++
		return Prediction{
			Taken:       p.dir.Predict(pc),
			Target:      uint64(int64(pc) + int64(in.Imm)*isa.InstBytes),
			TargetKnown: true,
		}
	case isa.ClassJump:
		if isCall(in) {
			p.pushRAS(pc + isa.InstBytes)
		}
		if in.Op != isa.JALR {
			// Direct jump: target is in the instruction.
			return Prediction{
				Taken:       true,
				Target:      uint64(int64(pc) + int64(in.Imm)*isa.InstBytes),
				TargetKnown: true,
			}
		}
		p.Stats.IndirectJumps++
		if isReturn(in) {
			if target, ok := p.popRAS(); ok {
				return Prediction{Taken: true, Target: target, TargetKnown: true}
			}
		}
		e := p.btb[p.btbIndex(pc)]
		if e.valid && e.tag == pc {
			return Prediction{Taken: true, Target: e.target, TargetKnown: true}
		}
		return Prediction{Taken: true, TargetKnown: false}
	default:
		return Prediction{}
	}
}

// Update trains the predictor with the architected outcome; the cores call
// it at retirement (the paper routes predictor updates from Retire to
// Fetch).
func (p *Predictor) Update(pc uint64, in isa.Instruction, taken bool, target uint64) {
	p.Stats.Updates++
	switch in.Class() {
	case isa.ClassBranch:
		p.dir.Update(pc, taken)
	case isa.ClassJump:
		if in.Op == isa.JALR && !isReturn(in) {
			p.btb[p.btbIndex(pc)] = btbEntry{tag: pc, target: target, valid: true}
		}
	}
}

// RecordOutcome classifies a resolved prediction for statistics. wrong is
// whether the front-end guess disagreed with the architected outcome.
func (p *Predictor) RecordOutcome(in isa.Instruction, wrong bool) {
	if !wrong {
		if isReturn(in) {
			p.Stats.ReturnsRight++
		}
		return
	}
	if in.Class() == isa.ClassBranch {
		p.Stats.CondWrong++
	} else {
		p.Stats.IndirectWrong++
	}
}

func (p *Predictor) pushRAS(ret uint64) {
	if p.rasTop == len(p.ras) {
		copy(p.ras, p.ras[1:])
		p.rasTop--
	}
	p.ras[p.rasTop] = ret
	p.rasTop++
}

func (p *Predictor) popRAS() (uint64, bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop], true
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
