package branch

import (
	"testing"

	"flywheel/internal/isa"
)

func condBranch() isa.Instruction {
	return isa.Instruction{Op: isa.BNE, Rs1: isa.IntReg(1), Rs2: isa.IntReg(0), Imm: -4, Rd: isa.RegNone}
}

func TestGShareLearnsLoop(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x1000)
	in := condBranch()
	// Train: always taken.
	for i := 0; i < 32; i++ {
		p.Predict(pc, in)
		p.Update(pc, in, true, pc-16)
	}
	pred := p.Predict(pc, in)
	if !pred.Taken {
		t.Error("predictor did not learn an always-taken branch")
	}
	if pred.Target != pc-16 {
		t.Errorf("branch target = %#x, want %#x", pred.Target, pc-16)
	}
	// Retrain: always not-taken.
	for i := 0; i < 32; i++ {
		p.Update(pc, in, false, 0)
	}
	if p.Predict(pc, in).Taken {
		t.Error("predictor did not unlearn after retraining")
	}
}

func TestGShareLearnsAlternatingPattern(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x2000)
	in := condBranch()
	// Alternating T/N: history correlation should capture this perfectly
	// after warmup.
	taken := false
	for i := 0; i < 200; i++ {
		p.Predict(pc, in)
		p.Update(pc, in, taken, pc+64)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 100; i++ {
		pred := p.Predict(pc, in)
		if pred.Taken == taken {
			correct++
		}
		p.Update(pc, in, taken, pc+64)
		taken = !taken
	}
	if correct < 95 {
		t.Errorf("alternating pattern accuracy %d/100, want >= 95", correct)
	}
}

func TestDirectJumpAlwaysPredicted(t *testing.T) {
	p := New(DefaultConfig())
	j := isa.Instruction{Op: isa.J, Imm: 10, Rd: isa.RegNone, Rs1: isa.RegNone, Rs2: isa.RegNone}
	pred := p.Predict(0x1000, j)
	if !pred.Taken || !pred.TargetKnown || pred.Target != 0x1000+40 {
		t.Errorf("direct jump prediction = %+v", pred)
	}
}

func TestBTBForIndirectJumps(t *testing.T) {
	p := New(DefaultConfig())
	// Indirect jump that is not a return: jalr r0, r5.
	in := isa.Instruction{Op: isa.JALR, Rd: isa.IntReg(0), Rs1: isa.IntReg(5), Rs2: isa.RegNone}
	pc := uint64(0x3000)
	pred := p.Predict(pc, in)
	if pred.TargetKnown {
		t.Error("cold BTB offered a target")
	}
	p.Update(pc, in, true, 0x4444)
	pred = p.Predict(pc, in)
	if !pred.TargetKnown || pred.Target != 0x4444 {
		t.Errorf("after update, prediction = %+v, want target 0x4444", pred)
	}
}

func TestRASPairsCallsAndReturns(t *testing.T) {
	p := New(DefaultConfig())
	call := isa.Instruction{Op: isa.JAL, Rd: isa.IntReg(31), Imm: 100, Rs1: isa.RegNone, Rs2: isa.RegNone}
	ret := isa.Instruction{Op: isa.JALR, Rd: isa.IntReg(0), Rs1: isa.IntReg(31), Rs2: isa.RegNone}

	p.Predict(0x1000, call) // pushes 0x1004
	p.Predict(0x2000, call) // pushes 0x2004
	pred := p.Predict(0x5000, ret)
	if !pred.TargetKnown || pred.Target != 0x2004 {
		t.Errorf("first return = %+v, want 0x2004", pred)
	}
	pred = p.Predict(0x5010, ret)
	if !pred.TargetKnown || pred.Target != 0x1004 {
		t.Errorf("second return = %+v, want 0x1004", pred)
	}
	// Empty stack: no target.
	pred = p.Predict(0x5020, ret)
	if pred.TargetKnown {
		t.Error("empty RAS offered a target")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASDepth = 2
	p := New(cfg)
	call := isa.Instruction{Op: isa.JAL, Rd: isa.IntReg(31), Imm: 1, Rs1: isa.RegNone, Rs2: isa.RegNone}
	ret := isa.Instruction{Op: isa.JALR, Rd: isa.IntReg(0), Rs1: isa.IntReg(31), Rs2: isa.RegNone}
	p.Predict(0x1000, call)
	p.Predict(0x2000, call)
	p.Predict(0x3000, call) // overflow: drops 0x1004
	if got := p.Predict(0, ret).Target; got != 0x3004 {
		t.Errorf("top = %#x, want 0x3004", got)
	}
	if got := p.Predict(4, ret).Target; got != 0x2004 {
		t.Errorf("next = %#x, want 0x2004", got)
	}
	if p.Predict(8, ret).TargetKnown {
		t.Error("RAS should be empty after overflow dropped the oldest entry")
	}
}

func TestStatsAccounting(t *testing.T) {
	p := New(DefaultConfig())
	in := condBranch()
	p.Predict(0x100, in)
	p.RecordOutcome(in, true)
	p.Predict(0x100, in)
	p.RecordOutcome(in, false)
	if p.Stats.CondBranches != 2 || p.Stats.CondWrong != 1 {
		t.Errorf("stats = %+v", p.Stats)
	}
	if got := p.Stats.Accuracy(); got != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", got)
	}
	var empty Stats
	if empty.Accuracy() != 1 {
		t.Error("idle accuracy != 1")
	}
}

func TestConfigRounding(t *testing.T) {
	p := New(Config{HistoryBits: 10, TableSize: 1000, BTBSize: 300, RASDepth: 8})
	if got := p.Config().TableSize; got != 1024 {
		t.Errorf("table size = %d, want 1024", got)
	}
	if got := p.Config().BTBSize; got != 512 {
		t.Errorf("btb size = %d, want 512", got)
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	p := New(Config{})
	if p.Config().TableSize != 2048 || p.Config().HistoryBits != 12 {
		t.Errorf("zero config = %+v", p.Config())
	}
}
