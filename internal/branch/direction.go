package branch

import "fmt"

// Canonical direction-predictor names. The empty string canonicalizes to
// DirGShare everywhere (Config, lab.Job, explore axes).
const (
	DirGShare      = "gshare"
	DirTAGE        = "tage"
	DirAlwaysTaken = "always-taken"
)

// Directions lists the known direction predictors in canonical order.
func Directions() []string { return []string{DirGShare, DirTAGE, DirAlwaysTaken} }

// KnownDirection reports whether name selects a direction predictor.
// The empty string is the canonical G-share default.
func KnownDirection(name string) bool {
	switch name {
	case "", DirGShare, DirTAGE, DirAlwaysTaken:
		return true
	}
	return false
}

// DirectionPredictor predicts the direction of conditional branches. The
// shared Predictor wrapper owns the BTB, RAS and statistics; an
// implementation owns only its direction tables.
//
// Predict must be side-effect free with respect to training state: the
// front-end may predict a branch many times (fetch replays) before its
// single retirement Update. Update trains with the architected outcome and
// advances any internal history. Reset restores the initial (power-on)
// state. CopyStateFrom clones the full training state of an identically
// shaped predictor — warm snapshots depend on a clone continuing exactly
// like the original — and panics on a kind or geometry mismatch.
type DirectionPredictor interface {
	Kind() string
	Predict(pc uint64) bool
	Update(pc uint64, taken bool)
	Reset()
	CopyStateFrom(src DirectionPredictor)
}

// newDirection builds the direction predictor selected by cfg.Direction
// (already canonicalized by New).
func newDirection(cfg Config) DirectionPredictor {
	switch cfg.Direction {
	case DirGShare:
		return newGShare(cfg)
	case DirTAGE:
		return newTAGE()
	case DirAlwaysTaken:
		return alwaysTaken{}
	}
	panic(fmt.Sprintf("branch: unknown direction predictor %q", cfg.Direction))
}

// gshare is the paper's Table 2 conditional predictor: a pattern history
// table of 2-bit saturating counters indexed by PC xor global history.
type gshare struct {
	pht     []uint8 // 2-bit saturating counters
	history uint64
	histMax uint64
}

func newGShare(cfg Config) *gshare {
	g := &gshare{
		pht:     make([]uint8, cfg.TableSize),
		histMax: 1<<uint(cfg.HistoryBits) - 1,
	}
	g.Reset()
	return g
}

func (g *gshare) Kind() string { return DirGShare }

func (g *gshare) Reset() {
	// Weakly taken initial state: loops start off predicted reasonably.
	for i := range g.pht {
		g.pht[i] = 2
	}
	g.history = 0
}

func (g *gshare) index(pc uint64) int {
	return int(((pc >> 2) ^ g.history) & uint64(len(g.pht)-1))
}

func (g *gshare) Predict(pc uint64) bool { return g.pht[g.index(pc)] >= 2 }

func (g *gshare) Update(pc uint64, taken bool) {
	idx := g.index(pc)
	if taken {
		if g.pht[idx] < 3 {
			g.pht[idx]++
		}
	} else if g.pht[idx] > 0 {
		g.pht[idx]--
	}
	g.history = ((g.history << 1) | b2u(taken)) & g.histMax
}

func (g *gshare) CopyStateFrom(src DirectionPredictor) {
	s, ok := src.(*gshare)
	if !ok || len(s.pht) != len(g.pht) || s.histMax != g.histMax {
		panic("branch: gshare CopyStateFrom with mismatched source")
	}
	copy(g.pht, s.pht)
	g.history = s.history
}

// alwaysTaken is the degenerate predictor for differential tests: every
// conditional branch is predicted taken, nothing is learned.
type alwaysTaken struct{}

func (alwaysTaken) Kind() string           { return DirAlwaysTaken }
func (alwaysTaken) Predict(pc uint64) bool { return true }
func (alwaysTaken) Update(uint64, bool)    {}
func (alwaysTaken) Reset()                 {}
func (alwaysTaken) CopyStateFrom(src DirectionPredictor) {
	if _, ok := src.(alwaysTaken); !ok {
		panic("branch: always-taken CopyStateFrom with mismatched source")
	}
}
