package branch

// TAGE: a TAgged GEometric-history-length conditional direction predictor
// (Seznec & Michaud). A bimodal base table provides the default prediction;
// four tagged tables indexed by PC hashed with geometrically increasing
// slices of global history (5, 12, 27, 60 bits) override it. The matching
// table with the longest history is the provider; the next longest match
// (or the base table) is the alternate. Each tagged entry carries a 3-bit
// signed counter, a partial tag and a 2-bit usefulness counter; entries are
// allocated on mispredicts into a longer-history table whose slot is free
// (u == 0), and usefulness decays periodically so stale entries can be
// reclaimed.
//
// Geometry is fixed rather than drawn from Config so that the predictor
// axis stays a clean categorical knob in the explore grids.

const (
	tageNumTables = 4  // tagged tables above the bimodal base
	tageIdxBits   = 10 // 1024 entries per tagged table
	tageTagBits   = 9  // partial tag width
	tageBaseBits  = 12 // 4096-entry bimodal base
	tageCtrMin    = -4 // 3-bit signed prediction counter range
	tageCtrMax    = 3
	tageUMax      = 3 // 2-bit usefulness counter ceiling
	// tageDecayPeriod is the usefulness-decay epoch, counted in
	// conditional-branch updates: each epoch alternately clears the high
	// then the low usefulness bit of every tagged entry, so entries that
	// stop earning their keep free up within two epochs.
	tageDecayPeriod = 1 << 17
)

// tageHistLens are the geometric global-history lengths of the tagged
// tables, shortest first. The longest must fit the 64-bit history register.
var tageHistLens = [tageNumTables]int{5, 12, 27, 60}

type tageEntry struct {
	tag uint16
	ctr int8 // prediction counter, taken when >= 0
	u   uint8
}

type tage struct {
	base   []uint8 // 2-bit bimodal counters
	tables [tageNumTables][]tageEntry
	ghist  uint64 // global conditional-outcome shift register
	// useAlt is the use-alternate-on-newly-allocated counter: when >= 8
	// the alternate prediction overrides a freshly allocated (weak,
	// useless) provider.
	useAlt uint8
	tick   uint64 // conditional updates since the last decay epoch start
	epoch  uint64 // decay epochs elapsed (parity picks the cleared u bit)
	lfsr   uint32 // deterministic allocation-tiebreak generator
	// decayPeriod is tageDecayPeriod in production; unit tests shrink it
	// to exercise the epoch logic quickly.
	decayPeriod uint64
}

func newTAGE() *tage {
	t := &tage{
		base:        make([]uint8, 1<<tageBaseBits),
		decayPeriod: tageDecayPeriod,
	}
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, 1<<tageIdxBits)
	}
	t.Reset()
	return t
}

func (t *tage) Kind() string { return DirTAGE }

func (t *tage) Reset() {
	// Weakly taken base, empty tagged tables, neutral use-alt.
	for i := range t.base {
		t.base[i] = 2
	}
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = tageEntry{}
		}
	}
	t.ghist = 0
	t.useAlt = 8
	t.tick = 0
	t.epoch = 0
	t.lfsr = 0x2bdf5c1
}

func (t *tage) CopyStateFrom(src DirectionPredictor) {
	s, ok := src.(*tage)
	if !ok {
		panic("branch: tage CopyStateFrom with mismatched source")
	}
	copy(t.base, s.base)
	for i := range t.tables {
		copy(t.tables[i], s.tables[i])
	}
	t.ghist = s.ghist
	t.useAlt = s.useAlt
	t.tick = s.tick
	t.epoch = s.epoch
	t.lfsr = s.lfsr
	t.decayPeriod = s.decayPeriod
}

// fold xor-compresses the low length bits of h into width bits.
func fold(h uint64, length, width int) uint64 {
	h &= 1<<uint(length) - 1
	var f uint64
	for ; h != 0; h >>= uint(width) {
		f ^= h & (1<<uint(width) - 1)
	}
	return f
}

func (t *tage) baseIndex(pc uint64) int {
	return int((pc >> 2) & (1<<tageBaseBits - 1))
}

func (t *tage) index(pc uint64, table int) int {
	h := fold(t.ghist, tageHistLens[table], tageIdxBits)
	return int((h ^ (pc >> 2) ^ (pc >> uint(2+table+tageIdxBits))) & (1<<tageIdxBits - 1))
}

func (t *tage) tagFor(pc uint64, table int) uint16 {
	h := fold(t.ghist, tageHistLens[table], tageTagBits) ^
		fold(t.ghist, tageHistLens[table], tageTagBits-1)<<1
	return uint16((h ^ (pc >> 2)) & (1<<tageTagBits - 1))
}

// tageLookup is one prediction's bookkeeping: which tables matched and what
// each component predicted. Update recomputes it so Predict stays
// side-effect free.
type tageLookup struct {
	provider     int // matching table with the longest history, -1 = base
	providerIdx  int
	alt          int // next-longest match, -1 = base
	altIdx       int
	providerPred bool
	altPred      bool
	pred         bool // the final prediction actually emitted
	weakProvider bool // provider entry looks newly allocated
}

func (t *tage) lookup(pc uint64) tageLookup {
	l := tageLookup{provider: -1, alt: -1}
	for i := tageNumTables - 1; i >= 0; i-- {
		idx := t.index(pc, i)
		if t.tables[i][idx].tag != t.tagFor(pc, i) {
			continue
		}
		if l.provider < 0 {
			l.provider, l.providerIdx = i, idx
		} else {
			l.alt, l.altIdx = i, idx
			break
		}
	}
	basePred := t.base[t.baseIndex(pc)] >= 2
	l.providerPred, l.altPred = basePred, basePred
	if l.provider >= 0 {
		e := t.tables[l.provider][l.providerIdx]
		l.providerPred = e.ctr >= 0
		l.weakProvider = e.u == 0 && (e.ctr == 0 || e.ctr == -1)
		if l.alt >= 0 {
			l.altPred = t.tables[l.alt][l.altIdx].ctr >= 0
		}
	}
	l.pred = l.providerPred
	if l.provider >= 0 && l.weakProvider && t.useAlt >= 8 {
		l.pred = l.altPred
	}
	return l
}

func (t *tage) Predict(pc uint64) bool { return t.lookup(pc).pred }

func (t *tage) Update(pc uint64, taken bool) {
	l := t.lookup(pc)

	// Track whether the alternate beats newly allocated providers; this
	// steers lookup's use-alt override.
	if l.provider >= 0 && l.weakProvider && l.providerPred != l.altPred {
		if l.altPred == taken {
			if t.useAlt < 15 {
				t.useAlt++
			}
		} else if t.useAlt > 0 {
			t.useAlt--
		}
	}

	if l.provider >= 0 {
		e := &t.tables[l.provider][l.providerIdx]
		if taken {
			if e.ctr < tageCtrMax {
				e.ctr++
			}
		} else if e.ctr > tageCtrMin {
			e.ctr--
		}
		// Usefulness records the provider beating the alternate.
		if l.providerPred != l.altPred {
			if l.providerPred == taken {
				if e.u < tageUMax {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
	} else {
		i := t.baseIndex(pc)
		if taken {
			if t.base[i] < 3 {
				t.base[i]++
			}
		} else if t.base[i] > 0 {
			t.base[i]--
		}
	}

	if l.pred != taken && l.provider < tageNumTables-1 {
		t.allocate(pc, taken, l.provider)
	}

	t.tick++
	if t.tick >= t.decayPeriod {
		t.tick = 0
		t.decayUsefulness()
	}
	t.ghist = t.ghist<<1 | b2u(taken)
}

// allocate installs a fresh entry for pc in a table with a longer history
// than the provider. Among the candidate slots whose usefulness is zero it
// prefers the shortest history (fastest to warm) but takes a longer one on
// a pseudo-random coin so repeated conflicts spread out; when every
// candidate is busy their usefulness is decremented instead, so repeated
// mispredicts eventually free a slot.
func (t *tage) allocate(pc uint64, taken bool, provider int) {
	var free [tageNumTables]int
	nfree := 0
	for j := provider + 1; j < tageNumTables; j++ {
		if t.tables[j][t.index(pc, j)].u == 0 {
			free[nfree] = j
			nfree++
		}
	}
	if nfree == 0 {
		for j := provider + 1; j < tageNumTables; j++ {
			e := &t.tables[j][t.index(pc, j)]
			if e.u > 0 {
				e.u--
			}
		}
		return
	}
	pick := free[0]
	if nfree > 1 && t.rand(2) == 1 {
		pick = free[1]
	}
	ctr := int8(0)
	if !taken {
		ctr = -1
	}
	t.tables[pick][t.index(pc, pick)] = tageEntry{tag: t.tagFor(pc, pick), ctr: ctr}
}

// decayUsefulness ages every tagged entry: epochs alternately clear the
// high then the low usefulness bit, so a full decay takes two epochs.
func (t *tage) decayUsefulness() {
	clear := uint8(2)
	if t.epoch&1 == 1 {
		clear = 1
	}
	t.epoch++
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j].u &^= clear
		}
	}
}

// rand draws a deterministic pseudo-random value in [0, n) from the
// allocation LFSR (xorshift32); determinism keeps runs and their warm
// clones bit-reproducible.
func (t *tage) rand(n int) int {
	t.lfsr ^= t.lfsr << 13
	t.lfsr ^= t.lfsr >> 17
	t.lfsr ^= t.lfsr << 5
	return int(t.lfsr % uint32(n))
}
