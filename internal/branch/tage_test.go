package branch

import "testing"

// trainStream is a deterministic pseudo-random outcome stream shared by the
// TAGE tests: an xorshift64 over the seed decides taken/not-taken and which
// of a small set of PCs branches.
func trainStream(seed uint64, n int) []struct {
	pc    uint64
	taken bool
} {
	out := make([]struct {
		pc    uint64
		taken bool
	}, n)
	x := seed | 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i].pc = 0x4000 + (x%37)*4
		out[i].taken = x&8 != 0
	}
	return out
}

// TestTAGEDecayEpoch pins the two-phase usefulness decay: the first epoch
// clears the high u bit, the second the low bit, so a fully useful entry
// (u=3) frees up (u=0) after exactly two epochs and no sooner.
func TestTAGEDecayEpoch(t *testing.T) {
	p := newTAGE()
	p.decayPeriod = 8 // shrink the epoch so eight updates trigger a decay
	p.tables[2][5] = tageEntry{tag: 0x11, ctr: 3, u: 3}

	// Eight always-taken updates cross one epoch without a single
	// mispredict (everything initializes weakly taken), so no allocation
	// can overwrite the probed entry.
	runEpoch := func() {
		for i := 0; i < 8; i++ {
			p.Update(0x9004, true)
		}
	}
	runEpoch()
	if got := p.tables[2][5].u; got != 1 {
		t.Fatalf("after epoch 1: u = %d, want 1 (high bit cleared)", got)
	}
	runEpoch()
	if got := p.tables[2][5].u; got != 0 {
		t.Fatalf("after epoch 2: u = %d, want 0 (low bit cleared)", got)
	}
	if p.epoch != 2 {
		t.Fatalf("epoch counter = %d, want 2", p.epoch)
	}
}

// TestTAGEAllocatesOnMispredict pins allocation: a mispredicted branch with
// no tagged match installs exactly one fresh entry in a longer-history
// table — tagged for the PC, weak in the outcome's direction, u=0 — chosen
// among the free (u == 0) candidate slots.
func TestTAGEAllocatesOnMispredict(t *testing.T) {
	p := newTAGE()
	// tagFor(pc) is nonzero at empty history for this pc, so the zero tag
	// of an empty entry cannot accidentally make it a provider.
	pc := uint64(0x2004)
	// The base table starts weakly taken, so a not-taken outcome is a
	// mispredict with provider == base: allocation must fire.
	p.Update(pc, false)

	allocs := 0
	for i := 0; i < tageNumTables; i++ {
		e := p.tables[i][p.index(pc, i)]
		if e.tag == 0 && e.ctr == 0 && e.u == 0 {
			continue // still empty
		}
		allocs++
		if e.tag != p.tagFor(pc, i) {
			t.Errorf("table %d: allocated tag %#x, want %#x", i, e.tag, p.tagFor(pc, i))
		}
		if e.ctr != -1 {
			t.Errorf("table %d: allocated ctr %d, want -1 (weak not-taken)", i, e.ctr)
		}
		if e.u != 0 {
			t.Errorf("table %d: allocated u %d, want 0", i, e.u)
		}
	}
	if allocs != 1 {
		t.Fatalf("mispredict allocated %d entries, want exactly 1", allocs)
	}
}

// TestTAGEAllocationSkipsBusySlots pins the other allocation half: when
// every longer-history candidate slot is busy (u > 0), nothing is
// installed and each candidate's usefulness is decremented instead, so
// repeated mispredicts eventually free a slot.
func TestTAGEAllocationSkipsBusySlots(t *testing.T) {
	p := newTAGE()
	pc := uint64(0x2004)
	for i := 0; i < tageNumTables; i++ {
		e := &p.tables[i][p.index(pc, i)]
		e.tag = p.tagFor(pc, i) ^ 1 // occupied by someone else
		e.u = 2
	}
	p.Update(pc, false) // mispredict (base is weakly taken), provider = base
	for i := 0; i < tageNumTables; i++ {
		e := p.tables[i][p.index(pc, i)]
		if e.tag != p.tagFor(pc, i)^1 {
			t.Errorf("table %d: busy slot was overwritten", i)
		}
		if e.u != 1 {
			t.Errorf("table %d: u = %d, want 1 (decremented, not cleared)", i, e.u)
		}
	}
}

// TestTAGEAltVsProviderBookkeeping pins the use-alternate counter and the
// provider's usefulness updates. A freshly allocated provider is weak
// (u=0, ctr in {0,-1}); when it disagrees with the alternate, the counter
// tracks which of the two was right, and the provider's u only moves when
// provider and alternate disagree.
func TestTAGEAltVsProviderBookkeeping(t *testing.T) {
	p := newTAGE()
	pc := uint64(0x3004) // nonzero tag: empty entries cannot match
	// Hand-install a weak provider in table 1 that predicts taken (ctr=0)
	// while the base alternate predicts not-taken.
	p.base[p.baseIndex(pc)] = 0
	idx := p.index(pc, 1)
	p.tables[1][idx] = tageEntry{tag: p.tagFor(pc, 1), ctr: 0, u: 0}

	useAlt0 := p.useAlt
	l := p.lookup(pc)
	if l.provider != 1 || !l.weakProvider {
		t.Fatalf("lookup: provider %d weak %v, want provider 1 weak", l.provider, l.weakProvider)
	}
	if !l.providerPred || l.altPred {
		t.Fatalf("lookup: providerPred %v altPred %v, want taken vs not-taken", l.providerPred, l.altPred)
	}
	if l.pred != l.altPred {
		t.Fatal("weak provider with useAlt >= 8 must emit the alternate prediction")
	}

	// Outcome taken: the provider was right, the alternate wrong — useAlt
	// drops and the provider's usefulness is credited.
	p.Update(pc, true)
	if p.useAlt != useAlt0-1 {
		t.Errorf("useAlt = %d after provider win, want %d", p.useAlt, useAlt0-1)
	}
	if got := p.tables[1][idx].u; got != 1 {
		t.Errorf("provider u = %d after beating the alternate, want 1", got)
	}
	if got := p.tables[1][idx].ctr; got != 1 {
		t.Errorf("provider ctr = %d after taken update, want 1", got)
	}

	// Re-weaken the entry and let the alternate win: useAlt climbs back.
	p.tables[1][p.index(pc, 1)] = tageEntry{tag: p.tagFor(pc, 1), ctr: 0, u: 0}
	p.base[p.baseIndex(pc)] = 0
	useAlt1 := p.useAlt
	p.Update(pc, false)
	if p.useAlt != useAlt1+1 {
		t.Errorf("useAlt = %d after alternate win, want %d", p.useAlt, useAlt1+1)
	}
}

// TestTAGECloneDeterminism pins warm-snapshot semantics: after CopyStateFrom,
// the clone and the original predict and train identically over an
// arbitrary continuation — history register, u counters, LFSR and decay
// phase all carried over. A drifting clone would make warm-started runs
// diverge from cold runs of the same configuration.
func TestTAGECloneDeterminism(t *testing.T) {
	orig := newTAGE()
	orig.decayPeriod = 64 // cross several decay epochs within the test
	for _, s := range trainStream(0xfeed, 3000) {
		orig.Predict(s.pc)
		orig.Update(s.pc, s.taken)
	}

	clone := newTAGE()
	clone.CopyStateFrom(orig)
	for i, s := range trainStream(0xbeef, 3000) {
		po, pc := orig.Predict(s.pc), clone.Predict(s.pc)
		if po != pc {
			t.Fatalf("step %d: clone predicts %v, original %v", i, pc, po)
		}
		orig.Update(s.pc, s.taken)
		clone.Update(s.pc, s.taken)
	}
	if orig.ghist != clone.ghist || orig.useAlt != clone.useAlt ||
		orig.tick != clone.tick || orig.epoch != clone.epoch || orig.lfsr != clone.lfsr {
		t.Fatal("clone scalar state drifted from the original")
	}
}

// TestTAGEPredictIsPure pins the interface contract the fetch replays
// depend on: any number of Predicts between Updates must not change the
// next prediction or the training state.
func TestTAGEPredictIsPure(t *testing.T) {
	a, b := newTAGE(), newTAGE()
	for _, s := range trainStream(0xabcd, 2000) {
		want := a.Predict(s.pc)
		for i := 0; i < 3; i++ { // fetch replaying the same branch
			if got := a.Predict(s.pc); got != want {
				t.Fatalf("repeated Predict changed its answer: %v then %v", want, got)
			}
		}
		b.Predict(s.pc)
		a.Update(s.pc, s.taken)
		b.Update(s.pc, s.taken)
	}
	// b predicted once per branch, a four times; their state must agree.
	if a.ghist != b.ghist || a.useAlt != b.useAlt || a.lfsr != b.lfsr {
		t.Fatal("extra Predict calls perturbed training state")
	}
}
