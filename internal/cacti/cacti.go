// Package cacti provides the analytical access-time model used to derive
// per-module clock frequencies across process technologies, in the spirit of
// CACTI [Wilton & Jouppi] and the wire-delay analysis of Palacharla et al.
// that the paper builds on (its Figure 1 and Table 1).
//
// Model: every structure's access latency decomposes into
//
//	latency(node) = logic·FO4(node) + wire
//
// where the logic component (decoders, comparators, sense amplifiers)
// scales linearly with feature size through the FO4 inverter delay, while
// the wire component (tag broadcast across the issue window, bypass wiring)
// does not improve as devices shrink — the central observation motivating
// the paper. Coefficients are calibrated against the paper's published
// Table 1 frequencies (all reproduced within ~5%); the calibration is
// validated by the package tests and regenerated as experiment "table1".
//
// Wire-dominated structures (the issue window) therefore scale poorly:
// at 0.25 µm a 64K D-cache is ~2x slower than the 128-entry issue window,
// but by 0.06 µm caches have caught up — Figure 1's crossover.
package cacti

import (
	"fmt"
	"math"
)

// Node is a process technology feature size in micrometers.
type Node float64

// Supported process technology nodes.
const (
	Node250 Node = 0.25
	Node180 Node = 0.18
	Node130 Node = 0.13
	Node90  Node = 0.09
	Node60  Node = 0.06
)

// Nodes lists the supported technology nodes, largest first (the x-axis of
// Figure 1).
var Nodes = []Node{Node250, Node180, Node130, Node90, Node60}

// String renders the conventional node name.
func (n Node) String() string {
	switch n {
	case Node250:
		return "0.25um"
	case Node180:
		return "0.18um"
	case Node130:
		return "0.13um"
	case Node90:
		return "0.09um"
	case Node60:
		return "0.06um"
	default:
		return fmt.Sprintf("%.2fum", float64(n))
	}
}

// FO4 returns the fanout-of-4 inverter delay in picoseconds at the node:
// 450 ps per micrometer of feature size (the linear-scaling regime).
func FO4(n Node) float64 { return 450 * float64(n) }

// IssueWindowLatency returns the single-cycle wake-up+select latency in
// picoseconds for a window with the given entry count and issue width.
// The wire term models the tag broadcast across all entries and match
// ports: it grows with both window size and issue width and does not scale
// with technology (Palacharla's quadratic wake-up delay).
func IssueWindowLatency(entries, width int, n Node) float64 {
	logic := 4.0 + 0.7*log2(entries) + 0.2*float64(width)
	wire := 243.0 * (float64(entries) / 128.0) * (0.4 + 0.1*float64(width))
	return logic*FO4(n) + wire
}

// CacheLatency returns the access latency in picoseconds of a conventional
// set-associative cache. Caches are logic-dominated (decoder, wordline,
// bitline, sense amplifier chains) and scale well with technology.
func CacheLatency(sizeBytes, ways, ports int, n Node) float64 {
	logic := 5.5 + 1.2*log2(sizeBytes/1024) + 1.0*float64(ways) + 4.0*float64(ports)
	wire := 20.0 * math.Sqrt(float64(sizeBytes)/65536.0) * float64(ports)
	return logic*FO4(n) + wire
}

// ExecutionCacheLatency returns the access latency of the wide-block,
// banked Execution Cache (Tag Array lookup folded in, eight-instruction
// blocks, next-set chaining). The wide blocks and bank steering add a
// constant logic overhead on top of a conventional cache of the same size.
func ExecutionCacheLatency(sizeBytes, ways int, n Node) float64 {
	return CacheLatency(sizeBytes, ways, 1, n) + 17.1*FO4(n)
}

// RegFileLatency returns the access latency of a multi-ported register
// file with the given entry count. The superlinear entry term reflects the
// growth of both word lines and bit lines with capacity.
func RegFileLatency(entries int, n Node) float64 {
	logic := 0.2 + 7.4*math.Pow(float64(entries)/128.0, 0.8)
	wire := 18.0 * float64(entries) / 128.0
	return logic*FO4(n) + wire
}

func log2(v int) float64 { return math.Log2(float64(v)) }

// FrequencyMHz converts an access latency pipelined over the given number
// of cycles into a clock frequency in MHz.
func FrequencyMHz(latencyPS float64, cycles int) float64 {
	if latencyPS <= 0 {
		return 0
	}
	return float64(cycles) * 1e6 / latencyPS
}

// Table1Row reproduces one column of the paper's Table 1: the achievable
// clock frequency (MHz) of each pipeline module at a node.
type Table1Row struct {
	Node            Node
	IssueWindow     float64 // single cycle, 128 entries, 6-wide
	ICache          float64 // two cycles, 64K 2-way 1-port
	DCache          float64 // two cycles, 64K 4-way 2-port
	RegFile         float64 // single cycle, 192 entries (baseline)
	ExecutionCache  float64 // three cycles, 128K 2-way (Flywheel)
	FlywheelRegFile float64 // two cycles, 512 entries (Flywheel)
}

// Table1 computes the modelled module frequencies at a node.
func Table1(n Node) Table1Row {
	return Table1Row{
		Node:            n,
		IssueWindow:     FrequencyMHz(IssueWindowLatency(128, 6, n), 1),
		ICache:          FrequencyMHz(CacheLatency(64<<10, 2, 1, n), 2),
		DCache:          FrequencyMHz(CacheLatency(64<<10, 4, 2, n), 2),
		RegFile:         FrequencyMHz(RegFileLatency(192, n), 1),
		ExecutionCache:  FrequencyMHz(ExecutionCacheLatency(128<<10, 2, n), 3),
		FlywheelRegFile: FrequencyMHz(RegFileLatency(512, n), 2),
	}
}

// PaperTable1 holds the frequencies published in the paper, for comparison
// in EXPERIMENTS.md and the calibration tests.
var PaperTable1 = map[Node]Table1Row{
	Node180: {Node180, 950, 1300, 1000, 1150, 1000, 1050},
	Node130: {Node130, 1150, 1800, 1400, 1650, 1400, 1500},
	Node90:  {Node90, 1500, 2600, 2000, 2250, 2050, 2000},
	Node60:  {Node60, 1950, 3800, 3000, 3250, 3000, 2950},
}

// Figure1Curve is one latency-vs-node series of the paper's Figure 1.
type Figure1Curve struct {
	Label     string
	LatencyPS []float64 // one value per entry of Nodes
}

// Figure1 computes the six curves of the paper's Figure 1.
func Figure1() []Figure1Curve {
	mk := func(label string, f func(Node) float64) Figure1Curve {
		c := Figure1Curve{Label: label}
		for _, n := range Nodes {
			c.LatencyPS = append(c.LatencyPS, f(n))
		}
		return c
	}
	return []Figure1Curve{
		mk("IW - 128 entries, 6 ways", func(n Node) float64 { return IssueWindowLatency(128, 6, n) }),
		mk("IW - 64 entries, 4 ways", func(n Node) float64 { return IssueWindowLatency(64, 4, n) }),
		mk("Cache - 64K, 2 ways, 1 rd/wr port", func(n Node) float64 { return CacheLatency(64<<10, 2, 1, n) }),
		mk("Cache - 32K, 4 ways, 2 rd/wr ports", func(n Node) float64 { return CacheLatency(32<<10, 4, 2, n) }),
		mk("RF - 128 entries", func(n Node) float64 { return RegFileLatency(128, n) }),
		mk("RF - 256 entries", func(n Node) float64 { return RegFileLatency(256, n) }),
	}
}

// Headroom reports how much faster than the issue window the front-end and
// the execution back-end can be clocked at a node — the speedup potential
// the Flywheel design exploits (§4: by 0.06 µm the front-end supports twice
// the issue-window frequency and the execution core about 1.5x).
type Headroom struct {
	Node Node
	// FrontEnd is I-cache frequency / issue-window frequency.
	FrontEnd float64
	// BackEnd is min(EC, Flywheel RF, D-cache) / issue-window frequency.
	BackEnd float64
}

// SpeedHeadroom computes the clock-ratio headroom at a node.
func SpeedHeadroom(n Node) Headroom {
	t := Table1(n)
	be := math.Min(t.ExecutionCache, math.Min(t.FlywheelRegFile, t.DCache))
	return Headroom{
		Node:     n,
		FrontEnd: t.ICache / t.IssueWindow,
		BackEnd:  be / t.IssueWindow,
	}
}

// BaselinePeriodPS returns the baseline clock period at a node: the cycle
// time dictated by the slowest single-cycle structure, the issue window.
func BaselinePeriodPS(n Node) int64 {
	return int64(math.Round(IssueWindowLatency(128, 6, n)))
}
