package cacti

import (
	"math"
	"testing"
)

// relErr returns |got-want|/want.
func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

func TestTable1MatchesPaperWithinTolerance(t *testing.T) {
	// Calibration contract: every modelled frequency is within 7% of the
	// paper's published Table 1.
	const tol = 0.07
	for node, want := range PaperTable1 {
		got := Table1(node)
		checks := []struct {
			name       string
			got, wantV float64
		}{
			{"issue window", got.IssueWindow, want.IssueWindow},
			{"i-cache", got.ICache, want.ICache},
			{"d-cache", got.DCache, want.DCache},
			{"register file", got.RegFile, want.RegFile},
			{"execution cache", got.ExecutionCache, want.ExecutionCache},
			{"flywheel register file", got.FlywheelRegFile, want.FlywheelRegFile},
		}
		for _, c := range checks {
			if relErr(c.got, c.wantV) > tol {
				t.Errorf("%v %s = %.0f MHz, paper says %.0f (err %.1f%%)",
					node, c.name, c.got, c.wantV, relErr(c.got, c.wantV)*100)
			}
		}
	}
}

func TestFigure1CacheVsIssueWindowCrossover(t *testing.T) {
	// The paper's Figure 1 narrative: "a reasonably sized cache is about
	// two times slower than the Issue Window in 0.25um ... but it scales
	// much better achieving about the same access time ... in 0.06um".
	iw := IssueWindowLatency(128, 6, Node250)
	dc := CacheLatency(64<<10, 4, 2, Node250)
	if r := dc / iw; r < 1.7 || r > 2.4 {
		t.Errorf("0.25um D-cache/IW latency ratio = %.2f, want ~2", r)
	}
	iw = IssueWindowLatency(128, 6, Node60)
	ic := CacheLatency(64<<10, 2, 1, Node60)
	if r := ic / iw; r < 0.85 || r > 1.2 {
		t.Errorf("0.06um cache/IW latency ratio = %.2f, want ~1 (converged)", r)
	}
}

func TestLatenciesMonotoneInNode(t *testing.T) {
	// Every structure gets faster as feature size shrinks.
	fns := map[string]func(Node) float64{
		"iw":    func(n Node) float64 { return IssueWindowLatency(128, 6, n) },
		"cache": func(n Node) float64 { return CacheLatency(64<<10, 2, 1, n) },
		"ec":    func(n Node) float64 { return ExecutionCacheLatency(128<<10, 2, n) },
		"rf":    func(n Node) float64 { return RegFileLatency(192, n) },
	}
	for name, f := range fns {
		prev := 0.0
		for i, n := range Nodes { // Nodes are largest-first
			lat := f(n)
			if i > 0 && lat >= prev {
				t.Errorf("%s latency not decreasing at %v: %.0f >= %.0f", name, n, lat, prev)
			}
			prev = lat
		}
	}
}

func TestLatenciesMonotoneInSize(t *testing.T) {
	if IssueWindowLatency(64, 4, Node130) >= IssueWindowLatency(128, 6, Node130) {
		t.Error("smaller issue window not faster")
	}
	if CacheLatency(32<<10, 2, 1, Node130) >= CacheLatency(64<<10, 2, 1, Node130) {
		t.Error("smaller cache not faster")
	}
	if RegFileLatency(128, Node130) >= RegFileLatency(256, Node130) {
		t.Error("smaller register file not faster")
	}
	if CacheLatency(64<<10, 2, 1, Node130) >= CacheLatency(64<<10, 2, 2, Node130) {
		t.Error("extra port costs nothing")
	}
}

func TestWireComponentDominatesIWScaling(t *testing.T) {
	// The issue window improves far less than a cache between 0.18 and
	// 0.06 (wire-dominated): the speedup ratio must be clearly smaller.
	iwGain := IssueWindowLatency(128, 6, Node180) / IssueWindowLatency(128, 6, Node60)
	cacheGain := CacheLatency(64<<10, 2, 1, Node180) / CacheLatency(64<<10, 2, 1, Node60)
	if iwGain >= cacheGain*0.8 {
		t.Errorf("IW gain %.2fx vs cache gain %.2fx: wire limitation not visible", iwGain, cacheGain)
	}
}

func TestSpeedHeadroomAtFinestNode(t *testing.T) {
	// §4: at 0.06um the front-end supports ~2x the IW frequency, the
	// execution core ~1.5x.
	h := SpeedHeadroom(Node60)
	if h.FrontEnd < 1.8 || h.FrontEnd > 2.2 {
		t.Errorf("front-end headroom at 0.06um = %.2f, want ~2.0", h.FrontEnd)
	}
	if h.BackEnd < 1.35 || h.BackEnd > 1.65 {
		t.Errorf("back-end headroom at 0.06um = %.2f, want ~1.5", h.BackEnd)
	}
}

func TestFigure1CurvesComplete(t *testing.T) {
	curves := Figure1()
	if len(curves) != 6 {
		t.Fatalf("curve count = %d, want 6", len(curves))
	}
	for _, c := range curves {
		if len(c.LatencyPS) != len(Nodes) {
			t.Errorf("curve %q has %d points, want %d", c.Label, len(c.LatencyPS), len(Nodes))
		}
		for i, v := range c.LatencyPS {
			if v <= 0 {
				t.Errorf("curve %q point %d non-positive", c.Label, i)
			}
		}
	}
}

func TestBaselinePeriod(t *testing.T) {
	// 950 MHz at 0.18um -> ~1053 ps.
	p := BaselinePeriodPS(Node180)
	if p < 1000 || p > 1110 {
		t.Errorf("baseline period at 0.18um = %d ps, want ~1053", p)
	}
	if BaselinePeriodPS(Node60) >= p {
		t.Error("baseline period did not shrink with technology")
	}
}

func TestFrequencyMHz(t *testing.T) {
	if got := FrequencyMHz(1000, 1); got != 1000 {
		t.Errorf("1ns single-cycle = %.0f MHz, want 1000", got)
	}
	if got := FrequencyMHz(2000, 2); got != 1000 {
		t.Errorf("2ns two-cycle = %.0f MHz, want 1000", got)
	}
	if FrequencyMHz(0, 1) != 0 {
		t.Error("zero latency not guarded")
	}
}

func TestNodeString(t *testing.T) {
	if Node130.String() != "0.13um" {
		t.Errorf("node name = %q", Node130.String())
	}
	if Node(0.045).String() != "0.04um" && Node(0.045).String() != "0.05um" {
		t.Errorf("fallback name = %q", Node(0.045).String())
	}
}
