// Package chaos injects deterministic, seeded faults into the sweep
// fabric so failure handling is a tested dimension, not a hope. Two
// injection surfaces cover the cluster's trust boundaries:
//
//   - RoundTripper wraps any http.RoundTripper and, per a replayable
//     schedule derived from a seed, drops requests before they reach the
//     wire, delays them, answers with synthesized 5xx, truncates response
//     bodies mid-stream (the NDJSON-sweep killer), and black-holes whole
//     hosts for scripted windows (a worker crash and restart, as seen
//     from the coordinator).
//   - CorruptTree walks a directory (a store shard, a trace spill dir)
//     and plants bit-flip and truncation corruption in a deterministic
//     subset of files, returning a manifest of exactly what it broke so a
//     scrubber can be held to finding 100% of it.
//
// Determinism: every decision is a pure function of (seed, scope,
// occurrence counter) — no global RNG, no time. Two runs with the same
// seed and the same per-scope request sequence inject the same fault
// multiset, so a chaos test's invariants (byte-identical results, zero
// lost jobs) are replayable, and a failure reproduces from its seed.
//
// RoundTrippers compose: stack one that truncates only /v1/sweep bodies
// on top of one that drops a small fraction of everything.
package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Plan is a seeded fault schedule. Probabilities are per matching
// request, in [0,1]; zero fields inject nothing of that kind.
type Plan struct {
	// Seed keys every decision; the same seed replays the same schedule.
	Seed uint64

	// Drop is the probability a request fails with a synthesized
	// connection error before reaching the server.
	Drop float64
	// Delay is the probability a request is stalled before forwarding;
	// the stall is in [MaxDelay/2, MaxDelay).
	Delay    float64
	MaxDelay time.Duration
	// Err5xx is the probability a request is answered with a synthesized
	// 500/503 (alternating by schedule) without contacting the server.
	Err5xx float64
	// Truncate is the probability a response body is cut after a
	// schedule-chosen prefix, ending in an abrupt transport error —
	// exactly what a connection death mid-NDJSON-stream looks like.
	Truncate float64

	// PathSubstr, when non-empty, restricts all faults to requests whose
	// URL path contains it (e.g. "/v1/sweep").
	PathSubstr string

	// Outages script per-host unavailability windows: after After
	// requests to Host have been observed, the next For requests to it
	// fail outright. From a coordinator's seat this is a worker crash
	// (the window opens) and restart (it closes).
	Outages []Outage
}

// Outage is one scripted per-host blackout window, counted in requests.
type Outage struct {
	Host  string // request URL host (host:port)
	After int    // requests to Host that succeed normally first
	For   int    // requests failed outright once the window opens
}

// Counts reports what a RoundTripper injected so far.
type Counts struct {
	Requests       uint64 `json:"requests"`
	Drops          uint64 `json:"drops"`
	Delays         uint64 `json:"delays"`
	Errs5xx        uint64 `json:"errs_5xx"`
	Truncations    uint64 `json:"truncations"`
	OutageFailures uint64 `json:"outage_failures"`
}

// Injected is the total number of faulted requests.
func (c Counts) Injected() uint64 {
	return c.Drops + c.Errs5xx + c.Truncations + c.OutageFailures
}

func (c Counts) String() string {
	return fmt.Sprintf("%d faults over %d requests (drops %d, 5xx %d, truncated %d, outage %d, delayed %d)",
		c.Injected(), c.Requests, c.Drops, c.Errs5xx, c.Truncations, c.OutageFailures, c.Delays)
}

// RoundTripper injects Plan's faults in front of an inner transport. It
// is safe for concurrent use.
type RoundTripper struct {
	plan Plan
	next http.RoundTripper

	mu      sync.Mutex
	perHost map[string]int // requests observed per host, for outages and schedules

	requests       atomic.Uint64
	drops          atomic.Uint64
	delays         atomic.Uint64
	errs5xx        atomic.Uint64
	truncations    atomic.Uint64
	outageFailures atomic.Uint64
}

// New wraps next (nil means http.DefaultTransport) in plan's faults.
func New(plan Plan, next http.RoundTripper) *RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &RoundTripper{plan: plan, next: next, perHost: make(map[string]int)}
}

// Counts snapshots the injection counters.
func (t *RoundTripper) Counts() Counts {
	return Counts{
		Requests:       t.requests.Load(),
		Drops:          t.drops.Load(),
		Delays:         t.delays.Load(),
		Errs5xx:        t.errs5xx.Load(),
		Truncations:    t.truncations.Load(),
		OutageFailures: t.outageFailures.Load(),
	}
}

// droppedError is the synthesized transport failure for drops/outages.
type droppedError struct{ kind, host string }

func (e *droppedError) Error() string {
	return fmt.Sprintf("chaos: injected %s for %s", e.kind, e.host)
}

func (t *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	host := req.URL.Host
	if t.plan.PathSubstr != "" && !strings.Contains(req.URL.Path, t.plan.PathSubstr) {
		return t.next.RoundTrip(req)
	}

	t.mu.Lock()
	n := t.perHost[host]
	t.perHost[host] = n + 1
	t.mu.Unlock()

	for _, o := range t.plan.Outages {
		if o.Host == host && n >= o.After && n < o.After+o.For {
			t.outageFailures.Add(1)
			return nil, &droppedError{"outage", host}
		}
	}

	// One deterministic roll stream per (seed, host, occurrence).
	r := newRolls(t.plan.Seed, host, uint64(n))
	if r.below(t.plan.Drop) {
		t.drops.Add(1)
		return nil, &droppedError{"drop", host}
	}
	delay := r.below(t.plan.Delay)
	err5 := r.below(t.plan.Err5xx)
	trunc := r.below(t.plan.Truncate)
	cut := 1 + int(r.next()%512) // truncation prefix length in bytes

	if delay && t.plan.MaxDelay > 0 {
		t.delays.Add(1)
		d := t.plan.MaxDelay/2 + time.Duration(r.next()%uint64(t.plan.MaxDelay/2+1))
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if err5 {
		t.errs5xx.Add(1)
		code := http.StatusInternalServerError
		if r.next()%2 == 0 {
			code = http.StatusServiceUnavailable
		}
		return synthesized(req, code), nil
	}

	resp, err := t.next.RoundTrip(req)
	if err != nil || !trunc {
		return resp, err
	}
	t.truncations.Add(1)
	resp.Body = &truncatedBody{inner: resp.Body, remaining: cut, host: host}
	resp.ContentLength = -1
	return resp, nil
}

// synthesized builds an in-memory 5xx reply, body included, so clients
// exercise their non-200 paths exactly as against a real server.
func synthesized(req *http.Request, code int) *http.Response {
	body := fmt.Sprintf("chaos: injected %d\n", code)
	h := http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}}
	if code == http.StatusServiceUnavailable {
		h.Set("Retry-After", "1")
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatedBody serves a prefix of the real body, then fails the read the
// way a severed connection does (an error, not a clean EOF).
type truncatedBody struct {
	inner     io.ReadCloser
	remaining int
	host      string
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, &droppedError{"mid-stream cut", b.host}
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	if err == io.EOF {
		// The real body ended inside the allowance: pass EOF through
		// (nothing was actually cut).
		return n, err
	}
	if b.remaining <= 0 {
		b.inner.Close()
		if n > 0 {
			return n, nil
		}
		return 0, &droppedError{"mid-stream cut", b.host}
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }

// rolls is a deterministic per-event decision stream: splitmix64 seeded
// by (seed, scope, occurrence).
type rolls struct{ state uint64 }

func newRolls(seed uint64, scope string, n uint64) *rolls {
	h := seed
	for _, b := range []byte(scope) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return &rolls{state: h ^ (n * 0x9e3779b97f4a7c15)}
}

// next advances the splitmix64 stream.
func (r *rolls) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// below draws one roll and reports whether it lands under probability p.
func (r *rolls) below(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(r.next()>>11)/float64(1<<53) < p
}
