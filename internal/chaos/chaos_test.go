package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestScheduleDeterminism: the same seed over the same request sequence
// injects the identical fault multiset; a different seed injects a
// different one.
func TestScheduleDeterminism(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, strings.Repeat("x", 2048))
	}))
	t.Cleanup(ts.Close)

	run := func(seed uint64) Counts {
		rt := New(Plan{Seed: seed, Drop: 0.2, Err5xx: 0.2, Truncate: 0.2}, nil)
		client := &http.Client{Transport: rt}
		for i := 0; i < 200; i++ {
			resp, err := client.Get(ts.URL + "/v1/sweep")
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return rt.Counts()
	}
	a, b, c := run(7), run(7), run(8)
	if a != b {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if c == a {
		t.Fatalf("different seeds produced the identical schedule: %v", a)
	}
	if a.Injected() == 0 {
		t.Fatal("20%% fault rates injected nothing over 200 requests")
	}
	if a.Drops == 0 || a.Errs5xx == 0 || a.Truncations == 0 {
		t.Fatalf("some fault kind never fired: %v", a)
	}
}

// TestTruncationLooksLikeConnectionDeath: a truncated body yields a
// partial prefix then a read error — not a clean EOF a client could
// mistake for a complete stream.
func TestTruncationLooksLikeConnectionDeath(t *testing.T) {
	const body = "line-one\nline-two\nline-three\n"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, strings.Repeat(body, 100))
	}))
	t.Cleanup(ts.Close)

	rt := New(Plan{Seed: 1, Truncate: 1}, nil)
	resp, err := (&http.Client{Transport: rt}).Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("truncated body read to clean EOF with %d bytes", len(data))
	}
	if len(data) == 0 || len(data) >= 100*len(body) {
		t.Fatalf("truncation cut nothing sensible: %d bytes", len(data))
	}
	if rt.Counts().Truncations != 1 {
		t.Fatalf("counts: %v", rt.Counts())
	}
}

// TestOutageWindow: a scripted outage fails exactly the requests inside
// its window and heals afterwards — a crash/restart as seen by a client.
func TestOutageWindow(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	t.Cleanup(ts.Close)
	host := strings.TrimPrefix(ts.URL, "http://")

	rt := New(Plan{Seed: 1, Outages: []Outage{{Host: host, After: 3, For: 4}}}, nil)
	client := &http.Client{Transport: rt}
	var got []bool
	for i := 0; i < 10; i++ {
		resp, err := client.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
		}
		got = append(got, err == nil)
	}
	want := []bool{true, true, true, false, false, false, false, true, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d: ok=%t, want %t (all: %v)", i, got[i], want[i], got)
		}
	}
	if rt.Counts().OutageFailures != 4 {
		t.Fatalf("outage failures %d, want 4", rt.Counts().OutageFailures)
	}
}

// TestPathFilter: a scoped plan leaves other endpoints untouched.
func TestPathFilter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	t.Cleanup(ts.Close)
	rt := New(Plan{Seed: 1, Drop: 1, PathSubstr: "/v1/sweep"}, nil)
	client := &http.Client{Transport: rt}
	if resp, err := client.Get(ts.URL + "/v1/health"); err != nil {
		t.Fatalf("filtered path was faulted: %v", err)
	} else {
		resp.Body.Close()
	}
	if _, err := client.Get(ts.URL + "/v1/sweep"); err == nil {
		t.Fatal("matching path was not faulted")
	}
}

// TestSynthesized5xx: injected 5xx replies carry a body and Retry-After
// on 503, so clients exercise their real shed-handling paths.
func TestSynthesized5xx(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("request reached the server despite Err5xx=1")
	}))
	t.Cleanup(ts.Close)
	client := &http.Client{Transport: New(Plan{Seed: 3, Err5xx: 1}, nil)}
	saw503 := false
	for i := 0; i < 20 && !saw503; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode < 500 {
			t.Fatalf("status %d, want 5xx", resp.StatusCode)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			saw503 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("injected 503 without Retry-After")
			}
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if !saw503 {
		t.Fatal("no 503 among 20 injected 5xx")
	}
}

// TestDelayInjection: delays stall within [MaxDelay/2, MaxDelay) and
// honor context cancellation.
func TestDelayInjection(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	t.Cleanup(ts.Close)
	client := &http.Client{Transport: New(Plan{Seed: 1, Delay: 1, MaxDelay: 60 * time.Millisecond}, nil)}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed request returned in %v, want >= 30ms", d)
	}
}

// TestCorruptTreeManifest: planting is deterministic, guaranteed
// non-empty, covers both kinds over a large tree, and every manifest
// entry describes real damage on disk.
func TestCorruptTreeManifest(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		for i := 0; i < 60; i++ {
			sub := filepath.Join(dir, fmt.Sprintf("%02x", i%4))
			if err := os.MkdirAll(sub, 0o755); err != nil {
				t.Fatal(err)
			}
			content := strings.Repeat(fmt.Sprintf("entry-%d ", i), 8)
			if err := os.WriteFile(filepath.Join(sub, fmt.Sprintf("f%02d.json", i)), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		// Ineligible files must be skipped.
		os.WriteFile(filepath.Join(dir, "put-123.tmp"), []byte("tmp"), 0o644)
		os.WriteFile(filepath.Join(dir, "empty.json"), nil, 0o644)
		os.MkdirAll(filepath.Join(dir, "quarantine"), 0o755)
		os.WriteFile(filepath.Join(dir, "quarantine", "old.json"), []byte("q"), 0o644)
		return dir
	}

	dirA, dirB := build(t), build(t)
	pristine := map[string][]byte{}
	filepath.WalkDir(dirA, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			data, _ := os.ReadFile(path)
			pristine[path] = data
		}
		return nil
	})
	manA, err := CorruptTree(dirA, 99, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	manB, err := CorruptTree(dirB, 99, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(manA) == 0 {
		t.Fatal("nothing corrupted at frac 0.3 over 60 files")
	}
	if len(manA) != len(manB) {
		t.Fatalf("same seed corrupted %d vs %d files", len(manA), len(manB))
	}
	kinds := map[string]int{}
	for i, c := range manA {
		relA, _ := filepath.Rel(dirA, c.Path)
		relB, _ := filepath.Rel(dirB, manB[i].Path)
		if relA != relB || c.Kind != manB[i].Kind {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, c, manB[i])
		}
		kinds[c.Kind]++
		if strings.Contains(c.Path, "quarantine") || strings.Contains(c.Path, "put-") {
			t.Fatalf("ineligible file corrupted: %s", c.Path)
		}
		// The damage is real: content changed on disk.
		after, err := os.ReadFile(c.Path)
		if err != nil {
			t.Fatal(err)
		}
		if string(after) == string(pristine[c.Path]) {
			t.Fatalf("%s listed in the manifest but unchanged", c.Path)
		}
	}
	if kinds["bitflip"] == 0 || kinds["truncate"] == 0 {
		t.Fatalf("only one corruption kind used: %v", kinds)
	}

	// Minimum-one guarantee at a vanishing fraction.
	one, err := CorruptTree(build(t), 5, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("frac 1e-12 corrupted %d files, want exactly the guaranteed one", len(one))
	}
}
