package chaos

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Corruption records one planted fault: which file, and how it was
// damaged. The slice CorruptTree returns is the manifest a scrubber is
// audited against — quarantining 100% of it is the acceptance bar.
type Corruption struct {
	Path string `json:"path"` // absolute path of the damaged file
	Kind string `json:"kind"` // "bitflip" or "truncate"
}

// CorruptTree walks root and deterministically damages about frac of its
// regular files: half by flipping one payload bit, half by truncating the
// file mid-way. Selection, kind, and position are pure functions of
// (seed, path relative to root), so the same seed plants the same damage
// on the same tree. If frac > 0 and the tree has any eligible file, at
// least one is corrupted (the one with the lowest selection roll), so a
// scrub test can never vacuously pass. Empty files, temp files (put-*,
// .trace-*), and anything already under a quarantine/ directory are
// skipped.
func CorruptTree(root string, seed uint64, frac float64) ([]Corruption, error) {
	if frac <= 0 {
		return nil, nil
	}
	type candidate struct {
		path string
		roll float64
		r    *rolls
	}
	var cands []candidate
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "quarantine" {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasPrefix(name, "put-") || strings.HasPrefix(name, ".trace-") {
			return nil
		}
		info, err := d.Info()
		if err != nil || info.Size() == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		r := newRolls(seed, filepath.ToSlash(rel), 0)
		cands = append(cands, candidate{path: path, roll: float64(r.next()>>11) / float64(1<<53), r: r})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: corrupt %s: %w", root, err)
	}
	if len(cands) == 0 {
		return nil, nil
	}
	// Guarantee at least one victim: the lowest roll is always in.
	min := 0
	for i, c := range cands {
		if c.roll < cands[min].roll {
			min = i
		}
	}
	var manifest []Corruption
	for i, c := range cands {
		if c.roll >= frac && i != min {
			continue
		}
		kind, err := corruptFile(c.path, c.r)
		if err != nil {
			return manifest, fmt.Errorf("chaos: corrupt %s: %w", c.path, err)
		}
		manifest = append(manifest, Corruption{Path: c.path, Kind: kind})
	}
	return manifest, nil
}

// corruptFile damages one file in place, choosing the mutation from the
// file's own roll stream.
func corruptFile(path string, r *rolls) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	if r.next()%2 == 0 || len(data) < 2 {
		// Flip one bit somewhere in the payload.
		pos := int(r.next() % uint64(len(data)))
		bit := byte(1) << (r.next() % 8)
		data[pos] ^= bit
		// Preserve the original mode; these are plain 0o644 artifacts.
		return "bitflip", os.WriteFile(path, data, 0o644)
	}
	// Truncate somewhere strictly inside the file (never to full length).
	keep := 1 + int(r.next()%uint64(len(data)-1))
	return "truncate", os.Truncate(path, int64(keep))
}
