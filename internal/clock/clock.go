// Package clock provides the multiple-clock-domain machinery at the heart
// of the paper's proposal: independent clock domains simulated on a shared
// picosecond timeline, with mode-switchable periods (the paper derives both
// back-end speeds by dividing one fast master clock, §3) and time-stamped
// queues that charge the synchronization latency of cross-domain FIFOs
// (§3.2).
package clock

import "fmt"

// Domain is one synchronous clock island (e.g. the pipeline front-end or
// the execution back-end). A domain delivers rising edges every period
// picoseconds while ungated.
type Domain struct {
	name   string
	period int64
	next   int64 // time of the next rising edge
	gated  bool
	// Cycles counts delivered edges; the power model charges clock-grid
	// energy per edge.
	Cycles uint64
	// GatedCycles counts edges suppressed while gated (for reporting).
	GatedCycles uint64
}

// NewDomain creates a domain whose first edge falls at start+period.
func NewDomain(name string, periodPS, start int64) *Domain {
	if periodPS <= 0 {
		panic(fmt.Sprintf("clock: domain %q: period %d must be positive", name, periodPS))
	}
	return &Domain{name: name, period: periodPS, next: start + periodPS}
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// Period returns the current period in picoseconds.
func (d *Domain) Period() int64 { return d.period }

// NextEdge returns the time of the next rising edge.
func (d *Domain) NextEdge() int64 { return d.next }

// Gated reports whether the domain is clock-gated.
func (d *Domain) Gated() bool { return d.gated }

// Tick consumes the pending edge, scheduling the next one.
func (d *Domain) Tick() {
	if d.gated {
		d.GatedCycles++
	} else {
		d.Cycles++
	}
	d.next += d.period
}

// SetPeriod changes the period, taking effect from the next edge onward.
// now anchors the next edge so period changes never move edges into the
// past (the paper's clock divider switches between divisions of one master
// clock with negligible overhead).
func (d *Domain) SetPeriod(periodPS, now int64) {
	if periodPS <= 0 {
		panic(fmt.Sprintf("clock: domain %q: period %d must be positive", d.name, periodPS))
	}
	d.period = periodPS
	d.next = now + periodPS
}

// Gate suppresses the domain's activity: edges keep their cadence (the PLL
// keeps running) but count as gated, so the power model can charge only
// leakage for the island.
func (d *Domain) Gate() { d.gated = true }

// Ungate re-enables the domain.
func (d *Domain) Ungate() { d.gated = false }

// System schedules a set of domains on one shared timeline.
type System struct {
	domains []*Domain
	now     int64
	fired   []*Domain // reused result buffer for Advance
}

// NewSystem builds a system over the given domains.
func NewSystem(domains ...*Domain) *System {
	return &System{domains: domains}
}

// Now returns the current simulation time in picoseconds.
func (s *System) Now() int64 { return s.now }

// Advance moves time to the earliest pending edge and returns every domain
// with an edge at that instant (already ticked). Gated domains still tick —
// their edges exist but are marked gated — so that re-enabling a domain
// keeps a sane phase. The returned slice is reused by the next Advance
// call; callers must not retain it.
func (s *System) Advance() (int64, []*Domain) {
	if len(s.domains) == 0 {
		return s.now, nil
	}
	t := s.domains[0].NextEdge()
	for _, d := range s.domains[1:] {
		if e := d.NextEdge(); e < t {
			t = e
		}
	}
	fired := s.fired[:0]
	for _, d := range s.domains {
		if d.NextEdge() == t {
			d.Tick()
			fired = append(fired, d)
		}
	}
	s.fired = fired
	s.now = t
	return t, fired
}
