package clock

import (
	"testing"
	"testing/quick"
)

func TestDomainEdges(t *testing.T) {
	d := NewDomain("fe", 500, 0)
	if d.NextEdge() != 500 {
		t.Errorf("first edge = %d, want 500", d.NextEdge())
	}
	d.Tick()
	d.Tick()
	if d.NextEdge() != 1500 {
		t.Errorf("third edge = %d, want 1500", d.NextEdge())
	}
	if d.Cycles != 2 {
		t.Errorf("cycles = %d, want 2", d.Cycles)
	}
}

func TestDomainPeriodChange(t *testing.T) {
	d := NewDomain("be", 1000, 0)
	d.Tick() // edge at 1000
	d.SetPeriod(667, 1000)
	if d.NextEdge() != 1667 {
		t.Errorf("edge after speed-up = %d, want 1667", d.NextEdge())
	}
	if d.Period() != 667 {
		t.Errorf("period = %d", d.Period())
	}
}

func TestDomainGating(t *testing.T) {
	d := NewDomain("fe", 100, 0)
	d.Tick()
	d.Gate()
	if !d.Gated() {
		t.Error("domain not gated")
	}
	d.Tick()
	d.Tick()
	d.Ungate()
	d.Tick()
	if d.Cycles != 2 {
		t.Errorf("active cycles = %d, want 2", d.Cycles)
	}
	if d.GatedCycles != 2 {
		t.Errorf("gated cycles = %d, want 2", d.GatedCycles)
	}
}

func TestSystemAdvanceOrdering(t *testing.T) {
	fe := NewDomain("fe", 500, 0)
	be := NewDomain("be", 1000, 0)
	sys := NewSystem(fe, be)

	// Edge sequence: 500(fe), 1000(fe+be), 1500(fe), 2000(fe+be)...
	now, fired := sys.Advance()
	if now != 500 || len(fired) != 1 || fired[0] != fe {
		t.Fatalf("advance 1: now=%d fired=%d", now, len(fired))
	}
	now, fired = sys.Advance()
	if now != 1000 || len(fired) != 2 {
		t.Fatalf("advance 2: now=%d fired=%d, want both domains", now, len(fired))
	}
	prev := now
	for i := 0; i < 100; i++ {
		now, _ = sys.Advance()
		if now <= prev {
			t.Fatalf("time went backwards: %d after %d", now, prev)
		}
		prev = now
	}
}

func TestSystemFrequencyRatioProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		pa := int64(a)%997 + 3
		pb := int64(b)%997 + 3
		fe := NewDomain("a", pa, 0)
		be := NewDomain("b", pb, 0)
		sys := NewSystem(fe, be)
		for sys.Now() < 1_000_000 {
			sys.Advance()
		}
		// Cycle counts must match elapsed/period within one tick.
		end := sys.Now()
		wantA := uint64(end / pa)
		wantB := uint64(end / pb)
		okA := fe.Cycles >= wantA-1 && fe.Cycles <= wantA+1
		okB := be.Cycles >= wantB-1 && be.Cycles <= wantB+1
		return okA && okB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptySystem(t *testing.T) {
	sys := NewSystem()
	if now, fired := sys.Advance(); now != 0 || fired != nil {
		t.Error("empty system advanced")
	}
}

func TestInvalidPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewDomain("bad", 0, 0)
}

func TestQueueVisibility(t *testing.T) {
	q := NewQueue[int](4)
	q.Push(1, 100)
	q.Push(2, 50) // behind 1 despite earlier readiness: FIFO order holds
	if _, ok := q.Pop(99); ok {
		t.Error("item visible before its readyAt")
	}
	v, ok := q.Pop(100)
	if !ok || v != 1 {
		t.Errorf("pop = %d, %v, want 1", v, ok)
	}
	v, ok = q.Pop(100)
	if !ok || v != 2 {
		t.Errorf("pop = %d, %v, want 2", v, ok)
	}
}

func TestQueueCapacity(t *testing.T) {
	q := NewQueue[string](2)
	if !q.Push("a", 0) || !q.Push("b", 0) {
		t.Fatal("pushes failed below capacity")
	}
	if q.Push("c", 0) {
		t.Error("push above capacity succeeded")
	}
	if !q.Full() || q.Free() != 0 {
		t.Error("capacity accounting wrong")
	}
	q.Pop(0)
	if q.Full() || q.Free() != 1 {
		t.Error("capacity accounting after pop wrong")
	}
}

func TestQueuePeekDoesNotRemove(t *testing.T) {
	q := NewQueue[int](1)
	q.Push(7, 0)
	if v, ok := q.Peek(0); !ok || v != 7 {
		t.Error("peek failed")
	}
	if q.Len() != 1 {
		t.Error("peek removed the item")
	}
}

func TestQueueFlush(t *testing.T) {
	q := NewQueue[int](4)
	q.Push(1, 0)
	q.Push(2, 0)
	q.Flush()
	if q.Len() != 0 {
		t.Error("flush left items")
	}
	if _, ok := q.Pop(1000); ok {
		t.Error("pop after flush succeeded")
	}
}

func TestQueueFIFOUnderLoadProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		q := NewQueue[uint16](len(vals) + 1)
		for _, v := range vals {
			q.Push(v, 0)
		}
		for _, want := range vals {
			got, ok := q.Pop(0)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
