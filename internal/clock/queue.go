package clock

// Queue is a bounded FIFO whose entries carry a visibility timestamp. It
// models the synchronizing FIFOs between clock domains: a producer pushes an
// item with readyAt = now + synchronization delay, and the consumer only
// sees it once its own clock has passed that time (cf. §3.2 and the
// mixed-clock issue queue design the paper builds on).
//
// Within one domain it degenerates to an ordinary pipeline latch queue by
// pushing with readyAt = now.
type Queue[T any] struct {
	items []item[T]
	cap   int
}

type item[T any] struct {
	v       T
	readyAt int64
}

// NewQueue returns a queue holding at most capacity items.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		panic("clock: queue capacity must be positive")
	}
	return &Queue[T]{cap: capacity}
}

// Len returns the number of queued items (visible or not).
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return q.cap }

// Full reports whether the queue is at capacity.
func (q *Queue[T]) Full() bool { return len(q.items) >= q.cap }

// Free returns the remaining capacity.
func (q *Queue[T]) Free() int { return q.cap - len(q.items) }

// Push enqueues v, visible to consumers at readyAt. It reports false when
// the queue is full (producer must stall).
func (q *Queue[T]) Push(v T, readyAt int64) bool {
	if q.Full() {
		return false
	}
	q.items = append(q.items, item[T]{v, readyAt})
	return true
}

// Peek returns the head item if it is visible at time now.
func (q *Queue[T]) Peek(now int64) (T, bool) {
	if len(q.items) == 0 || q.items[0].readyAt > now {
		var zero T
		return zero, false
	}
	return q.items[0].v, true
}

// Pop removes and returns the head item if it is visible at time now.
func (q *Queue[T]) Pop(now int64) (T, bool) {
	v, ok := q.Peek(now)
	if ok {
		copy(q.items, q.items[1:])
		q.items = q.items[:len(q.items)-1]
	}
	return v, ok
}

// Flush discards all items (pipeline squash).
func (q *Queue[T]) Flush() { q.items = q.items[:0] }
