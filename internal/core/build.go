package core

import (
	"flywheel/internal/mem"
	"flywheel/internal/pipe"
)

// Trace-creation mode: the conventional front-end runs in its own (faster)
// clock domain, dispatch crosses into the dual-clock issue window with a
// synchronization delay, and every issue group is recorded into the
// Execution Cache through the builder.

// fetch runs the fetch stage on a front-end edge.
func (c *Core) fetch(now int64) {
	if now < c.fetchStallUntil || c.fetcher.Blocked() {
		return
	}
	if c.front.Free() < c.cfg.FetchWidth {
		c.stats.FetchStallQueue++
		return
	}
	p := c.fe.Period()
	group, lat := c.fetcher.FetchGroup(now, p)
	if len(group) == 0 {
		return
	}
	c.stats.FetchGroups++
	hit := c.cfg.Mem.L1I.HitLatency
	depth := int64(hit + c.cfg.DecodeStages)
	readyAt := now + depth*p
	if lat > hit {
		readyAt = now + int64(lat+c.cfg.DecodeStages)*p
		c.fetchStallUntil = now + int64(lat-hit)*p
	}
	for _, d := range group {
		c.front.Push(d, readyAt)
	}
}

// dispatch moves instructions from the front-end queue through rename phase
// one into the issue window, reorder buffer and load/store queue. It runs
// on front-end edges; entries become visible to wake-up/select only after
// the synchronization delay of the dual-clock interface.
func (c *Core) dispatch(now int64) {
	if c.sealing || now < c.redistStallUntil {
		return
	}
	for n := 0; n < c.cfg.DispatchWidth; n++ {
		d, ok := c.front.Peek(now)
		if !ok {
			return
		}
		if c.rob.Full() || c.iw.Full() {
			c.stats.DispatchStallResource++
			return
		}
		if (d.IsLoad() || d.IsStore()) && c.lsq.Full() {
			c.stats.DispatchStallResource++
			return
		}
		in := d.Inst()
		if in.HasDest() && !c.ren.CanRename(in.Rd) {
			c.ren.NoteStall(in.Rd)
			c.stats.RenameStalls++
			return
		}
		c.front.Pop(now)
		d.LID = c.ren.Rename(in)
		c.rat.Link(d)
		c.rob.Push(d)
		c.iw.Insert(d, now+int64(c.cfg.SyncCycles)*c.bePeriod())
		if d.IsLoad() || d.IsStore() {
			c.lsq.Insert(d)
		}
		d.State = pipe.StateDispatched
		d.DispatchedAt = now
		c.stats.Dispatched++
		c.stats.Renamed++
		c.nextBuildSeq = d.Seq() + 1
		c.nextBuildPC = d.Trace.NextPC
		if c.builder == nil {
			// First instruction after a boundary starts a fresh trace.
			c.builder = c.ec.NewBuilder(d.Trace.PC, d.Seq())
			if d.Trace.PC == c.divergedPC {
				c.divergedPC = noDivergedPC
			} else if c.stats.Retired < c.scratchUntil && c.ec.Resident(d.Trace.PC) {
				c.builder.Scratch()
			}
		}
	}
}

// buildIssue runs wake-up/select on a back-end edge and records the issue
// unit into the trace under construction.
func (c *Core) buildIssue(now int64) {
	p := c.bePeriod()
	if now < c.redistStallUntil {
		return
	}
	// One load-barrier snapshot serves every waiting load this edge (store
	// states cannot change inside the select scan); computed lazily so
	// load-free edges pay nothing.
	loadBarrier, haveBarrier := uint64(0), false
	gateActive := now < c.gateUntil
	selected := c.iw.Select(now, p, c.cfg.IssueWidth, c.fu, func(d *pipe.DynInst) pipe.SelectVerdict {
		if gateActive && d.Seq() >= c.gateSeq {
			// Waiting for the trace-change checkpoint; the gate blocks
			// everything from gateSeq on, so in age order nothing younger
			// can issue either.
			return pipe.SelectStop
		}
		if d.IsLoad() {
			if !haveBarrier {
				loadBarrier, haveBarrier = c.lsq.LoadBarrier(), true
			}
			if d.Seq() >= loadBarrier {
				return pipe.SelectSkip
			}
		}
		return pipe.SelectOK
	})
	if len(selected) == 0 {
		return
	}
	slots := c.slotScratch[:0]
	record := c.builder != nil
	for _, d := range selected {
		c.executeInst(d, now, p)
		c.stats.IssuedBuild++
		c.stats.UpdateOps++
		if in := d.Inst(); in.HasDest() {
			c.ren.UpdateSRT(in.Rd, d.LID[0])
		}
		if record {
			slots = append(slots, Slot{
				PC:        d.Trace.PC,
				Inst:      d.Trace.Inst,
				SeqOffset: uint32(d.Seq() - c.builder.StartSeq()),
				LID:       d.LID,
			})
		}
	}
	c.slotScratch = slots
	if record {
		// AddUnit copies the slots into the trace's pending block, so the
		// scratch buffer can be reused next cycle.
		c.builder.AddUnit(slots)
		if c.builder.Full() && !c.sealing {
			// Trace reached capacity: stall dispatch and drain the window
			// so the trace ends at a clean program-order boundary.
			c.sealing = true
		}
	}
}

// executeInst computes the timing of one issued instruction (shared by both
// modes; p is the period of the clock the execution core currently runs on).
func (c *Core) executeInst(d *pipe.DynInst, now, p int64) {
	d.State = pipe.StateIssued
	d.IssuedAt = now
	lat := int64(c.fu.Latency(d.Class()))
	c.stats.RegReads += uint64(d.Inst().NumSources())

	switch {
	case d.IsLoad():
		memCycles := int64(1)
		if fwd := c.lsq.ForwardSource(d); fwd != nil {
			d.Forwarded = true
		} else {
			res := c.hier.Access(mem.AccessLoad, d.Trace.PC, d.Trace.Addr, p)
			memCycles = int64(res.Cycles)
			d.L1Hit = res.L1Hit
		}
		d.ResultAt = now + (lat+memCycles)*p
		d.DoneAt = d.ResultAt + p
	case d.IsStore():
		c.hier.Access(mem.AccessStore, d.Trace.PC, d.Trace.Addr, p)
		d.ResultAt = now + lat*p
		d.DoneAt = d.ResultAt + p
	case d.IsControl():
		d.ResultAt = now + lat*p
		resolve := d.ResultAt + int64(c.cfg.BranchResolveCycles)*p
		d.DoneAt = resolve + p
	default:
		d.ResultAt = now + lat*p
		d.DoneAt = d.ResultAt + p
	}
}

// checkSeal finishes a capacity-sealed trace once the issue window has
// drained, then searches the EC for a trace at the next program-order
// address ("trace completion condition", §3.3).
func (c *Core) checkSeal(now int64) {
	if !c.sealing || c.iw.Len() != 0 {
		return
	}
	c.sealing = false
	if c.builder != nil {
		c.builder.Finish(c.nextBuildPC)
		c.builder = nil
	}
	// SRT checkpoint: the trace ended before Register Update, so the
	// one-cycle swap path applies.
	c.ren.CheckpointSRT()
	c.gate(c.nextBuildSeq, now+int64(c.cfg.CheckpointCycles)*c.bePeriod())
	if c.cfg.ECEnabled {
		if r, ok := c.ec.Lookup(c.nextBuildPC); ok {
			c.enterReplay(now, r, c.nextBuildSeq, c.nextBuildPC)
			return
		}
	}
	// No trace found: keep building from the boundary.
	c.builder = nil // next dispatch opens the new trace
}

// onMispredictRetire handles a mispredicted control instruction reaching
// retirement in trace-creation mode: the trace ends here, the FRT
// checkpoint runs, and the EC is searched for the corrected path (§3.3).
func (c *Core) onMispredictRetire(now int64, d *pipe.DynInst) {
	c.stats.Mispredicts++
	if c.builder != nil {
		c.builder.Finish(d.Trace.NextPC)
		c.builder = nil
	}
	c.sealing = false
	c.ren.CheckpointFRT()
	resumeSeq := d.Seq() + 1
	resumePC := d.Trace.NextPC
	c.gate(resumeSeq, now+int64(c.cfg.CheckpointCycles)*c.bePeriod())
	if c.cfg.ECEnabled {
		if r, ok := c.ec.Lookup(resumePC); ok {
			c.enterReplay(now, r, resumeSeq, resumePC)
			return
		}
	}
	// Miss: restart the front-end down the corrected path.
	c.fetcher.Unblock(d)
	c.fetchStallUntil = now + int64(c.cfg.RedirectCycles)*c.fe.Period()
	c.nextBuildPC = resumePC
	c.nextBuildSeq = resumeSeq
}

// gate blocks issue of instructions at or after seq until t (the Register
// Update stage cannot accept the new trace before the checkpoint).
func (c *Core) gate(seq uint64, t int64) {
	c.gateSeq = seq
	c.gateUntil = t
}

// enterReplay switches to trace-execution mode with the given trace.
func (c *Core) enterReplay(now int64, r Reader, startSeq uint64, startPC uint64) {
	// Squash the front-end: return any fetched-but-undispatched work to
	// the oracle window so replay re-delivers it from the EC.
	// Front-queue entries are pre-dispatch (not yet renamed), so returning
	// their sequence numbers to the window fully undoes them.
	for {
		d, ok := c.front.Pop(now + 1<<40) // pop regardless of readiness
		if !ok {
			break
		}
		c.window.Unconsume(d.Trace)
		c.arena.Free(d)
	}
	if d := c.fetcher.TakePending(); d != nil {
		c.window.Unconsume(d.Trace)
		c.arena.Free(d)
	}
	c.fetcher.ForceUnblock()
	c.switchMode(now, ModeReplay)
	c.releaseRun(c.cur)
	c.releaseRun(c.next)
	c.cur = c.newRun(r, startSeq, startPC, c.gateUntil)
	c.next = nil
	c.draining = false
}
