package core

import (
	"flywheel/internal/branch"
	"flywheel/internal/mem"
	"flywheel/internal/pipe"
)

// Config parameterizes the Flywheel machine. Structural parameters default
// to the paper's Table 2; clock ratios follow the §4/§5 sweep convention:
// the front-end boost applies whenever the front-end runs, and the back-end
// boost applies only in trace-execution mode (in trace-creation mode the
// back-end is synchronous with the slow issue window).
type Config struct {
	FetchWidth    int
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int

	IWSize        int
	ROBSize       int
	LSQSize       int
	FrontQueueCap int

	// DecodeStages counts front-end stages between fetch and dispatch
	// (decode + rename phase one). The Flywheel front-end carries one more
	// rename stage than the baseline (the Update stage lives in the
	// back-end; the split renaming costs "about 2-3%", §3.5).
	DecodeStages int
	// RedirectCycles is the post-resolution fetch redirect time.
	RedirectCycles int
	// BranchResolveCycles models the issue-to-execute depth for mispredict
	// detection; the Flywheel back-end carries the extra Register Update
	// stage, so its default is one more than the baseline's.
	BranchResolveCycles int
	// SyncCycles is the dual-clock issue window synchronization delay, in
	// back-end cycles, applied when dispatch crosses into the window
	// (§3.2).
	SyncCycles int
	// CheckpointCycles is the FRT->RT copy cost at a trace change.
	CheckpointCycles int
	// DivergenceDetectCycles models the issue-to-execute depth of the
	// replay path: a trace mispredict is architecturally known only when
	// the offending branch executes, not when the fill buffer delivers the
	// mismatching slot.
	DivergenceDetectCycles int

	// BasePeriodPS is the trace-creation (issue-window-limited) clock
	// period. The front-end and trace-execution back-end periods derive
	// from it via the boost percentages.
	BasePeriodPS int64
	// FEBoostPct speeds up the front-end domain: 100 means twice the
	// baseline clock (period halves).
	FEBoostPct int
	// BEBoostPct speeds up the back-end in trace-execution mode: 50 means
	// 1.5x the baseline clock.
	BEBoostPct int

	// ECEnabled false gives the "Register Allocation" configuration of
	// Figure 11: dual-clock issue window and two-phase renaming without
	// pre-scheduled execution.
	ECEnabled bool
	EC        ECConfig

	Pools PoolConfig
	// RedistributionInterval is the pool-counter evaluation period in
	// back-end cycles (500,000 in §3.5); RedistributionCycles is the stall
	// charged when a redistribution happens (100 cycles), which also
	// invalidates the EC. RedistributionMinStalls is the pressure
	// threshold for growing a pool.
	RedistributionInterval  uint64
	RedistributionCycles    int
	RedistributionMinStalls uint64

	FU     pipe.FUConfig
	Branch branch.Config
	Mem    mem.HierarchyConfig

	// MaxCycles guards against deadlock bugs; 0 means no limit.
	MaxCycles uint64
}

// DefaultConfig returns the Table 2 Flywheel machine at a 1 ns base clock
// with both boosts at zero (equal-clock comparison of Figure 11).
func DefaultConfig() Config {
	period := int64(1000)
	return Config{
		FetchWidth:    4,
		DispatchWidth: 4,
		IssueWidth:    6,
		CommitWidth:   4,
		IWSize:        128,
		ROBSize:       256,
		LSQSize:       64,
		FrontQueueCap: 32,

		DecodeStages:           3,
		RedirectCycles:         1,
		BranchResolveCycles:    2,
		SyncCycles:             1,
		CheckpointCycles:       1,
		DivergenceDetectCycles: 6,

		BasePeriodPS: period,
		FEBoostPct:   0,
		BEBoostPct:   0,

		ECEnabled: true,
		EC:        DefaultECConfig(),
		Pools:     DefaultPoolConfig(),

		RedistributionInterval:  500_000,
		RedistributionCycles:    100,
		RedistributionMinStalls: 64,

		FU:     pipe.DefaultFUConfig(),
		Branch: branch.DefaultConfig(),
		Mem:    mem.DefaultHierarchyConfig(period),
	}
}

// FEPeriodPS returns the front-end clock period.
func (c Config) FEPeriodPS() int64 {
	return c.BasePeriodPS * 100 / int64(100+c.FEBoostPct)
}

// BEFastPeriodPS returns the trace-execution back-end clock period.
func (c Config) BEFastPeriodPS() int64 {
	return c.BasePeriodPS * 100 / int64(100+c.BEBoostPct)
}
