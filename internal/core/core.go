package core

import (
	"fmt"

	"flywheel/internal/branch"
	"flywheel/internal/clock"
	"flywheel/internal/emu"
	"flywheel/internal/mem"
	"flywheel/internal/pipe"
)

// Mode is the Flywheel operating mode.
type Mode int

// Operating modes (§3): in trace-creation mode the front-end feeds the
// dual-clock issue window and traces are recorded; in trace-execution mode
// the execution core replays issue units straight from the Execution Cache
// at the higher back-end clock.
const (
	ModeBuild Mode = iota
	ModeReplay
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeReplay {
		return "trace-execution"
	}
	return "trace-creation"
}

// Core is one Flywheel machine instance wired to an architectural oracle.
type Core struct {
	cfg Config

	window  *oracleWindow
	fe      *clock.Domain
	be      *clock.Domain
	sys     *clock.System
	pred    *branch.Predictor
	hier    *mem.Hierarchy
	arena   *pipe.Arena
	fetcher *pipe.Fetcher
	front   *clock.Queue[*pipe.DynInst]
	iw      *pipe.IssueWindow
	rob     *pipe.ROB
	lsq     *pipe.LSQ
	fu      *pipe.FUPool
	rat     *pipe.RAT
	ren     *Renamer
	ec      *EC

	mode Mode

	// Trace-creation state.
	builder         *Builder
	sealing         bool
	nextBuildPC     uint64
	nextBuildSeq    uint64
	fetchStallUntil int64

	// Checkpoint gate: instructions of the current trace (seq >= gateSeq)
	// may not pass Register Update (modelled at issue) before gateUntil.
	gateSeq   uint64
	gateUntil int64

	// Trace-execution state.
	cur  *traceRun
	next *traceRun
	// runPool recycles finished traceRuns (see newRun/releaseRun).
	runPool []*traceRun
	// draining is set after a divergence: no further units issue and the
	// machine waits for the ROB to empty (but not before drainReadyAt,
	// the divergence-detection depth) before the FRT checkpoint.
	draining     bool
	drainReadyAt int64
	// lastFailedResume is the resume point of the last diverged replay
	// attempt; a repeat failure at the same point forces trace creation.
	lastFailedResume uint64

	// Redistribution bookkeeping.
	redistDeadline   uint64
	redistStallUntil int64

	// Reused per-cycle scratch buffers (hot-loop allocation avoidance).
	slotScratch []Slot
	replayRecs  []emu.Trace
	replayInsts []*pipe.DynInst

	// Mode-time accounting.
	lastModeSwitch int64

	// scratchUntil suppresses Execution Cache writes for traces opened
	// before this retired-instruction count (see Builder.Scratch); sampled
	// execution sets it across each post-resume warm-up.
	scratchUntil uint64
	// divergedPC is the start address of the last trace whose recorded
	// path went stale (a real divergence, not a window-end stream
	// exhaustion). The next trace built at that address replaces the stale
	// one even inside the scratch span — suppressing that rebuild would
	// leave the stale trace in place to diverge again on every lookup.
	divergedPC uint64
	// resumed marks a core that has been Resumed at least once (sampled
	// execution); exact runs never set it.
	resumed bool
	// failStreak counts consecutive genuine divergences whose replays made
	// almost no progress; at replayFailCap the next resume declines replay
	// once (see afterTraceExit). Tracked only on resumed cores.
	failStreak int

	halted  bool
	sawHalt bool
	stats   Stats

	// Retirement marks for sampled execution: markFn fires with a stats
	// snapshot the first time Retired reaches each ascending mark.
	marks    []uint64
	markFn   func(i int, s Stats)
	nextMark int
}

// New builds a Flywheel core around the oracle source: a live *emu.Stream,
// a trace-cache recorder or reader (package trace), or anything else
// honouring the Next/Fill iterator contract.
func New(cfg Config, stream pipe.InstSource) *Core {
	pred := branch.New(cfg.Branch)
	hier := mem.NewHierarchy(cfg.Mem)
	window := newOracleWindow(stream)
	arena := pipe.NewArena(pipe.ArenaCapacity(cfg.ROBSize, cfg.FrontQueueCap, cfg.FetchWidth))
	c := &Core{
		cfg:     cfg,
		window:  window,
		fe:      clock.NewDomain("front-end", cfg.FEPeriodPS(), 0),
		be:      clock.NewDomain("back-end", cfg.BasePeriodPS, 0),
		pred:    pred,
		hier:    hier,
		arena:   arena,
		fetcher: pipe.NewFetcher(window, pred, hier, cfg.FetchWidth, arena),
		front:   clock.NewQueue[*pipe.DynInst](cfg.FrontQueueCap),
		iw:      pipe.NewIssueWindow(cfg.IWSize),
		rob:     pipe.NewROB(cfg.ROBSize),
		lsq:     pipe.NewLSQ(cfg.LSQSize),
		fu:      pipe.NewFUPool(cfg.FU),
		rat:     pipe.NewRAT(arena),
		ren:     NewRenamer(cfg.Pools),
		ec:      NewEC(cfg.EC),
		runPool: make([]*traceRun, 0, 4),
	}
	c.sys = clock.NewSystem(c.be, c.fe)
	c.redistDeadline = cfg.RedistributionInterval
	c.lastFailedResume = noFailedResume
	c.divergedPC = noDivergedPC
	return c
}

// noFailedResume is the idle value of the failed-resume latch.
const noFailedResume = ^uint64(0)

// noDivergedPC is the idle value of the diverged-trace latch.
const noDivergedPC = ^uint64(0)

// replayFailCap bounds consecutive low-progress divergences (at most
// stormUnitCeil units issued each) before a resume declines replay and
// lets trace creation heal the region. Sampled execution only.
const (
	replayFailCap = 8
	stormUnitCeil = 2
)

// Run simulates until the program halts and returns the run statistics.
func (c *Core) Run() (Stats, error) {
	guard := uint64(0)
	lastRetired := uint64(0)
	for !c.halted {
		now, fired := c.sys.Advance()
		for _, d := range fired {
			switch d {
			case c.be:
				c.beTick(now)
			case c.fe:
				if c.mode == ModeBuild && !c.fe.Gated() {
					c.feTick(now)
				}
			}
		}
		if c.markFn != nil {
			for c.nextMark < len(c.marks) && c.stats.Retired >= c.marks[c.nextMark] {
				c.markFn(c.nextMark, c.StatsSnapshot())
				c.nextMark++
			}
		}
		if c.cfg.MaxCycles > 0 && c.be.Cycles > c.cfg.MaxCycles {
			return c.stats, fmt.Errorf("core: exceeded max cycles (%d)", c.cfg.MaxCycles)
		}
		if c.stats.Retired == lastRetired {
			guard++
			if guard > 400_000 {
				return c.stats, fmt.Errorf(
					"core: no retirement progress at t=%dps (mode=%v rob=%d iw=%d front=%d drain=%v sealing=%v fetchBlocked=%v)",
					now, c.mode, c.rob.Len(), c.iw.Len(), c.front.Len(), c.draining, c.sealing, c.fetcher.Blocked())
			}
		} else {
			guard = 0
			lastRetired = c.stats.Retired
		}
	}
	c.finalizeStats()
	return c.stats, nil
}

// SetMarks arranges for fn to be called with a statistics snapshot the
// first time the retired-instruction count reaches each mark (ascending).
// Sampled execution sets two marks per detailed window to delimit the
// measurement interval. Replaces any previous marks.
func (c *Core) SetMarks(marks []uint64, fn func(i int, s Stats)) {
	c.marks, c.markFn, c.nextMark = marks, fn, 0
}

// Resume clears the end-of-stream halt so Run can be called again after
// the oracle window's source is replenished; sampled execution resumes the
// same core for each detailed window so that the Execution Cache, rename
// pools, predictor, and cache hierarchy all carry across. It reports false
// if the program truly halted (retired a HALT) — there is nothing left to
// run then.
//
// scratchInsts suppresses Execution Cache writes for traces opened within
// that many retired instructions of the resume: the refilling pipeline
// issues in narrow groups, and a trace recorded from it would replace the
// warm-built trace at the same address and slow every later replay. The
// suppressed builders still count blocks, so capacity sealing — and with
// it the seal-time EC lookup that re-enters trace execution — is
// undisturbed.
func (c *Core) Resume(scratchInsts uint64) bool {
	if c.sawHalt {
		return false
	}
	c.scratchUntil = c.stats.Retired + scratchInsts
	c.halted = false
	c.window.reopen()
	c.fetcher.Reopen()
	// A trace still under construction would span the fast-forward gap: its
	// slot offsets are relative to its start sequence number, so it could
	// never pair with the post-gap stream. Abandon it; the next dispatch
	// opens a fresh trace.
	c.builder = nil
	c.sealing = false
	// Likewise an in-flight replay: its start sequence number is pre-gap,
	// so pairing against the re-anchored window would read below base.
	// Tear it down and restart from the front-end; trace execution resumes
	// at the first post-gap EC hit.
	c.releaseRun(c.cur)
	c.releaseRun(c.next)
	c.cur, c.next = nil, nil
	c.draining = false
	c.lastFailedResume = noFailedResume
	c.divergedPC = noDivergedPC
	c.resumed = true
	c.failStreak = 0
	if c.mode == ModeReplay {
		c.exitToBuild(c.sys.Now())
	}
	return true
}

// bePeriod returns the current back-end period (mode dependent).
func (c *Core) bePeriod() int64 { return c.be.Period() }

// beTick runs one back-end clock edge.
func (c *Core) beTick(now int64) {
	if c.mode == ModeReplay {
		c.stats.BECyclesReplay++
	} else {
		c.stats.BECyclesBuild++
	}
	c.retire(now)
	c.maybeRedistribute(now)
	switch c.mode {
	case ModeBuild:
		c.buildIssue(now)
		c.checkSeal(now)
	case ModeReplay:
		c.replayTick(now)
	}
	c.checkHalt(now)
}

// feTick runs one front-end clock edge (trace-creation mode only).
func (c *Core) feTick(now int64) {
	c.dispatch(now)
	c.fetch(now)
}

// retire commits up to CommitWidth done instructions in program order and
// drives the trace-boundary events that hang off retirement (mispredict
// checkpoints, FRT updates).
func (c *Core) retire(now int64) {
	for n := 0; n < c.cfg.CommitWidth; n++ {
		head := c.rob.Head()
		if head == nil || head.State < pipe.StateIssued || head.DoneAt > now {
			return
		}
		head.State = pipe.StateDone
		c.rob.PopHead()
		head.State = pipe.StateRetired
		c.rat.Retire(head)
		in := head.Inst()
		if in.HasDest() {
			c.ren.RetireDest(in.Rd, head.LID[0])
			c.stats.RegWrites++
		}
		if head.IsLoad() || head.IsStore() {
			c.lsq.Remove(head)
		}
		c.stats.Retired++
		if head.IsControl() && c.mode == ModeBuild {
			c.pred.Update(head.Trace.PC, in, head.Trace.Taken, head.Trace.NextPC)
			if head.Mispredicted {
				c.onMispredictRetire(now, head)
			}
		}
		halt := head.IsHalt()
		c.arena.Free(head)
		if halt {
			c.halted = true
			c.sawHalt = true
			return
		}
	}
}

// checkHalt detects the no-more-work condition for programs that end by
// stream exhaustion rather than an explicit halt.
func (c *Core) checkHalt(now int64) {
	if !c.window.Drained() {
		return
	}
	if c.rob.Len() != 0 || c.front.Len() != 0 || c.iw.Len() != 0 {
		return
	}
	if c.cur != nil && len(c.cur.buffered) > 0 {
		return
	}
	if _, ok := c.window.NextUnconsumed(); ok {
		return
	}
	c.halted = true
}

// maybeRedistribute evaluates the rename-pool pressure counters every
// RedistributionInterval back-end cycles (§3.5: 500k cycles, 100-cycle
// penalty, full EC invalidation).
func (c *Core) maybeRedistribute(now int64) {
	if c.be.Cycles < c.redistDeadline {
		return
	}
	c.redistDeadline += c.cfg.RedistributionInterval
	plan := c.ren.MaybeRedistribute(c.cfg.RedistributionMinStalls)
	if !plan.Changed {
		return
	}
	c.stats.Redistributions++
	c.ec.InvalidateAll()
	c.redistStallUntil = now + int64(c.cfg.RedistributionCycles)*c.bePeriod()
	// Stored LIDs are stale everywhere: abandon the trace being built.
	c.builder = nil
	c.sealing = false
	// An in-flight replay will hit broken chains and unwind through the
	// normal abort path; stop issuing units immediately.
	if c.mode == ModeReplay && c.cur != nil {
		c.cur.broken = true
	}
}

// switchMode flips between trace creation and execution, retiming the
// back-end clock (both speeds divide one master clock; the switch itself is
// free, §3) and gating or waking the front-end domain.
func (c *Core) switchMode(now int64, m Mode) {
	if m == c.mode {
		return
	}
	// Account the time spent in the old mode.
	if c.mode == ModeReplay {
		c.stats.ReplayTimePS += now - c.lastModeSwitch
	} else {
		c.stats.BuildTimePS += now - c.lastModeSwitch
	}
	c.lastModeSwitch = now
	c.mode = m
	if m == ModeReplay {
		c.be.SetPeriod(c.cfg.BEFastPeriodPS(), now)
		c.fe.Gate()
	} else {
		c.be.SetPeriod(c.cfg.BasePeriodPS, now)
		c.fe.Ungate()
	}
	c.stats.ModeSwitches++
}
