package core

import (
	"fmt"
	"strings"
	"testing"

	"flywheel/internal/asm"
	"flywheel/internal/emu"
	"flywheel/internal/ooo"
)

// runFlywheel assembles src and runs it on the Flywheel core.
func runFlywheel(t *testing.T, src string, cfg Config) (Stats, *emu.Machine) {
	t.Helper()
	p, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := emu.New(p)
	c := New(cfg, emu.NewStream(m, 0))
	stats, err := c.Run()
	if err != nil {
		t.Fatalf("flywheel run: %v", err)
	}
	return stats, m
}

// runBaseline runs the same source on the baseline core for comparison.
func runBaseline(t *testing.T, src string) ooo.Stats {
	t.Helper()
	p, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cfg := ooo.DefaultConfig()
	cfg.MaxCycles = 10_000_000
	c := ooo.New(cfg, emu.NewStream(emu.New(p), 0))
	stats, err := c.Run()
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	return stats
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxCycles = 10_000_000
	return cfg
}

// loopSrc is a predictable loop with enough body to form issue units.
func loopSrc(iters int) string {
	return fmt.Sprintf(`
	li r1, %d
	li r2, 0
	li r3, 1
loop:
	add r2, r2, r1
	add r4, r2, r3
	xor r5, r4, r1
	addi r1, r1, -1
	bnez r1, loop
	halt
`, iters)
}

func TestFlywheelRetiresEverything(t *testing.T) {
	stats, m := runFlywheel(t, loopSrc(500), testConfig())
	if stats.Retired != m.Retired {
		t.Errorf("flywheel retired %d, oracle executed %d", stats.Retired, m.Retired)
	}
	if m.IntRegs[2] != uint64(500*501/2) {
		t.Errorf("architectural result = %d", m.IntRegs[2])
	}
}

func TestFlywheelEntersReplayOnLoops(t *testing.T) {
	stats, _ := runFlywheel(t, loopSrc(3000), testConfig())
	if stats.EC.TracesBuilt == 0 {
		t.Fatal("no traces were built")
	}
	if stats.EC.TracesReplayed == 0 {
		t.Fatal("no traces were replayed")
	}
	if stats.ECResidency < 0.5 {
		t.Errorf("EC residency = %.2f on a tight loop, want > 0.5", stats.ECResidency)
	}
	if stats.IssuedReplay == 0 {
		t.Error("no instructions issued from the EC path")
	}
}

func TestFlywheelMatchesOracleWithECDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.ECEnabled = false
	stats, m := runFlywheel(t, loopSrc(500), cfg)
	if stats.Retired != m.Retired {
		t.Errorf("register-allocation config retired %d, oracle %d", stats.Retired, m.Retired)
	}
	if stats.ECResidency != 0 || stats.IssuedReplay != 0 {
		t.Error("EC-disabled config used the EC")
	}
}

func TestFlywheelComparableToBaselineAtEqualClocks(t *testing.T) {
	src := loopSrc(3000)
	base := runBaseline(t, src)
	fw, _ := runFlywheel(t, src, testConfig())
	ratio := float64(base.TimePS) / float64(fw.TimePS) // >1 means flywheel faster
	if ratio < 0.75 || ratio > 1.6 {
		t.Errorf("flywheel/baseline speed ratio at equal clocks = %.2f, want near 1", ratio)
	}
}

func TestFlywheelFasterWithBoostedClocks(t *testing.T) {
	src := loopSrc(3000)
	base := runBaseline(t, src)
	cfg := testConfig()
	cfg.FEBoostPct = 50
	cfg.BEBoostPct = 50
	fw, _ := runFlywheel(t, src, cfg)
	speedup := float64(base.TimePS) / float64(fw.TimePS)
	if speedup < 1.15 {
		t.Errorf("FE50/BE50 speedup = %.2f, want clearly above 1", speedup)
	}
}

func TestFlywheelHandlesDivergences(t *testing.T) {
	// Data-dependent branches (xorshift) force trace divergences.
	src := `
	li r1, 2000
	li r2, 88172645
	li r6, 0
loop:
	slli r3, r2, 13
	xor  r2, r2, r3
	srli r3, r2, 7
	xor  r2, r2, r3
	slli r3, r2, 17
	xor  r2, r2, r3
	andi r5, r2, 1
	beqz r5, skip
	addi r6, r6, 1
skip:
	addi r1, r1, -1
	bnez r1, loop
	halt
`
	stats, m := runFlywheel(t, src, testConfig())
	if stats.Retired != m.Retired {
		t.Fatalf("retired %d, oracle %d", stats.Retired, m.Retired)
	}
	if stats.EC.TracesReplayed > 0 && stats.Divergences == 0 {
		t.Error("replayed unpredictable traces without any divergence")
	}
}

func TestFlywheelNestedCallsAndMemory(t *testing.T) {
	src := `
.global main
main:
	li  r4, 14
	call fib
	halt
fib:
	slti r6, r4, 2
	beqz r6, rec
	mv   r5, r4
	ret
rec:
	addi sp, sp, -24
	sd   ra, 0(sp)
	sd   r4, 8(sp)
	addi r4, r4, -1
	call fib
	sd   r5, 16(sp)
	ld   r4, 8(sp)
	addi r4, r4, -2
	call fib
	ld   r6, 16(sp)
	add  r5, r5, r6
	ld   ra, 0(sp)
	addi sp, sp, 24
	ret
`
	stats, m := runFlywheel(t, src, testConfig())
	if stats.Retired != m.Retired {
		t.Fatalf("retired %d, oracle %d", stats.Retired, m.Retired)
	}
	if m.IntRegs[5] != 377 {
		t.Errorf("fib(14) = %d, want 377", m.IntRegs[5])
	}
}

func TestFlywheelRenamePoolStalls(t *testing.T) {
	// Hammer one destination register from a wide loop: the per-register
	// pool is the bottleneck the paper's Figure 11 highlights.
	var b strings.Builder
	b.WriteString("\tli r20, 2000\nloop:\n")
	for i := 0; i < 10; i++ {
		b.WriteString("\taddi r1, r0, 1\n") // all write r1
	}
	b.WriteString("\taddi r20, r20, -1\n\tbnez r20, loop\n\thalt\n")
	cfg := testConfig()
	cfg.Pools = PoolConfig{TotalRegs: 256, MinPool: 2, MaxPool: 16} // pools of 4
	stats, _ := runFlywheel(t, b.String(), cfg)
	if stats.RenameStalls == 0 {
		t.Error("no rename stalls under heavy single-register pressure")
	}
}

func TestFlywheelRedistributionTriggers(t *testing.T) {
	var b strings.Builder
	b.WriteString("\tli r20, 30000\nloop:\n")
	for i := 0; i < 10; i++ {
		b.WriteString("\taddi r1, r0, 1\n")
	}
	b.WriteString("\taddi r20, r20, -1\n\tbnez r20, loop\n\thalt\n")
	cfg := testConfig()
	cfg.Pools = PoolConfig{TotalRegs: 256, MinPool: 2, MaxPool: 16}
	cfg.RedistributionInterval = 20_000 // accelerate for the test
	cfg.RedistributionMinStalls = 16
	stats, m := runFlywheel(t, b.String(), cfg)
	if stats.Redistributions == 0 {
		t.Error("pool redistribution never triggered under pressure")
	}
	if stats.Retired != m.Retired {
		t.Errorf("retired %d, oracle %d", stats.Retired, m.Retired)
	}
}

func TestFlywheelStoreLoadHeavy(t *testing.T) {
	src := `
	la r1, buf
	li r2, 2000
loop:
	sd r2, 0(r1)
	ld r3, 0(r1)
	sd r3, 8(r1)
	ld r4, 8(r1)
	addi r2, r2, -1
	bnez r2, loop
	halt
.data
buf:
	.space 64
`
	stats, m := runFlywheel(t, src, testConfig())
	if stats.Retired != m.Retired {
		t.Fatalf("retired %d, oracle %d", stats.Retired, m.Retired)
	}
}

func TestFlywheelModeAccountingConsistent(t *testing.T) {
	stats, _ := runFlywheel(t, loopSrc(2000), testConfig())
	if got := stats.BuildTimePS + stats.ReplayTimePS; got != stats.TimePS {
		t.Errorf("mode times %d + %d != total %d", stats.BuildTimePS, stats.ReplayTimePS, stats.TimePS)
	}
	if stats.IssuedBuild+stats.IssuedReplay != stats.Retired {
		t.Errorf("issued %d+%d != retired %d (no wrong path exists)",
			stats.IssuedBuild, stats.IssuedReplay, stats.Retired)
	}
}

func TestFlywheelECDisabledNeverGatesFE(t *testing.T) {
	cfg := testConfig()
	cfg.ECEnabled = false
	stats, _ := runFlywheel(t, loopSrc(1000), cfg)
	if stats.FEGatedCycles > 0 {
		t.Errorf("front-end gated %d cycles with EC disabled", stats.FEGatedCycles)
	}
	if stats.ModeSwitches > 0 {
		t.Errorf("mode switched %d times with EC disabled", stats.ModeSwitches)
	}
}
