package core

import (
	"testing"

	"flywheel/internal/emu"
	"flywheel/internal/pipe"
	"flywheel/internal/workload"
)

// TestDebugIjpegProgress is a diagnostic harness: it runs a short ijpeg
// window and reports mode/trace behaviour so calibration regressions are
// visible in -v output.
func TestDebugIjpegProgress(t *testing.T) {
	w := workload.MustGet("ijpeg")
	m, err := w.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	stream := emu.NewStream(m, m.Retired+30_000)
	cfg := DefaultConfig()
	cfg.FEBoostPct = 50
	cfg.BEBoostPct = 50
	cfg.MaxCycles = 3_000_000
	c := New(cfg, stream)
	stats, err := c.Run()
	if err != nil {
		t.Logf("run error: %v", err)
		t.Logf("oracle retired=%d fetched=%d dispatched=%d window(base=%d len=%d drained=%v)",
			m.Retired, c.fetcher.Fetched, c.stats.Dispatched, c.window.base, len(c.window.entries), c.window.drained)
		t.Logf("retired=%d cycles=%d mode=%v switches=%d", stats.Retired, c.be.Cycles, c.mode, stats.ModeSwitches)
		t.Logf("built=%d replayed=%d divergences=%d changes=%d broken=%d",
			c.ec.Stats.TracesBuilt, c.ec.Stats.TracesReplayed, stats.Divergences, stats.TraceChanges, stats.BrokenReplays)
		t.Logf("fill=%d res-stall=%d data-stall=%d rename=%d",
			stats.ReplayFillStalls, stats.ReplayStallResource, stats.ReplayStallData, stats.RenameStalls)
		t.Logf("mispredicts=%d sealing=%v draining=%v gate=%d/%d",
			c.fetcher.Mispredicts, c.sealing, c.draining, c.gateSeq, c.gateUntil)
		t.FailNow()
	}
	t.Logf("retired=%d cycles=%d resid=%.2f ipc=%.2f switches=%d built=%d replayed=%d div=%d units=%d avgUnit=%.2f",
		stats.Retired, stats.Cycles(), stats.ECResidency, stats.IPC, stats.ModeSwitches,
		stats.EC.TracesBuilt, stats.EC.TracesReplayed, stats.Divergences, stats.ReplayUnits,
		float64(stats.IssuedReplay)/float64(max64(stats.ReplayUnits, 1)))
	t.Logf("replay cycles=%d units=%d fill-stall=%d data-stall=%d res-stall=%d rename-stall=%d changes=%d",
		stats.BECyclesReplay, stats.ReplayUnits, stats.ReplayFillStalls, stats.ReplayStallData,
		stats.ReplayStallResource, stats.RenameStalls, stats.TraceChanges)
	t.Logf("L1D miss=%.3f issuedBuild=%d issuedReplay=%d", stats.L1D.MissRate(), stats.IssuedBuild, stats.IssuedReplay)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestDebugDivergenceDetail(t *testing.T) {
	w := workload.MustGet("ijpeg")
	m, err := w.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	stream := emu.NewStream(m, m.Retired+30_000)
	cfg := DefaultConfig()
	cfg.MaxCycles = 1_000_000
	c := New(cfg, stream)
	n := 0
	debugDivergence = func(run *traceRun, s Slot, rec emu.Trace, ok, consumed bool) {
		if n < 8 {
			t.Logf("div: startSeq=%d off=%d slotPC=%#x slotInst=%v | ok=%v consumed=%v recSeq=%d recPC=%#x recInst=%v",
				run.startSeq, s.SeqOffset, s.PC, s.Inst, ok, consumed, rec.Seq, rec.PC, rec.Inst)
		}
		n++
	}
	defer func() { debugDivergence = nil }()
	c.Run()
	t.Logf("total divergences=%d", n)
}

func TestDebugStallSources(t *testing.T) {
	w := workload.MustGet("ijpeg")
	m, err := w.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	stream := emu.NewStream(m, m.Retired+30_000)
	cfg := DefaultConfig()
	cfg.FEBoostPct = 50
	cfg.BEBoostPct = 50
	cfg.MaxCycles = 3_000_000
	c := New(cfg, stream)
	type key struct {
		cls   string
		state pipe.State
	}
	waits := map[key]int64{}
	counts := map[key]int{}
	debugStall = func(c *Core, d *pipe.DynInst, now int64) {
		for _, r := range d.Inst().Sources() {
			p := c.rat.Producer(r)
			if p == nil || p.State == pipe.StateRetired || p.ResultAt <= now {
				continue
			}
			k := key{p.Class().String(), p.State}
			wait := p.ResultAt - now
			if p.ResultAt >= pipe.FarFuture {
				wait = -1
			}
			waits[k] += wait
			counts[k]++
		}
	}
	defer func() { debugStall = nil }()
	c.Run()
	for k, n := range counts {
		t.Logf("stall on %-8s state=%v count=%d avg-wait=%.1f cycles", k.cls, k.state, n, float64(waits[k])/float64(n)/float64(cfg.BEFastPeriodPS()))
	}
}

func TestDebugVortexTraces(t *testing.T) {
	w := workload.MustGet("vortex")
	m, err := w.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	stream := emu.NewStream(m, m.Retired+60_000)
	cfg := DefaultConfig()
	cfg.MaxCycles = 3_000_000
	c := New(cfg, stream)
	stats, err := c.Run()
	if err != nil {
		t.Fatalf("%v", err)
	}
	t.Logf("resid=%.2f built=%d replayed=%d div=%d changes=%d broken=%d units=%d issuedReplay=%d issuedBuild=%d switches=%d",
		stats.ECResidency, stats.EC.TracesBuilt, stats.EC.TracesReplayed, stats.Divergences,
		stats.TraceChanges, stats.BrokenReplays, stats.ReplayUnits, stats.IssuedReplay, stats.IssuedBuild, stats.ModeSwitches)
	t.Logf("mispredicts=%d predAcc=%.3f slotsStored=%d slotsReplayed=%d avgTraceLen=%.1f",
		stats.Mispredicts, stats.BranchAccuracy, stats.EC.SlotsStored, stats.EC.SlotsReplayed,
		float64(stats.EC.SlotsStored)/float64(max64(stats.EC.TracesBuilt, 1)))
}
