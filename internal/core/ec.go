// Package core implements the paper's contribution: the Flywheel
// microarchitecture. It combines a Dual-Clock Issue Window (the pipeline
// front-end runs in its own, faster clock domain and writes into the issue
// window across a synchronizing interface, §3.2), Pre-Scheduled Execution
// through an Execution Cache placed after the issue stage (§3.3), and the
// two-phase register renaming mechanism with per-architected-register
// physical pools, remapping tables and trace-change checkpoints that makes
// trace replay possible without re-renaming (§3.4-3.5).
//
// The machine has two operating modes. In trace-creation mode instructions
// flow through the conventional front-end while the issue units leaving the
// Issue Window are recorded, in issue order, into the Execution Cache. In
// trace-execution mode the front-end and the wake-up/select logic are
// clock-gated: issue units stream from the Execution Cache directly to the
// execution core, which then runs at a higher clock frequency (both
// back-end speeds derive from one master clock, so switching is cheap).
package core

import (
	"flywheel/internal/isa"
)

// Slot is one instruction as stored in the Execution Cache: the decoded
// instruction, its position in the dynamic trace, its logical rename IDs,
// and whether it starts a new issue unit.
type Slot struct {
	PC   uint64
	Inst isa.Instruction
	// SeqOffset is the dynamic-sequence distance from the trace start;
	// replay uses it to pair the slot with the right oracle record even
	// though slots are stored in issue order, not program order.
	SeqOffset uint32
	// LID carries the logical rename IDs (dest, src1, src2) assigned in
	// the Rename stage during trace creation.
	LID [3]uint16
	// UnitStart marks the first slot of an issue unit: the group of
	// independent instructions that issued together during creation and
	// issue together again on replay.
	UnitStart bool
}

// ECConfig sizes the Execution Cache (Table 2: 128K, 2-way set-associative,
// three-cycle access, eight-instruction blocks).
type ECConfig struct {
	SizeBytes  int
	Ways       int
	BlockSlots int // instructions per data-array block
	SlotBytes  int // storage footprint per slot
	ReadCycles int // data-array block access latency
	TagEntries int // tag-array capacity (associative)
	// MaxTraceBlocks caps trace length so a trace cannot wrap around the
	// whole data array and collide with itself.
	MaxTraceBlocks int
}

// DefaultECConfig returns the paper's Execution Cache parameters.
func DefaultECConfig() ECConfig {
	return ECConfig{
		SizeBytes:      128 << 10,
		Ways:           2,
		BlockSlots:     8,
		SlotBytes:      8,
		ReadCycles:     3,
		TagEntries:     512,
		MaxTraceBlocks: 48,
	}
}

// NumSets returns the number of data-array sets.
func (c ECConfig) NumSets() int {
	return c.SizeBytes / (c.Ways * c.BlockSlots * c.SlotBytes)
}

type ecBlock struct {
	valid   bool
	traceID uint64
	seq     int // position of this block within its trace
	last    bool
	// successor is the address execution continued at when the trace was
	// built (valid on the last block): the trace cache's next-trace
	// prediction, verified when the trace's ending control resolves.
	successor uint64
	slots     []Slot
	lru       uint64
}

type taEntry struct {
	pc      uint64
	traceID uint64
	set     int
	way     int
	lru     uint64
}

// ECStats counts Execution Cache activity for performance and power.
type ECStats struct {
	TagLookups     uint64
	TagHits        uint64
	BlockReads     uint64
	BlockWrites    uint64
	TracesBuilt    uint64
	TracesReplayed uint64
	SlotsStored    uint64
	SlotsReplayed  uint64
	BrokenChains   uint64
	Invalidations  uint64
}

// EC is the Execution Cache: an associative Tag Array mapping trace start
// addresses to the first data-array block, and a set-associative Data Array
// whose blocks chain through consecutive sets (the next chunk of a trace
// always lives in the following set, so no per-access lookup is needed —
// the Pentium-4-style organization of §3.3/Figure 7).
type EC struct {
	cfg     ECConfig
	sets    [][]ecBlock
	tags    []taEntry
	clock   uint64
	nextTID uint64
	Stats   ECStats
	// spare recycles the last finished Builder (and its pending buffer):
	// the core runs at most one builder at a time, and trace creation is
	// frequent enough that a fresh allocation per trace dominates the
	// simulator's heap churn.
	spare *Builder
}

// NewEC builds an empty Execution Cache.
func NewEC(cfg ECConfig) *EC {
	numSets := cfg.NumSets()
	if numSets <= 0 || cfg.Ways <= 0 || cfg.BlockSlots <= 0 {
		panic("core: invalid EC configuration")
	}
	sets := make([][]ecBlock, numSets)
	blocks := make([]ecBlock, numSets*cfg.Ways)
	for i := range sets {
		sets[i], blocks = blocks[:cfg.Ways], blocks[cfg.Ways:]
	}
	return &EC{cfg: cfg, sets: sets, nextTID: 1}
}

// Config returns the cache configuration.
func (e *EC) Config() ECConfig { return e.cfg }

func (e *EC) startSet(pc uint64) int {
	return int((pc >> 2) % uint64(len(e.sets)))
}

// Lookup searches the Tag Array for a trace starting at pc and validates
// that its first block still exists (blocks may have been overwritten by
// newer traces — invalidation is lazy).
func (e *EC) Lookup(pc uint64) (Reader, bool) {
	e.Stats.TagLookups++
	e.clock++
	for i := range e.tags {
		t := &e.tags[i]
		if t.pc != pc {
			continue
		}
		b := &e.sets[t.set][t.way]
		if !b.valid || b.traceID != t.traceID || b.seq != 0 {
			// First block overwritten: drop the stale tag entry.
			e.tags[i] = e.tags[len(e.tags)-1]
			e.tags = e.tags[:len(e.tags)-1]
			return Reader{}, false
		}
		t.lru = e.clock
		e.Stats.TagHits++
		e.Stats.TracesReplayed++
		return Reader{ec: e, traceID: t.traceID, set: t.set, way: t.way}, true
	}
	return Reader{}, false
}

// Resident reports whether a live trace starts at pc, without touching LRU
// state, statistics, or the lazy stale-tag cleanup. The sampled-execution
// scratch policy uses it: a post-resume cold build is discarded only when
// it would replace a resident trace — holes in the cache are still filled,
// so later windows over the same code replay instead of rebuilding.
func (e *EC) Resident(pc uint64) bool {
	for i := range e.tags {
		t := &e.tags[i]
		if t.pc != pc {
			continue
		}
		b := &e.sets[t.set][t.way]
		return b.valid && b.traceID == t.traceID && b.seq == 0
	}
	return false
}

// registerTag adds a completed trace to the Tag Array, evicting the LRU
// entry when full and replacing any older trace with the same start pc.
func (e *EC) registerTag(pc uint64, traceID uint64, set, way int) {
	e.clock++
	for i := range e.tags {
		if e.tags[i].pc == pc {
			e.tags[i] = taEntry{pc, traceID, set, way, e.clock}
			return
		}
	}
	if len(e.tags) < e.cfg.TagEntries {
		e.tags = append(e.tags, taEntry{pc, traceID, set, way, e.clock})
		return
	}
	victim := 0
	for i := range e.tags {
		if e.tags[i].lru < e.tags[victim].lru {
			victim = i
		}
	}
	e.tags[victim] = taEntry{pc, traceID, set, way, e.clock}
}

// writeBlock allocates a block in the given set (LRU way) and fills it.
func (e *EC) writeBlock(set int, traceID uint64, seq int, slots []Slot, last bool, successor uint64) int {
	e.clock++
	ways := e.sets[set]
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	// Reuse the victim's backing array: replay copies block slots into its
	// fill buffer synchronously inside ReadBlock's caller, so no reader
	// holds this storage across a write.
	stored := ways[victim].slots
	if cap(stored) >= len(slots) {
		stored = stored[:len(slots)]
	} else {
		bcap := e.cfg.BlockSlots
		if len(slots) > bcap {
			bcap = len(slots)
		}
		stored = make([]Slot, len(slots), bcap)
	}
	copy(stored, slots)
	ways[victim] = ecBlock{
		valid: true, traceID: traceID, seq: seq, last: last,
		successor: successor, slots: stored, lru: e.clock,
	}
	e.Stats.BlockWrites++
	e.Stats.SlotsStored += uint64(len(slots))
	return victim
}

// InvalidateAll wipes the whole cache (register redistribution makes all
// stored renaming information obsolete, §3.5).
func (e *EC) InvalidateAll() {
	for _, set := range e.sets {
		for i := range set {
			// Keep the slot storage for the rebuild that follows: register
			// redistribution wipes the cache many times per run, and
			// reallocating every block each time dominated the heap profile.
			set[i] = ecBlock{slots: set[i].slots[:0]}
		}
	}
	e.tags = e.tags[:0]
	e.Stats.Invalidations++
}

// Reader streams the blocks of one trace out of the data array. The next
// block of a trace always lives in the following set with the same trace id
// and the next sequence number, so no tag lookup is needed per block.
type Reader struct {
	ec        *EC
	traceID   uint64
	set       int
	way       int
	seq       int
	successor uint64
}

// Valid reports whether the reader refers to a trace.
func (r *Reader) Valid() bool { return r.ec != nil }

// TraceID identifies the trace being read.
func (r *Reader) TraceID() uint64 { return r.traceID }

// Successor returns the recorded follow-on address, valid after ReadBlock
// returned the last block.
func (r *Reader) Successor() uint64 { return r.successor }

// ReadBlock returns the next block's slots. last reports the end-of-trace
// marker; ok is false when the chain was broken by a newer trace
// overwriting a block.
func (r *Reader) ReadBlock() (slots []Slot, last, ok bool) {
	if r.ec == nil {
		return nil, false, false
	}
	set := (r.set + r.seq) % len(r.ec.sets)
	var blk *ecBlock
	for i := range r.ec.sets[set] {
		b := &r.ec.sets[set][i]
		if b.valid && b.traceID == r.traceID && b.seq == r.seq {
			blk = b
			break
		}
	}
	if blk == nil {
		r.ec.Stats.BrokenChains++
		return nil, false, false
	}
	r.ec.clock++
	blk.lru = r.ec.clock
	r.ec.Stats.BlockReads++
	r.ec.Stats.SlotsReplayed += uint64(len(blk.slots))
	if blk.last {
		r.successor = blk.successor
	}
	r.seq++
	return blk.slots, blk.last, true
}

// Builder assembles a trace during creation mode: issue units are appended
// in issue order, packed into blocks through the fill buffer, and written
// to consecutive sets. Finish registers the trace in the Tag Array.
type Builder struct {
	ec       *EC
	traceID  uint64
	startPC  uint64
	startSeq uint64
	set      int // set of block 0
	firstWay int
	seq      int
	pending  []Slot
	units    int
	full     bool
	// scratch builders go through all the motions (block accounting,
	// capacity sealing) but never write the data array or register a tag.
	// Sampled execution uses them right after a resume: a trace assembled
	// from a still-refilling pipeline has narrow issue units, and letting it
	// replace the warm-built trace at the same address would permanently
	// degrade every later replay of that path.
	scratch bool
}

// NewBuilder starts recording a trace for the program path beginning at
// startPC (dynamic sequence number startSeq).
func (e *EC) NewBuilder(startPC uint64, startSeq uint64) *Builder {
	tid := e.nextTID
	e.nextTID++
	b := e.spare
	e.spare = nil
	if b == nil {
		b = &Builder{pending: make([]Slot, 0, 2*e.cfg.BlockSlots)}
	}
	*b = Builder{
		ec: e, traceID: tid, startPC: startPC, startSeq: startSeq,
		set: e.startSet(startPC), firstWay: -1, pending: b.pending[:0],
	}
	return b
}

// StartPC returns the trace's entry address.
func (b *Builder) StartPC() uint64 { return b.startPC }

// StartSeq returns the dynamic sequence number of the trace's first
// (program-order) instruction.
func (b *Builder) StartSeq() uint64 { return b.startSeq }

// Units returns the number of issue units recorded so far.
func (b *Builder) Units() int { return b.units }

// Full reports whether the trace reached its maximum length; the caller
// should Finish it and start a new one.
func (b *Builder) Full() bool { return b.full }

// AddUnit appends one issue unit (the instructions selected in one cycle).
// Full is advisory: the core stalls dispatch once the soft capacity is
// reached, but instructions already in flight keep draining into the trace
// so it always ends at a clean program-order boundary.
func (b *Builder) AddUnit(slots []Slot) {
	if len(slots) == 0 {
		return
	}
	slots[0].UnitStart = true
	for i := 1; i < len(slots); i++ {
		slots[i].UnitStart = false
	}
	b.pending = append(b.pending, slots...)
	b.units++
	for len(b.pending) >= b.ec.cfg.BlockSlots {
		b.flushBlock(b.pending[:b.ec.cfg.BlockSlots], false, 0)
		// Copy the remainder down instead of re-slicing forward: the buffer
		// stays small, so its backing array survives the builder's whole
		// life and the next builder reuses it allocation-free.
		n := copy(b.pending, b.pending[b.ec.cfg.BlockSlots:])
		b.pending = b.pending[:n]
		if b.seq >= b.ec.cfg.MaxTraceBlocks-1 {
			b.full = true
		}
	}
}

// Scratch marks the builder as write-suppressed (see the field comment).
func (b *Builder) Scratch() { b.scratch = true }

func (b *Builder) flushBlock(slots []Slot, last bool, successor uint64) {
	if b.scratch {
		b.seq++
		return
	}
	set := (b.set + b.seq) % len(b.ec.sets)
	way := b.ec.writeBlock(set, b.traceID, b.seq, slots, last, successor)
	if b.seq == 0 {
		b.firstWay = way
	}
	b.seq++
}

// Finish seals the trace (writing any partial block with the end-of-trace
// marker and the recorded successor address — the next-trace prediction)
// and registers it in the Tag Array. Traces that never recorded an
// instruction are discarded. It reports whether a trace was registered.
func (b *Builder) Finish(successor uint64) bool {
	if len(b.pending) > 0 {
		b.flushBlock(b.pending, true, successor)
		b.pending = b.pending[:0]
	} else if b.seq > 0 {
		// Mark the final written block as last.
		set := (b.set + b.seq - 1) % len(b.ec.sets)
		for i := range b.ec.sets[set] {
			blk := &b.ec.sets[set][i]
			if blk.valid && blk.traceID == b.traceID && blk.seq == b.seq-1 {
				blk.last = true
				blk.successor = successor
				break
			}
		}
	}
	// Recycle the builder: every call site drops its pointer right after
	// Finish, so the next NewBuilder can take it over. Builders abandoned
	// without Finish are simply collected.
	b.ec.spare = b
	if b.seq == 0 || b.firstWay < 0 {
		return false
	}
	b.ec.registerTag(b.startPC, b.traceID, b.set, b.firstWay)
	b.ec.Stats.TracesBuilt++
	return true
}
