package core

import (
	"testing"

	"flywheel/internal/isa"
)

func slot(pc uint64, off uint32) Slot {
	return Slot{PC: pc, Inst: isa.Instruction{Op: isa.ADD, Rd: 1, Rs1: 2, Rs2: 3}, SeqOffset: off}
}

func smallECConfig() ECConfig {
	cfg := DefaultECConfig()
	cfg.SizeBytes = 4 << 10 // 8 sets at 2 ways * 8 slots * 8 bytes... keep it small
	return cfg
}

// buildTrace records n issue units of the given width starting at pc.
func buildTrace(ec *EC, pc uint64, startSeq uint64, units, width int) *Builder {
	b := ec.NewBuilder(pc, startSeq)
	off := uint32(0)
	for u := 0; u < units; u++ {
		var slots []Slot
		for i := 0; i < width; i++ {
			slots = append(slots, slot(pc+uint64(off)*4, off))
			off++
		}
		b.AddUnit(slots)
	}
	b.Finish(0)
	return b
}

func TestECBuildAndLookup(t *testing.T) {
	ec := NewEC(smallECConfig())
	buildTrace(ec, 0x1000, 0, 6, 3) // 18 slots = 3 blocks (8+8+2)
	r, ok := ec.Lookup(0x1000)
	if !ok {
		t.Fatal("lookup missed a registered trace")
	}
	var got []Slot
	for {
		slots, last, ok := r.ReadBlock()
		if !ok {
			t.Fatal("chain broken unexpectedly")
		}
		got = append(got, slots...)
		if last {
			break
		}
	}
	if len(got) != 18 {
		t.Fatalf("replayed %d slots, want 18", len(got))
	}
	// Unit starts every 3 slots.
	for i, s := range got {
		want := i%3 == 0
		if s.UnitStart != want {
			t.Errorf("slot %d UnitStart = %v, want %v", i, s.UnitStart, want)
		}
		if s.SeqOffset != uint32(i) {
			t.Errorf("slot %d offset = %d, want %d", i, s.SeqOffset, i)
		}
	}
	if ec.Stats.TracesBuilt != 1 || ec.Stats.TracesReplayed != 1 {
		t.Errorf("stats = %+v", ec.Stats)
	}
}

func TestECLookupMiss(t *testing.T) {
	ec := NewEC(smallECConfig())
	if _, ok := ec.Lookup(0x1234); ok {
		t.Error("lookup hit in empty cache")
	}
	buildTrace(ec, 0x1000, 0, 2, 2)
	if _, ok := ec.Lookup(0x2000); ok {
		t.Error("lookup hit for unregistered pc")
	}
}

func TestECEmptyTraceNotRegistered(t *testing.T) {
	ec := NewEC(smallECConfig())
	b := ec.NewBuilder(0x1000, 0)
	if b.Finish(0) {
		t.Error("empty trace registered")
	}
	if _, ok := ec.Lookup(0x1000); ok {
		t.Error("empty trace found")
	}
}

func TestECTraceReplacement(t *testing.T) {
	ec := NewEC(smallECConfig())
	buildTrace(ec, 0x1000, 0, 2, 2)
	buildTrace(ec, 0x1000, 100, 4, 2) // same start pc, new trace
	r, ok := ec.Lookup(0x1000)
	if !ok {
		t.Fatal("lookup missed replaced trace")
	}
	total := 0
	for {
		slots, last, ok := r.ReadBlock()
		if !ok {
			t.Fatal("broken chain on replaced trace")
		}
		total += len(slots)
		if last {
			break
		}
	}
	if total != 8 {
		t.Errorf("replaced trace has %d slots, want 8", total)
	}
}

func TestECBrokenChainDetected(t *testing.T) {
	cfg := smallECConfig() // small: 4KB, 2 ways -> 32 sets
	ec := NewEC(cfg)
	buildTrace(ec, 0x1000, 0, 16, 4) // 64 slots = 8 blocks
	// Hammer the same sets with other traces until blocks get evicted:
	// each set has 2 ways; writing 2 more traces over the same sets evicts
	// the first trace's blocks.
	buildTrace(ec, 0x1000+4, 0, 16, 4)
	buildTrace(ec, 0x1000+8, 0, 16, 4)
	r, ok := ec.Lookup(0x1000)
	if ok {
		// The tag may survive but the chain must break.
		broken := false
		for {
			_, last, rok := r.ReadBlock()
			if !rok {
				broken = true
				break
			}
			if last {
				break
			}
		}
		if !broken {
			t.Error("trace survived certain eviction")
		}
	}
	if ec.Stats.BrokenChains == 0 && ok {
		t.Error("no broken chain recorded")
	}
}

func TestECInvalidateAll(t *testing.T) {
	ec := NewEC(smallECConfig())
	buildTrace(ec, 0x1000, 0, 4, 2)
	ec.InvalidateAll()
	if _, ok := ec.Lookup(0x1000); ok {
		t.Error("trace survived invalidation")
	}
	if ec.Stats.Invalidations != 1 {
		t.Errorf("invalidations = %d", ec.Stats.Invalidations)
	}
}

func TestECTagCapacityEviction(t *testing.T) {
	cfg := smallECConfig()
	cfg.TagEntries = 2
	ec := NewEC(cfg)
	buildTrace(ec, 0x1000, 0, 1, 2)
	buildTrace(ec, 0x2000, 0, 1, 2)
	buildTrace(ec, 0x3000, 0, 1, 2) // evicts LRU tag (0x1000)
	if _, ok := ec.Lookup(0x1000); ok {
		t.Error("LRU tag survived eviction")
	}
	if _, ok := ec.Lookup(0x3000); !ok {
		t.Error("newest tag missing")
	}
}

func TestECPartialBlockGetsEndMarker(t *testing.T) {
	ec := NewEC(smallECConfig())
	buildTrace(ec, 0x1000, 0, 1, 3) // 3 slots: one partial block
	r, ok := ec.Lookup(0x1000)
	if !ok {
		t.Fatal("lookup missed")
	}
	slots, last, rok := r.ReadBlock()
	if !rok || !last {
		t.Errorf("partial block: ok=%v last=%v", rok, last)
	}
	if len(slots) != 3 {
		t.Errorf("slots = %d, want 3", len(slots))
	}
}

func TestECFullBlockEndMarker(t *testing.T) {
	ec := NewEC(smallECConfig())
	buildTrace(ec, 0x1000, 0, 2, 4) // exactly one full 8-slot block
	r, ok := ec.Lookup(0x1000)
	if !ok {
		t.Fatal("lookup missed")
	}
	slots, last, rok := r.ReadBlock()
	if !rok || !last || len(slots) != 8 {
		t.Errorf("full-block trace: ok=%v last=%v len=%d", rok, last, len(slots))
	}
}

func TestBuilderFullSignal(t *testing.T) {
	cfg := smallECConfig()
	cfg.MaxTraceBlocks = 2
	ec := NewEC(cfg)
	b := ec.NewBuilder(0x1000, 0)
	var off uint32
	for u := 0; u < 4; u++ {
		var slots []Slot
		for i := 0; i < 8; i++ {
			slots = append(slots, slot(0x1000+uint64(off)*4, off))
			off++
		}
		b.AddUnit(slots)
	}
	if !b.Full() {
		t.Error("builder did not signal full at cap")
	}
	// Units past the cap still record (drain slack).
	if b.Units() != 4 {
		t.Errorf("units = %d, want 4", b.Units())
	}
	if !b.Finish(0) {
		t.Error("full trace failed to finish")
	}
}
