package core

import (
	"flywheel/internal/isa"
)

// Two-phase register renaming (§3.5, "direct access register file").
//
// Phase one (Register Rename, front-end): every architected register owns a
// pool of physical registers; a destination is renamed to the *next* logical
// entry of its pool (a rotating allocation), producing a logical identifier
// (LID). The pool bounds how many in-flight instructions may target the same
// architected register — exhaustion stalls rename, the capacity limitation
// the paper measures in Figure 11.
//
// Phase two (Register Update, back-end): the LID is remapped to a physical
// offset through the Remapping Table (RT). The Future Remapping Table (FRT)
// tracks the latest *committed* value per architected register (like the
// Pentium 4 Retirement RAT) and is copied into the RT at every trace-change
// checkpoint, so LIDs restart from zero in each trace and traces replay with
// preserved mappings. The Speculative Remapping Table (SRT) shadows the FRT
// at the Update stage so a cleanly-ended trace can swap tables in one cycle
// instead of waiting for retirement.
//
// The timing model tracks all three tables plus per-pool occupancy exactly;
// physical data movement is architecturally irrelevant here because the
// oracle executes values (see DESIGN.md).

// PoolConfig sizes the per-architected-register physical pools.
type PoolConfig struct {
	// TotalRegs is the physical register file size (512 for Flywheel).
	TotalRegs int
	// MinPool and MaxPool bound per-register pool sizes under adaptive
	// redistribution.
	MinPool int
	MaxPool int
}

// DefaultPoolConfig returns the Table 2 Flywheel register file: 512
// physical entries over 64 architected registers (8 each to start).
func DefaultPoolConfig() PoolConfig {
	return PoolConfig{TotalRegs: 512, MinPool: 2, MaxPool: 16}
}

// Renamer implements both phases plus the adaptive pool redistribution
// of [12]: stall counters per architected register are examined
// periodically, and registers that bottleneck get entries from rarely
// written ones (invalidating the EC, whose stored LIDs become stale).
type Renamer struct {
	cfg PoolConfig
	// size is the pool capacity per architected register.
	size [isa.NumArchRegs]int
	// head is the next LID per architected register, reset per trace.
	head [isa.NumArchRegs]uint16
	// inFlight counts un-retired destinations per architected register.
	inFlight [isa.NumArchRegs]int
	// stalls counts rename stalls per architected register since the last
	// redistribution decision.
	stalls [isa.NumArchRegs]uint64

	// Remapping table state: rot is the rotation applied when mapping
	// LIDs to physical offsets (the XOR/subtract trick of §3.4); the
	// value itself only matters for the fidelity checks in tests.
	rt  [isa.NumArchRegs]uint16
	frt [isa.NumArchRegs]uint16
	srt [isa.NumArchRegs]uint16

	// Stats.
	StallEvents     uint64
	Checkpoints     uint64
	SRTSwaps        uint64
	Redistributions uint64
}

// NewRenamer builds a renamer with pools split evenly.
func NewRenamer(cfg PoolConfig) *Renamer {
	r := &Renamer{cfg: cfg}
	per := cfg.TotalRegs / isa.NumArchRegs
	if per < cfg.MinPool {
		per = cfg.MinPool
	}
	for i := range r.size {
		r.size[i] = per
	}
	return r
}

// PoolSize returns the current pool capacity of an architected register.
func (r *Renamer) PoolSize(reg isa.Reg) int { return r.size[reg] }

// CanRename reports whether a destination register can be renamed now:
// the pool must keep one entry for the last committed value, so at most
// size-1 destinations may be in flight.
func (r *Renamer) CanRename(rd isa.Reg) bool {
	if rd == isa.RegNone || rd == 0 {
		return true
	}
	return r.inFlight[rd] < r.size[rd]-1
}

// CanAcquire reports whether n more in-flight destinations fit in rd's pool
// (trace replay issues whole units, which may contain several writers of
// the same architected register).
func (r *Renamer) CanAcquire(rd isa.Reg, n int) bool {
	if rd == isa.RegNone || rd == 0 || !rd.Valid() {
		return true
	}
	return r.inFlight[rd]+n <= r.size[rd]-1
}

// AcquireDest claims a pool entry for an in-flight destination during
// replay (creation mode claims it in Rename).
func (r *Renamer) AcquireDest(rd isa.Reg) {
	if rd == isa.RegNone || rd == 0 || !rd.Valid() {
		return
	}
	r.inFlight[rd]++
}

// NoteStall records a rename stall on rd (feeds redistribution).
func (r *Renamer) NoteStall(rd isa.Reg) {
	r.StallEvents++
	if rd.Valid() {
		r.stalls[rd]++
	}
}

// Rename performs phase one for one instruction: it assigns the destination
// the next logical pool entry and returns the LIDs (dest, src1, src2).
// Callers must have checked CanRename.
func (r *Renamer) Rename(in isa.Instruction) [3]uint16 {
	var lid [3]uint16
	read := func(reg isa.Reg) uint16 {
		if reg == isa.RegNone || !reg.Valid() {
			return 0
		}
		return r.head[reg]
	}
	lid[1], lid[2] = read(in.Rs1), read(in.Rs2)
	if in.HasDest() {
		r.head[in.Rd]++
		if int(r.head[in.Rd]) >= r.size[in.Rd] {
			r.head[in.Rd] = 0
		}
		lid[0] = r.head[in.Rd]
		r.inFlight[in.Rd]++
	}
	return lid
}

// RetireDest releases the pool entry of a retiring destination and updates
// the FRT with its physical mapping.
func (r *Renamer) RetireDest(rd isa.Reg, lid uint16) {
	if rd == isa.RegNone || rd == 0 || !rd.Valid() {
		return
	}
	if r.inFlight[rd] > 0 {
		r.inFlight[rd]--
	}
	r.frt[rd] = r.physical(rd, lid)
}

// UpdateSRT shadows the Update-stage mapping of a destination (§3.5).
func (r *Renamer) UpdateSRT(rd isa.Reg, lid uint16) {
	if rd == isa.RegNone || rd == 0 || !rd.Valid() {
		return
	}
	r.srt[rd] = r.physical(rd, lid)
}

// physical maps (reg, LID) to the physical offset inside the register
// pool under the current rotation.
func (r *Renamer) physical(reg isa.Reg, lid uint16) uint16 {
	return uint16((int(lid) + int(r.rt[reg])) % r.size[reg])
}

// ResetTrace restarts LID generation for a new trace (the Rename Table is
// reset and LIDs start from zero, §3.5).
func (r *Renamer) ResetTrace() {
	for i := range r.head {
		r.head[i] = 0
	}
}

// CheckpointFRT performs the retirement-side checkpoint: the FRT becomes
// the RT, so LID zero maps to the latest committed value of every register.
func (r *Renamer) CheckpointFRT() {
	r.rt = r.frt
	r.Checkpoints++
	r.ResetTrace()
}

// CheckpointSRT swaps the speculative table into the RT (the one-cycle
// trace-change path available when the end of trace is detected before the
// Register Update stage).
func (r *Renamer) CheckpointSRT() {
	r.rt = r.srt
	r.SRTSwaps++
	r.ResetTrace()
}

// InFlight returns the number of in-flight destinations for a register
// (for tests).
func (r *Renamer) InFlight(reg isa.Reg) int { return r.inFlight[reg] }

// RedistributionPlan describes a pool rebalance decision.
type RedistributionPlan struct {
	Changed bool
	// Grown and Shrunk list the registers whose pools changed (for logs).
	Grown  []isa.Reg
	Shrunk []isa.Reg
}

// MaybeRedistribute inspects the stall counters and rebalances pools:
// registers responsible for most stalls take entries from pools with no
// recent pressure. It returns whether anything changed (the caller must
// then invalidate the EC and charge the redistribution penalty, §3.5).
func (r *Renamer) MaybeRedistribute(minStalls uint64) RedistributionPlan {
	plan := RedistributionPlan{}
	for {
		// Find the most-stalled register eligible to grow and the
		// least-stalled donor eligible to shrink.
		hot, cold := -1, -1
		for i := range r.stalls {
			if r.size[i] < r.cfg.MaxPool && r.stalls[i] >= minStalls &&
				(hot < 0 || r.stalls[i] > r.stalls[hot]) {
				hot = i
			}
		}
		if hot < 0 {
			break
		}
		for i := range r.stalls {
			if i == hot || r.size[i] <= r.cfg.MinPool {
				continue
			}
			// Donors must be idle (no stalls, no in-flight pressure).
			if r.stalls[i] == 0 && r.inFlight[i] < r.size[i]-1 {
				if cold < 0 || r.size[i] > r.size[cold] {
					cold = i
				}
			}
		}
		if cold < 0 {
			break
		}
		r.size[hot]++
		r.size[cold]--
		r.stalls[hot] = 0
		plan.Changed = true
		plan.Grown = append(plan.Grown, isa.Reg(hot))
		plan.Shrunk = append(plan.Shrunk, isa.Reg(cold))
	}
	for i := range r.stalls {
		r.stalls[i] = 0
	}
	if plan.Changed {
		r.Redistributions++
		// Pool shapes changed: every LID mapping is stale. Restart clean.
		for i := range r.head {
			r.head[i] = 0
			if int(r.rt[i]) >= r.size[i] {
				r.rt[i] = 0
			}
			if int(r.frt[i]) >= r.size[i] {
				r.frt[i] = 0
			}
			if int(r.srt[i]) >= r.size[i] {
				r.srt[i] = 0
			}
		}
	}
	return plan
}
