package core

import (
	"testing"
	"testing/quick"

	"flywheel/internal/isa"
)

func addTo(rd int) isa.Instruction {
	return isa.Instruction{Op: isa.ADD, Rd: isa.IntReg(rd), Rs1: isa.IntReg(2), Rs2: isa.IntReg(3)}
}

func TestRenamerPoolExhaustion(t *testing.T) {
	cfg := PoolConfig{TotalRegs: 256, MinPool: 2, MaxPool: 8} // 4 per register
	r := NewRenamer(cfg)
	rd := isa.IntReg(5)
	in := addTo(5)
	// Pool of 4: up to 3 in-flight destinations.
	for i := 0; i < 3; i++ {
		if !r.CanRename(rd) {
			t.Fatalf("rename %d rejected with pool of 4", i)
		}
		r.Rename(in)
	}
	if r.CanRename(rd) {
		t.Error("4th in-flight destination accepted (must keep committed entry)")
	}
	r.RetireDest(rd, 1)
	if !r.CanRename(rd) {
		t.Error("rename still blocked after retirement freed an entry")
	}
}

func TestRenamerLIDsSequentialAndWrapping(t *testing.T) {
	r := NewRenamer(DefaultPoolConfig()) // 8 per register
	in := addTo(7)
	var lids []uint16
	for i := 0; i < 7; i++ {
		lid := r.Rename(in)
		lids = append(lids, lid[0])
		r.RetireDest(isa.IntReg(7), lid[0])
	}
	// head starts at 0; first destination gets LID 1, wrapping mod 8.
	want := []uint16{1, 2, 3, 4, 5, 6, 7}
	for i := range want {
		if lids[i] != want[i] {
			t.Errorf("lid[%d] = %d, want %d", i, lids[i], want[i])
		}
	}
	lid := r.Rename(in)
	if lid[0] != 0 {
		t.Errorf("wrapped lid = %d, want 0", lid[0])
	}
}

func TestRenamerSourceLIDsTrackLastWriter(t *testing.T) {
	r := NewRenamer(DefaultPoolConfig())
	w := addTo(4)
	lid := r.Rename(w)
	read := isa.Instruction{Op: isa.ADD, Rd: isa.IntReg(6), Rs1: isa.IntReg(4), Rs2: isa.IntReg(5)}
	got := r.Rename(read)
	if got[1] != lid[0] {
		t.Errorf("source lid = %d, want writer's %d", got[1], lid[0])
	}
	if got[2] != 0 {
		t.Errorf("untouched source lid = %d, want 0", got[2])
	}
}

func TestRenamerTraceResetRestartsLIDs(t *testing.T) {
	r := NewRenamer(DefaultPoolConfig())
	in := addTo(9)
	first := r.Rename(in)
	r.RetireDest(isa.IntReg(9), first[0])
	r.CheckpointFRT()
	second := r.Rename(in)
	if second[0] != first[0] {
		t.Errorf("after checkpoint, first lid = %d, want %d (restart from zero)", second[0], first[0])
	}
}

func TestRenamerCheckpointMapsLIDZeroToCommitted(t *testing.T) {
	// After a checkpoint, physical(reg, 0) must equal the physical
	// register holding the last committed value.
	r := NewRenamer(DefaultPoolConfig())
	in := addTo(3)
	rd := isa.IntReg(3)
	var lastPO uint16
	for i := 0; i < 5; i++ {
		lid := r.Rename(in)
		lastPO = r.physical(rd, lid[0])
		r.RetireDest(rd, lid[0])
	}
	r.CheckpointFRT()
	if got := r.physical(rd, 0); got != lastPO {
		t.Errorf("physical(rd, 0) = %d after checkpoint, want %d", got, lastPO)
	}
}

func TestRenamerSRTSwapEquivalentToFRTForCleanTrace(t *testing.T) {
	// When every instruction of the trace retires, SRT and FRT agree, so
	// the one-cycle swap gives the same mapping as the retirement path.
	a := NewRenamer(DefaultPoolConfig())
	b := NewRenamer(DefaultPoolConfig())
	in := addTo(6)
	rd := isa.IntReg(6)
	for i := 0; i < 4; i++ {
		la := a.Rename(in)
		lb := b.Rename(in)
		a.UpdateSRT(rd, la[0])
		b.UpdateSRT(rd, lb[0])
		a.RetireDest(rd, la[0])
		b.RetireDest(rd, lb[0])
	}
	a.CheckpointFRT()
	b.CheckpointSRT()
	if a.physical(rd, 0) != b.physical(rd, 0) {
		t.Errorf("FRT and SRT checkpoints disagree: %d vs %d", a.physical(rd, 0), b.physical(rd, 0))
	}
}

func TestRenamerRotationProperty(t *testing.T) {
	// Property: for any sequence of renames+retirements followed by a
	// checkpoint, renaming k fresh destinations gives physical offsets
	// that never collide with the committed entry until the pool wraps.
	f := func(nOps uint8) bool {
		r := NewRenamer(DefaultPoolConfig())
		rd := isa.IntReg(11)
		in := addTo(11)
		n := int(nOps%20) + 1
		var lid uint16
		for i := 0; i < n; i++ {
			l := r.Rename(in)
			lid = l[0]
			r.RetireDest(rd, lid)
		}
		r.CheckpointFRT()
		committed := r.physical(rd, 0)
		size := r.PoolSize(rd)
		for i := 1; i < size; i++ {
			l := r.Rename(in)
			if r.physical(rd, l[0]) == committed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRedistributionMovesCapacity(t *testing.T) {
	r := NewRenamer(PoolConfig{TotalRegs: 256, MinPool: 2, MaxPool: 8})
	hot := isa.IntReg(5)
	for i := 0; i < 100; i++ {
		r.NoteStall(hot)
	}
	plan := r.MaybeRedistribute(50)
	if !plan.Changed {
		t.Fatal("redistribution did not trigger")
	}
	if r.PoolSize(hot) <= 4 {
		t.Errorf("hot pool = %d, want grown above 4", r.PoolSize(hot))
	}
	total := 0
	for i := 0; i < isa.NumArchRegs; i++ {
		total += r.PoolSize(isa.Reg(i))
	}
	if total != 256 {
		t.Errorf("total pool entries = %d, want conserved 256", total)
	}
	if r.Redistributions != 1 {
		t.Errorf("redistributions = %d", r.Redistributions)
	}
}

func TestRedistributionRespectsThreshold(t *testing.T) {
	r := NewRenamer(DefaultPoolConfig())
	r.NoteStall(isa.IntReg(5)) // one stall, below threshold
	if plan := r.MaybeRedistribute(50); plan.Changed {
		t.Error("redistribution triggered below threshold")
	}
}

func TestRedistributionBounds(t *testing.T) {
	r := NewRenamer(PoolConfig{TotalRegs: 256, MinPool: 2, MaxPool: 6})
	hot := isa.IntReg(5)
	for round := 0; round < 10; round++ {
		for i := 0; i < 1000; i++ {
			r.NoteStall(hot)
		}
		r.MaybeRedistribute(10)
	}
	if got := r.PoolSize(hot); got > 6 {
		t.Errorf("pool grew to %d, above MaxPool 6", got)
	}
	for i := 0; i < isa.NumArchRegs; i++ {
		if r.PoolSize(isa.Reg(i)) < 2 {
			t.Errorf("pool %d shrank below MinPool", i)
		}
	}
}

func TestCanAcquireCountsUnitWAW(t *testing.T) {
	r := NewRenamer(PoolConfig{TotalRegs: 256, MinPool: 2, MaxPool: 8}) // 4 per reg
	rd := isa.IntReg(8)
	if !r.CanAcquire(rd, 3) {
		t.Error("3 writers rejected with pool of 4")
	}
	if r.CanAcquire(rd, 4) {
		t.Error("4 writers accepted with pool of 4")
	}
	r.AcquireDest(rd)
	if r.CanAcquire(rd, 3) {
		t.Error("3 more writers accepted with 1 already in flight")
	}
	if r.InFlight(rd) != 1 {
		t.Errorf("in flight = %d", r.InFlight(rd))
	}
}

func TestR0NeverConstrains(t *testing.T) {
	r := NewRenamer(PoolConfig{TotalRegs: 128, MinPool: 2, MaxPool: 4})
	for i := 0; i < 100; i++ {
		if !r.CanRename(isa.IntReg(0)) || !r.CanAcquire(isa.IntReg(0), 5) {
			t.Fatal("r0 constrained")
		}
		r.AcquireDest(isa.IntReg(0))
	}
	if !r.CanRename(isa.RegNone) {
		t.Error("RegNone constrained")
	}
}
