package core

import (
	"flywheel/internal/emu"
	"flywheel/internal/isa"
	"flywheel/internal/pipe"
)

// Trace-execution mode (§3.3): the front-end and wake-up/select logic are
// gated; issue units stream from the Execution Cache through the fill
// buffer into the Register Update stage and the functional units, one unit
// per cycle, VLIW-style — an issue unit only leaves when every operand is
// ready and every functional unit is free, so replay naturally slows down
// when cache behaviour differs from creation time.

// traceRun is the replay state of one trace.
type traceRun struct {
	reader   Reader
	startSeq uint64
	// buffered holds slots delivered by the fill buffer, in issue order.
	buffered []Slot
	// Single outstanding block read (the data array has one read port;
	// the two-block fill buffer hides the latency, §3.3).
	readPending bool
	readReadyAt int64
	endSeen     bool
	broken      bool
	// blockedUntil gates the first issue after a trace-change checkpoint.
	blockedUntil int64
	// maxOff tracks the largest sequence offset seen (trace length guess
	// for next-trace prefetch).
	maxOff     uint32
	prefetched bool
	// successorPC is the trace's recorded follow-on address (next-trace
	// prediction), valid once endSeen.
	successorPC uint64
}

// done reports that no more blocks remain to read.
func (r *traceRun) done() bool { return r.endSeen || r.broken }

// fillCapSlots is how many slots the two-block fill buffer holds.
func (c *Core) fillCapSlots() int { return 2 * c.cfg.EC.BlockSlots }

// replayTick advances trace execution by one back-end edge.
func (c *Core) replayTick(now int64) {
	p := c.bePeriod()
	c.pumpReads(now, p)
	if c.draining {
		if c.rob.Len() == 0 && now >= c.drainReadyAt {
			c.finishDivergence(now)
		}
		return
	}
	if now < c.redistStallUntil {
		return
	}
	c.prefetchNext(now)
	c.issueUnit(now, p)
	c.maybeFinishTrace(now, p)
}

// pumpReads completes and schedules data-array block reads. The current
// trace has priority; the prefetched next trace reads only once the current
// one has no more blocks to fetch.
func (c *Core) pumpReads(now, p int64) {
	for _, run := range []*traceRun{c.cur, c.next} {
		if run == nil || !run.readPending || now < run.readReadyAt {
			continue
		}
		run.readPending = false
		slots, last, ok := run.reader.ReadBlock()
		if !ok {
			run.broken = true
			continue
		}
		for _, s := range slots {
			if s.SeqOffset > run.maxOff {
				run.maxOff = s.SeqOffset
			}
		}
		run.buffered = append(run.buffered, slots...)
		if last {
			run.endSeen = true
			run.successorPC = run.reader.Successor()
		}
	}
	anyPending := (c.cur != nil && c.cur.readPending) || (c.next != nil && c.next.readPending)
	if anyPending {
		return
	}
	start := func(run *traceRun) bool {
		if run == nil || run.done() || len(run.buffered) >= c.fillCapSlots() {
			return false
		}
		run.readPending = true
		run.readReadyAt = now + int64(c.cfg.EC.ReadCycles)*p
		return true
	}
	if c.cur != nil && !c.cur.done() {
		start(c.cur)
		return
	}
	start(c.next)
}

// prefetchNext looks up the follow-on trace as soon as the end-of-trace
// marker enters the fill buffer, hiding the tag lookup and first block read
// behind the tail of the current trace (§3.5: with the SRT the trace-change
// penalty shrinks to about a cycle). The lookup address is the *recorded*
// successor — a next-trace prediction: if execution actually leaves the
// trace elsewhere, pairing detects the mismatch and charges a divergence.
func (c *Core) prefetchNext(now int64) {
	run := c.cur
	if run == nil || !run.endSeen || run.prefetched || c.next != nil {
		return
	}
	run.prefetched = true
	if run.successorPC == 0 {
		return
	}
	guess := run.startSeq + uint64(run.maxOff) + 1
	if r, hit := c.ec.Lookup(run.successorPC); hit {
		c.next = &traceRun{reader: r, startSeq: guess}
	}
}

// issueUnit issues at most one complete issue unit.
func (c *Core) issueUnit(now, p int64) {
	run := c.cur
	if run == nil || now < run.blockedUntil || len(run.buffered) == 0 {
		return
	}
	// Find the unit boundary. A unit is issuable only when its end is
	// known: either the next UnitStart is buffered or the trace has no
	// more blocks (the paper's corner case of units split across blocks
	// arriving late shows up here as a stall).
	end := 1
	for end < len(run.buffered) && !run.buffered[end].UnitStart {
		end++
	}
	if end == len(run.buffered) && !run.done() {
		c.stats.ReplayFillStalls++
		return
	}
	unit := run.buffered[:end]

	// Pair slots with oracle records; any PC mismatch means the trace's
	// recorded path diverged from actual execution. Records are gathered
	// into a reused scratch buffer — arena slots are only claimed once the
	// whole unit is known to issue, so a stalled unit costs no allocation
	// and no cleanup.
	recs := c.replayRecs[:0]
	for _, s := range unit {
		seq := run.startSeq + uint64(s.SeqOffset)
		rec, ok := c.window.At(seq)
		if !ok || c.window.Consumed(seq) || rec.PC != s.PC {
			if debugDivergence != nil {
				debugDivergence(run, s, rec, ok, c.window.Consumed(seq))
			}
			c.replayRecs = recs
			c.stats.Divergences++
			c.startDrain(now + int64(c.cfg.DivergenceDetectCycles)*p)
			return
		}
		recs = append(recs, rec)
	}
	c.replayRecs = recs

	// Structural checks for the whole unit (atomic issue).
	memOps := 0
	var destNeed [isa.NumArchRegs]int
	var fuNeed [pipe.NumFUGroups]int
	for _, rec := range recs {
		in := rec.Inst
		switch in.Class() {
		case isa.ClassLoad, isa.ClassStore:
			memOps++
		}
		if in.HasDest() {
			destNeed[in.Rd]++
		}
		fuNeed[pipe.GroupOf(in.Class())]++
	}
	if c.rob.Len()+len(recs) > c.rob.Cap() || c.lsq.Len()+memOps > c.lsq.Cap() {
		c.stats.ReplayStallResource++
		return
	}
	for reg, n := range destNeed {
		if n == 0 {
			continue
		}
		if !c.ren.CanAcquire(isa.Reg(reg), n) {
			c.ren.NoteStall(isa.Reg(reg))
			c.stats.RenameStalls++
			return
		}
	}
	c.fu.BeginCycle(now)
	for g, n := range fuNeed {
		if n > 0 && c.fu.AvailableFor(pipe.FUGroup(g), now) < n {
			c.stats.ReplayStallResource++
			return
		}
	}
	// Scoreboard: every operand of every slot must be ready (VLIW-style).
	for i, rec := range recs {
		if !c.rat.SourceRegsReady(rec.Inst, now) {
			c.stats.ReplayStallData++
			if debugStall != nil {
				d := pipe.NewDynInst(rec)
				d.LID = unit[i].LID
				debugStall(c, d, now)
			}
			return
		}
	}

	// Commit the unit: claim arena slots and execute.
	insts := c.replayInsts[:0]
	for i, rec := range recs {
		d := c.arena.Alloc(rec)
		d.LID = unit[i].LID
		insts = append(insts, d)
	}
	c.replayInsts = insts
	for _, d := range insts {
		in := d.Inst()
		c.rat.Link(d)
		c.rob.Push(d)
		if d.IsLoad() || d.IsStore() {
			c.lsq.Insert(d)
		}
		if in.HasDest() {
			c.ren.AcquireDest(in.Rd)
			c.ren.UpdateSRT(in.Rd, d.LID[0])
		}
		c.fu.TryReserve(d.Class(), now, p)
		c.executeInst(d, now, p)
		c.window.Consume(d.Seq())
		c.stats.IssuedReplay++
		c.stats.UpdateOps++
	}
	run.buffered = append(run.buffered[:0], run.buffered[end:]...)
	c.stats.ReplayUnits++
	// Forward progress: clear the failed-resume latch.
	c.lastFailedResume = noFailedResume
}

// startDrain begins divergence handling: stop issuing, wait for the ROB to
// empty (the mispredicted branch retires within that window) and for the
// detection depth to elapse, then take the FRT checkpoint.
func (c *Core) startDrain(readyAt int64) {
	c.draining = true
	c.drainReadyAt = readyAt
	c.cur = nil
	c.next = nil
}

// finishDivergence runs once the pipeline drained after a divergence.
func (c *Core) finishDivergence(now int64) {
	c.draining = false
	c.ren.CheckpointFRT()
	c.afterTraceExit(now, true)
}

// maybeFinishTrace handles clean trace ends and broken chains.
func (c *Core) maybeFinishTrace(now, p int64) {
	run := c.cur
	if run == nil || len(run.buffered) != 0 || run.readPending || !run.done() {
		return
	}
	if run.broken {
		c.stats.BrokenReplays++
	}
	// Clean prefix consumed: the SRT matches the last updated mapping, so
	// the one-cycle swap applies (§3.5).
	c.ren.CheckpointSRT()
	c.stats.TraceChanges++

	if c.next != nil && !run.broken {
		// Prefetched (speculative) follow-on trace: swap in with the
		// one-cycle SRT penalty. If the successor prediction was wrong,
		// the new trace's pairing will diverge immediately.
		c.cur = c.next
		c.next = nil
		c.cur.blockedUntil = now + int64(c.cfg.CheckpointCycles)*p
		return
	}
	c.next = nil
	c.afterTraceExit(now, false)
}

// afterTraceExit decides where execution continues after leaving a trace:
// another trace if the EC has one for the resume address, otherwise the
// front-end restarts in trace-creation mode. After a divergence the resume
// point may sit inside a partially consumed region whose stored traces can
// never pair again; retrying the same resume point would livelock, so a
// repeat failure forces trace creation.
func (c *Core) afterTraceExit(now int64, diverged bool) {
	resume, ok := c.window.NextUnconsumed()
	if !ok {
		c.cur, c.next = nil, nil
		c.exitToBuild(now)
		return
	}
	gateAt := now + int64(c.cfg.CheckpointCycles)*c.bePeriod()
	retryable := true
	if diverged {
		if resume.Seq == c.lastFailedResume {
			retryable = false
		}
		c.lastFailedResume = resume.Seq
	}
	if retryable {
		if r, hit := c.ec.Lookup(resume.PC); hit {
			c.cur = &traceRun{reader: r, startSeq: resume.Seq, blockedUntil: gateAt}
			c.next = nil
			if c.mode != ModeReplay {
				c.switchMode(now, ModeReplay)
			}
			return
		}
	}
	c.cur, c.next = nil, nil
	c.gate(resume.Seq, gateAt)
	c.exitToBuild(now)
}

// exitToBuild returns to trace-creation mode at the resume point.
func (c *Core) exitToBuild(now int64) {
	c.switchMode(now, ModeBuild)
	c.builder = nil // the next dispatch opens a fresh trace
	c.sealing = false
	c.fetchStallUntil = now + int64(c.cfg.RedirectCycles)*c.fe.Period()
}

// debugDivergence, when non-nil, observes every divergence (test hook).
var debugDivergence func(run *traceRun, s Slot, rec emu.Trace, ok, consumed bool)

// debugStall, when non-nil, observes scoreboard stalls (test hook).
var debugStall func(c *Core, d *pipe.DynInst, now int64)
