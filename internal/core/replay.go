package core

import (
	"flywheel/internal/emu"
	"flywheel/internal/isa"
	"flywheel/internal/pipe"
)

// Trace-execution mode (§3.3): the front-end and wake-up/select logic are
// gated; issue units stream from the Execution Cache through the fill
// buffer into the Register Update stage and the functional units, one unit
// per cycle, VLIW-style — an issue unit only leaves when every operand is
// ready and every functional unit is free, so replay naturally slows down
// when cache behaviour differs from creation time.

// pendingUnit caches the head issue unit's edge-invariant work across
// stall retries. Finding the unit boundary, pairing slots with oracle
// records (including the divergence check) and summing structural needs
// depend only on the buffered slots and the oracle window, none of which
// change while the unit waits for resources — but the pre-cache issueUnit
// redid all of it on every back-end edge the unit stalled, which profiling
// showed was the single hottest path of a sweep. The cache is built the
// first time the unit's boundary is known and lives until the unit issues
// or its traceRun is torn down (divergence, trace end).
type pendingUnit struct {
	valid bool
	end   int // unit boundary in buffered
	// recs are the paired oracle records, aligned with buffered[:end].
	recs []emu.Trace
	// memOps, dests and fus are the unit's structural needs, with dests
	// and fus in ascending register/group order so the stall-check order
	// (and therefore every stall counter) matches the uncached loop.
	memOps int
	dests  []regNeed
	fus    []groupNeed
	// dataReadyAt is the earliest edge at which every source operand of
	// every slot is available, exact because in replay mode every producer
	// has already issued (units issue in order and execute immediately).
	// The defensive re-check at issue keeps a wrong bound from ever
	// changing behavior — it could only cost an extra scan.
	dataReadyAt int64
}

type regNeed struct {
	reg isa.Reg
	n   int
}

type groupNeed struct {
	g pipe.FUGroup
	n int
}

// traceRun is the replay state of one trace.
type traceRun struct {
	reader   Reader
	startSeq uint64
	// startPC is the address the trace was looked up at; a divergence
	// records it so the eventual rebuild at that address is recognized.
	startPC uint64
	// buffered holds slots delivered by the fill buffer, in issue order.
	buffered []Slot
	// unit caches the head unit's pairing and structural sums between
	// stalled edges.
	unit pendingUnit
	// Single outstanding block read (the data array has one read port;
	// the two-block fill buffer hides the latency, §3.3).
	readPending bool
	readReadyAt int64
	endSeen     bool
	broken      bool
	// blockedUntil gates the first issue after a trace-change checkpoint.
	blockedUntil int64
	// unitsIssued counts issue units this run delivered before it ended.
	unitsIssued int
	// maxOff tracks the largest sequence offset seen (trace length guess
	// for next-trace prefetch).
	maxOff     uint32
	prefetched bool
	// successorPC is the trace's recorded follow-on address (next-trace
	// prediction), valid once endSeen.
	successorPC uint64
}

// done reports that no more blocks remain to read.
func (r *traceRun) done() bool { return r.endSeen || r.broken }

// newRun takes a traceRun from the core's pool (or allocates one) and
// resets every field, keeping the fill and unit-cache buffers: at most two
// runs are live at a time but thousands start per simulation, so pooling
// them keeps replay allocation-free in steady state.
func (c *Core) newRun(r Reader, startSeq, startPC uint64, blockedUntil int64) *traceRun {
	run := &traceRun{}
	if n := len(c.runPool); n > 0 {
		run = c.runPool[n-1]
		c.runPool = c.runPool[:n-1]
		buffered, recs, dests, fus := run.buffered[:0], run.unit.recs[:0], run.unit.dests[:0], run.unit.fus[:0]
		*run = traceRun{buffered: buffered}
		run.unit.recs, run.unit.dests, run.unit.fus = recs, dests, fus
	}
	run.reader, run.startSeq, run.startPC, run.blockedUntil = r, startSeq, startPC, blockedUntil
	return run
}

// releaseRun returns a dropped run to the pool. Callers must drop their
// pointer: the next newRun reuses the struct in place.
func (c *Core) releaseRun(run *traceRun) {
	if run != nil && len(c.runPool) < cap(c.runPool) {
		c.runPool = append(c.runPool, run)
	}
}

// fillCapSlots is how many slots the two-block fill buffer holds.
func (c *Core) fillCapSlots() int { return 2 * c.cfg.EC.BlockSlots }

// replayTick advances trace execution by one back-end edge.
func (c *Core) replayTick(now int64) {
	p := c.bePeriod()
	c.pumpReads(now, p)
	if c.draining {
		if c.rob.Len() == 0 && now >= c.drainReadyAt {
			c.finishDivergence(now)
		}
		return
	}
	if now < c.redistStallUntil {
		return
	}
	c.prefetchNext(now)
	c.issueUnit(now, p)
	c.maybeFinishTrace(now, p)
}

// pumpReads completes and schedules data-array block reads. The current
// trace has priority; the prefetched next trace reads only once the current
// one has no more blocks to fetch.
func (c *Core) pumpReads(now, p int64) {
	for _, run := range []*traceRun{c.cur, c.next} {
		if run == nil || !run.readPending || now < run.readReadyAt {
			continue
		}
		run.readPending = false
		slots, last, ok := run.reader.ReadBlock()
		if !ok {
			run.broken = true
			continue
		}
		for _, s := range slots {
			if s.SeqOffset > run.maxOff {
				run.maxOff = s.SeqOffset
			}
		}
		run.buffered = append(run.buffered, slots...)
		if last {
			run.endSeen = true
			run.successorPC = run.reader.Successor()
		}
	}
	anyPending := (c.cur != nil && c.cur.readPending) || (c.next != nil && c.next.readPending)
	if anyPending {
		return
	}
	start := func(run *traceRun) bool {
		if run == nil || run.done() || len(run.buffered) >= c.fillCapSlots() {
			return false
		}
		run.readPending = true
		run.readReadyAt = now + int64(c.cfg.EC.ReadCycles)*p
		return true
	}
	if c.cur != nil && !c.cur.done() {
		start(c.cur)
		return
	}
	start(c.next)
}

// prefetchNext looks up the follow-on trace as soon as the end-of-trace
// marker enters the fill buffer, hiding the tag lookup and first block read
// behind the tail of the current trace (§3.5: with the SRT the trace-change
// penalty shrinks to about a cycle). The lookup address is the *recorded*
// successor — a next-trace prediction: if execution actually leaves the
// trace elsewhere, pairing detects the mismatch and charges a divergence.
func (c *Core) prefetchNext(now int64) {
	run := c.cur
	if run == nil || !run.endSeen || run.prefetched || c.next != nil {
		return
	}
	run.prefetched = true
	if run.successorPC == 0 {
		return
	}
	guess := run.startSeq + uint64(run.maxOff) + 1
	if r, hit := c.ec.Lookup(run.successorPC); hit {
		c.next = c.newRun(r, guess, run.successorPC, 0)
	}
}

// formUnit builds the head unit's cache: boundary, oracle pairing and
// structural sums. It reports whether a complete unit is available; a
// divergence is handled inside (drain started) and reported as no unit.
func (c *Core) formUnit(now, p int64) bool {
	run := c.cur
	// Find the unit boundary. A unit is issuable only when its end is
	// known: either the next UnitStart is buffered or the trace has no
	// more blocks (the paper's corner case of units split across blocks
	// arriving late shows up here as a stall).
	end := 1
	for end < len(run.buffered) && !run.buffered[end].UnitStart {
		end++
	}
	if end == len(run.buffered) && !run.done() {
		c.stats.ReplayFillStalls++
		return false
	}
	unit := run.buffered[:end]

	// Pair slots with oracle records; any PC mismatch means the trace's
	// recorded path diverged from actual execution. Records are gathered
	// into the unit cache's reused buffer — arena slots are only claimed
	// once the whole unit issues, so a stalled unit costs no allocation
	// and no cleanup.
	u := &run.unit
	recs := u.recs[:0]
	for _, s := range unit {
		seq := run.startSeq + uint64(s.SeqOffset)
		rec, ok := c.window.At(seq)
		overlap := ok && c.window.Consumed(seq)
		if !ok || overlap || rec.PC != s.PC {
			if debugDivergence != nil {
				debugDivergence(run, s, rec, ok, c.window.Consumed(seq))
			}
			u.recs = recs
			c.stats.Divergences++
			if ok || !c.window.Drained() {
				// A genuine path mismatch: the stored trace at this start
				// address is stale, and its rebuild should replace it even
				// inside a sampled warm-up's scratch span. (A failed read on
				// a drained window is just the stream ending mid-trace.)
				c.divergedPC = run.startPC
				// Storm streak: consecutive low-progress replays aborting on
				// an already-consumed record. Path-mismatch divergences are
				// normal replay dynamics and reset the streak; so does any
				// replay that got real work done. Sampled runs only — the
				// flag stays clear in exact mode, whose replay dynamics are
				// the reference sampled windows are compared against.
				if c.resumed {
					if overlap && run.unitsIssued <= stormUnitCeil {
						c.failStreak++
					} else {
						c.failStreak = 0
					}
				}
			}
			c.startDrain(now + int64(c.cfg.DivergenceDetectCycles)*p)
			return false
		}
		recs = append(recs, rec)
	}

	// Structural sums for the whole unit (atomic issue). Units are at most
	// one issue group wide, so the needs are accumulated into short sorted
	// slices (insertion keeps ascending register/group order, preserving
	// the probe order — and therefore the stall counters — of the dense
	// per-register loop this replaces).
	memOps := 0
	dataReadyAt := int64(0)
	u.dests = u.dests[:0]
	u.fus = u.fus[:0]
	for _, rec := range recs {
		in := rec.Inst
		cl := in.Class()
		if cl == isa.ClassLoad || cl == isa.ClassStore {
			memOps++
		}
		if in.HasDest() {
			addRegNeed(&u.dests, in.Rd)
		}
		addGroupNeed(&u.fus, pipe.GroupOf(cl))
		// Operand availability bound: in replay mode every older
		// instruction has issued, so producers' ResultAt are final.
		rs1, rs2 := in.SrcRegs()
		if rs1 != isa.RegNone {
			if pr := c.rat.Producer(rs1); pr != nil && pr.ResultAt > dataReadyAt {
				dataReadyAt = pr.ResultAt
			}
		}
		if rs2 != isa.RegNone {
			if pr := c.rat.Producer(rs2); pr != nil && pr.ResultAt > dataReadyAt {
				dataReadyAt = pr.ResultAt
			}
		}
	}
	u.valid = true
	u.end = end
	u.recs = recs
	u.memOps = memOps
	u.dataReadyAt = dataReadyAt
	return true
}

// addRegNeed bumps reg's count in the sorted need list.
func addRegNeed(needs *[]regNeed, reg isa.Reg) {
	s := *needs
	at := len(s)
	for i := range s {
		if s[i].reg == reg {
			s[i].n++
			return
		}
		if s[i].reg > reg {
			at = i
			break
		}
	}
	s = append(s, regNeed{})
	copy(s[at+1:], s[at:])
	s[at] = regNeed{reg, 1}
	*needs = s
}

// addGroupNeed bumps g's count in the sorted need list.
func addGroupNeed(needs *[]groupNeed, g pipe.FUGroup) {
	s := *needs
	at := len(s)
	for i := range s {
		if s[i].g == g {
			s[i].n++
			return
		}
		if s[i].g > g {
			at = i
			break
		}
	}
	s = append(s, groupNeed{})
	copy(s[at+1:], s[at:])
	s[at] = groupNeed{g, 1}
	*needs = s
}

// issueUnit issues at most one complete issue unit.
func (c *Core) issueUnit(now, p int64) {
	run := c.cur
	if run == nil || now < run.blockedUntil || len(run.buffered) == 0 {
		return
	}
	if !run.unit.valid && !c.formUnit(now, p) {
		return
	}
	u := &run.unit
	recs := u.recs
	if c.rob.Len()+len(recs) > c.rob.Cap() || c.lsq.Len()+u.memOps > c.lsq.Cap() {
		c.stats.ReplayStallResource++
		return
	}
	for _, dn := range u.dests {
		if !c.ren.CanAcquire(dn.reg, dn.n) {
			c.ren.NoteStall(dn.reg)
			c.stats.RenameStalls++
			return
		}
	}
	c.fu.BeginCycle(now)
	for _, fn := range u.fus {
		if c.fu.AvailableFor(fn.g, now) < fn.n {
			c.stats.ReplayStallResource++
			return
		}
	}
	// Scoreboard: every operand of every slot must be ready (VLIW-style).
	// The cached bound short-circuits the common stalled edges; at or past
	// the bound the exact per-slot check still runs (it is cheap once, and
	// it keeps a stale bound from ever issuing early).
	if u.dataReadyAt > now {
		c.stats.ReplayStallData++
		return
	}
	for i, rec := range recs {
		if !c.rat.SourceRegsReady(rec.Inst, now) {
			c.stats.ReplayStallData++
			if debugStall != nil {
				d := pipe.NewDynInst(rec)
				d.LID = run.buffered[i].LID
				debugStall(c, d, now)
			}
			return
		}
	}

	// Commit the unit: claim arena slots and execute.
	insts := c.replayInsts[:0]
	for i, rec := range recs {
		d := c.arena.Alloc(rec)
		d.LID = run.buffered[i].LID
		insts = append(insts, d)
	}
	c.replayInsts = insts
	for _, d := range insts {
		in := d.Inst()
		c.rat.Link(d)
		c.rob.Push(d)
		if d.IsLoad() || d.IsStore() {
			c.lsq.Insert(d)
		}
		if in.HasDest() {
			c.ren.AcquireDest(in.Rd)
			c.ren.UpdateSRT(in.Rd, d.LID[0])
		}
		c.fu.TryReserve(d.Class(), now, p)
		c.executeInst(d, now, p)
		c.window.Consume(d.Seq())
		c.stats.IssuedReplay++
		c.stats.UpdateOps++
	}
	run.buffered = append(run.buffered[:0], run.buffered[u.end:]...)
	u.valid = false
	run.unitsIssued++
	c.stats.ReplayUnits++
	// Forward progress: clear the failed-resume latch. The low-progress
	// divergence streak is per-run, not per-unit: the storm pattern being
	// broken issues a unit or two before every divergence.
	c.lastFailedResume = noFailedResume
}

// startDrain begins divergence handling: stop issuing, wait for the ROB to
// empty (the mispredicted branch retires within that window) and for the
// detection depth to elapse, then take the FRT checkpoint.
func (c *Core) startDrain(readyAt int64) {
	c.draining = true
	c.drainReadyAt = readyAt
	c.releaseRun(c.cur)
	c.releaseRun(c.next)
	c.cur = nil
	c.next = nil
}

// finishDivergence runs once the pipeline drained after a divergence.
func (c *Core) finishDivergence(now int64) {
	c.draining = false
	c.ren.CheckpointFRT()
	c.afterTraceExit(now, true)
}

// maybeFinishTrace handles clean trace ends and broken chains.
func (c *Core) maybeFinishTrace(now, p int64) {
	run := c.cur
	if run == nil || len(run.buffered) != 0 || run.readPending || !run.done() {
		return
	}
	if run.broken {
		c.stats.BrokenReplays++
	}
	// Clean prefix consumed: the SRT matches the last updated mapping, so
	// the one-cycle swap applies (§3.5).
	c.ren.CheckpointSRT()
	c.stats.TraceChanges++

	if c.next != nil && !run.broken {
		// Prefetched (speculative) follow-on trace: swap in with the
		// one-cycle SRT penalty. If the successor prediction was wrong,
		// the new trace's pairing will diverge immediately.
		c.cur = c.next
		c.next = nil
		c.releaseRun(run)
		c.cur.blockedUntil = now + int64(c.cfg.CheckpointCycles)*p
		return
	}
	c.releaseRun(c.next)
	c.next = nil
	c.afterTraceExit(now, false)
}

// afterTraceExit decides where execution continues after leaving a trace:
// another trace if the EC has one for the resume address, otherwise the
// front-end restarts in trace-creation mode. After a divergence the resume
// point may sit inside a partially consumed region whose stored traces can
// never pair again; retrying the same resume point would livelock, so a
// repeat failure forces trace creation.
func (c *Core) afterTraceExit(now int64, diverged bool) {
	// Whatever runs are still attached are finished here: every path below
	// replaces them (with a new run, or with build mode).
	c.releaseRun(c.cur)
	c.releaseRun(c.next)
	c.cur, c.next = nil, nil
	resume, ok := c.window.NextUnconsumed()
	if !ok {
		c.exitToBuild(now)
		return
	}
	gateAt := now + int64(c.cfg.CheckpointCycles)*c.bePeriod()
	retryable := true
	if diverged {
		if resume.Seq == c.lastFailedResume {
			retryable = false
		}
		c.lastFailedResume = resume.Seq
	}
	if retryable && c.failStreak >= replayFailCap {
		// Replay keeps diverging with almost no progress: it is cycling
		// over a half-executed region, each entry issuing a unit or two
		// before hitting an already-consumed record, and the out-of-order
		// units it does issue scatter fresh holes ahead (a self-sustaining
		// divergence storm). The failed-resume latch cannot see the cycle —
		// every attempt makes token progress at a different resume point —
		// so the streak forces one trace-creation interlude, which heals
		// the region by walking the window's unconsumed records in order.
		c.failStreak = 0
		retryable = false
	}
	if retryable {
		if r, hit := c.ec.Lookup(resume.PC); hit {
			c.cur = c.newRun(r, resume.Seq, resume.PC, gateAt)
			if c.mode != ModeReplay {
				c.switchMode(now, ModeReplay)
			}
			return
		}
	}
	c.gate(resume.Seq, gateAt)
	c.exitToBuild(now)
}

// exitToBuild returns to trace-creation mode at the resume point.
func (c *Core) exitToBuild(now int64) {
	c.switchMode(now, ModeBuild)
	c.builder = nil // the next dispatch opens a fresh trace
	c.sealing = false
	c.fetchStallUntil = now + int64(c.cfg.RedirectCycles)*c.fe.Period()
}

// debugDivergence, when non-nil, observes every divergence (test hook).
var debugDivergence func(run *traceRun, s Slot, rec emu.Trace, ok, consumed bool)

// debugStall, when non-nil, observes scoreboard stalls (test hook).
var debugStall func(c *Core, d *pipe.DynInst, now int64)
