package core

import (
	"flywheel/internal/branch"
	"flywheel/internal/mem"
	"flywheel/internal/pipe"
	"flywheel/internal/power"
)

// Stats reports one Flywheel run.
type Stats struct {
	// Progress and time.
	TimePS         int64
	BuildTimePS    int64
	ReplayTimePS   int64
	FECycles       uint64 // active (ungated) front-end cycles
	FEGatedCycles  uint64
	BECyclesBuild  uint64
	BECyclesReplay uint64
	Retired        uint64

	// Front-end activity (trace-creation mode).
	FetchGroups           uint64
	Fetched               uint64
	Dispatched            uint64
	Renamed               uint64
	FetchStallQueue       uint64
	DispatchStallResource uint64
	RenameStalls          uint64

	// Issue activity.
	IssuedBuild  uint64
	IssuedReplay uint64
	ReplayUnits  uint64
	UpdateOps    uint64
	RegReads     uint64
	RegWrites    uint64

	// Control flow and trace behaviour.
	PredLookups         uint64
	PredUpdates         uint64
	Mispredicts         uint64 // front-end mispredicts (trace-creation)
	Divergences         uint64 // trace-path mispredicts (trace-execution)
	TraceChanges        uint64
	BrokenReplays       uint64
	ModeSwitches        uint64
	Checkpoints         uint64
	SRTSwaps            uint64
	Redistributions     uint64
	ReplayFillStalls    uint64
	ReplayStallResource uint64
	ReplayStallData     uint64

	// Derived.
	IPC            float64
	ECResidency    float64 // fraction of time on the alternative execution path
	BranchAccuracy float64
	AvgIWOccupancy float64

	// Structures.
	IWInserted uint64
	IWSelected uint64
	Forwards   uint64
	FUIssued   [pipe.NumFUGroups]uint64
	EC         ECStats
	L1I        mem.CacheStats
	L1D        mem.CacheStats
	L2         mem.CacheStats

	// Frontend microarchitecture observables.
	CondBranches uint64
	Prefetch     mem.PrefetchStats
	Demand       mem.DemandStats

	// Pred is the raw predictor counter block; sampled execution
	// differences it across window marks to compute per-window accuracy.
	Pred branch.Stats
}

// Issued is the total number of issued instructions across both modes.
func (s Stats) Issued() uint64 { return s.IssuedBuild + s.IssuedReplay }

// Cycles is the total number of back-end cycles across both modes.
func (s Stats) Cycles() uint64 { return s.BECyclesBuild + s.BECyclesReplay }

func (c *Core) finalizeStats() {
	c.stats = c.StatsSnapshot()
	// The snapshot folded the open mode interval into the totals; advance
	// the interval start so a resumed run does not account it twice.
	c.lastModeSwitch = c.sys.Now()
}

// StatsSnapshot returns the statistics as of now with derived metrics
// filled in. It does not disturb the running counters and may be called
// repeatedly; sampled execution reads it at window marks.
func (c *Core) StatsSnapshot() Stats {
	s := &Stats{}
	*s = c.stats
	// Close the open mode interval (in the copy only).
	now := c.sys.Now()
	if c.mode == ModeReplay {
		s.ReplayTimePS += now - c.lastModeSwitch
	} else {
		s.BuildTimePS += now - c.lastModeSwitch
	}
	s.TimePS = now
	s.FECycles = c.fe.Cycles
	s.FEGatedCycles = c.fe.GatedCycles
	s.Fetched = c.fetcher.Fetched
	s.Mispredicts = c.fetcher.Mispredicts
	s.PredLookups = c.pred.Stats.Lookups
	s.PredUpdates = c.pred.Stats.Updates
	if cyc := s.Cycles(); cyc > 0 {
		s.IPC = float64(s.Retired) / float64(cyc)
	}
	if s.TimePS > 0 {
		s.ECResidency = float64(s.ReplayTimePS) / float64(s.TimePS)
	}
	s.BranchAccuracy = c.pred.Stats.Accuracy()
	s.AvgIWOccupancy = c.iw.AvgOccupancy()
	s.IWInserted = c.iw.Inserted
	s.IWSelected = c.iw.Selected
	s.Forwards = c.lsq.Forwards
	s.FUIssued = c.fu.Issued
	s.Checkpoints = c.ren.Checkpoints
	s.SRTSwaps = c.ren.SRTSwaps
	s.EC = c.ec.Stats
	s.L1I = c.hier.L1I.Stats
	s.L1D = c.hier.L1D.Stats
	s.L2 = c.hier.L2.Stats
	s.CondBranches = c.pred.Stats.CondBranches
	s.Prefetch = c.hier.PrefetchStats()
	s.Demand = c.hier.DemandStats()
	s.Pred = c.pred.Stats
	return *s
}

// Stats returns the current statistics (final after Run returns).
func (c *Core) Stats() Stats { return c.stats }

// Warmer exposes functional warming over this core's caches and predictor;
// call before Run, then Warmer().Finish() to clear the warm-up statistics.
func (c *Core) Warmer() *pipe.Warmer { return pipe.NewWarmer(c.pred, c.hier) }

// Activity converts the run into the power model's event record.
func (s Stats) Activity() power.Activity {
	return power.Activity{
		TimePS:      s.TimePS,
		FECycles:    s.FECycles,
		BECycles:    s.Cycles(),
		FetchGroups: s.FetchGroups,
		Fetched:     s.Fetched,
		Renamed:     s.Renamed,
		BPLookups:   s.PredLookups,
		BPUpdates:   s.PredUpdates,
		IWInserts:   s.IWInserted,
		IWSelects:   s.IWSelected,
		RegReads:    s.RegReads,
		RegWrites:   s.RegWrites,
		FUOps:       s.FUIssued,
		ROBWrites:   s.Dispatched + s.IssuedReplay,
		Retires:     s.Retired,
		LSQOps:      s.L1D.Accesses() + s.Forwards,
		L1I:         s.L1I,
		L1D:         s.L1D,
		L2:          s.L2,

		ECTagLookups:  s.EC.TagLookups,
		ECBlockReads:  s.EC.BlockReads,
		ECBlockWrites: s.EC.BlockWrites,
		UpdateOps:     s.UpdateOps,
		Checkpoints:   s.Checkpoints + s.SRTSwaps,
	}
}
