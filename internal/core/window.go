package core

import (
	"flywheel/internal/emu"
	"flywheel/internal/pipe"
)

// oracleWindow buffers the architectural oracle's dynamic instruction
// stream so it can be consumed out of program order. Trace replay pairs
// Execution Cache slots (stored in issue order) with oracle records by
// dynamic sequence number; the front-end path consumes the oldest
// unconsumed record. When a replay aborts mid-trace, the already-executed
// (consumed) records stay consumed and the skipped ones are delivered to
// the restarted front-end in order.
type oracleWindow struct {
	stream pipe.InstSource
	// filler batches stream pulls when the source supports it (both
	// *emu.Stream and the trace cache's recorder/reader do), amortizing
	// the per-record call overhead of the one-at-a-time pull path.
	filler   pipe.Filler
	fbuf     []emu.Trace
	base     uint64 // sequence number of entries[0]
	entries  []emu.Trace
	consumed []bool
	// prefix counts the leading fully consumed entries, maintained
	// incrementally so consuming and compacting stay O(1) amortized per
	// record instead of rescanning the prefix on every consume.
	prefix  int
	drained bool
	// requeue holds records handed back by a front-end squash after their
	// window slots were compacted away (divergences can scatter consumed
	// holes across a wide range). Served oldest-first before the window.
	requeue []emu.Trace
}

func newOracleWindow(stream pipe.InstSource) *oracleWindow {
	w := &oracleWindow{stream: stream}
	if f, ok := stream.(pipe.Filler); ok {
		w.filler = f
		w.fbuf = make([]emu.Trace, 64)
	}
	return w
}

// pull buffers at least one more record from the stream, batched when the
// source supports it. Over-pulling only moves records into the window
// earlier; every consumer reads through the window.
func (w *oracleWindow) pull() bool {
	if w.filler != nil {
		n := w.filler.Fill(w.fbuf)
		if n == 0 {
			w.drained = true
			return false
		}
		for _, tr := range w.fbuf[:n] {
			w.appendRecord(tr)
		}
		return true
	}
	tr, ok := w.stream.Next()
	if !ok {
		w.drained = true
		return false
	}
	w.appendRecord(tr)
	return true
}

// appendRecord buffers one stream record. The window is anchored at the
// first record's sequence number — warm-up fast-forwarding means dynamic
// streams rarely start at zero.
func (w *oracleWindow) appendRecord(tr emu.Trace) {
	if len(w.entries) == 0 {
		w.base = tr.Seq
	}
	w.entries = append(w.entries, tr)
	w.consumed = append(w.consumed, false)
}

// fillTo extends the window so that seq is buffered; it reports false when
// the stream ends first.
func (w *oracleWindow) fillTo(seq uint64) bool {
	for len(w.entries) == 0 || w.base+uint64(len(w.entries)) <= seq {
		if !w.pull() {
			return false
		}
	}
	return true
}

// At returns the record with the given sequence number, extending the
// window as needed. ok is false past the end of the program.
func (w *oracleWindow) At(seq uint64) (emu.Trace, bool) {
	if seq < w.base {
		return emu.Trace{}, false // already compacted away: caller bug
	}
	if !w.fillTo(seq) {
		return emu.Trace{}, false
	}
	return w.entries[seq-w.base], true
}

// Consumed reports whether seq has been consumed already.
func (w *oracleWindow) Consumed(seq uint64) bool {
	if seq < w.base {
		return true
	}
	i := seq - w.base
	return i < uint64(len(w.consumed)) && w.consumed[i]
}

// Consume marks seq as delivered to the machine.
func (w *oracleWindow) Consume(seq uint64) {
	if seq < w.base {
		return
	}
	i := seq - w.base
	if i < uint64(len(w.consumed)) {
		w.consumed[i] = true
		if int(i) == w.prefix {
			for w.prefix < len(w.consumed) && w.consumed[w.prefix] {
				w.prefix++
			}
		}
	}
	w.compact()
}

// Unconsume returns a record to the window (front-end squash on a mode
// switch). Records whose slots were already compacted away go onto the
// requeue list and are served back, oldest first, before the main window.
func (w *oracleWindow) Unconsume(tr emu.Trace) {
	if tr.Seq < w.base {
		// Insert in ascending sequence order (the list stays tiny: at most
		// one front queue of entries).
		at := len(w.requeue)
		for at > 0 && w.requeue[at-1].Seq > tr.Seq {
			at--
		}
		w.requeue = append(w.requeue, emu.Trace{})
		copy(w.requeue[at+1:], w.requeue[at:])
		w.requeue[at] = tr
		return
	}
	if i := tr.Seq - w.base; i < uint64(len(w.consumed)) {
		w.consumed[i] = false
		if int(i) < w.prefix {
			w.prefix = int(i)
		}
	}
}

// NextUnconsumed returns the oldest unconsumed record without consuming it.
func (w *oracleWindow) NextUnconsumed() (emu.Trace, bool) {
	if len(w.requeue) > 0 {
		return w.requeue[0], true
	}
	// Entries below the consumed prefix need no scan.
	for i := w.prefix; i < len(w.entries); i++ {
		if !w.consumed[i] {
			return w.entries[i], true
		}
	}
	// Everything buffered was consumed: pull fresh records. A batched pull
	// may append several; the oldest fresh record is the next to deliver.
	oldLen := len(w.entries)
	if !w.pull() {
		return emu.Trace{}, false
	}
	return w.entries[oldLen], true
}

// Next implements the pipe.InstSource contract for the front-end fetcher:
// deliver and consume the oldest unconsumed record.
func (w *oracleWindow) Next() (emu.Trace, bool) {
	if len(w.requeue) > 0 {
		tr := w.requeue[0]
		copy(w.requeue, w.requeue[1:])
		w.requeue = w.requeue[:len(w.requeue)-1]
		return tr, true
	}
	tr, ok := w.NextUnconsumed()
	if ok {
		w.Consume(tr.Seq)
	}
	return tr, ok
}

// Drained reports that the underlying stream ended.
func (w *oracleWindow) Drained() bool { return w.drained }

// reopen clears the end-of-stream latch and drops the buffered window so
// pulls resume from the source. Sampled execution calls it between
// detailed windows, after the core halted on a gated (empty) source: at
// that point every buffered entry has been consumed and the requeue is
// empty, and the next record's sequence number is discontinuous with the
// old window (the fast-forward gap), so the buffer must re-anchor at it.
func (w *oracleWindow) reopen() {
	w.drained = false
	w.entries = w.entries[:0]
	w.consumed = w.consumed[:0]
	w.base = 0
	w.prefix = 0
}

// compact drops the fully consumed prefix to bound memory. The retained
// margin must exceed everything a mode switch can hand back to the window:
// the front queue, the fetcher lookahead and one fetch group.
func (w *oracleWindow) compact() {
	const margin = 128
	if w.prefix > 4*margin {
		drop := w.prefix - margin
		w.base += uint64(drop)
		w.prefix -= drop
		w.entries = append(w.entries[:0], w.entries[drop:]...)
		w.consumed = append(w.consumed[:0], w.consumed[drop:]...)
	}
}
