package core

import (
	"testing"

	"flywheel/internal/asm"
	"flywheel/internal/emu"
)

func windowOver(t *testing.T, n int) *oracleWindow {
	t.Helper()
	// A program with n+2 dynamic instructions (li, n addis, halt).
	src := "\tli r1, 0\n"
	for i := 0; i < n; i++ {
		src += "\taddi r1, r1, 1\n"
	}
	src += "\thalt\n"
	prog, err := asm.Assemble("w.s", src)
	if err != nil {
		t.Fatal(err)
	}
	return newOracleWindow(emu.NewStream(emu.New(prog), 0))
}

func TestWindowSequentialNext(t *testing.T) {
	w := windowOver(t, 10)
	for i := 0; i < 12; i++ {
		tr, ok := w.Next()
		if !ok {
			t.Fatalf("Next %d failed", i)
		}
		if tr.Seq != uint64(i) {
			t.Fatalf("Next %d returned seq %d", i, tr.Seq)
		}
	}
	if _, ok := w.Next(); ok {
		t.Error("Next past end succeeded")
	}
	if !w.Drained() {
		t.Error("window not drained at stream end")
	}
}

func TestWindowOutOfOrderConsumption(t *testing.T) {
	w := windowOver(t, 20)
	// Replay-style: consume 5 and 7, leaving 0..4, 6 as holes.
	for _, seq := range []uint64{5, 7} {
		tr, ok := w.At(seq)
		if !ok || tr.Seq != seq {
			t.Fatalf("At(%d) = %v, %v", seq, tr, ok)
		}
		w.Consume(seq)
	}
	if !w.Consumed(5) || w.Consumed(6) {
		t.Error("consumption flags wrong")
	}
	// The oldest unconsumed must be 0, and Next must skip 5 and 7.
	var got []uint64
	for i := 0; i < 6; i++ {
		tr, ok := w.Next()
		if !ok {
			t.Fatal("Next failed")
		}
		got = append(got, tr.Seq)
	}
	want := []uint64{0, 1, 2, 3, 4, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hole traversal = %v, want %v", got, want)
		}
	}
	// Next after the holes resumes at 8.
	tr, _ := w.Next()
	if tr.Seq != 8 {
		t.Errorf("post-hole Next = %d, want 8", tr.Seq)
	}
}

func TestWindowUnconsume(t *testing.T) {
	w := windowOver(t, 10)
	tr, _ := w.Next() // seq 0 consumed
	w.Unconsume(tr)
	back, ok := w.NextUnconsumed()
	if !ok || back.Seq != 0 {
		t.Errorf("unconsumed record not redelivered: %v %v", back, ok)
	}
}

func TestWindowRequeueBelowBase(t *testing.T) {
	w := windowOver(t, 3000)
	// Consume a long prefix to force compaction.
	for i := 0; i < 2500; i++ {
		if _, ok := w.Next(); !ok {
			t.Fatal("stream ended early")
		}
	}
	if w.base == 0 {
		t.Fatal("compaction never ran; test needs a longer prefix")
	}
	// Hand back a record from far below the base: it must be requeued and
	// served first, in order.
	old := emu.Trace{Seq: 3}
	older := emu.Trace{Seq: 1}
	w.Unconsume(old)
	w.Unconsume(older)
	tr, ok := w.Next()
	if !ok || tr.Seq != 1 {
		t.Fatalf("requeued Next = %v, want seq 1", tr)
	}
	tr, _ = w.Next()
	if tr.Seq != 3 {
		t.Fatalf("second requeued Next = %d, want 3", tr.Seq)
	}
	// After the requeue drains, normal consumption resumes.
	tr, _ = w.Next()
	if tr.Seq != 2500 {
		t.Errorf("post-requeue Next = %d, want 2500", tr.Seq)
	}
}

func TestWindowAtBeyondEnd(t *testing.T) {
	w := windowOver(t, 5)
	if _, ok := w.At(1_000_000); ok {
		t.Error("At past program end succeeded")
	}
	if !w.Drained() {
		t.Error("drained flag not set after failed At")
	}
}
