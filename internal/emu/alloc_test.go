package emu

import (
	"testing"

	"flywheel/internal/asm"
)

// loopSource is a small steady-state kernel touching registers, memory and
// control flow — every hot-loop path of Step.
const loopSource = `
        .data
buf:    .space 64
        .text
        la   r2, buf
        li   r1, 500000000
loop:   ld   r3, 0(r2)
        addi r3, r3, 1
        sd   r3, 0(r2)
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
`

func loopMachine(t testing.TB) *Machine {
	t.Helper()
	prog, err := asm.Assemble("loop.s", loopSource)
	if err != nil {
		t.Fatal(err)
	}
	return New(prog)
}

// TestStepAllocFree pins the per-instruction emulation path at zero heap
// allocations: the hot loop of every simulation must not create GC work.
func TestStepAllocFree(t *testing.T) {
	m := loopMachine(t)
	// Prime: touch the data page and warm any lazy state.
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			if _, err := m.Step(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("Machine.Step allocates: %.2f allocs per 100 steps, want 0", avg)
	}
}

// TestStreamFillAllocFree pins batched stream delivery at zero allocations
// when the caller owns the buffer.
func TestStreamFillAllocFree(t *testing.T) {
	m := loopMachine(t)
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	s := NewStream(m, 0)
	buf := make([]Trace, 256)
	avg := testing.AllocsPerRun(100, func() {
		if n := s.Fill(buf); n != len(buf) {
			t.Fatalf("Fill returned %d, want %d", n, len(buf))
		}
	})
	if avg != 0 {
		t.Fatalf("Stream.Fill allocates: %.2f allocs per call, want 0", avg)
	}
}

// TestFillMatchesNext checks that batched delivery produces exactly the
// record sequence Next would.
func TestFillMatchesNext(t *testing.T) {
	a, b := loopMachine(t), loopMachine(t)
	sa := NewStream(a, 1000)
	sb := NewStream(b, 1000)
	buf := make([]Trace, 64)
	var got []Trace
	for {
		n := sa.Fill(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	var want []Trace
	for {
		tr, ok := sb.Next()
		if !ok {
			break
		}
		want = append(want, tr)
	}
	if sa.Err() != nil || sb.Err() != nil {
		t.Fatal(sa.Err(), sb.Err())
	}
	if len(got) != len(want) {
		t.Fatalf("Fill produced %d records, Next produced %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs: Fill=%+v Next=%+v", i, got[i], want[i])
		}
	}
}

// TestSnapshotCloneMatchesFreshRun checks that a machine cloned from a
// mid-run snapshot finishes with the same architectural state as an
// uninterrupted run.
func TestSnapshotCloneMatchesFreshRun(t *testing.T) {
	ref := loopMachine(t)
	if _, err := ref.Run(50_000); err != nil {
		t.Fatal(err)
	}

	m := loopMachine(t)
	if _, err := m.Run(10_000); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	clone := snap.NewMachine()
	if clone.Retired != snap.Retired() {
		t.Fatalf("clone retired %d, snapshot %d", clone.Retired, snap.Retired())
	}
	if _, err := clone.Run(40_000); err != nil {
		t.Fatal(err)
	}

	if clone.PC != ref.PC || clone.Retired != ref.Retired {
		t.Fatalf("clone pc=%#x retired=%d, ref pc=%#x retired=%d",
			clone.PC, clone.Retired, ref.PC, ref.Retired)
	}
	if clone.IntRegs != ref.IntRegs || clone.FPRegs != ref.FPRegs {
		t.Fatal("register state differs between clone and fresh run")
	}
	bufAddr := asm.DataBase
	if got, want := clone.Mem.ReadBytes(bufAddr, 64), ref.Mem.ReadBytes(bufAddr, 64); string(got) != string(want) {
		t.Fatal("memory state differs between clone and fresh run")
	}
}

// TestSnapshotClonesAreIsolated checks copy-on-write isolation: writes in
// one clone (or in the snapshotted machine itself) must not leak into
// sibling clones.
func TestSnapshotClonesAreIsolated(t *testing.T) {
	m := loopMachine(t)
	if _, err := m.Run(5_000); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()

	c1 := snap.NewMachine()
	c2 := snap.NewMachine()
	before := c2.Mem.Read(asm.DataBase, 8)

	// Writes through the original machine and through clone 1.
	m.Mem.Write(asm.DataBase, 8, 0xdead)
	c1.Mem.Write(asm.DataBase, 8, 0xbeef)

	if got := c2.Mem.Read(asm.DataBase, 8); got != before {
		t.Fatalf("clone 2 saw foreign write: %#x, want %#x", got, before)
	}
	if got := c1.Mem.Read(asm.DataBase, 8); got != 0xbeef {
		t.Fatalf("clone 1 lost its own write: %#x", got)
	}
}

// BenchmarkStep measures the raw per-instruction emulation cost.
func BenchmarkStep(b *testing.B) {
	m := loopMachine(b)
	if _, err := m.Run(1000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamFill measures batched stream delivery.
func BenchmarkStreamFill(b *testing.B) {
	m := loopMachine(b)
	if _, err := m.Run(1000); err != nil {
		b.Fatal(err)
	}
	s := NewStream(m, 0)
	buf := make([]Trace, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(buf) {
		if n := s.Fill(buf); n != len(buf) {
			b.Fatal("stream ended")
		}
	}
}
