// Package emu implements the architectural (functional) emulator for the
// flywheel ISA. It is the golden model: the timing simulators in packages
// ooo and core are execution-driven, consuming the dynamic instruction
// stream this emulator produces, and the test suite checks that all three
// agree on final architectural state.
package emu

import (
	"fmt"
	"math"

	"flywheel/internal/asm"
	"flywheel/internal/isa"
	"flywheel/internal/mem"
)

// Machine is the architectural state of one program run.
type Machine struct {
	Prog    *asm.Program
	PC      uint64
	IntRegs [isa.NumIntRegs]uint64
	FPRegs  [isa.NumFPRegs]float64
	Mem     *mem.Memory
	Halted  bool
	// Retired counts executed instructions.
	Retired uint64

	// code is the predecoded fetch array: instruction i lives at address
	// CodeBase + 4*i. Step indexes it directly instead of going through
	// Prog.InstAt, keeping the hot loop free of interface and map work.
	code []isa.Instruction
}

// New loads the program image into a fresh machine.
func New(p *asm.Program) *Machine {
	m := &Machine{Prog: p, PC: p.Entry, Mem: mem.NewMemory(), code: p.Code}
	// Load the code image so the I-side of the timing models can treat
	// fetches as real memory reads.
	code := make([]byte, 0, len(p.Code)*isa.InstBytes)
	for _, in := range p.Code {
		w := isa.MustEncode(in)
		code = append(code, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	m.Mem.WriteBytes(asm.CodeBase, code)
	if len(p.Data) > 0 {
		m.Mem.WriteBytes(asm.DataBase, p.Data)
	}
	// Give programs a stack: sp (r29) starts high and grows down.
	m.IntRegs[29] = StackTop
	return m
}

// Snapshot is a frozen machine state: the register file plus a
// copy-on-write memory image. Cloning machines from a snapshot is O(1) in
// the memory footprint, so a warm-up phase executed once can seed any
// number of measurement runs (see package sim's warm-snapshot cache).
type Snapshot struct {
	prog    *asm.Program
	pc      uint64
	intRegs [isa.NumIntRegs]uint64
	fpRegs  [isa.NumFPRegs]float64
	halted  bool
	retired uint64
	mem     *mem.Snapshot
}

// Snapshot captures the machine's current architectural state. The machine
// remains usable; its memory switches to copy-on-write so the snapshot
// stays immutable.
func (m *Machine) Snapshot() *Snapshot {
	return &Snapshot{
		prog:    m.Prog,
		pc:      m.PC,
		intRegs: m.IntRegs,
		fpRegs:  m.FPRegs,
		halted:  m.Halted,
		retired: m.Retired,
		mem:     m.Mem.Snapshot(),
	}
}

// Retired reports how many instructions had retired when the snapshot was
// taken.
func (s *Snapshot) Retired() uint64 { return s.retired }

// MemPages reports how many 4 KiB pages the snapshot's frozen memory image
// holds (for cache byte accounting).
func (s *Snapshot) MemPages() int { return s.mem.PageCount() }

// NewMachine clones a runnable machine from the snapshot. Clones share
// memory pages copy-on-write and may run concurrently.
func (s *Snapshot) NewMachine() *Machine {
	return &Machine{
		Prog:    s.prog,
		PC:      s.pc,
		IntRegs: s.intRegs,
		FPRegs:  s.fpRegs,
		Halted:  s.halted,
		Retired: s.retired,
		Mem:     s.mem.NewMemory(),
		code:    s.prog.Code,
	}
}

// StackTop is the initial stack pointer handed to programs.
const StackTop uint64 = 0x0100_0000

// Trace is the record of one executed instruction — the oracle information
// the timing simulators need: control-flow outcome, memory address, and the
// instruction itself (register dependencies).
type Trace struct {
	Seq    uint64 // dynamic instruction number, starting at 0
	PC     uint64
	Inst   isa.Instruction
	NextPC uint64 // architecturally correct next PC
	Taken  bool   // branches: true when the branch was taken
	Addr   uint64 // loads/stores: effective address
}

// IsMispredictable reports whether this instruction's outcome depends on
// dynamic state a predictor must guess (conditional direction or indirect
// target).
func (t Trace) IsMispredictable() bool {
	return t.Inst.Class() == isa.ClassBranch || t.Inst.Op == isa.JALR
}

// ReadReg returns the current value of an architected register as raw bits.
func (m *Machine) ReadReg(r isa.Reg) uint64 {
	switch {
	case r == isa.RegNone:
		return 0
	case r.IsFP():
		return math.Float64bits(m.FPRegs[r-isa.NumIntRegs])
	case r == 0:
		return 0
	default:
		return m.IntRegs[r]
	}
}

// WriteReg sets an architected register from raw bits. Writes to r0 and
// RegNone are ignored.
func (m *Machine) WriteReg(r isa.Reg, bits uint64) {
	switch {
	case r == isa.RegNone || r == 0:
	case r.IsFP():
		m.FPRegs[r-isa.NumIntRegs] = math.Float64frombits(bits)
	default:
		m.IntRegs[r] = bits
	}
}

// readInt returns a register as a signed integer.
func (m *Machine) readInt(r isa.Reg) int64 { return int64(m.ReadReg(r)) }

// readFP returns a register as a float.
func (m *Machine) readFP(r isa.Reg) float64 { return math.Float64frombits(m.ReadReg(r)) }

// writeInt sets a register from a signed integer.
func (m *Machine) writeInt(r isa.Reg, v int64) { m.WriteReg(r, uint64(v)) }

// writeFP sets a register from a float.
func (m *Machine) writeFP(r isa.Reg, v float64) { m.WriteReg(r, math.Float64bits(v)) }

// Step executes one instruction and returns its trace record.
// Calling Step on a halted machine is an error.
//
// The body is deliberately closure-free and fetches through the predecoded
// code array: this is the innermost loop of every simulation, and it must
// not allocate.
func (m *Machine) Step() (Trace, error) {
	if m.Halted {
		return Trace{}, fmt.Errorf("emu: step after halt at pc %#x", m.PC)
	}
	idx := m.PC - asm.CodeBase
	if m.PC < asm.CodeBase || idx%isa.InstBytes != 0 || idx/isa.InstBytes >= uint64(len(m.code)) {
		return Trace{}, fmt.Errorf("emu: pc %#x outside code section", m.PC)
	}
	in := m.code[idx/isa.InstBytes]
	tr := Trace{Seq: m.Retired, PC: m.PC, Inst: in, NextPC: m.PC + isa.InstBytes}

	switch in.Op {
	case isa.NOP:
	case isa.ADD:
		m.writeInt(in.Rd, m.readInt(in.Rs1)+m.readInt(in.Rs2))
	case isa.SUB:
		m.writeInt(in.Rd, m.readInt(in.Rs1)-m.readInt(in.Rs2))
	case isa.AND:
		m.writeInt(in.Rd, m.readInt(in.Rs1)&m.readInt(in.Rs2))
	case isa.OR:
		m.writeInt(in.Rd, m.readInt(in.Rs1)|m.readInt(in.Rs2))
	case isa.XOR:
		m.writeInt(in.Rd, m.readInt(in.Rs1)^m.readInt(in.Rs2))
	case isa.SLL:
		m.writeInt(in.Rd, int64(m.ReadReg(in.Rs1)<<(m.ReadReg(in.Rs2)&63)))
	case isa.SRL:
		m.writeInt(in.Rd, int64(m.ReadReg(in.Rs1)>>(m.ReadReg(in.Rs2)&63)))
	case isa.SRA:
		m.writeInt(in.Rd, m.readInt(in.Rs1)>>(m.ReadReg(in.Rs2)&63))
	case isa.SLT:
		m.writeInt(in.Rd, boolToInt(m.readInt(in.Rs1) < m.readInt(in.Rs2)))
	case isa.SLTU:
		m.writeInt(in.Rd, boolToInt(m.ReadReg(in.Rs1) < m.ReadReg(in.Rs2)))
	case isa.ADDI:
		m.writeInt(in.Rd, m.readInt(in.Rs1)+int64(in.Imm))
	case isa.ANDI:
		m.writeInt(in.Rd, m.readInt(in.Rs1)&int64(in.Imm))
	case isa.ORI:
		m.writeInt(in.Rd, m.readInt(in.Rs1)|int64(in.Imm))
	case isa.XORI:
		m.writeInt(in.Rd, m.readInt(in.Rs1)^int64(in.Imm))
	case isa.SLTI:
		m.writeInt(in.Rd, boolToInt(m.readInt(in.Rs1) < int64(in.Imm)))
	case isa.SLLI:
		m.writeInt(in.Rd, int64(m.ReadReg(in.Rs1)<<(uint64(in.Imm)&63)))
	case isa.SRLI:
		m.writeInt(in.Rd, int64(m.ReadReg(in.Rs1)>>(uint64(in.Imm)&63)))
	case isa.SRAI:
		m.writeInt(in.Rd, m.readInt(in.Rs1)>>(uint64(in.Imm)&63))
	case isa.LUI:
		m.writeInt(in.Rd, int64(in.Imm)<<12)
	case isa.MUL:
		m.writeInt(in.Rd, m.readInt(in.Rs1)*m.readInt(in.Rs2))
	case isa.DIV:
		d := m.readInt(in.Rs2)
		if d == 0 {
			m.writeInt(in.Rd, -1) // divide by zero: all ones, RISC-V style
		} else {
			m.writeInt(in.Rd, m.readInt(in.Rs1)/d)
		}
	case isa.REM:
		d := m.readInt(in.Rs2)
		if d == 0 {
			m.writeInt(in.Rd, m.readInt(in.Rs1))
		} else {
			m.writeInt(in.Rd, m.readInt(in.Rs1)%d)
		}
	case isa.LD, isa.LW, isa.LB, isa.FLD:
		tr.Addr = uint64(m.readInt(in.Rs1) + int64(in.Imm))
		v := m.Mem.Read(tr.Addr, in.MemWidth())
		if in.Op == isa.FLD {
			m.WriteReg(in.Rd, v)
		} else {
			m.writeInt(in.Rd, int64(v)) // loads zero-extend
		}
	case isa.SD, isa.SW, isa.SB, isa.FSD:
		tr.Addr = uint64(m.readInt(in.Rs1) + int64(in.Imm))
		m.Mem.Write(tr.Addr, in.MemWidth(), m.ReadReg(in.Rs2))
	case isa.BEQ:
		m.branch(&tr, m.readInt(in.Rs1) == m.readInt(in.Rs2))
	case isa.BNE:
		m.branch(&tr, m.readInt(in.Rs1) != m.readInt(in.Rs2))
	case isa.BLT:
		m.branch(&tr, m.readInt(in.Rs1) < m.readInt(in.Rs2))
	case isa.BGE:
		m.branch(&tr, m.readInt(in.Rs1) >= m.readInt(in.Rs2))
	case isa.J:
		tr.Taken = true
		tr.NextPC = m.PC + uint64(int64(in.Imm))*isa.InstBytes
	case isa.JAL:
		tr.Taken = true
		m.writeInt(in.Rd, int64(m.PC+isa.InstBytes))
		tr.NextPC = m.PC + uint64(int64(in.Imm))*isa.InstBytes
	case isa.JALR:
		tr.Taken = true
		target := m.ReadReg(in.Rs1) &^ 3
		m.writeInt(in.Rd, int64(m.PC+isa.InstBytes))
		tr.NextPC = target
	case isa.FADD:
		m.writeFP(in.Rd, m.readFP(in.Rs1)+m.readFP(in.Rs2))
	case isa.FSUB:
		m.writeFP(in.Rd, m.readFP(in.Rs1)-m.readFP(in.Rs2))
	case isa.FMUL:
		m.writeFP(in.Rd, m.readFP(in.Rs1)*m.readFP(in.Rs2))
	case isa.FDIV:
		m.writeFP(in.Rd, m.readFP(in.Rs1)/m.readFP(in.Rs2))
	case isa.FNEG:
		m.writeFP(in.Rd, -m.readFP(in.Rs1))
	case isa.FMOV:
		m.writeFP(in.Rd, m.readFP(in.Rs1))
	case isa.FCVTIF:
		m.writeFP(in.Rd, float64(m.readInt(in.Rs1)))
	case isa.FCVTFI:
		m.writeInt(in.Rd, int64(m.readFP(in.Rs1)))
	case isa.FLT:
		m.writeInt(in.Rd, boolToInt(m.readFP(in.Rs1) < m.readFP(in.Rs2)))
	case isa.FEQ:
		m.writeInt(in.Rd, boolToInt(m.readFP(in.Rs1) == m.readFP(in.Rs2)))
	case isa.HALT:
		m.Halted = true
		tr.NextPC = m.PC
	default:
		return Trace{}, fmt.Errorf("emu: unimplemented op %v at pc %#x", in.Op, m.PC)
	}

	m.PC = tr.NextPC
	m.Retired++
	return tr, nil
}

// branch records a conditional branch outcome into the trace.
func (m *Machine) branch(tr *Trace, cond bool) {
	tr.Taken = cond
	if cond {
		tr.NextPC = m.PC + uint64(int64(tr.Inst.Imm))*isa.InstBytes
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Run executes until halt or until limit instructions have retired.
// It returns the number of instructions retired.
func (m *Machine) Run(limit uint64) (uint64, error) {
	start := m.Retired
	for !m.Halted && m.Retired-start < limit {
		if _, err := m.Step(); err != nil {
			return m.Retired - start, err
		}
	}
	return m.Retired - start, nil
}

// RunUntil executes until the PC first reaches target (the paper's
// fast-forward over initialization), until halt, or until limit
// instructions. It reports the number of instructions executed.
func (m *Machine) RunUntil(target uint64, limit uint64) (uint64, error) {
	start := m.Retired
	for !m.Halted && m.PC != target && m.Retired-start < limit {
		if _, err := m.Step(); err != nil {
			return m.Retired - start, err
		}
	}
	return m.Retired - start, nil
}

// Stream adapts a Machine into the dynamic-trace iterator consumed by the
// timing simulators.
type Stream struct {
	m     *Machine
	limit uint64
	err   error
}

// NewStream returns a stream producing at most limit dynamic instructions
// (0 means unlimited: run to halt).
func NewStream(m *Machine, limit uint64) *Stream {
	return &Stream{m: m, limit: limit}
}

// Next returns the next dynamic instruction. ok is false once the machine
// halted, the limit was reached, or an error occurred (see Err).
func (s *Stream) Next() (Trace, bool) {
	if s.err != nil || s.m.Halted {
		return Trace{}, false
	}
	if s.limit > 0 && s.m.Retired >= s.limit {
		return Trace{}, false
	}
	tr, err := s.m.Step()
	if err != nil {
		s.err = err
		return Trace{}, false
	}
	return tr, true
}

// Fill batch-executes into the caller-owned buffer and returns how many
// trace records were produced. It stops early at halt, at the stream limit,
// or on an error (see Err). Fill performs no allocation of its own, so a
// consumer that reuses its buffer pays zero steady-state allocations for
// stream delivery.
func (s *Stream) Fill(buf []Trace) int {
	n := 0
	for n < len(buf) {
		if s.err != nil || s.m.Halted {
			break
		}
		if s.limit > 0 && s.m.Retired >= s.limit {
			break
		}
		tr, err := s.m.Step()
		if err != nil {
			s.err = err
			break
		}
		buf[n] = tr
		n++
	}
	return n
}

// Err reports a stream-terminating execution error, if any.
func (s *Stream) Err() error { return s.err }

// Machine exposes the underlying machine (for end-state checks).
func (s *Stream) Machine() *Machine { return s.m }
