// Package emu implements the architectural (functional) emulator for the
// flywheel ISA. It is the golden model: the timing simulators in packages
// ooo and core are execution-driven, consuming the dynamic instruction
// stream this emulator produces, and the test suite checks that all three
// agree on final architectural state.
package emu

import (
	"fmt"
	"math"

	"flywheel/internal/asm"
	"flywheel/internal/isa"
	"flywheel/internal/mem"
)

// Machine is the architectural state of one program run.
type Machine struct {
	Prog    *asm.Program
	PC      uint64
	IntRegs [isa.NumIntRegs]uint64
	FPRegs  [isa.NumFPRegs]float64
	Mem     *mem.Memory
	Halted  bool
	// Retired counts executed instructions.
	Retired uint64
}

// New loads the program image into a fresh machine.
func New(p *asm.Program) *Machine {
	m := &Machine{Prog: p, PC: p.Entry, Mem: mem.NewMemory()}
	// Load the code image so the I-side of the timing models can treat
	// fetches as real memory reads.
	code := make([]byte, 0, len(p.Code)*isa.InstBytes)
	for _, in := range p.Code {
		w := isa.MustEncode(in)
		code = append(code, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	m.Mem.WriteBytes(asm.CodeBase, code)
	if len(p.Data) > 0 {
		m.Mem.WriteBytes(asm.DataBase, p.Data)
	}
	// Give programs a stack: sp (r29) starts high and grows down.
	m.IntRegs[29] = StackTop
	return m
}

// StackTop is the initial stack pointer handed to programs.
const StackTop uint64 = 0x0100_0000

// Trace is the record of one executed instruction — the oracle information
// the timing simulators need: control-flow outcome, memory address, and the
// instruction itself (register dependencies).
type Trace struct {
	Seq    uint64 // dynamic instruction number, starting at 0
	PC     uint64
	Inst   isa.Instruction
	NextPC uint64 // architecturally correct next PC
	Taken  bool   // branches: true when the branch was taken
	Addr   uint64 // loads/stores: effective address
}

// IsMispredictable reports whether this instruction's outcome depends on
// dynamic state a predictor must guess (conditional direction or indirect
// target).
func (t Trace) IsMispredictable() bool {
	return t.Inst.Class() == isa.ClassBranch || t.Inst.Op == isa.JALR
}

// ReadReg returns the current value of an architected register as raw bits.
func (m *Machine) ReadReg(r isa.Reg) uint64 {
	switch {
	case r == isa.RegNone:
		return 0
	case r.IsFP():
		return math.Float64bits(m.FPRegs[r-isa.NumIntRegs])
	case r == 0:
		return 0
	default:
		return m.IntRegs[r]
	}
}

// WriteReg sets an architected register from raw bits. Writes to r0 and
// RegNone are ignored.
func (m *Machine) WriteReg(r isa.Reg, bits uint64) {
	switch {
	case r == isa.RegNone || r == 0:
	case r.IsFP():
		m.FPRegs[r-isa.NumIntRegs] = math.Float64frombits(bits)
	default:
		m.IntRegs[r] = bits
	}
}

// Step executes one instruction and returns its trace record.
// Calling Step on a halted machine is an error.
func (m *Machine) Step() (Trace, error) {
	if m.Halted {
		return Trace{}, fmt.Errorf("emu: step after halt at pc %#x", m.PC)
	}
	in, ok := m.Prog.InstAt(m.PC)
	if !ok {
		return Trace{}, fmt.Errorf("emu: pc %#x outside code section", m.PC)
	}
	tr := Trace{Seq: m.Retired, PC: m.PC, Inst: in, NextPC: m.PC + isa.InstBytes}

	ri := func(r isa.Reg) int64 { return int64(m.ReadReg(r)) }
	ru := func(r isa.Reg) uint64 { return m.ReadReg(r) }
	rf := func(r isa.Reg) float64 { return math.Float64frombits(m.ReadReg(r)) }
	wi := func(v int64) { m.WriteReg(in.Rd, uint64(v)) }
	wf := func(v float64) { m.WriteReg(in.Rd, math.Float64bits(v)) }
	branch := func(cond bool) {
		tr.Taken = cond
		if cond {
			tr.NextPC = m.PC + uint64(int64(in.Imm))*isa.InstBytes
		}
	}

	switch in.Op {
	case isa.NOP:
	case isa.ADD:
		wi(ri(in.Rs1) + ri(in.Rs2))
	case isa.SUB:
		wi(ri(in.Rs1) - ri(in.Rs2))
	case isa.AND:
		wi(ri(in.Rs1) & ri(in.Rs2))
	case isa.OR:
		wi(ri(in.Rs1) | ri(in.Rs2))
	case isa.XOR:
		wi(ri(in.Rs1) ^ ri(in.Rs2))
	case isa.SLL:
		wi(int64(ru(in.Rs1) << (ru(in.Rs2) & 63)))
	case isa.SRL:
		wi(int64(ru(in.Rs1) >> (ru(in.Rs2) & 63)))
	case isa.SRA:
		wi(ri(in.Rs1) >> (ru(in.Rs2) & 63))
	case isa.SLT:
		wi(boolToInt(ri(in.Rs1) < ri(in.Rs2)))
	case isa.SLTU:
		wi(boolToInt(ru(in.Rs1) < ru(in.Rs2)))
	case isa.ADDI:
		wi(ri(in.Rs1) + int64(in.Imm))
	case isa.ANDI:
		wi(ri(in.Rs1) & int64(in.Imm))
	case isa.ORI:
		wi(ri(in.Rs1) | int64(in.Imm))
	case isa.XORI:
		wi(ri(in.Rs1) ^ int64(in.Imm))
	case isa.SLTI:
		wi(boolToInt(ri(in.Rs1) < int64(in.Imm)))
	case isa.SLLI:
		wi(int64(ru(in.Rs1) << (uint64(in.Imm) & 63)))
	case isa.SRLI:
		wi(int64(ru(in.Rs1) >> (uint64(in.Imm) & 63)))
	case isa.SRAI:
		wi(ri(in.Rs1) >> (uint64(in.Imm) & 63))
	case isa.LUI:
		wi(int64(in.Imm) << 12)
	case isa.MUL:
		wi(ri(in.Rs1) * ri(in.Rs2))
	case isa.DIV:
		d := ri(in.Rs2)
		if d == 0 {
			wi(-1) // divide by zero: all ones, RISC-V style
		} else {
			wi(ri(in.Rs1) / d)
		}
	case isa.REM:
		d := ri(in.Rs2)
		if d == 0 {
			wi(ri(in.Rs1))
		} else {
			wi(ri(in.Rs1) % d)
		}
	case isa.LD, isa.LW, isa.LB, isa.FLD:
		tr.Addr = uint64(ri(in.Rs1) + int64(in.Imm))
		v := m.Mem.Read(tr.Addr, in.MemWidth())
		if in.Op == isa.FLD {
			m.WriteReg(in.Rd, v)
		} else {
			wi(int64(v)) // loads zero-extend
		}
	case isa.SD, isa.SW, isa.SB, isa.FSD:
		tr.Addr = uint64(ri(in.Rs1) + int64(in.Imm))
		m.Mem.Write(tr.Addr, in.MemWidth(), ru(in.Rs2))
	case isa.BEQ:
		branch(ri(in.Rs1) == ri(in.Rs2))
	case isa.BNE:
		branch(ri(in.Rs1) != ri(in.Rs2))
	case isa.BLT:
		branch(ri(in.Rs1) < ri(in.Rs2))
	case isa.BGE:
		branch(ri(in.Rs1) >= ri(in.Rs2))
	case isa.J:
		tr.Taken = true
		tr.NextPC = m.PC + uint64(int64(in.Imm))*isa.InstBytes
	case isa.JAL:
		tr.Taken = true
		wi(int64(m.PC + isa.InstBytes))
		tr.NextPC = m.PC + uint64(int64(in.Imm))*isa.InstBytes
	case isa.JALR:
		tr.Taken = true
		target := ru(in.Rs1) &^ 3
		wi(int64(m.PC + isa.InstBytes))
		tr.NextPC = target
	case isa.FADD:
		wf(rf(in.Rs1) + rf(in.Rs2))
	case isa.FSUB:
		wf(rf(in.Rs1) - rf(in.Rs2))
	case isa.FMUL:
		wf(rf(in.Rs1) * rf(in.Rs2))
	case isa.FDIV:
		wf(rf(in.Rs1) / rf(in.Rs2))
	case isa.FNEG:
		wf(-rf(in.Rs1))
	case isa.FMOV:
		wf(rf(in.Rs1))
	case isa.FCVTIF:
		wf(float64(ri(in.Rs1)))
	case isa.FCVTFI:
		wi(int64(rf(in.Rs1)))
	case isa.FLT:
		wi(boolToInt(rf(in.Rs1) < rf(in.Rs2)))
	case isa.FEQ:
		wi(boolToInt(rf(in.Rs1) == rf(in.Rs2)))
	case isa.HALT:
		m.Halted = true
		tr.NextPC = m.PC
	default:
		return Trace{}, fmt.Errorf("emu: unimplemented op %v at pc %#x", in.Op, m.PC)
	}

	m.PC = tr.NextPC
	m.Retired++
	return tr, nil
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Run executes until halt or until limit instructions have retired.
// It returns the number of instructions retired.
func (m *Machine) Run(limit uint64) (uint64, error) {
	start := m.Retired
	for !m.Halted && m.Retired-start < limit {
		if _, err := m.Step(); err != nil {
			return m.Retired - start, err
		}
	}
	return m.Retired - start, nil
}

// RunUntil executes until the PC first reaches target (the paper's
// fast-forward over initialization), until halt, or until limit
// instructions. It reports the number of instructions executed.
func (m *Machine) RunUntil(target uint64, limit uint64) (uint64, error) {
	start := m.Retired
	for !m.Halted && m.PC != target && m.Retired-start < limit {
		if _, err := m.Step(); err != nil {
			return m.Retired - start, err
		}
	}
	return m.Retired - start, nil
}

// Stream adapts a Machine into the dynamic-trace iterator consumed by the
// timing simulators.
type Stream struct {
	m     *Machine
	limit uint64
	err   error
}

// NewStream returns a stream producing at most limit dynamic instructions
// (0 means unlimited: run to halt).
func NewStream(m *Machine, limit uint64) *Stream {
	return &Stream{m: m, limit: limit}
}

// Next returns the next dynamic instruction. ok is false once the machine
// halted, the limit was reached, or an error occurred (see Err).
func (s *Stream) Next() (Trace, bool) {
	if s.err != nil || s.m.Halted {
		return Trace{}, false
	}
	if s.limit > 0 && s.m.Retired >= s.limit {
		return Trace{}, false
	}
	tr, err := s.m.Step()
	if err != nil {
		s.err = err
		return Trace{}, false
	}
	return tr, true
}

// Err reports a stream-terminating execution error, if any.
func (s *Stream) Err() error { return s.err }

// Machine exposes the underlying machine (for end-state checks).
func (s *Stream) Machine() *Machine { return s.m }
