package emu

import (
	"math"
	"testing"

	"flywheel/internal/asm"
	"flywheel/internal/isa"
)

func run(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(p)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.Halted {
		t.Fatal("program did not halt within 1M instructions")
	}
	return m
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
	li r1, 7
	li r2, 3
	add r3, r1, r2    ; 10
	sub r4, r1, r2    ; 4
	mul r5, r1, r2    ; 21
	div r6, r1, r2    ; 2
	rem r7, r1, r2    ; 1
	and r8, r1, r2    ; 3
	or  r9, r1, r2    ; 7
	xor r10, r1, r2   ; 4
	sll r11, r1, r2   ; 56
	srl r12, r1, r2   ; 0
	slt r13, r2, r1   ; 1
	halt
`)
	want := map[int]uint64{3: 10, 4: 4, 5: 21, 6: 2, 7: 1, 8: 3, 9: 7, 10: 4, 11: 56, 12: 0, 13: 1}
	for r, v := range want {
		if got := m.IntRegs[r]; got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestSignedOps(t *testing.T) {
	m := run(t, `
	li r1, -8
	li r2, 3
	div r3, r1, r2    ; -2
	rem r4, r1, r2    ; -2
	srai r5, r1, 1    ; -4
	srli r6, r1, 60   ; 15
	slt r7, r1, r2    ; 1
	sltu r8, r1, r2   ; 0 (-8 unsigned is huge)
	halt
`)
	if got := int64(m.IntRegs[3]); got != -2 {
		t.Errorf("div = %d, want -2", got)
	}
	if got := int64(m.IntRegs[4]); got != -2 {
		t.Errorf("rem = %d, want -2", got)
	}
	if got := int64(m.IntRegs[5]); got != -4 {
		t.Errorf("srai = %d, want -4", got)
	}
	if got := m.IntRegs[6]; got != 15 {
		t.Errorf("srli = %d, want 15", got)
	}
	if m.IntRegs[7] != 1 || m.IntRegs[8] != 0 {
		t.Errorf("slt/sltu = %d/%d, want 1/0", m.IntRegs[7], m.IntRegs[8])
	}
}

func TestDivideByZero(t *testing.T) {
	m := run(t, `
	li r1, 9
	li r2, 0
	div r3, r1, r2
	rem r4, r1, r2
	halt
`)
	if got := int64(m.IntRegs[3]); got != -1 {
		t.Errorf("div/0 = %d, want -1", got)
	}
	if got := m.IntRegs[4]; got != 9 {
		t.Errorf("rem/0 = %d, want 9", got)
	}
}

func TestR0IsZero(t *testing.T) {
	m := run(t, `
	li r1, 5
	add r0, r1, r1   ; write to r0 discarded
	add r2, r0, r0
	halt
`)
	if m.IntRegs[0] != 0 {
		t.Errorf("r0 = %d, want 0", m.IntRegs[0])
	}
	if m.IntRegs[2] != 0 {
		t.Errorf("r2 = %d, want 0", m.IntRegs[2])
	}
}

func TestLoadsAndStores(t *testing.T) {
	m := run(t, `
	la r1, tbl
	ld r2, 0(r1)     ; 11
	ld r3, 8(r1)     ; 22
	add r4, r2, r3
	sd r4, 16(r1)
	lw r5, 0(r1)
	lb r6, 0(r1)
	sb r6, 24(r1)
	sw r5, 32(r1)
	halt
.data
tbl:
	.word 11, 22, 0, 0, 0
`)
	base := m.Prog.Symbols["tbl"]
	if got := m.Mem.Read(base+16, 8); got != 33 {
		t.Errorf("stored sum = %d, want 33", got)
	}
	if got := m.IntRegs[5]; got != 11 {
		t.Errorf("lw = %d, want 11", got)
	}
	if got := m.Mem.Read(base+24, 1); got != 11 {
		t.Errorf("sb = %d, want 11", got)
	}
	if got := m.Mem.Read(base+32, 4); got != 11 {
		t.Errorf("sw = %d, want 11", got)
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 with a countdown loop.
	m := run(t, `
	li r1, 10
	li r2, 0
loop:
	add r2, r2, r1
	addi r1, r1, -1
	bnez r1, loop
	halt
`)
	if got := m.IntRegs[2]; got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestCallReturn(t *testing.T) {
	m := run(t, `
	li r4, 5
	call double
	mv r6, r5
	call double2   ; returns r5 = r4*4 via nested calls? no: doubles r6
	halt
double:
	add r5, r4, r4
	ret
double2:
	add r5, r6, r6
	ret
`)
	if got := m.IntRegs[5]; got != 20 {
		t.Errorf("r5 = %d, want 20", got)
	}
}

func TestNestedCallsWithStack(t *testing.T) {
	// fib(10) = 55 with a recursive implementation using the stack.
	m := run(t, `
.global main
main:
	li  r4, 10
	call fib
	halt
; fib(n in r4) -> r5
fib:
	slti r6, r4, 2
	beqz r6, rec
	mv   r5, r4
	ret
rec:
	addi sp, sp, -24
	sd   ra, 0(sp)
	sd   r4, 8(sp)
	addi r4, r4, -1
	call fib
	sd   r5, 16(sp)
	ld   r4, 8(sp)
	addi r4, r4, -2
	call fib
	ld   r6, 16(sp)
	add  r5, r5, r6
	ld   ra, 0(sp)
	addi sp, sp, 24
	ret
`)
	if got := m.IntRegs[5]; got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, `
	la  r1, vals
	fld f1, 0(r1)
	fld f2, 8(r1)
	fadd f3, f1, f2
	fmul f4, f1, f2
	fsub f5, f1, f2
	fdiv f6, f1, f2
	fneg f7, f1
	flt r2, f2, f1
	feq r3, f1, f1
	li  r4, 3
	fcvtif f8, r4
	fcvtfi r5, f4
	fsd f3, 16(r1)
	halt
.data
vals:
	.double 2.5, 1.5, 0.0
`)
	if got := m.FPRegs[3]; got != 4.0 {
		t.Errorf("fadd = %v, want 4.0", got)
	}
	if got := m.FPRegs[4]; got != 3.75 {
		t.Errorf("fmul = %v, want 3.75", got)
	}
	if got := m.FPRegs[6]; math.Abs(got-2.5/1.5) > 1e-15 {
		t.Errorf("fdiv = %v", got)
	}
	if got := m.FPRegs[7]; got != -2.5 {
		t.Errorf("fneg = %v, want -2.5", got)
	}
	if m.IntRegs[2] != 1 || m.IntRegs[3] != 1 {
		t.Errorf("flt/feq = %d/%d, want 1/1", m.IntRegs[2], m.IntRegs[3])
	}
	if got := m.FPRegs[8]; got != 3.0 {
		t.Errorf("fcvtif = %v, want 3.0", got)
	}
	if got := m.IntRegs[5]; got != 3 {
		t.Errorf("fcvtfi = %d, want 3", got)
	}
	base := m.Prog.Symbols["vals"]
	if got := math.Float64frombits(m.Mem.Read(base+16, 8)); got != 4.0 {
		t.Errorf("fsd = %v, want 4.0", got)
	}
}

func TestTraceRecords(t *testing.T) {
	p := asm.MustAssemble("t.s", `
	li r1, 2
loop:
	addi r1, r1, -1
	bnez r1, loop
	ld r2, 0(r3)
	halt
`)
	m := New(p)
	var traces []Trace
	for !m.Halted {
		tr, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	// li, addi, bne(taken), addi, bne(not taken), ld, halt
	if len(traces) != 7 {
		t.Fatalf("trace count = %d, want 7", len(traces))
	}
	br1, br2 := traces[2], traces[4]
	if !br1.Taken || br1.NextPC != br1.PC-4 {
		t.Errorf("taken branch trace = %+v", br1)
	}
	if br2.Taken || br2.NextPC != br2.PC+4 {
		t.Errorf("fall-through branch trace = %+v", br2)
	}
	if !br1.IsMispredictable() {
		t.Error("branch not flagged mispredictable")
	}
	ld := traces[5]
	if ld.Addr != 0 || ld.Inst.Op != isa.LD {
		t.Errorf("load trace = %+v", ld)
	}
	for i, tr := range traces {
		if tr.Seq != uint64(i) {
			t.Errorf("trace %d has seq %d", i, tr.Seq)
		}
	}
}

func TestStepAfterHaltFails(t *testing.T) {
	m := run(t, "\thalt\n")
	if _, err := m.Step(); err == nil {
		t.Error("step after halt succeeded")
	}
}

func TestPCOutOfRange(t *testing.T) {
	p := asm.MustAssemble("t.s", "\tjr r1\n\thalt\n") // r1 = 0 -> bad PC
	m := New(p)
	if _, err := m.Step(); err != nil {
		t.Fatalf("jr itself failed: %v", err)
	}
	if _, err := m.Step(); err == nil {
		t.Error("fetch from pc 0 succeeded")
	}
}

func TestStream(t *testing.T) {
	p := asm.MustAssemble("t.s", `
	li r1, 100
loop:
	addi r1, r1, -1
	bnez r1, loop
	halt
`)
	s := NewStream(New(p), 10)
	n := 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("limited stream yielded %d, want 10", n)
	}
	if s.Err() != nil {
		t.Errorf("stream error: %v", s.Err())
	}

	// Unlimited stream runs to halt: 1 + 100*2 + 1 instructions.
	s = NewStream(New(p), 0)
	n = 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 202 {
		t.Errorf("full stream yielded %d, want 202", n)
	}
	if !s.Machine().Halted {
		t.Error("machine not halted at stream end")
	}
}

func TestCodeImageLoaded(t *testing.T) {
	p := asm.MustAssemble("t.s", "\taddi r1, r0, 7\n\thalt\n")
	m := New(p)
	w := uint32(m.Mem.Read(asm.CodeBase, 4))
	in, err := isa.Decode(w)
	if err != nil {
		t.Fatalf("decode fetched word: %v", err)
	}
	if in.Op != isa.ADDI || in.Imm != 7 {
		t.Errorf("code image word 0 = %v", in)
	}
}

func TestStackPointerInitialized(t *testing.T) {
	p := asm.MustAssemble("t.s", "\thalt\n")
	m := New(p)
	if m.IntRegs[29] != StackTop {
		t.Errorf("sp = %#x, want %#x", m.IntRegs[29], StackTop)
	}
}
