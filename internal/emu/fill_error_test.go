package emu

import (
	"testing"

	"flywheel/internal/asm"
)

// faultProgram executes exactly five instructions and then jumps outside
// the code section, which makes the sixth Step fail — the smallest
// reproduction of a mid-stream execution fault.
const faultProgram = `
        .text
        addi r1, r0, 1
        addi r2, r0, 2
        addi r3, r0, 3
        addi r4, r0, 4
        li   r5, 150994944
        jalr r0, r5
`

func faultMachine(t *testing.T) *Machine {
	t.Helper()
	prog, err := asm.Assemble("fault.s", faultProgram)
	if err != nil {
		t.Fatal(err)
	}
	return New(prog)
}

// TestFillReturnsPrefixBeforeFault pins the error-path contract of
// Stream.Fill: a fault in the middle of a batch must deliver the records
// produced before it, with the error held for Err(), not a short count
// that silently drops work. The timing cores rely on this to account
// every retired instruction up to a fault, and the trace recorder relies
// on it to tape the exact prefix a live run observed.
func TestFillReturnsPrefixBeforeFault(t *testing.T) {
	m := faultMachine(t)
	s := NewStream(m, 0)
	buf := make([]Trace, 64)
	n := s.Fill(buf)
	if n != 6 {
		t.Fatalf("Fill returned %d records, want the full 6-instruction prefix before the fault", n)
	}
	if s.Err() == nil {
		t.Fatal("Err() must report the fault that ended the stream")
	}
	for i, tr := range buf[:n] {
		if tr.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d: prefix records must be the pre-fault stream", i, tr.Seq)
		}
	}
	// The stream stays terminated: no further records, error sticky.
	if again := s.Fill(buf); again != 0 {
		t.Fatalf("Fill after fault returned %d records, want 0", again)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next after fault must report end of stream")
	}
	if s.Err() == nil {
		t.Fatal("Err() must stay set after the fault")
	}
}

// TestFillFaultAtBufferBoundary drives the fault onto the exact buffer
// boundary: when the last record that fits in the buffer is also the last
// before the fault, Fill must return a full buffer and only the *next*
// call reports zero with the error set.
func TestFillFaultAtBufferBoundary(t *testing.T) {
	m := faultMachine(t)
	s := NewStream(m, 0)
	buf := make([]Trace, 6) // exactly the pre-fault prefix
	if n := s.Fill(buf); n != 6 {
		t.Fatalf("Fill returned %d, want 6", n)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("fault must not be charged to the full-buffer call: Err() = %v", err)
	}
	if n := s.Fill(buf); n != 0 {
		t.Fatalf("post-boundary Fill returned %d, want 0", n)
	}
	if s.Err() == nil {
		t.Fatal("Err() must report the fault after the boundary call")
	}
}

// TestNextMatchesFillOnFaultingStream checks the two delivery paths agree
// on a faulting stream record for record.
func TestNextMatchesFillOnFaultingStream(t *testing.T) {
	sa := NewStream(faultMachine(t), 0)
	sb := NewStream(faultMachine(t), 0)
	var viaFill []Trace
	buf := make([]Trace, 4) // fault lands mid-buffer on the second call
	for {
		n := sa.Fill(buf)
		if n == 0 {
			break
		}
		viaFill = append(viaFill, buf[:n]...)
	}
	var viaNext []Trace
	for {
		tr, ok := sb.Next()
		if !ok {
			break
		}
		viaNext = append(viaNext, tr)
	}
	if len(viaFill) != len(viaNext) {
		t.Fatalf("Fill delivered %d records, Next %d", len(viaFill), len(viaNext))
	}
	for i := range viaFill {
		if viaFill[i] != viaNext[i] {
			t.Fatalf("record %d differs between Fill and Next", i)
		}
	}
	if (sa.Err() == nil) != (sb.Err() == nil) {
		t.Fatal("Fill and Next paths disagree about the terminating error")
	}
}
