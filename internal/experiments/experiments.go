// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns render-ready tables (via package
// stats) so the CLI, the benchmark harness and EXPERIMENTS.md all share one
// implementation.
//
// Every figure builds its complete job list up front and submits it to the
// lab (package lab), which fans the independent simulations across a worker
// pool and memoizes results by configuration — the baseline runs shared
// between Figures 11-14 simulate once per process, and a sweep renders
// byte-identically at any worker count.
//
// Reproduction contract (see DESIGN.md): absolute numbers differ from the
// paper — the workloads are proxies and the substrate is a from-scratch
// simulator — but the shapes must hold: who wins, by roughly what factor,
// and where the crossovers fall.
package experiments

import (
	"fmt"

	"flywheel/internal/cacti"
	"flywheel/internal/lab"
	"flywheel/internal/sim"
	"flywheel/internal/stats"
	"flywheel/internal/workload"
)

// Options configures the experiment runs.
type Options struct {
	// Instructions is the measured dynamic instruction budget per run.
	Instructions uint64
	// Node is the technology point for the timing/power experiments
	// (Figures 11-14); Figure 15 sweeps its own nodes.
	Node cacti.Node
	// Parallel is the simulation worker-pool size; 0 uses GOMAXPROCS.
	Parallel int
	// Cache memoizes runs. Nil uses a process-wide cache shared by every
	// experiment, so e.g. the baseline column common to Figures 11-14
	// simulates exactly once per process.
	Cache *lab.Cache
	// Progress, when non-nil, is called after each completed simulation.
	Progress func(done, total int, j lab.Job)
}

// DefaultOptions mirror the evaluation setup at a practical budget.
func DefaultOptions() Options {
	return Options{Instructions: 300_000, Node: cacti.Node130}
}

func (o Options) normalize() Options {
	if o.Instructions == 0 {
		o.Instructions = 300_000
	}
	if o.Node == 0 {
		o.Node = cacti.Node130
	}
	return o
}

// sharedCache memoizes runs across every experiment in the process.
var sharedCache = lab.NewCache()

// runAll submits a figure's job list to the lab.
func (o Options) runAll(jobs []lab.Job) ([]sim.Result, error) {
	cache := o.Cache
	if cache == nil {
		cache = sharedCache
	}
	return lab.Run(jobs, lab.Options{Workers: o.Parallel, Cache: cache, Progress: o.Progress})
}

// job builds the common job shape of the timing/power figures.
func (o Options) job(name string, arch sim.Arch, fe, be int) lab.Job {
	return lab.Job{
		Workload: name, Arch: arch, Node: o.Node,
		FEBoostPct: fe, BEBoostPct: be,
		MaxInstructions: o.Instructions,
	}
}

// Figure1 reproduces the latency-scaling curves: access latency of issue
// windows, caches and register files across process technologies.
func Figure1() *stats.Table {
	tbl := stats.NewTable("Figure 1 — access latency [ps] vs technology node",
		append([]string{"structure"}, nodeNames()...)...)
	for _, c := range cacti.Figure1() {
		row := []string{c.Label}
		for _, v := range c.LatencyPS {
			row = append(row, stats.F(v, 0))
		}
		tbl.Add(row...)
	}
	return tbl
}

// Table1 reproduces the per-module clock frequencies, alongside the paper's
// published values.
func Table1() *stats.Table {
	tbl := stats.NewTable("Table 1 — module clock frequencies [MHz] (model / paper)",
		"module", "0.18um", "0.13um", "0.09um", "0.06um")
	nodes := []cacti.Node{cacti.Node180, cacti.Node130, cacti.Node90, cacti.Node60}
	row := func(name string, get func(cacti.Table1Row) float64) {
		cells := []string{name}
		for _, n := range nodes {
			model := get(cacti.Table1(n))
			paper := get(cacti.PaperTable1[n])
			cells = append(cells, fmt.Sprintf("%.0f / %.0f", model, paper))
		}
		tbl.Add(cells...)
	}
	row("Issue Window (1 cyc)", func(r cacti.Table1Row) float64 { return r.IssueWindow })
	row("I-Cache (2 cyc)", func(r cacti.Table1Row) float64 { return r.ICache })
	row("D-Cache (2 cyc)", func(r cacti.Table1Row) float64 { return r.DCache })
	row("Register File (1 cyc)", func(r cacti.Table1Row) float64 { return r.RegFile })
	row("Execution Cache (3 cyc)", func(r cacti.Table1Row) float64 { return r.ExecutionCache })
	row("Flywheel RF (2 cyc)", func(r cacti.Table1Row) float64 { return r.FlywheelRegFile })
	return tbl
}

func nodeNames() []string {
	out := make([]string, len(cacti.Nodes))
	for i, n := range cacti.Nodes {
		out[i] = n.String()
	}
	return out
}

// figure2Jobs lists Figure 2's runs: per benchmark, the plain baseline, the
// extra-front-end-stage variant, and the pipelined wake-up/select variant.
func figure2Jobs(opt Options) []lab.Job {
	var jobs []lab.Job
	for _, name := range workload.Names() {
		base := opt.job(name, sim.ArchBaseline, 0, 0)
		fe := base
		fe.ExtraFrontEndStages = 1
		ws := base
		ws.PipelinedWakeupSelect = true
		jobs = append(jobs, base, fe, ws)
	}
	return jobs
}

// Figure2 reproduces the pipelining-sensitivity study: IPC degradation from
// one extra front-end stage (Fetch/Mispredict loop) vs from pipelining
// Wake-Up/Select.
func Figure2(opt Options) (*stats.Table, error) {
	opt = opt.normalize()
	res, err := opt.runAll(figure2Jobs(opt))
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Figure 2 — IPC degradation [%] from pipelining critical loops",
		"bench", "fetch/mispredict +1 stage", "wake-up/select pipelined")
	var feLoss, wsLoss []float64
	for i, name := range workload.Names() {
		base, fe, ws := res[3*i], res[3*i+1], res[3*i+2]
		fePct := (1 - fe.IPC/base.IPC) * 100
		wsPct := (1 - ws.IPC/base.IPC) * 100
		feLoss = append(feLoss, fePct)
		wsLoss = append(wsLoss, wsPct)
		tbl.AddF(name, 1, fePct, wsPct)
	}
	tbl.AddF("average", 1, stats.Mean(feLoss), stats.Mean(wsLoss))
	return tbl, nil
}

// figure11Jobs lists Figure 11's runs: per benchmark, the baseline, the
// Register-Allocation configuration and the full Flywheel, all at the
// baseline clock.
func figure11Jobs(opt Options) []lab.Job {
	var jobs []lab.Job
	for _, name := range workload.Names() {
		jobs = append(jobs,
			opt.job(name, sim.ArchBaseline, 0, 0),
			opt.job(name, sim.ArchRegAlloc, 0, 0),
			opt.job(name, sim.ArchFlywheel, 0, 0),
		)
	}
	return jobs
}

// Figure11 reproduces the equal-clock comparison: the Register-Allocation
// configuration and the full Flywheel, normalized to the baseline.
func Figure11(opt Options) (*stats.Table, error) {
	opt = opt.normalize()
	res, err := opt.runAll(figure11Jobs(opt))
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Figure 11 — normalized performance at the baseline clock",
		"bench", "register allocation", "flywheel", "EC residency")
	var ra, fw []float64
	for i, name := range workload.Names() {
		base, reg, fly := res[3*i], res[3*i+1], res[3*i+2]
		raPerf := reg.Speedup(base)
		fwPerf := fly.Speedup(base)
		ra = append(ra, raPerf)
		fw = append(fw, fwPerf)
		tbl.Add(name, stats.F(raPerf, 3), stats.F(fwPerf, 3), stats.Pct(fly.ECResidency))
	}
	tbl.Add("average", stats.F(stats.GeoMean(ra), 3), stats.F(stats.GeoMean(fw), 3), "")
	return tbl, nil
}

// FESweep is the front-end boost series shared by Figures 12-14.
var FESweep = []int{0, 25, 50, 75, 100}

// SweepData holds the Figure 12-14 runs: per benchmark, the baseline run
// and the Flywheel runs at every front-end boost (back-end +50%).
type SweepData struct {
	Options   Options
	Baselines map[string]sim.Result
	Flywheel  map[string]map[int]sim.Result // bench -> FE% -> result
}

// sweepJobs lists the clock-scaling runs: per benchmark, the baseline and
// one Flywheel run per front-end boost at back-end +50%.
func sweepJobs(opt Options) []lab.Job {
	var jobs []lab.Job
	for _, name := range workload.Names() {
		jobs = append(jobs, opt.job(name, sim.ArchBaseline, 0, 0))
		for _, fe := range FESweep {
			jobs = append(jobs, opt.job(name, sim.ArchFlywheel, fe, 50))
		}
	}
	return jobs
}

// Sweep performs the clock-scaling measurement once for all three figures.
func Sweep(opt Options) (*SweepData, error) {
	opt = opt.normalize()
	res, err := opt.runAll(sweepJobs(opt))
	if err != nil {
		return nil, err
	}
	d := &SweepData{
		Options:   opt,
		Baselines: map[string]sim.Result{},
		Flywheel:  map[string]map[int]sim.Result{},
	}
	stride := 1 + len(FESweep)
	for i, name := range workload.Names() {
		d.Baselines[name] = res[stride*i]
		d.Flywheel[name] = map[int]sim.Result{}
		for k, fe := range FESweep {
			d.Flywheel[name][fe] = res[stride*i+1+k]
		}
	}
	return d, nil
}

func sweepHeader() []string {
	h := []string{"bench"}
	for _, fe := range FESweep {
		h = append(h, fmt.Sprintf("FE%d%%,BE50%%", fe))
	}
	return h
}

// tabulate renders one metric of the sweep as a per-benchmark table with a
// geometric-mean average row.
func (d *SweepData) tabulate(title string, metric func(fly, base sim.Result) float64) *stats.Table {
	tbl := stats.NewTable(title, sweepHeader()...)
	avg := make([][]float64, len(FESweep))
	for _, name := range workload.Names() {
		row := []string{name}
		for i, fe := range FESweep {
			v := metric(d.Flywheel[name][fe], d.Baselines[name])
			avg[i] = append(avg[i], v)
			row = append(row, stats.F(v, 3))
		}
		tbl.Add(row...)
	}
	avgRow := []string{"average"}
	for i := range FESweep {
		avgRow = append(avgRow, stats.F(stats.GeoMean(avg[i]), 3))
	}
	tbl.Add(avgRow...)
	return tbl
}

// Figure12 renders normalized performance for the clock sweep.
func (d *SweepData) Figure12() *stats.Table {
	return d.tabulate("Figure 12 — normalized performance (FE sweep, BE+50%)",
		func(fly, base sim.Result) float64 { return fly.Speedup(base) })
}

// Figure13 renders normalized energy for the clock sweep.
func (d *SweepData) Figure13() *stats.Table {
	return d.tabulate("Figure 13 — normalized energy (FE sweep, BE+50%)",
		func(fly, base sim.Result) float64 { return fly.EnergyPJ / base.EnergyPJ })
}

// Figure14 renders normalized power for the clock sweep.
func (d *SweepData) Figure14() *stats.Table {
	return d.tabulate("Figure 14 — normalized power (FE sweep, BE+50%)",
		func(fly, base sim.Result) float64 { return fly.PowerW / base.PowerW })
}

// Residency renders the EC residency observed during the sweep (the paper's
// in-text "88% of the time on the alternative execution path").
func (d *SweepData) Residency() *stats.Table {
	tbl := stats.NewTable("EC residency — fraction of time in trace-execution mode",
		sweepHeader()...)
	avg := make([][]float64, len(FESweep))
	for _, name := range workload.Names() {
		row := []string{name}
		for i, fe := range FESweep {
			v := d.Flywheel[name][fe].ECResidency
			avg[i] = append(avg[i], v)
			row = append(row, stats.Pct(v))
		}
		tbl.Add(row...)
	}
	avgRow := []string{"average"}
	for i := range FESweep {
		avgRow = append(avgRow, stats.Pct(stats.Mean(avg[i])))
	}
	tbl.Add(avgRow...)
	return tbl
}

// Figure15Nodes are the technology points of the leakage study.
var Figure15Nodes = []cacti.Node{cacti.Node130, cacti.Node90, cacti.Node60}

// figure15Jobs lists the leakage study's runs: per benchmark and node, the
// baseline and the Flywheel at (FE+100%, BE+50%).
func figure15Jobs(opt Options) []lab.Job {
	var jobs []lab.Job
	for _, name := range workload.Names() {
		for _, node := range Figure15Nodes {
			o := opt
			o.Node = node
			jobs = append(jobs,
				o.job(name, sim.ArchBaseline, 0, 0),
				o.job(name, sim.ArchFlywheel, 100, 50),
			)
		}
	}
	return jobs
}

// Figure15 reproduces the energy-savings-vs-technology study at
// (FE+100%, BE+50%): each node's Flywheel energy normalized to that node's
// baseline.
func Figure15(opt Options) (*stats.Table, error) {
	opt = opt.normalize()
	res, err := opt.runAll(figure15Jobs(opt))
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Figure 15 — normalized energy at (FE+100%, BE+50%) per node",
		"bench", "130nm", "90nm", "60nm")
	avg := make([][]float64, len(Figure15Nodes))
	stride := 2 * len(Figure15Nodes)
	for bi, name := range workload.Names() {
		row := []string{name}
		for i := range Figure15Nodes {
			base, fly := res[stride*bi+2*i], res[stride*bi+2*i+1]
			v := fly.EnergyPJ / base.EnergyPJ
			avg[i] = append(avg[i], v)
			row = append(row, stats.F(v, 3))
		}
		tbl.Add(row...)
	}
	avgRow := []string{"average"}
	for i := range Figure15Nodes {
		avgRow = append(avgRow, stats.F(stats.GeoMean(avg[i]), 3))
	}
	tbl.Add(avgRow...)
	return tbl, nil
}

// SuiteJobs lists every run of the Figure 11-15 suite (with duplicates
// across figures left in, the way the figures submit them) — the input to
// the suite-regeneration benchmark.
func SuiteJobs(opt Options) []lab.Job {
	opt = opt.normalize()
	var jobs []lab.Job
	jobs = append(jobs, figure11Jobs(opt)...)
	jobs = append(jobs, sweepJobs(opt)...)
	jobs = append(jobs, figure15Jobs(opt)...)
	return jobs
}

// Table2 documents the simulated machine parameters (the paper's Table 2).
func Table2() *stats.Table {
	tbl := stats.NewTable("Table 2 — microarchitecture parameters", "parameter", "value")
	rows := [][2]string{
		{"Pipeline", "9 stages baseline, 4-way out-of-order"},
		{"Instruction Window", "128 entries, issue width 6"},
		{"Register File", "192 entries baseline; 512 entries / 2-cycle Flywheel"},
		{"Load/Store Queue", "64 entries"},
		{"I-Cache", "64K, 2-way, 2-cycle hit, LRU"},
		{"D-Cache", "64K, 4-way, 2-cycle hit, LRU"},
		{"L2 Cache", "unified 512K, 4-way, 10-cycle, LRU"},
		{"Execution Cache", "128K, 2-way, 3-cycle hit, 8-instruction blocks"},
		{"Memory", "100 baseline cycles (fixed wall-clock time)"},
		{"Functional Units", "4 int ALU, 2 int MUL/DIV, 2 mem ports, 2 FP add, 1 FP MUL/DIV"},
		{"Branch Prediction", "G-share, 12-bit history, 2048 entries"},
		{"Rename pools", "512 regs / 64 arch regs, adaptive redistribution every 500k cycles"},
	}
	for _, r := range rows {
		tbl.Add(r[0], r[1])
	}
	return tbl
}
