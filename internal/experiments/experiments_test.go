package experiments

import (
	"strconv"
	"strings"
	"testing"

	"flywheel/internal/cacti"
)

// tinyOptions keeps the smoke tests fast; cmd/experiments runs full budgets.
func tinyOptions() Options {
	return Options{Instructions: 6_000, Node: cacti.Node130}
}

// lastCell parses the numeric cell col of a table's trailing average row.
func lastCell(t *testing.T, rows [][]string, col int) float64 {
	t.Helper()
	if len(rows) == 0 {
		t.Fatal("empty table")
	}
	avg := rows[len(rows)-1]
	if avg[0] != "average" {
		t.Fatalf("last row is %q, want average", avg[0])
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(avg[col], "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", avg[col], err)
	}
	return v
}

func TestFigure1AndTable1Static(t *testing.T) {
	if got := len(Figure1().Rows); got != 6 {
		t.Errorf("figure 1 rows = %d, want 6", got)
	}
	tbl := Table1()
	if got := len(tbl.Rows); got != 6 {
		t.Errorf("table 1 rows = %d, want 6", got)
	}
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			if !strings.Contains(cell, "/") {
				t.Errorf("table 1 cell %q lacks model/paper pair", cell)
			}
		}
	}
	if got := len(Table2().Rows); got < 10 {
		t.Errorf("table 2 rows = %d, want >= 10", got)
	}
}

func TestFigure2ShapeHolds(t *testing.T) {
	tbl, err := Figure2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	feLoss := lastCell(t, tbl.Rows, 1)
	wsLoss := lastCell(t, tbl.Rows, 2)
	// The paper's central motivation: breaking back-to-back scheduling
	// costs far more than one extra front-end stage.
	if wsLoss <= feLoss {
		t.Errorf("wake-up/select loss %.1f%% not above front-end loss %.1f%%", wsLoss, feLoss)
	}
	if feLoss > 12 {
		t.Errorf("front-end stage loss %.1f%%, want small", feLoss)
	}
}

func TestFigure11RegAllocDropsOnRegisterHungryProxies(t *testing.T) {
	tbl, err := Figure11(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	perBench := map[string]float64{}
	for _, row := range tbl.Rows[:len(tbl.Rows)-1] {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		perBench[row[0]] = v
	}
	// The paper singles out gzip, vpr and parser as the benchmarks hurt by
	// the limited renaming capacity.
	for _, b := range []string{"gzip", "vpr", "parser"} {
		if perBench[b] >= 0.97 {
			t.Errorf("%s register-allocation perf = %.3f, want a visible drop", b, perBench[b])
		}
	}
}

func TestSweepFiguresConsistent(t *testing.T) {
	d, err := Sweep(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	perf := d.Figure12()
	energy := d.Figure13()
	pwr := d.Figure14()
	res := d.Residency()
	for _, tbl := range []*struct {
		name string
		rows int
	}{
		{"fig12", len(perf.Rows)}, {"fig13", len(energy.Rows)},
		{"fig14", len(pwr.Rows)}, {"residency", len(res.Rows)},
	} {
		if tbl.rows != 11 { // 10 benchmarks + average
			t.Errorf("%s rows = %d, want 11", tbl.name, tbl.rows)
		}
	}
	// Power must equal energy/time: normalized power ~= normalized energy *
	// speedup, so with speedup > 1 and energy < 1 the power column stays in
	// a sane band.
	if p := lastCell(t, pwr.Rows, 1); p < 0.5 || p > 2.0 {
		t.Errorf("normalized power average = %.2f, outside sanity band", p)
	}
	// The EC must carry most of the execution for the flywheel to make
	// sense at all.
	if r := lastCell(t, res.Rows, 1); r < 50 {
		t.Errorf("average EC residency = %.0f%%, implausibly low", r)
	}
}
