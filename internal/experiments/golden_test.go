package experiments

// Golden-shape regression tests: they pin the reproduction contract — who
// wins, in what order, and which way the crossovers fall — for Figure 11
// and Table 1, so a future refactor cannot silently flip a conclusion.

import (
	"strconv"
	"strings"
	"testing"

	"flywheel/internal/lab"
)

// parseCell reads the numeric (possibly %-suffixed) cell at row, col.
func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(cell), "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestFigure11GoldenShape(t *testing.T) {
	// The equal-clock shapes need the EC warmed up; tiny budgets flatter the
	// baseline, so this test runs a real 100k-instruction budget (~3s).
	opt := tinyOptions()
	opt.Instructions = 100_000
	tbl, err := Figure11(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11 { // 10 benchmarks + average
		t.Fatalf("figure 11 rows = %d, want 11", len(tbl.Rows))
	}
	avg := tbl.Rows[len(tbl.Rows)-1]
	if avg[0] != "average" {
		t.Fatalf("last row is %q, want average", avg[0])
	}
	raAvg := parseCell(t, avg[1])
	fwAvg := parseCell(t, avg[2])

	// Contract 1 — who wins where: limited renaming costs the RA
	// configuration performance on the register-hungry proxies, and the EC
	// recovers each of them. This is Figure 11's core claim.
	cells := map[string][]string{}
	for _, row := range tbl.Rows[:len(tbl.Rows)-1] {
		cells[row[0]] = row
	}
	for _, b := range []string{"gzip", "vpr", "parser"} {
		row, ok := cells[b]
		if !ok {
			t.Fatalf("benchmark %s missing from figure 11", b)
		}
		ra := parseCell(t, row[1])
		fw := parseCell(t, row[2])
		if ra >= 0.97 {
			t.Errorf("%s: register-allocation perf %.3f, want a visible drop below the baseline", b, ra)
		}
		if fw <= ra {
			t.Errorf("%s: flywheel %.3f not above register allocation %.3f (the EC must recover the renaming loss)", b, fw, ra)
		}
	}
	// Contract 2 — crossover direction: at the equal clock the averages sit
	// below baseline parity (the win in Figures 12-14 comes from the clock
	// boost, not from equal-clock IPC), but within the near-parity band.
	if raAvg >= 1.0 {
		t.Errorf("register-allocation average %.3f, want < 1.0", raAvg)
	}
	if fwAvg < 0.8 || fwAvg >= 1.05 {
		t.Errorf("flywheel average %.3f, want in the near-parity band [0.8, 1.05)", fwAvg)
	}
	// Contract 3 — the EC carries the execution: residency stays high on
	// every benchmark, the precondition for the paper's clock-gating story.
	for _, row := range tbl.Rows[:len(tbl.Rows)-1] {
		if resid := parseCell(t, row[3]); resid < 75 {
			t.Errorf("%s: EC residency %.1f%%, implausibly low", row[0], resid)
		}
	}
}

func TestTable1GoldenShape(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) != 6 {
		t.Fatalf("table 1 rows = %d, want 6", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		module := row[0]
		var model, paper []float64
		for _, cell := range row[1:] {
			parts := strings.SplitN(cell, "/", 2)
			if len(parts) != 2 {
				t.Fatalf("%s: cell %q lacks model/paper pair", module, cell)
			}
			model = append(model, parseCell(t, parts[0]))
			paper = append(paper, parseCell(t, parts[1]))
		}
		// Contract 1 — ordering: every module clocks strictly faster at each
		// smaller node (columns run 0.18um -> 0.06um).
		for i := 1; i < len(model); i++ {
			if model[i] <= model[i-1] {
				t.Errorf("%s: model frequency not increasing across shrink: %v", module, model)
				break
			}
		}
		// Contract 2 — magnitude: the model stays within 2x of the paper's
		// published frequency at every node.
		for i := range model {
			if ratio := model[i] / paper[i]; ratio < 0.5 || ratio > 2.0 {
				t.Errorf("%s: model %.0f vs paper %.0f MHz (ratio %.2f), outside 2x band",
					module, model[i], paper[i], ratio)
			}
		}
	}
	// Contract 3 — who loses, and by a growing margin: the issue window is
	// the slowest clock in every column (it sets the baseline frequency),
	// and every other module's lead over it widens from 0.18um to 0.06um —
	// the scaling gap that motivates the dual-clock design.
	modelAt := func(row []string, col int) float64 {
		return parseCell(t, strings.SplitN(row[col], "/", 2)[0])
	}
	iw := tbl.Rows[0]
	first, last := 1, len(iw)-1
	for _, row := range tbl.Rows[1:] {
		for col := first; col <= last; col++ {
			if v := modelAt(row, col); v <= modelAt(iw, col) {
				t.Errorf("col %d: %s clocks at %.0f MHz, want above the issue window's %.0f", col, row[0], v, modelAt(iw, col))
			}
		}
		leadFirst := modelAt(row, first) / modelAt(iw, first)
		leadLast := modelAt(row, last) / modelAt(iw, last)
		if leadLast <= leadFirst {
			t.Errorf("%s: lead over the issue window shrank from %.2fx (0.18um) to %.2fx (0.06um); the scaling gap must widen", row[0], leadFirst, leadLast)
		}
	}
}

// TestTablesByteIdenticalAcrossWorkerCounts is the determinism contract at
// the rendering layer: a figure regenerated serially and with 8 workers
// must produce byte-identical text.
func TestTablesByteIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := tinyOptions()
	serial.Parallel = 1
	serial.Cache = lab.NewCache()
	parallel := tinyOptions()
	parallel.Parallel = 8
	parallel.Cache = lab.NewCache()

	s11, err := Figure11(serial)
	if err != nil {
		t.Fatal(err)
	}
	p11, err := Figure11(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if s11.String() != p11.String() {
		t.Error("figure 11 differs between Workers:1 and Workers:8")
	}

	sd, err := Sweep(serial)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := Sweep(parallel)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{
		{sd.Figure12().String(), pd.Figure12().String()},
		{sd.Figure13().String(), pd.Figure13().String()},
		{sd.Figure14().String(), pd.Figure14().String()},
		{sd.Residency().String(), pd.Residency().String()},
	} {
		if pair[0] != pair[1] {
			t.Error("sweep table differs between Workers:1 and Workers:8")
		}
	}
}

// TestSuiteSharesBaselinesThroughCache pins the memoization win: the
// Figure 11-15 suite submits 150 jobs but fewer distinct configurations —
// the 0.13um baseline repeats across Figures 11, 12-14 and 15, and the
// sweep's (FE+100%, BE+50%) point reappears in Figure 15.
func TestSuiteSharesBaselinesThroughCache(t *testing.T) {
	opt := tinyOptions()
	opt.Cache = lab.NewCache()
	jobs := SuiteJobs(opt)
	if len(jobs) != 150 { // fig11: 30, sweep: 60, fig15: 60
		t.Fatalf("suite jobs = %d, want 150", len(jobs))
	}
	distinct := map[string]bool{}
	for _, j := range jobs {
		distinct[j.Key()] = true
	}
	if _, err := lab.Run(jobs, lab.Options{Workers: 4, Cache: opt.Cache}); err != nil {
		t.Fatal(err)
	}
	if got := opt.Cache.Misses(); got != uint64(len(distinct)) {
		t.Errorf("misses = %d, want %d distinct configurations", got, len(distinct))
	}
	if got := opt.Cache.Hits(); got != uint64(len(jobs)-len(distinct)) {
		t.Errorf("hits = %d, want %d duplicate submissions", got, len(jobs)-len(distinct))
	}
	if len(jobs)-len(distinct) < 20 {
		t.Errorf("only %d duplicate submissions in the suite; expected the baseline columns to repeat", len(jobs)-len(distinct))
	}
}
