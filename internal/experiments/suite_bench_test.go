package experiments

// Suite-regeneration benchmarks: the acceptance check that running the
// Figure 11-15 experiment suite through the lab with a full worker pool
// beats the serial path. Run with:
//
//	go test ./internal/experiments -bench Suite -benchtime 2x
//
// On a multi-core machine BenchmarkSuiteWorkersMax should beat
// BenchmarkSuiteWorkers1 roughly by the core count (the jobs are
// independent); BenchmarkSuiteWarmCache shows the memoization floor — the
// whole suite served from cache.

import (
	"runtime"
	"testing"

	"flywheel/internal/lab"
)

func benchSuite(b *testing.B, workers int, cache *lab.Cache) {
	opt := tinyOptions()
	jobs := SuiteJobs(opt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cache
		if c == nil {
			c = lab.NewCache()
		}
		if _, err := lab.Run(jobs, lab.Options{Workers: workers, Cache: c}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteWorkers1(b *testing.B) { benchSuite(b, 1, nil) }

func BenchmarkSuiteWorkersMax(b *testing.B) { benchSuite(b, runtime.GOMAXPROCS(0), nil) }

// BenchmarkSuiteWarmCache measures the memoized path: every job of the
// suite already cached from a priming run.
func BenchmarkSuiteWarmCache(b *testing.B) {
	cache := lab.NewCache()
	if _, err := lab.Run(SuiteJobs(tinyOptions()), lab.Options{Cache: cache}); err != nil {
		b.Fatal(err)
	}
	benchSuite(b, runtime.GOMAXPROCS(0), cache)
}
