package explore

import (
	"fmt"
	"strconv"
	"strings"

	"flywheel/internal/branch"
	"flywheel/internal/cacti"
	"flywheel/internal/mem"
	"flywheel/internal/sim"
	"flywheel/internal/workload/synth"
)

// Axes carries the textual value of every grid dimension — the shape both
// the explore CLI flags and labd's /v1/frontier query parameters share.
// Profile knob lists cross-product into the profile axis; Space validates
// and assembles the exploration space.
type Axes struct {
	ILP, Entropy, FPMix, Mem, Stride, Reuse, Code string
	// Period, Chase and StrideBytes are the frontend-stress profile knobs
	// (synth.Profile.BranchPeriod / ChaseFrac / StrideBytes); "0" leaves
	// the legacy behavior.
	Period, Chase, StrideBytes string
	Seed                       uint64
	Passes                     int
	Arch, FE, BE, Node         string
	// Predictor / Prefetcher are comma-lists of frontend component names
	// ("gshare,tage" / "none,delta").
	Predictor, Prefetcher string
	Instructions          uint64
	// MaxPoints bounds the enumerated grid so a typo in a list (or an
	// abusive query) fails fast instead of queueing hours of simulation;
	// zero applies DefaultMaxPoints.
	MaxPoints int
}

// DefaultMaxPoints is the grid-size guard applied when Axes.MaxPoints is
// zero.
const DefaultMaxPoints = 4096

// DefaultAxes returns the axis defaults shared by the CLI and the service.
func DefaultAxes() Axes {
	return Axes{
		ILP: "1,4,6", Entropy: "0,1", FPMix: "0", Mem: "32",
		Stride: "0.5", Reuse: "0", Code: "4",
		Period: "0", Chase: "0", StrideBytes: "0", Seed: 1,
		Arch: "flywheel", FE: "0,50,100", BE: "50", Node: "0.13",
		Predictor: branch.DirGShare, Prefetcher: mem.PFNone,
		Instructions: 300_000,
	}
}

// Space cross-products the profile knob lists into the profile axis and
// assembles the exploration space.
func (a Axes) Space() (Space, error) {
	var sp Space
	ilps, err := intList("ilp", a.ILP)
	if err != nil {
		return sp, err
	}
	entropies, err := floatList("entropy", a.Entropy)
	if err != nil {
		return sp, err
	}
	fps, err := floatList("fp", a.FPMix)
	if err != nil {
		return sp, err
	}
	mems, err := intList("mem", a.Mem)
	if err != nil {
		return sp, err
	}
	strides, err := floatList("stride", a.Stride)
	if err != nil {
		return sp, err
	}
	reuses, err := floatList("rr", a.Reuse)
	if err != nil {
		return sp, err
	}
	codes, err := intList("code", a.Code)
	if err != nil {
		return sp, err
	}
	periods, err := intListDefault("period", a.Period)
	if err != nil {
		return sp, err
	}
	chases, err := floatListDefault("chase", a.Chase)
	if err != nil {
		return sp, err
	}
	sbytes, err := intListDefault("stridebytes", a.StrideBytes)
	if err != nil {
		return sp, err
	}
	for _, i := range ilps {
		for _, e := range entropies {
			for _, f := range fps {
				for _, m := range mems {
					for _, s := range strides {
						for _, r := range reuses {
							for _, c := range codes {
								for _, bp := range periods {
									for _, ch := range chases {
										for _, sb := range sbytes {
											sp.Profiles = append(sp.Profiles, synth.Profile{
												ILP: i, BranchEntropy: e, FPMix: f,
												MemFootprintKB: m, StrideFrac: s, RegReuse: r,
												CodeFootprintKB: c, Seed: a.Seed, Passes: a.Passes,
												BranchPeriod: bp, ChaseFrac: ch, StrideBytes: sb,
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}

	for _, name := range splitList(a.Predictor) {
		if !branch.KnownDirection(name) {
			return sp, fmt.Errorf("unknown predictor %q (want %s)", name, strings.Join(branch.Directions(), ", "))
		}
		sp.Predictors = append(sp.Predictors, name)
	}
	for _, name := range splitList(a.Prefetcher) {
		if !mem.KnownPrefetcher(name) {
			return sp, fmt.Errorf("unknown prefetcher %q (want %s)", name, strings.Join(mem.Prefetchers(), ", "))
		}
		sp.Prefetchers = append(sp.Prefetchers, name)
	}

	archNames := splitList(a.Arch)
	if len(archNames) == 0 {
		return sp, fmt.Errorf("-arch is empty")
	}
	for _, name := range archNames {
		switch name {
		case "baseline":
			sp.Archs = append(sp.Archs, sim.ArchBaseline)
		case "flywheel":
			sp.Archs = append(sp.Archs, sim.ArchFlywheel)
		case "regalloc":
			sp.Archs = append(sp.Archs, sim.ArchRegAlloc)
		default:
			return sp, fmt.Errorf("unknown architecture %q (want baseline, flywheel or regalloc)", name)
		}
	}
	if sp.FEBoosts, err = intList("fe", a.FE); err != nil {
		return sp, err
	}
	if sp.BEBoosts, err = intList("be", a.BE); err != nil {
		return sp, err
	}
	nodeNames := splitList(a.Node)
	if len(nodeNames) == 0 {
		return sp, fmt.Errorf("-node is empty")
	}
	for _, s := range nodeNames {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return sp, fmt.Errorf("bad node %q", s)
		}
		switch nd := cacti.Node(v); nd {
		case cacti.Node180, cacti.Node130, cacti.Node90, cacti.Node60:
			sp.Nodes = append(sp.Nodes, nd)
		default:
			return sp, fmt.Errorf("unsupported node %v (want 0.18, 0.13, 0.09 or 0.06)", v)
		}
	}
	sp.Instructions = a.Instructions

	maxPoints := a.MaxPoints
	if maxPoints == 0 {
		maxPoints = DefaultMaxPoints
	}
	preds, pfs := len(sp.Predictors), len(sp.Prefetchers)
	if preds == 0 {
		preds = 1 // normalize() will default the axis to one point
	}
	if pfs == 0 {
		pfs = 1
	}
	if size := len(sp.Profiles) * len(sp.Archs) * preds * pfs * len(sp.FEBoosts) * len(sp.BEBoosts) * len(sp.Nodes); size > maxPoints {
		return sp, fmt.Errorf("grid has %d points, max %d — trim an axis", size, maxPoints)
	}
	return sp, nil
}

// intListDefault parses a comma-list of ints, treating an empty string as
// the single value 0 — the frontend-stress knobs are additions whose zero
// value is "legacy behavior", so an Axes struct built without them keeps
// its old meaning.
func intListDefault(name, s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{0}, nil
	}
	return intList(name, s)
}

// floatListDefault is intListDefault for float axes.
func floatListDefault(name, s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return []float64{0}, nil
	}
	return floatList(name, s)
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func intList(name, s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad -%s value %q", name, f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s is empty", name)
	}
	return out, nil
}

func floatList(name, s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -%s value %q", name, f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s is empty", name)
	}
	return out, nil
}
