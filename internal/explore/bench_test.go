package explore

// Frontier-sweep benchmarks in the style of the experiment suite's
// (internal/experiments/suite_bench_test.go): the wall-clock of one
// design-space exploration at Workers:1 vs a full worker pool, plus the
// memoized floor with every configuration already cached. Run with:
//
//	go test ./internal/explore -bench Explore -benchtime 2x

import (
	"runtime"
	"testing"

	"flywheel/internal/lab"
	"flywheel/internal/sim"
	"flywheel/internal/workload/synth"
)

// benchSpace is a moderate grid: 3 profiles × (2 boosts + baseline) at a
// small per-run budget, so the benchmark exercises scheduling rather than
// one giant simulation.
func benchSpace() Space {
	return Space{
		Profiles: []synth.Profile{
			{MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: 1},
			{ILP: 1, BranchEntropy: 1, MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: 2},
			{ILP: 6, FPMix: 0.5, MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: 3},
		},
		Archs:        []sim.Arch{sim.ArchFlywheel},
		FEBoosts:     []int{0, 100},
		BEBoosts:     []int{50},
		Instructions: 20_000,
	}
}

func benchExplore(b *testing.B, workers int, cache *lab.Cache) {
	sp := benchSpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cache
		if c == nil {
			c = lab.NewCache()
		}
		if _, err := Explore(sp, Options{Workers: workers, Cache: c}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExploreWorkers1(b *testing.B) { benchExplore(b, 1, nil) }

func BenchmarkExploreWorkersMax(b *testing.B) { benchExplore(b, runtime.GOMAXPROCS(0), nil) }

// BenchmarkExploreWarmCache measures the memoized path: the whole frontier
// sweep served from cache.
func BenchmarkExploreWarmCache(b *testing.B) {
	cache := lab.NewCache()
	if _, err := Explore(benchSpace(), Options{Cache: cache}); err != nil {
		b.Fatal(err)
	}
	benchExplore(b, runtime.GOMAXPROCS(0), cache)
}
