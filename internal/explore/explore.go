// Package explore sweeps the multiple-speed-pipeline design space. The
// paper evaluates fixed benchmarks at a handful of clock ratios; the
// explorer generalizes that into a grid enumeration — synthetic workload
// profiles × architectures × front-end/back-end boosts × technology nodes
// — submitted to the lab as one batched job list, then reduced to the
// speedup-vs-energy Pareto frontier: the configurations for which no other
// configuration is both faster and more energy-efficient.
//
// Everything is deterministic: the grid enumerates in a fixed nested
// order, the lab returns results in job order at any worker count, and the
// frontier is a pure function of the results — so a report renders
// byte-identically whether it ran on one worker or sixty-four, a property
// pinned by tests.
package explore

import (
	"encoding/csv"
	"fmt"
	"math"
	"sort"
	"strings"

	"flywheel/internal/branch"
	"flywheel/internal/cacti"
	"flywheel/internal/lab"
	"flywheel/internal/mem"
	"flywheel/internal/sim"
	"flywheel/internal/stats"
	"flywheel/internal/workload/synth"
)

// Space is the design-space grid to enumerate: the cross-product of every
// non-empty axis. Nil axes default to a single point (see normalize).
type Space struct {
	// Profiles are the synthetic workloads to evaluate. At least one is
	// required.
	Profiles []synth.Profile
	// Archs lists the machines; nil means the full Flywheel only. The
	// baseline is always simulated per (profile, node) for normalization,
	// whether or not it is listed.
	Archs []sim.Arch
	// Predictors / Prefetchers are the frontend axes: direction-predictor
	// and L1↔L2-prefetcher names crossed into the grid. Nil means the
	// defaults ({"gshare"} and {"none"}), which reproduce the pre-frontend
	// grids exactly. The per-(profile, node) normalization baseline always
	// runs the default frontend, so a frontend win shows up as speedup.
	Predictors  []string
	Prefetchers []string
	// FEBoosts / BEBoosts are the clock-ratio axes in percent; nil means
	// {0, 50, 100} and {50} respectively. The baseline architecture
	// ignores boosts, so it contributes one point per (profile, node).
	FEBoosts []int
	BEBoosts []int
	// Nodes lists the technology points; nil means 0.13 µm.
	Nodes []cacti.Node
	// Instructions bounds the measured dynamic instructions per run; zero
	// means 300k.
	Instructions uint64
}

func (s Space) normalize() Space {
	if s.Archs == nil {
		s.Archs = []sim.Arch{sim.ArchFlywheel}
	}
	if s.Predictors == nil {
		s.Predictors = []string{branch.DirGShare}
	}
	if s.Prefetchers == nil {
		s.Prefetchers = []string{mem.PFNone}
	}
	if s.FEBoosts == nil {
		s.FEBoosts = []int{0, 50, 100}
	}
	if s.BEBoosts == nil {
		s.BEBoosts = []int{50}
	}
	if s.Nodes == nil {
		s.Nodes = []cacti.Node{cacti.Node130}
	}
	if s.Instructions == 0 {
		s.Instructions = 300_000
	}
	return s
}

// Point is one evaluated grid configuration with its paper metrics:
// speedup and energy relative to the same profile's baseline machine at
// the same node.
type Point struct {
	Profile synth.Profile
	Arch    sim.Arch
	Node    cacti.Node
	FEBoost int
	BEBoost int
	// Predictor / Prefetcher name the cell's frontend (canonical names,
	// never empty — "gshare" / "none" are the defaults).
	Predictor  string
	Prefetcher string

	Result   sim.Result
	Baseline sim.Result

	// Speedup is baseline time / this time; EnergyRatio is this energy /
	// baseline energy. The ideal corner is high speedup at low ratio. A
	// degenerate baseline (zero energy) yields NaN, and NaN points are
	// excluded from frontier dominance entirely.
	Speedup     float64
	EnergyRatio float64
	// OnFrontier marks Pareto-optimal points: no other point has both
	// higher-or-equal speedup and lower-or-equal energy with at least one
	// strict.
	OnFrontier bool
	// Predicted marks points whose Result came from the analytic tier's
	// fitted model rather than a cycle-accurate simulation.
	Predicted bool
	// Sampled marks points whose Result is a sampled-execution estimate —
	// periodic detailed windows with confidence intervals (Result.Sampled)
	// — rather than an exact cycle-accurate run.
	Sampled bool

	// gridIndex is the point's position in the plan's grid enumeration, so
	// a confirmed subset can be joined back to its predictions.
	gridIndex int
}

// finite reports whether the point's metrics participate in Pareto
// dominance: NaN in either metric excludes the point (it can neither be on
// the frontier nor dominate anything).
func (p Point) finite() bool {
	return !math.IsNaN(p.Speedup) && !math.IsNaN(p.EnergyRatio)
}

// Report is the outcome of one exploration.
type Report struct {
	Space  Space   // normalized
	Points []Point // in grid-enumeration order
}

// Options configures the batch execution.
type Options struct {
	// Workers is the worker-pool size; zero or negative uses GOMAXPROCS.
	Workers int
	// Cache memoizes runs across calls. Nil uses a process-wide cache
	// shared by every exploration (the experiment harness keeps its own).
	Cache *lab.Cache
	// Progress, when non-nil, is called after each completed simulation.
	Progress func(done, total int, j lab.Job)
}

// sharedCache memoizes runs across every exploration in the process.
var sharedCache = lab.NewCache()

// gridJobs enumerates the grid in deterministic nested order — profile,
// node, arch, predictor, prefetcher, FE boost, BE boost — preceded by one
// baseline job per (profile, node). The baseline arch collapses its boost
// axes. The normalization baseline always runs the default frontend, so
// every cell of a frontend sweep divides by the same reference machine.
func gridJobs(s Space) (baselines, grid []lab.Job, points []Point) {
	for _, p := range s.Profiles {
		name := p.Name()
		for _, node := range s.Nodes {
			baselines = append(baselines, lab.Job{
				Workload: name, Arch: sim.ArchBaseline, Node: node,
				MaxInstructions: s.Instructions,
			})
			for _, arch := range s.Archs {
				fes, bes := s.FEBoosts, s.BEBoosts
				if arch == sim.ArchBaseline {
					fes, bes = []int{0}, []int{0}
				}
				for _, pred := range s.Predictors {
					for _, pf := range s.Prefetchers {
						for _, fe := range fes {
							for _, be := range bes {
								grid = append(grid, lab.Job{
									Workload: name, Arch: arch, Node: node,
									FEBoostPct: fe, BEBoostPct: be,
									MaxInstructions: s.Instructions,
									Predictor:       pred, Prefetcher: pf,
								})
								points = append(points, Point{
									Profile: p, Arch: arch, Node: node,
									FEBoost: fe, BEBoost: be,
									Predictor: pred, Prefetcher: pf,
									gridIndex: len(points),
								})
							}
						}
					}
				}
			}
		}
	}
	return baselines, grid, points
}

// Explore generates and registers every profile's workload, runs the whole
// grid (plus per-profile baselines) as one batched lab submission, and
// reduces the results to a Pareto report. It is the exact (cycle-accurate)
// path: planning and execution are split behind NewPlan and Tier, so the
// same grid can instead be screened analytically — see ExploreTiered.
func Explore(s Space, opt Options) (*Report, error) {
	plan, err := NewPlan(s)
	if err != nil {
		return nil, err
	}
	points, err := ExactTier{}.Evaluate(plan, opt)
	if err != nil {
		return nil, err
	}
	markFrontier(points)
	return &Report{Space: plan.Space, Points: points}, nil
}

// ExploreSampled runs the whole grid with sampled execution: every cell
// (baselines included) alternates fast-forwarded warming with detailed
// windows under the given schedule, ~5x cheaper per cell than Explore.
// Points carry confidence intervals in Result.Sampled and are marked
// Sampled.
func ExploreSampled(s Space, samp sim.Sampling, opt Options) (*Report, error) {
	plan, err := NewPlan(s)
	if err != nil {
		return nil, err
	}
	points, err := SampledTier{Sampling: samp}.Evaluate(plan, opt)
	if err != nil {
		return nil, err
	}
	markFrontier(points)
	return &Report{Space: plan.Space, Points: points}, nil
}

func baseKey(name string, node cacti.Node) string {
	return fmt.Sprintf("%s@%g", name, float64(node))
}

// markFrontier flags the Pareto-optimal points: maximize speedup, minimize
// energy ratio. Duplicate metric pairs are all kept — neither dominates.
// Points with NaN metrics (degenerate baselines) are excluded: never on the
// frontier, never dominating. One sort plus one pass — O(n log n) — so
// 100k-cell tiered grids reduce in milliseconds (the old all-pairs scan was
// quadratic).
func markFrontier(points []Point) {
	idx := make([]int, 0, len(points))
	for i := range points {
		points[i].OnFrontier = false
		if points[i].finite() {
			idx = append(idx, i)
		}
	}
	// Descending speedup, ascending energy within equal speedup.
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := &points[idx[a]], &points[idx[b]]
		if pa.Speedup != pb.Speedup {
			return pa.Speedup > pb.Speedup
		}
		return pa.EnergyRatio < pb.EnergyRatio
	})
	// In sorted order every earlier point has speedup >= the current one,
	// so a point is dominated iff the running minimum energy of strictly
	// faster points is <= its own, or a strictly lower energy exists within
	// its own equal-speedup group (the group minimum is its first member).
	minFaster := math.Inf(1)
	for g := 0; g < len(idx); {
		h := g
		for h < len(idx) && points[idx[h]].Speedup == points[idx[g]].Speedup {
			h++
		}
		groupMin := points[idx[g]].EnergyRatio
		for k := g; k < h; k++ {
			p := &points[idx[k]]
			p.OnFrontier = minFaster > p.EnergyRatio && groupMin >= p.EnergyRatio
		}
		if groupMin < minFaster {
			minFaster = groupMin
		}
		g = h
	}
}

// Frontier returns the Pareto-optimal points ordered by descending
// speedup, ties broken by grid order.
func (r *Report) Frontier() []Point {
	var out []Point
	for _, p := range r.Points {
		if p.OnFrontier {
			out = append(out, p)
		}
	}
	// Stable sort keeps the tie-break on grid order.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Speedup > out[j].Speedup })
	return out
}

func pointRow(p Point) []string {
	mark := ""
	if p.OnFrontier {
		mark = "*"
	}
	return []string{
		p.Profile.String(), p.Arch.String(), p.Node.String(),
		p.Predictor, p.Prefetcher,
		fmt.Sprintf("%d", p.FEBoost), fmt.Sprintf("%d", p.BEBoost),
		stats.F(p.Speedup, 3), stats.F(p.EnergyRatio, 3),
		stats.Pct(p.Result.ECResidency), stats.F(p.Result.IPC, 2), mark,
	}
}

var pointHeader = []string{"profile", "arch", "node", "pred", "pf", "FE%", "BE%", "speedup", "energy", "EC res", "IPC", "frontier"}

// Table renders every grid point, frontier members starred.
func (r *Report) Table() *stats.Table {
	tbl := stats.NewTable("Design space — speedup and energy vs per-profile baseline", pointHeader...)
	for _, p := range r.Points {
		tbl.Add(pointRow(p)...)
	}
	return tbl
}

// FrontierTable renders only the Pareto frontier, fastest first.
func (r *Report) FrontierTable() *stats.Table {
	tbl := stats.NewTable("Pareto frontier — speedup vs energy", pointHeader...)
	for _, p := range r.Frontier() {
		tbl.Add(pointRow(p)...)
	}
	return tbl
}

var csvHeader = []string{"profile", "arch", "node", "predictor", "prefetcher", "fe_pct", "be_pct",
	"time_ps", "ipc", "speedup", "energy_ratio", "ec_residency",
	"branch_acc", "l2_hit", "pf_acc", "pf_cov", "frontier"}

func csvRecord(p Point) []string {
	return []string{
		p.Profile.String(), p.Arch.String(), p.Node.String(),
		p.Predictor, p.Prefetcher,
		fmt.Sprintf("%d", p.FEBoost), fmt.Sprintf("%d", p.BEBoost),
		fmt.Sprintf("%d", p.Result.TimePS), stats.F(p.Result.IPC, 4),
		stats.F(p.Speedup, 4), stats.F(p.EnergyRatio, 4),
		stats.F(p.Result.ECResidency, 4),
		stats.F(p.Result.BranchAccuracy, 4), stats.F(p.Result.DemandL2HitRate, 4),
		stats.F(p.Result.PrefetchAccuracy, 4), stats.F(p.Result.PrefetchCoverage, 4),
		fmt.Sprintf("%t", p.OnFrontier),
	}
}

// writeCSV renders records through encoding/csv, so fields containing
// delimiters (commas, quotes, newlines) are quoted instead of silently
// misaligning the row — the old fmt.Fprintf emitter trusted every field.
func writeCSV(b *strings.Builder, records [][]string) {
	w := csv.NewWriter(b)
	for _, rec := range records {
		// Writer errors only surface on the underlying writer, and
		// strings.Builder cannot fail.
		_ = w.Write(rec)
	}
	w.Flush()
}

// CSV renders every grid point as RFC-4180 comma-separated records with a
// header, byte-identical at any worker count.
func (r *Report) CSV() string {
	records := make([][]string, 0, len(r.Points)+1)
	records = append(records, csvHeader)
	for _, p := range r.Points {
		records = append(records, csvRecord(p))
	}
	var b strings.Builder
	writeCSV(&b, records)
	return b.String()
}
