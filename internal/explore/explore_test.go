package explore

import (
	"runtime"
	"strings"
	"testing"

	"flywheel/internal/lab"
	"flywheel/internal/sim"
	"flywheel/internal/workload/synth"
)

// testSpace is a small grid at a tiny budget: 2 profiles × 2 archs ×
// 2 FE boosts × 1 BE boost × 1 node, plus 2 baselines.
func testSpace() Space {
	return Space{
		Profiles: []synth.Profile{
			{MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: 1},
			{ILP: 1, BranchEntropy: 1, MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: 2},
		},
		Archs:        []sim.Arch{sim.ArchFlywheel, sim.ArchBaseline},
		FEBoosts:     []int{0, 50},
		BEBoosts:     []int{50},
		Instructions: 4_000,
	}
}

func TestExploreShape(t *testing.T) {
	rep, err := Explore(testSpace(), Options{Cache: lab.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	// Per profile: flywheel 2 points (FE 0/50 × BE 50) + baseline 1 point.
	if got, want := len(rep.Points), 2*3; got != want {
		t.Fatalf("points = %d, want %d", got, want)
	}
	var frontier int
	for _, p := range rep.Points {
		if p.Speedup <= 0 || p.EnergyRatio <= 0 {
			t.Errorf("point %v/%v FE%d: degenerate metrics %.3f/%.3f",
				p.Profile, p.Arch, p.FEBoost, p.Speedup, p.EnergyRatio)
		}
		if p.Arch == sim.ArchBaseline {
			if p.Speedup != 1 || p.EnergyRatio != 1 {
				t.Errorf("baseline point not normalized to itself: %.3f/%.3f", p.Speedup, p.EnergyRatio)
			}
		}
		if p.OnFrontier {
			frontier++
		}
	}
	if frontier == 0 {
		t.Error("no Pareto-optimal points")
	}
	if got := len(rep.Frontier()); got != frontier {
		t.Errorf("Frontier() returned %d points, flags say %d", got, frontier)
	}
}

// TestByteIdenticalAcrossWorkerCounts pins the acceptance criterion: the
// Pareto table and CSV render byte-identically at Workers 1 vs GOMAXPROCS.
func TestByteIdenticalAcrossWorkerCounts(t *testing.T) {
	serial, err := Explore(testSpace(), Options{Workers: 1, Cache: lab.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Explore(testSpace(), Options{Workers: runtime.GOMAXPROCS(0), Cache: lab.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Table().String(), parallel.Table().String(); s != p {
		t.Errorf("tables differ across worker counts:\n--- workers=1\n%s\n--- workers=max\n%s", s, p)
	}
	if s, p := serial.FrontierTable().String(), parallel.FrontierTable().String(); s != p {
		t.Errorf("frontier tables differ across worker counts:\n%s\nvs\n%s", s, p)
	}
	if s, p := serial.CSV(), parallel.CSV(); s != p {
		t.Errorf("CSV differs across worker counts:\n%s\nvs\n%s", s, p)
	}
}

// TestFrontierIsPareto checks the frontier definition directly: no member
// is dominated, and every non-member is dominated by some point.
func TestFrontierIsPareto(t *testing.T) {
	rep, err := Explore(testSpace(), Options{Cache: lab.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	dominates := func(a, b Point) bool {
		return a.Speedup >= b.Speedup && a.EnergyRatio <= b.EnergyRatio &&
			(a.Speedup > b.Speedup || a.EnergyRatio < b.EnergyRatio)
	}
	for i, p := range rep.Points {
		var dominated bool
		for j, q := range rep.Points {
			if i != j && dominates(q, p) {
				dominated = true
			}
		}
		if p.OnFrontier == dominated {
			t.Errorf("point %d: OnFrontier=%t but dominated=%t", i, p.OnFrontier, dominated)
		}
	}
	f := rep.Frontier()
	for i := 1; i < len(f); i++ {
		if f[i].Speedup > f[i-1].Speedup {
			t.Errorf("frontier not sorted by descending speedup at %d", i)
		}
	}
}

// TestSharedCacheDeduplicates: the baselines repeat across explorations of
// overlapping spaces, so a shared cache must absorb the second run.
func TestSharedCacheDeduplicates(t *testing.T) {
	cache := lab.NewCache()
	if _, err := Explore(testSpace(), Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	misses := cache.Misses()
	if _, err := Explore(testSpace(), Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.Misses() != misses {
		t.Errorf("second identical exploration simulated %d new configurations", cache.Misses()-misses)
	}
}

func TestEmptySpaceErrors(t *testing.T) {
	if _, err := Explore(Space{}, Options{}); err == nil || !strings.Contains(err.Error(), "no profiles") {
		t.Errorf("empty space: err = %v, want 'no profiles'", err)
	}
}

func TestCSVHasOneRowPerPoint(t *testing.T) {
	rep, err := Explore(testSpace(), Options{Cache: lab.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(rep.CSV(), "\n"), "\n")
	if got, want := len(lines), len(rep.Points)+1; got != want {
		t.Errorf("CSV has %d lines, want %d (header + points)", got, want)
	}
	if !strings.HasPrefix(lines[0], "profile,arch,node,") {
		t.Errorf("CSV header %q", lines[0])
	}
}

// TestDuplicateBaselineGrid pins satellite semantics for grids that list
// the baseline architecture as an explicit axis value: the baseline cell is
// the same configuration as the per-(profile, node) normalization run, so
// it must report Speedup and EnergyRatio of exactly 1.0 and be simulated
// exactly once — the cache key collapses the duplicate.
func TestDuplicateBaselineGrid(t *testing.T) {
	cache := lab.NewCache()
	s := Space{
		Profiles: []synth.Profile{
			{MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: 31},
		},
		Archs:        []sim.Arch{sim.ArchBaseline, sim.ArchFlywheel},
		FEBoosts:     []int{0, 50},
		BEBoosts:     []int{50},
		Instructions: 2_000,
	}
	rep, err := Explore(s, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	// Jobs submitted: 1 baseline + 1 baseline grid cell (identical config) +
	// 2 flywheel cells. Distinct configurations: 3.
	if got := cache.Misses(); got != 3 {
		t.Errorf("simulated %d distinct configurations, want 3 (baseline deduplicated)", got)
	}
	var baselineCells int
	for _, p := range rep.Points {
		if p.Arch != sim.ArchBaseline {
			continue
		}
		baselineCells++
		if p.Speedup != 1.0 || p.EnergyRatio != 1.0 {
			t.Errorf("baseline cell reports speedup=%v energy=%v, want exactly 1.0/1.0",
				p.Speedup, p.EnergyRatio)
		}
		if p.FEBoost != 0 || p.BEBoost != 0 {
			t.Errorf("baseline cell carries boosts FE%d/BE%d, want collapsed to 0/0", p.FEBoost, p.BEBoost)
		}
	}
	if baselineCells != 1 {
		t.Errorf("baseline contributed %d grid cells, want 1 (boost axes collapsed)", baselineCells)
	}
}
