package explore

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"
)

// markFrontierQuadratic is the seed's all-pairs dominance scan, kept as the
// property-test reference for the O(n log n) rewrite, with the NaN-exclusion
// fix applied to both (the old code let NaN comparisons decide dominance).
func markFrontierQuadratic(points []Point) {
	for i := range points {
		p := &points[i]
		if !p.finite() {
			p.OnFrontier = false
			continue
		}
		p.OnFrontier = true
		for j := range points {
			q := &points[j]
			if i == j || !q.finite() {
				continue
			}
			if q.Speedup >= p.Speedup && q.EnergyRatio <= p.EnergyRatio &&
				(q.Speedup > p.Speedup || q.EnergyRatio < p.EnergyRatio) {
				p.OnFrontier = false
				break
			}
		}
	}
}

// randomPoints draws metric pairs from a small discrete set so duplicates,
// speedup ties, and energy ties all occur, plus occasional NaNs.
func randomPoints(r *rng, n int) []Point {
	points := make([]Point, n)
	for i := range points {
		points[i].Speedup = float64(1+r.intn(8)) / 4
		points[i].EnergyRatio = float64(1+r.intn(8)) / 4
		switch r.intn(20) {
		case 0:
			points[i].Speedup = math.NaN()
		case 1:
			points[i].EnergyRatio = math.NaN()
		}
	}
	return points
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// TestMarkFrontierMatchesQuadraticReference is the property test for the
// sorted single-pass frontier: on randomized point sets — with duplicates,
// ties in one or both metrics, and NaN metrics — it must agree with the
// all-pairs definition point for point.
func TestMarkFrontierMatchesQuadraticReference(t *testing.T) {
	r := &rng{state: 7}
	for trial := 0; trial < 200; trial++ {
		points := randomPoints(r, 1+r.intn(60))
		ref := append([]Point(nil), points...)
		markFrontierQuadratic(ref)
		markFrontier(points)
		for i := range points {
			if points[i].OnFrontier != ref[i].OnFrontier {
				t.Fatalf("trial %d point %d (%.2f, %.2f): fast says %t, reference says %t",
					trial, i, points[i].Speedup, points[i].EnergyRatio,
					points[i].OnFrontier, ref[i].OnFrontier)
			}
		}
	}
}

func TestMarkFrontierEdgeCases(t *testing.T) {
	// Duplicate metric pairs: neither dominates the other, both kept.
	dup := []Point{
		{Speedup: 2, EnergyRatio: 1},
		{Speedup: 2, EnergyRatio: 1},
		{Speedup: 1, EnergyRatio: 2},
	}
	markFrontier(dup)
	if !dup[0].OnFrontier || !dup[1].OnFrontier {
		t.Errorf("duplicate frontier points not both kept: %t %t", dup[0].OnFrontier, dup[1].OnFrontier)
	}
	if dup[2].OnFrontier {
		t.Error("dominated point kept")
	}

	// Equal speedup, different energy: only the cheaper survives.
	tie := []Point{
		{Speedup: 2, EnergyRatio: 2},
		{Speedup: 2, EnergyRatio: 1},
	}
	markFrontier(tie)
	if tie[0].OnFrontier || !tie[1].OnFrontier {
		t.Errorf("speedup tie resolved wrong: %t %t", tie[0].OnFrontier, tie[1].OnFrontier)
	}

	markFrontier(nil) // must not panic
}

// TestMarkFrontierNaNRegression pins the zero-denominator fix end to end: a
// degenerate baseline used to make Ratio return 0, and a 0-energy point
// dominated everything — the frontier collapsed to garbage. Now the point's
// EnergyRatio is NaN and it neither joins the frontier nor suppresses real
// points.
func TestMarkFrontierNaNRegression(t *testing.T) {
	points := []Point{
		{Speedup: 3, EnergyRatio: math.NaN()}, // degenerate baseline cell
		{Speedup: 2, EnergyRatio: 1.2},
		{Speedup: 1, EnergyRatio: 0.8},
	}
	markFrontier(points)
	if points[0].OnFrontier {
		t.Error("NaN point on frontier")
	}
	if !points[1].OnFrontier || !points[2].OnFrontier {
		t.Errorf("real points suppressed by NaN point: %t %t", points[1].OnFrontier, points[2].OnFrontier)
	}
}

// BenchmarkMarkFrontier measures the satellite's target: 50k points, the
// scale the analytic tier screens at. The old all-pairs scan was O(n²)
// (~2.5 billion comparisons here); the rewrite is one sort plus one pass.
func BenchmarkMarkFrontier(b *testing.B) {
	r := &rng{state: 11}
	master := make([]Point, 50_000)
	for i := range master {
		master[i].Speedup = 0.5 + 3*r.float()
		master[i].EnergyRatio = 0.5 + 3*r.float()
	}
	points := make([]Point, len(master))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(points, master)
		markFrontier(points)
	}
}

// TestCSVQuotesDelimiters pins the CSV-quoting fix: fields containing
// commas, quotes, or newlines must round-trip through a conforming reader
// into the same cells, instead of silently splitting the row.
func TestCSVQuotesDelimiters(t *testing.T) {
	records := [][]string{
		{"plain", "with,comma", `with"quote`, "with\nnewline"},
		{"a", "b", "c", "d"},
	}
	var b strings.Builder
	writeCSV(&b, records)
	got, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(got) != len(records) {
		t.Fatalf("%d rows round-tripped, want %d", len(got), len(records))
	}
	for i := range records {
		for j := range records[i] {
			if got[i][j] != records[i][j] {
				t.Errorf("cell [%d][%d] = %q, want %q", i, j, got[i][j], records[i][j])
			}
		}
	}
	// Delimiter-free fields stay unquoted, so existing CSV output is
	// byte-identical to the seed's emitter.
	if strings.Contains(strings.Split(b.String(), "\n")[1], `"a"`) {
		t.Error("plain fields were quoted")
	}
}

func TestReportCSVRoundTrips(t *testing.T) {
	rep := &Report{Points: []Point{{Speedup: 1.5, EnergyRatio: 0.9, OnFrontier: true}}}
	rows, err := csv.NewReader(strings.NewReader(rep.CSV())).ReadAll()
	if err != nil {
		t.Fatalf("Report.CSV does not parse: %v", err)
	}
	if len(rows) != 2 || len(rows[1]) != len(csvHeader) {
		t.Fatalf("unexpected shape: %d rows, %d fields", len(rows), len(rows[1]))
	}
}
