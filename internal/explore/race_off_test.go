//go:build !race

package explore

// raceEnabled reports whether the race detector is active; heavyweight scale
// tests skip under it (they run race-free in a dedicated CI step).
const raceEnabled = false
