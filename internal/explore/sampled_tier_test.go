package explore

import (
	"math"
	"testing"

	"flywheel/internal/analytic"
	"flywheel/internal/lab"
	"flywheel/internal/sim"
)

// withCI attaches a sampled-stats record with the given relative CI to a
// point (same value on time and energy, baseline exact), so pointCI
// returns 2*ci.
func withCI(speedup, energy, ci float64) Point {
	return Point{
		Speedup:     speedup,
		EnergyRatio: energy,
		Result: sim.Result{Sampled: &sim.SampledStats{
			TimeRelCI95: ci, EnergyRelCI95: ci,
		}},
	}
}

// TestCISelectEscalation pins the escalation rule: a frontier point always
// escalates; a dominated point escalates iff its own confidence interval
// could flip the verdict.
func TestCISelectEscalation(t *testing.T) {
	points := []Point{
		// 0: frontier (fastest).
		withCI(2.0, 1.0, 0.001),
		// 1: dominated by 0 on both axes, but only barely — its wide CI
		// (±10% on each estimate) overlaps the frontier, so it escalates.
		withCI(1.9, 1.05, 0.05),
		// 2: same metrics, but a tight CI (±0.2%) settles it: dominated.
		withCI(1.9, 1.05, 0.001),
		// 3: frontier (lowest energy).
		withCI(1.0, 0.5, 0.001),
		// 4: far inside the hull; even a wide CI cannot reach the frontier.
		withCI(0.8, 1.4, 0.05),
	}
	markFrontier(points)
	got := ciSelect(points)
	want := []bool{true, true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d (%.2f, %.2f, ci %.3f): escalate=%t, want %t",
				i, points[i].Speedup, points[i].EnergyRatio, pointCI(points[i]), got[i], want[i])
		}
	}
}

// TestCISelectNaNNeverEscalates: points excluded from dominance cannot be
// escalated — there is no frontier question to settle for them.
func TestCISelectNaNNeverEscalates(t *testing.T) {
	points := []Point{withCI(2.0, 1.0, 0.01), withCI(math.NaN(), 1.0, 0.5)}
	markFrontier(points)
	if got := ciSelect(points); got[1] {
		t.Error("NaN point escalated")
	}
}

// threeTierSpace is small enough to explore quickly but long enough for
// the sampled schedule: the bootstrap plus several windows fit the stream.
func threeTierSpace() Space {
	return Space{
		Profiles:     analytic.DefaultTrainingProfiles(1)[:2],
		Archs:        []sim.Arch{sim.ArchFlywheel},
		FEBoosts:     []int{0, 50, 100},
		BEBoosts:     []int{0, 50, 100},
		Instructions: 60_000,
	}
}

var threeTierSampling = sim.Sampling{Period: 12_000, WindowInsts: 1_000, WarmupInsts: 500, Seed: 1}

// TestExploreThreeTier exercises the full analytic → sampled → exact flow
// and its report invariants: every confirmed cell was sampled, only the
// CI-ambiguous subset re-ran exactly, and the merged set carries exact
// results exactly where escalation happened.
func TestExploreThreeTier(t *testing.T) {
	cache := lab.NewCache()
	space := threeTierSpace()
	model := calibrateFor(t, cache, space.Profiles,
		[]sim.Arch{sim.ArchBaseline, sim.ArchFlywheel}, space.Instructions)

	rep, err := ExploreTiered(space, model, TieredOptions{
		Options:  Options{Cache: cache},
		Sampling: threeTierSampling,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SampledCells == 0 {
		t.Fatal("three-tier run sampled no cells")
	}
	if rep.SampledCells != len(rep.Confirmed) {
		t.Errorf("sampled %d cells but confirmed %d — the merged set must cover every sampled cell",
			rep.SampledCells, len(rep.Confirmed))
	}
	if rep.EscalatedCells == 0 {
		t.Error("no cell escalated to exact — the frontier itself always must")
	}
	if rep.EscalatedCells > rep.SampledCells {
		t.Errorf("escalated %d > sampled %d", rep.EscalatedCells, rep.SampledCells)
	}
	exactCells := 0
	for _, p := range rep.Confirmed {
		if p.Predicted {
			t.Fatal("confirmed point still marked Predicted")
		}
		if p.Sampled {
			if p.Result.Sampled == nil {
				t.Fatal("sampled point carries no SampledStats")
			}
		} else {
			exactCells++
			if p.Result.Sampled != nil {
				t.Fatal("exact point carries SampledStats")
			}
		}
	}
	if exactCells != rep.EscalatedCells {
		t.Errorf("%d exact points in the confirmed set, %d escalations reported", exactCells, rep.EscalatedCells)
	}
	// Every frontier point's status was worth settling exactly.
	for _, p := range rep.Frontier() {
		if p.Sampled {
			t.Errorf("frontier point FE%d/BE%d is a sampled estimate — frontier members must escalate",
				p.FEBoost, p.BEBoost)
		}
	}
	if rep.SampledErr.Cells != rep.EscalatedCells {
		t.Errorf("sampled-vs-exact summary covers %d cells, escalated %d", rep.SampledErr.Cells, rep.EscalatedCells)
	}
	if rep.SampledErr.TimeMAPE > 0.10 {
		t.Errorf("sampled-vs-exact time error %.1f%% is implausibly large", 100*rep.SampledErr.TimeMAPE)
	}
}

// TestExploreThreeTierDeterministic: the full three-tier flow is a pure
// function of (space, model, options).
func TestExploreThreeTierDeterministic(t *testing.T) {
	cache := lab.NewCache()
	space := threeTierSpace()
	model := calibrateFor(t, cache, space.Profiles,
		[]sim.Arch{sim.ArchBaseline, sim.ArchFlywheel}, space.Instructions)
	opt := TieredOptions{Options: Options{Cache: cache}, Sampling: threeTierSampling}

	a, err := ExploreTiered(space, model, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExploreTiered(space, model, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() != b.CSV() {
		t.Error("three-tier CSV not deterministic")
	}
	if a.EscalatedCells != b.EscalatedCells || a.SampledCells != b.SampledCells {
		t.Errorf("tier counts differ across identical runs: %d/%d vs %d/%d",
			a.SampledCells, a.EscalatedCells, b.SampledCells, b.EscalatedCells)
	}
}
