package explore

// Planning vs execution. A Plan is the pure enumeration of a Space — every
// grid job, its baseline jobs, and the Point skeletons, in deterministic
// nested order — with no simulation attached. A Tier is one way of
// attaching numbers to that plan: ExactTier runs every cell through the
// cycle-accurate lab, AnalyticTier fills in a fitted model's predictions
// without simulating anything. ExploreTiered composes them — screen the
// whole grid analytically, confirm only the cells near the predicted
// frontier — and later dimensions (DVFS curves, chip composition) plug in
// as further tiers without touching the planner.

import (
	"fmt"

	"flywheel/internal/analytic"
	"flywheel/internal/lab"
	"flywheel/internal/sim"
	"flywheel/internal/stats"
	"flywheel/internal/workload"
	"flywheel/internal/workload/synth"
)

// Plan is the execution-free half of an exploration: the normalized space,
// the enumerated grid and baseline jobs, and one unevaluated Point per grid
// cell (parallel to Grid).
type Plan struct {
	Space     Space
	Baselines []lab.Job
	Grid      []lab.Job
	Points    []Point
}

// NewPlan normalizes and validates the space and enumerates its grid.
func NewPlan(s Space) (*Plan, error) {
	s = s.normalize()
	if len(s.Profiles) == 0 {
		return nil, fmt.Errorf("explore: no profiles in the space")
	}
	baselines, grid, points := gridJobs(s)
	return &Plan{Space: s, Baselines: baselines, Grid: grid, Points: points}, nil
}

// Cells reports the number of grid cells the plan enumerates (baseline
// normalization jobs not included).
func (p *Plan) Cells() int { return len(p.Grid) }

// Tier is one fidelity level for evaluating a plan. Evaluate returns a
// fresh copy of the plan's points with Result, Baseline, Speedup and
// EnergyRatio filled; it must not mutate the plan, so one plan can be
// evaluated by several tiers (screen, then confirm).
type Tier interface {
	Name() string
	Evaluate(p *Plan, opt Options) ([]Point, error)
}

// ExactTier evaluates every cell with the cycle-accurate simulator through
// the lab's batched, memoized worker pool — the full-fidelity path every
// paper figure uses.
type ExactTier struct{}

// Name identifies the tier in reports and CLI flags.
func (ExactTier) Name() string { return "exact" }

// Evaluate registers every profile's workload, runs the whole grid plus
// baselines as one batched lab submission, and computes the paper metrics.
func (ExactTier) Evaluate(p *Plan, opt Options) ([]Point, error) {
	return labEvaluate(p, opt, sim.Sampling{})
}

// SampledTier evaluates every cell with sampled execution: periodic
// detailed windows over fast-forwarded functional warming, ~5x cheaper per
// cell than the exact tier. Its points carry confidence intervals
// (Result.Sampled) and are marked Sampled; the three-tier explorer uses
// the intervals to decide which cells still need an exact run.
type SampledTier struct {
	// Sampling is the schedule; Period 0 (disabled) is rejected — use
	// ExactTier for exact runs.
	Sampling sim.Sampling
}

// Name identifies the tier in reports and CLI flags.
func (SampledTier) Name() string { return "sampled" }

// Evaluate runs the grid like the exact tier, but every job — baselines
// included, so speedup and energy ratios compare like with like — runs the
// sampled schedule. Sampled jobs memoize under their own cache keys; an
// exact result is never served for a sampled request or vice versa.
func (t SampledTier) Evaluate(p *Plan, opt Options) ([]Point, error) {
	s := t.Sampling.Normalize()
	if !s.Enabled() {
		return nil, fmt.Errorf("explore: sampled tier has no sampling period; set SampledTier.Sampling")
	}
	return labEvaluate(p, opt, s)
}

// labEvaluate is the shared lab-batched evaluation behind the exact and
// sampled tiers; samp (zero: exact) is stamped on every job.
func labEvaluate(p *Plan, opt Options, samp sim.Sampling) ([]Point, error) {
	if err := registerProfiles(p.Space.Profiles); err != nil {
		return nil, err
	}
	jobs := append(append([]lab.Job{}, p.Baselines...), p.Grid...)
	for i := range jobs {
		jobs[i].Sampling = samp
	}
	cache := opt.Cache
	if cache == nil {
		cache = sharedCache
	}
	res, err := lab.Run(jobs, lab.Options{Workers: opt.Workers, Cache: cache, Progress: opt.Progress})
	if err != nil {
		return nil, err
	}

	points := append([]Point(nil), p.Points...)
	// Index the baseline results by (profile, node) in enumeration order.
	base := map[string]sim.Result{}
	for i, j := range p.Baselines {
		base[baseKey(j.Workload, j.Node)] = res[i]
	}
	for i := range points {
		r := res[len(p.Baselines)+i]
		b := base[baseKey(points[i].Profile.Name(), points[i].Node)]
		fillPoint(&points[i], r, b, false)
	}
	return points, nil
}

// AnalyticTier evaluates every cell with a calibrated closed-form model —
// nanoseconds per cell instead of milliseconds — so grids far beyond the
// exact tier's budget can be screened before any simulator runs.
type AnalyticTier struct {
	Model *analytic.Model
}

// Name identifies the tier in reports and CLI flags.
func (AnalyticTier) Name() string { return "analytic" }

// Evaluate predicts every cell and its baseline from the fitted model. No
// workload is generated or registered and no simulation runs.
func (t AnalyticTier) Evaluate(p *Plan, opt Options) ([]Point, error) {
	if t.Model == nil {
		return nil, fmt.Errorf("explore: analytic tier has no model; run analytic.Calibrate first")
	}
	points := append([]Point(nil), p.Points...)
	n := p.Space.Instructions
	// One baseline prediction per (profile, node), mirroring the exact
	// tier's baseline jobs.
	base := map[string]sim.Result{}
	for i := range points {
		pt := &points[i]
		k := baseKey(pt.Profile.Name(), pt.Node)
		b, ok := base[k]
		if !ok {
			var err error
			// The normalization baseline always runs the default frontend,
			// mirroring the exact tier's baseline jobs.
			b, err = t.Model.Predict(pt.Profile, sim.ArchBaseline, pt.Node, 0, 0, analytic.Frontend{}, n)
			if err != nil {
				return nil, err
			}
			base[k] = b
		}
		front := analytic.Frontend{Predictor: pt.Predictor, Prefetcher: pt.Prefetcher}
		r, err := t.Model.Predict(pt.Profile, pt.Arch, pt.Node, pt.FEBoost, pt.BEBoost, front, n)
		if err != nil {
			return nil, err
		}
		fillPoint(pt, r, b, true)
	}
	return points, nil
}

// fillPoint attaches a result and its baseline to the point and derives the
// paper metrics.
func fillPoint(p *Point, r, b sim.Result, predicted bool) {
	p.Result = r
	p.Baseline = b
	p.Speedup = r.Speedup(b)
	p.EnergyRatio = stats.Ratio(r.EnergyPJ, b.EnergyPJ)
	p.Predicted = predicted
	p.Sampled = r.Sampled != nil
}

// registerProfiles generates and registers the synthetic workload of every
// profile; registering an already-registered profile is a cheap no-op.
func registerProfiles(profiles []synth.Profile) error {
	for _, p := range profiles {
		w, err := synth.Build(p)
		if err != nil {
			return err
		}
		if err := workload.Register(w); err != nil {
			return err
		}
	}
	return nil
}
