package explore

// Two-tier exploration: screen the whole grid with the analytic model,
// spend cycle-accurate budget only near the predicted Pareto frontier plus
// a random audit sample, and report both frontiers with a measured
// prediction-error summary. The margin is the contract between the tiers:
// as long as the model's relative error stays inside it, every true
// frontier point is predicted close enough to the predicted frontier to be
// selected for confirmation.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"flywheel/internal/analytic"
	"flywheel/internal/branch"
	"flywheel/internal/lab"
	"flywheel/internal/mem"
	"flywheel/internal/sim"
	"flywheel/internal/stats"
	"flywheel/internal/workload/synth"
)

// Tiered-exploration defaults.
const (
	// MaxMargin caps the automatic frontier slack: even a poorly fitted
	// model confirms at most the 10%-band around its predicted frontier.
	MaxMargin = 0.10
	// MinMargin floors the automatic slack: simulator nondeterminism-free
	// as this repo is, sub-half-percent margins select almost exactly the
	// predicted frontier and leave no room for interpolation error.
	MinMargin = 0.005
	// DefaultAudit is the fraction of screened-out cells confirmed anyway,
	// so the error summary also measures the model far from the frontier.
	DefaultAudit = 0.02
)

// AutoMargin derives a frontier slack from the model's own in-sample error:
// four times the worst per-instruction residual (doubled once because the
// Pareto metrics are ratios of two predictions, and doubled again as a
// guardband), clamped to [MinMargin, MaxMargin]. Used when TieredOptions
// leaves Margin zero.
func AutoMargin(m *analytic.Model) float64 {
	margin := 4 * math.Max(m.TrainingErr.TimeMaxAPE, m.TrainingErr.EnergyMaxAPE)
	return math.Min(MaxMargin, math.Max(MinMargin, margin))
}

// TieredOptions configures ExploreTiered.
type TieredOptions struct {
	Options
	// Margin is the frontier slack fraction. A cell is confirmed unless
	// some predicted point dominates it even after the cell's speedup is
	// credited by (1+Margin) and its energy discounted by (1-Margin). Zero
	// derives the margin from the model's in-sample error (see AutoMargin);
	// negative confirms exactly the predicted frontier.
	Margin float64
	// Audit is the probability that a screened-out cell is confirmed
	// anyway (see DefaultAudit); zero applies the default, negative
	// disables auditing.
	Audit float64
	// AuditSeed seeds the deterministic audit sampler; zero means 1.
	AuditSeed uint64
	// Sampling, when enabled, inserts a sampled middle tier: the cells the
	// analytic screen selects are evaluated with sampled execution first,
	// and only the cells whose frontier status is ambiguous within their
	// own confidence interval escalate to exact simulation. Zero keeps the
	// two-tier analytic-then-exact flow.
	Sampling sim.Sampling
}

func (o TieredOptions) normalize() TieredOptions {
	if o.Audit == 0 {
		o.Audit = DefaultAudit
	}
	if o.Audit < 0 {
		o.Audit = 0
	}
	if o.AuditSeed == 0 {
		o.AuditSeed = 1
	}
	o.Sampling = o.Sampling.Normalize()
	return o
}

// TieredReport is the outcome of one two-tier exploration.
type TieredReport struct {
	Space  Space
	Margin float64
	Audit  float64

	// Predicted holds every grid cell with the analytic tier's metrics and
	// the predicted frontier marked. Confirmed holds the cycle-accurately
	// simulated subset — predicted-frontier-with-margin cells plus the
	// audit sample — in grid order, with the confirmed frontier marked.
	Predicted []Point
	Confirmed []Point

	// MarginCells counts cells selected by frontier proximity; AuditCells
	// counts the extra random audits. Their sum is len(Confirmed).
	MarginCells int
	AuditCells  int

	// SampledCells counts cells evaluated by the sampled middle tier (zero
	// in two-tier mode); EscalatedCells counts the subset whose confidence
	// interval could not settle their frontier status, so they were re-run
	// exactly. Confirmed holds the sampled estimate for the rest.
	SampledCells   int
	EscalatedCells int

	// Err compares the analytic prediction against the cycle-accurate
	// result over every confirmed cell (per-instruction time and energy).
	Err analytic.Summary

	// SampledErr compares the sampled estimate against the exact result
	// over the escalated cells — the only cells where both fidelities ran.
	// It measures the sampled tier's real error, bias included, which the
	// per-window confidence interval alone cannot see.
	SampledErr analytic.Summary
}

// ExploreTiered screens the whole grid with the analytic model and
// confirms only the cells near the predicted frontier (plus a random audit
// sample) with cycle-accurate simulations through the lab. The confirmed
// points carry measured metrics; everything else stays predicted.
func ExploreTiered(s Space, model *analytic.Model, opt TieredOptions) (*TieredReport, error) {
	opt = opt.normalize()
	if opt.Margin == 0 && model != nil {
		opt.Margin = AutoMargin(model)
	}
	plan, err := NewPlan(s)
	if err != nil {
		return nil, err
	}
	pred, err := AnalyticTier{Model: model}.Evaluate(plan, opt.Options)
	if err != nil {
		return nil, err
	}
	markFrontier(pred)

	selected := marginSelect(pred, opt.Margin)
	rep := &TieredReport{Space: plan.Space, Margin: opt.Margin, Audit: opt.Audit, Predicted: pred}
	for _, sel := range selected {
		if sel {
			rep.MarginCells++
		}
	}
	// Deterministic audit sample over the screened-out cells, in grid
	// order: model error far from the predicted frontier is measured too,
	// and a cell the model mispredicts badly enough to screen out still
	// has a chance to surface.
	r := rng{state: opt.AuditSeed*0x9E3779B97F4A7C15 + 0xA5D17}
	for i := range pred {
		if !selected[i] && r.float() < opt.Audit {
			selected[i] = true
			rep.AuditCells++
		}
	}

	var confirmed []Point
	if opt.Sampling.Enabled() {
		confirmed, err = sampledConfirm(plan, selected, opt, rep)
	} else {
		confirmed, err = confirmCells(plan, selected, opt.Options, sim.Sampling{})
	}
	if err != nil {
		return nil, err
	}
	markFrontier(confirmed)
	rep.Confirmed = confirmed

	for _, c := range confirmed {
		p := pred[c.gridIndex]
		if c.Result.Retired == 0 || p.Result.Retired == 0 ||
			c.Result.TimePS <= 0 || c.Result.EnergyPJ <= 0 {
			continue
		}
		cn, pn := float64(c.Result.Retired), float64(p.Result.Retired)
		rep.Err.Observe(
			float64(p.Result.TimePS)/pn, float64(c.Result.TimePS)/cn,
			p.Result.EnergyPJ/pn, c.Result.EnergyPJ/cn)
	}
	rep.Err.Finish()
	return rep, nil
}

// sampledConfirm is the three-tier middle and final stage: evaluate the
// selected cells with sampled execution, escalate to exact only the cells
// whose 95% confidence interval could flip their frontier status, and
// return the merged set — exact results where they ran, sampled estimates
// elsewhere. The report's sampled counters and error summary are filled in
// place.
func sampledConfirm(plan *Plan, selected []bool, opt TieredOptions, rep *TieredReport) ([]Point, error) {
	sampled, err := confirmCells(plan, selected, opt.Options, opt.Sampling)
	if err != nil {
		return nil, err
	}
	rep.SampledCells = len(sampled)
	markFrontier(sampled)

	// A cell escalates when crediting its speedup and discounting its
	// energy by its own (and its baseline's) confidence interval would
	// still leave it undominated — its frontier membership is within
	// noise. Cells dominated by more than their interval are settled:
	// the sampled estimate is kept and no exact run is spent.
	escalate := ciSelect(sampled)
	escalated := make([]bool, len(plan.Grid))
	for k, p := range sampled {
		if escalate[k] {
			escalated[p.gridIndex] = true
		}
	}
	exact, err := confirmCells(plan, escalated, opt.Options, sim.Sampling{})
	if err != nil {
		return nil, err
	}
	rep.EscalatedCells = len(exact)

	byGrid := map[int]Point{}
	for _, p := range exact {
		byGrid[p.gridIndex] = p
	}
	confirmed := make([]Point, len(sampled))
	for k, p := range sampled {
		if e, ok := byGrid[p.gridIndex]; ok {
			confirmed[k] = e
			if p.Result.Retired > 0 && e.Result.Retired > 0 &&
				p.Result.TimePS > 0 && e.Result.EnergyPJ > 0 {
				sn, en := float64(p.Result.Retired), float64(e.Result.Retired)
				rep.SampledErr.Observe(
					float64(p.Result.TimePS)/sn, float64(e.Result.TimePS)/en,
					p.Result.EnergyPJ/sn, e.Result.EnergyPJ/en)
			}
		} else {
			confirmed[k] = p
		}
	}
	rep.SampledErr.Finish()
	return confirmed, nil
}

// pointCI is the escalation slack of a sampled point: the sum of the
// relative 95% confidence half-intervals of its own and its baseline's
// time and energy estimates. Speedup and energy ratio each divide two
// estimates, so first-order their relative error is bounded by the sum of
// the operands' — one conservative slack serves both axes.
func pointCI(p Point) float64 {
	ci := 0.0
	if s := p.Result.Sampled; s != nil {
		ci += s.TimeRelCI95 + s.EnergyRelCI95
	}
	if s := p.Baseline.Sampled; s != nil {
		ci += s.TimeRelCI95 + s.EnergyRelCI95
	}
	return ci
}

// ciSelect marks every point that is on the frontier or within its own
// confidence interval of it: the per-point analogue of marginSelect, with
// each point's slack taken from its sampled confidence interval instead of
// one global margin.
func ciSelect(points []Point) []bool {
	selected := make([]bool, len(points))
	idx := make([]int, 0, len(points))
	for i := range points {
		if points[i].finite() {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		return points[idx[a]].Speedup > points[idx[b]].Speedup
	})
	prefixMin := make([]float64, len(idx))
	minE := math.Inf(1)
	for k, i := range idx {
		if points[i].EnergyRatio < minE {
			minE = points[i].EnergyRatio
		}
		prefixMin[k] = minE
	}
	for _, i := range idx {
		p := &points[i]
		ci := pointCI(*p)
		need := p.Speedup * (1 + ci)
		L := sort.Search(len(idx), func(k int) bool {
			return points[idx[k]].Speedup < need
		})
		dominated := L > 0 && prefixMin[L-1] <= p.EnergyRatio*(1-ci)
		selected[i] = !dominated || p.OnFrontier
	}
	return selected
}

// CalibrationConfig derives the analytic training grid for a space: the
// space's own profiles, architectures (plus the baseline for
// normalization), nodes, and instruction budget, anchored at up to three
// boost values per axis drawn from the swept lists — so the model
// interpolates inside the space instead of extrapolating beyond it, and
// calibration jobs share cache entries with the confirmation runs.
func CalibrationConfig(s Space, opt Options) analytic.Config {
	s = s.normalize()
	archs := []sim.Arch{sim.ArchBaseline}
	for _, a := range s.Archs {
		if a != sim.ArchBaseline {
			archs = append(archs, a)
		}
	}
	// The default frontend leads both lists for the same reason the
	// baseline arch does: the normalization baseline predicts with it, so
	// the model must always cover it.
	preds := []string{branch.DirGShare}
	for _, p := range s.Predictors {
		if p != branch.DirGShare {
			preds = append(preds, p)
		}
	}
	pfs := []string{mem.PFNone}
	for _, p := range s.Prefetchers {
		if p != mem.PFNone {
			pfs = append(pfs, p)
		}
	}
	return analytic.Config{
		Profiles:     s.Profiles,
		Archs:        archs,
		FEBoosts:     anchorBoosts(s.FEBoosts),
		BEBoosts:     anchorBoosts(s.BEBoosts),
		Nodes:        s.Nodes,
		Predictors:   preds,
		Prefetchers:  pfs,
		Instructions: s.Instructions,
		Workers:      opt.Workers,
		Cache:        opt.Cache,
		Progress:     opt.Progress,
	}
}

// anchorBoosts picks the calibration anchors for one boost axis: the swept
// minimum, median, and maximum — the three points a quadratic residual
// basis needs — or the whole axis when it is already that small.
func anchorBoosts(list []int) []int {
	u := append([]int(nil), list...)
	sort.Ints(u)
	n := 0
	for i, v := range u {
		if i == 0 || v != u[n-1] {
			u[n] = v
			n++
		}
	}
	u = u[:n]
	if len(u) <= 3 {
		return u
	}
	return []int{u[0], u[len(u)/2], u[len(u)-1]}
}

// rng is a splitmix64 generator (the synth package's convention), so the
// audit sample is deterministic in the seed.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// confirmCells runs the selected grid cells (and their baselines) through
// the lab — exactly when samp is zero, sampled otherwise — and returns
// them as measured points in grid order, each tagged with its grid index.
func confirmCells(plan *Plan, selected []bool, opt Options, samp sim.Sampling) ([]Point, error) {
	// Register only the profiles that are actually confirmed: on a
	// 100k-cell grid, generating every workload would cost more than the
	// confirmation runs.
	var profiles []synth.Profile
	seenProfile := map[string]bool{}
	neededBase := map[string]bool{}
	var indices []int
	for i, sel := range selected {
		if !sel {
			continue
		}
		indices = append(indices, i)
		p := plan.Points[i]
		if name := p.Profile.Name(); !seenProfile[name] {
			seenProfile[name] = true
			profiles = append(profiles, p.Profile)
		}
		neededBase[baseKey(p.Profile.Name(), p.Node)] = true
	}
	if len(indices) == 0 {
		return nil, nil
	}
	if err := registerProfiles(profiles); err != nil {
		return nil, err
	}

	var baselines []lab.Job
	for _, j := range plan.Baselines {
		if neededBase[baseKey(j.Workload, j.Node)] {
			baselines = append(baselines, j)
		}
	}
	jobs := append([]lab.Job{}, baselines...)
	for _, i := range indices {
		jobs = append(jobs, plan.Grid[i])
	}
	for i := range jobs {
		jobs[i].Sampling = samp
	}
	cache := opt.Cache
	if cache == nil {
		cache = sharedCache
	}
	res, err := lab.Run(jobs, lab.Options{Workers: opt.Workers, Cache: cache, Progress: opt.Progress})
	if err != nil {
		return nil, err
	}

	base := map[string]sim.Result{}
	for i, j := range baselines {
		base[baseKey(j.Workload, j.Node)] = res[i]
	}
	points := make([]Point, len(indices))
	for k, i := range indices {
		points[k] = plan.Points[i]
		points[k].gridIndex = i
		b := base[baseKey(points[k].Profile.Name(), points[k].Node)]
		fillPoint(&points[k], res[len(baselines)+k], b, false)
	}
	return points, nil
}

// marginSelect returns selected[i] == true for every finite point within
// margin of the Pareto frontier of points: p survives unless some point
// dominates it even after p's speedup is credited by (1+margin) and its
// energy discounted by (1-margin). Frontier members always survive. One
// sort plus a binary search per point — O(n log n).
func marginSelect(points []Point, margin float64) []bool {
	selected := make([]bool, len(points))
	if margin <= 0 {
		for i := range points {
			selected[i] = points[i].OnFrontier
		}
		return selected
	}
	idx := make([]int, 0, len(points))
	for i := range points {
		if points[i].finite() {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		return points[idx[a]].Speedup > points[idx[b]].Speedup
	})
	// prefixMin[k] = min energy among the k+1 fastest points.
	prefixMin := make([]float64, len(idx))
	minE := math.Inf(1)
	for k, i := range idx {
		if points[i].EnergyRatio < minE {
			minE = points[i].EnergyRatio
		}
		prefixMin[k] = minE
	}
	for _, i := range idx {
		p := &points[i]
		// L = number of points at least (1+margin) faster than p. With
		// margin > 0 the set never contains p itself.
		need := p.Speedup * (1 + margin)
		L := sort.Search(len(idx), func(k int) bool {
			return points[idx[k]].Speedup < need
		})
		dominated := L > 0 && prefixMin[L-1] <= p.EnergyRatio*(1-margin)
		selected[i] = !dominated
	}
	return selected
}

// ConfirmedReport wraps the confirmed points as an ordinary Report, so the
// existing tables and CSV render them.
func (r *TieredReport) ConfirmedReport() *Report {
	return &Report{Space: r.Space, Points: r.Confirmed}
}

// PredictedReport wraps every predicted cell as an ordinary Report.
func (r *TieredReport) PredictedReport() *Report {
	return &Report{Space: r.Space, Points: r.Predicted}
}

// Frontier returns the confirmed Pareto frontier, fastest first.
func (r *TieredReport) Frontier() []Point { return r.ConfirmedReport().Frontier() }

// Summary is the one-line account of what the tiers did, for CLIs and
// logs.
func (r *TieredReport) Summary() string {
	total := len(r.Predicted)
	conf := len(r.Confirmed)
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(conf) / float64(total)
	}
	if r.SampledCells > 0 {
		return fmt.Sprintf("tiered: %d cells screened analytically, %d sampled (%.1f%%: %d near-frontier + %d audit, margin %g), %d escalated to exact; prediction error %s; sampled-vs-exact %s",
			total, r.SampledCells, pct, r.MarginCells, r.AuditCells, r.Margin, r.EscalatedCells, r.Err, r.SampledErr)
	}
	return fmt.Sprintf("tiered: %d cells screened analytically, %d confirmed cycle-accurately (%.1f%%: %d near-frontier + %d audit, margin %g); prediction error %s",
		total, conf, pct, r.MarginCells, r.AuditCells, r.Margin, r.Err)
}

// CSV renders the confirmed cells with both measured and predicted metrics
// per row.
func (r *TieredReport) CSV() string {
	header := append(append([]string{}, csvHeader...), "pred_speedup", "pred_energy_ratio")
	records := [][]string{header}
	for _, p := range r.Confirmed {
		q := r.Predicted[p.gridIndex]
		rec := append(csvRecord(p), stats.F(q.Speedup, 4), stats.F(q.EnergyRatio, 4))
		records = append(records, rec)
	}
	var b strings.Builder
	writeCSV(&b, records)
	return b.String()
}
