package explore

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"flywheel/internal/analytic"
	"flywheel/internal/lab"
	"flywheel/internal/sim"
	"flywheel/internal/workload/synth"
)

// calibrateFor fits a test model covering the given profiles and archs at
// the given instruction budget, memoizing runs in the supplied cache. The
// profiles match the swept space: the model interpolates across the boost
// axes, it does not extrapolate to unseen workloads (see DESIGN.md).
func calibrateFor(t *testing.T, cache *lab.Cache, profiles []synth.Profile, archs []sim.Arch, instructions uint64) *analytic.Model {
	t.Helper()
	m, err := analytic.Calibrate(analytic.Config{
		Profiles:     profiles,
		Archs:        archs,
		Instructions: instructions,
		Cache:        cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// tieredSpace interpolates between the calibration grid's boost points: 8
// profiles × 5×5 boosts = 200 flywheel cells.
func tieredSpace(instructions uint64) Space {
	return Space{
		Profiles:     analytic.DefaultTrainingProfiles(1)[:8],
		Archs:        []sim.Arch{sim.ArchFlywheel},
		FEBoosts:     []int{0, 25, 50, 75, 100},
		BEBoosts:     []int{0, 25, 50, 75, 100},
		Instructions: instructions,
	}
}

// cellID identifies a grid cell across reports.
func cellID(p Point) string {
	return fmt.Sprintf("%s/%s/%d/%d", baseKey(p.Profile.Name(), p.Node), p.Arch, p.FEBoost, p.BEBoost)
}

// TestExploreTieredRecall is the core two-tier contract on a small space:
// every exact-frontier point must be selected for confirmation and appear on
// the confirmed frontier, while the confirmed set stays a strict subset of
// the grid. The exact run shares the tiered run's cache, so ground truth and
// confirmation jobs coincide.
func TestExploreTieredRecall(t *testing.T) {
	cache := lab.NewCache()
	space := tieredSpace(2_000)
	model := calibrateFor(t, cache, space.Profiles, []sim.Arch{sim.ArchBaseline, sim.ArchFlywheel}, 2_000)

	exact, err := Explore(space, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ExploreTiered(space, model, TieredOptions{Options: Options{Cache: cache}})
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.Predicted) != len(exact.Points) {
		t.Fatalf("predicted %d cells, exact enumerated %d", len(rep.Predicted), len(exact.Points))
	}
	for _, p := range rep.Predicted {
		if !p.Predicted {
			t.Fatal("screened point not marked Predicted")
		}
	}
	if len(rep.Confirmed) == 0 || len(rep.Confirmed) >= len(rep.Predicted) {
		t.Fatalf("confirmed %d of %d cells; want a non-trivial strict subset",
			len(rep.Confirmed), len(rep.Predicted))
	}
	if rep.MarginCells+rep.AuditCells != len(rep.Confirmed) {
		t.Errorf("margin %d + audit %d != confirmed %d", rep.MarginCells, rep.AuditCells, len(rep.Confirmed))
	}

	confirmedFrontier := map[string]bool{}
	for _, p := range rep.Frontier() {
		if p.Predicted {
			t.Error("confirmed frontier contains a predicted point")
		}
		confirmedFrontier[cellID(p)] = true
	}
	for _, p := range exact.Frontier() {
		if !confirmedFrontier[cellID(p)] {
			t.Errorf("exact frontier point %s/FE%d/BE%d (%.3f, %.3f) missed by tiered exploration",
				p.Arch, p.FEBoost, p.BEBoost, p.Speedup, p.EnergyRatio)
		}
	}

	// Confirmed metrics are the measured ones: identical to the exact run's
	// for the same cell.
	exactByID := map[string]Point{}
	for _, p := range exact.Points {
		exactByID[cellID(p)] = p
	}
	for _, c := range rep.Confirmed {
		e := exactByID[cellID(c)]
		if c.Speedup != e.Speedup || c.EnergyRatio != e.EnergyRatio {
			t.Errorf("confirmed cell FE%d/BE%d metrics (%.4f, %.4f) differ from exact (%.4f, %.4f)",
				c.FEBoost, c.BEBoost, c.Speedup, c.EnergyRatio, e.Speedup, e.EnergyRatio)
		}
	}

	if rep.Err.Cells != len(rep.Confirmed) {
		t.Errorf("error summary covers %d cells, confirmed %d", rep.Err.Cells, len(rep.Confirmed))
	}
	if rep.Err.TimeMAPE > rep.Margin {
		t.Errorf("prediction error %.1f%% exceeds the margin %.0f%% — screening is unsound",
			100*rep.Err.TimeMAPE, 100*rep.Margin)
	}
	if !strings.Contains(rep.Summary(), "confirmed") {
		t.Errorf("summary %q", rep.Summary())
	}
}

// TestExploreTieredDeterministic: same space, model, and seed — same
// confirmed set; the audit sample is a pure function of the seed.
func TestExploreTieredDeterministic(t *testing.T) {
	cache := lab.NewCache()
	space := tieredSpace(2_000)
	model := calibrateFor(t, cache, space.Profiles, []sim.Arch{sim.ArchBaseline, sim.ArchFlywheel}, 2_000)

	a, err := ExploreTiered(space, model, TieredOptions{Options: Options{Cache: cache}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExploreTiered(space, model, TieredOptions{Options: Options{Cache: cache}})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Confirmed) != len(b.Confirmed) {
		t.Fatalf("confirmed %d vs %d cells across identical runs", len(a.Confirmed), len(b.Confirmed))
	}
	for i := range a.Confirmed {
		if cellID(a.Confirmed[i]) != cellID(b.Confirmed[i]) {
			t.Fatalf("confirmed cell %d differs across identical runs", i)
		}
	}
	if a.CSV() != b.CSV() {
		t.Error("tiered CSV not deterministic")
	}
}

// TestExploreTieredNoModel: the analytic tier without a model is an explicit
// error.
func TestExploreTieredNoModel(t *testing.T) {
	if _, err := ExploreTiered(tieredSpace(1_000), nil, TieredOptions{}); err == nil {
		t.Error("nil model accepted")
	}
}

// TestExploreTieredAuditDisabled: negative audit confirms only the margin
// band.
func TestExploreTieredAuditDisabled(t *testing.T) {
	cache := lab.NewCache()
	model := calibrateFor(t, cache, tieredSpace(2_000).Profiles, []sim.Arch{sim.ArchBaseline, sim.ArchFlywheel}, 2_000)
	rep, err := ExploreTiered(tieredSpace(2_000), model, TieredOptions{Options: Options{Cache: cache}, Audit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AuditCells != 0 {
		t.Errorf("audit disabled but %d audit cells confirmed", rep.AuditCells)
	}
	if rep.MarginCells != len(rep.Confirmed) {
		t.Errorf("margin %d != confirmed %d", rep.MarginCells, len(rep.Confirmed))
	}
}

// TestMarginSelectProperties checks marginSelect against the brute-force
// definition: a point is screened out iff some point dominates it even after
// crediting its speedup by (1+margin) and discounting its energy by
// (1-margin).
func TestMarginSelectProperties(t *testing.T) {
	r := &rng{state: 3}
	const margin = 0.15
	for trial := 0; trial < 100; trial++ {
		points := randomPoints(r, 1+r.intn(50))
		markFrontier(points)
		got := marginSelect(points, margin)
		for i, p := range points {
			if !p.finite() {
				if got[i] {
					t.Fatalf("trial %d: NaN point selected", trial)
				}
				continue
			}
			dominated := false
			for j, q := range points {
				if i == j || !q.finite() {
					continue
				}
				if q.Speedup >= p.Speedup*(1+margin) && q.EnergyRatio <= p.EnergyRatio*(1-margin) {
					dominated = true
					break
				}
			}
			if got[i] == dominated {
				t.Fatalf("trial %d point %d (%.2f, %.2f): selected=%t, brute-force dominated=%t",
					trial, i, p.Speedup, p.EnergyRatio, got[i], dominated)
			}
			if p.OnFrontier && !got[i] {
				t.Fatalf("trial %d: frontier point screened out", trial)
			}
		}
	}
}

func TestMarginSelectZeroMarginIsFrontier(t *testing.T) {
	r := &rng{state: 5}
	points := randomPoints(r, 40)
	markFrontier(points)
	got := marginSelect(points, 0)
	for i := range points {
		if got[i] != points[i].OnFrontier {
			t.Fatalf("point %d: selected=%t, OnFrontier=%t", i, got[i], points[i].OnFrontier)
		}
	}
}

// TestExploreTieredScale pins the acceptance criterion on a ≥10k-cell seeded
// space: the tiered explorer recovers every exact-frontier point while
// confirming at most 15% of the grid cycle-accurately. The exact reference
// shares the cache, so the tiered confirmation stage simulates nothing new.
// Heavy (≈30s of simulation): skipped under -short and the race detector;
// CI runs it race-free in the tiered smoke step.
func TestExploreTieredScale(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("heavyweight scale test; run without -short/-race")
	}
	cache := lab.NewCache()
	model := calibrateFor(t, cache, analytic.DefaultTrainingProfiles(1),
		[]sim.Arch{sim.ArchBaseline, sim.ArchFlywheel, sim.ArchRegAlloc}, 1_000)

	var fes, bes []int
	for b := 0; b <= 100; b += 5 {
		fes = append(fes, b)
		bes = append(bes, b)
	}
	space := Space{
		Profiles:     analytic.DefaultTrainingProfiles(1),
		Archs:        []sim.Arch{sim.ArchFlywheel, sim.ArchRegAlloc},
		FEBoosts:     fes,
		BEBoosts:     bes,
		Instructions: 1_000,
	}

	exact, err := Explore(space, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Points) < 10_000 {
		t.Fatalf("scale space has %d cells, want >= 10k", len(exact.Points))
	}
	// The margin is sized to the anchored model's observed interpolation
	// error on this space (~1% max APE; see DESIGN.md for the margin/error
	// table); the audit is trimmed so the total budget stays under 15%.
	rep, err := ExploreTiered(space, model, TieredOptions{
		Options: Options{Cache: cache}, Margin: 0.0075, Audit: 0.005,
	})
	if err != nil {
		t.Fatal(err)
	}

	budget := 0.15 * float64(len(rep.Predicted))
	if float64(len(rep.Confirmed)) > budget {
		t.Errorf("confirmed %d of %d cells (%.1f%%), budget is 15%%",
			len(rep.Confirmed), len(rep.Predicted), 100*float64(len(rep.Confirmed))/float64(len(rep.Predicted)))
	}
	confirmedFrontier := map[string]bool{}
	for _, p := range rep.Frontier() {
		confirmedFrontier[cellID(p)] = true
	}
	missed := 0
	for _, p := range exact.Frontier() {
		if !confirmedFrontier[cellID(p)] {
			missed++
			t.Errorf("missed exact frontier point %s %s FE%d/BE%d (%.3f, %.3f)",
				p.Profile, p.Arch, p.FEBoost, p.BEBoost, p.Speedup, p.EnergyRatio)
		}
	}
	t.Logf("%s; exact frontier %d points, missed %d", rep.Summary(), len(exact.Frontier()), missed)
	if math.IsNaN(rep.Err.TimeMAPE) {
		t.Error("error summary is NaN")
	}
}
