package fabric

import (
	"sync"
	"time"
)

// Per-shard circuit breaker. A run of consecutive transport failures
// trips the shard open: it is ejected from candidate routing (jobs route
// to ring replicas instead) so a dead or drowning worker stops eating
// retries and latency. After a cooldown the breaker admits trial traffic
// again (half-open) — a health probe or, when every replica is down, a
// real request — and one success rejoins the shard; one failure re-arms
// the cooldown. Job-level errors never trip it: those are deterministic
// simulation failures, not worker health.
//
// States: closed (healthy) → open (ejected) → half-open (trialing) →
// closed, with half-open → open on a failed trial.

const (
	breakerClosed int = iota
	breakerOpen
	breakerHalfOpen
)

type breaker struct {
	threshold int           // consecutive failures to trip
	cooldown  time.Duration // open time before trial traffic

	mu          sync.Mutex
	state       int
	consecutive int       // failures since the last success
	openedAt    time.Time // when the breaker last tripped or re-armed
	trips       uint64
	rejoins     uint64
}

// onSuccess records a completed request or probe: the shard is healthy.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.rejoins++
	}
}

// onFailure records a transport failure. Callers must not report
// cancellations caused by their own context.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	switch b.state {
	case breakerHalfOpen:
		// The trial failed: re-arm the cooldown.
		b.state = breakerOpen
		b.openedAt = time.Now()
	case breakerClosed:
		if b.consecutive >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.trips++
		}
	}
}

// routable reports whether the shard should receive normal traffic,
// promoting open → half-open once the cooldown has elapsed (the caller's
// request becomes the trial).
func (b *breaker) routable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && time.Since(b.openedAt) >= b.cooldown {
		b.state = breakerHalfOpen
	}
	return b.state != breakerOpen
}

// probeDue reports whether the health-probe loop should test the shard
// this tick: always, except while an open breaker is still cooling down.
func (b *breaker) probeDue() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
	}
	return true
}

// label returns the state for stats surfaces.
func (b *breaker) label() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func (b *breaker) counters() (trips, rejoins uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.rejoins
}
