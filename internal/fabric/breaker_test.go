package fabric

// Circuit-breaker, backoff-jitter and job-deadline tests: the fabric's
// self-healing layer. A worker that fails repeatedly is ejected from
// routing, re-admitted on probation after a cooldown, and rejoined on its
// first success; retry delays spread out instead of stampeding; a worker
// that accepts a request and never answers is failed over, not waited on
// forever.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flywheel/internal/lab"
	"flywheel/internal/labd"
)

func TestBreakerStateMachine(t *testing.T) {
	b := breaker{threshold: 3, cooldown: 30 * time.Millisecond}

	// Sub-threshold failure runs never trip; a success resets the run.
	b.onFailure()
	b.onFailure()
	b.onSuccess()
	b.onFailure()
	b.onFailure()
	if !b.routable() || b.label() != "closed" {
		t.Fatalf("tripped below threshold: %s", b.label())
	}
	b.onFailure()
	if b.routable() || b.label() != "open" {
		t.Fatalf("threshold did not trip: %s", b.label())
	}
	if trips, rejoins := b.counters(); trips != 1 || rejoins != 0 {
		t.Fatalf("counters after trip: %d/%d", trips, rejoins)
	}

	// Cooldown elapses: the next router admits trial traffic (half-open).
	time.Sleep(35 * time.Millisecond)
	if !b.routable() || b.label() != "half-open" {
		t.Fatalf("cooldown did not half-open: %s", b.label())
	}
	// A failed trial re-arms the cooldown.
	b.onFailure()
	if b.routable() || b.label() != "open" {
		t.Fatalf("failed trial did not re-open: %s", b.label())
	}
	if trips, _ := b.counters(); trips != 1 {
		t.Fatalf("re-arming counted as a new trip: %d", trips)
	}
	// A successful trial rejoins.
	time.Sleep(35 * time.Millisecond)
	if !b.probeDue() {
		t.Fatal("probe not due after cooldown")
	}
	b.onSuccess()
	if !b.routable() || b.label() != "closed" {
		t.Fatalf("successful trial did not close: %s", b.label())
	}
	if trips, rejoins := b.counters(); trips != 1 || rejoins != 1 {
		t.Fatalf("counters after rejoin: %d/%d", trips, rejoins)
	}
}

// TestRetryDelaySpread: the backoff is exponential (doubling, capped) and
// jittered — concurrent retries of the same attempt draw well-spread
// delays instead of a synchronized wave.
func TestRetryDelaySpread(t *testing.T) {
	c, err := New(Options{
		Workers:         []string{"http://w1", "http://w2"},
		RetryBackoff:    64 * time.Millisecond,
		RetryBackoffMax: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Attempt 2: range (128ms/2, 128ms].
	var mu sync.Mutex
	seen := map[time.Duration]bool{}
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := c.retryDelay(2)
			if d < 64*time.Millisecond || d > 128*time.Millisecond {
				t.Errorf("attempt-2 delay %v outside [64ms, 128ms]", d)
			}
			mu.Lock()
			seen[d] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(seen) < 10 {
		t.Fatalf("64 concurrent delays collapsed to %d distinct values — no jitter", len(seen))
	}
	// Deep attempts saturate at the cap, jitter included.
	for i := 0; i < 32; i++ {
		if d := c.retryDelay(30); d < time.Second || d > 2*time.Second {
			t.Fatalf("capped delay %v outside [1s, 2s]", d)
		}
	}
	// Attempt 1 starts at the base.
	if d := c.retryDelay(1); d < 32*time.Millisecond || d > 64*time.Millisecond {
		t.Fatalf("attempt-1 delay %v outside [32ms, 64ms]", d)
	}
}

// TestJobTimeoutFailsOverStalledWorker: a worker that accepts a sweep and
// then never writes a byte must not hang the sweep — the per-job deadline
// expires and the job retries on the replica. Hedging is disabled so the
// deadline is the only rescue path.
func TestJobTimeoutFailsOverStalledWorker(t *testing.T) {
	goodCache := lab.NewCache()
	goodSrv := labd.NewServer(goodCache)
	good := httptest.NewServer(goodSrv.Handler())
	t.Cleanup(good.Close)

	stallSrv := labd.NewServer(lab.NewCache())
	stallSrv.SetLogf(func(string, ...any) {})
	inner := stallSrv.Handler()
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/sweep") {
			// Accept the whole request, then never answer. The body must
			// be drained or the server would not notice the caller
			// abandoning the request (and the test server could not shut
			// down).
			io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
			return
		}
		inner.ServeHTTP(w, r) // health stays green: the breaker is not the rescue here
	}))
	t.Cleanup(stall.Close)

	coord, err := New(Options{
		Workers:        []string{stall.URL, good.URL},
		DisableHedging: true,
		JobTimeout:     200 * time.Millisecond,
		RetryBackoff:   5 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Jobs homed on the staller, so every one must be rescued by timeout.
	var jobs []lab.Job
	for fe := 0; len(jobs) < 4 && fe < 200; fe++ {
		j := lab.Job{Workload: "gcc", FEBoostPct: fe, MaxInstructions: 2000}
		if coord.Owner(j.Key()) == stall.URL {
			jobs = append(jobs, j)
		}
	}
	done := make(chan []labd.SweepLine, 1)
	go func() { done <- collectSweep(t, coord, jobs, nil) }()
	select {
	case lines := <-done:
		assertMatchesInProcess(t, jobs, lines)
	case <-time.After(30 * time.Second):
		t.Fatal("sweep hung on the stalled worker: job deadline never fired")
	}
	if coord.retries.Load() == 0 {
		t.Fatal("stall rescued without a retry — deadline path untested")
	}
	if goodCache.Misses() == 0 {
		t.Fatal("replica did no rescue work")
	}
}

// TestBreakerEjectsAndRejoins drives the full lifecycle through real
// traffic: a worker turns unhealthy and is ejected (sweeps keep
// succeeding via its replica), then turns healthy and a probe rejoins it.
func TestBreakerEjectsAndRejoins(t *testing.T) {
	var down atomic.Bool
	mk := func() (*httptest.Server, *lab.Cache) {
		cache := lab.NewCache()
		srv := labd.NewServer(cache)
		srv.SetLogf(func(string, ...any) {})
		inner := srv.Handler()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		return ts, cache
	}
	flakyCache := lab.NewCache()
	flakySrv := labd.NewServer(flakyCache)
	flakySrv.SetLogf(func(string, ...any) {})
	flakyInner := flakySrv.Handler()
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "injected outage", http.StatusInternalServerError)
			return
		}
		flakyInner.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)
	steady, steadyCache := mk()
	_ = steadyCache

	coord, err := New(Options{
		Workers:          []string{flaky.URL, steady.URL},
		DisableHedging:   true,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // expired manually below for the rejoin phase
		RetryBackoff:     time.Millisecond,
		RetryBackoffMax:  4 * time.Millisecond,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	flakyShard := coord.shards[flaky.URL]

	// Outage: the sweep still answers (failover), and the repeated
	// failures trip the flaky worker's breaker.
	down.Store(true)
	jobs := testBatch(10)
	lines := collectSweep(t, coord, jobs, nil)
	assertMatchesInProcess(t, jobs, lines)
	if trips, _ := flakyShard.brk.counters(); trips == 0 {
		t.Fatal("outage did not trip the breaker")
	}

	// Ejected: new sweeps route entirely around the flaky worker (no new
	// requests reach it) while its breaker stays open.
	if flakyShard.brk.label() != "open" {
		t.Fatalf("breaker %s after outage, want open", flakyShard.brk.label())
	}
	before := flakyShard.requests.Load()
	lines = collectSweep(t, coord, testBatch(6), nil)
	if got := flakyShard.requests.Load(); got != before {
		t.Fatalf("ejected worker still received %d requests", got-before)
	}

	// Recovery + probe: once the cooldown has passed (forced here rather
	// than slept through) a health probe rejoins the recovered worker.
	down.Store(false)
	flakyShard.brk.mu.Lock()
	flakyShard.brk.openedAt = time.Now().Add(-2 * time.Hour)
	flakyShard.brk.mu.Unlock()
	coord.probeOnce(context.Background())
	if flakyShard.brk.label() != "closed" {
		t.Fatalf("breaker %s after recovery probe, want closed", flakyShard.brk.label())
	}
	if _, rejoins := flakyShard.brk.counters(); rejoins == 0 {
		t.Fatal("rejoin not counted")
	}

	// The background loop drives the same probes on a ticker.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.opt.ProbeInterval = 10 * time.Millisecond
	coord.StartHealthProbes(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for coord.probes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("StartHealthProbes never probed")
		}
		time.Sleep(time.Millisecond)
	}

	// Stats and health surface the breaker.
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(ts.Close)
	var health ClusterHealth
	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Breakers[flaky.URL] != "closed" || health.Breakers[steady.URL] != "closed" {
		t.Fatalf("health breakers: %+v", health.Breakers)
	}
	var stats ClusterStats
	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, ws := range stats.Workers {
		if ws.URL == flaky.URL && (ws.BreakerTrips == 0 || ws.BreakerRejoins == 0) {
			t.Fatalf("stats did not surface breaker lifecycle: %+v", ws)
		}
	}
}
