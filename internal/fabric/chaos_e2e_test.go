package fabric

// End-to-end chaos drill: the full client → coordinator → worker stack
// under scripted transport faults and planted store corruption. The
// invariants are absolute — every job answered exactly once, results
// byte-identical to a fault-free in-process run, ejected workers rejoin,
// and a cluster scrub finds every file we damaged — because "mostly
// recovered" is indistinguishable from broken in a result cache.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flywheel/internal/chaos"
	"flywheel/internal/lab"
	"flywheel/internal/lab/store"
	"flywheel/internal/labd"
)

// TestChaosSweepExactUnderFaults runs 48 jobs through a 2-worker cluster
// with faults on both hops: a scripted outage window on worker 0 (the
// coordinator retries, trips its breaker, and routes around it) and
// seeded stream cuts on the client→coordinator hop (the labd client's
// resume path re-requests the missing suffix). Everything still has to
// come back exactly once, in order, byte-identical to lab.Run.
func TestChaosSweepExactUnderFaults(t *testing.T) {
	var workerChaos *chaos.RoundTripper
	tc := startCluster(t, 2, func(o *Options) {
		workerChaos = chaos.New(chaos.Plan{
			Seed:       42,
			Delay:      0.2,
			MaxDelay:   10 * time.Millisecond,
			PathSubstr: "/v1/sweep",
			Outages: []chaos.Outage{
				{Host: strings.TrimPrefix(o.Workers[0], "http://"), After: 3, For: 8},
			},
		}, nil)
		o.HTTPClient = &http.Client{Transport: workerChaos}
		o.DisableHedging = true
		o.RetryBackoff = 2 * time.Millisecond
		o.RetryBackoffMax = 10 * time.Millisecond
		o.BreakerThreshold = 2
		o.BreakerCooldown = time.Hour // expired manually for the rejoin phase
	})
	front := httptest.NewServer(tc.coord.Handler())
	t.Cleanup(front.Close)

	// The outer client gets its own fault injector: half its sweep replies
	// are cut mid-NDJSON, a few requests are dropped outright. Resume
	// absorbs both; the budget is generous because faults also hit the
	// re-requests.
	client := labd.NewClient(front.URL)
	client.MaxResumes = 50
	client.HTTPClient = &http.Client{Transport: chaos.New(chaos.Plan{
		Seed:       99,
		Drop:       0.05,
		Truncate:   0.5,
		PathSubstr: "/v1/sweep",
	}, nil)}

	jobs := testBatch(48)
	var combined []labd.SweepLine
	for off := 0; off < len(jobs); off += 4 {
		lines, err := client.Sweep(labd.SweepRequest{Jobs: jobs[off : off+4]})
		if err != nil {
			t.Fatalf("batch at %d failed under chaos: %v", off, err)
		}
		for i, line := range lines {
			line.Index = off + i
			combined = append(combined, line)
		}
	}
	// Exactly once, in order, byte-identical: assertMatchesInProcess
	// checks index, key, and payload of every line against lab.Run.
	assertMatchesInProcess(t, jobs, combined)

	// The drill must have actually drilled.
	if workerChaos.Counts().OutageFailures == 0 {
		t.Fatal("outage window never fired — worker hop untested")
	}
	if tc.coord.retries.Load() == 0 {
		t.Fatal("no coordinator retries under an outage")
	}
	if client.Resumes() == 0 {
		t.Fatal("no client resumes despite stream cuts")
	}
	sick := tc.coord.shards[tc.urls[0]]
	if trips, _ := sick.brk.counters(); trips == 0 {
		t.Fatal("outage did not trip the worker's breaker")
	}

	// Recovery: the outage window is spent, so once the cooldown is
	// forced past, one health probe rejoins the worker...
	sick.brk.mu.Lock()
	sick.brk.openedAt = time.Now().Add(-2 * time.Hour)
	sick.brk.mu.Unlock()
	tc.coord.probeOnce(context.Background())
	if sick.brk.label() != "closed" {
		t.Fatalf("breaker %s after recovery probe, want closed", sick.brk.label())
	}
	// ...and a fresh sweep through the healed cluster is still exact.
	again := collectSweep(t, tc.coord, jobs[:8], nil)
	assertMatchesInProcess(t, jobs[:8], again)
}

// TestClusterScrubFindsAllPlantedCorruption: a disk-backed 2-worker
// cluster is damaged in every way the store's checksum must catch —
// garbage bytes, mid-file truncation, a checksum flip — and one
// coordinator POST /v1/scrub has to quarantine exactly the damaged
// files on every shard, after which the cluster still answers the
// original batch byte-identically.
func TestClusterScrubFindsAllPlantedCorruption(t *testing.T) {
	root := t.TempDir()
	var urls []string
	for i := 0; i < 2; i++ {
		st, err := store.Open(store.ShardDir(root, i))
		if err != nil {
			t.Fatal(err)
		}
		srv := labd.NewServer(lab.NewCacheWithStore(st))
		srv.SetLogf(func(string, ...any) {})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	coord, err := New(Options{Workers: urls, RetryBackoff: 5 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}

	jobs := testBatch(24)
	assertMatchesInProcess(t, jobs, collectSweep(t, coord, jobs, nil))

	// Plant deterministic damage on each shard: one file of garbage, one
	// truncated mid-way, one with a flipped checksum digit.
	planted := map[string]bool{}
	for i := 0; i < 2; i++ {
		files, err := filepath.Glob(filepath.Join(store.ShardDir(root, i), store.Version(), "*", "*.json"))
		if err != nil || len(files) < 3 {
			t.Fatalf("shard %d has %d entries (err %v), need 3 victims", i, len(files), err)
		}
		if err := os.WriteFile(files[0], []byte("not even json"), 0o644); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(files[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(files[1], data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		data, err = os.ReadFile(files[2])
		if err != nil {
			t.Fatal(err)
		}
		sum := []byte(`"sum":"`)
		at := strings.Index(string(data), string(sum))
		if at < 0 {
			t.Fatalf("entry %s has no sum field", files[2])
		}
		data[at+len(sum)] ^= 0x01 // still hex-shaped, no longer the hash
		if err := os.WriteFile(files[2], data, 0o644); err != nil {
			t.Fatal(err)
		}
		planted[files[0]], planted[files[1]], planted[files[2]] = true, true, true
	}

	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)
	scrub := postScrub(t, front.URL)
	if scrub.Quarantined != len(planted) {
		t.Fatalf("cluster scrub quarantined %d files, planted %d: %+v", scrub.Quarantined, len(planted), scrub)
	}
	found := map[string]bool{}
	for _, w := range scrub.Workers {
		if w.Error != "" {
			t.Fatalf("worker %s scrub failed: %s", w.URL, w.Error)
		}
		for _, q := range w.Scrub.Quarantined {
			found[q.Path] = true
			if !planted[q.Path] {
				t.Fatalf("scrub quarantined healthy file %s (%s)", q.Path, q.Reason)
			}
		}
	}
	for p := range planted {
		if !found[p] {
			t.Fatalf("planted corruption in %s survived the cluster scrub", p)
		}
	}

	// Quarantine is not data loss: the shards re-simulate the evicted
	// keys and the batch still matches, then a second scrub is clean.
	assertMatchesInProcess(t, jobs, collectSweep(t, coord, jobs, nil))
	if again := postScrub(t, front.URL); again.Quarantined != 0 {
		t.Fatalf("second scrub still found corruption: %+v", again)
	}
}

func postScrub(t *testing.T, base string) ClusterScrub {
	t.Helper()
	resp, err := http.Post(base+"/v1/scrub", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub status %d", resp.StatusCode)
	}
	var out ClusterScrub
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}
