package fabric

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flywheel/internal/lab"
	"flywheel/internal/labd"
)

// ErrBusy is returned by Sweep when the pending-job cap would be
// exceeded; the HTTP layer translates it to 503 + Retry-After.
var ErrBusy = errors.New("fabric: at capacity, retry later")

// Options configures a Coordinator.
type Options struct {
	// Workers are the labd base URLs forming the cluster. Required.
	Workers []string
	// Replicas is how many ring owners each key gets — the failover and
	// hedging width. Zero defaults to 2 (clamped to the worker count).
	Replicas int
	// VNodes is the consistent-hash virtual-node count per worker; zero
	// defaults to 64.
	VNodes int
	// MaxInFlightPerShard bounds concurrent requests to one worker, across
	// every sweep the coordinator is serving. Zero defaults to 4.
	MaxInFlightPerShard int
	// MaxPending bounds the coordinator's admitted-but-unfinished job
	// count; a sweep that would exceed it (while others are in flight) is
	// rejected with 503 + Retry-After. Zero defaults to 16384.
	MaxPending int
	// RetryBackoff is the base delay before retrying a failed shard
	// request on the next replica; it doubles per attempt up to
	// RetryBackoffMax, with full jitter so concurrent retries spread out
	// instead of stampeding a recovering worker. Zero defaults to 50ms.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential growth. Zero defaults to 2s.
	RetryBackoffMax time.Duration
	// JobTimeout bounds one job request to one shard: a worker that
	// accepts a request and then never writes its line is failed over
	// instead of hanging the sweep. Zero defaults to 2m; negative
	// disables the deadline.
	JobTimeout time.Duration
	// BreakerThreshold is the consecutive transport-failure count that
	// trips a shard's circuit breaker (ejecting it from routing). Zero
	// defaults to 5.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped shard stays ejected before
	// trial traffic may re-admit it. Zero defaults to 5s.
	BreakerCooldown time.Duration
	// ProbeInterval paces StartHealthProbes' background health checks.
	// Zero defaults to 2s.
	ProbeInterval time.Duration
	// HedgeDelayMin floors the hedging trigger: a job is duplicated to the
	// next replica when its shard has not answered within
	// max(HedgeDelayMin, shard p99). Zero defaults to 250ms.
	HedgeDelayMin time.Duration
	// DisableHedging turns speculative duplicates off (retry still works).
	DisableHedging bool
	// HTTPClient is used for all worker traffic; nil uses
	// http.DefaultClient.
	HTTPClient *http.Client
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
}

func (o *Options) fill() error {
	if len(o.Workers) == 0 {
		return fmt.Errorf("fabric: no workers")
	}
	seen := map[string]bool{}
	for _, w := range o.Workers {
		if w == "" || seen[w] {
			return fmt.Errorf("fabric: empty or duplicate worker %q", w)
		}
		seen[w] = true
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Replicas > len(o.Workers) {
		o.Replicas = len(o.Workers)
	}
	if o.MaxInFlightPerShard <= 0 {
		o.MaxInFlightPerShard = 4
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 16384
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.RetryBackoffMax <= 0 {
		o.RetryBackoffMax = 2 * time.Second
	}
	if o.JobTimeout == 0 {
		o.JobTimeout = 2 * time.Minute
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.HedgeDelayMin <= 0 {
		o.HedgeDelayMin = 250 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// shard is the coordinator's view of one worker: its client, its global
// in-flight bound, and a window of recent request latencies for the
// hedging trigger.
type shard struct {
	url    string
	client *labd.Client
	sem    chan struct{}
	brk    breaker

	requests atomic.Uint64
	failures atomic.Uint64

	mu   sync.Mutex
	lats [128]time.Duration
	n    int // filled entries
	next int // ring-buffer cursor
}

func (s *shard) observe(d time.Duration) {
	s.mu.Lock()
	s.lats[s.next] = d
	s.next = (s.next + 1) % len(s.lats)
	if s.n < len(s.lats) {
		s.n++
	}
	s.mu.Unlock()
}

// p99 returns the 99th-percentile latency of the recent window, or zero
// with no samples.
func (s *shard) p99() time.Duration {
	s.mu.Lock()
	buf := make([]time.Duration, s.n)
	copy(buf, s.lats[:s.n])
	s.mu.Unlock()
	if len(buf) == 0 {
		return 0
	}
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	return buf[(len(buf)*99)/100]
}

// Coordinator fans sweeps across the cluster. It is safe for concurrent
// use; per-shard in-flight bounds and the pending-job cap are shared by
// all requests it is serving.
type Coordinator struct {
	opt    Options
	ring   *Ring
	order  []string
	shards map[string]*shard
	start  time.Time

	pending atomic.Int64

	requests atomic.Uint64
	jobs     atomic.Uint64
	retries  atomic.Uint64
	hedges   atomic.Uint64
	steals   atomic.Uint64
	rejected atomic.Uint64
	dropped  atomic.Uint64
	probes   atomic.Uint64
}

// New builds a coordinator over the given workers. It does not contact
// them — call CheckWorkers to gate startup on cluster health.
func New(opt Options) (*Coordinator, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		opt:    opt,
		ring:   NewRing(opt.Workers, opt.VNodes),
		order:  append([]string(nil), opt.Workers...),
		shards: make(map[string]*shard, len(opt.Workers)),
		start:  time.Now(),
	}
	for _, url := range c.order {
		cl := labd.NewClient(url)
		cl.HTTPClient = opt.HTTPClient
		// The fabric owns failure policy — retry on a replica, hedge,
		// breaker — so its shard clients must fail fast, not resume
		// against the same possibly-dead worker.
		cl.MaxResumes = -1
		c.shards[url] = &shard{
			url:    url,
			client: cl,
			sem:    make(chan struct{}, opt.MaxInFlightPerShard),
			brk:    breaker{threshold: opt.BreakerThreshold, cooldown: opt.BreakerCooldown},
		}
	}
	return c, nil
}

// Owner reports which worker a job key primarily lands on (its shard
// store's home). Exposed for tests and ops tooling.
func (c *Coordinator) Owner(key string) string { return c.ring.Owner(key) }

// Pending reports the coordinator's admitted-but-unfinished job count.
func (c *Coordinator) Pending() int64 { return c.pending.Load() }

// CheckWorkers probes every worker's /v1/health and returns an error
// naming the unreachable ones — the cluster's registration gate.
func (c *Coordinator) CheckWorkers(ctx context.Context) error {
	var bad []string
	for _, url := range c.order {
		hctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		h, err := c.shards[url].client.Health(hctx)
		cancel()
		if err != nil || h.Status != "ok" {
			bad = append(bad, url)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("fabric: %d of %d workers unhealthy: %v", len(bad), len(c.order), bad)
	}
	return nil
}

// queueSet holds each shard's FIFO of job indexes for one sweep. Owners
// pop from the head of their own queue; an idle shard steals from the tail
// of the longest other queue, so a skewed grid (every job hashing to one
// worker) still saturates the cluster.
type queueSet struct {
	mu    sync.Mutex
	q     map[string][]int
	order []string
}

func newQueueSet(order []string) *queueSet {
	return &queueSet{q: make(map[string][]int, len(order)), order: order}
}

func (qs *queueSet) push(owner string, idx int) {
	qs.mu.Lock()
	qs.q[owner] = append(qs.q[owner], idx)
	qs.mu.Unlock()
}

func (qs *queueSet) pop(own string) (idx int, stolen, ok bool) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if q := qs.q[own]; len(q) > 0 {
		qs.q[own] = q[1:]
		return q[0], false, true
	}
	best, bestLen := "", 0
	for _, n := range qs.order {
		if n != own && len(qs.q[n]) > bestLen {
			best, bestLen = n, len(qs.q[n])
		}
	}
	if bestLen == 0 {
		return 0, false, false
	}
	q := qs.q[best]
	qs.q[best] = q[:len(q)-1]
	return q[len(q)-1], true, true
}

// Sweep runs the batch across the cluster and emits one SweepLine per job
// strictly in job order (the merged stream). emit returning an error
// aborts the sweep; jobs already started on workers complete there and
// warm their shard stores. Job-level failures travel in the lines, like
// labd's own protocol.
func (c *Coordinator) Sweep(ctx context.Context, jobs []lab.Job, emit func(labd.SweepLine) error) error {
	if !c.admit(len(jobs)) {
		return ErrBusy
	}
	c.requests.Add(1)
	c.jobs.Add(uint64(len(jobs)))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	queues := newQueueSet(c.order)
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = j.Key()
		queues.push(c.routeOwner(keys[i]), i)
	}

	ready := make([]chan labd.SweepLine, len(jobs))
	for i := range ready {
		ready[i] = make(chan labd.SweepLine, 1)
	}

	var wg sync.WaitGroup
	for _, name := range c.order {
		sh := c.shards[name]
		for k := 0; k < c.opt.MaxInFlightPerShard; k++ {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				for {
					i, stolen, ok := queues.pop(sh.url)
					if !ok {
						return
					}
					if stolen {
						c.steals.Add(1)
					}
					line := c.runJob(runCtx, sh, jobs[i], keys[i])
					line.Index = i
					line.Key = keys[i]
					ready[i] <- line
					c.pending.Add(-1)
				}
			}(sh)
		}
	}
	defer wg.Wait()

	for i := range jobs {
		var line labd.SweepLine
		select {
		case line = <-ready[i]:
		case <-ctx.Done():
			c.dropped.Add(1)
			return ctx.Err()
		}
		if err := emit(line); err != nil {
			c.dropped.Add(1)
			return err
		}
	}
	return nil
}

// runJob executes one job with the full failure policy: try the executing
// shard, hedge to the next candidate when the shard's p99 says it is
// running long, and retry with backoff on transport failure. Job-level
// errors from a worker are terminal (retrying a deterministic failure
// elsewhere reproduces it). The first successful answer wins; straggling
// duplicates are canceled.
func (c *Coordinator) runJob(ctx context.Context, execer *shard, job lab.Job, key string) labd.SweepLine {
	cands := c.candidates(execer, key)
	actx, acancel := context.WithCancel(ctx)
	defer acancel() // reels in hedged stragglers

	type attempt struct {
		line labd.SweepLine
		err  error
	}
	results := make(chan attempt, len(cands))
	next, inflight := 0, 0
	launch := func() {
		sh := cands[next]
		next++
		inflight++
		go func() {
			line, err := c.oneRequest(actx, sh, job)
			results <- attempt{line, err}
		}()
	}
	launch()

	hedge := time.NewTimer(c.hedgeDelay(execer))
	defer hedge.Stop()
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return labd.SweepLine{Error: ctx.Err().Error()}
		case <-hedge.C:
			if !c.opt.DisableHedging && next < len(cands) {
				c.hedges.Add(1)
				launch()
			}
		case a := <-results:
			inflight--
			if a.err == nil {
				return a.line
			}
			lastErr = a.err
			if next < len(cands) {
				c.retries.Add(1)
				if !sleepCtx(ctx, c.retryDelay(next)) {
					return labd.SweepLine{Error: ctx.Err().Error()}
				}
				launch()
			} else if inflight == 0 {
				return labd.SweepLine{Error: lastErr.Error()}
			}
		}
	}
}

// candidates orders the shards a job may run on: the shard that dequeued
// it first (cache-warm for owners, already-idle for stealers), then the
// ring owners it is not, so failover lands on the replicas that may
// already hold the result on disk. Shards with an open breaker sink to
// the back as a last resort — a job is never starved even with the whole
// cluster ejected, and that desperate request doubles as the breaker's
// half-open trial.
func (c *Coordinator) candidates(execer *shard, key string) []*shard {
	cands := []*shard{execer}
	for _, url := range c.ring.Owners(key, c.opt.Replicas) {
		if url != execer.url {
			cands = append(cands, c.shards[url])
		}
	}
	var up, down []*shard
	for _, sh := range cands {
		if sh.brk.routable() {
			up = append(up, sh)
		} else {
			down = append(down, sh)
		}
	}
	return append(up, down...)
}

// routeOwner picks the shard a job queues on: its first ring owner whose
// breaker admits traffic, so an ejected worker's keys fail over to their
// replicas (whose stores they warm) instead of queueing on a corpse. With
// every owner ejected the primary keeps the job.
func (c *Coordinator) routeOwner(key string) string {
	owners := c.ring.Owners(key, len(c.order))
	for _, url := range owners {
		if c.shards[url].brk.routable() {
			return url
		}
	}
	return owners[0]
}

// retryDelay is exponential backoff with full jitter: attempt n (1-based)
// draws uniformly from [base·2ⁿ⁻¹/2, base·2ⁿ⁻¹], capped at
// RetryBackoffMax, so concurrent retries against a recovering worker
// spread out instead of arriving as a synchronized wave.
func (c *Coordinator) retryDelay(attempt int) time.Duration {
	d := c.opt.RetryBackoff
	for i := 1; i < attempt && d < c.opt.RetryBackoffMax; i++ {
		d *= 2
	}
	if d > c.opt.RetryBackoffMax {
		d = c.opt.RetryBackoffMax
	}
	half := d / 2
	return half + rand.N(half+1)
}

func (c *Coordinator) hedgeDelay(sh *shard) time.Duration {
	if d := sh.p99(); d > c.opt.HedgeDelayMin {
		return d
	}
	return c.opt.HedgeDelayMin
}

// oneRequest performs a single bounded job request against one shard.
// The error return is nil for anything terminal (including a job-level
// failure, which travels in the line) and non-nil only for retryable
// transport trouble.
func (c *Coordinator) oneRequest(ctx context.Context, sh *shard, job lab.Job) (labd.SweepLine, error) {
	select {
	case sh.sem <- struct{}{}:
	case <-ctx.Done():
		return labd.SweepLine{}, ctx.Err()
	}
	defer func() { <-sh.sem }()

	// The per-job deadline: a worker that accepts the request and then
	// never writes its line fails over instead of hanging the sweep.
	jctx := ctx
	if c.opt.JobTimeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, c.opt.JobTimeout)
		defer cancel()
	}

	start := time.Now()
	lines, err := sh.client.SweepContext(jctx, labd.SweepRequest{Jobs: []lab.Job{job}})
	sh.observe(time.Since(start))
	sh.requests.Add(1)
	if len(lines) == 1 {
		// Complete reply; a job-level error rides in the line and is
		// terminal — the simulation is deterministic, so another shard
		// would fail identically.
		sh.brk.onSuccess()
		return lines[0], nil
	}
	if err == nil {
		err = fmt.Errorf("fabric: %s returned %d lines for 1 job", sh.url, len(lines))
	}
	sh.failures.Add(1)
	if ctx.Err() == nil {
		// Shard health signal — but not when the "failure" is our own
		// cancellation (a hedged straggler reeled in, or the sweep ending).
		sh.brk.onFailure()
	}
	c.opt.Logf("fabric: %s: %v", sh.url, err)
	return labd.SweepLine{}, fmt.Errorf("fabric: %s: %w", sh.url, err)
}

// StartHealthProbes launches the background loop feeding the per-shard
// circuit breakers independently of sweep traffic: every ProbeInterval
// each shard's /v1/health is checked (an open breaker is left alone until
// its cooldown elapses, then the probe is its half-open trial). Probe
// successes rejoin ejected shards even when no sweeps are running; probe
// failures eject a silently dead worker before a sweep trips over it.
// The loop stops when ctx ends.
func (c *Coordinator) StartHealthProbes(ctx context.Context) {
	go func() {
		t := time.NewTicker(c.opt.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			c.probeOnce(ctx)
		}
	}()
}

// probeOnce checks every due shard's health concurrently and feeds the
// results to the breakers. Exposed to tests via Coordinator internals.
func (c *Coordinator) probeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, url := range c.order {
		sh := c.shards[url]
		if !sh.brk.probeDue() {
			continue
		}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			hctx, cancel := context.WithTimeout(ctx, c.opt.ProbeInterval)
			defer cancel()
			h, err := sh.client.Health(hctx)
			switch {
			case err == nil && h.Status == "ok":
				sh.brk.onSuccess()
			case ctx.Err() == nil:
				old := sh.brk.label()
				sh.brk.onFailure()
				if now := sh.brk.label(); now == "open" && old != "open" {
					c.opt.Logf("fabric: breaker opened for %s: %v", sh.url, err)
				}
			}
		}(sh)
	}
	wg.Wait()
	c.probes.Add(1)
}

// sleepCtx sleeps d or until ctx ends; it reports whether the full sleep
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// admit reserves n job slots, enforcing the pending cap. A lone oversized
// batch on an idle coordinator is admitted (MaxBatch still bounds it);
// load shedding only kicks in when other work is in flight.
func (c *Coordinator) admit(n int) bool {
	for {
		cur := c.pending.Load()
		if cur > 0 && cur+int64(n) > int64(c.opt.MaxPending) {
			c.rejected.Add(1)
			return false
		}
		if c.pending.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}
