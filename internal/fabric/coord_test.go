package fabric

// Cluster end-to-end tests: the fabric must return byte-identical
// job-ordered results to an in-process lab run — including with a worker
// killed mid-sweep — steal work from skewed shards, shed load with 503,
// and aggregate stats.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flywheel/internal/lab"
	"flywheel/internal/labd"
	"flywheel/internal/sim"
)

// testCluster is n in-process labd workers plus a coordinator over them.
type testCluster struct {
	coord   *Coordinator
	workers []*httptest.Server
	caches  []*lab.Cache
	urls    []string
}

func startCluster(t *testing.T, n int, tweak func(*Options)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		cache := lab.NewCache()
		srv := labd.NewServer(cache)
		srv.SetLogf(func(string, ...any) {}) // worker noise is expected in kill tests
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		tc.workers = append(tc.workers, ts)
		tc.caches = append(tc.caches, cache)
		tc.urls = append(tc.urls, ts.URL)
	}
	opt := Options{
		Workers:       tc.urls,
		RetryBackoff:  5 * time.Millisecond,
		HedgeDelayMin: 100 * time.Millisecond,
		Logf:          t.Logf,
	}
	if tweak != nil {
		tweak(&opt)
	}
	coord, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	return tc
}

// kill makes worker i unreachable: no new connections, in-flight ones cut.
func (tc *testCluster) kill(i int) {
	tc.workers[i].Listener.Close()
	tc.workers[i].CloseClientConnections()
}

func testBatch(n int) []lab.Job {
	jobs := make([]lab.Job, 0, n)
	for i := 0; len(jobs) < n; i++ {
		jobs = append(jobs, lab.Job{
			Workload: []string{"ijpeg", "gcc"}[i%2], Arch: sim.ArchFlywheel,
			FEBoostPct: (i / 2) * 2, BEBoostPct: 50, MaxInstructions: 20000,
		})
	}
	return jobs
}

// collectSweep runs a sweep through the coordinator and returns the lines.
func collectSweep(t *testing.T, c *Coordinator, jobs []lab.Job, mid func(i int)) []labd.SweepLine {
	t.Helper()
	var lines []labd.SweepLine
	err := c.Sweep(context.Background(), jobs, func(l labd.SweepLine) error {
		lines = append(lines, l)
		if mid != nil {
			mid(len(lines))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	return lines
}

func assertMatchesInProcess(t *testing.T, jobs []lab.Job, lines []labd.SweepLine) {
	t.Helper()
	want, err := lab.Run(jobs, lab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(jobs) {
		t.Fatalf("%d lines for %d jobs", len(lines), len(jobs))
	}
	for i, line := range lines {
		if line.Index != i || line.Key != jobs[i].Key() {
			t.Fatalf("line %d misordered or mislabeled: index %d key %q", i, line.Index, line.Key)
		}
		if line.Error != "" {
			t.Fatalf("job %d failed: %s", i, line.Error)
		}
		got, _ := json.Marshal(line.Result)
		exp, _ := json.Marshal(want[i])
		if string(got) != string(exp) {
			t.Fatalf("job %d: cluster result differs from in-process run:\n cluster %s\n local   %s", i, got, exp)
		}
	}
}

// TestClusterMatchesInProcess: a 3-worker fabric answers a mixed batch
// (with duplicates) byte-identically to lab.Run, through the full HTTP
// protocol via the standard labd client.
func TestClusterMatchesInProcess(t *testing.T) {
	tc := startCluster(t, 3, nil)
	ts := httptest.NewServer(tc.coord.Handler())
	t.Cleanup(ts.Close)

	jobs := testBatch(18)
	jobs = append(jobs, jobs[0], jobs[3]) // duplicates dedupe on their shard
	client := labd.NewClient(ts.URL)
	lines, err := client.Sweep(labd.SweepRequest{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesInProcess(t, jobs, lines)

	// The batch actually spread: more than one worker simulated.
	busy := 0
	for _, cache := range tc.caches {
		if cache.Misses() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("no fan-out: %d workers busy", busy)
	}
}

// TestClusterSurvivesWorkerKill: killing one of three workers mid-sweep
// exercises the retry/failover path; the merged stream still matches the
// in-process run line for line.
func TestClusterSurvivesWorkerKill(t *testing.T) {
	tc := startCluster(t, 3, nil)
	jobs := testBatch(36)
	killed := false
	lines := collectSweep(t, tc.coord, jobs, func(done int) {
		if done == 5 && !killed {
			killed = true
			tc.kill(1)
		}
	})
	assertMatchesInProcess(t, jobs, lines)
	if !killed {
		t.Fatal("kill hook never fired")
	}
	if tc.coord.retries.Load() == 0 {
		t.Fatal("worker death exercised no retries")
	}
}

// TestClusterAllReplicasOfDeadWorkerStillAnswer: killing a worker BEFORE
// the sweep starts (cold failure) must also produce a full, correct
// stream via failover.
func TestClusterColdDeadWorker(t *testing.T) {
	tc := startCluster(t, 3, nil)
	tc.kill(2)
	jobs := testBatch(12)
	lines := collectSweep(t, tc.coord, jobs, nil)
	assertMatchesInProcess(t, jobs, lines)
}

// TestWorkStealing: a batch whose every key hashes to one worker still
// saturates the cluster — the idle shard steals from the skewed queue.
func TestWorkStealing(t *testing.T) {
	tc := startCluster(t, 2, func(o *Options) {
		o.MaxInFlightPerShard = 1
		o.DisableHedging = true
	})
	home := tc.urls[0]
	var jobs []lab.Job
	for fe := 0; len(jobs) < 12 && fe < 200; fe++ {
		j := lab.Job{Workload: "ijpeg", Arch: sim.ArchFlywheel, FEBoostPct: fe, BEBoostPct: 50, MaxInstructions: 20000}
		if tc.coord.Owner(j.Key()) == home {
			jobs = append(jobs, j)
		}
	}
	if len(jobs) < 12 {
		t.Fatalf("could not craft a skewed batch: %d jobs", len(jobs))
	}
	lines := collectSweep(t, tc.coord, jobs, nil)
	assertMatchesInProcess(t, jobs, lines)
	if tc.coord.steals.Load() == 0 {
		t.Fatal("skewed batch triggered no work stealing")
	}
	if tc.coord.shards[tc.urls[1]].requests.Load() == 0 {
		t.Fatal("idle worker received no stolen jobs")
	}
}

// TestBackpressure503: when the pending cap is hit, /v1/sweep sheds load
// with 503 + Retry-After instead of queueing unboundedly; once drained,
// the same request succeeds.
func TestBackpressure503(t *testing.T) {
	tc := startCluster(t, 1, func(o *Options) {
		o.MaxInFlightPerShard = 1
		o.MaxPending = 4
	})
	ts := httptest.NewServer(tc.coord.Handler())
	t.Cleanup(ts.Close)

	// A lone batch larger than the cap is admitted (idle coordinator).
	big := testBatch(6)
	done := make(chan error, 1)
	go func() {
		_, err := labd.NewClient(ts.URL).Sweep(labd.SweepRequest{Jobs: big})
		done <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for tc.coord.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first sweep never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// A second request while the first is in flight is shed.
	body := `{"jobs":[{"Workload":"ijpeg","MaxInstructions":2000}]}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded sweep: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if tc.coord.rejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}
	// The typed client tags it.
	_, err = labd.NewClient(ts.URL).Sweep(labd.SweepRequest{Jobs: big[:1]})
	if !labd.IsBackpressure(err) {
		t.Fatalf("client did not tag 503 as backpressure: %v", err)
	}

	if err := <-done; err != nil {
		t.Fatalf("admitted sweep failed: %v", err)
	}
	// Drained: the retried request now succeeds.
	if _, err := labd.NewClient(ts.URL).Sweep(labd.SweepRequest{Jobs: big[:1]}); err != nil {
		t.Fatalf("post-drain retry failed: %v", err)
	}
}

// TestHedging: a worker that sits on a request past the hedge trigger gets
// speculatively duplicated to the replica; the fast answer wins.
func TestHedging(t *testing.T) {
	slowCache := lab.NewCache()
	slowSrv := labd.NewServer(slowCache)
	slowSrv.SetLogf(func(string, ...any) {})
	inner := slowSrv.Handler()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/sweep") {
			time.Sleep(2 * time.Second) // stall every sweep
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(slow.Close)

	fastCache := lab.NewCache()
	fastSrv := labd.NewServer(fastCache)
	fast := httptest.NewServer(fastSrv.Handler())
	t.Cleanup(fast.Close)

	coord, err := New(Options{
		Workers:       []string{slow.URL, fast.URL},
		HedgeDelayMin: 50 * time.Millisecond,
		RetryBackoff:  5 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Craft jobs homed on the slow worker so the hedge must rescue them.
	var jobs []lab.Job
	for fe := 0; len(jobs) < 4 && fe < 200; fe++ {
		j := lab.Job{Workload: "gcc", FEBoostPct: fe, MaxInstructions: 2000}
		if coord.Owner(j.Key()) == slow.URL {
			jobs = append(jobs, j)
		}
	}
	start := time.Now()
	lines := collectSweep(t, coord, jobs, nil)
	assertMatchesInProcess(t, jobs, lines)
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("hedging did not rescue the sweep: took %v", elapsed)
	}
	if coord.hedges.Load() == 0 {
		t.Fatal("no hedged requests fired")
	}
	if fastCache.Misses() == 0 {
		t.Fatal("replica did no rescue work")
	}
}

// TestClusterStatsAndHealth: /v1/stats sums worker cache tiers and
// /v1/health degrades when a worker dies.
func TestClusterStatsAndHealth(t *testing.T) {
	tc := startCluster(t, 2, nil)
	ts := httptest.NewServer(tc.coord.Handler())
	t.Cleanup(ts.Close)

	jobs := testBatch(8)
	if _, err := labd.NewClient(ts.URL).Sweep(labd.SweepRequest{Jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	var stats ClusterStats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	var wantMisses uint64
	for _, cache := range tc.caches {
		wantMisses += cache.Misses()
	}
	if stats.Cache.Misses != wantMisses {
		t.Fatalf("aggregated misses %d, want %d", stats.Cache.Misses, wantMisses)
	}
	if stats.Coord.Jobs != uint64(len(jobs)) || len(stats.Workers) != 2 {
		t.Fatalf("coord stats: %+v", stats.Coord)
	}

	var health ClusterHealth
	resp2, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Fatalf("healthy cluster reports %q", health.Status)
	}
	tc.kill(1)
	resp3, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	health = ClusterHealth{}
	if err := json.NewDecoder(resp3.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Workers[tc.urls[1]] {
		t.Fatalf("dead worker not detected: %+v", health)
	}
}

// TestFrontierForwarding: the coordinator proxies Pareto queries to a
// worker; the reply matches querying that worker directly and repeat
// queries stay deterministic.
func TestFrontierForwarding(t *testing.T) {
	tc := startCluster(t, 2, nil)
	ts := httptest.NewServer(tc.coord.Handler())
	t.Cleanup(ts.Close)

	params := map[string]string{
		"ilp": "1", "entropy": "0", "mem": "4", "code": "1",
		"passes": "1", "fe": "0,50", "n": "2000",
	}
	reply, err := labd.NewClient(ts.URL).Frontier(params)
	if err != nil {
		t.Fatal(err)
	}
	if reply.GridPoints != 2 || len(reply.Frontier) == 0 {
		t.Fatalf("frontier reply: %+v", reply)
	}
	again, err := labd.NewClient(ts.URL).Frontier(params)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(reply)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatalf("frontier not deterministic through the fabric:\n%s\n%s", a, b)
	}
	// Bad queries pass the worker's 400 through.
	resp, err := http.Get(ts.URL + "/v1/frontier?seed=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query: status %d, want 400", resp.StatusCode)
	}

	// A tiered query forwards the same way, and the worker's
	// screened/confirmed counters surface in the cluster stats.
	tiered, err := labd.NewClient(ts.URL).Frontier(map[string]string{
		"ilp": "1,4", "entropy": "0,1", "mem": "4", "code": "1",
		"passes": "1", "fe": "0,25,50,75,100", "be": "0,50,100", "n": "2000",
		"tier": "analytic",
	})
	if err != nil {
		t.Fatal(err)
	}
	if tiered.Tier != "analytic" || tiered.ConfirmedCells == 0 {
		t.Fatalf("tiered reply through the fabric: %+v", tiered)
	}
	var stats ClusterStats
	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.AnalyticCells != uint64(tiered.ScreenedCells) || stats.ConfirmedCells != uint64(tiered.ConfirmedCells) {
		t.Fatalf("cluster stats report %d screened / %d confirmed, reply said %d / %d",
			stats.AnalyticCells, stats.ConfirmedCells, tiered.ScreenedCells, tiered.ConfirmedCells)
	}
}

// TestCheckWorkers: the registration gate names unreachable workers.
func TestCheckWorkers(t *testing.T) {
	tc := startCluster(t, 2, nil)
	if err := tc.coord.CheckWorkers(context.Background()); err != nil {
		t.Fatalf("healthy cluster failed registration: %v", err)
	}
	tc.kill(0)
	err := tc.coord.CheckWorkers(context.Background())
	if err == nil || !strings.Contains(err.Error(), tc.urls[0]) {
		t.Fatalf("dead worker not named: %v", err)
	}
}

// TestSweepBadRequests mirrors labd's request validation at the
// coordinator.
func TestCoordinatorBadRequests(t *testing.T) {
	tc := startCluster(t, 1, nil)
	ts := httptest.NewServer(tc.coord.Handler())
	t.Cleanup(ts.Close)
	for _, body := range []string{``, `{}`, `{"jobs":[]}`, `not json`, `{"jobs":[{}], "bogus": 1}`} {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("no workers accepted")
	}
	if _, err := New(Options{Workers: []string{"http://a", "http://a"}}); err == nil {
		t.Error("duplicate workers accepted")
	}
	if _, err := New(Options{Workers: []string{"http://a", ""}}); err == nil {
		t.Error("empty worker accepted")
	}
}
