package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"flywheel/internal/lab"
	"flywheel/internal/labd"
)

// The coordinator speaks the same protocol as a single labd — /v1/sweep,
// /v1/stats, /v1/frontier, /v1/health — so every existing client
// (labd.Client, flywheel.NewClient, curl scripts) points at a cluster
// unchanged.

// WorkerStats is one worker's slice of the cluster stats.
type WorkerStats struct {
	URL      string  `json:"url"`
	Requests uint64  `json:"requests"`
	Failures uint64  `json:"failures"`
	P99Ms    float64 `json:"p99_ms"`
	// Breaker is the shard's circuit-breaker state (closed / open /
	// half-open); Trips and Rejoins count its lifecycle transitions.
	Breaker        string `json:"breaker"`
	BreakerTrips   uint64 `json:"breaker_trips"`
	BreakerRejoins uint64 `json:"breaker_rejoins"`
	// Stats is the worker's own /v1/stats reply; Error is set instead when
	// the worker was unreachable.
	Stats *labd.StatsReply `json:"stats,omitempty"`
	Error string           `json:"error,omitempty"`
}

// CoordStats are the coordinator's own counters.
type CoordStats struct {
	Requests       uint64 `json:"requests"`
	Jobs           uint64 `json:"jobs"`
	Retries        uint64 `json:"retries"`
	Hedges         uint64 `json:"hedges"`
	Steals         uint64 `json:"steals"`
	Rejected       uint64 `json:"rejected"`
	DroppedReplies uint64 `json:"dropped_replies"`
	Pending        int64  `json:"pending"`
	// ProbeRounds counts StartHealthProbes sweeps over the cluster.
	ProbeRounds uint64 `json:"probe_rounds"`
}

// ClusterStats is the coordinator's /v1/stats body. Cache sums the
// workers' run-cache counters, so clients (labload) compute cluster-wide
// memory/disk/sim tier hit rates the same way they would for one labd.
type ClusterStats struct {
	Cache lab.Stats  `json:"cache"`
	Coord CoordStats `json:"coord"`
	// AnalyticCells / ConfirmedCells sum the workers' two-tier frontier
	// counters: cells screened analytically versus cells simulated
	// cycle-accurately, cluster-wide.
	AnalyticCells  uint64 `json:"analytic_cells"`
	ConfirmedCells uint64 `json:"confirmed_cells"`
	// SampledCells sums the workers' sampled-execution cell counters.
	SampledCells uint64 `json:"sampled_cells"`
	// Frontend sums the workers' frontend observable totals (branch and
	// prefetch activity over delivered sweep results), cluster-wide.
	Frontend      labd.FrontendStats `json:"frontend"`
	Workers       []WorkerStats      `json:"workers"`
	UptimeSeconds float64            `json:"uptime_seconds"`
}

// ClusterHealth is the coordinator's /v1/health body.
type ClusterHealth struct {
	Status  string          `json:"status"` // "ok" when every worker is; "degraded" when some are
	Workers map[string]bool `json:"workers"`
	// Breakers maps each worker to its circuit-breaker state; any open
	// breaker also degrades Status (the shard is ejected from routing even
	// if a fresh probe would reach it).
	Breakers map[string]string `json:"breakers"`
}

// Handler returns the coordinator's HTTP routes.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	mux.HandleFunc("GET /v1/stats", c.handleStats)
	mux.HandleFunc("GET /v1/health", c.handleHealth)
	mux.HandleFunc("GET /v1/frontier", c.handleFrontier)
	mux.HandleFunc("POST /v1/scrub", c.handleScrub)
	return mux
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req labd.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "fabric: bad sweep request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "fabric: empty job list", http.StatusBadRequest)
		return
	}
	if len(req.Jobs) > labd.MaxBatch {
		http.Error(w, fmt.Sprintf("fabric: %d jobs exceeds the %d-job batch limit", len(req.Jobs), labd.MaxBatch), http.StatusBadRequest)
		return
	}
	// req.Workers is a single-process knob; the cluster's concurrency is
	// governed by the per-shard in-flight bounds instead, so it is
	// accepted and ignored.

	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	headerSent := false
	emit := func(line labd.SweepLine) error {
		if !headerSent {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			headerSent = true
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	err := c.Sweep(r.Context(), req.Jobs, emit)
	if err == ErrBusy {
		w.Header().Set("Retry-After", "1")
		http.Error(w, ErrBusy.Error(), http.StatusServiceUnavailable)
		return
	}
	if err != nil && !headerSent {
		http.Error(w, "fabric: "+err.Error(), http.StatusInternalServerError)
	}
	// Mid-stream failure: the truncated stream is the signal; the client's
	// decoder rejects it.
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	reply := ClusterStats{
		Coord: CoordStats{
			Requests:       c.requests.Load(),
			Jobs:           c.jobs.Load(),
			Retries:        c.retries.Load(),
			Hedges:         c.hedges.Load(),
			Steals:         c.steals.Load(),
			Rejected:       c.rejected.Load(),
			DroppedReplies: c.dropped.Load(),
			Pending:        c.pending.Load(),
			ProbeRounds:    c.probes.Load(),
		},
		UptimeSeconds: time.Since(c.start).Seconds(),
	}
	for _, url := range c.order {
		sh := c.shards[url]
		ws := WorkerStats{
			URL:      url,
			Requests: sh.requests.Load(),
			Failures: sh.failures.Load(),
			P99Ms:    float64(sh.p99()) / float64(time.Millisecond),
			Breaker:  sh.brk.label(),
		}
		ws.BreakerTrips, ws.BreakerRejoins = sh.brk.counters()
		st, err := sh.client.StatsContext(r.Context())
		if err != nil {
			ws.Error = err.Error()
		} else {
			ws.Stats = &st
			reply.Cache.Hits += st.Cache.Hits
			reply.Cache.DiskHits += st.Cache.DiskHits
			reply.Cache.Misses += st.Cache.Misses
			reply.Cache.InFlight += st.Cache.InFlight
			reply.Cache.Entries += st.Cache.Entries
			reply.AnalyticCells += st.AnalyticCells
			reply.ConfirmedCells += st.ConfirmedCells
			reply.SampledCells += st.SampledCells
			reply.Frontend.Add(st.Frontend)
		}
		reply.Workers = append(reply.Workers, ws)
	}
	c.writeJSON(w, reply)
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	reply := ClusterHealth{
		Status:   "ok",
		Workers:  make(map[string]bool, len(c.order)),
		Breakers: make(map[string]string, len(c.order)),
	}
	for _, url := range c.order {
		sh := c.shards[url]
		h, err := sh.client.Health(r.Context())
		ok := err == nil && h.Status == "ok"
		reply.Workers[url] = ok
		reply.Breakers[url] = sh.brk.label()
		if !ok || reply.Breakers[url] == "open" {
			reply.Status = "degraded"
		}
	}
	c.writeJSON(w, reply)
}

// WorkerScrub is one worker's slice of a cluster scrub.
type WorkerScrub struct {
	URL string `json:"url"`
	// Scrub is the worker's /v1/scrub reply; Error is set instead when the
	// worker was unreachable or refused.
	Scrub *labd.ScrubReply `json:"scrub,omitempty"`
	Error string           `json:"error,omitempty"`
}

// ClusterScrub is the coordinator's /v1/scrub body.
type ClusterScrub struct {
	Entries     int           `json:"entries"`
	Traces      int           `json:"traces"`
	Quarantined int           `json:"quarantined"`
	Workers     []WorkerScrub `json:"workers"`
}

// handleScrub fans a store-integrity scrub out to every worker and
// aggregates the reports. Workers scrub concurrently — their shards are
// disjoint directories — and a dead worker yields an error slot, not a
// failed scrub.
func (c *Coordinator) handleScrub(w http.ResponseWriter, r *http.Request) {
	replies := make([]WorkerScrub, len(c.order))
	var wg sync.WaitGroup
	for i, url := range c.order {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			replies[i] = WorkerScrub{URL: sh.url}
			rep, err := sh.client.Scrub(r.Context())
			if err != nil {
				replies[i].Error = err.Error()
				return
			}
			replies[i].Scrub = &rep
		}(i, c.shards[url])
	}
	wg.Wait()
	total := ClusterScrub{Workers: replies}
	for _, ws := range replies {
		if ws.Scrub == nil {
			continue
		}
		total.Entries += ws.Scrub.Entries
		total.Traces += ws.Scrub.Traces
		total.Quarantined += len(ws.Scrub.Quarantined)
	}
	c.writeJSON(w, total)
}

// handleFrontier forwards the Pareto query to one worker chosen by the
// query's hash — the same query always lands on the same shard, so its
// grid stays memoized there — failing over to the next owner when the
// worker is unreachable.
func (c *Coordinator) handleFrontier(w http.ResponseWriter, r *http.Request) {
	httpc := c.opt.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var lastErr error
	for _, url := range c.ring.Owners("frontier|"+r.URL.RawQuery, len(c.order)) {
		target := url + "/v1/frontier"
		if r.URL.RawQuery != "" {
			target += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target, nil)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := httpc.Do(req)
		if err != nil {
			lastErr = err
			c.retries.Add(1)
			continue
		}
		defer resp.Body.Close()
		// Any complete worker reply — success or a 4xx/5xx of its own — is
		// forwarded verbatim; only transport failure tries the next owner.
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		if _, err := io.Copy(w, resp.Body); err != nil {
			c.dropped.Add(1)
		}
		return
	}
	http.Error(w, fmt.Sprintf("fabric: no worker reachable for frontier: %v", lastErr), http.StatusBadGateway)
}

func (c *Coordinator) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		c.dropped.Add(1)
		c.opt.Logf("fabric: reply dropped: %v", err)
	}
}
