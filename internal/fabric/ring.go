// Package fabric shards the lab batch service horizontally: a coordinator
// consistent-hashes job keys across N labd workers, each owning its own
// store shard and trace-cache spill directory, and streams one merged
// NDJSON response that preserves job order. The fabric stays correct under
// failure — per-shard retry with backoff, hedged requests to a replica
// when a shard runs long, bounded in-flight jobs per shard with 503 +
// Retry-After backpressure, and work-stealing reassignment of queued jobs
// from skewed shards — so a cluster answers byte-identically to a single
// in-process flywheel.Sweep, just faster and for many clients at once.
//
// Placement is cache affinity, not correctness: any worker can simulate
// any job (results are deterministic), so stealing and failover never
// change an answer, only which shard's store warms up.
package fabric

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over worker names. Each worker projects
// vnodes points onto the ring so load spreads evenly; a key's owners are
// the first distinct workers clockwise from the key's hash. The mapping is
// deterministic across processes and stable under membership change: adding
// or removing one worker moves only the keys adjacent to its points, so a
// restarted cluster re-warms mostly from its own shard stores.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// NewRing builds a ring over the given worker names (order-insensitive;
// the names themselves position the points). vnodes <= 0 defaults to 64.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{nodes: append([]string(nil), nodes...)}
	for i, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hashString(fmt.Sprintf("%s#%d", n, v)), i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Owners returns the first n distinct workers clockwise from key's hash:
// the primary placement followed by its replicas for retry and hedging.
// n is clamped to the worker count.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.nodes) == 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(owners) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, r.nodes[p.node])
		}
	}
	return owners
}

// Owner returns key's primary placement.
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}
