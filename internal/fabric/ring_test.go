package fabric

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndDistributed(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	r1 := NewRing(nodes, 64)
	r2 := NewRing([]string{"http://c", "http://a", "http://b"}, 64) // order-insensitive

	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("wl=%q|arch=%d", "gcc", i)
		o := r1.Owner(key)
		if o2 := r2.Owner(key); o2 != o {
			t.Fatalf("placement depends on worker order: %q vs %q", o, o2)
		}
		counts[o]++
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("node %s owns nothing: %v", n, counts)
		}
		if counts[n] > 700 {
			t.Fatalf("grossly skewed ring: %v", counts)
		}
	}
}

func TestRingOwnersDistinctAndOrdered(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	r := NewRing(nodes, 32)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		owners := r.Owners(key, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("key %q: owners %v", key, owners)
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("key %q: Owners[0] %q != Owner %q", key, owners[0], r.Owner(key))
		}
	}
	// Clamped to the node count; every node appears exactly once.
	owners := r.Owners("x", 99)
	if len(owners) != len(nodes) {
		t.Fatalf("Owners(99) = %v", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		seen[o] = true
	}
	if len(seen) != len(nodes) {
		t.Fatalf("duplicate owners: %v", owners)
	}
}

// TestRingMinimalMovement: removing one worker relocates only the keys it
// owned — everything else stays put, so the surviving shards' stores stay
// warm.
func TestRingMinimalMovement(t *testing.T) {
	all := []string{"http://a", "http://b", "http://c"}
	r3 := NewRing(all, 64)
	r2 := NewRing(all[:2], 64)
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("k%d", i)
		before := r3.Owner(key)
		after := r2.Owner(key)
		if before != "http://c" && before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved that were not on the removed worker", moved)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if o := NewRing(nil, 8).Owners("k", 2); o != nil {
		t.Fatalf("empty ring returned owners %v", o)
	}
	r := NewRing([]string{"only"}, 8)
	if o := r.Owners("k", 3); len(o) != 1 || o[0] != "only" {
		t.Fatalf("single ring: %v", o)
	}
}
