package isa

import "fmt"

// Binary encoding. Every instruction packs into one 32-bit word:
//
//	bits  0..7   opcode
//	bits  8..13  first register slot  (rd, or rs2 for stores/branches)
//	bits 14..19  second register slot (rs1)
//	bits 20..25  third register slot  (rs2, R-type only)
//
// Immediate formats reuse the upper fields:
//
//	I-type (FmtRRI/FmtMem/FmtMemS/FmtBranch): bits 20..31 = imm12 (signed)
//	U/J-type (FmtRI/FmtJump/FmtJAL):          bits 14..31 = imm18 (signed)
//
// The opcode's format decides which fields are meaningful; unused operand
// slots must be RegNone in the Instruction and are written as zero, so the
// Encode/Decode round trip is exact for every well-formed instruction.

// Immediate range limits per format.
const (
	MaxImm12 = 1<<11 - 1
	MinImm12 = -(1 << 11)
	MaxImm18 = 1<<17 - 1
	MinImm18 = -(1 << 17)
)

// EncodeError describes an instruction that cannot be represented in the
// 32-bit encoding (immediate out of range, invalid or misplaced register).
type EncodeError struct {
	Inst   Instruction
	Reason string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("isa: cannot encode %q: %s", e.Inst.String(), e.Reason)
}

// operandUse describes which operand slots a format consumes.
type operandUse struct {
	rd, rs1, rs2 bool
	immBits      uint // 0, 12 or 18
}

func formatUse(f Format) operandUse {
	switch f {
	case FmtNone:
		return operandUse{}
	case FmtRRR:
		return operandUse{rd: true, rs1: true, rs2: true}
	case FmtRR:
		return operandUse{rd: true, rs1: true}
	case FmtRRI, FmtMem:
		return operandUse{rd: true, rs1: true, immBits: 12}
	case FmtMemS, FmtBranch:
		return operandUse{rs1: true, rs2: true, immBits: 12}
	case FmtRI, FmtJAL:
		return operandUse{rd: true, immBits: 18}
	case FmtJump:
		return operandUse{immBits: 18}
	case FmtJALR:
		return operandUse{rd: true, rs1: true}
	default:
		return operandUse{}
	}
}

func immLimits(bits uint) (min, max int32) {
	switch bits {
	case 12:
		return MinImm12, MaxImm12
	case 18:
		return MinImm18, MaxImm18
	default:
		return 0, 0
	}
}

// Encode packs the instruction into its 32-bit representation.
func Encode(in Instruction) (uint32, error) {
	if !in.Op.Valid() {
		return 0, &EncodeError{in, "invalid opcode"}
	}
	use := formatUse(in.Op.Info().Format)

	check := func(name string, r Reg, used bool) error {
		if used {
			if !r.Valid() {
				return &EncodeError{in, fmt.Sprintf("%s: invalid register %d", name, r)}
			}
			return nil
		}
		if r != RegNone {
			return &EncodeError{in, fmt.Sprintf("%s: operand not used by format", name)}
		}
		return nil
	}
	if err := check("rd", in.Rd, use.rd); err != nil {
		return 0, err
	}
	if err := check("rs1", in.Rs1, use.rs1); err != nil {
		return 0, err
	}
	if err := check("rs2", in.Rs2, use.rs2); err != nil {
		return 0, err
	}
	if use.immBits == 0 {
		if in.Imm != 0 {
			return 0, &EncodeError{in, "format carries no immediate"}
		}
	} else {
		min, max := immLimits(use.immBits)
		if in.Imm < min || in.Imm > max {
			return 0, &EncodeError{in, fmt.Sprintf("immediate %d outside [%d, %d]", in.Imm, min, max)}
		}
	}

	w := uint32(in.Op)
	// First register slot: rd normally, rs2 for destination-less formats.
	switch {
	case use.rd:
		w |= uint32(in.Rd) << 8
	case use.rs2:
		w |= uint32(in.Rs2) << 8
	}
	switch use.immBits {
	case 18:
		w |= (uint32(in.Imm) & 0x3FFFF) << 14
	case 12:
		if use.rs1 {
			w |= uint32(in.Rs1) << 14
		}
		w |= (uint32(in.Imm) & 0xFFF) << 20
	default:
		if use.rs1 {
			w |= uint32(in.Rs1) << 14
		}
		if use.rd && use.rs2 {
			w |= uint32(in.Rs2) << 20
		}
	}
	return w, nil
}

// MustEncode encodes or panics; for use in tests and static tables.
func MustEncode(in Instruction) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// DecodeError reports an undecodable instruction word.
type DecodeError struct {
	Word   uint32
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("isa: cannot decode %#08x: %s", e.Word, e.Reason)
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode unpacks a 32-bit instruction word.
func Decode(w uint32) (Instruction, error) {
	op := Op(w & 0xFF)
	if !op.Valid() {
		return Nop(), &DecodeError{w, "invalid opcode"}
	}
	use := formatUse(op.Info().Format)
	in := Instruction{Op: op, Rd: RegNone, Rs1: RegNone, Rs2: RegNone}

	first := Reg(w >> 8 & 0x3F)
	switch {
	case use.rd:
		in.Rd = first
	case use.rs2:
		in.Rs2 = first
	}
	switch use.immBits {
	case 18:
		in.Imm = signExtend(w>>14&0x3FFFF, 18)
	case 12:
		if use.rs1 {
			in.Rs1 = Reg(w >> 14 & 0x3F)
		}
		in.Imm = signExtend(w>>20&0xFFF, 12)
	default:
		if use.rs1 {
			in.Rs1 = Reg(w >> 14 & 0x3F)
		}
		if use.rd && use.rs2 {
			in.Rs2 = Reg(w >> 20 & 0x3F)
		}
	}
	return in, nil
}
