// Package isa defines the instruction set architecture simulated by this
// repository: a small 64-bit RISC machine with 32 integer and 32
// floating-point architected registers, fixed 32-bit instruction encodings,
// and the operation classes needed by the out-of-order timing models
// (integer ALU, multiply, divide, loads, stores, branches, jumps and
// floating-point arithmetic).
//
// The ISA plays the role that PISA/Alpha played for the paper's
// SimpleScalar-derived simulator: it is the contract between the assembler
// (package asm), the functional emulator (package emu) and the timing cores
// (packages ooo and core).
package isa

import "fmt"

// NumIntRegs and NumFPRegs are the architected register file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	// NumArchRegs is the total architected register name space. Registers
	// 0..31 are integer registers (r0 is hard-wired to zero); registers
	// 32..63 are floating-point registers f0..f31.
	NumArchRegs = NumIntRegs + NumFPRegs
)

// Reg names an architected register. Values 0..31 are integer registers,
// 32..63 floating-point registers. RegNone marks an absent operand.
type Reg uint8

// RegNone marks an unused operand slot.
const RegNone Reg = 0xFF

// IntReg returns the integer register with the given index.
func IntReg(i int) Reg { return Reg(i) }

// FPReg returns the floating-point register with the given index.
func FPReg(i int) Reg { return Reg(NumIntRegs + i) }

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r != RegNone && r >= NumIntRegs }

// Valid reports whether r names an architected register.
func (r Reg) Valid() bool { return r < NumArchRegs }

// String renders the assembler name of the register (r4, f12, ...).
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r < NumIntRegs:
		return fmt.Sprintf("r%d", uint8(r))
	case r < NumArchRegs:
		return fmt.Sprintf("f%d", uint8(r)-NumIntRegs)
	default:
		return fmt.Sprintf("reg?%d", uint8(r))
	}
}

// Op enumerates the operations of the ISA.
type Op uint8

// Operations. The groups matter: each op belongs to exactly one Class below,
// which determines the functional unit it needs and its execution latency.
const (
	NOP Op = iota

	// Integer register-register arithmetic and logic.
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT  // set rd=1 if rs1 < rs2 (signed)
	SLTU // unsigned compare

	// Integer register-immediate arithmetic and logic.
	ADDI
	ANDI
	ORI
	XORI
	SLTI
	SLLI
	SRLI
	SRAI
	LUI // rd = imm << 12 (pairs with a signed ADDI to build constants)

	// Integer multiply and divide.
	MUL
	DIV
	REM

	// Memory operations. LD/SD move 64-bit words, LW/SW 32-bit words,
	// LB/SB single bytes. FLD/FSD move 64-bit floating-point values.
	LD
	LW
	LB
	SD
	SW
	SB
	FLD
	FSD

	// Control transfer. Branches compare integer registers and jump
	// PC-relative. J/JAL jump PC-relative; JAL links into rd. JALR jumps
	// register-indirect and links (JALR with rd=r0 is a plain indirect
	// jump / function return).
	BEQ
	BNE
	BLT
	BGE
	J
	JAL
	JALR

	// Floating point arithmetic.
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FMOV
	FCVTIF // int reg -> fp reg conversion
	FCVTFI // fp reg -> int reg conversion (truncating)
	FLT    // rd(int) = 1 if fs1 < fs2
	FEQ    // rd(int) = 1 if fs1 == fs2

	// HALT stops the machine; it retires like an instruction so the
	// pipeline can drain deterministically.
	HALT

	numOps // sentinel; keep last
)

// NumOps is the number of defined operations (for table sizing and fuzzing).
const NumOps = int(numOps)

// Class partitions operations by the functional unit they occupy and by
// how the pipeline must treat them.
type Class uint8

// Instruction classes, mirroring the functional-unit mix of the paper's
// Table 2 (4 integer ALUs, 2 integer MUL/DIV, 2 memory ports, 2 FP adders,
// 1 FP MUL/DIV).
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassFPAdd
	ClassFPMul
	ClassFPDiv
	ClassHalt

	numClasses
)

// NumClasses is the number of instruction classes.
const NumClasses = int(numClasses)

// String names the class for statistics output.
func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassIntALU:
		return "int-alu"
	case ClassIntMul:
		return "int-mul"
	case ClassIntDiv:
		return "int-div"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassJump:
		return "jump"
	case ClassFPAdd:
		return "fp-add"
	case ClassFPMul:
		return "fp-mul"
	case ClassFPDiv:
		return "fp-div"
	case ClassHalt:
		return "halt"
	default:
		return fmt.Sprintf("class?%d", uint8(c))
	}
}

// Format describes how an operation's operands are laid out, both for the
// binary encoding and for the assembler syntax.
type Format uint8

// Operand formats.
const (
	FmtNone   Format = iota // nop, halt
	FmtRRR                  // rd, rs1, rs2
	FmtRRI                  // rd, rs1, imm
	FmtRI                   // rd, imm           (LUI)
	FmtMem                  // rd, imm(rs1)      (loads)
	FmtMemS                 // rs2, imm(rs1)     (stores: value register first)
	FmtBranch               // rs1, rs2, imm     (PC-relative)
	FmtJump                 // imm               (J)
	FmtJAL                  // rd, imm
	FmtJALR                 // rd, rs1
	FmtRR                   // rd, rs1           (unary fp, conversions)
)

// Info is the static metadata table entry for one operation.
type Info struct {
	Name   string
	Class  Class
	Format Format
}

var opInfo = [numOps]Info{
	NOP:    {"nop", ClassNop, FmtNone},
	ADD:    {"add", ClassIntALU, FmtRRR},
	SUB:    {"sub", ClassIntALU, FmtRRR},
	AND:    {"and", ClassIntALU, FmtRRR},
	OR:     {"or", ClassIntALU, FmtRRR},
	XOR:    {"xor", ClassIntALU, FmtRRR},
	SLL:    {"sll", ClassIntALU, FmtRRR},
	SRL:    {"srl", ClassIntALU, FmtRRR},
	SRA:    {"sra", ClassIntALU, FmtRRR},
	SLT:    {"slt", ClassIntALU, FmtRRR},
	SLTU:   {"sltu", ClassIntALU, FmtRRR},
	ADDI:   {"addi", ClassIntALU, FmtRRI},
	ANDI:   {"andi", ClassIntALU, FmtRRI},
	ORI:    {"ori", ClassIntALU, FmtRRI},
	XORI:   {"xori", ClassIntALU, FmtRRI},
	SLTI:   {"slti", ClassIntALU, FmtRRI},
	SLLI:   {"slli", ClassIntALU, FmtRRI},
	SRLI:   {"srli", ClassIntALU, FmtRRI},
	SRAI:   {"srai", ClassIntALU, FmtRRI},
	LUI:    {"lui", ClassIntALU, FmtRI},
	MUL:    {"mul", ClassIntMul, FmtRRR},
	DIV:    {"div", ClassIntDiv, FmtRRR},
	REM:    {"rem", ClassIntDiv, FmtRRR},
	LD:     {"ld", ClassLoad, FmtMem},
	LW:     {"lw", ClassLoad, FmtMem},
	LB:     {"lb", ClassLoad, FmtMem},
	SD:     {"sd", ClassStore, FmtMemS},
	SW:     {"sw", ClassStore, FmtMemS},
	SB:     {"sb", ClassStore, FmtMemS},
	FLD:    {"fld", ClassLoad, FmtMem},
	FSD:    {"fsd", ClassStore, FmtMemS},
	BEQ:    {"beq", ClassBranch, FmtBranch},
	BNE:    {"bne", ClassBranch, FmtBranch},
	BLT:    {"blt", ClassBranch, FmtBranch},
	BGE:    {"bge", ClassBranch, FmtBranch},
	J:      {"j", ClassJump, FmtJump},
	JAL:    {"jal", ClassJump, FmtJAL},
	JALR:   {"jalr", ClassJump, FmtJALR},
	FADD:   {"fadd", ClassFPAdd, FmtRRR},
	FSUB:   {"fsub", ClassFPAdd, FmtRRR},
	FMUL:   {"fmul", ClassFPMul, FmtRRR},
	FDIV:   {"fdiv", ClassFPDiv, FmtRRR},
	FNEG:   {"fneg", ClassFPAdd, FmtRR},
	FMOV:   {"fmov", ClassFPAdd, FmtRR},
	FCVTIF: {"fcvtif", ClassFPAdd, FmtRR},
	FCVTFI: {"fcvtfi", ClassFPAdd, FmtRR},
	FLT:    {"flt", ClassFPAdd, FmtRRR},
	FEQ:    {"feq", ClassFPAdd, FmtRRR},
	HALT:   {"halt", ClassHalt, FmtNone},
}

// Valid reports whether op is a defined operation.
func (op Op) Valid() bool { return op < numOps }

// Info returns the metadata for op.
func (op Op) Info() Info {
	if !op.Valid() {
		return Info{Name: "invalid", Class: ClassNop, Format: FmtNone}
	}
	return opInfo[op]
}

// opClasses is the class column of opInfo, split out so the timing cores'
// per-cycle class checks are a single byte-array load instead of a bounds
// check plus a struct copy (Class sits on every simulator hot path).
var opClasses = func() (t [numOps]Class) {
	for op := Op(0); op < numOps; op++ {
		t[op] = opInfo[op].Class
	}
	return t
}()

// Class returns the instruction class of op.
func (op Op) Class() Class {
	if op >= numOps {
		return ClassNop
	}
	return opClasses[op]
}

// String returns the assembler mnemonic.
func (op Op) String() string { return op.Info().Name }

// OpByName resolves an assembler mnemonic; ok is false for unknown names.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		m[opInfo[op].Name] = op
	}
	return m
}()

// Instruction is one decoded machine instruction. The zero value is a NOP.
type Instruction struct {
	Op  Op
	Rd  Reg   // destination, or RegNone
	Rs1 Reg   // first source, or RegNone
	Rs2 Reg   // second source, or RegNone
	Imm int32 // immediate, sign-extended
}

// Nop is the canonical no-operation instruction.
func Nop() Instruction {
	return Instruction{Op: NOP, Rd: RegNone, Rs1: RegNone, Rs2: RegNone}
}

// Class returns the class of the instruction's op.
func (in Instruction) Class() Class { return in.Op.Class() }

// HasDest reports whether the instruction writes an architected register.
func (in Instruction) HasDest() bool { return in.Rd != RegNone && in.Rd != 0 }

// Sources returns the architected source registers, excluding r0 and unused
// slots.
func (in Instruction) Sources() []Reg {
	var out []Reg
	rs1, rs2 := in.SrcRegs()
	if rs1 != RegNone {
		out = append(out, rs1)
	}
	if rs2 != RegNone {
		out = append(out, rs2)
	}
	return out
}

// SrcRegs returns the two source-operand slots with RegNone for absent or
// r0 operands. Unlike Sources it never allocates, so the timing cores use
// it on their per-instruction paths.
func (in Instruction) SrcRegs() (rs1, rs2 Reg) {
	rs1, rs2 = in.Rs1, in.Rs2
	if rs1 == 0 {
		rs1 = RegNone
	}
	if rs2 == 0 {
		rs2 = RegNone
	}
	return rs1, rs2
}

// NumSources counts the architected source registers (excluding r0 and
// unused slots) without allocating.
func (in Instruction) NumSources() int {
	n := 0
	rs1, rs2 := in.SrcRegs()
	if rs1 != RegNone {
		n++
	}
	if rs2 != RegNone {
		n++
	}
	return n
}

// IsControl reports whether the instruction can redirect the PC.
func (in Instruction) IsControl() bool {
	c := in.Class()
	return c == ClassBranch || c == ClassJump
}

// IsMem reports whether the instruction accesses data memory.
func (in Instruction) IsMem() bool {
	c := in.Class()
	return c == ClassLoad || c == ClassStore
}

// String disassembles the instruction.
func (in Instruction) String() string {
	info := in.Op.Info()
	switch info.Format {
	case FmtNone:
		return info.Name
	case FmtRRR:
		return fmt.Sprintf("%s %s, %s, %s", info.Name, in.Rd, in.Rs1, in.Rs2)
	case FmtRRI:
		return fmt.Sprintf("%s %s, %s, %d", info.Name, in.Rd, in.Rs1, in.Imm)
	case FmtRI:
		return fmt.Sprintf("%s %s, %d", info.Name, in.Rd, in.Imm)
	case FmtMem:
		return fmt.Sprintf("%s %s, %d(%s)", info.Name, in.Rd, in.Imm, in.Rs1)
	case FmtMemS:
		return fmt.Sprintf("%s %s, %d(%s)", info.Name, in.Rs2, in.Imm, in.Rs1)
	case FmtBranch:
		return fmt.Sprintf("%s %s, %s, %d", info.Name, in.Rs1, in.Rs2, in.Imm)
	case FmtJump:
		return fmt.Sprintf("%s %d", info.Name, in.Imm)
	case FmtJAL:
		return fmt.Sprintf("%s %s, %d", info.Name, in.Rd, in.Imm)
	case FmtJALR:
		return fmt.Sprintf("%s %s, %s", info.Name, in.Rd, in.Rs1)
	case FmtRR:
		return fmt.Sprintf("%s %s, %s", info.Name, in.Rd, in.Rs1)
	default:
		return fmt.Sprintf("%s <bad format>", info.Name)
	}
}

// MemWidth returns the access width in bytes for memory operations and 0
// otherwise.
func (in Instruction) MemWidth() int {
	switch in.Op {
	case LD, SD, FLD, FSD:
		return 8
	case LW, SW:
		return 4
	case LB, SB:
		return 1
	default:
		return 0
	}
}

// InstBytes is the size of one encoded instruction in memory.
const InstBytes = 4
