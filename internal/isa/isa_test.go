package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{IntReg(0), "r0"},
		{IntReg(31), "r31"},
		{FPReg(0), "f0"},
		{FPReg(31), "f31"},
		{RegNone, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegPredicates(t *testing.T) {
	if IntReg(5).IsFP() {
		t.Error("r5 reported as FP")
	}
	if !FPReg(5).IsFP() {
		t.Error("f5 not reported as FP")
	}
	if RegNone.Valid() {
		t.Error("RegNone reported valid")
	}
	if !IntReg(31).Valid() || !FPReg(31).Valid() {
		t.Error("edge registers reported invalid")
	}
	if Reg(64).Valid() {
		t.Error("register 64 reported valid")
	}
}

func TestOpMetadataComplete(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		info := op.Info()
		if info.Name == "" {
			t.Errorf("op %d has no name", op)
		}
		back, ok := OpByName(info.Name)
		if !ok || back != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v, true", info.Name, back, ok, op)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName accepted an unknown mnemonic")
	}
}

func TestInstructionPredicates(t *testing.T) {
	add := Instruction{Op: ADD, Rd: IntReg(1), Rs1: IntReg(2), Rs2: IntReg(3)}
	if !add.HasDest() {
		t.Error("add r1 lacks destination")
	}
	if got := len(add.Sources()); got != 2 {
		t.Errorf("add sources = %d, want 2", got)
	}
	zeroDest := Instruction{Op: ADD, Rd: IntReg(0), Rs1: IntReg(2), Rs2: IntReg(3)}
	if zeroDest.HasDest() {
		t.Error("write to r0 counted as destination")
	}
	withZeroSrc := Instruction{Op: ADD, Rd: IntReg(1), Rs1: IntReg(0), Rs2: IntReg(3)}
	if got := len(withZeroSrc.Sources()); got != 1 {
		t.Errorf("r0 source not elided: got %d sources", got)
	}
	br := Instruction{Op: BEQ, Rd: RegNone, Rs1: IntReg(1), Rs2: IntReg(2), Imm: -4}
	if !br.IsControl() || br.IsMem() {
		t.Error("branch misclassified")
	}
	ld := Instruction{Op: LD, Rd: IntReg(1), Rs1: IntReg(2), Imm: 8}
	if !ld.IsMem() || ld.IsControl() {
		t.Error("load misclassified")
	}
	if ld.MemWidth() != 8 {
		t.Errorf("LD width = %d, want 8", ld.MemWidth())
	}
	lw := Instruction{Op: LW, Rd: IntReg(1), Rs1: IntReg(2)}
	if lw.MemWidth() != 4 {
		t.Errorf("LW width = %d, want 4", lw.MemWidth())
	}
	if add.MemWidth() != 0 {
		t.Errorf("ADD width = %d, want 0", add.MemWidth())
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Nop(), "nop"},
		{Instruction{Op: ADD, Rd: IntReg(1), Rs1: IntReg(2), Rs2: IntReg(3)}, "add r1, r2, r3"},
		{Instruction{Op: ADDI, Rd: IntReg(1), Rs1: IntReg(2), Imm: -7}, "addi r1, r2, -7"},
		{Instruction{Op: LUI, Rd: IntReg(4), Rs1: RegNone, Rs2: RegNone, Imm: 100}, "lui r4, 100"},
		{Instruction{Op: LD, Rd: IntReg(5), Rs1: IntReg(6), Rs2: RegNone, Imm: 16}, "ld r5, 16(r6)"},
		{Instruction{Op: SD, Rd: RegNone, Rs1: IntReg(6), Rs2: IntReg(5), Imm: 16}, "sd r5, 16(r6)"},
		{Instruction{Op: BNE, Rd: RegNone, Rs1: IntReg(1), Rs2: IntReg(2), Imm: -3}, "bne r1, r2, -3"},
		{Instruction{Op: J, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Imm: 9}, "j 9"},
		{Instruction{Op: JAL, Rd: IntReg(31), Rs1: RegNone, Rs2: RegNone, Imm: 2}, "jal r31, 2"},
		{Instruction{Op: JALR, Rd: IntReg(0), Rs1: IntReg(31), Rs2: RegNone}, "jalr r0, r31"},
		{Instruction{Op: FADD, Rd: FPReg(1), Rs1: FPReg(2), Rs2: FPReg(3)}, "fadd f1, f2, f3"},
		{Instruction{Op: FMOV, Rd: FPReg(1), Rs1: FPReg(2), Rs2: RegNone}, "fmov f1, f2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTripExamples(t *testing.T) {
	cases := []Instruction{
		Nop(),
		{Op: HALT, Rd: RegNone, Rs1: RegNone, Rs2: RegNone},
		{Op: ADD, Rd: IntReg(1), Rs1: IntReg(2), Rs2: IntReg(3)},
		{Op: ADDI, Rd: IntReg(31), Rs1: IntReg(30), Imm: MaxImm12, Rs2: RegNone},
		{Op: ADDI, Rd: IntReg(31), Rs1: IntReg(30), Imm: MinImm12, Rs2: RegNone},
		{Op: LUI, Rd: IntReg(9), Imm: MaxImm18, Rs1: RegNone, Rs2: RegNone},
		{Op: LUI, Rd: IntReg(9), Imm: MinImm18, Rs1: RegNone, Rs2: RegNone},
		{Op: LD, Rd: IntReg(7), Rs1: IntReg(8), Imm: -8, Rs2: RegNone},
		{Op: SD, Rs2: IntReg(7), Rs1: IntReg(8), Imm: 24, Rd: RegNone},
		{Op: FSD, Rs2: FPReg(7), Rs1: IntReg(8), Imm: 24, Rd: RegNone},
		{Op: BEQ, Rs1: IntReg(1), Rs2: IntReg(2), Imm: -100, Rd: RegNone},
		{Op: J, Imm: 1000, Rd: RegNone, Rs1: RegNone, Rs2: RegNone},
		{Op: JAL, Rd: IntReg(31), Imm: -1000, Rs1: RegNone, Rs2: RegNone},
		{Op: JALR, Rd: IntReg(0), Rs1: IntReg(31), Rs2: RegNone},
		{Op: FCVTIF, Rd: FPReg(0), Rs1: IntReg(4), Rs2: RegNone},
		{Op: FLT, Rd: IntReg(3), Rs1: FPReg(1), Rs2: FPReg(2)},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Errorf("Encode(%v): %v", in, err)
			continue
		}
		out, err := Decode(w)
		if err != nil {
			t.Errorf("Decode(Encode(%v)): %v", in, err)
			continue
		}
		if out != in {
			t.Errorf("round trip %v -> %#08x -> %v", in, w, out)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	cases := []Instruction{
		{Op: ADDI, Rd: IntReg(1), Rs1: IntReg(2), Imm: MaxImm12 + 1, Rs2: RegNone},
		{Op: ADDI, Rd: IntReg(1), Rs1: IntReg(2), Imm: MinImm12 - 1, Rs2: RegNone},
		{Op: LUI, Rd: IntReg(1), Imm: MaxImm18 + 1, Rs1: RegNone, Rs2: RegNone},
		{Op: J, Imm: MinImm18 - 1, Rd: RegNone, Rs1: RegNone, Rs2: RegNone},
		{Op: ADD, Rd: IntReg(1), Rs1: IntReg(2), Rs2: IntReg(3), Imm: 5}, // imm on R-type
		{Op: Op(250), Rd: RegNone, Rs1: RegNone, Rs2: RegNone},           // invalid op
		{Op: ADD, Rd: Reg(70), Rs1: IntReg(2), Rs2: IntReg(3)},           // invalid reg
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) succeeded, want error", in)
		} else if !strings.Contains(err.Error(), "cannot encode") {
			t.Errorf("Encode(%v) error %q lacks context", in, err)
		}
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(0xFF); err == nil {
		t.Error("Decode(invalid opcode) succeeded")
	}
}

// randomInstruction builds a random but encodable instruction, exercising all
// formats.
func randomInstruction(r *rand.Rand) Instruction {
	for {
		op := Op(r.Intn(NumOps))
		info := op.Info()
		in := Instruction{Op: op, Rd: RegNone, Rs1: RegNone, Rs2: RegNone}
		intReg := func() Reg { return IntReg(r.Intn(NumIntRegs)) }
		fpReg := func() Reg { return FPReg(r.Intn(NumFPRegs)) }
		anyReg := func() Reg {
			if r.Intn(2) == 0 {
				return intReg()
			}
			return fpReg()
		}
		imm12 := func() int32 { return int32(r.Intn(MaxImm12-MinImm12+1)) + MinImm12 }
		imm18 := func() int32 { return int32(r.Intn(MaxImm18-MinImm18+1)) + MinImm18 }
		switch info.Format {
		case FmtNone:
		case FmtRRR:
			in.Rd, in.Rs1, in.Rs2 = anyReg(), anyReg(), anyReg()
		case FmtRR:
			in.Rd, in.Rs1 = anyReg(), anyReg()
		case FmtRRI:
			in.Rd, in.Rs1, in.Imm = intReg(), intReg(), imm12()
		case FmtRI:
			in.Rd, in.Imm = intReg(), imm18()
		case FmtMem:
			in.Rd, in.Rs1, in.Imm = anyReg(), intReg(), imm12()
		case FmtMemS:
			in.Rs2, in.Rs1, in.Imm = anyReg(), intReg(), imm12()
		case FmtBranch:
			in.Rs1, in.Rs2, in.Imm = intReg(), intReg(), imm12()
		case FmtJump:
			in.Imm = imm18()
		case FmtJAL:
			in.Rd, in.Imm = intReg(), imm18()
		case FmtJALR:
			in.Rd, in.Rs1 = intReg(), intReg()
		}
		return in
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randomInstruction(r)
		w, err := Encode(in)
		if err != nil {
			t.Logf("Encode(%v): %v", in, err)
			return false
		}
		out, err := Decode(w)
		if err != nil {
			t.Logf("Decode(%#08x): %v", w, err)
			return false
		}
		if out != in {
			t.Logf("round trip %v -> %v", in, out)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestClassStringsDistinct(t *testing.T) {
	seen := map[string]Class{}
	for c := Class(0); c < numClasses; c++ {
		s := c.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("classes %v and %v share string %q", prev, c, s)
		}
		seen[s] = c
	}
}
