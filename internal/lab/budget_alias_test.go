package lab

import (
	"reflect"
	"testing"

	"flywheel/internal/sim"
	"flywheel/internal/trace"
	"flywheel/internal/workload"
	"flywheel/internal/workload/synth"
)

// With trace prefix-sharing enabled, every instruction budget of a
// workload replays a prefix of one shared recording — which makes it easy
// to imagine a bug where two budgets alias to one cached result. This
// property test pins the two layers that prevent it: Job.Key stays
// injective across MaxInstructions, and lab results at each budget equal
// the results computed with the trace cache disabled entirely.
func TestNoCrossBudgetAliasingWithPrefixSharing(t *testing.T) {
	w, err := synth.Build(synth.Profile{ILP: 3, BranchEntropy: 0.4, MemFootprintKB: 32, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Register(w); err != nil {
		t.Fatal(err)
	}

	budgets := []uint64{400, 800, 1600, 3200}
	var jobs []Job
	keys := map[string]uint64{}
	for _, b := range budgets {
		j := Job{Workload: w.Name, Arch: sim.ArchFlywheel, FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: b}
		if prev, dup := keys[j.Key()]; dup {
			t.Fatalf("budgets %d and %d share cache key %q", prev, b, j.Key())
		}
		keys[j.Key()] = b
		jobs = append(jobs, j)
	}
	// The largest budget runs first, so smaller budgets replay a prefix of
	// its recording; then re-run ascending so the recording is reused.
	ordered := append([]Job{jobs[len(jobs)-1]}, jobs...)

	prev := sim.TraceCachePolicy()
	defer func() {
		sim.SetTraceCachePolicy(prev)
		sim.ResetTraceCache()
	}()

	sim.SetTraceCachePolicy(trace.Policy{})
	sim.ResetTraceCache()
	shared, err := Run(ordered, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats := sim.TraceCacheStats(); stats.Hits == 0 {
		t.Fatalf("prefix sharing did not engage: %+v", stats)
	}

	sim.SetTraceCachePolicy(trace.Policy{Disabled: true})
	sim.ResetTraceCache()
	isolated, err := Run(ordered, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	retired := map[uint64]bool{}
	for i := range ordered {
		if !reflect.DeepEqual(shared[i], isolated[i]) {
			t.Fatalf("budget %d: prefix-shared result differs from isolated result", ordered[i].MaxInstructions)
		}
		retired[shared[i].Retired] = true
	}
	// Distinct budgets must produce distinct runs, not one aliased result.
	if len(retired) < len(budgets) {
		t.Fatalf("expected %d distinct retired counts across budgets, got %d", len(budgets), len(retired))
	}
}
