package lab

// Cancellation semantics of DoContext: a canceled request must never start
// a simulation, never interrupt one that already started, and never poison
// the key for requests that are still alive.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flywheel/internal/sim"
)

// TestDoContextCanceledBeforeRun: a request that is already canceled when
// it arrives must not simulate, must not count a miss, and must not leave
// an entry behind.
func TestDoContextCanceledBeforeRun(t *testing.T) {
	c := NewCache()
	c.run = func(sim.RunConfig) (sim.Result, error) {
		t.Error("canceled request reached the simulator")
		return sim.Result{}, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.DoContext(ctx, Job{Workload: "w"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := c.Stats()
	if st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("canceled request left traces: %+v", st)
	}
}

// TestDoContextWaiterCancelLeavesFlightIntact: canceling a waiter releases
// only that waiter; the in-flight computation completes and is cached.
func TestDoContextWaiterCancelLeavesFlightIntact(t *testing.T) {
	c := NewCache()
	started := make(chan struct{})
	release := make(chan struct{})
	c.run = func(sim.RunConfig) (sim.Result, error) {
		close(started)
		<-release
		return sim.Result{Retired: 42}, nil
	}

	j := Job{Workload: "slow"}
	fillerDone := make(chan error, 1)
	go func() {
		_, err := c.Do(j)
		fillerDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.DoContext(ctx, j)
		waiterDone <- err
	}()
	// The waiter must return promptly on cancel even though the run is
	// still blocked.
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter stuck behind the in-flight run")
	}

	close(release)
	if err := <-fillerDone; err != nil {
		t.Fatalf("filler failed: %v", err)
	}
	// The result landed despite the canceled waiter.
	res, err := c.Do(j)
	if err != nil || res.Retired != 42 {
		t.Fatalf("cached result lost: %v %+v", err, res)
	}
	if got := c.Misses(); got != 1 {
		t.Fatalf("misses = %d, want exactly 1 simulation", got)
	}
}

// TestDoContextCancellationDoesNotPoison: stress the race between a filler
// whose context is canceled around run start and a concurrent waiter with
// a live context. The live request must always end with a real result —
// cancellation may evict, but eviction plus the retry loop hands the
// computation to whoever is still interested.
func TestDoContextCancellationDoesNotPoison(t *testing.T) {
	c := NewCache()
	var runs atomic.Int64
	c.run = func(sim.RunConfig) (sim.Result, error) {
		runs.Add(1)
		return sim.Result{Retired: 7}, nil
	}

	for i := 0; i < 200; i++ {
		j := Job{Workload: fmt.Sprintf("race-%d", i)}
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(3)
		go func() { defer wg.Done(); cancel() }()
		go func() { defer wg.Done(); _, _ = c.DoContext(ctx, j) }()
		errCh := make(chan error, 1)
		go func() {
			defer wg.Done()
			res, err := c.DoContext(context.Background(), j)
			if err == nil && res.Retired != 7 {
				err = fmt.Errorf("bogus result %+v", res)
			}
			errCh <- err
		}()
		wg.Wait()
		if err := <-errCh; err != nil {
			t.Fatalf("iteration %d: live request failed: %v", i, err)
		}
	}
	if runs.Load() == 0 {
		t.Fatal("no simulation ever ran")
	}
}

// TestDoContextDiskHitDespiteLateCancel: the pre-run cancellation check
// sits after the disk tier, so a canceled-but-racing request can still be
// served from disk — cheap, and never wrong.
func TestDoContextDeadlineIsContextErr(t *testing.T) {
	c := NewCache()
	block := make(chan struct{})
	defer close(block)
	c.run = func(sim.RunConfig) (sim.Result, error) {
		<-block
		return sim.Result{}, nil
	}
	go c.Do(Job{Workload: "d"}) //nolint:errcheck
	for c.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := c.DoContext(ctx, Job{Workload: "d"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
