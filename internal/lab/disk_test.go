package lab

// Integration tests for the memory-over-disk cache: cross-process reuse
// (modeled as two caches over one directory), write-through, and the
// second-run-simulates-nothing contract.

import (
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flywheel/internal/lab/store"
	"flywheel/internal/sim"
)

func diskCache(t *testing.T, dir string) *Cache {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return NewCacheWithStore(st)
}

// TestDiskTierServesSecondProcess: a fresh cache over a warm directory
// serves every request from disk — zero simulations.
func TestDiskTierServesSecondProcess(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{
		{Workload: "a", FEBoostPct: 50},
		{Workload: "b", FEBoostPct: 50},
		{Workload: "a", FEBoostPct: 50}, // duplicate
	}

	var calls atomic.Int64
	runFn := func(cfg sim.RunConfig) (sim.Result, error) {
		calls.Add(1)
		return sim.Result{Config: cfg, TimePS: int64(len(cfg.Workload))}, nil
	}

	cold := diskCache(t, dir)
	cold.run = runFn
	first, err := Run(jobs, Options{Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("cold run simulated %d, want 2 distinct keys", got)
	}
	cs := cold.Stats()
	if cs.Misses != 2 || cs.DiskHits != 0 || cs.Hits != 1 {
		t.Fatalf("cold stats = %+v, want 2 misses / 0 disk hits / 1 hit", cs)
	}

	warm := diskCache(t, dir)
	warm.run = runFn
	second, err := Run(jobs, Options{Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("warm run re-simulated: %d total calls, want still 2", got)
	}
	ws := warm.Stats()
	if ws.Misses != 0 || ws.DiskHits != 2 || ws.Hits != 1 {
		t.Fatalf("warm stats = %+v, want 0 misses / 2 disk hits / 1 hit", ws)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("result %d differs across processes:\n cold %+v\n warm %+v", i, first[i], second[i])
		}
	}
}

// TestDiskTierSkipsFailedRuns: errors are not written through — a warm
// directory holds only successful results.
func TestDiskTierSkipsFailedRuns(t *testing.T) {
	dir := t.TempDir()
	c := diskCache(t, dir)
	c.run = func(cfg sim.RunConfig) (sim.Result, error) {
		return sim.Result{}, os.ErrNotExist
	}
	if _, err := c.Do(Job{Workload: "w"}); err == nil {
		t.Fatal("want error")
	}
	if n, _ := c.Store().Size(); n != 0 {
		t.Fatalf("failed run persisted: %d entries", n)
	}
}

// TestDiskTierSingleflight: concurrent requests for one cold key perform
// one disk probe and one simulation, not a thundering herd.
func TestDiskTierSingleflight(t *testing.T) {
	c := diskCache(t, t.TempDir())
	var calls atomic.Int64
	release := make(chan struct{})
	c.run = func(cfg sim.RunConfig) (sim.Result, error) {
		calls.Add(1)
		<-release
		return sim.Result{TimePS: 9}, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if res, err := c.Do(Job{Workload: "w"}); err != nil || res.TimePS != 9 {
				t.Errorf("Do = %+v, %v", res, err)
			}
		}()
	}
	for c.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("singleflight broke over the disk tier: %d runs, want 1", got)
	}
	if st := c.Store().Stats(); st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("store traffic = %+v, want exactly one probe and one write", st)
	}
}
