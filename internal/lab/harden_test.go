package lab

// Regression tests for the cache's failure semantics: a panicking run must
// not strand waiters on an unclosed done channel, and a failed run must
// not poison its key for the process lifetime.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flywheel/internal/sim"
)

// TestPanickingRunReleasesWaiters: a deliberately panicking workload used
// to leave entry.done unclosed, deadlocking every concurrent waiter on the
// same key forever. Now the panic becomes an error result delivered to all
// waiters.
func TestPanickingRunReleasesWaiters(t *testing.T) {
	c := NewCache()
	started := make(chan struct{})
	var startedOnce sync.Once
	c.run = func(cfg sim.RunConfig) (sim.Result, error) {
		// A late waiter can arrive after the eviction and start a second
		// flight, so the run function must tolerate being called again.
		startedOnce.Do(func() { close(started) })
		time.Sleep(10 * time.Millisecond) // let waiters pile up
		panic("injected: workload exploded")
	}

	j := Job{Workload: "panicker"}
	const waiters = 8
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Do(j)
		}(i)
	}

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters deadlocked on a panicking run")
	}
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("waiter %d: got %v, want a panic-converted error", i, err)
		}
	}
	<-started
}

// TestPanickingRunThroughLabRun drives the same scenario through the
// worker pool: Run must return the error, not hang.
func TestPanickingRunThroughLabRun(t *testing.T) {
	c := NewCache()
	c.run = func(cfg sim.RunConfig) (sim.Result, error) {
		panic("injected")
	}
	jobs := []Job{{Workload: "a"}, {Workload: "a"}, {Workload: "a"}, {Workload: "a"}}
	done := make(chan error, 1)
	go func() {
		_, err := Run(jobs, Options{Workers: 4, Cache: c})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil error for a panicking job")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked on a panicking job")
	}
}

// TestErrorNotPoisoned: a failed run is retried on the next request — the
// entry is evicted, not negatively cached for the process lifetime.
func TestErrorNotPoisoned(t *testing.T) {
	c := NewCache()
	var calls atomic.Int64
	c.run = func(cfg sim.RunConfig) (sim.Result, error) {
		if calls.Add(1) == 1 {
			return sim.Result{}, errors.New("transient: workload not yet registered")
		}
		return sim.Result{TimePS: 42}, nil
	}

	j := Job{Workload: "flaky"}
	if _, err := c.Do(j); err == nil {
		t.Fatal("first request: got nil error, want the transient failure")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("failed entry still cached: Len() = %d, want 0", n)
	}
	res, err := c.Do(j)
	if err != nil {
		t.Fatalf("second request was not retried: %v", err)
	}
	if res.TimePS != 42 {
		t.Fatalf("second request: TimePS = %d, want 42", res.TimePS)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("run called %d times, want 2", got)
	}
}

// TestErrorDeliveredToInFlightWaiters: waiters that joined the flight
// before the failure still receive the original error (they are not
// silently retried), and the key is free afterwards.
func TestErrorDeliveredToInFlightWaiters(t *testing.T) {
	c := NewCache()
	release := make(chan struct{})
	var calls atomic.Int64
	c.run = func(cfg sim.RunConfig) (sim.Result, error) {
		if calls.Add(1) == 1 {
			<-release
			return sim.Result{}, errors.New("boom")
		}
		return sim.Result{TimePS: 7}, nil
	}

	j := Job{Workload: "w"}
	const waiters = 6
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Do(j)
		}(i)
	}
	// Wait until the single flight is running AND every other waiter has
	// joined it (each join counts a hit) — otherwise a late waiter could
	// arrive after the eviction and trigger a fresh, successful run.
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() == 0 || c.Hits() < uint64(waiters-1) {
		if time.Now().After(deadline) {
			t.Fatalf("flight never fully formed: %d calls, %d hits", calls.Load(), c.Hits())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err == nil || err.Error() != "boom" {
			t.Fatalf("waiter %d: got %v, want the original error", i, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("in-flight waiters triggered %d runs, want 1", got)
	}
	if res, err := c.Do(j); err != nil || res.TimePS != 7 {
		t.Fatalf("post-failure request: res=%+v err=%v, want a fresh successful run", res, err)
	}
}

// TestRunConcurrentMixedKeysUnderPanic exercises eviction and panic
// recovery under the race detector with many goroutines and several keys.
func TestRunConcurrentMixedKeysUnderPanic(t *testing.T) {
	c := NewCache()
	var calls atomic.Int64
	c.run = func(cfg sim.RunConfig) (sim.Result, error) {
		n := calls.Add(1)
		switch n % 3 {
		case 0:
			panic(fmt.Sprintf("injected %d", n))
		case 1:
			return sim.Result{}, errors.New("injected error")
		default:
			return sim.Result{TimePS: int64(n)}, nil
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j := Job{Workload: fmt.Sprintf("w%d", (g+i)%5)}
				c.Do(j)
			}
		}(g)
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock under concurrent panics")
	}
}
