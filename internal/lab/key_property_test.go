package lab

// Property test for the cache-key contract: Key() must be injective on
// normalized jobs — jobs that differ only in defaulted fields collide to
// one cache entry, and jobs that differ in any meaningful field never
// collide. A violation in either direction is a correctness bug: spurious
// collisions serve the wrong simulation result from cache; missed
// collisions silently duplicate work.

import (
	"math/rand"
	"strings"
	"testing"

	"flywheel/internal/cacti"
	"flywheel/internal/sample"
	"flywheel/internal/sim"
)

// randomJob draws every field from a small pool so that collisions between
// independently drawn jobs are common enough to exercise both directions
// of the property.
func randomJob(rng *rand.Rand) Job {
	// The pool includes adversarial names: user-registered workloads may
	// contain the key encoding's own metacharacters ('|', '=', quotes,
	// backslashes, newlines) and must still never collide.
	workloads := []string{
		"gzip", "vpr", "synth/i4-e0.5-m32-s0-f0-r0-c4-p4-x1",
		"a|arch=1", "a\"|arch=1", "a\\|arch=1", "a\nb", "wl=a",
	}
	nodes := []cacti.Node{0, cacti.Node130, cacti.Node90, cacti.Node60}
	boosts := []int{0, 50, 100}
	instrs := []uint64{0, 300_000}
	// The sampling pool mixes exact (zero), default-normalized, and
	// explicit schedules — including a disabled config with stray non-zero
	// fields, which must normalize to exact. Pool entries that normalize to
	// the same config are repeated aliases on purpose: they keep key
	// collisions frequent enough for the property to be exercised in both
	// directions despite sampling widening the job space.
	samplings := []sim.Sampling{
		{},
		{},
		{WindowInsts: 4_000, Seed: 9},
		{Seed: 3},
		{Period: 60_000},
		{Period: 60_000, WindowInsts: 6_000, WarmupInsts: 2_000, Seed: 1},
		{Period: 60_000, WindowInsts: 6_000},
		{Period: 30_000, WindowInsts: 2_000, WarmupInsts: 500, Seed: 2},
	}
	return Job{
		Workload:              workloads[rng.Intn(len(workloads))],
		Arch:                  sim.Arch(rng.Intn(3)),
		Node:                  nodes[rng.Intn(len(nodes))],
		FEBoostPct:            boosts[rng.Intn(len(boosts))],
		BEBoostPct:            boosts[rng.Intn(len(boosts))],
		MaxInstructions:       instrs[rng.Intn(len(instrs))],
		ExtraFrontEndStages:   rng.Intn(2),
		PipelinedWakeupSelect: rng.Intn(2) == 1,
		Sampling:              samplings[rng.Intn(len(samplings))],
	}
}

func TestKeyEqualsNormalizedIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var collisions, distincts int
	// Iteration count is sized to the job space: independent draws collide
	// with probability ~1e-4, so 100k pairs see collisions reliably while
	// the whole test stays well under a second.
	for i := 0; i < 100_000; i++ {
		a, b := randomJob(rng), randomJob(rng)
		sameJob := a.normalize() == b.normalize()
		sameKey := a.Key() == b.Key()
		if sameJob != sameKey {
			t.Fatalf("jobs %+v and %+v: normalized-equal=%t but key-equal=%t (keys %q, %q)",
				a, b, sameJob, sameKey, a.Key(), b.Key())
		}
		if sameKey {
			collisions++
		} else {
			distincts++
		}
	}
	if collisions == 0 || distincts == 0 {
		t.Fatalf("degenerate sample: %d collisions, %d distincts — property not exercised", collisions, distincts)
	}
}

// TestKeyAdversarialNamesNeverCollide pins the escaping fix directly:
// before the workload name was quoted, a registered name embedding the
// separator syntax (e.g. "a|arch=1") could produce the same key as a
// different job with a shorter name — serving the wrong cached result.
// Every pair of jobs below is meaningfully different, so every pair of
// keys must differ.
func TestKeyAdversarialNamesNeverCollide(t *testing.T) {
	names := []string{
		"a", "a|arch=1", "a|arch=1|node=0.13", "a=b", "wl=a",
		"a\nb", "a\tb", "a b", `a"b`, `a\b`, `a\"b`, "a|", "|a", "=",
		"a|fe=50", "a\"|fe=50", "",
	}
	jobs := make([]Job, 0, len(names)*2)
	for _, n := range names {
		jobs = append(jobs,
			Job{Workload: n, Arch: sim.ArchFlywheel, FEBoostPct: 50},
			Job{Workload: n, Arch: sim.ArchFlywheel, FEBoostPct: 50, BEBoostPct: 50})
	}
	seen := map[string]Job{}
	for _, j := range jobs {
		k := j.Key()
		if prev, ok := seen[k]; ok {
			t.Fatalf("distinct jobs collide on key %q:\n  %+v\n  %+v", k, prev, j)
		}
		seen[k] = j
	}
	// And the encoding must still be one line: the disk store and the labd
	// protocol treat a key as a single record.
	for _, j := range jobs {
		for _, c := range j.Key() {
			if c == '\n' || c == '\r' {
				t.Fatalf("key of %+v contains a raw newline: %q", j, j.Key())
			}
		}
	}
}

// TestKeyDefaultedNodeCollides pins the defaulting direction explicitly: a
// job written with Node left zero and one written with Node130 are the
// same experiment.
func TestKeyDefaultedNodeCollides(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		j := randomJob(rng)
		j.Node = 0
		explicit := j
		explicit.Node = cacti.Node130
		if j.Key() != explicit.Key() {
			t.Fatalf("Node 0 and Node130 differ: %q vs %q", j.Key(), explicit.Key())
		}
		other := j
		other.Node = cacti.Node90
		if j.Key() == other.Key() {
			t.Fatalf("Node 0 and Node90 collide: %q", j.Key())
		}
	}
}

// TestKeySamplingSuffix pins the sampled-key contract: exact jobs keep the
// historical unsuffixed key (stray fields on a disabled schedule included —
// they normalize away), and enabled schedules append a suffix so sampled
// estimates can never answer a cache lookup for an exact result.
func TestKeySamplingSuffix(t *testing.T) {
	exact := Job{Workload: "vpr", Arch: sim.ArchFlywheel, FEBoostPct: 50}
	stray := exact
	stray.Sampling = sim.Sampling{WindowInsts: 9_999, Seed: 42} // Period 0: disabled
	if exact.Key() != stray.Key() {
		t.Fatalf("disabled schedule with stray fields forked the exact key:\n  %q\n  %q", exact.Key(), stray.Key())
	}
	if k := exact.Key(); strings.Contains(k, "samp=") {
		t.Fatalf("exact key carries a sampling suffix: %q", k)
	}
	sampled := exact
	sampled.Sampling = sim.Sampling{Period: 60_000}
	if sampled.Key() == exact.Key() {
		t.Fatalf("sampled and exact jobs collide: %q", exact.Key())
	}
	// Defaulted and explicit forms of the same schedule are one experiment.
	explicit := exact
	explicit.Sampling = sim.Sampling{
		Period: 60_000, WindowInsts: sample.DefaultWindowInsts,
		WarmupInsts: sample.DefaultWarmupInsts, Seed: 1,
	}
	if sampled.Key() != explicit.Key() {
		t.Fatalf("defaulted and explicit schedules differ:\n  %q\n  %q", sampled.Key(), explicit.Key())
	}
}

// TestKeySingleFieldPerturbation: flipping any one meaningful field of a
// job must change its key.
func TestKeySingleFieldPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	perturb := []func(*Job){
		func(j *Job) { j.Workload += "x" },
		func(j *Job) { j.Arch = (j.Arch + 1) % 3 },
		func(j *Job) { j.FEBoostPct += 5 },
		func(j *Job) { j.BEBoostPct += 5 },
		func(j *Job) { j.MaxInstructions += 1 },
		func(j *Job) { j.ExtraFrontEndStages++ },
		func(j *Job) { j.PipelinedWakeupSelect = !j.PipelinedWakeupSelect },
		func(j *Job) { j.Sampling.Period += 1_000 },
		func(j *Job) {
			if j.Sampling.Enabled() {
				j.Sampling.Seed += 7
			} else {
				j.Sampling = sim.Sampling{Period: 45_000}
			}
		},
		func(j *Job) {
			if j.Sampling.Enabled() {
				j.Sampling.WindowInsts = j.Sampling.WindowInsts%16_000 + 100
			} else {
				j.Sampling = sim.Sampling{Period: 45_000, WindowInsts: 3_000}
			}
		},
	}
	for i := 0; i < 500; i++ {
		j := randomJob(rng)
		base := j.Key()
		for k, f := range perturb {
			mod := j
			f(&mod)
			if mod.Key() == base {
				t.Fatalf("perturbation %d left key unchanged: %+v -> %q", k, mod, base)
			}
		}
	}
}
