// Package lab orchestrates batches of simulations. The paper's evaluation
// is a large cross-product — benchmarks × architectures × boost settings ×
// technology nodes — of mutually independent runs, so the lab fans a job
// list across a worker pool sized to the machine and memoizes results by a
// canonical configuration key: the many experiments that share a
// configuration (e.g. the baseline column repeated across Figures 11-14)
// simulate exactly once. Results always come back in job order, independent
// of completion order and worker count, so a sweep renders byte-identically
// whether it ran on one core or sixty-four.
package lab

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"flywheel/internal/cacti"
	"flywheel/internal/sim"
)

// Job is one simulation in a batch: the full identity of a run. Two jobs
// with equal fields are the same experiment and share one cached result.
type Job struct {
	Workload string
	Arch     sim.Arch
	// Node is the technology point; zero means 0.13 µm, like sim.Run.
	Node cacti.Node
	// FEBoostPct / BEBoostPct are the Flywheel clock-ratio knobs (§5).
	FEBoostPct int
	BEBoostPct int
	// MaxInstructions bounds the measured dynamic instruction count;
	// 0 runs to completion.
	MaxInstructions uint64

	// Figure 2 baseline variants.
	ExtraFrontEndStages   int
	PipelinedWakeupSelect bool
}

func (j Job) normalize() Job {
	if j.Node == 0 {
		j.Node = cacti.Node130
	}
	return j
}

// Key is the canonical cache identity of the job. Fields that default are
// normalized first, so a job written with Node left zero and one written
// with Node130 memoize to the same entry.
func (j Job) Key() string {
	j = j.normalize()
	return fmt.Sprintf("wl=%s|arch=%d|node=%s|fe=%d|be=%d|n=%d|fes=%d|pws=%t",
		j.Workload, j.Arch,
		strconv.FormatFloat(float64(j.Node), 'g', -1, 64),
		j.FEBoostPct, j.BEBoostPct, j.MaxInstructions,
		j.ExtraFrontEndStages, j.PipelinedWakeupSelect)
}

// Config converts the job to the simulator's run configuration.
func (j Job) Config() sim.RunConfig {
	j = j.normalize()
	return sim.RunConfig{
		Workload:              j.Workload,
		Arch:                  j.Arch,
		Node:                  j.Node,
		FEBoostPct:            j.FEBoostPct,
		BEBoostPct:            j.BEBoostPct,
		MaxInstructions:       j.MaxInstructions,
		ExtraFrontEndStages:   j.ExtraFrontEndStages,
		PipelinedWakeupSelect: j.PipelinedWakeupSelect,
	}
}

// Cache memoizes simulation results by Job.Key. It is safe for concurrent
// use and deduplicates in-flight work: when two workers ask for the same
// key at once, one simulates and the other waits for its result.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	hits    uint64
	misses  uint64
}

type entry struct {
	done chan struct{} // closed once res/err are filled
	res  sim.Result
	err  error
}

// NewCache returns an empty run cache.
func NewCache() *Cache { return &Cache{entries: map[string]*entry{}} }

// do returns the memoized result for j, simulating it on first request.
func (c *Cache) do(j Job) (sim.Result, error) {
	key := j.Key()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.res, e.err = sim.Run(j.Config())
	close(e.done)
	return e.res, e.err
}

// Hits counts requests served from the cache (including waits on in-flight
// runs). For a job list, Hits+Misses == len(jobs) and Misses == the number
// of distinct keys, regardless of worker count.
func (c *Cache) Hits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses counts requests that had to simulate.
func (c *Cache) Misses() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// Len reports the number of cached configurations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Options configures a batch run.
type Options struct {
	// Workers sets the worker-pool size; zero or negative uses
	// runtime.GOMAXPROCS(0).
	Workers int
	// Cache memoizes runs across calls. Nil uses a fresh private cache, so
	// duplicates within the job list still simulate once.
	Cache *Cache
	// Progress, when non-nil, is called once per completed job with the
	// number finished so far (1..total) and the job. Calls are serialized
	// but arrive in completion order, not job order.
	Progress func(done, total int, j Job)
}

// Run executes the jobs on a worker pool and returns their results in job
// order. Identical jobs — within the list or against a shared cache from
// earlier calls — simulate exactly once. If any job fails, Run finishes the
// batch and returns the error of the lowest-indexed failing job, so the
// error too is deterministic under concurrency.
func Run(jobs []Job, opt Options) ([]sim.Result, error) {
	results := make([]sim.Result, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	cache := opt.Cache
	if cache == nil {
		cache = NewCache()
	}

	errs := make([]error, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = cache.do(jobs[i])
				if opt.Progress != nil {
					progressMu.Lock()
					done++
					opt.Progress(done, len(jobs), jobs[i])
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
