// Package lab orchestrates batches of simulations. The paper's evaluation
// is a large cross-product — benchmarks × architectures × boost settings ×
// technology nodes — of mutually independent runs, so the lab fans a job
// list across a worker pool sized to the machine and memoizes results by a
// canonical configuration key: the many experiments that share a
// configuration (e.g. the baseline column repeated across Figures 11-14)
// simulate exactly once. Results always come back in job order, independent
// of completion order and worker count, so a sweep renders byte-identically
// whether it ran on one core or sixty-four.
package lab

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"flywheel/internal/branch"
	"flywheel/internal/cacti"
	"flywheel/internal/lab/store"
	"flywheel/internal/mem"
	"flywheel/internal/sim"
)

// Job is one simulation in a batch: the full identity of a run. Two jobs
// with equal fields are the same experiment and share one cached result.
type Job struct {
	Workload string
	Arch     sim.Arch
	// Node is the technology point; zero means 0.13 µm, like sim.Run.
	Node cacti.Node
	// FEBoostPct / BEBoostPct are the Flywheel clock-ratio knobs (§5).
	FEBoostPct int
	BEBoostPct int
	// MaxInstructions bounds the measured dynamic instruction count;
	// 0 runs to completion.
	MaxInstructions uint64

	// Predictor and Prefetcher select the frontend microarchitecture; empty
	// means the defaults ("gshare", "none"), exactly like sim.RunConfig.
	Predictor  string
	Prefetcher string

	// Figure 2 baseline variants.
	ExtraFrontEndStages   int
	PipelinedWakeupSelect bool

	// Sampling selects sampled execution (zero value: exact). Sampled
	// results are estimates, so they memoize under distinct keys — an
	// exact run never answers for a sampled one or vice versa.
	Sampling sim.Sampling
}

func (j Job) normalize() Job {
	if j.Node == 0 {
		j.Node = cacti.Node130
	}
	if j.Predictor == "" {
		j.Predictor = branch.DirGShare
	}
	if j.Prefetcher == "" {
		j.Prefetcher = mem.PFNone
	}
	j.Sampling = j.Sampling.Normalize()
	return j
}

// Key is the canonical cache identity of the job. Fields that default are
// normalized first, so a job written with Node left zero and one written
// with Node130 memoize to the same entry. The workload name — the only
// variable-length, user-controlled field — is Go-quoted, so registered
// names containing the field separators ('|', '='), quotes, or newlines
// cannot forge another job's key: strconv.Quote is injective and its
// output delimits the name unambiguously. The encoding is stable across
// processes; the on-disk store addresses entries by it.
func (j Job) Key() string {
	j = j.normalize()
	k := fmt.Sprintf("wl=%s|arch=%d|node=%s|fe=%d|be=%d|n=%d|fes=%d|pws=%t|pred=%s|pf=%s",
		strconv.Quote(j.Workload), j.Arch,
		strconv.FormatFloat(float64(j.Node), 'g', -1, 64),
		j.FEBoostPct, j.BEBoostPct, j.MaxInstructions,
		j.ExtraFrontEndStages, j.PipelinedWakeupSelect,
		strconv.Quote(j.Predictor), strconv.Quote(j.Prefetcher))
	// Exact jobs keep their historical key byte-for-byte (the on-disk
	// store addresses entries by it); sampled jobs append the normalized
	// schedule. Normalize collapses disabled configs to the zero value, so
	// a stray WindowInsts on an exact job cannot fork its key, and an
	// enabled schedule always has all four fields non-zero — no ambiguity
	// with the unsuffixed form.
	if s := j.Sampling; s.Enabled() {
		k += fmt.Sprintf("|samp=%d,%d,%d,%d", s.Period, s.WindowInsts, s.WarmupInsts, s.Seed)
	}
	return k
}

// Config converts the job to the simulator's run configuration.
func (j Job) Config() sim.RunConfig {
	j = j.normalize()
	return sim.RunConfig{
		Workload:              j.Workload,
		Arch:                  j.Arch,
		Node:                  j.Node,
		FEBoostPct:            j.FEBoostPct,
		BEBoostPct:            j.BEBoostPct,
		MaxInstructions:       j.MaxInstructions,
		Predictor:             j.Predictor,
		Prefetcher:            j.Prefetcher,
		ExtraFrontEndStages:   j.ExtraFrontEndStages,
		PipelinedWakeupSelect: j.PipelinedWakeupSelect,
		Sampling:              j.Sampling,
	}
}

// Cache memoizes simulation results by Job.Key. It is safe for concurrent
// use and deduplicates in-flight work: when two workers ask for the same
// key at once, one simulates and the other waits for its result. A cache
// opened over a store (NewCacheWithStore) adds a persistent second tier:
// memory misses consult the disk store before simulating, and fresh
// results are written through, so the memoization survives process death.
//
// Failed runs are never cached beyond their own flight: the waiters that
// piled onto an in-flight run all receive its error, but the entry is
// evicted before they are released, so the next request retries — a
// transient failure (say, a workload registered later) does not poison the
// key for the process lifetime. A panicking run is converted into an error
// result with the same eviction semantics; waiters can never deadlock on
// an abandoned entry.
type Cache struct {
	mu       sync.Mutex
	entries  map[string]*entry
	hits     uint64
	misses   uint64
	diskHits uint64
	inflight int

	disk *store.Store
	// run is the simulation entry point; tests substitute it to inject
	// failures and panics.
	run func(sim.RunConfig) (sim.Result, error)
}

type entry struct {
	done chan struct{} // closed once res/err are filled
	res  sim.Result
	err  error
}

// NewCache returns an empty in-memory run cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]*entry{}, run: sim.Run}
}

// NewCacheWithStore returns a run cache layered over a persistent store:
// memory over disk over simulation, with in-flight deduplication intact
// across all three tiers.
func NewCacheWithStore(s *store.Store) *Cache {
	c := NewCache()
	c.disk = s
	return c
}

// Store returns the cache's persistent tier, or nil for a purely
// in-memory cache.
func (c *Cache) Store() *store.Store { return c.disk }

// Do returns the memoized result for j, computing it on first request.
// Concurrent calls with the same key share one computation.
func (c *Cache) Do(j Job) (sim.Result, error) {
	return c.DoContext(context.Background(), j)
}

// DoContext is Do with cancellation. A waiter whose context ends returns
// ctx.Err() immediately; the in-flight computation it was waiting on is
// unaffected and still lands in the cache for everyone else. A caller that
// becomes the filler checks its context once more immediately before the
// simulation starts: a request canceled by then skips the run entirely and
// the entry is evicted, so cancellation never wastes simulation work and
// never caches a hole. Work that has already started is carried to
// completion and cached — a canceled client's finished jobs still benefit
// the next request.
//
// Cancellation cannot poison other requests: when a filler aborts with its
// context error, waiters with still-live contexts observe the eviction and
// retry, taking over the computation themselves.
func (c *Cache) DoContext(ctx context.Context, j Job) (sim.Result, error) {
	key := j.Key()
	for {
		if err := ctx.Err(); err != nil {
			return sim.Result{}, err
		}
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.hits++
			c.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return sim.Result{}, ctx.Err()
			}
			if isContextErr(e.err) && ctx.Err() == nil {
				// The filler's request was canceled before its run began;
				// the entry has been evicted. Our context is live, so take
				// over the computation instead of surfacing a stranger's
				// cancellation.
				continue
			}
			return e.res, e.err
		}
		e := &entry{done: make(chan struct{})}
		c.entries[key] = e
		c.inflight++
		c.mu.Unlock()

		c.fill(ctx, e, key, j)
		return e.res, e.err
	}
}

func isContextErr(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// fill computes the entry's result — disk tier first, then simulation —
// and releases the waiters. It is panic-safe: entry.done is closed via
// defer no matter how the run ends, and a panic inside the simulator
// becomes an ordinary error result. Error entries (including recovered
// panics and pre-run cancellations) are evicted before the waiters are
// released.
func (c *Cache) fill(ctx context.Context, e *entry, key string, j Job) {
	defer func() {
		if p := recover(); p != nil {
			e.err = fmt.Errorf("lab: run %s panicked: %v", key, p)
		}
		c.mu.Lock()
		c.inflight--
		if e.err != nil {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		close(e.done)
	}()

	if c.disk != nil {
		if res, ok := c.disk.Get(key); ok {
			c.mu.Lock()
			c.diskHits++
			c.mu.Unlock()
			e.res = res
			return
		}
	}
	// Last cancellation point: beyond here the simulation runs to
	// completion and is cached even if the requester has gone away.
	// Checking before the miss counter keeps Misses an exact count of
	// simulations actually started.
	if err := ctx.Err(); err != nil {
		e.err = fmt.Errorf("lab: run %s: %w", key, err)
		return
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	e.res, e.err = c.run(j.Config())
	if e.err == nil && c.disk != nil {
		// A write-through failure (disk full, permissions) degrades the
		// store to a smaller cache; the computed result is still good.
		_ = c.disk.Put(key, e.res)
	}
}

// do is the internal spelling kept for the package's call sites.
func (c *Cache) do(j Job) (sim.Result, error) { return c.Do(j) }

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts requests served from memory, including waits on
	// in-flight runs. DiskHits counts memory misses served by the
	// persistent store. Misses counts requests that had to simulate.
	// For a job list on a fresh in-memory cache,
	// Hits+DiskHits+Misses == len(jobs) and DiskHits+Misses == the number
	// of distinct keys, regardless of worker count.
	Hits     uint64
	DiskHits uint64
	Misses   uint64
	// InFlight is the number of computations currently running; Entries
	// the number of memoized configurations.
	InFlight int
	Entries  int
}

// Stats returns a consistent snapshot of all counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:     c.hits,
		DiskHits: c.diskHits,
		Misses:   c.misses,
		InFlight: c.inflight,
		Entries:  len(c.entries),
	}
}

// StatsLine renders the cache and store counters as one fixed-shape line,
// shared by the CLIs' -storestats flags and greppable by CI's warm-store
// check (the second pass over a warm store must report "0 sim runs").
func (c *Cache) StatsLine() string {
	s := c.Stats()
	total := s.Hits + s.DiskHits + s.Misses
	diskPct := 0.0
	if s.DiskHits+s.Misses > 0 {
		diskPct = 100 * float64(s.DiskHits) / float64(s.DiskHits+s.Misses)
	}
	line := fmt.Sprintf("store: %d requests, %d memory hits, %d disk hits, %d sim runs (%.1f%% disk)",
		total, s.Hits, s.DiskHits, s.Misses, diskPct)
	if c.disk != nil {
		entries, bytes := c.disk.Size()
		line += fmt.Sprintf("; %d entries, %d bytes on disk", entries, bytes)
	}
	return line
}

// Hits counts requests served from memory (including waits on in-flight
// runs).
func (c *Cache) Hits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses counts requests that had to simulate. Requests served by the
// persistent store count as DiskHits, not misses.
func (c *Cache) Misses() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// DiskHits counts memory misses that were served by the persistent store.
func (c *Cache) DiskHits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.diskHits
}

// Len reports the number of cached configurations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Options configures a batch run.
type Options struct {
	// Workers sets the worker-pool size; zero or negative uses
	// runtime.GOMAXPROCS(0).
	Workers int
	// Cache memoizes runs across calls. Nil uses a fresh private cache, so
	// duplicates within the job list still simulate once.
	Cache *Cache
	// Progress, when non-nil, is called once per completed job with the
	// number finished so far (1..total) and the job. Calls are serialized
	// but arrive in completion order, not job order.
	Progress func(done, total int, j Job)
}

// Run executes the jobs on a worker pool and returns their results in job
// order. Identical jobs — within the list or against a shared cache from
// earlier calls — simulate exactly once. If any job fails, Run finishes the
// batch and returns the error of the lowest-indexed failing job, so the
// error too is deterministic under concurrency.
func Run(jobs []Job, opt Options) ([]sim.Result, error) {
	results := make([]sim.Result, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	cache := opt.Cache
	if cache == nil {
		cache = NewCache()
	}

	errs := make([]error, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = cache.do(jobs[i])
				if opt.Progress != nil {
					progressMu.Lock()
					done++
					opt.Progress(done, len(jobs), jobs[i])
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
