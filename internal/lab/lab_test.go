package lab

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"flywheel/internal/branch"
	"flywheel/internal/cacti"
	"flywheel/internal/mem"
	"flywheel/internal/sim"
)

const testBudget = 4_000

// testJobs builds a small batch with deliberate duplicates: three baseline
// runs appear twice each, the way the baseline column repeats across the
// paper's figures.
func testJobs() []Job {
	var jobs []Job
	benches := []string{"gzip", "vpr", "parser"}
	for _, b := range benches {
		jobs = append(jobs,
			Job{Workload: b, Arch: sim.ArchBaseline, MaxInstructions: testBudget},
			Job{Workload: b, Arch: sim.ArchFlywheel, FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: testBudget},
		)
	}
	for _, b := range benches {
		jobs = append(jobs, Job{Workload: b, Arch: sim.ArchBaseline, MaxInstructions: testBudget})
	}
	return jobs
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := testJobs()
	serial, err := Run(jobs, Options{Workers: 1, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(jobs, Options{Workers: 8, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("Workers:1 and Workers:8 results differ")
	}
	again, err := Run(jobs, Options{Workers: 8, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel, again) {
		t.Error("repeated runs differ")
	}
}

func TestResultsComeBackInJobOrder(t *testing.T) {
	jobs := testJobs()
	res, err := Run(jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(jobs) {
		t.Fatalf("len(results) = %d, want %d", len(res), len(jobs))
	}
	for i, r := range res {
		if r.Config.Workload != jobs[i].Workload || r.Config.Arch != jobs[i].Arch {
			t.Errorf("result %d is %s/%s, want %s/%s", i,
				r.Config.Workload, r.Config.Arch, jobs[i].Workload, jobs[i].Arch)
		}
	}
}

func TestCacheAccounting(t *testing.T) {
	jobs := testJobs() // 9 jobs, 6 distinct keys
	cache := NewCache()
	if _, err := Run(jobs, Options{Workers: 8, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if got, want := cache.Misses(), uint64(6); got != want {
		t.Errorf("misses = %d, want %d", got, want)
	}
	if got, want := cache.Hits(), uint64(3); got != want {
		t.Errorf("hits = %d, want %d", got, want)
	}
	if got, want := cache.Len(), 6; got != want {
		t.Errorf("cache len = %d, want %d", got, want)
	}
	// A second batch against the same cache is all hits.
	if _, err := Run(jobs, Options{Workers: 8, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if got, want := cache.Misses(), uint64(6); got != want {
		t.Errorf("misses after rerun = %d, want %d", got, want)
	}
	if got, want := cache.Hits(), uint64(12); got != want {
		t.Errorf("hits after rerun = %d, want %d", got, want)
	}
}

func TestKeyNormalizesDefaults(t *testing.T) {
	a := Job{Workload: "gzip", MaxInstructions: testBudget}
	b := Job{Workload: "gzip", Node: cacti.Node130, MaxInstructions: testBudget}
	if a.Key() != b.Key() {
		t.Errorf("zero node key %q != explicit 0.13 key %q", a.Key(), b.Key())
	}
	c := Job{Workload: "gzip", Node: cacti.Node90, MaxInstructions: testBudget}
	if a.Key() == c.Key() {
		t.Errorf("different nodes share key %q", a.Key())
	}
}

// TestKeySeparatesFrontends: the frontend axes are part of the cache
// identity — an empty selection normalizes to the gshare/none default, and
// every distinct (predictor, prefetcher) pair owns a distinct key, so a
// TAGE run can never serve from a G-share entry.
func TestKeySeparatesFrontends(t *testing.T) {
	base := Job{Workload: "gzip", MaxInstructions: testBudget}
	explicit := base
	explicit.Predictor, explicit.Prefetcher = branch.DirGShare, mem.PFNone
	if base.Key() != explicit.Key() {
		t.Errorf("default frontend key %q != explicit gshare/none key %q", base.Key(), explicit.Key())
	}
	seen := map[string]string{}
	for _, pred := range branch.Directions() {
		for _, pf := range mem.Prefetchers() {
			j := base
			j.Predictor, j.Prefetcher = pred, pf
			k := j.Key()
			if prev, dup := seen[k]; dup {
				t.Errorf("frontends %s/%s and %s share key %q", pred, pf, prev, k)
			}
			seen[k] = pred + "/" + pf
		}
	}
}

func TestErrorIsFirstFailingJob(t *testing.T) {
	jobs := []Job{
		{Workload: "gzip", MaxInstructions: testBudget},
		{Workload: "no-such-bench-b", MaxInstructions: testBudget},
		{Workload: "no-such-bench-a", MaxInstructions: testBudget},
	}
	for _, workers := range []int{1, 8} {
		_, err := Run(jobs, Options{Workers: workers})
		if err == nil {
			t.Fatalf("Workers:%d: no error for unknown benchmark", workers)
		}
		if !strings.Contains(err.Error(), "no-such-bench-b") {
			t.Errorf("Workers:%d: error %q, want the lowest-indexed failure (no-such-bench-b)", workers, err)
		}
	}
}

func TestProgressCallback(t *testing.T) {
	jobs := testJobs()
	var mu sync.Mutex
	var seen []int
	_, err := Run(jobs, Options{
		Workers: 4,
		Progress: func(done, total int, j Job) {
			mu.Lock()
			defer mu.Unlock()
			if total != len(jobs) {
				t.Errorf("total = %d, want %d", total, len(jobs))
			}
			seen = append(seen, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("progress called %d times, want %d", len(seen), len(jobs))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress done sequence %v, want 1..%d in order", seen, len(jobs))
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	res, err := Run(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("len(results) = %d, want 0", len(res))
	}
}
