package store

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Scrub proactively audits the shard the way Get would only ever do
// lazily, one key at a time: it walks every entry of the current version
// (and, optionally, the trace spill directory) and verifies the full
// integrity chain — parseable JSON, version stamp, key-to-address match
// (the sha256 the file sits under must be derivable from its stamped
// key), and the payload checksum. Anything that fails is moved to
// <root>/quarantine/ preserving its relative path, and appended to
// <root>/quarantine/MANIFEST.ndjson, one JSON line per file. A
// quarantined entry is a plain miss afterwards, so the next request for
// that key transparently re-simulates and re-persists it; the damaged
// bytes are preserved for forensics instead of being served or deleted.
//
// Scrub is safe to run while the store serves traffic: only invalid
// files are moved, readers of a file mid-rename keep their open handle,
// and a concurrent Put of a fresh entry is never touched.

// ScrubOptions configures one scrub pass.
type ScrubOptions struct {
	// TraceDir is a trace-spill directory to audit alongside the entry
	// tree (by convention <root>/traces); empty skips traces.
	TraceDir string
	// VerifyTrace validates one spill file (use trace.VerifySpillFile);
	// required when TraceDir is set. The store does not parse trace
	// files itself — their format belongs to internal/trace.
	VerifyTrace func(path string) error
}

// Quarantined describes one file a scrub moved aside.
type Quarantined struct {
	Path   string `json:"path"` // original location
	To     string `json:"to"`   // where it was moved
	Reason string `json:"reason"`
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// Entries and Traces count files checked (healthy or not).
	Entries     int           `json:"entries"`
	Traces      int           `json:"traces"`
	Quarantined []Quarantined `json:"quarantined"`
}

// Bad is the number of files this pass quarantined.
func (r *ScrubReport) Bad() int { return len(r.Quarantined) }

// QuarantineDir returns where this store moves corrupt files.
func (s *Store) QuarantineDir() string { return filepath.Join(s.dir, "quarantine") }

// Scrub runs one audit pass and returns what it checked and quarantined.
// The error reports infrastructure trouble (an unwalkable tree, a failed
// move) — finding corrupt files is a normal outcome, not an error.
func (s *Store) Scrub(opt ScrubOptions) (*ScrubReport, error) {
	if opt.TraceDir != "" && opt.VerifyTrace == nil {
		return nil, fmt.Errorf("store: scrub: TraceDir set without VerifyTrace")
	}
	rep := &ScrubReport{}

	root := filepath.Join(s.dir, s.version)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil // empty store: nothing to scrub
			}
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".json") {
			return nil
		}
		rep.Entries++
		if reason := s.checkEntry(path); reason != "" {
			return s.quarantine(rep, path, reason)
		}
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("store: scrub: %w", err)
	}

	if opt.TraceDir != "" {
		err := filepath.WalkDir(opt.TraceDir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				if os.IsNotExist(err) {
					return nil
				}
				return err
			}
			name := filepath.Base(path)
			if d.IsDir() || !strings.HasSuffix(name, ".trace") || strings.HasPrefix(name, ".") {
				return nil
			}
			rep.Traces++
			if verr := opt.VerifyTrace(path); verr != nil {
				return s.quarantine(rep, path, verr.Error())
			}
			return nil
		})
		if err != nil {
			return rep, fmt.Errorf("store: scrub traces: %w", err)
		}
	}
	return rep, nil
}

// checkEntry verifies one entry file end to end; "" means healthy.
func (s *Store) checkEntry(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		// Raced with a concurrent quarantine/replacement; not our problem.
		return ""
	}
	var e entryFile
	if err := json.Unmarshal(data, &e); err != nil {
		return fmt.Sprintf("unparseable: %v", err)
	}
	if _, err := decodeEntry(data, s.version, e.Key); err != nil {
		return err.Error()
	}
	// The address must be derivable from the stamped key: a valid-looking
	// entry sitting at the wrong address would never be served for its
	// own key and could shadow another's.
	if want := s.path(e.Key); want != path {
		return fmt.Sprintf("address mismatch: stamped key addresses %s", filepath.Base(want))
	}
	return ""
}

// quarantine moves one bad file under QuarantineDir, preserving its path
// relative to the store root, and appends a manifest line.
func (s *Store) quarantine(rep *ScrubReport, path, reason string) error {
	rel, err := filepath.Rel(s.dir, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		// A trace dir outside the store root lands under quarantine/traces.
		rel = filepath.Join("traces", filepath.Base(path))
	}
	dst := filepath.Join(s.QuarantineDir(), rel)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	if err := os.Rename(path, dst); err != nil {
		if os.IsNotExist(err) {
			return nil // lost a race with another scrubber; fine
		}
		return err
	}
	q := Quarantined{Path: path, To: dst, Reason: reason}
	rep.Quarantined = append(rep.Quarantined, q)
	s.appendManifest(q)
	return nil
}

// manifestLine is one MANIFEST.ndjson record.
type manifestLine struct {
	Time time.Time `json:"time"`
	Quarantined
}

// appendManifest best-effort logs the quarantine; the move itself is the
// source of truth, the manifest is the operator's audit trail.
func (s *Store) appendManifest(q Quarantined) {
	line, err := json.Marshal(manifestLine{Time: time.Now().UTC(), Quarantined: q})
	if err != nil {
		return
	}
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	f, err := os.OpenFile(filepath.Join(s.QuarantineDir(), "MANIFEST.ndjson"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	f.Write(append(line, '\n'))
}
