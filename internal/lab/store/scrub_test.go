package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"flywheel/internal/chaos"
	"flywheel/internal/trace"
)

// fillStore writes n entries and returns their keys.
func fillStore(t *testing.T, s *Store, n int) []string {
	t.Helper()
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
		if err := s.Put(keys[i], testResult(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// writeMinimalSpill writes the smallest structurally valid trace spill (a
// halted, zero-chunk recording) and cross-checks it against the real
// verifier so a trace-format bump fails here loudly, not silently.
func writeMinimalSpill(t *testing.T, path string) {
	t.Helper()
	var payload bytes.Buffer
	binary.Write(&payload, binary.LittleEndian, uint64(0)) // startSeq
	binary.Write(&payload, binary.LittleEndian, uint64(0)) // ceiling
	payload.WriteByte(1)                                   // halted
	binary.Write(&payload, binary.LittleEndian, uint64(0)) // no chunks
	var file bytes.Buffer
	file.WriteString("FWTRACE\x00")
	binary.Write(&file, binary.LittleEndian, uint32(1)) // spill version
	file.Write(payload.Bytes())
	binary.Write(&file, binary.LittleEndian, crc32.ChecksumIEEE(payload.Bytes()))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, file.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := trace.VerifySpillFile(path); err != nil {
		t.Fatalf("hand-built spill no longer valid (trace format changed?): %v", err)
	}
}

// TestScrubHealthyStore: a clean shard scrubs clean.
func TestScrubHealthyStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 10)
	traces := filepath.Join(s.Dir(), "traces")
	writeMinimalSpill(t, filepath.Join(traces, "aa.trace"))

	rep, err := s.Scrub(ScrubOptions{TraceDir: traces, VerifyTrace: trace.VerifySpillFile})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 10 || rep.Traces != 1 || rep.Bad() != 0 {
		t.Fatalf("healthy scrub: %+v", rep)
	}
	if _, err := os.Stat(filepath.Join(s.QuarantineDir(), "MANIFEST.ndjson")); !os.IsNotExist(err) {
		t.Fatal("clean scrub wrote a manifest")
	}
}

// TestScrubQuarantinesAllPlantedCorruption: chaos plants a seeded mix of
// bit flips and truncations across entries and trace spills; one scrub
// pass must quarantine every manifest entry — and nothing else — move
// the bytes under quarantine/, log them to MANIFEST.ndjson, and leave
// every damaged key re-servable (miss, then Put repairs).
func TestScrubQuarantinesAllPlantedCorruption(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fillStore(t, s, 40)
	traces := filepath.Join(s.Dir(), "traces")
	for i := 0; i < 6; i++ {
		writeMinimalSpill(t, filepath.Join(traces, fmt.Sprintf("t%02d.trace", i)))
	}

	planted, err := chaos.CorruptTree(s.Dir(), 42, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(planted) < 3 {
		t.Fatalf("only %d corruptions planted; pick a better seed", len(planted))
	}

	rep, err := s.Scrub(ScrubOptions{TraceDir: traces, VerifyTrace: trace.VerifySpillFile})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries+rep.Traces != 46 {
		t.Fatalf("checked %d entries + %d traces, want 46 total", rep.Entries, rep.Traces)
	}
	quarantined := map[string]bool{}
	for _, q := range rep.Quarantined {
		quarantined[q.Path] = true
		if _, err := os.Stat(q.To); err != nil {
			t.Fatalf("quarantined file not preserved at %s: %v", q.To, err)
		}
		if _, err := os.Stat(q.Path); !os.IsNotExist(err) {
			t.Fatalf("quarantined file still at original path %s", q.Path)
		}
		if q.Reason == "" {
			t.Fatalf("quarantine without a reason: %+v", q)
		}
	}
	for _, c := range planted {
		if !quarantined[c.Path] {
			t.Fatalf("planted %s corruption at %s not quarantined", c.Kind, c.Path)
		}
	}
	if len(quarantined) != len(planted) {
		t.Fatalf("quarantined %d files, planted %d — a healthy file was taken", len(quarantined), len(planted))
	}

	// The manifest records each move as one NDJSON line.
	data, err := os.ReadFile(filepath.Join(s.QuarantineDir(), "MANIFEST.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(planted) {
		t.Fatalf("manifest has %d lines, want %d", len(lines), len(planted))
	}
	for _, ln := range lines {
		var rec struct {
			Path, To, Reason string
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil || rec.Reason == "" || rec.To == "" {
			t.Fatalf("bad manifest line %q: %v", ln, err)
		}
	}

	// Every key still serves: quarantined ones miss and repair via Put.
	for i, key := range keys {
		got, ok := s.Get(key)
		if !ok {
			if err := s.Put(key, testResult(int64(i))); err != nil {
				t.Fatal(err)
			}
			got, ok = s.Get(key)
		}
		if !ok || got.TimePS != int64(i) {
			t.Fatalf("key %s unservable after scrub: %+v ok=%t", key, got, ok)
		}
	}
	// A second pass over the repaired shard is clean.
	rep2, err := s.Scrub(ScrubOptions{TraceDir: traces, VerifyTrace: trace.VerifySpillFile})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Bad() != 0 {
		t.Fatalf("second scrub still found %d bad files: %+v", rep2.Bad(), rep2.Quarantined)
	}
}

// TestScrubCatchesAddressMismatch: a perfectly valid entry copied to a
// different key's address (tampering, fs-level mixups) is quarantined —
// Get would never serve it, but it could shadow the real entry.
func TestScrubCatchesAddressMismatch(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", testResult(1)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.path("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.path("b")), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("b"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bad() != 1 || !strings.Contains(rep.Quarantined[0].Reason, "address mismatch") {
		t.Fatalf("misplaced entry not caught: %+v", rep)
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("the real entry was quarantined")
	}
}

// TestCorruptionTolerantReads is the satellite fuzz/table test: across
// seeded truncations, bit flips, wrong-version and wrong-key doctoring,
// Get must NEVER return a wrong result — every mutation reads as a miss
// (or, for no-op-equivalent mutations, the exact original), and a Put
// repairs the entry.
func TestCorruptionTolerantReads(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "fuzz-key"
	want := testResult(7777)
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(s.path(key))
	if err != nil {
		t.Fatal(err)
	}

	restore := func() {
		if err := os.WriteFile(s.path(key), orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	check := func(desc string, mutated []byte) {
		t.Helper()
		if err := os.WriteFile(s.path(key), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		// The contract is "never a wrong result" — a mutation may still
		// serve if it is semantically a no-op (e.g. a case flip in a JSON
		// field name, which Go's decoder matches case-insensitively), but
		// then it must decode to exactly the original result.
		got, ok := s.Get(key)
		if ok && got != want {
			t.Fatalf("%s: Get served a WRONG result:\n got %+v\nwant %+v", desc, got, want)
		}
		restore()
	}

	// Every truncation length.
	for keep := 0; keep < len(orig); keep++ {
		check(fmt.Sprintf("truncate to %d", keep), orig[:keep])
	}
	// Every single-byte bit flip.
	for off := 0; off < len(orig); off++ {
		for bit := uint(0); bit < 8; bit++ {
			mut := append([]byte(nil), orig...)
			mut[off] ^= 1 << bit
			check(fmt.Sprintf("flip byte %d bit %d", off, bit), mut)
		}
	}
	// Seeded random multi-byte garbage splices.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		mut := append([]byte(nil), orig...)
		for j := 0; j < 1+rng.Intn(8); j++ {
			mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
		}
		check(fmt.Sprintf("splice %d", i), mut)
	}
	// Wrong version and wrong key stamps with recomputed checksums — an
	// adversarially consistent entry must still be rejected.
	var e entryFile
	if err := json.Unmarshal(orig, &e); err != nil {
		t.Fatal(err)
	}
	doctored := entryFile{Version: "s0-m0", Key: e.Key, Result: e.Result}
	doctored.Sum = entrySum(doctored.Version, doctored.Key, doctored.Result)
	data, _ := json.Marshal(doctored)
	check("wrong version, consistent sum", data)

	doctored = entryFile{Version: e.Version, Key: "some-other-key", Result: e.Result}
	doctored.Sum = entrySum(doctored.Version, doctored.Key, doctored.Result)
	data, _ = json.Marshal(doctored)
	check("wrong key, consistent sum", data)

	// After all that abuse: still healthy, and repairable after damage.
	if got, ok := s.Get(key); !ok || got != want {
		t.Fatalf("entry lost after fuzzing: %+v ok=%t", got, ok)
	}
	if st := s.Stats(); st.BadEntries == 0 {
		t.Fatal("no bad entries counted across the fuzz run")
	}
}

// TestScrubWhileServing: a scrub pass racing live Get/Put traffic (some
// of it over corrupt entries) must stay data-race-free and never serve a
// wrong result. Run under -race.
func TestScrubWhileServing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fillStore(t, s, 32)
	// Corrupt a third of them.
	for i := 0; i < len(keys); i += 3 {
		path := s.path(keys[i])
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(len(keys))
				if got, ok := s.Get(keys[i]); ok {
					if got.TimePS != int64(i) {
						t.Errorf("key %s: wrong result %d", keys[i], got.TimePS)
						return
					}
				} else if rng.Intn(2) == 0 {
					if err := s.Put(keys[i], testResult(int64(i))); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}
		}(w)
	}
	for pass := 0; pass < 5; pass++ {
		if _, err := s.Scrub(ScrubOptions{}); err != nil {
			t.Errorf("scrub pass %d: %v", pass, err)
			break
		}
	}
	close(stop)
	wg.Wait()

	// Converged state: everything either healthy or repairable.
	rep, err := s.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		if _, ok := s.Get(key); !ok {
			if err := s.Put(key, testResult(0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	_ = rep
	if rep2, err := s.Scrub(ScrubOptions{}); err != nil || rep2.Bad() > 0 {
		t.Fatalf("final scrub: %+v err=%v", rep2, err)
	}
}
