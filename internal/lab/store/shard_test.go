package store_test

import (
	"path/filepath"
	"testing"

	"flywheel/internal/lab/store"
	"flywheel/internal/sim"
)

// TestShardDirsAreDisjointStores: two shards under one root are fully
// independent — a key written to shard 0 is invisible to shard 1, and the
// directory names are stable and sortable.
func TestShardDirsAreDisjointStores(t *testing.T) {
	root := t.TempDir()
	if got, want := store.ShardDir(root, 7), filepath.Join(root, "shard-007"); got != want {
		t.Fatalf("ShardDir = %q, want %q", got, want)
	}
	s0, err := store.Open(store.ShardDir(root, 0))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := store.Open(store.ShardDir(root, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Put("k", sim.Result{Retired: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s1.Get("k"); ok {
		t.Fatal("shard 1 sees shard 0's entry")
	}
	if res, ok := s0.Get("k"); !ok || res.Retired != 1 {
		t.Fatalf("shard 0 lost its own entry: %v %v", res, ok)
	}
	entries, _ := s1.Size()
	if entries != 0 {
		t.Fatalf("shard 1 counts %d entries", entries)
	}
}
