// Package store persists simulation results content-addressed on disk, so
// the lab's memoization survives process death: a sweep re-run in a new
// process — or served by a resident labd — replays every previously
// computed configuration from disk instead of re-simulating it.
//
// Layout: each entry is one JSON file under
//
//	<dir>/<version>/<hh>/<sha256(version "\n" key)>.json
//
// where version stamps both the store schema and the simulator's result
// semantics (sim.ModelVersion), hh is the first address byte in hex (a
// two-level fan-out so directories stay small), and key is the lab's
// collision-free canonical job encoding. Bumping either version component
// changes every address, orphaning stale entries rather than serving them.
//
// Writes are atomic: the entry is written to a temp file in the store root
// and renamed into place, so a crash mid-write leaves at most a temp file,
// never a truncated entry. Reads are corruption-tolerant: an entry that
// fails to open, parse, or match its stamped version and key is treated as
// a miss and recomputed (and overwritten by the following Put).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"flywheel/internal/sim"
)

// schemaVersion is the on-disk format version: the entry JSON shape and
// the addressing scheme. Bump on incompatible layout changes.
// v2 added the per-entry payload checksum (entryFile.Sum).
const schemaVersion = 2

// Version is the combined stamp written into every entry and folded into
// every address: store schema + simulator model version.
func Version() string {
	return fmt.Sprintf("s%d-m%d", schemaVersion, sim.ModelVersion)
}

// entryFile is the persisted JSON document.
type entryFile struct {
	// Version and Key are re-checked on read: an entry whose stamp does
	// not match the address it was found under is ignored.
	Version string `json:"version"`
	Key     string `json:"key"`
	// Sum is sha256(version "\n" key "\n" result-bytes): an end-to-end
	// integrity check over the payload. The address only authenticates
	// (version, key); without Sum, a flipped bit inside the result JSON
	// would parse cleanly and serve a silently wrong number forever.
	Sum string `json:"sum"`
	// Result stays raw so the checksum is verified over the exact stored
	// bytes, immune to re-marshaling drift.
	Result json.RawMessage `json:"result"`
}

// entrySum computes the integrity checksum an entry must carry.
func entrySum(version, key string, result []byte) string {
	h := sha256.New()
	h.Write([]byte(version))
	h.Write([]byte{'\n'})
	h.Write([]byte(key))
	h.Write([]byte{'\n'})
	h.Write(result)
	return hex.EncodeToString(h.Sum(nil))
}

// Stats counts store traffic since Open.
type Stats struct {
	// Hits / Misses count Get outcomes; BadEntries counts reads that found
	// a file but rejected it (corrupt, wrong version, wrong key) — those
	// are also misses. Puts counts successful writes.
	Hits       uint64
	Misses     uint64
	BadEntries uint64
	Puts       uint64
}

// Store is an on-disk result cache. It is safe for concurrent use within a
// process, and safe across processes sharing one directory: entries are
// immutable once renamed into place, and concurrent Puts of the same key
// write byte-identical content.
type Store struct {
	dir     string
	version string

	mu    sync.Mutex
	stats Stats

	manifestMu sync.Mutex // serializes quarantine-manifest appends
}

// ShardDir returns the store root for one worker of a sharded cluster:
// <root>/shard-<n>. A labd worker opened over a shard directory owns it
// exclusively — its result entries and its trace-cache spill ("traces")
// both live under it, so N workers can share one filesystem without ever
// contending on a file. The coordinator's consistent hashing keeps a given
// job key on the same shard across runs, so each shard's store stays as
// warm as a single-process store would.
func ShardDir(root string, shard int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", shard))
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, version: Version()}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path returns the entry file path for a key.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(s.version + "\n" + key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, s.version, name[:2], name+".json")
}

// Get returns the stored result for key, if a valid entry exists.
func (s *Store) Get(key string) (sim.Result, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		return sim.Result{}, false
	}
	res, err := decodeEntry(data, s.version, key)
	if err != nil {
		s.count(func(st *Stats) { st.Misses++; st.BadEntries++ })
		return sim.Result{}, false
	}
	s.count(func(st *Stats) { st.Hits++ })
	return res, true
}

// decodeEntry validates one entry file body against the version and key
// it was addressed by — parse, stamp match, checksum, payload decode —
// and returns the result or the first reason it cannot be trusted.
func decodeEntry(data []byte, version, key string) (sim.Result, error) {
	var e entryFile
	if err := json.Unmarshal(data, &e); err != nil {
		return sim.Result{}, fmt.Errorf("unparseable: %w", err)
	}
	if e.Version != version {
		return sim.Result{}, fmt.Errorf("version %q, want %q", e.Version, version)
	}
	if e.Key != key {
		return sim.Result{}, fmt.Errorf("stamped for another key")
	}
	if e.Sum != entrySum(version, key, e.Result) {
		return sim.Result{}, fmt.Errorf("checksum mismatch")
	}
	var res sim.Result
	if err := json.Unmarshal(e.Result, &res); err != nil {
		return sim.Result{}, fmt.Errorf("bad result payload: %w", err)
	}
	return res, nil
}

// Put persists the result for key atomically. An existing entry is
// replaced; a crash mid-write leaves the old entry (or none) intact.
func (s *Store) Put(key string, res sim.Result) error {
	raw, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: encode %q: %w", key, err)
	}
	data, err := json.Marshal(entryFile{
		Version: s.version, Key: key,
		Sum: entrySum(s.version, key, raw), Result: raw,
	})
	if err != nil {
		return fmt.Errorf("store: encode %q: %w", key, err)
	}
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %q: %w", key, firstErr(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.count(func(st *Stats) { st.Puts++ })
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Size walks the store and reports the number of entry files for the
// current version and their total bytes. Entries stamped with other
// versions are not counted (they are unreachable anyway).
func (s *Store) Size() (entries int, bytes int64) {
	root := filepath.Join(s.dir, s.version)
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return nil
		}
		if info, err := d.Info(); err == nil {
			entries++
			bytes += info.Size()
		}
		return nil
	})
	return entries, bytes
}
