package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flywheel/internal/cacti"
	"flywheel/internal/sim"
)

func testResult(t int64) sim.Result {
	return sim.Result{
		Config: sim.RunConfig{Workload: "w", Arch: sim.ArchFlywheel, Node: cacti.Node130,
			FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: 300_000},
		TimePS: t, Cycles: 123, Retired: 456, IPC: 1.2345678901234567,
		EnergyPJ: 9.87654321e6, PowerW: 3.25, LeakageFrac: 0.125,
		ECResidency: 0.75, Divergences: 3,
		Mispredicts: 17, BranchAccuracy: 0.96875,
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := `wl="gz|ip"|arch=1|node=0.13|fe=50|be=50|n=300000|fes=0|pws=false`
	want := testResult(1000)
	if _, ok := s.Get(key); ok {
		t.Fatal("Get on an empty store hit")
	}
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if got != want {
		t.Fatalf("round trip changed the result:\n got %+v\nwant %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.BadEntries != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}
	if n, b := s.Size(); n != 1 || b <= 0 {
		t.Fatalf("Size() = %d entries, %d bytes; want 1 entry with content", n, b)
	}
}

// TestSharedAcrossOpens: a second Open over the same directory sees the
// first one's entries — the cross-process persistence contract.
func TestSharedAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k", testResult(7)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("k")
	if !ok || got.TimePS != 7 {
		t.Fatalf("second open: got %+v ok=%t, want the persisted entry", got, ok)
	}
}

// TestCorruptEntryIsIgnored: truncated or garbage entry files — what a
// crash mid-write would leave if writes were not atomic, or disk
// corruption — read as misses, and a recompute's Put repairs them.
func TestCorruptEntryIsIgnored(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "k"
	if err := s.Put(key, testResult(1)); err != nil {
		t.Fatal(err)
	}
	path := s.path(key)

	for _, corrupt := range [][]byte{
		nil,                     // zero-length file
		[]byte("{\"version\":"), // truncated JSON
		[]byte("not json at all"),
	} {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Fatalf("corrupt entry %q served as a hit", corrupt)
		}
		// Recompute path: Put repairs the entry in place.
		if err := s.Put(key, testResult(2)); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get(key); !ok || got.TimePS != 2 {
			t.Fatalf("repair after corruption failed: %+v ok=%t", got, ok)
		}
	}
	if st := s.Stats(); st.BadEntries != 3 {
		t.Fatalf("BadEntries = %d, want 3", st.BadEntries)
	}
}

// TestVersionMismatchIsIgnored: an entry stamped with a different version
// must read as a miss even if it sits at the current address (defense in
// depth — normally the address itself changes with the version).
func TestVersionMismatchIsIgnored(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", testResult(1)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.path("k"))
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(data), Version(), "s0-m0", 1)
	if doctored == string(data) {
		t.Fatalf("entry does not embed the version stamp: %s", data)
	}
	if err := os.WriteFile(s.path("k"), []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("entry with a stale version stamp served as a hit")
	}
}

// TestVersionChangesAddress: two stores over one directory with different
// versions never see each other's entries — bumping sim.ModelVersion
// orphans the old universe wholesale.
func TestVersionChangesAddress(t *testing.T) {
	dir := t.TempDir()
	cur, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := &Store{dir: dir, version: "s0-m0"}
	if err := old.Put("k", testResult(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Get("k"); ok {
		t.Fatal("current-version store read an old-version entry")
	}
	if err := cur.Put("k", testResult(2)); err != nil {
		t.Fatal(err)
	}
	if got, ok := old.Get("k"); !ok || got.TimePS != 1 {
		t.Fatalf("old-version entry clobbered: %+v ok=%t", got, ok)
	}
	if n, _ := cur.Size(); n != 1 {
		t.Fatalf("Size() counts foreign versions: %d, want 1", n)
	}
}

// TestFrontendModelVersionInvalidatesStore pins that the pluggable-frontend
// change bumped sim.ModelVersion to 4: results now carry frontend
// observables and a (predictor, prefetcher) identity that version-3 entries
// lack, so the whole pre-frontend on-disk universe must be unreachable.
func TestFrontendModelVersionInvalidatesStore(t *testing.T) {
	if sim.ModelVersion != 4 {
		t.Fatalf("sim.ModelVersion = %d; the frontend refactor shipped as version 4 — bump this test (and make sure the bump was intentional)", sim.ModelVersion)
	}
	dir := t.TempDir()
	prev := &Store{dir: dir, version: "s2-m3"} // the pre-frontend stamp
	if err := prev.Put("k", testResult(1)); err != nil {
		t.Fatal(err)
	}
	cur, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Get("k"); ok {
		t.Fatal("a pre-frontend (model v3) entry served as a hit under model v4")
	}
}

// TestKeyMismatchIsIgnored: an entry whose stamped key does not match the
// requested key (hash collision, tampering) is rejected.
func TestKeyMismatchIsIgnored(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", testResult(1)); err != nil {
		t.Fatal(err)
	}
	// Copy a's entry file to b's address.
	data, err := os.ReadFile(s.path("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.path("b")), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("b"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("entry stamped for key a served for key b")
	}
}

// TestNoTempFilesLeftBehind: every Put leaves exactly the entry files —
// the temp file is renamed away on success.
func TestNoTempFilesLeftBehind(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(strings.Repeat("k", i+1), testResult(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, "put-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
	if n, _ := s.Size(); n != 10 {
		t.Fatalf("Size() = %d, want 10", n)
	}
}
