package labd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// DefaultMaxResumes is how many times one Sweep re-requests the missing
// suffix of a truncated stream before giving up.
const DefaultMaxResumes = 3

// Client submits batches to a running labd service. Its Sweep mirrors
// lab.Run's contract: results come back in job order, and if any job
// failed the error of the lowest-indexed failing job is returned alongside
// the batch.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Sweeps can simulate for
	// a long time on a cold store; configure a timeout only via context
	// or a transport that tolerates streaming.
	HTTPClient *http.Client
	// MaxResumes bounds how many times one Sweep resumes after a broken
	// stream: the validated prefix is kept and only the missing suffix is
	// re-requested (the server's cache makes the overlap free). Zero uses
	// DefaultMaxResumes; negative disables resumption.
	MaxResumes int

	resumes atomic.Uint64
}

// Resumes reports how many stream resumptions this client has performed.
func (c *Client) Resumes() uint64 { return c.resumes.Load() }

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpc() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Sweep submits jobs and decodes the NDJSON stream. The returned slice is
// always len(jobs) long and in job order; like lab.Run, a failing job
// leaves its zero Result in place and the lowest-indexed failure becomes
// the returned error.
func (c *Client) Sweep(req SweepRequest) ([]SweepLine, error) {
	return c.SweepContext(context.Background(), req)
}

// SweepContext is Sweep with cancellation: ending the context aborts the
// request and the stream read; the service skips the batch's unstarted
// jobs.
//
// A stream that dies mid-flight (connection cut, truncated NDJSON, a
// line chopped mid-JSON) does not forfeit the results already received:
// the client checkpoints the validated prefix and re-requests only the
// missing suffix, up to MaxResumes times. Resumed lines are verified
// against the jobs they claim to answer (key match) and re-indexed into
// the caller's job order, so a confused server cannot misattribute
// results. Protocol violations — out-of-order indexes, overruns, non-200
// replies — stay terminal: they mean the server is wrong, not the wire.
func (c *Client) SweepContext(ctx context.Context, req SweepRequest) ([]SweepLine, error) {
	maxResumes := c.MaxResumes
	if maxResumes == 0 {
		maxResumes = DefaultMaxResumes
	}
	if maxResumes < 0 {
		maxResumes = 0
	}
	all := make([]SweepLine, 0, len(req.Jobs))
	for resume := 0; ; resume++ {
		remaining := req.Jobs[len(all):]
		lines, err := c.sweepOnce(ctx, SweepRequest{Jobs: remaining, Workers: req.Workers})
		if resume > 0 {
			// The suffix answers a fresh request: its lines must name the
			// jobs we are still missing, in their order.
			for i := range lines {
				if i >= len(remaining) || lines[i].Key != remaining[i].Key() {
					return nil, fmt.Errorf("labd client: resume misaligned: line %d answers key %q", i, lines[i].Key)
				}
			}
		}
		for _, line := range lines {
			line.Index = len(all)
			all = append(all, line)
		}
		switch {
		case len(all) == len(req.Jobs) && (err == nil || errors.Is(err, errResumable)):
			// Complete — a stream error after the last line is harmless.
			return all, firstJobError(all)
		case err == nil:
			return nil, fmt.Errorf("labd client: stream truncated: %d of %d results", len(all), len(req.Jobs))
		case !errors.Is(err, errResumable), resume >= maxResumes, ctx.Err() != nil:
			return nil, err
		}
		c.resumes.Add(1)
		// Brief pause so a worker mid-restart is not hammered.
		t := time.NewTimer(time.Duration(resume+1) * 50 * time.Millisecond)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, err
		}
	}
}

// sweepOnce performs one POST /v1/sweep round trip, returning the
// validated prefix of the reply stream. Errors wrapping errResumable mean
// the prefix is trustworthy and the rest may be re-requested; anything
// else is terminal.
func (c *Client) sweepOnce(ctx context.Context, req SweepRequest) ([]SweepLine, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("labd client: encode request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("labd client: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc().Do(hreq)
	if err != nil {
		// Connection-level failure: nothing received, everything resumable.
		return nil, fmt.Errorf("labd client: %w%w", errResumable, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("labd client: sweep: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		if resp.StatusCode == http.StatusServiceUnavailable {
			err = fmt.Errorf("%w%w", errBackpressure, err)
		}
		return nil, err
	}
	return decodeSweepStream(resp.Body, len(req.Jobs))
}

// firstJobError mirrors lab.Run's contract: the lowest-indexed failing
// job's error is returned alongside the full batch.
func firstJobError(lines []SweepLine) error {
	for _, line := range lines {
		if line.Error != "" {
			return errors.New(line.Error)
		}
	}
	return nil
}

// errBackpressure tags a 503 reply so callers can distinguish "retry
// later" from a hard failure.
var errBackpressure = errors.New("")

// IsBackpressure reports whether err is a service 503 — the cluster or
// service shed the request and the client should honor Retry-After.
func IsBackpressure(err error) bool { return errors.Is(err, errBackpressure) }

// errResumable tags stream failures where the lines already decoded are
// trustworthy and the remainder may be re-requested: the wire died, not
// the protocol.
var errResumable = errors.New("")

// decodeSweepStream validates and collects the NDJSON response body. The
// protocol invariants it enforces — strictly increasing indexes starting
// at zero (no duplicates, no reordering), exactly n lines, every line
// under the scanner cap — turn any server or transport corruption into an
// error instead of silently misattributed results. Blank lines are
// tolerated (keep-alive padding).
//
// On failure the validated prefix is returned alongside the error.
// Failures that look like a dying connection — a read error, a clean but
// short stream, a final line chopped mid-JSON — wrap errResumable;
// protocol violations (reordering, overruns) do not.
func decodeSweepStream(body io.Reader, n int) ([]SweepLine, error) {
	lines := make([]SweepLine, 0, n)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // results with full stats are large
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line SweepLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			// A chopped final line is truncation wearing JSON clothes.
			return lines, fmt.Errorf("labd client: bad line %d: %w%w", len(lines), errResumable, err)
		}
		if line.Index != len(lines) {
			return lines, fmt.Errorf("labd client: line %d arrived out of order (index %d)", len(lines), line.Index)
		}
		if len(lines) == n {
			return lines, fmt.Errorf("labd client: stream overran: more than %d results", n)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return lines, fmt.Errorf("labd client: stream: %w%w", errResumable, err)
	}
	if len(lines) != n {
		return lines, fmt.Errorf("labd client: stream truncated: %d of %d results%w", len(lines), n, errResumable)
	}
	return lines, nil
}

// Stats fetches the service counters.
func (c *Client) Stats() (StatsReply, error) {
	return c.StatsContext(context.Background())
}

// StatsContext is Stats with cancellation.
func (c *Client) StatsContext(ctx context.Context) (StatsReply, error) {
	var reply StatsReply
	err := c.getJSON(ctx, "/v1/stats", &reply)
	return reply, err
}

// Health probes the service's liveness endpoint.
func (c *Client) Health(ctx context.Context) (HealthReply, error) {
	var reply HealthReply
	err := c.getJSON(ctx, "/v1/health", &reply)
	return reply, err
}

// Scrub asks the service to audit its disk tier and returns the report.
func (c *Client) Scrub(ctx context.Context) (ScrubReply, error) {
	var reply ScrubReply
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/scrub", nil)
	if err != nil {
		return reply, fmt.Errorf("labd client: %w", err)
	}
	resp, err := c.httpc().Do(hreq)
	if err != nil {
		return reply, fmt.Errorf("labd client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return reply, fmt.Errorf("labd client: scrub: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return reply, fmt.Errorf("labd client: decode scrub: %w", err)
	}
	return reply, nil
}

func (c *Client) getJSON(ctx context.Context, path string, dst any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return fmt.Errorf("labd client: %w", err)
	}
	resp, err := c.httpc().Do(hreq)
	if err != nil {
		return fmt.Errorf("labd client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("labd client: %s: %s", strings.TrimPrefix(path, "/v1/"), resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		return fmt.Errorf("labd client: decode %s: %w", strings.TrimPrefix(path, "/v1/"), err)
	}
	return nil
}

// Frontier runs an explore-style Pareto query; params mirror the explore
// CLI flags (nil or empty values use the server defaults).
func (c *Client) Frontier(params map[string]string) (FrontierReply, error) {
	return c.FrontierContext(context.Background(), params)
}

// FrontierContext is Frontier with cancellation.
func (c *Client) FrontierContext(ctx context.Context, params map[string]string) (FrontierReply, error) {
	var reply FrontierReply
	u := c.BaseURL + "/v1/frontier"
	if len(params) > 0 {
		q := url.Values{}
		for k, v := range params {
			q.Set(k, v)
		}
		u += "?" + q.Encode()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return reply, fmt.Errorf("labd client: %w", err)
	}
	resp, err := c.httpc().Do(hreq)
	if err != nil {
		return reply, fmt.Errorf("labd client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return reply, fmt.Errorf("labd client: frontier: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return reply, fmt.Errorf("labd client: decode frontier: %w", err)
	}
	return reply, nil
}
