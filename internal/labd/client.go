package labd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Client submits batches to a running labd service. Its Sweep mirrors
// lab.Run's contract: results come back in job order, and if any job
// failed the error of the lowest-indexed failing job is returned alongside
// the batch.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Sweeps can simulate for
	// a long time on a cold store; configure a timeout only via context
	// or a transport that tolerates streaming.
	HTTPClient *http.Client
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpc() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Sweep submits jobs and decodes the NDJSON stream. The returned slice is
// always len(jobs) long and in job order; like lab.Run, a failing job
// leaves its zero Result in place and the lowest-indexed failure becomes
// the returned error.
func (c *Client) Sweep(req SweepRequest) ([]SweepLine, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("labd client: encode request: %w", err)
	}
	resp, err := c.httpc().Post(c.BaseURL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("labd client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("labd client: sweep: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}

	lines := make([]SweepLine, 0, len(req.Jobs))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // results with full stats are large
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line SweepLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("labd client: bad line %d: %w", len(lines), err)
		}
		if line.Index != len(lines) {
			return nil, fmt.Errorf("labd client: line %d arrived out of order (index %d)", len(lines), line.Index)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("labd client: stream: %w", err)
	}
	if len(lines) != len(req.Jobs) {
		return nil, fmt.Errorf("labd client: stream truncated: %d of %d results", len(lines), len(req.Jobs))
	}
	for _, line := range lines {
		if line.Error != "" {
			return lines, errors.New(line.Error)
		}
	}
	return lines, nil
}

// Stats fetches the service counters.
func (c *Client) Stats() (StatsReply, error) {
	var reply StatsReply
	resp, err := c.httpc().Get(c.BaseURL + "/v1/stats")
	if err != nil {
		return reply, fmt.Errorf("labd client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return reply, fmt.Errorf("labd client: stats: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return reply, fmt.Errorf("labd client: decode stats: %w", err)
	}
	return reply, nil
}

// Frontier runs an explore-style Pareto query; params mirror the explore
// CLI flags (nil or empty values use the server defaults).
func (c *Client) Frontier(params map[string]string) (FrontierReply, error) {
	var reply FrontierReply
	u := c.BaseURL + "/v1/frontier"
	if len(params) > 0 {
		q := url.Values{}
		for k, v := range params {
			q.Set(k, v)
		}
		u += "?" + q.Encode()
	}
	resp, err := c.httpc().Get(u)
	if err != nil {
		return reply, fmt.Errorf("labd client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return reply, fmt.Errorf("labd client: frontier: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return reply, fmt.Errorf("labd client: decode frontier: %w", err)
	}
	return reply, nil
}
