package labd_test

// Stream-robustness table tests for Client.Sweep: the NDJSON decoder must
// reject every protocol violation a broken server or transport can
// produce — duplicate or reordered index lines, truncated streams, a
// single line overflowing the 64 MiB scanner cap — and tolerate the one
// benign irregularity (blank lines).

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flywheel/internal/lab"
	"flywheel/internal/labd"
)

// cannedServer replies to every sweep with exactly body.
func cannedServer(t *testing.T, body string) *labd.Client {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	cl := labd.NewClient(ts.URL)
	// A canned server replays the same body on a resume, which would
	// misalign keys; these cases exercise the decoder, not resumption.
	cl.MaxResumes = -1
	return cl
}

func TestSweepStreamRobustness(t *testing.T) {
	twoJobs := labd.SweepRequest{Jobs: []lab.Job{
		{Workload: "a", MaxInstructions: 1000},
		{Workload: "b", MaxInstructions: 1000},
	}}
	line0 := `{"index":0,"key":"k0","result":{}}`
	line1 := `{"index":1,"key":"k1","result":{}}`

	cases := []struct {
		name    string
		body    string
		wantErr string // substring; empty = success expected
	}{
		{"well-formed", line0 + "\n" + line1 + "\n", ""},
		{"empty lines tolerated", "\n" + line0 + "\n   \n" + line1 + "\n\n", ""},
		{"duplicate index", line0 + "\n" + line0 + "\n", "out of order"},
		{"out of order", line1 + "\n" + line0 + "\n", "out of order"},
		{"truncated after one result", line0 + "\n", "truncated"},
		{"empty stream", "", "truncated"},
		{"extra trailing line", line0 + "\n" + line1 + "\n" + `{"index":2,"key":"k2","result":{}}` + "\n", "overran"},
		{"garbage line", line0 + "\nnot json\n", "bad line"},
		{"oversized single line at the 64 MiB cap",
			`{"index":0,"key":"` + strings.Repeat("a", 64<<20) + `"}` + "\n", "stream"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			client := cannedServer(t, tc.body)
			lines, err := client.Sweep(twoJobs)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if len(lines) != 2 || lines[0].Key != "k0" || lines[1].Key != "k1" {
					t.Fatalf("bad lines: %+v", lines)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestSweepJobErrorStillReturnsLines: a job-level error line yields both
// the full line slice and the error — the fabric relies on this to tell
// terminal job failures from retryable transport failures.
func TestSweepJobErrorStillReturnsLines(t *testing.T) {
	body := `{"index":0,"key":"k0","result":{}}` + "\n" +
		`{"index":1,"key":"k1","error":"boom"}` + "\n"
	client := cannedServer(t, body)
	lines, err := client.Sweep(labd.SweepRequest{Jobs: []lab.Job{{Workload: "a"}, {Workload: "b"}}})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want the job error", err)
	}
	if len(lines) != 2 || lines[1].Error != "boom" {
		t.Fatalf("lines = %+v", lines)
	}
}

// TestSweepBackpressureTagged: a 503 reply is recognizable via
// IsBackpressure so load-shedding is distinguishable from hard failure.
func TestSweepBackpressureTagged(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shedding load", http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	_, err := labd.NewClient(ts.URL).Sweep(labd.SweepRequest{Jobs: []lab.Job{{Workload: "a"}}})
	if !labd.IsBackpressure(err) {
		t.Fatalf("503 not tagged as backpressure: %v", err)
	}
	_, err = cannedServer(t, "").Sweep(labd.SweepRequest{Jobs: []lab.Job{{Workload: "a"}}})
	if labd.IsBackpressure(err) {
		t.Fatalf("non-503 tagged as backpressure: %v", err)
	}
}
