// Package labd implements the lab batch service: a long-running HTTP/JSON
// front for the two-tier run cache. Where each CLI invocation re-simulates
// from a cold process, a resident labd keeps the memory tier warm and the
// disk tier open, so the paper's whole cross-product of runs is computed
// exactly once across every client, forever.
//
// Protocol (all under /v1):
//
//	POST /v1/sweep     body {"jobs":[Job...], "workers":N}
//	                   → NDJSON, one line per job IN JOB ORDER:
//	                     {"index":i,"key":"...","result":{...}} or
//	                     {"index":i,"key":"...","error":"..."}
//	                   Lines stream as results complete; duplicate jobs —
//	                   within the batch, across batches, across clients —
//	                   simulate once.
//	GET  /v1/frontier  explore-style Pareto query; parameters mirror the
//	                   explore CLI flags (ilp, entropy, fp, mem, stride,
//	                   rr, code, period, chase, stridebytes, seed, passes,
//	                   arch, predictor, prefetcher, fe, be, node, n,
//	                   tier, margin, audit, auditseed, sample_period,
//	                   window, sample_warmup, sample_seed). tier=analytic
//	                   screens the grid with a calibrated closed-form
//	                   model and simulates only cells near the predicted
//	                   frontier; tier=auto picks by grid size; tier=sampled
//	                   runs every cell with sampled execution (periodic
//	                   detailed windows over fast-forwarded warming, with
//	                   confidence intervals). sample_period with
//	                   tier=analytic/auto inserts the sampled middle tier
//	                   and escalates only CI-ambiguous cells to exact. The
//	                   calibration runs flow through the shared cache, so
//	                   they persist in the store like any sweep job.
//	GET  /v1/stats     cache hit/miss/in-flight counters, store size,
//	                   uptime and the store version stamp.
//	GET  /v1/health    liveness probe: {"status":"ok",...}. Coordinators
//	                   (internal/fabric) use it to register workers.
//	POST /v1/scrub     audit the disk tier: verify every store entry and
//	                   trace spill file, quarantine corrupt ones, return
//	                   the report. Safe while serving.
//
// Request lifecycle: every sweep job is gated on the request context — a
// client that disconnects mid-stream stops consuming the service the
// moment its running jobs finish; unstarted jobs never claim a semaphore
// slot or a simulation. Undeliverable replies are counted (stats
// dropped_replies) instead of being silently discarded.
package labd

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"flywheel/internal/analytic"
	"flywheel/internal/explore"
	"flywheel/internal/lab"
	"flywheel/internal/lab/store"
	"flywheel/internal/sample"
	"flywheel/internal/sim"
	"flywheel/internal/trace"
)

// MaxBatch bounds one sweep request; bigger job lists should be split by
// the client (the server's cache makes the split free).
const MaxBatch = 65536

// SweepRequest is the /v1/sweep body.
type SweepRequest struct {
	Jobs []lab.Job `json:"jobs"`
	// Workers caps this request's simulation concurrency; zero or
	// negative uses GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// SweepLine is one NDJSON response line: the i-th job's result or error.
type SweepLine struct {
	Index  int         `json:"index"`
	Key    string      `json:"key"`
	Result *sim.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// StoreStats reports the persistent tier in /v1/stats.
type StoreStats struct {
	Dir        string `json:"dir"`
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	BadEntries uint64 `json:"bad_entries"`
	Puts       uint64 `json:"puts"`
}

// StatsReply is the /v1/stats body.
type StatsReply struct {
	Cache lab.Stats   `json:"cache"`
	Store *StoreStats `json:"store,omitempty"`
	// TraceCache and SnapshotCache report the simulator-level caches the
	// service shares across every request: the record-once/replay-many
	// dynamic-trace cache and the warm-snapshot cache.
	TraceCache    trace.Stats           `json:"trace_cache"`
	SnapshotCache sim.SnapshotCacheInfo `json:"snapshot_cache"`
	Version       string                `json:"version"`
	UptimeSeconds float64               `json:"uptime_seconds"`
	// DroppedReplies counts responses the service could not deliver — the
	// client vanished mid-reply or mid-NDJSON-stream. Before this counter
	// existed those failures were silently discarded.
	DroppedReplies uint64 `json:"dropped_replies"`
	// CanceledJobs counts sweep jobs skipped because their request's
	// context ended before they started simulating.
	CanceledJobs uint64 `json:"canceled_jobs"`
	// AnalyticCells and ConfirmedCells account the two-tier frontier
	// queries served so far: grid cells screened by the analytic model
	// versus cells escalated to the cycle-accurate simulator. Their ratio
	// is the service's observed screening leverage.
	AnalyticCells  uint64 `json:"analytic_cells"`
	ConfirmedCells uint64 `json:"confirmed_cells"`
	// SampledCells counts grid cells evaluated with sampled execution
	// (tier=sampled grids and the three-tier middle stage alike).
	SampledCells uint64 `json:"sampled_cells"`
	// Scrubs counts /v1/scrub passes served; QuarantinedFiles totals the
	// corrupt files those passes moved aside.
	Scrubs           uint64 `json:"scrubs"`
	QuarantinedFiles uint64 `json:"quarantined_files"`
	// Frontend aggregates the frontend observables of every sweep result
	// this worker delivered (cache and store hits included — the counters
	// describe delivered results, not simulation effort). A fabric
	// coordinator sums them cluster-wide.
	Frontend FrontendStats `json:"frontend"`
}

// FrontendStats totals the branch-predictor and prefetcher activity across
// delivered sweep results.
type FrontendStats struct {
	CondBranches   uint64 `json:"cond_branches"`
	Mispredicts    uint64 `json:"mispredicts"`
	PrefetchIssued uint64 `json:"prefetch_issued"`
	PrefetchUseful uint64 `json:"prefetch_useful"`
	PrefetchLate   uint64 `json:"prefetch_late"`
}

// Add accumulates another stats block (used by the fabric coordinator's
// cluster-wide sum).
func (f *FrontendStats) Add(o FrontendStats) {
	f.CondBranches += o.CondBranches
	f.Mispredicts += o.Mispredicts
	f.PrefetchIssued += o.PrefetchIssued
	f.PrefetchUseful += o.PrefetchUseful
	f.PrefetchLate += o.PrefetchLate
}

// ScrubReply is the /v1/scrub body: one worker's store-integrity report.
// Dir is empty when the worker runs memory-only (nothing to scrub).
type ScrubReply struct {
	store.ScrubReport
	Dir     string `json:"dir,omitempty"`
	Version string `json:"version"`
}

// HealthReply is the /v1/health body. Coordinators poll it to register and
// monitor workers.
type HealthReply struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// FrontierPoint is one Pareto-optimal configuration in /v1/frontier.
type FrontierPoint struct {
	Profile     string  `json:"profile"`
	Arch        string  `json:"arch"`
	Node        float64 `json:"node"`
	Predictor   string  `json:"predictor"`
	Prefetcher  string  `json:"prefetcher"`
	FEBoostPct  int     `json:"fe_pct"`
	BEBoostPct  int     `json:"be_pct"`
	Speedup     float64 `json:"speedup"`
	EnergyRatio float64 `json:"energy_ratio"`
	ECResidency float64 `json:"ec_residency"`
	IPC         float64 `json:"ipc"`
	TimePS      int64   `json:"time_ps"`
	BranchAcc   float64 `json:"branch_acc"`
	L2HitRate   float64 `json:"l2_hit"`
	PfAccuracy  float64 `json:"pf_acc"`
	PfCoverage  float64 `json:"pf_cov"`
	// Sampled marks points whose metrics are sampled-execution estimates;
	// the CI fields carry their 95% relative confidence intervals.
	Sampled       bool    `json:"sampled,omitempty"`
	IPCRelCI95    float64 `json:"ipc_rel_ci95,omitempty"`
	EnergyRelCI95 float64 `json:"energy_rel_ci95,omitempty"`
}

// FrontierReply is the /v1/frontier body. Tiered queries (tier=analytic,
// or tier=auto resolving to analytic) additionally report how the grid
// split between the model and the simulator and how well the model
// predicted the cells that were confirmed.
type FrontierReply struct {
	GridPoints int             `json:"grid_points"`
	Tier       string          `json:"tier"`
	Frontier   []FrontierPoint `json:"frontier"`

	// ScreenedCells + ConfirmedCells == GridPoints for tiered queries;
	// both are zero for exact ones.
	ScreenedCells  int `json:"screened_cells,omitempty"`
	ConfirmedCells int `json:"confirmed_cells,omitempty"`
	// Margin is the frontier slack the screen actually used (relevant when
	// the server derived it from the model's training error).
	Margin float64 `json:"margin,omitempty"`
	// PredictionErr compares the model against the simulator on the
	// confirmed cells — measured, not in-sample, error.
	PredictionErr *analytic.Summary `json:"prediction_err,omitempty"`

	// SampledCells / EscalatedCells describe the sampled middle tier of a
	// three-tier query: cells evaluated with sampled execution, and the
	// subset whose confidence interval forced an exact re-run. SampledErr
	// compares the sampled estimates against exact on the escalated cells.
	SampledCells   int               `json:"sampled_cells,omitempty"`
	EscalatedCells int               `json:"escalated_cells,omitempty"`
	SampledErr     *analytic.Summary `json:"sampled_err,omitempty"`
}

// Server fronts one shared cache. Every request — sweep or frontier, any
// client — funnels through the same memory tier and (if present) the same
// disk store, so results are computed once service-wide.
type Server struct {
	cache *lab.Cache
	start time.Time
	// sem bounds simulation concurrency service-wide at GOMAXPROCS, so
	// neither one huge batch nor many concurrent requests can oversubscribe
	// the machine.
	sem chan struct{}

	logf func(format string, args ...any)

	droppedReplies atomic.Uint64
	canceledJobs   atomic.Uint64
	analyticCells  atomic.Uint64
	confirmedCells atomic.Uint64
	sampledCells   atomic.Uint64
	scrubs         atomic.Uint64
	quarantined    atomic.Uint64

	// Frontend observable totals over delivered sweep results.
	condBranches atomic.Uint64
	mispredicts  atomic.Uint64
	pfIssued     atomic.Uint64
	pfUseful     atomic.Uint64
	pfLate       atomic.Uint64

	// scrubMu serializes scrub passes: concurrent scrubs are safe but
	// would double-count each other's quarantine races.
	scrubMu sync.Mutex
}

// NewServer wraps the cache in a service.
func NewServer(cache *lab.Cache) *Server {
	return &Server{
		cache: cache,
		start: time.Now(),
		sem:   make(chan struct{}, runtime.GOMAXPROCS(0)),
		logf:  log.Printf,
	}
}

// SetLogf redirects the service's operational log lines (dropped replies,
// aborted streams); the default is log.Printf. A nil f silences them.
func (s *Server) SetLogf(f func(format string, args ...any)) {
	if f == nil {
		f = func(string, ...any) {}
	}
	s.logf = f
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/frontier", s.handleFrontier)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	mux.HandleFunc("POST /v1/scrub", s.handleScrub)
	return mux
}

// Scrub audits the worker's disk tier — every store entry plus the trace
// spill directory that lives alongside it — quarantining anything corrupt
// so the next request for that key re-simulates instead of trusting bad
// bytes. Safe (and intended) to run while the worker serves traffic.
func (s *Server) Scrub() (ScrubReply, error) {
	reply := ScrubReply{Version: store.Version()}
	reply.Quarantined = []store.Quarantined{}
	st := s.cache.Store()
	if st == nil {
		return reply, nil // memory-only worker: nothing on disk to audit
	}
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	rep, err := st.Scrub(store.ScrubOptions{
		TraceDir:    filepath.Join(st.Dir(), "traces"),
		VerifyTrace: trace.VerifySpillFile,
	})
	if rep != nil {
		reply.ScrubReport = *rep
		if reply.Quarantined == nil {
			reply.Quarantined = []store.Quarantined{}
		}
	}
	reply.Dir = st.Dir()
	if err != nil {
		return reply, err
	}
	s.scrubs.Add(1)
	s.quarantined.Add(uint64(len(rep.Quarantined)))
	if n := len(rep.Quarantined); n > 0 {
		s.logf("labd: scrub quarantined %d corrupt files under %s", n, st.QuarantineDir())
	}
	return reply, nil
}

func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	reply, err := s.Scrub()
	if err != nil {
		http.Error(w, "labd: scrub: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, r, reply)
}

// maxSweepBody caps the request body so a pathological payload (few jobs,
// enormous strings) cannot buffer unbounded memory before MaxBatch applies.
const maxSweepBody = 64 << 20

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSweepBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "labd: bad sweep request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "labd: empty job list", http.StatusBadRequest)
		return
	}
	if len(req.Jobs) > MaxBatch {
		http.Error(w, fmt.Sprintf("labd: %d jobs exceeds the %d-job batch limit", len(req.Jobs), MaxBatch), http.StatusBadRequest)
		return
	}
	// The client's Workers value can only narrow the per-request
	// concurrency; the server-wide semaphore (GOMAXPROCS) is the hard cap
	// shared by all requests.
	workers := req.Workers
	if workers <= 0 || workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(req.Jobs) {
		workers = len(req.Jobs)
	}

	// Fan the batch across a bounded pool through the shared cache; each
	// job's outcome lands in its own single-slot channel so the writer can
	// stream strictly in job order while later jobs keep computing. The
	// request context gates every stage: a disconnected client's unstarted
	// jobs are skipped before they can claim a semaphore slot or a
	// simulation, so a canceled 65k-job batch stops consuming the
	// service-wide GOMAXPROCS budget almost immediately. Jobs that already
	// started simulating run to completion and land in the shared cache.
	ctx := r.Context()
	type outcome struct {
		res sim.Result
		err error
	}
	ready := make([]chan outcome, len(req.Jobs))
	reqSem := make(chan struct{}, workers)
	for i := range req.Jobs {
		ready[i] = make(chan outcome, 1)
		go func(i int) {
			select {
			case reqSem <- struct{}{}:
			case <-ctx.Done():
				s.canceledJobs.Add(1)
				ready[i] <- outcome{err: ctx.Err()}
				return
			}
			defer func() { <-reqSem }()
			select {
			case s.sem <- struct{}{}:
			case <-ctx.Done():
				s.canceledJobs.Add(1)
				ready[i] <- outcome{err: ctx.Err()}
				return
			}
			defer func() { <-s.sem }()
			res, err := s.cache.DoContext(ctx, req.Jobs[i])
			ready[i] <- outcome{res, err}
		}(i)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for i := range req.Jobs {
		var o outcome
		select {
		case o = <-ready[i]:
		case <-ctx.Done():
			s.droppedReplies.Add(1)
			s.logf("labd: sweep stream aborted at line %d/%d: %v", i, len(req.Jobs), ctx.Err())
			return
		}
		line := SweepLine{Index: i, Key: req.Jobs[i].Key()}
		if o.err != nil {
			line.Error = o.err.Error()
		} else {
			line.Result = &o.res
			s.condBranches.Add(o.res.CondBranches)
			s.mispredicts.Add(o.res.Mispredicts)
			s.pfIssued.Add(o.res.PrefetchIssued)
			s.pfUseful.Add(o.res.PrefetchUseful)
			s.pfLate.Add(o.res.PrefetchLate)
		}
		if err := enc.Encode(line); err != nil {
			// Client went away mid-stream; the cache keeps the finished work.
			s.droppedReplies.Add(1)
			s.logf("labd: sweep stream dropped at line %d/%d: %v", i, len(req.Jobs), err)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	axes := explore.DefaultAxes()
	q := r.URL.Query()
	get := func(name string, dst *string) {
		if v := q.Get(name); v != "" {
			*dst = v
		}
	}
	get("ilp", &axes.ILP)
	get("entropy", &axes.Entropy)
	get("fp", &axes.FPMix)
	get("mem", &axes.Mem)
	get("stride", &axes.Stride)
	get("rr", &axes.Reuse)
	get("code", &axes.Code)
	get("period", &axes.Period)
	get("chase", &axes.Chase)
	get("stridebytes", &axes.StrideBytes)
	get("arch", &axes.Arch)
	get("predictor", &axes.Predictor)
	get("prefetcher", &axes.Prefetcher)
	get("fe", &axes.FE)
	get("be", &axes.BE)
	get("node", &axes.Node)
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "labd: bad seed: "+err.Error(), http.StatusBadRequest)
			return
		}
		axes.Seed = seed
	}
	if v := q.Get("passes"); v != "" {
		passes, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "labd: bad passes: "+err.Error(), http.StatusBadRequest)
			return
		}
		axes.Passes = passes
	}
	if v := q.Get("n"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "labd: bad n: "+err.Error(), http.StatusBadRequest)
			return
		}
		axes.Instructions = n
	}

	tier := q.Get("tier")
	switch tier {
	case "", "exact", "sampled", "analytic", "auto":
	default:
		http.Error(w, fmt.Sprintf("labd: unknown tier %q (want exact, sampled, analytic or auto)", tier), http.StatusBadRequest)
		return
	}
	var sampling sim.Sampling
	for _, f := range []struct {
		name string
		dst  *uint64
	}{
		{"sample_period", &sampling.Period},
		{"window", &sampling.WindowInsts},
		{"sample_warmup", &sampling.WarmupInsts},
		{"sample_seed", &sampling.Seed},
	} {
		if v := q.Get(f.name); v != "" {
			u, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "labd: bad "+f.name+": "+err.Error(), http.StatusBadRequest)
				return
			}
			*f.dst = u
		}
	}
	if tier == "sampled" && sampling.Period == 0 {
		sampling.Period = sample.DefaultPeriod
	}
	sampling = sampling.Normalize()
	if err := sampling.Validate(); err != nil {
		http.Error(w, "labd: "+err.Error(), http.StatusBadRequest)
		return
	}
	topt := explore.TieredOptions{Audit: explore.DefaultAudit, AuditSeed: 1, Sampling: sampling}
	if v := q.Get("margin"); v != "" {
		m, err := strconv.ParseFloat(v, 64)
		if err != nil {
			http.Error(w, "labd: bad margin: "+err.Error(), http.StatusBadRequest)
			return
		}
		topt.Margin = m
	}
	if v := q.Get("audit"); v != "" {
		a, err := strconv.ParseFloat(v, 64)
		if err != nil {
			http.Error(w, "labd: bad audit: "+err.Error(), http.StatusBadRequest)
			return
		}
		topt.Audit = a
	}
	if v := q.Get("auditseed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "labd: bad auditseed: "+err.Error(), http.StatusBadRequest)
			return
		}
		topt.AuditSeed = seed
	}
	if tier == "analytic" || tier == "auto" {
		// The exact guard protects against queueing hours of simulation; a
		// screened grid costs nanoseconds per cell, so it can be far wider.
		axes.MaxPoints = 262_144
	}

	space, err := axes.Space()
	if err != nil {
		http.Error(w, "labd: "+err.Error(), http.StatusBadRequest)
		return
	}
	opt := explore.Options{Cache: s.cache}

	useAnalytic := tier == "analytic"
	if tier == "auto" {
		plan, err := explore.NewPlan(space)
		if err != nil {
			http.Error(w, "labd: "+err.Error(), http.StatusBadRequest)
			return
		}
		useAnalytic = plan.Cells() >= 4*explore.CalibrationConfig(space, opt).Cells()
	}
	if useAnalytic {
		model, err := analytic.Calibrate(explore.CalibrationConfig(space, opt))
		if err != nil {
			http.Error(w, "labd: "+err.Error(), http.StatusInternalServerError)
			return
		}
		topt.Options = opt
		rep, err := explore.ExploreTiered(space, model, topt)
		if err != nil {
			http.Error(w, "labd: "+err.Error(), http.StatusInternalServerError)
			return
		}
		s.analyticCells.Add(uint64(len(rep.Predicted) - len(rep.Confirmed)))
		s.confirmedCells.Add(uint64(len(rep.Confirmed)))
		s.sampledCells.Add(uint64(rep.SampledCells))
		reply := FrontierReply{
			GridPoints:     len(rep.Predicted),
			Tier:           "analytic",
			Frontier:       []FrontierPoint{},
			ScreenedCells:  len(rep.Predicted) - len(rep.Confirmed),
			ConfirmedCells: len(rep.Confirmed),
			Margin:         rep.Margin,
			PredictionErr:  &rep.Err,
		}
		if rep.SampledCells > 0 {
			reply.SampledCells = rep.SampledCells
			reply.EscalatedCells = rep.EscalatedCells
			reply.SampledErr = &rep.SampledErr
		}
		for _, p := range rep.Frontier() {
			reply.Frontier = append(reply.Frontier, frontierPoint(p))
		}
		s.writeJSON(w, r, reply)
		return
	}

	if tier == "sampled" {
		rep, err := explore.ExploreSampled(space, sampling, opt)
		if err != nil {
			http.Error(w, "labd: "+err.Error(), http.StatusInternalServerError)
			return
		}
		s.sampledCells.Add(uint64(len(rep.Points)))
		reply := FrontierReply{
			GridPoints: len(rep.Points), Tier: "sampled",
			Frontier: []FrontierPoint{}, SampledCells: len(rep.Points),
		}
		for _, p := range rep.Frontier() {
			reply.Frontier = append(reply.Frontier, frontierPoint(p))
		}
		s.writeJSON(w, r, reply)
		return
	}

	rep, err := explore.Explore(space, opt)
	if err != nil {
		http.Error(w, "labd: "+err.Error(), http.StatusInternalServerError)
		return
	}
	reply := FrontierReply{GridPoints: len(rep.Points), Tier: "exact", Frontier: []FrontierPoint{}}
	for _, p := range rep.Frontier() {
		reply.Frontier = append(reply.Frontier, frontierPoint(p))
	}
	s.writeJSON(w, r, reply)
}

// frontierPoint shapes one explore point for the wire.
func frontierPoint(p explore.Point) FrontierPoint {
	fp := FrontierPoint{
		Profile:     p.Profile.String(),
		Arch:        p.Arch.String(),
		Node:        float64(p.Node),
		Predictor:   p.Predictor,
		Prefetcher:  p.Prefetcher,
		FEBoostPct:  p.FEBoost,
		BEBoostPct:  p.BEBoost,
		Speedup:     p.Speedup,
		EnergyRatio: p.EnergyRatio,
		ECResidency: p.Result.ECResidency,
		IPC:         p.Result.IPC,
		TimePS:      p.Result.TimePS,
		BranchAcc:   p.Result.BranchAccuracy,
		L2HitRate:   p.Result.DemandL2HitRate,
		PfAccuracy:  p.Result.PrefetchAccuracy,
		PfCoverage:  p.Result.PrefetchCoverage,
	}
	if st := p.Result.Sampled; st != nil {
		fp.Sampled = true
		fp.IPCRelCI95 = st.IPCRelCI95
		fp.EnergyRelCI95 = st.EnergyRelCI95
	}
	return fp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reply := StatsReply{
		Cache:            s.cache.Stats(),
		TraceCache:       sim.TraceCacheStats(),
		SnapshotCache:    sim.SnapshotCacheInfoNow(),
		Version:          store.Version(),
		UptimeSeconds:    time.Since(s.start).Seconds(),
		DroppedReplies:   s.droppedReplies.Load(),
		CanceledJobs:     s.canceledJobs.Load(),
		AnalyticCells:    s.analyticCells.Load(),
		ConfirmedCells:   s.confirmedCells.Load(),
		SampledCells:     s.sampledCells.Load(),
		Scrubs:           s.scrubs.Load(),
		QuarantinedFiles: s.quarantined.Load(),
		Frontend: FrontendStats{
			CondBranches:   s.condBranches.Load(),
			Mispredicts:    s.mispredicts.Load(),
			PrefetchIssued: s.pfIssued.Load(),
			PrefetchUseful: s.pfUseful.Load(),
			PrefetchLate:   s.pfLate.Load(),
		},
	}
	if st := s.cache.Store(); st != nil {
		entries, bytes := st.Size()
		ss := st.Stats()
		reply.Store = &StoreStats{
			Dir: st.Dir(), Entries: entries, Bytes: bytes,
			Hits: ss.Hits, Misses: ss.Misses, BadEntries: ss.BadEntries, Puts: ss.Puts,
		}
	}
	s.writeJSON(w, r, reply)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, HealthReply{
		Status:        "ok",
		Version:       store.Version(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// writeJSON encodes the reply and accounts for undeliverable ones: a
// client that vanishes mid-reply used to be indistinguishable from success
// (enc.Encode's error was discarded); now it is logged and counted in
// /v1/stats as dropped_replies.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.droppedReplies.Add(1)
		s.logf("labd: %s %s reply dropped: %v", r.Method, r.URL.Path, err)
	}
}
