package labd_test

// End-to-end tests over httptest: the service must return byte-identical
// results to an in-process lab run, stream NDJSON in job order, dedupe
// against its shared store, and survive bad requests.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flywheel/internal/cacti"
	"flywheel/internal/lab"
	"flywheel/internal/lab/store"
	"flywheel/internal/labd"
	"flywheel/internal/sim"
)

// testJobs is a small batch with a duplicate and cross-arch variety.
func testJobs() []lab.Job {
	return []lab.Job{
		{Workload: "ijpeg", Arch: sim.ArchFlywheel, FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: 2000},
		{Workload: "ijpeg", Arch: sim.ArchBaseline, MaxInstructions: 2000},
		{Workload: "gcc", Arch: sim.ArchFlywheel, FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: 2000},
		{Workload: "ijpeg", Arch: sim.ArchFlywheel, FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: 2000}, // dup of 0
	}
}

func startServer(t *testing.T, cache *lab.Cache) (*httptest.Server, *labd.Client) {
	t.Helper()
	srv := labd.NewServer(cache)
	srv.SetLogf(t.Logf)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, labd.NewClient(ts.URL)
}

func TestSweepMatchesInProcess(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, client := startServer(t, lab.NewCacheWithStore(st))

	jobs := testJobs()
	lines, err := client.Sweep(labd.SweepRequest{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	want, err := lab.Run(jobs, lab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(jobs) {
		t.Fatalf("got %d lines, want %d", len(lines), len(jobs))
	}
	for i, line := range lines {
		if line.Index != i {
			t.Fatalf("line %d has index %d", i, line.Index)
		}
		if line.Key != jobs[i].Key() {
			t.Fatalf("line %d key %q, want %q", i, line.Key, jobs[i].Key())
		}
		got, _ := json.Marshal(line.Result)
		exp, _ := json.Marshal(want[i])
		if string(got) != string(exp) {
			t.Fatalf("job %d: service result differs from in-process run:\n service %s\n local   %s", i, got, exp)
		}
	}
}

// TestSweepDedupesAcrossRequests: the second identical batch — as a new
// HTTP request, like a second CLI invocation — performs zero simulations.
func TestSweepDedupesAcrossRequests(t *testing.T) {
	cache := lab.NewCache()
	_, client := startServer(t, cache)

	jobs := testJobs()
	if _, err := client.Sweep(labd.SweepRequest{Jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	misses := cache.Misses()
	if misses != 3 { // 3 distinct keys in testJobs
		t.Fatalf("first batch simulated %d, want 3 distinct", misses)
	}
	if _, err := client.Sweep(labd.SweepRequest{Jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	if cache.Misses() != misses {
		t.Fatalf("second batch re-simulated: %d total misses", cache.Misses())
	}
}

// TestSweepJobError: an unknown workload yields an error line for its
// index, complete results for the rest, and a client-side error.
func TestSweepJobError(t *testing.T) {
	_, client := startServer(t, lab.NewCache())
	jobs := []lab.Job{
		{Workload: "ijpeg", Arch: sim.ArchBaseline, MaxInstructions: 2000},
		{Workload: "no-such-workload", MaxInstructions: 2000},
	}
	lines, err := client.Sweep(labd.SweepRequest{Jobs: jobs})
	if err == nil || !strings.Contains(err.Error(), "no-such-workload") {
		t.Fatalf("err = %v, want the unknown-workload failure", err)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines despite the per-job error, want 2", len(lines))
	}
	if lines[0].Error != "" || lines[0].Result == nil {
		t.Fatalf("healthy job contaminated: %+v", lines[0])
	}
	if lines[1].Error == "" || lines[1].Result != nil {
		t.Fatalf("failing job not reported: %+v", lines[1])
	}
}

func TestSweepBadRequests(t *testing.T) {
	ts, _ := startServer(t, lab.NewCache())
	for _, body := range []string{
		``, `{}`, `{"jobs":[]}`, `not json`, `{"jobs":[{}], "bogus": 1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /v1/sweep succeeded, want method rejection")
	}
}

// TestSweepClampsWorkers: an absurd client Workers value must not spawn
// unbounded concurrency — the request still completes correctly.
func TestSweepClampsWorkers(t *testing.T) {
	_, client := startServer(t, lab.NewCache())
	jobs := testJobs()
	lines, err := client.Sweep(labd.SweepRequest{Jobs: jobs, Workers: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(jobs) {
		t.Fatalf("got %d lines, want %d", len(lines), len(jobs))
	}
}

func TestSweepRejectsOversizedBody(t *testing.T) {
	ts, _ := startServer(t, lab.NewCache())
	// One syntactically valid request whose body exceeds the 64 MiB cap.
	big := `{"jobs":[{"Workload":"` + strings.Repeat("a", 65<<20) + `"}]}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, client := startServer(t, lab.NewCacheWithStore(st))

	before, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if before.Cache.Misses != 0 || before.Store == nil || before.Store.Entries != 0 {
		t.Fatalf("fresh service stats: %+v", before)
	}
	if before.Version != store.Version() {
		t.Fatalf("version %q, want %q", before.Version, store.Version())
	}

	jobs := testJobs()
	if _, err := client.Sweep(labd.SweepRequest{Jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	after, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.Cache.Misses != 3 || after.Cache.Hits != 1 {
		t.Fatalf("post-sweep cache stats: %+v", after.Cache)
	}
	if after.Store.Entries != 3 || after.Store.Puts != 3 || after.Store.Bytes <= 0 {
		t.Fatalf("post-sweep store stats: %+v", after.Store)
	}
}

func TestFrontierMatchesInProcessExplore(t *testing.T) {
	_, client := startServer(t, lab.NewCache())
	params := map[string]string{
		"ilp": "1", "entropy": "0", "mem": "4", "code": "1",
		"passes": "1", "fe": "0,50", "n": "2000",
	}
	reply, err := client.Frontier(params)
	if err != nil {
		t.Fatal(err)
	}
	if reply.GridPoints != 2 {
		t.Fatalf("grid points = %d, want 2 (1 profile × 2 FE)", reply.GridPoints)
	}
	if len(reply.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for _, p := range reply.Frontier {
		if p.Speedup <= 0 || p.EnergyRatio <= 0 {
			t.Fatalf("implausible frontier point: %+v", p)
		}
		if p.Arch != "flywheel" {
			t.Fatalf("unexpected arch %q", p.Arch)
		}
	}
	// Identical query → identical reply, served from the warm cache.
	again, err := client.Frontier(params)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(reply)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatalf("frontier not deterministic:\n%s\n%s", a, b)
	}
}

func TestFrontierBadQuery(t *testing.T) {
	ts, _ := startServer(t, lab.NewCache())
	for _, q := range []string{
		"?node=0.42", "?seed=x", "?n=x", "?arch=vliw", "?ilp=abc",
		"?tier=bogus", "?margin=x", "?audit=x", "?auditseed=x",
	} {
		resp, err := http.Get(ts.URL + "/v1/frontier" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestNodeDefaultNormalizedOverWire: a job arriving with Node 0 memoizes
// to the same entry as Node130 — key normalization applies server-side.
func TestNodeDefaultNormalizedOverWire(t *testing.T) {
	cache := lab.NewCache()
	_, client := startServer(t, cache)
	jobs := []lab.Job{
		{Workload: "ijpeg", Arch: sim.ArchBaseline, MaxInstructions: 2000},
		{Workload: "ijpeg", Arch: sim.ArchBaseline, Node: cacti.Node130, MaxInstructions: 2000},
	}
	lines, err := client.Sweep(labd.SweepRequest{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if lines[0].Key != lines[1].Key {
		t.Fatalf("normalized keys differ: %q vs %q", lines[0].Key, lines[1].Key)
	}
	if cache.Misses() != 1 {
		t.Fatalf("defaulted duplicate simulated twice: %d misses", cache.Misses())
	}
}

// TestFrontierTierAnalytic: a tiered query calibrates through the shared
// cache, screens most of the grid analytically, confirms the rest
// cycle-accurately, and the screened/confirmed split shows up both in the
// reply and in /v1/stats.
func TestFrontierTierAnalytic(t *testing.T) {
	cache := lab.NewCache()
	_, client := startServer(t, cache)
	params := map[string]string{
		"ilp": "1,4", "entropy": "0,1", "mem": "4", "code": "1",
		"passes": "1", "fe": "0,25,50,75,100", "be": "0,50,100", "n": "2000",
		"tier": "analytic",
	}
	reply, err := client.Frontier(params)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Tier != "analytic" {
		t.Fatalf("tier %q, want analytic", reply.Tier)
	}
	if reply.GridPoints != 60 { // 4 profiles × 5 FE × 3 BE
		t.Fatalf("grid points = %d, want 60", reply.GridPoints)
	}
	if reply.ScreenedCells+reply.ConfirmedCells != reply.GridPoints {
		t.Fatalf("screened %d + confirmed %d != grid %d",
			reply.ScreenedCells, reply.ConfirmedCells, reply.GridPoints)
	}
	if reply.ConfirmedCells == 0 || reply.ConfirmedCells >= reply.GridPoints {
		t.Fatalf("confirmed %d of %d cells; want a non-trivial strict subset",
			reply.ConfirmedCells, reply.GridPoints)
	}
	if reply.Margin <= 0 {
		t.Fatalf("margin %v not auto-derived", reply.Margin)
	}
	if reply.PredictionErr == nil || reply.PredictionErr.Cells != reply.ConfirmedCells {
		t.Fatalf("prediction error summary %+v does not cover the %d confirmed cells",
			reply.PredictionErr, reply.ConfirmedCells)
	}
	if len(reply.Frontier) == 0 {
		t.Fatal("empty tiered frontier")
	}
	for _, p := range reply.Frontier {
		if p.Speedup <= 0 || p.EnergyRatio <= 0 {
			t.Fatalf("implausible frontier point: %+v", p)
		}
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.AnalyticCells != uint64(reply.ScreenedCells) || st.ConfirmedCells != uint64(reply.ConfirmedCells) {
		t.Fatalf("stats report %d screened / %d confirmed, reply said %d / %d",
			st.AnalyticCells, st.ConfirmedCells, reply.ScreenedCells, reply.ConfirmedCells)
	}

	// A repeat of the same query is deterministic and served from the warm
	// cache — no new simulations — while the tier counters keep accruing.
	misses := cache.Misses()
	again, err := client.Frontier(params)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(reply)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatalf("tiered frontier not deterministic:\n%s\n%s", a, b)
	}
	if cache.Misses() != misses {
		t.Fatalf("repeat query simulated %d new cells", cache.Misses()-misses)
	}
	st2, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.ConfirmedCells != 2*uint64(reply.ConfirmedCells) {
		t.Fatalf("confirmed counter %d after two identical queries, want %d",
			st2.ConfirmedCells, 2*reply.ConfirmedCells)
	}
}

// TestFrontierTierAuto: a grid smaller than the calibration cost resolves
// to the exact tier.
func TestFrontierTierAuto(t *testing.T) {
	_, client := startServer(t, lab.NewCache())
	reply, err := client.Frontier(map[string]string{
		"ilp": "1", "entropy": "0", "mem": "4", "code": "1",
		"passes": "1", "fe": "0,50", "n": "2000", "tier": "auto",
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Tier != "exact" {
		t.Fatalf("tiny auto grid used tier %q, want exact", reply.Tier)
	}
	if reply.ScreenedCells != 0 || reply.ConfirmedCells != 0 || reply.PredictionErr != nil {
		t.Fatalf("exact reply carries tiered fields: %+v", reply)
	}
}

// TestFrontierTierSampled: a sampled-tier query runs every cell (baselines
// included) under the sampled schedule, marks its frontier points with
// confidence intervals, counts the cells in /v1/stats, and is
// deterministic across identical queries.
func TestFrontierTierSampled(t *testing.T) {
	cache := lab.NewCache()
	_, client := startServer(t, cache)
	params := map[string]string{
		"ilp": "1", "entropy": "0", "mem": "4", "code": "1",
		"passes": "1", "fe": "0,50", "n": "60000",
		"tier": "sampled", "sample_period": "12000", "window": "1000",
		"sample_warmup": "500",
	}
	reply, err := client.Frontier(params)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Tier != "sampled" {
		t.Fatalf("tier %q, want sampled", reply.Tier)
	}
	if reply.GridPoints != 2 || reply.SampledCells != 2 {
		t.Fatalf("grid %d / sampled %d, want 2 / 2", reply.GridPoints, reply.SampledCells)
	}
	if len(reply.Frontier) == 0 {
		t.Fatal("empty sampled frontier")
	}
	for _, p := range reply.Frontier {
		if !p.Sampled {
			t.Fatalf("sampled-tier frontier point not marked sampled: %+v", p)
		}
		if p.IPCRelCI95 <= 0 || p.EnergyRelCI95 <= 0 {
			t.Fatalf("frontier point lacks confidence intervals: %+v", p)
		}
		if p.Speedup <= 0 || p.EnergyRatio <= 0 {
			t.Fatalf("implausible frontier point: %+v", p)
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SampledCells != uint64(reply.SampledCells) {
		t.Fatalf("stats sampled_cells %d, reply said %d", st.SampledCells, reply.SampledCells)
	}

	// Identical query → identical reply from the warm cache.
	misses := cache.Misses()
	again, err := client.Frontier(params)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(reply)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatalf("sampled frontier not deterministic:\n%s\n%s", a, b)
	}
	if cache.Misses() != misses {
		t.Fatalf("repeat query simulated %d new cells", cache.Misses()-misses)
	}
}

// TestFrontierThreeTier: sample_period on an analytic query inserts the
// sampled middle tier — the reply reports sampled and escalated cell
// counts plus a sampled-vs-exact error summary, and /v1/stats accrues
// sampled_cells alongside the two-tier counters.
func TestFrontierThreeTier(t *testing.T) {
	_, client := startServer(t, lab.NewCache())
	reply, err := client.Frontier(map[string]string{
		"ilp": "1,4", "entropy": "0,1", "mem": "4", "code": "1",
		"passes": "1", "fe": "0,25,50,75,100", "be": "0,50,100", "n": "60000",
		"tier": "analytic", "sample_period": "12000", "window": "1000",
		"sample_warmup": "500",
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Tier != "analytic" {
		t.Fatalf("tier %q, want analytic", reply.Tier)
	}
	if reply.SampledCells != reply.ConfirmedCells {
		t.Fatalf("sampled %d cells but confirmed %d — middle tier must cover the whole shortlist",
			reply.SampledCells, reply.ConfirmedCells)
	}
	if reply.EscalatedCells <= 0 || reply.EscalatedCells > reply.SampledCells {
		t.Fatalf("escalated %d of %d sampled cells", reply.EscalatedCells, reply.SampledCells)
	}
	if reply.SampledErr == nil || reply.SampledErr.Cells != reply.EscalatedCells {
		t.Fatalf("sampled error summary %+v does not cover the %d escalated cells",
			reply.SampledErr, reply.EscalatedCells)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SampledCells != uint64(reply.SampledCells) || st.ConfirmedCells != uint64(reply.ConfirmedCells) {
		t.Fatalf("stats %d sampled / %d confirmed, reply said %d / %d",
			st.SampledCells, st.ConfirmedCells, reply.SampledCells, reply.ConfirmedCells)
	}
}

// TestFrontierBadSamplingQuery: malformed or infeasible sampling
// parameters are usage errors, not 500s.
func TestFrontierBadSamplingQuery(t *testing.T) {
	ts, _ := startServer(t, lab.NewCache())
	for _, q := range []string{
		"?sample_period=x", "?window=x", "?sample_warmup=x", "?sample_seed=x",
		"?tier=sampled&sample_period=1000&window=2000",
	} {
		resp, err := http.Get(ts.URL + "/v1/frontier" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}
