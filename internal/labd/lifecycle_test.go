package labd_test

// Request-lifecycle regression tests: a disconnected client must stop
// consuming the service, and undeliverable replies must be counted.

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"flywheel/internal/lab"
	"flywheel/internal/labd"
	"flywheel/internal/sim"
)

func jsonBody(v any) (string, error) {
	b, err := json.Marshal(v)
	return string(b), err
}

// TestSweepClientDisconnectStopsSimulations: before the fix, handleSweep
// ignored r.Context(), so a canceled request's remaining jobs (up to the
// 65,536-job batch cap) kept simulating and occupying the service-wide
// semaphore. Now unstarted jobs are skipped: after the disconnect the
// cache's simulation count settles and stays put, far below the batch
// size. Finished work still lands in the cache.
func TestSweepClientDisconnectStopsSimulations(t *testing.T) {
	cache := lab.NewCache()
	ts, _ := startServer(t, cache)

	// Distinct slow jobs, simulated one at a time (Workers:1) so the
	// disconnect window is deterministic: at most one job is mid-flight
	// when the client vanishes. The budget is deliberately large — each
	// job's timing run takes tens of milliseconds even with the process's
	// trace/snapshot caches warm from other tests, so cancellation
	// propagates many jobs before the batch could drain on its own.
	const total = 40
	jobs := make([]lab.Job, total)
	for i := range jobs {
		jobs[i] = lab.Job{Workload: "ijpeg", Arch: sim.ArchFlywheel,
			FEBoostPct: i * 2, BEBoostPct: 50, MaxInstructions: 150000}
	}
	body, err := jsonBody(labd.SweepRequest{Jobs: jobs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read three result lines, then vanish mid-stream.
	rd := bufio.NewReader(resp.Body)
	for i := 0; i < 3; i++ {
		if _, err := rd.ReadString('\n'); err != nil {
			t.Fatalf("reading line %d: %v", i, err)
		}
	}
	cancel()

	// Wait for the simulation count to genuinely settle: nothing in
	// flight and no new miss for a sustained window. (A goroutine that won
	// the semaphore just before the cancellation propagated may legally
	// finish one more job; what must NOT happen is the batch grinding on.)
	deadline := time.Now().Add(10 * time.Second)
	settled := cache.Misses()
	stableSince := time.Now()
	for {
		st := cache.Stats()
		if st.InFlight == 0 && st.Misses == settled {
			if time.Since(stableSince) > 500*time.Millisecond {
				break
			}
		} else {
			settled = st.Misses
			stableSince = time.Now()
		}
		if time.Now().After(deadline) {
			t.Fatalf("simulations never settled after disconnect: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if settled >= total/2 {
		t.Fatalf("disconnect did not stop the batch: %d of %d jobs simulated", settled, total)
	}
	if settled < 3 {
		t.Fatalf("finished work lost: only %d simulations for 3 delivered lines", settled)
	}
}

// TestSweepDisconnectCountsDroppedReply: the aborted stream shows up in
// /v1/stats as a dropped reply and skipped jobs as canceled_jobs.
func TestSweepDisconnectCountsDroppedReply(t *testing.T) {
	ts, client := startServer(t, lab.NewCache())

	jobs := make([]lab.Job, 12)
	for i := range jobs {
		jobs[i] = lab.Job{Workload: "gcc", FEBoostPct: i, MaxInstructions: 150000}
	}
	body, err := jsonBody(labd.SweepRequest{Jobs: jobs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := client.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.DroppedReplies >= 1 && st.CanceledJobs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnect not accounted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealthEndpoint(t *testing.T) {
	_, client := startServer(t, lab.NewCache())
	h, err := client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version == "" {
		t.Fatalf("health reply: %+v", h)
	}
}
