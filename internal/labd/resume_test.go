package labd_test

// Stream-resume tests: a sweep whose NDJSON reply dies mid-flight must
// not forfeit the prefix already received — the client re-requests only
// the missing suffix, verifies the resumed lines answer the right jobs,
// and splices them back into the caller's job order.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"flywheel/internal/lab"
	"flywheel/internal/lab/store"
	"flywheel/internal/labd"
)

// truncatingHandler serves a real labd but mutilates the FIRST sweep
// reply: it forwards bytes until the cut point, then swallows the rest of
// the stream (the client sees a short but otherwise clean body). With
// midLine set the cut lands inside a JSON line instead of after one.
type truncatingHandler struct {
	inner    http.Handler
	lines    int  // forward this many complete lines
	midLine  bool // then leak half of the next line
	fired    atomic.Bool
	requests atomic.Int64
}

func (h *truncatingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasSuffix(r.URL.Path, "/sweep") {
		h.inner.ServeHTTP(w, r)
		return
	}
	h.requests.Add(1)
	if !h.fired.CompareAndSwap(false, true) {
		h.inner.ServeHTTP(w, r)
		return
	}
	h.inner.ServeHTTP(&truncatingWriter{inner: w, budget: h.lines, midLine: h.midLine}, r)
}

type truncatingWriter struct {
	inner    http.ResponseWriter
	budget   int // complete lines still to forward
	midLine  bool
	chopNext bool
	done     bool
}

func (t *truncatingWriter) Header() http.Header  { return t.inner.Header() }
func (t *truncatingWriter) WriteHeader(code int) { t.inner.WriteHeader(code) }
func (t *truncatingWriter) Flush() {
	if f, ok := t.inner.(http.Flusher); ok {
		f.Flush()
	}
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	if t.done {
		return len(p), nil // swallow: the "connection" is dead
	}
	if t.chopNext {
		// Chop inside this line to fake a mid-JSON connection cut.
		t.done = true
		if n := len(p) / 2; n > 0 {
			if _, err := t.inner.Write(p[:n]); err != nil {
				return 0, err
			}
		}
		return len(p), nil
	}
	keep := 0
	for keep < len(p) && t.budget > 0 {
		if i := bytes.IndexByte(p[keep:], '\n'); i >= 0 {
			keep += i + 1
			t.budget--
		} else {
			keep = len(p)
		}
	}
	if t.budget == 0 {
		if rest := len(p) - keep; t.midLine && rest > 1 {
			keep += rest / 2 // cut lands inside the next line in this chunk
			t.done = true
		} else if t.midLine {
			t.chopNext = true // next line arrives in its own Write; chop it then
		} else {
			t.done = true
		}
		if _, err := t.inner.Write(p[:keep]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return t.inner.Write(p)
}

func resumeBatch(n int) []lab.Job {
	jobs := make([]lab.Job, n)
	for i := range jobs {
		jobs[i] = lab.Job{Workload: "gcc", FEBoostPct: i * 3, BEBoostPct: 50, MaxInstructions: 2000}
	}
	return jobs
}

// TestSweepResumesTruncatedStream: the reply dies after 2 of 6 lines; the
// client transparently re-requests the missing 4 and returns a complete,
// correctly ordered batch identical to an unbroken run.
func TestSweepResumesTruncatedStream(t *testing.T) {
	for _, midLine := range []bool{false, true} {
		name := "clean cut"
		if midLine {
			name = "mid-JSON cut"
		}
		t.Run(name, func(t *testing.T) {
			srv := labd.NewServer(lab.NewCache())
			srv.SetLogf(func(string, ...any) {})
			th := &truncatingHandler{inner: srv.Handler(), lines: 2, midLine: midLine}
			ts := httptest.NewServer(th)
			t.Cleanup(ts.Close)

			jobs := resumeBatch(6)
			client := labd.NewClient(ts.URL)
			lines, err := client.Sweep(labd.SweepRequest{Jobs: jobs})
			if err != nil {
				t.Fatalf("resumable sweep failed: %v", err)
			}
			want, err := lab.Run(jobs, lab.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range lines {
				if line.Index != i || line.Key != jobs[i].Key() {
					t.Fatalf("line %d misordered after resume: index %d key %q", i, line.Index, line.Key)
				}
				got, _ := json.Marshal(line.Result)
				exp, _ := json.Marshal(want[i])
				if string(got) != string(exp) {
					t.Fatalf("job %d result differs after resume:\n got %s\nwant %s", i, got, exp)
				}
			}
			if client.Resumes() != 1 {
				t.Fatalf("resumes = %d, want 1", client.Resumes())
			}
			if th.requests.Load() != 2 {
				t.Fatalf("server saw %d sweep requests, want 2", th.requests.Load())
			}
		})
	}
}

// TestSweepResumeGivesUp: a stream that dies on every attempt fails after
// MaxResumes re-requests instead of looping forever. The server answers
// exactly one job per request (with the right key, so the failure is
// exhaustion, not misalignment).
func TestSweepResumeGivesUp(t *testing.T) {
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		var req labd.SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Jobs) == 0 {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, cannedLine(req.Jobs[0].Key()))
		// ...and nothing more, ever.
	}))
	t.Cleanup(ts.Close)

	client := labd.NewClient(ts.URL)
	client.MaxResumes = 2
	_, err := client.Sweep(labd.SweepRequest{Jobs: resumeBatch(5)})
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want truncation", err)
	}
	if got := requests.Load(); got != 3 { // 1 original + 2 resumes
		t.Fatalf("server saw %d requests, want 3", got)
	}
	if client.Resumes() != 2 {
		t.Fatalf("resumes = %d, want 2", client.Resumes())
	}
}

// cannedLine builds one valid NDJSON sweep line for the given key (the
// key contains quote characters, so it must be marshaled, not spliced).
func cannedLine(key string) string {
	b, _ := json.Marshal(map[string]any{"index": 0, "key": key, "result": map[string]any{}})
	return string(b)
}

// TestSweepResumeMisalignmentIsFatal: a resumed line answering the wrong
// job must be rejected, not spliced in under the wrong index. The canned
// server replays the same first line on every attempt, so the "resumed"
// line carries the already-received key.
func TestSweepResumeMisalignmentIsFatal(t *testing.T) {
	jobs := resumeBatch(3)
	body := cannedLine(jobs[0].Key()) + "\n"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)

	client := labd.NewClient(ts.URL)
	_, err := client.Sweep(labd.SweepRequest{Jobs: jobs})
	if err == nil || !strings.Contains(err.Error(), "resume misaligned") {
		t.Fatalf("err = %v, want resume misalignment", err)
	}
}

// TestScrubEndpoint: POST /v1/scrub audits the worker's store and trace
// spill, quarantines planted corruption, and surfaces the pass in
// /v1/stats; a healthy follow-up pass is clean.
func TestScrubEndpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := labd.NewServer(lab.NewCacheWithStore(st))
	srv.SetLogf(func(string, ...any) {})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Populate the store through the service, then corrupt one entry.
	client := labd.NewClient(ts.URL)
	jobs := resumeBatch(4)
	if _, err := client.Sweep(labd.SweepRequest{Jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	var victim string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") && victim == "" {
			victim = path
		}
		return nil
	})
	if victim == "" {
		t.Fatal("sweep persisted no entries")
	}
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := client.Scrub(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 4 || len(rep.Quarantined) != 1 {
		t.Fatalf("scrub report: %+v", rep)
	}
	if rep.Dir != dir || rep.Version != store.Version() {
		t.Fatalf("scrub stamped %q/%q", rep.Dir, rep.Version)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still in place")
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scrubs != 1 || stats.QuarantinedFiles != 1 {
		t.Fatalf("stats scrubs=%d quarantined=%d", stats.Scrubs, stats.QuarantinedFiles)
	}

	// The damaged key transparently heals on the next sweep...
	if _, err := client.Sweep(labd.SweepRequest{Jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	// ...and a second pass over the repaired store is clean.
	rep2, err := client.Scrub(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Quarantined) != 0 {
		t.Fatalf("second scrub still dirty: %+v", rep2.Quarantined)
	}
}
