package labd

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// NewHTTPServer wraps a handler in an http.Server with the hardening every
// long-running lab service needs: a ReadHeaderTimeout (a slowloris client
// can no longer hold a connection open forever by trickling header bytes)
// and an IdleTimeout for keep-alive connections. Response streaming is
// unaffected — sweeps may run arbitrarily long.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// ServeGracefully serves srv on ln until SIGINT/SIGTERM arrives or stop
// closes (stop may be nil), then drains: in-flight requests — including
// mid-stream NDJSON sweeps — get up to drain to complete before the
// server is force-closed. A clean drain returns nil; an exceeded drain
// deadline returns the shutdown error after closing remaining
// connections.
//
// Before this existed, labd served with a bare http.ListenAndServe:
// SIGTERM during a sweep killed the process outright, dropping every
// in-flight NDJSON stream mid-line.
func ServeGracefully(srv *http.Server, ln net.Listener, stop <-chan struct{}, drain time.Duration) error {
	sigCtx, cancelSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSig()

	shutdownDone := make(chan error, 1)
	go func() {
		select {
		case <-sigCtx.Done():
		case <-stop: // nil stop blocks forever; signals still work
		}
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := srv.Shutdown(ctx)
		if err != nil {
			srv.Close()
		}
		shutdownDone <- err
	}()

	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-shutdownDone
}
