package mem

import "fmt"

// CacheConfig sizes one cache.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	Ways       int
	LineBytes  int
	HitLatency int // cycles, in the clock domain of the accessor
	Ports      int // simultaneous accesses per cycle (enforced by the core)
}

// Validate reports configuration errors.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("mem: %s: sizes must be positive", c.Name)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mem: %s: line size %d is not a power of two", c.Name, c.LineBytes)
	case c.SizeBytes%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("mem: %s: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s: set count %d is not a power of two", c.Name, sets)
	}
	return nil
}

// CacheStats accumulates access counts for performance and power reporting.
type CacheStats struct {
	Reads      uint64
	Writes     uint64
	ReadMiss   uint64
	WriteMiss  uint64
	Writebacks uint64
}

// Accesses is the total number of accesses.
func (s CacheStats) Accesses() uint64 { return s.Reads + s.Writes }

// Misses is the total number of misses.
func (s CacheStats) Misses() uint64 { return s.ReadMiss + s.WriteMiss }

// MissRate returns misses/accesses, or 0 when idle.
func (s CacheStats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses()) / float64(a)
	}
	return 0
}

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-use stamp; larger = more recent
}

// Cache is a set-associative, write-back, write-allocate cache model with
// true LRU replacement. It models hit/miss behaviour and replacement only;
// data payloads live in the backing Memory.
type Cache struct {
	cfg      CacheConfig
	sets     [][]cacheLine
	setMask  uint64
	lineBits uint
	clock    uint64
	Stats    CacheStats
}

// NewCache builds a cache; it panics on invalid configuration (caller bug).
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	sets := make([][]cacheLine, numSets)
	lines := make([]cacheLine, numSets*cfg.Ways)
	for i := range sets {
		sets[i], lines = lines[:cfg.Ways], lines[cfg.Ways:]
	}
	lb := uint(0)
	for 1<<lb < cfg.LineBytes {
		lb++
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(numSets - 1), lineBits: lb}
}

// Config returns the cache configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// CopyStateFrom copies the tag/LRU state and statistics of an
// identically configured cache into this one. It lets a warmed cache be
// cloned into a fresh core for the cost of a memcpy instead of replaying
// the warm access stream. It panics on configuration mismatch (caller bug).
func (c *Cache) CopyStateFrom(src *Cache) {
	if c.cfg != src.cfg {
		panic(fmt.Sprintf("mem: %s: CopyStateFrom with mismatched config", c.cfg.Name))
	}
	for i := range c.sets {
		copy(c.sets[i], src.sets[i])
	}
	c.clock = src.clock
	c.Stats = src.Stats
}

func (c *Cache) index(addr uint64) (set, tag uint64) {
	block := addr >> c.lineBits
	return block & c.setMask, block >> uint(popcount(c.setMask))
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// AccessResult describes one cache access.
type AccessResult struct {
	Hit bool
	// Writeback is true when the access evicted a dirty line.
	Writeback bool
	// EvictedAddr is the base address of the evicted line, valid when a
	// valid line was replaced.
	EvictedAddr uint64
	Evicted     bool
}

// Access performs one read (write=false) or write (write=true) at addr,
// updating replacement state and statistics. Misses allocate.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.clock++
	set, tag := c.index(addr)
	lines := c.sets[set]
	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
	}
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.clock
			if write {
				lines[i].dirty = true
			}
			return AccessResult{Hit: true}
		}
	}
	if write {
		c.Stats.WriteMiss++
	} else {
		c.Stats.ReadMiss++
	}
	// Choose victim: first invalid, else least recently used.
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	res := AccessResult{}
	if lines[victim].valid {
		res.Evicted = true
		res.EvictedAddr = c.evictedAddr(lines[victim].tag, set)
		if lines[victim].dirty {
			res.Writeback = true
			c.Stats.Writebacks++
		}
	}
	lines[victim] = cacheLine{tag: tag, valid: true, dirty: write, lru: c.clock}
	return res
}

func (c *Cache) evictedAddr(tag, set uint64) uint64 {
	setBits := uint(popcount(c.setMask))
	return (tag<<setBits | set) << c.lineBits
}

// Probe reports whether addr currently hits, without changing any state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates every line (used at workload boundaries in tests).
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = cacheLine{}
		}
	}
}
