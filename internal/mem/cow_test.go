package mem

import (
	"bytes"
	"testing"
)

func TestSnapshotCopyOnWriteIsolation(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 8, 0x1111)
	m.Write(0x2000, 8, 0x2222)
	snap := m.Snapshot()

	c1 := snap.NewMemory()
	c2 := snap.NewMemory()

	// Writes after the snapshot — through the original and a clone — must
	// not be visible anywhere else.
	m.Write(0x1000, 8, 0xaaaa)
	c1.Write(0x1000, 8, 0xbbbb)

	if got := c2.Read(0x1000, 8); got != 0x1111 {
		t.Fatalf("clone 2 saw foreign write: %#x, want 0x1111", got)
	}
	if got := c1.Read(0x1000, 8); got != 0xbbbb {
		t.Fatalf("clone 1 lost its write: %#x", got)
	}
	if got := m.Read(0x1000, 8); got != 0xaaaa {
		t.Fatalf("original lost its write: %#x", got)
	}
	// Untouched pages read through from the shared image everywhere.
	for i, mm := range []*Memory{m, c1, c2} {
		if got := mm.Read(0x2000, 8); got != 0x2222 {
			t.Fatalf("memory %d: shared page read %#x, want 0x2222", i, got)
		}
	}
}

func TestSnapshotOfSnapshotClone(t *testing.T) {
	m := NewMemory()
	m.Write(0x100, 8, 1)
	c := m.Snapshot().NewMemory()
	c.Write(0x200, 8, 2)
	// Re-snapshotting a clone must merge shared and private pages.
	g := c.Snapshot().NewMemory()
	if g.Read(0x100, 8) != 1 || g.Read(0x200, 8) != 2 {
		t.Fatal("second-generation snapshot lost pages")
	}
}

func TestSnapshotPageCount(t *testing.T) {
	m := NewMemory()
	m.Write(0x0000, 8, 1)
	m.Write(0x1000, 8, 2)
	snap := m.Snapshot()
	if snap.PageCount() != 2 {
		t.Fatalf("snapshot pages = %d, want 2", snap.PageCount())
	}
	c := snap.NewMemory()
	if c.PageCount() != 2 {
		t.Fatalf("clone pages = %d, want 2 (shared)", c.PageCount())
	}
	c.Write(0x1000, 8, 3) // shadows a shared page: no net new page
	if c.PageCount() != 2 {
		t.Fatalf("clone pages = %d after shadowing write, want 2", c.PageCount())
	}
	c.Write(0x5000, 8, 4) // genuinely new page
	if c.PageCount() != 3 {
		t.Fatalf("clone pages = %d after new page, want 3", c.PageCount())
	}
}

func TestReadBytesPageWise(t *testing.T) {
	m := NewMemory()
	// Pattern crossing a page boundary, with a hole (missing page) after.
	start := uint64(pageSize - 16)
	pat := make([]byte, 32)
	for i := range pat {
		pat[i] = byte(i + 1)
	}
	m.WriteBytes(start, pat)

	if got := m.ReadBytes(start, len(pat)); !bytes.Equal(got, pat) {
		t.Fatalf("page-crossing ReadBytes = % x, want % x", got, pat)
	}
	// Reads covering untouched pages come back zeroed.
	got := m.ReadBytes(3*pageSize-8, 24)
	if !bytes.Equal(got, make([]byte, 24)) {
		t.Fatalf("hole read = % x, want zeros", got)
	}
}

func TestReadBytesSeesSharedPages(t *testing.T) {
	m := NewMemory()
	pat := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m.WriteBytes(0x800, pat)
	c := m.Snapshot().NewMemory()
	if got := c.ReadBytes(0x800, len(pat)); !bytes.Equal(got, pat) {
		t.Fatalf("clone ReadBytes = % x, want % x", got, pat)
	}
	// After a COW write to the same page, the clone reads its own copy.
	c.SetByte(0x800, 99)
	want := append([]byte{99}, pat[1:]...)
	if got := c.ReadBytes(0x800, len(pat)); !bytes.Equal(got, want) {
		t.Fatalf("clone ReadBytes after write = % x, want % x", got, want)
	}
	if got := m.ReadBytes(0x800, len(pat)); !bytes.Equal(got, pat) {
		t.Fatalf("original perturbed by clone write: % x", got)
	}
}
