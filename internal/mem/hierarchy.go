package mem

// HierarchyConfig describes the full memory system of the simulated machine.
// Defaults mirror the paper's Table 2.
type HierarchyConfig struct {
	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig
	// L2Latency is the unified L2 hit time in core cycles (internal module:
	// scales with the clock).
	L2Latency int
	// MemLatencyPS is the main-memory access time in picoseconds. The paper
	// specifies 100 cycles at the baseline clock and scales the cycle count
	// when the clock speeds up; expressing it as wall-clock time gives the
	// same behaviour.
	MemLatencyPS int64
}

// DefaultHierarchyConfig returns the Table 2 memory system, given the
// baseline clock period in picoseconds (used to fix the DRAM wall-clock
// latency at 100 baseline cycles).
func DefaultHierarchyConfig(baselinePeriodPS int64) HierarchyConfig {
	return HierarchyConfig{
		L1I: CacheConfig{
			Name: "l1i", SizeBytes: 64 << 10, Ways: 2, LineBytes: 32,
			HitLatency: 2, Ports: 1,
		},
		L1D: CacheConfig{
			Name: "l1d", SizeBytes: 64 << 10, Ways: 4, LineBytes: 32,
			HitLatency: 2, Ports: 2,
		},
		L2: CacheConfig{
			Name: "l2", SizeBytes: 512 << 10, Ways: 4, LineBytes: 64,
			HitLatency: 10, Ports: 1,
		},
		L2Latency:    10,
		MemLatencyPS: 100 * baselinePeriodPS,
	}
}

// Hierarchy glues the cache levels together and converts miss chains into
// access latencies for the timing cores.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	cfg HierarchyConfig
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		L1I: NewCache(cfg.L1I),
		L1D: NewCache(cfg.L1D),
		L2:  NewCache(cfg.L2),
		cfg: cfg,
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// CopyStateFrom copies the cache state (tags, LRU, statistics) of an
// identically configured hierarchy into this one.
func (h *Hierarchy) CopyStateFrom(src *Hierarchy) {
	h.L1I.CopyStateFrom(src.L1I)
	h.L1D.CopyStateFrom(src.L1D)
	h.L2.CopyStateFrom(src.L2)
}

// AccessKind selects the L1 cache used for an access.
type AccessKind int

// Access kinds.
const (
	AccessFetch AccessKind = iota // instruction fetch through L1I
	AccessLoad                    // data read through L1D
	AccessStore                   // data write through L1D
)

// Latency describes the outcome of one memory access.
type Latency struct {
	// Cycles is the total access latency in cycles of the requesting clock
	// domain (whose period is passed to Access).
	Cycles int
	L1Hit  bool
	L2Hit  bool
}

// Access simulates one access and returns its latency expressed in cycles of
// a clock with the given period (picoseconds per cycle).
func (h *Hierarchy) Access(kind AccessKind, addr uint64, periodPS int64) Latency {
	l1 := h.L1I
	write := false
	switch kind {
	case AccessLoad:
		l1 = h.L1D
	case AccessStore:
		l1 = h.L1D
		write = true
	}
	lat := Latency{Cycles: l1.Config().HitLatency}
	res := l1.Access(addr, write)
	if res.Hit {
		lat.L1Hit = true
		return lat
	}
	if res.Writeback {
		// Dirty victim goes to L2; modelled as an L2 write for statistics,
		// latency hidden by the writeback buffer.
		h.L2.Access(res.EvictedAddr, true)
	}
	lat.Cycles += h.cfg.L2Latency
	l2res := h.L2.Access(addr, false)
	if l2res.Hit {
		lat.L2Hit = true
		return lat
	}
	if periodPS <= 0 {
		periodPS = 1
	}
	memCycles := int((h.cfg.MemLatencyPS + periodPS - 1) / periodPS)
	lat.Cycles += memCycles
	return lat
}

// ResetStats clears all cache statistics (not contents).
func (h *Hierarchy) ResetStats() {
	h.L1I.Stats = CacheStats{}
	h.L1D.Stats = CacheStats{}
	h.L2.Stats = CacheStats{}
}
