package mem

// HierarchyConfig describes the full memory system of the simulated machine.
// Defaults mirror the paper's Table 2.
type HierarchyConfig struct {
	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig
	// L2Latency is the unified L2 hit time in core cycles (internal module:
	// scales with the clock).
	L2Latency int
	// MemLatencyPS is the main-memory access time in picoseconds. The paper
	// specifies 100 cycles at the baseline clock and scales the cycle count
	// when the clock speeds up; expressing it as wall-clock time gives the
	// same behaviour.
	MemLatencyPS int64
	// Prefetch selects the hardware prefetcher at the L1↔L2 boundary; the
	// zero value means none (the paper's machine).
	Prefetch PrefetchConfig
}

// DefaultHierarchyConfig returns the Table 2 memory system, given the
// baseline clock period in picoseconds (used to fix the DRAM wall-clock
// latency at 100 baseline cycles).
func DefaultHierarchyConfig(baselinePeriodPS int64) HierarchyConfig {
	return HierarchyConfig{
		L1I: CacheConfig{
			Name: "l1i", SizeBytes: 64 << 10, Ways: 2, LineBytes: 32,
			HitLatency: 2, Ports: 1,
		},
		L1D: CacheConfig{
			Name: "l1d", SizeBytes: 64 << 10, Ways: 4, LineBytes: 32,
			HitLatency: 2, Ports: 2,
		},
		L2: CacheConfig{
			Name: "l2", SizeBytes: 512 << 10, Ways: 4, LineBytes: 64,
			HitLatency: 10, Ports: 1,
		},
		L2Latency:    10,
		MemLatencyPS: 100 * baselinePeriodPS,
	}
}

// DemandStats aggregates the demand data-access stream (loads and stores
// through L1D), independent of any prefetcher.
type DemandStats struct {
	DataAccesses uint64
	DataCycles   uint64 // sum of demand data-access latencies, in accessor cycles
	L2Lookups    uint64 // demand data accesses that missed L1D
	L2Hits       uint64
}

// AvgDataCycles is the average demand data-access latency in cycles.
func (s DemandStats) AvgDataCycles() float64 {
	if s.DataAccesses == 0 {
		return 0
	}
	return float64(s.DataCycles) / float64(s.DataAccesses)
}

// L2HitRate is the demand (non-prefetch) L2 hit rate.
func (s DemandStats) L2HitRate() float64 {
	if s.L2Lookups == 0 {
		return 0
	}
	return float64(s.L2Hits) / float64(s.L2Lookups)
}

// PrefetchStats accounts for the prefetcher's work.
type PrefetchStats struct {
	Trains       uint64 // demand L1D misses observed by the prefetcher
	Issued       uint64 // prefetch fills started (post filtering)
	Useful       uint64 // demand L2 hits on a line a prefetch installed
	Late         uint64 // demand misses that caught their fill in flight
	DemandMisses uint64 // demand L2 misses (includes Late)
}

// Accuracy is the fraction of issued prefetches a demand access consumed
// (timely or late).
func (s PrefetchStats) Accuracy() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful+s.Late) / float64(s.Issued)
}

// Coverage is the fraction of would-be demand L2 misses the prefetcher
// fully hid (late fills count as misses).
func (s PrefetchStats) Coverage() float64 {
	if s.Useful+s.DemandMisses == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Useful+s.DemandMisses)
}

const (
	// prefetchDelay models the fill pipe: a prefetch issued at demand
	// access n is resident from access n+prefetchDelay; demanded sooner,
	// it is late and only hides half the memory penalty.
	prefetchDelay = 4
	// maxPendingPrefetch bounds the in-flight prefetch queue (an MSHR
	// file); further candidates are dropped, not queued.
	maxPendingPrefetch = 64
)

type pendingPrefetch struct {
	line  uint64
	ready uint64 // DemandStats.DataAccesses stamp when the fill lands
}

// Hierarchy glues the cache levels together and converts miss chains into
// access latencies for the timing cores.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	cfg HierarchyConfig

	// Prefetch machinery (nil / empty when cfg.Prefetch is off).
	pf         Prefetcher
	pending    []pendingPrefetch   // FIFO, ready ascending
	pfResident map[uint64]struct{} // prefetched L2 lines not yet demanded
	pfBuf      []uint64

	demand  DemandStats
	pfStats PrefetchStats
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{
		L1I: NewCache(cfg.L1I),
		L1D: NewCache(cfg.L1D),
		L2:  NewCache(cfg.L2),
		cfg: cfg,
	}
	if cfg.Prefetch.Kind != "" && cfg.Prefetch.Kind != PFNone {
		h.pf = newPrefetcher(cfg.Prefetch)
		h.pfResident = make(map[uint64]struct{})
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// Prefetcher returns the active prefetcher's canonical name.
func (h *Hierarchy) Prefetcher() string {
	if h.pf == nil {
		return PFNone
	}
	return h.pf.Kind()
}

// PrefetchStats returns the prefetch counters (zero when no prefetcher).
func (h *Hierarchy) PrefetchStats() PrefetchStats { return h.pfStats }

// DemandStats returns the demand data-access counters.
func (h *Hierarchy) DemandStats() DemandStats { return h.demand }

// CopyStateFrom copies the cache state (tags, LRU, statistics) and the
// prefetcher's training and in-flight state of an identically configured
// hierarchy into this one.
func (h *Hierarchy) CopyStateFrom(src *Hierarchy) {
	h.L1I.CopyStateFrom(src.L1I)
	h.L1D.CopyStateFrom(src.L1D)
	h.L2.CopyStateFrom(src.L2)
	if h.pf != nil {
		h.pf.CopyStateFrom(src.pf)
		h.pending = append(h.pending[:0], src.pending...)
		clear(h.pfResident)
		for line := range src.pfResident {
			h.pfResident[line] = struct{}{}
		}
	}
	h.demand = src.demand
	h.pfStats = src.pfStats
}

// AccessKind selects the L1 cache used for an access.
type AccessKind int

// Access kinds.
const (
	AccessFetch AccessKind = iota // instruction fetch through L1I
	AccessLoad                    // data read through L1D
	AccessStore                   // data write through L1D
)

// Latency describes the outcome of one memory access.
type Latency struct {
	// Cycles is the total access latency in cycles of the requesting clock
	// domain (whose period is passed to Access).
	Cycles int
	L1Hit  bool
	L2Hit  bool
}

// Access simulates one access by the instruction at pc and returns its
// latency expressed in cycles of a clock with the given period
// (picoseconds per cycle). pc feeds the PC-indexed prefetcher; fetches
// pass their own address.
func (h *Hierarchy) Access(kind AccessKind, pc, addr uint64, periodPS int64) Latency {
	l1 := h.L1I
	write := false
	data := false
	switch kind {
	case AccessLoad:
		l1, data = h.L1D, true
	case AccessStore:
		l1, data = h.L1D, true
		write = true
	}
	if data {
		h.demand.DataAccesses++
		if h.pf != nil {
			h.drainPrefetches()
		}
	}
	lat := Latency{Cycles: l1.Config().HitLatency}
	res := l1.Access(addr, write)
	if res.Hit {
		lat.L1Hit = true
		return h.finish(data, lat)
	}
	if res.Writeback {
		// Dirty victim goes to L2; modelled as an L2 write for statistics,
		// latency hidden by the writeback buffer.
		h.l2Access(res.EvictedAddr, true)
	}
	lat.Cycles += h.cfg.L2Latency
	if data {
		h.demand.L2Lookups++
	}
	if periodPS <= 0 {
		periodPS = 1
	}
	memCycles := int((h.cfg.MemLatencyPS + periodPS - 1) / periodPS)
	line := addr &^ uint64(h.cfg.L2.LineBytes-1)
	if data && h.pf != nil && h.dropPending(line) {
		// Late prefetch: the fill is in flight; it completes now and the
		// demand pays half the memory penalty for the remaining overlap.
		h.pfStats.Late++
		h.pfStats.DemandMisses++
		h.l2Access(addr, false)
		lat.Cycles += memCycles / 2
		h.train(pc, addr, line)
		return h.finish(data, lat)
	}
	l2res := h.l2Access(addr, false)
	if l2res.Hit {
		lat.L2Hit = true
		if data {
			h.demand.L2Hits++
			if h.pf != nil {
				if _, ok := h.pfResident[line]; ok {
					delete(h.pfResident, line)
					h.pfStats.Useful++
				}
				h.train(pc, addr, line)
			}
		}
		return h.finish(data, lat)
	}
	lat.Cycles += memCycles
	if data && h.pf != nil {
		h.pfStats.DemandMisses++
		h.train(pc, addr, line)
	}
	return h.finish(data, lat)
}

func (h *Hierarchy) finish(data bool, lat Latency) Latency {
	if data {
		h.demand.DataCycles += uint64(lat.Cycles)
	}
	return lat
}

// l2Access wraps L2 accesses so lines evicted for any reason (demand
// fills, writebacks, prefetch fills) leave the prefetched-resident set.
func (h *Hierarchy) l2Access(addr uint64, write bool) AccessResult {
	res := h.L2.Access(addr, write)
	if res.Evicted {
		delete(h.pfResident, res.EvictedAddr)
	}
	return res
}

// drainPrefetches completes in-flight prefetch fills whose delay elapsed.
func (h *Hierarchy) drainPrefetches() {
	n := 0
	for _, p := range h.pending {
		if p.ready > h.demand.DataAccesses {
			break
		}
		if !h.l2Access(p.line, false).Hit {
			// The fill actually installed the line; track its first use.
			h.pfResident[p.line] = struct{}{}
		}
		n++
	}
	if n > 0 {
		h.pending = h.pending[:copy(h.pending, h.pending[n:])]
	}
}

// train feeds one demand L1D miss to the prefetcher and queues the
// candidate lines it returns, filtering lines already resident or in
// flight.
func (h *Hierarchy) train(pc, addr, demandLine uint64) {
	h.pfStats.Trains++
	h.pfBuf = h.pf.Observe(pc, addr, h.pfBuf[:0])
	for _, a := range h.pfBuf {
		line := a &^ uint64(h.cfg.L2.LineBytes-1)
		if line == demandLine || h.L2.Probe(line) || h.isPending(line) {
			continue
		}
		if len(h.pending) >= maxPendingPrefetch {
			break
		}
		h.pending = append(h.pending, pendingPrefetch{line: line, ready: h.demand.DataAccesses + prefetchDelay})
		h.pfStats.Issued++
	}
}

func (h *Hierarchy) isPending(line uint64) bool {
	for _, p := range h.pending {
		if p.line == line {
			return true
		}
	}
	return false
}

// dropPending removes line from the in-flight queue, reporting whether it
// was there.
func (h *Hierarchy) dropPending(line uint64) bool {
	for i, p := range h.pending {
		if p.line == line {
			h.pending = append(h.pending[:i], h.pending[i+1:]...)
			return true
		}
	}
	return false
}

// ResetStats clears all cache, demand and prefetch statistics (not
// contents or training state).
func (h *Hierarchy) ResetStats() {
	h.L1I.Stats = CacheStats{}
	h.L1D.Stats = CacheStats{}
	h.L2.Stats = CacheStats{}
	h.demand = DemandStats{}
	h.pfStats = PrefetchStats{}
}
