package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteWidths(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 8, 0x1122334455667788)
	if got := m.Read(0x1000, 8); got != 0x1122334455667788 {
		t.Errorf("read64 = %#x", got)
	}
	if got := m.Read(0x1000, 4); got != 0x55667788 {
		t.Errorf("read32 = %#x", got)
	}
	if got := m.Read(0x1004, 4); got != 0x11223344 {
		t.Errorf("read32 hi = %#x", got)
	}
	if got := m.Read(0x1000, 1); got != 0x88 {
		t.Errorf("read8 = %#x", got)
	}
	m.Write(0x1002, 2, 0xBEEF)
	if got := m.Read(0x1000, 8); got != 0x11223344beef7788 {
		t.Errorf("after write16 = %#x", got)
	}
}

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory()
	if got := m.Read(0xdeadbeef000, 8); got != 0 {
		t.Errorf("untouched memory = %#x, want 0", got)
	}
	if m.PageCount() != 0 {
		t.Errorf("read allocated %d pages", m.PageCount())
	}
}

func TestMemoryPageCrossing(t *testing.T) {
	m := NewMemory()
	addr := uint64(0x1FFC) // crosses the 0x1000..0x1FFF page boundary at +4
	m.Write(addr, 8, 0xAABBCCDDEEFF0011)
	if got := m.Read(addr, 8); got != 0xAABBCCDDEEFF0011 {
		t.Errorf("page-crossing read = %#x", got)
	}
	if m.PageCount() != 2 {
		t.Errorf("pages touched = %d, want 2", m.PageCount())
	}
}

func TestMemoryBytesRoundTrip(t *testing.T) {
	m := NewMemory()
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	m.WriteBytes(0xFFF8, data) // crosses a page
	if got := m.ReadBytes(0xFFF8, len(data)); string(got) != string(data) {
		t.Errorf("ReadBytes = %v, want %v", got, data)
	}
}

func TestMemoryRandomizedAgainstMap(t *testing.T) {
	m := NewMemory()
	ref := map[uint64]byte{}
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		addr := uint64(r.Intn(1 << 20))
		size := []int{1, 2, 4, 8}[r.Intn(4)]
		if r.Intn(2) == 0 {
			v := r.Uint64()
			m.Write(addr, size, v)
			for i := 0; i < size; i++ {
				ref[addr+uint64(i)] = byte(v >> (8 * i))
			}
			return true
		}
		var want uint64
		for i := 0; i < size; i++ {
			want |= uint64(ref[addr+uint64(i)]) << (8 * i)
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{Name: "c", SizeBytes: 1024, Ways: 2, LineBytes: 32}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []CacheConfig{
		{Name: "neg", SizeBytes: -1, Ways: 2, LineBytes: 32},
		{Name: "line", SizeBytes: 1024, Ways: 2, LineBytes: 24},
		{Name: "div", SizeBytes: 1000, Ways: 2, LineBytes: 32},
		{Name: "sets", SizeBytes: 3 * 64, Ways: 1, LineBytes: 32},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted, want error", c.Name)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 256, Ways: 2, LineBytes: 32})
	// 4 sets, 2 ways, 32-byte lines.
	if res := c.Access(0, false); res.Hit {
		t.Error("cold access hit")
	}
	if res := c.Access(4, false); !res.Hit {
		t.Error("same-line access missed")
	}
	if res := c.Access(31, false); !res.Hit {
		t.Error("line-end access missed")
	}
	if res := c.Access(32, false); res.Hit {
		t.Error("next-line access hit")
	}
	if got := c.Stats.Reads; got != 4 {
		t.Errorf("reads = %d, want 4", got)
	}
	if got := c.Stats.ReadMiss; got != 2 {
		t.Errorf("read misses = %d, want 2", got)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 1 set (64 bytes, 2 ways, 32-byte lines): addresses 0, 64, 128 conflict.
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 64, Ways: 2, LineBytes: 32})
	c.Access(0, false)   // miss, way 0
	c.Access(64, false)  // miss, way 1
	c.Access(0, false)   // hit, refreshes 0
	c.Access(128, false) // miss, evicts 64 (LRU)
	if !c.Probe(0) {
		t.Error("line 0 evicted, want kept (was MRU)")
	}
	if c.Probe(64) {
		t.Error("line 64 kept, want evicted (was LRU)")
	}
	if !c.Probe(128) {
		t.Error("line 128 missing after allocation")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 32, Ways: 1, LineBytes: 32})
	c.Access(0, true) // dirty
	res := c.Access(64, false)
	if !res.Writeback {
		t.Error("dirty eviction did not report writeback")
	}
	if res.EvictedAddr != 0 {
		t.Errorf("evicted addr = %#x, want 0", res.EvictedAddr)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	// Clean eviction: no writeback.
	res = c.Access(128, false)
	if res.Writeback {
		t.Error("clean eviction reported writeback")
	}
	if !res.Evicted || res.EvictedAddr != 64 {
		t.Errorf("eviction = %+v, want evicted addr 64", res)
	}
}

func TestCacheProbeDoesNotTouch(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 64, Ways: 2, LineBytes: 32})
	c.Access(0, false)
	c.Access(64, false)
	// Probing 0 must not refresh it.
	c.Probe(0)
	c.Access(128, false) // should evict 0 (LRU despite probe)
	if c.Probe(0) {
		t.Error("probe refreshed LRU state")
	}
	reads := c.Stats.Reads
	c.Probe(64)
	if c.Stats.Reads != reads {
		t.Error("probe counted as access")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 64, Ways: 2, LineBytes: 32})
	c.Access(0, false)
	c.Flush()
	if c.Probe(0) {
		t.Error("line survived flush")
	}
}

func TestCacheMissRate(t *testing.T) {
	var s CacheStats
	if s.MissRate() != 0 {
		t.Error("idle miss rate != 0")
	}
	s = CacheStats{Reads: 8, ReadMiss: 2}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("miss rate = %v, want 0.25", got)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := DefaultHierarchyConfig(1000) // 1ns baseline period
	h := NewHierarchy(cfg)

	// Cold fetch: L1 miss, L2 miss -> 2 + 10 + 100 cycles at baseline.
	lat := h.Access(AccessFetch, 0, 0x1000, 1000)
	if lat.L1Hit || lat.L2Hit {
		t.Errorf("cold access hit: %+v", lat)
	}
	if lat.Cycles != 2+10+100 {
		t.Errorf("cold latency = %d, want 112", lat.Cycles)
	}

	// Second access: L1 hit.
	lat = h.Access(AccessFetch, 0, 0x1000, 1000)
	if !lat.L1Hit || lat.Cycles != 2 {
		t.Errorf("warm fetch = %+v, want L1 hit 2 cycles", lat)
	}

	// Loads and stores go to the D-cache, independent of the I-cache.
	lat = h.Access(AccessLoad, 0, 0x1000, 1000)
	if lat.L1Hit {
		t.Error("load hit in L1D after only a fetch touched the line")
	}
	lat = h.Access(AccessStore, 0, 0x1000, 1000)
	if !lat.L1Hit {
		t.Error("store missed after load allocated the line")
	}
}

func TestHierarchyL2HitPath(t *testing.T) {
	cfg := DefaultHierarchyConfig(1000)
	h := NewHierarchy(cfg)
	h.Access(AccessLoad, 0, 0x4000, 1000) // allocate in L1D and L2
	// Evict from tiny... L1D is large; instead access same line via fetch
	// path: L1I misses but L2 hits.
	lat := h.Access(AccessFetch, 0, 0x4000, 1000)
	if lat.L1Hit {
		t.Error("fetch hit L1I unexpectedly")
	}
	if !lat.L2Hit {
		t.Error("fetch missed L2 after load allocated the line")
	}
	if lat.Cycles != 2+10 {
		t.Errorf("L2-hit latency = %d, want 12", lat.Cycles)
	}
}

func TestHierarchyMemoryLatencyScalesWithClock(t *testing.T) {
	cfg := DefaultHierarchyConfig(1000) // DRAM = 100_000 ps
	h := NewHierarchy(cfg)
	lat := h.Access(AccessLoad, 0, 0x9000, 500) // 2 GHz core: twice the cycles
	want := 2 + 10 + 200
	if lat.Cycles != want {
		t.Errorf("fast-clock cold latency = %d, want %d", lat.Cycles, want)
	}
}

func TestHierarchyResetStats(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig(1000))
	h.Access(AccessLoad, 0, 0, 1000)
	h.ResetStats()
	if h.L1D.Stats.Accesses() != 0 || h.L2.Stats.Accesses() != 0 {
		t.Error("stats survived reset")
	}
}
