// Package mem provides the simulated memory system: a sparse byte-addressable
// physical memory with copy-on-write snapshots, set-associative write-back
// caches with LRU replacement, and the two-level hierarchy (split L1,
// unified L2, fixed-latency DRAM) used by both timing cores.
//
// Latency accounting follows the paper's Table 2: L1 caches have a
// pipelined two-cycle hit time, the unified L2 costs 10 cycles, and main
// memory costs 100 *baseline* cycles — a fixed wall-clock time that is
// re-expressed in cycles of whatever clock the core currently runs
// ("scaled accordingly when clock speed is increased").
package mem

import "encoding/binary"

const pageShift = 12
const pageSize = 1 << pageShift

// Memory is a sparse, byte-addressable 64-bit physical memory. The zero
// value is an empty memory; all bytes read as zero until written.
//
// A memory may be backed by an immutable Snapshot: reads fall through to
// the shared snapshot pages, and the first write to a shared page copies it
// into the memory's private page table (copy-on-write). Snapshots can
// therefore be cloned into many concurrently running machines for the cost
// of a map allocation per clone.
type Memory struct {
	pages  map[uint64]*[pageSize]byte
	shared map[uint64]*[pageSize]byte // immutable pages from a Snapshot
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

// Snapshot is an immutable page image taken from a Memory. It is safe for
// concurrent use: any number of memories may be cloned from one snapshot
// and written independently.
type Snapshot struct {
	pages map[uint64]*[pageSize]byte
}

// Snapshot freezes the memory's current contents and returns them as an
// immutable snapshot. The receiver keeps its contents but from now on
// copies pages on write (its private table is moved into the snapshot), so
// the snapshot stays valid however the receiver is used afterwards.
func (m *Memory) Snapshot() *Snapshot {
	frozen := make(map[uint64]*[pageSize]byte, len(m.pages)+len(m.shared))
	for k, p := range m.shared {
		frozen[k] = p
	}
	for k, p := range m.pages {
		frozen[k] = p
	}
	m.shared = frozen
	m.pages = make(map[uint64]*[pageSize]byte)
	return &Snapshot{pages: frozen}
}

// NewMemory returns a fresh memory backed by the snapshot: it reads the
// snapshot's contents and copies pages privately on first write.
func (s *Snapshot) NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte), shared: s.pages}
}

// PageCount reports how many pages the snapshot holds.
func (s *Snapshot) PageCount() int { return len(s.pages) }

// readPage returns the page backing addr for reading: the private copy if
// one exists, else the shared snapshot page, else nil.
func (m *Memory) readPage(addr uint64) *[pageSize]byte {
	key := addr >> pageShift
	if p := m.pages[key]; p != nil {
		return p
	}
	return m.shared[key]
}

// page materializes the writable page backing addr, copying the shared
// snapshot page if one backs the address (the copy-on-write step). Read
// paths use readPage instead.
func (m *Memory) page(addr uint64) *[pageSize]byte {
	key := addr >> pageShift
	p := m.pages[key]
	if p == nil {
		p = new([pageSize]byte)
		if sp := m.shared[key]; sp != nil {
			*p = *sp
		}
		m.pages[key] = p
	}
	return p
}

// ByteAt returns the byte at addr.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.readPage(addr)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// SetByte stores one byte at addr.
func (m *Memory) SetByte(addr uint64, v byte) {
	m.page(addr)[addr&(pageSize-1)] = v
}

// Read returns size bytes at addr as a little-endian integer.
// size must be 1, 2, 4 or 8.
func (m *Memory) Read(addr uint64, size int) uint64 {
	off := addr & (pageSize - 1)
	if p := m.readPage(addr); p != nil && off+uint64(size) <= pageSize {
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	// Slow path: missing page or page-crossing access.
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores size bytes of v at addr, little-endian.
// size must be 1, 2, 4 or 8.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	off := addr & (pageSize - 1)
	if off+uint64(size) <= pageSize {
		p := m.page(addr)
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		p := m.page(addr)
		off := addr & (pageSize - 1)
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice, page-wise.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	dst := out
	for len(dst) > 0 {
		off := addr & (pageSize - 1)
		span := pageSize - int(off)
		if span > len(dst) {
			span = len(dst)
		}
		if p := m.readPage(addr); p != nil {
			copy(dst[:span], p[off:])
		}
		// Missing pages read as zero; out is already zeroed.
		dst = dst[span:]
		addr += uint64(span)
	}
	return out
}

// PageCount reports how many 4 KiB pages are reachable (private pages plus
// snapshot pages not yet shadowed by a private copy).
func (m *Memory) PageCount() int {
	n := len(m.pages)
	for k := range m.shared {
		if _, shadowed := m.pages[k]; !shadowed {
			n++
		}
	}
	return n
}
