// Package mem provides the simulated memory system: a sparse byte-addressable
// physical memory, set-associative write-back caches with LRU replacement,
// and the two-level hierarchy (split L1, unified L2, fixed-latency DRAM)
// used by both timing cores.
//
// Latency accounting follows the paper's Table 2: L1 caches have a
// pipelined two-cycle hit time, the unified L2 costs 10 cycles, and main
// memory costs 100 *baseline* cycles — a fixed wall-clock time that is
// re-expressed in cycles of whatever clock the core currently runs
// ("scaled accordingly when clock speed is increased").
package mem

import "encoding/binary"

const pageShift = 12
const pageSize = 1 << pageShift

// Memory is a sparse, byte-addressable 64-bit physical memory. The zero
// value is an empty memory; all bytes read as zero until written.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	key := addr >> pageShift
	p := m.pages[key]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

// ByteAt returns the byte at addr.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// SetByte stores one byte at addr.
func (m *Memory) SetByte(addr uint64, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// Read returns size bytes at addr as a little-endian integer.
// size must be 1, 2, 4 or 8.
func (m *Memory) Read(addr uint64, size int) uint64 {
	off := addr & (pageSize - 1)
	if p := m.page(addr, false); p != nil && off+uint64(size) <= pageSize {
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	// Slow path: missing page or page-crossing access.
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores size bytes of v at addr, little-endian.
// size must be 1, 2, 4 or 8.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	off := addr & (pageSize - 1)
	if off+uint64(size) <= pageSize {
		p := m.page(addr, true)
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		p := m.page(addr, true)
		off := addr & (pageSize - 1)
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.ByteAt(addr + uint64(i))
	}
	return out
}

// PageCount reports how many 4 KiB pages have been touched (for tests).
func (m *Memory) PageCount() int { return len(m.pages) }
