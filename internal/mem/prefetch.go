package mem

import "fmt"

// Canonical prefetcher names. The empty string canonicalizes to PFNone
// everywhere (HierarchyConfig, lab.Job, explore axes).
const (
	PFNone  = "none"
	PFDelta = "delta"
)

// Prefetchers lists the known prefetchers in canonical order.
func Prefetchers() []string { return []string{PFNone, PFDelta} }

// KnownPrefetcher reports whether name selects a prefetcher. The empty
// string is the canonical no-prefetcher default.
func KnownPrefetcher(name string) bool {
	switch name {
	case "", PFNone, PFDelta:
		return true
	}
	return false
}

// PrefetchConfig selects and sizes the hardware prefetcher watching the
// L1↔L2 boundary. The zero value means no prefetcher; it must stay
// comparable (it is part of the warm-snapshot cache key).
type PrefetchConfig struct {
	Kind      string // "" or PFNone, or PFDelta
	Degree    int    // lines issued per trigger
	TableSize int    // delta-table entries (power of two)
}

// DefaultPrefetchConfig returns the canonical configuration for a
// prefetcher kind, so equal selections produce equal (comparable) configs.
// It panics on unknown kinds: validate with KnownPrefetcher first.
func DefaultPrefetchConfig(kind string) PrefetchConfig {
	switch kind {
	case "", PFNone:
		return PrefetchConfig{}
	case PFDelta:
		return PrefetchConfig{Kind: PFDelta, Degree: 2, TableSize: 256}
	}
	panic(fmt.Sprintf("mem: unknown prefetcher %q", kind))
}

// Prefetcher predicts future demand lines from the demand-miss stream at
// the L1↔L2 boundary. The Hierarchy owns issue filtering, in-flight
// tracking and statistics; an implementation owns only its training state.
//
// Observe trains on one demand L1 miss (pc is the accessing instruction,
// addr the byte address) and appends up to Degree predicted byte addresses
// to dst, returning the extended slice. CopyStateFrom clones the training
// state of an identically configured prefetcher (warm snapshots) and
// panics on a mismatch.
type Prefetcher interface {
	Kind() string
	Observe(pc, addr uint64, dst []uint64) []uint64
	Reset()
	CopyStateFrom(src Prefetcher)
}

// newPrefetcher builds the prefetcher selected by cfg.Kind (non-empty,
// already validated).
func newPrefetcher(cfg PrefetchConfig) Prefetcher {
	switch cfg.Kind {
	case PFDelta:
		return newDeltaPrefetcher(cfg)
	}
	panic(fmt.Sprintf("mem: unknown prefetcher %q", cfg.Kind))
}

// deltaEntry is one PC's stride state.
type deltaEntry struct {
	pc       uint64
	lastAddr uint64
	delta    int64
	conf     uint8 // 2-bit confidence
}

// deltaPrefetcher is a PC-indexed delta/stride prefetcher: each load/store
// PC tracks its last address and most recent address delta with a 2-bit
// confidence counter; once the same delta repeats (confidence >= 2) it
// issues Degree prefetches down the stride.
type deltaPrefetcher struct {
	table  []deltaEntry
	degree int
}

func newDeltaPrefetcher(cfg PrefetchConfig) *deltaPrefetcher {
	size := cfg.TableSize
	if size <= 0 {
		size = 256
	}
	n := 1
	for n < size {
		n <<= 1
	}
	degree := cfg.Degree
	if degree <= 0 {
		degree = 2
	}
	return &deltaPrefetcher{table: make([]deltaEntry, n), degree: degree}
}

func (d *deltaPrefetcher) Kind() string { return PFDelta }

func (d *deltaPrefetcher) Reset() {
	for i := range d.table {
		d.table[i] = deltaEntry{}
	}
}

func (d *deltaPrefetcher) CopyStateFrom(src Prefetcher) {
	s, ok := src.(*deltaPrefetcher)
	if !ok || len(s.table) != len(d.table) || s.degree != d.degree {
		panic("mem: delta prefetcher CopyStateFrom with mismatched source")
	}
	copy(d.table, s.table)
}

func (d *deltaPrefetcher) Observe(pc, addr uint64, dst []uint64) []uint64 {
	e := &d.table[(pc>>2)&uint64(len(d.table)-1)]
	if e.pc != pc {
		// Tag miss: steal the slot, start tracking this PC.
		*e = deltaEntry{pc: pc, lastAddr: addr}
		return dst
	}
	delta := int64(addr - e.lastAddr)
	e.lastAddr = addr
	if delta == 0 {
		return dst
	}
	if delta != e.delta {
		if e.conf > 0 {
			e.conf--
			return dst
		}
		e.delta = delta
		return dst
	}
	if e.conf < 3 {
		e.conf++
	}
	if e.conf < 2 {
		return dst
	}
	next := addr
	for k := 0; k < d.degree; k++ {
		next += uint64(e.delta)
		dst = append(dst, next)
	}
	return dst
}
