// Package ooo implements the baseline machine of the paper: a nine-stage,
// four-way superscalar, out-of-order processor with a monolithic MIPS
// R10000-style issue queue (Table 2: 128-entry issue window, issue width 6,
// 192-entry register file, 64-entry load/store queue, G-share prediction,
// 64K L1 caches, unified 512K L2).
//
// Two configuration knobs reproduce the Figure 2 study: ExtraFrontEndStages
// lengthens the Fetch/Mispredict loop, and PipelinedWakeupSelect breaks the
// single-cycle Wake-Up/Select loop (losing back-to-back scheduling).
package ooo

import (
	"flywheel/internal/branch"
	"flywheel/internal/isa"
	"flywheel/internal/mem"
	"flywheel/internal/pipe"
)

// Config parameterizes the baseline core.
type Config struct {
	FetchWidth    int
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int

	IWSize   int
	ROBSize  int
	LSQSize  int
	PhysRegs int // total physical registers (rename capacity = PhysRegs - architected)

	FrontQueueCap int

	// DecodeStages is the number of front-end stages between fetch and
	// dispatch (decode + rename).
	DecodeStages int
	// ExtraFrontEndStages adds stages to the front-end (Figure 2,
	// Fetch/Mispredict loop study).
	ExtraFrontEndStages int
	// PipelinedWakeupSelect splits the Wake-Up/Select loop over two cycles
	// (Figure 2, dark bars): dependent instructions can no longer issue
	// back-to-back.
	PipelinedWakeupSelect bool
	// RedirectCycles is the fetch redirect time after a mispredicted
	// control instruction resolves.
	RedirectCycles int
	// BranchResolveCycles is the register-read depth between issue and
	// execute: mispredicts are detected this many cycles after the
	// branch's wake-up result time.
	BranchResolveCycles int

	// PeriodPS is the clock period in picoseconds.
	PeriodPS int64

	FU     pipe.FUConfig
	Branch branch.Config
	Mem    mem.HierarchyConfig

	// MaxCycles guards against deadlock bugs; 0 means no limit.
	MaxCycles uint64
}

// DefaultConfig returns the paper's Table 2 baseline at a 1 ns clock.
func DefaultConfig() Config {
	period := int64(1000)
	return Config{
		FetchWidth:          4,
		DispatchWidth:       4,
		IssueWidth:          6,
		CommitWidth:         4,
		IWSize:              128,
		ROBSize:             256,
		LSQSize:             64,
		PhysRegs:            192,
		FrontQueueCap:       32,
		DecodeStages:        2,
		RedirectCycles:      1,
		BranchResolveCycles: 1,
		PeriodPS:            period,
		FU:                  pipe.DefaultFUConfig(),
		Branch:              branch.DefaultConfig(),
		Mem:                 mem.DefaultHierarchyConfig(period),
	}
}

// RenameCapacity returns how many destination registers can be in flight.
func (c Config) RenameCapacity() int { return c.PhysRegs - isa.NumArchRegs }
