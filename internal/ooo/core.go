package ooo

import (
	"fmt"

	"flywheel/internal/branch"
	"flywheel/internal/clock"
	"flywheel/internal/mem"
	"flywheel/internal/pipe"
)

// Core is one baseline machine instance, wired to an architectural oracle
// stream. Create with New, run with Run.
type Core struct {
	cfg Config

	domain  *clock.Domain
	sys     *clock.System
	pred    *branch.Predictor
	hier    *mem.Hierarchy
	arena   *pipe.Arena
	fetcher *pipe.Fetcher
	front   *clock.Queue[*pipe.DynInst]
	iw      *pipe.IssueWindow
	rob     *pipe.ROB
	lsq     *pipe.LSQ
	fu      *pipe.FUPool
	rat     *pipe.RAT

	renameInFlight  int
	fetchStallUntil int64
	unblockAt       int64
	unblockInst     *pipe.DynInst

	halted  bool
	sawHalt bool
	stats   Stats

	// Retirement marks for sampled execution: markFn fires with a stats
	// snapshot the first time Retired reaches each ascending mark.
	marks    []uint64
	markFn   func(i int, s Stats)
	nextMark int
}

// New builds a core around the given oracle source: a live *emu.Stream, a
// trace-cache recorder or reader (package trace), or anything else
// honouring the Next/Fill iterator contract.
func New(cfg Config, stream pipe.InstSource) *Core {
	pred := branch.New(cfg.Branch)
	hier := mem.NewHierarchy(cfg.Mem)
	arena := pipe.NewArena(pipe.ArenaCapacity(cfg.ROBSize, cfg.FrontQueueCap, cfg.FetchWidth))
	c := &Core{
		cfg:     cfg,
		domain:  clock.NewDomain("core", cfg.PeriodPS, 0),
		pred:    pred,
		hier:    hier,
		arena:   arena,
		fetcher: pipe.NewFetcher(stream, pred, hier, cfg.FetchWidth, arena),
		front:   clock.NewQueue[*pipe.DynInst](cfg.FrontQueueCap),
		iw:      pipe.NewIssueWindow(cfg.IWSize),
		rob:     pipe.NewROB(cfg.ROBSize),
		lsq:     pipe.NewLSQ(cfg.LSQSize),
		fu:      pipe.NewFUPool(cfg.FU),
		rat:     pipe.NewRAT(arena),
	}
	c.sys = clock.NewSystem(c.domain)
	if cfg.PipelinedWakeupSelect {
		c.iw.ExtraWakeupDelayPS = cfg.PeriodPS
	}
	return c
}

// Run simulates until the program halts (or the stream ends) and returns
// the run statistics.
func (c *Core) Run() (Stats, error) {
	guardCycles := uint64(0)
	lastRetired := uint64(0)
	for !c.halted {
		now, _ := c.sys.Advance()
		c.cycle(now)

		if c.markFn != nil {
			for c.nextMark < len(c.marks) && c.stats.Retired >= c.marks[c.nextMark] {
				c.markFn(c.nextMark, c.StatsSnapshot())
				c.nextMark++
			}
		}
		if c.cfg.MaxCycles > 0 && c.domain.Cycles > c.cfg.MaxCycles {
			return c.stats, fmt.Errorf("ooo: exceeded max cycles (%d)", c.cfg.MaxCycles)
		}
		if c.stats.Retired == lastRetired {
			guardCycles++
			if guardCycles > 200_000 {
				return c.stats, fmt.Errorf(
					"ooo: no retirement progress for %d cycles at t=%dps (rob=%d iw=%d front=%d fetchBlocked=%v)",
					guardCycles, now, c.rob.Len(), c.iw.Len(), c.front.Len(), c.fetcher.Blocked())
			}
		} else {
			guardCycles = 0
			lastRetired = c.stats.Retired
		}
	}
	c.finalizeStats()
	return c.stats, nil
}

// SetMarks arranges for fn to be called with a statistics snapshot the
// first time the retired-instruction count reaches each mark (ascending).
// Sampled execution sets two marks per detailed window to delimit the
// measurement interval. Replaces any previous marks.
func (c *Core) SetMarks(marks []uint64, fn func(i int, s Stats)) {
	c.marks, c.markFn, c.nextMark = marks, fn, 0
}

// Resume clears the end-of-stream halt so Run can be called again after
// the instruction source is replenished; sampled execution resumes the
// same core for each detailed window so that predictor, cache, and queue
// state carry across. It reports false if the program truly halted
// (retired a HALT) — there is nothing left to run then.
func (c *Core) Resume() bool {
	if c.sawHalt {
		return false
	}
	c.halted = false
	c.fetcher.Reopen()
	return true
}

// cycle executes one clock edge, stages in reverse pipeline order so that
// same-cycle flow-through cannot skip stages.
func (c *Core) cycle(now int64) {
	c.retire(now)
	c.issue(now)
	c.dispatch(now)
	c.fetch(now)

	// Program done: everything drained and nothing more to fetch.
	if c.fetcher.Done() && c.front.Len() == 0 && c.rob.Len() == 0 {
		c.halted = true
	}
}

func (c *Core) retire(now int64) {
	for n := 0; n < c.cfg.CommitWidth; n++ {
		head := c.rob.Head()
		if head == nil || head.State < pipe.StateIssued || head.DoneAt > now {
			return
		}
		head.State = pipe.StateDone
		c.rob.PopHead()
		head.State = pipe.StateRetired
		c.rat.Retire(head)
		if head.Inst().HasDest() {
			c.renameInFlight--
			c.stats.RegWrites++
		}
		if head.IsLoad() || head.IsStore() {
			c.lsq.Remove(head)
		}
		if head.IsControl() {
			c.pred.Update(head.Trace.PC, head.Inst(), head.Trace.Taken, head.Trace.NextPC)
		}
		c.stats.Retired++
		halt := head.IsHalt()
		c.arena.Free(head)
		if halt {
			c.halted = true
			c.sawHalt = true
			return
		}
	}
}

func (c *Core) issue(now int64) {
	p := c.cfg.PeriodPS
	// One load-barrier snapshot serves every waiting load this edge (store
	// states cannot change inside the select scan); computed lazily so
	// load-free edges pay nothing.
	loadBarrier, haveBarrier := uint64(0), false
	selected := c.iw.Select(now, p, c.cfg.IssueWidth, c.fu, func(d *pipe.DynInst) pipe.SelectVerdict {
		if d.IsLoad() {
			if !haveBarrier {
				loadBarrier, haveBarrier = c.lsq.LoadBarrier(), true
			}
			if d.Seq() >= loadBarrier {
				return pipe.SelectSkip
			}
		}
		return pipe.SelectOK
	})
	for _, d := range selected {
		d.State = pipe.StateIssued
		d.IssuedAt = now
		lat := int64(c.fu.Latency(d.Class()))
		c.stats.Issued++
		c.stats.RegReads += uint64(d.Inst().NumSources())

		switch {
		case d.IsLoad():
			memCycles := int64(1) // store-to-load forward latency
			if fwd := c.lsq.ForwardSource(d); fwd != nil {
				d.Forwarded = true
			} else {
				res := c.hier.Access(mem.AccessLoad, d.Trace.PC, d.Trace.Addr, p)
				memCycles = int64(res.Cycles)
				d.L1Hit = res.L1Hit
			}
			d.ResultAt = now + (lat+memCycles)*p
			d.DoneAt = d.ResultAt + p
		case d.IsStore():
			// The architected write happens at commit; the port and cache
			// are charged here, where address and data are ready.
			c.hier.Access(mem.AccessStore, d.Trace.PC, d.Trace.Addr, p)
			d.ResultAt = now + lat*p
			d.DoneAt = d.ResultAt + p
		case d.IsControl():
			d.ResultAt = now + lat*p
			resolve := d.ResultAt + int64(c.cfg.BranchResolveCycles)*p
			d.DoneAt = resolve + p
			if d.Mispredicted {
				c.scheduleUnblock(d, resolve+int64(c.cfg.RedirectCycles)*p)
				c.stats.Mispredicts++
			}
		default:
			d.ResultAt = now + lat*p
			d.DoneAt = d.ResultAt + p
		}
	}
}

func (c *Core) scheduleUnblock(d *pipe.DynInst, at int64) {
	c.unblockInst = d
	c.unblockAt = at
}

func (c *Core) dispatch(now int64) {
	for n := 0; n < c.cfg.DispatchWidth; n++ {
		d, ok := c.front.Peek(now)
		if !ok {
			return
		}
		if c.rob.Full() || c.iw.Full() {
			c.stats.DispatchStallResource++
			return
		}
		if (d.IsLoad() || d.IsStore()) && c.lsq.Full() {
			c.stats.DispatchStallResource++
			return
		}
		if d.Inst().HasDest() && c.renameInFlight >= c.cfg.RenameCapacity() {
			c.stats.DispatchStallRename++
			return
		}
		c.front.Pop(now)
		c.rat.Link(d)
		c.rob.Push(d)
		c.iw.Insert(d, now)
		if d.IsLoad() || d.IsStore() {
			c.lsq.Insert(d)
		}
		if d.Inst().HasDest() {
			c.renameInFlight++
		}
		d.State = pipe.StateDispatched
		d.DispatchedAt = now
		c.stats.Dispatched++
	}
}

func (c *Core) fetch(now int64) {
	// Release a resolved mispredict.
	if c.unblockInst != nil && now >= c.unblockAt {
		c.fetcher.Unblock(c.unblockInst)
		c.unblockInst = nil
	}
	if now < c.fetchStallUntil || c.fetcher.Blocked() {
		return
	}
	if c.front.Free() < c.cfg.FetchWidth {
		c.stats.FetchStallQueue++
		return
	}
	p := c.cfg.PeriodPS
	group, lat := c.fetcher.FetchGroup(now, p)
	if len(group) == 0 {
		return
	}
	c.stats.FetchGroups++
	hit := c.cfg.Mem.L1I.HitLatency
	frontDepth := int64(hit + c.cfg.DecodeStages + c.cfg.ExtraFrontEndStages)
	readyAt := now + frontDepth*p
	if lat > hit {
		// I-cache miss: the whole front-end waits for the refill.
		readyAt = now + int64(lat+c.cfg.DecodeStages+c.cfg.ExtraFrontEndStages)*p
		c.fetchStallUntil = now + int64(lat-hit)*p
	}
	for _, d := range group {
		c.front.Push(d, readyAt)
	}
}
