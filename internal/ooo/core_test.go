package ooo

import (
	"fmt"
	"strings"
	"testing"

	"flywheel/internal/asm"
	"flywheel/internal/emu"
)

// runSrc assembles src, runs it through the baseline core and returns the
// run statistics together with the (fully executed) architectural machine.
func runSrc(t *testing.T, src string, cfg Config) (Stats, *emu.Machine) {
	t.Helper()
	p, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := emu.New(p)
	core := New(cfg, emu.NewStream(m, 0))
	stats, err := core.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return stats, m
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxCycles = 5_000_000
	return cfg
}

// chainLoop builds a loop whose body is a serial dependency chain of length
// n, iterated iters times (steady-state dominated, warm I-cache).
func chainLoop(n, iters int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\tli r2, %d\n\tli r1, 0\nloop:\n", iters)
	for i := 0; i < n; i++ {
		b.WriteString("\taddi r1, r1, 1\n")
	}
	b.WriteString("\taddi r2, r2, -1\n\tbnez r2, loop\n\thalt\n")
	return b.String()
}

// wideLoop builds a loop whose body is n independent single-cycle ops.
func wideLoop(n, iters int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\tli r20, %d\nloop:\n", iters)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\taddi r%d, r0, %d\n", 1+i%16, i)
	}
	b.WriteString("\taddi r20, r20, -1\n\tbnez r20, loop\n\thalt\n")
	return b.String()
}

func TestRetiresEverythingTheOracleExecutes(t *testing.T) {
	src := `
	li r1, 50
	li r2, 0
loop:
	add r2, r2, r1
	addi r1, r1, -1
	bnez r1, loop
	halt
`
	stats, m := runSrc(t, src, testConfig())
	if stats.Retired != m.Retired {
		t.Errorf("core retired %d, oracle executed %d", stats.Retired, m.Retired)
	}
	if m.IntRegs[2] != 50*51/2 {
		t.Errorf("architectural result = %d, want %d", m.IntRegs[2], 50*51/2)
	}
	if stats.Cycles == 0 || stats.TimePS == 0 {
		t.Error("no time elapsed")
	}
}

func TestDependentChainIPCNearOne(t *testing.T) {
	stats, _ := runSrc(t, chainLoop(16, 400), testConfig())
	// 18 instructions per iteration, the 16-op chain bounds throughput at
	// ~1/cycle; loop control overlaps.
	if stats.IPC > 1.35 {
		t.Errorf("dependent chain IPC = %.2f, want near 1 (back-to-back bound)", stats.IPC)
	}
	if stats.IPC < 0.85 {
		t.Errorf("dependent chain IPC = %.2f, want near 1", stats.IPC)
	}
}

func TestIndependentOpsReachFetchBound(t *testing.T) {
	stats, _ := runSrc(t, wideLoop(16, 400), testConfig())
	// 18 useful instructions per iteration; fetch delivers at most one
	// aligned 4-instruction group per cycle, so ~2.5-3.6 IPC is healthy.
	if stats.IPC < 2.2 {
		t.Errorf("independent ops IPC = %.2f, want fetch-bound >= 2.2", stats.IPC)
	}
}

func TestBackToBackLostWithPipelinedWakeup(t *testing.T) {
	src := chainLoop(16, 400)
	base, _ := runSrc(t, src, testConfig())
	cfg := testConfig()
	cfg.PipelinedWakeupSelect = true
	piped, _ := runSrc(t, src, cfg)

	// Dependent chain: every op waits one extra cycle -> roughly half the
	// throughput (Figure 2's dark bars show ~30-40% loss on real mixes).
	ratio := piped.IPC / base.IPC
	if ratio > 0.65 {
		t.Errorf("pipelined wake-up IPC ratio = %.2f, want <= 0.65 (lost back-to-back)", ratio)
	}
}

func TestExtraFrontEndStageCostsLittleOnPredictableCode(t *testing.T) {
	src := `
	li r1, 2000
	li r2, 0
loop:
	add r2, r2, r1
	addi r1, r1, -1
	bnez r1, loop
	halt
`
	base, _ := runSrc(t, src, testConfig())
	cfg := testConfig()
	cfg.ExtraFrontEndStages = 1
	deep, _ := runSrc(t, src, cfg)
	ratio := float64(deep.Cycles) / float64(base.Cycles)
	if ratio > 1.10 {
		t.Errorf("extra FE stage cost = %.1f%%, want small on predictable code", (ratio-1)*100)
	}
}

func TestMispredictsSlowExecution(t *testing.T) {
	// Data-dependent branch pattern driven by a 64-bit xorshift generator:
	// the 12-bit-history gshare cannot capture it.
	src := `
	li r1, 400        ; iterations
	li r2, 88172645   ; xorshift state
	li r6, 0
loop:
	slli r3, r2, 13
	xor  r2, r2, r3
	srli r3, r2, 7
	xor  r2, r2, r3
	slli r3, r2, 17
	xor  r2, r2, r3
	andi r5, r2, 1
	beqz r5, skip
	addi r6, r6, 1
skip:
	addi r1, r1, -1
	bnez r1, loop
	halt
`
	stats, _ := runSrc(t, src, testConfig())
	if stats.Mispredicts < 50 {
		t.Errorf("mispredicts = %d, want substantial on random branches", stats.Mispredicts)
	}

	// The same loop with the unpredictable branch removed must be faster.
	predictable := strings.Replace(src, "beqz r5, skip", "nop", 1)
	fast, _ := runSrc(t, predictable, testConfig())
	if fast.IPC <= stats.IPC*1.1 {
		t.Errorf("predictable IPC %.2f not clearly above unpredictable IPC %.2f", fast.IPC, stats.IPC)
	}
}

// chaseSrc builds a pointer-chasing microbenchmark over a circular list of
// nodes spaced 128 bytes apart (two cache lines), then chases links.
func chaseSrc(nodes, chases int) string {
	return fmt.Sprintf(`
	la r1, buf
	li r2, %d
init:
	addi r3, r1, 128
	sd r3, 0(r1)
	mv r1, r3
	addi r2, r2, -1
	bnez r2, init
	la r3, buf
	sd r3, 0(r1)      ; close the circle
	la r1, buf
	li r2, %d
chase:
	ld r1, 0(r1)
	addi r2, r2, -1
	bnez r2, chase
	halt
.data
buf:
	.space %d
`, nodes-1, chases, nodes*128+128)
}

func TestCacheMissesSlowDependentLoads(t *testing.T) {
	// 8192 nodes * 128 B = 1 MiB: misses all the way to memory.
	miss, _ := runSrc(t, chaseSrc(8192, 8192), testConfig())
	// 128 nodes * 128 B = 16 KiB: fits in L1D.
	hit, _ := runSrc(t, chaseSrc(128, 8192), testConfig())
	if miss.L1D.MissRate() < 0.4 {
		t.Errorf("large chase L1D miss rate = %.2f, want >= 0.4", miss.L1D.MissRate())
	}
	if miss.Cycles < hit.Cycles*3 {
		t.Errorf("missing chase (%d cycles) not clearly slower than hitting chase (%d)",
			miss.Cycles, hit.Cycles)
	}
}

func TestRenameCapacityLimitsInFlight(t *testing.T) {
	src := wideLoop(12, 400)
	cfg := testConfig()
	cfg.PhysRegs = 68 // only 4 in-flight destinations
	small, _ := runSrc(t, src, cfg)
	big, _ := runSrc(t, src, testConfig())
	if small.DispatchStallRename == 0 {
		t.Error("tiny register file caused no rename stalls")
	}
	if small.IPC >= big.IPC*0.8 {
		t.Errorf("tiny RF IPC %.2f not clearly below big RF IPC %.2f", small.IPC, big.IPC)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	src := `
	la r1, buf
	li r2, 500
loop:
	sd r2, 0(r1)
	ld r3, 0(r1)      ; must forward from the store
	addi r2, r2, -1
	bnez r2, loop
	halt
.data
buf:
	.space 64
`
	stats, _ := runSrc(t, src, testConfig())
	if stats.Forwards < 400 {
		t.Errorf("forwards = %d, want ~500", stats.Forwards)
	}
}

func TestTimePSEqualsCyclesTimesPeriod(t *testing.T) {
	cfg := testConfig()
	cfg.PeriodPS = 777
	stats, _ := runSrc(t, "\tli r1, 5\n\thalt\n", cfg)
	if stats.TimePS != int64(stats.Cycles)*777 {
		t.Errorf("time %d != cycles %d * period 777", stats.TimePS, stats.Cycles)
	}
}

func TestMaxCyclesGuardFires(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCycles = 10
	src := "\tli r1, 10000\nloop:\n\taddi r1, r1, -1\n\tbnez r1, loop\n\thalt\n"
	p := asm.MustAssemble("t.s", src)
	core := New(cfg, emu.NewStream(emu.New(p), 0))
	if _, err := core.Run(); err == nil {
		t.Error("MaxCycles guard did not fire")
	}
}

func TestFPWorkloadUsesFPUnits(t *testing.T) {
	src := `
	la r1, vec
	li r2, 100
	fld f1, 0(r1)
	fld f2, 8(r1)
loop:
	fmul f3, f1, f2
	fadd f1, f1, f3
	addi r2, r2, -1
	bnez r2, loop
	halt
.data
vec:
	.double 1.000001, 0.999999
`
	stats, _ := runSrc(t, src, testConfig())
	if stats.FUIssued[2] == 0 { // GMem
		t.Error("no memory-port activity recorded")
	}
	fpOps := stats.FUIssued[3] + stats.FUIssued[4] // GFPAdd + GFPMulDiv
	if fpOps < 200 {
		t.Errorf("FP ops issued = %d, want >= 200", fpOps)
	}
}

func TestStatsConsistency(t *testing.T) {
	stats, m := runSrc(t, chainLoop(4, 100), testConfig())
	if stats.Dispatched != stats.Retired || stats.Issued != stats.Retired {
		t.Errorf("dispatched/issued/retired = %d/%d/%d, want equal (no wrong path)",
			stats.Dispatched, stats.Issued, stats.Retired)
	}
	if stats.Fetched != m.Retired {
		t.Errorf("fetched %d != executed %d", stats.Fetched, m.Retired)
	}
	if stats.IWInserted != stats.IWSelected {
		t.Errorf("IW inserted %d != selected %d", stats.IWInserted, stats.IWSelected)
	}
}
