package ooo

import (
	"flywheel/internal/branch"
	"flywheel/internal/mem"
	"flywheel/internal/pipe"
)

// Stats reports one baseline run. Counters accumulate during Run;
// derived metrics are filled in when the run completes.
type Stats struct {
	// Progress.
	Cycles  uint64
	TimePS  int64
	Retired uint64

	// Pipeline activity.
	FetchGroups uint64
	Fetched     uint64
	Dispatched  uint64
	Issued      uint64
	RegReads    uint64
	RegWrites   uint64

	// Stalls and control flow.
	PredLookups           uint64
	PredUpdates           uint64
	Mispredicts           uint64
	DispatchStallResource uint64
	DispatchStallRename   uint64
	FetchStallQueue       uint64

	// Derived.
	IPC            float64
	BranchAccuracy float64
	AvgIWOccupancy float64

	// Structures.
	IWInserted uint64
	IWSelected uint64
	Forwards   uint64
	FUIssued   [pipe.NumFUGroups]uint64
	L1I        mem.CacheStats
	L1D        mem.CacheStats
	L2         mem.CacheStats

	// Frontend microarchitecture observables.
	CondBranches uint64
	Prefetch     mem.PrefetchStats
	Demand       mem.DemandStats

	// Pred is the raw predictor counter block; sampled execution
	// differences it across window marks to compute per-window accuracy.
	Pred branch.Stats
}

func (c *Core) finalizeStats() { c.stats = c.StatsSnapshot() }

// StatsSnapshot returns the statistics as of now with derived metrics
// filled in. It does not disturb the running counters and may be called
// repeatedly; sampled execution reads it at window marks.
func (c *Core) StatsSnapshot() Stats {
	s := c.stats
	s.Cycles = c.domain.Cycles
	s.TimePS = c.sys.Now()
	s.Fetched = c.fetcher.Fetched
	if s.Cycles > 0 {
		s.IPC = float64(s.Retired) / float64(s.Cycles)
	}
	s.PredLookups = c.pred.Stats.Lookups
	s.PredUpdates = c.pred.Stats.Updates
	s.BranchAccuracy = c.pred.Stats.Accuracy()
	s.AvgIWOccupancy = c.iw.AvgOccupancy()
	s.IWInserted = c.iw.Inserted
	s.IWSelected = c.iw.Selected
	s.Forwards = c.lsq.Forwards
	s.FUIssued = c.fu.Issued
	s.L1I = c.hier.L1I.Stats
	s.L1D = c.hier.L1D.Stats
	s.L2 = c.hier.L2.Stats
	s.CondBranches = c.pred.Stats.CondBranches
	s.Prefetch = c.hier.PrefetchStats()
	s.Demand = c.hier.DemandStats()
	s.Pred = c.pred.Stats
	return s
}

// Stats returns the current statistics (final after Run returns).
func (c *Core) Stats() Stats { return c.stats }

// Warmer exposes functional warming over this core's caches and predictor;
// call before Run, then Warmer().Finish() to clear the warm-up statistics.
func (c *Core) Warmer() *pipe.Warmer { return pipe.NewWarmer(c.pred, c.hier) }
