package pipe

import "flywheel/internal/emu"

// Ref identifies a DynInst living in an Arena slot, tagged with the slot's
// generation at link time. The zero Ref means "no instruction". Because
// generations advance on every free, a Ref held across the producer's
// retirement simply stops resolving — exactly the semantics the register
// alias table needs: a recycled producer is by definition architecturally
// complete, so its value is ready.
type Ref uint64

// NoRef is the absent-reference value.
const NoRef Ref = 0

// makeRef packs a slot index and generation. Slot indexes are offset by one
// so that the zero Ref never aliases slot 0.
func makeRef(slot, gen uint32) Ref {
	return Ref(uint64(gen)<<32 | uint64(slot+1))
}

func (r Ref) split() (slot, gen uint32) {
	return uint32(r&0xffffffff) - 1, uint32(r >> 32)
}

// Arena recycles DynInst storage for the in-flight window of a timing
// core. Slots are preallocated once (and grown on demand in one-slot
// steps, which only happens if a caller retains instructions beyond the
// configured in-flight capacity), so the steady-state hot loop performs
// zero allocations per dynamic instruction — where the previous design
// heap-allocated one *DynInst per instruction and made the GC chase
// millions of Src pointers across the heap.
//
// Lifecycle: Alloc at fetch (or replay issue), Free at retirement or on a
// front-end squash. Freeing bumps the slot's generation, invalidating every
// outstanding Ref to the old occupant.
type Arena struct {
	slots []*DynInst
	free  []uint32

	// Allocs and Frees count lifecycle events (for tests and stats).
	Allocs uint64
	Frees  uint64
}

// ArenaCapacity sizes an arena for a core: in-flight instructions live
// from fetch to retirement, so the arena must cover the reorder buffer
// plus everything parked in front of dispatch (front-end queue, one fetch
// group of lookahead) with a little slack. Both timing cores size through
// this helper so their accounting cannot drift.
func ArenaCapacity(robSize, frontQueueCap, fetchWidth int) int {
	return robSize + frontQueueCap + fetchWidth + 2
}

// NewArena builds an arena with the given slot capacity. Capacity should
// cover every place a core can park an instruction simultaneously: reorder
// buffer, front-end queue, fetch lookahead and one fetch group of slack.
func NewArena(capacity int) *Arena {
	if capacity < 1 {
		capacity = 1
	}
	a := &Arena{
		slots: make([]*DynInst, capacity),
		free:  make([]uint32, capacity),
	}
	for i := range a.slots {
		d := &DynInst{arena: a, slot: uint32(i), gen: 1}
		a.slots[i] = d
		// LIFO free list: hand out low slots first.
		a.free[i] = uint32(capacity - 1 - i)
	}
	return a
}

// Cap returns the current slot count.
func (a *Arena) Cap() int { return len(a.slots) }

// Live returns how many slots are currently allocated.
func (a *Arena) Live() int { return len(a.slots) - len(a.free) }

// Alloc recycles a slot for the given oracle record. The returned
// instruction is valid until Free; its Ref stops resolving after that.
func (a *Arena) Alloc(tr emu.Trace) *DynInst {
	if len(a.free) == 0 {
		// Capacity was undersized: grow by one stable slot. The pointer
		// table keeps existing instructions in place.
		d := &DynInst{arena: a, slot: uint32(len(a.slots)), gen: 1}
		a.slots = append(a.slots, d)
		a.free = append(a.free, d.slot)
	}
	idx := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	d := a.slots[idx]
	*d = DynInst{
		Trace:     tr,
		ResultAt:  FarFuture,
		DoneAt:    FarFuture,
		IssueUnit: -1,
		arena:     a,
		slot:      d.slot,
		gen:       d.gen,
		class:     tr.Inst.Class(),
		srcReady:  -1,
		iwSlot:    -1,
	}
	a.Allocs++
	return d
}

// Free returns an instruction's slot to the arena and invalidates every
// outstanding Ref to it. Callers must not touch d afterwards.
func (a *Arena) Free(d *DynInst) {
	if d == nil || d.arena != a {
		return
	}
	d.gen++
	a.free = append(a.free, d.slot)
	a.Frees++
}

// Get resolves a Ref. It returns nil for NoRef and for stale references
// whose slot has been freed (and possibly recycled) since link time.
func (a *Arena) Get(r Ref) *DynInst {
	if r == NoRef {
		return nil
	}
	slot, gen := r.split()
	if slot >= uint32(len(a.slots)) {
		return nil
	}
	d := a.slots[slot]
	if d.gen != gen {
		return nil
	}
	return d
}
