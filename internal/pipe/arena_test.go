package pipe

import (
	"testing"

	"flywheel/internal/emu"
	"flywheel/internal/isa"
)

func aluTrace(seq uint64) emu.Trace {
	return emu.Trace{
		Seq: seq,
		Inst: isa.Instruction{
			Op: isa.ADD, Rd: isa.IntReg(1), Rs1: isa.IntReg(2), Rs2: isa.IntReg(3),
		},
	}
}

func TestArenaAllocFreeRecycles(t *testing.T) {
	a := NewArena(4)
	if a.Cap() != 4 || a.Live() != 0 {
		t.Fatalf("fresh arena: cap=%d live=%d", a.Cap(), a.Live())
	}
	d := a.Alloc(aluTrace(0))
	if a.Live() != 1 {
		t.Fatalf("live=%d after alloc, want 1", a.Live())
	}
	if d.ResultAt != FarFuture || d.DoneAt != FarFuture || d.IssueUnit != -1 {
		t.Fatal("allocated instruction not reset to defaults")
	}
	ref := d.Ref()
	if a.Get(ref) != d {
		t.Fatal("live ref does not resolve to its instruction")
	}
	a.Free(d)
	if a.Live() != 0 {
		t.Fatalf("live=%d after free, want 0", a.Live())
	}
	if a.Get(ref) != nil {
		t.Fatal("stale ref resolved after free")
	}
}

func TestArenaStaleRefAfterRecycle(t *testing.T) {
	a := NewArena(1)
	d1 := a.Alloc(aluTrace(0))
	ref1 := d1.Ref()
	a.Free(d1)
	d2 := a.Alloc(aluTrace(1))
	if d2.slot != d1.slot {
		t.Fatal("single-slot arena did not recycle the slot")
	}
	if a.Get(ref1) != nil {
		t.Fatal("ref to the old occupant resolved against the new one")
	}
	if a.Get(d2.Ref()) != d2 {
		t.Fatal("new occupant's ref does not resolve")
	}
}

// TestArenaRecycledProducerReadsReady checks the wake-up semantics the RAT
// relies on: once a producer's slot is recycled, a consumer still holding
// its ref must treat the operand as architecturally ready.
func TestArenaRecycledProducerReadsReady(t *testing.T) {
	a := NewArena(8)
	prod := a.Alloc(aluTrace(0))
	cons := a.Alloc(emu.Trace{
		Seq:  1,
		Inst: isa.Instruction{Op: isa.ADD, Rd: isa.IntReg(4), Rs1: isa.IntReg(1), Rs2: isa.RegNone},
	})
	cons.Src[0] = prod.Ref()
	if got := cons.SourcesReadyAt(0); got != FarFuture {
		t.Fatalf("unissued producer: ready at %d, want FarFuture", got)
	}
	a.Free(prod)
	if got := cons.SourcesReadyAt(0); got != 0 {
		t.Fatalf("recycled producer: ready at %d, want 0 (ready)", got)
	}
}

func TestArenaGrowsWhenExhausted(t *testing.T) {
	a := NewArena(2)
	d1, d2 := a.Alloc(aluTrace(0)), a.Alloc(aluTrace(1))
	d3 := a.Alloc(aluTrace(2)) // over capacity: grows
	if a.Cap() != 3 {
		t.Fatalf("cap=%d after growth, want 3", a.Cap())
	}
	for _, d := range []*DynInst{d1, d2, d3} {
		if a.Get(d.Ref()) != d {
			t.Fatal("instruction unreachable after growth")
		}
	}
}

// TestArenaSteadyStateAllocFree pins the arena's steady state at zero heap
// allocations per in-flight instruction lifecycle.
func TestArenaSteadyStateAllocFree(t *testing.T) {
	a := NewArena(64)
	tr := aluTrace(0)
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			d := a.Alloc(tr)
			a.Free(d)
		}
	})
	if avg != 0 {
		t.Fatalf("arena steady state allocates: %.2f allocs per 64 lifecycles, want 0", avg)
	}
}

// BenchmarkArenaLifecycle measures one alloc/free round trip.
func BenchmarkArenaLifecycle(b *testing.B) {
	a := NewArena(64)
	tr := aluTrace(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := a.Alloc(tr)
		a.Free(d)
	}
}
