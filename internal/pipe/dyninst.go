// Package pipe provides the pipeline building blocks shared by the baseline
// superscalar core (package ooo) and the Flywheel core (package core): the
// in-flight instruction representation, issue window with wake-up/select,
// reorder buffer, load/store queue, functional-unit pool, register alias
// table and the front-end fetcher.
//
// Timing convention: everything is stamped in picoseconds on the global
// simulation timeline, so the same structures work unchanged whether a core
// runs one clock domain (baseline) or several at different speeds
// (Flywheel). An instruction selected at edge t with execution latency L
// cycles of period p has ResultAt = t + L*p: a dependent may be selected at
// any edge >= ResultAt, which yields back-to-back scheduling of single-cycle
// operations and stretches correctly when p changes.
package pipe

import (
	"math"

	"flywheel/internal/emu"
	"flywheel/internal/isa"
)

// FarFuture marks timestamps that have not been resolved yet.
const FarFuture int64 = math.MaxInt64 / 4

// State tracks an instruction's progress through the machine.
type State uint8

// Instruction lifecycle states.
const (
	StateFetched State = iota
	StateDispatched
	StateIssued
	StateDone
	StateRetired
)

// String names the state for debugging output.
func (s State) String() string {
	switch s {
	case StateFetched:
		return "fetched"
	case StateDispatched:
		return "dispatched"
	case StateIssued:
		return "issued"
	case StateDone:
		return "done"
	case StateRetired:
		return "retired"
	default:
		return "state?"
	}
}

// DynInst is one dynamic instruction in flight. The oracle trace supplies
// architected outcomes (branch direction, memory address); all timestamps
// are in picoseconds.
type DynInst struct {
	Trace emu.Trace
	State State

	// Src holds generation-checked arena references to the in-flight
	// producers of the register sources (NoRef when the operand was
	// architecturally ready at dispatch). A reference that no longer
	// resolves means the producer retired and its slot was recycled —
	// i.e. the operand is ready.
	Src [2]Ref

	FetchedAt    int64
	DispatchedAt int64
	IssuedAt     int64
	// ResultAt is when dependents may issue (wake-up time). FarFuture
	// until the instruction is issued and its latency is known.
	ResultAt int64
	// DoneAt is when the instruction may retire (after write-back).
	DoneAt int64

	// Mispredicted marks control instructions whose front-end prediction
	// disagreed with the architected outcome.
	Mispredicted bool

	// L1Hit records the D-cache outcome for loads (for statistics).
	L1Hit bool
	// Forwarded records store-to-load forwarding (for statistics).
	Forwarded bool

	// IssueUnit groups instructions selected in the same cycle; the
	// Flywheel core uses it to build Execution Cache issue units.
	IssueUnit int64

	// LID is the logical rename identifier assigned by the Flywheel
	// two-phase renaming mechanism (per-architected-register pool index).
	LID [3]uint16 // rd, rs1, rs2 logical ids

	// Arena bookkeeping: the owning arena, the slot index and the slot
	// generation this occupant was allocated under.
	arena *Arena
	slot  uint32
	gen   uint32
}

// NewDynInst wraps an oracle trace record in a standalone (non-arena)
// instruction. The timing cores allocate through an Arena instead; this
// constructor remains for tests and one-off uses.
func NewDynInst(tr emu.Trace) *DynInst {
	return &DynInst{Trace: tr, ResultAt: FarFuture, DoneAt: FarFuture, IssueUnit: -1}
}

// Ref returns the generation-checked reference to this instruction, or
// NoRef for a standalone (non-arena) instruction.
func (d *DynInst) Ref() Ref {
	if d.arena == nil {
		return NoRef
	}
	return makeRef(d.slot, d.gen)
}

// Seq returns the dynamic sequence number.
func (d *DynInst) Seq() uint64 { return d.Trace.Seq }

// Inst returns the static instruction.
func (d *DynInst) Inst() isa.Instruction { return d.Trace.Inst }

// Class returns the instruction class.
func (d *DynInst) Class() isa.Class { return d.Trace.Inst.Class() }

// IsLoad reports whether this is a load.
func (d *DynInst) IsLoad() bool { return d.Class() == isa.ClassLoad }

// IsStore reports whether this is a store.
func (d *DynInst) IsStore() bool { return d.Class() == isa.ClassStore }

// IsControl reports whether this instruction can redirect fetch.
func (d *DynInst) IsControl() bool { return d.Trace.Inst.IsControl() }

// IsHalt reports whether this is the halt instruction.
func (d *DynInst) IsHalt() bool { return d.Trace.Inst.Op == isa.HALT }

// SourcesReadyAt returns the earliest edge at which every register operand
// is available. extraDelayPS widens the wake-up loop (the pipelined
// wake-up/select study of Figure 2 passes one back-end period here).
// Producers whose references no longer resolve have retired; their values
// are architecturally ready.
func (d *DynInst) SourcesReadyAt(extraDelayPS int64) int64 {
	ready := int64(0)
	for _, ref := range d.Src {
		if ref == NoRef || d.arena == nil {
			continue
		}
		src := d.arena.Get(ref)
		if src == nil {
			continue
		}
		t := src.ResultAt
		if t >= FarFuture {
			return FarFuture
		}
		t += extraDelayPS
		if t > ready {
			ready = t
		}
	}
	return ready
}

// Overlaps reports whether two memory accesses touch overlapping bytes.
func (d *DynInst) Overlaps(o *DynInst) bool {
	a0, a1 := d.Trace.Addr, d.Trace.Addr+uint64(d.Inst().MemWidth())
	b0, b1 := o.Trace.Addr, o.Trace.Addr+uint64(o.Inst().MemWidth())
	return a0 < b1 && b0 < a1
}
