// Package pipe provides the pipeline building blocks shared by the baseline
// superscalar core (package ooo) and the Flywheel core (package core): the
// in-flight instruction representation, issue window with wake-up/select,
// reorder buffer, load/store queue, functional-unit pool, register alias
// table and the front-end fetcher.
//
// Timing convention: everything is stamped in picoseconds on the global
// simulation timeline, so the same structures work unchanged whether a core
// runs one clock domain (baseline) or several at different speeds
// (Flywheel). An instruction selected at edge t with execution latency L
// cycles of period p has ResultAt = t + L*p: a dependent may be selected at
// any edge >= ResultAt, which yields back-to-back scheduling of single-cycle
// operations and stretches correctly when p changes.
package pipe

import (
	"math"

	"flywheel/internal/emu"
	"flywheel/internal/isa"
)

// FarFuture marks timestamps that have not been resolved yet.
const FarFuture int64 = math.MaxInt64 / 4

// State tracks an instruction's progress through the machine.
type State uint8

// Instruction lifecycle states.
const (
	StateFetched State = iota
	StateDispatched
	StateIssued
	StateDone
	StateRetired
)

// String names the state for debugging output.
func (s State) String() string {
	switch s {
	case StateFetched:
		return "fetched"
	case StateDispatched:
		return "dispatched"
	case StateIssued:
		return "issued"
	case StateDone:
		return "done"
	case StateRetired:
		return "retired"
	default:
		return "state?"
	}
}

// DynInst is one dynamic instruction in flight. The oracle trace supplies
// architected outcomes (branch direction, memory address); all timestamps
// are in picoseconds.
type DynInst struct {
	Trace emu.Trace
	State State

	// Src holds generation-checked arena references to the in-flight
	// producers of the register sources (NoRef when the operand was
	// architecturally ready at dispatch). A reference that no longer
	// resolves means the producer retired and its slot was recycled —
	// i.e. the operand is ready.
	Src [2]Ref

	FetchedAt    int64
	DispatchedAt int64
	IssuedAt     int64
	// ResultAt is when dependents may issue (wake-up time). FarFuture
	// until the instruction is issued and its latency is known.
	ResultAt int64
	// DoneAt is when the instruction may retire (after write-back).
	DoneAt int64

	// Mispredicted marks control instructions whose front-end prediction
	// disagreed with the architected outcome.
	Mispredicted bool

	// L1Hit records the D-cache outcome for loads (for statistics).
	L1Hit bool
	// Forwarded records store-to-load forwarding (for statistics).
	Forwarded bool

	// IssueUnit groups instructions selected in the same cycle; the
	// Flywheel core uses it to build Execution Cache issue units.
	IssueUnit int64

	// LID is the logical rename identifier assigned by the Flywheel
	// two-phase renaming mechanism (per-architected-register pool index).
	LID [3]uint16 // rd, rs1, rs2 logical ids

	// Arena bookkeeping: the owning arena, the slot index and the slot
	// generation this occupant was allocated under.
	arena *Arena
	slot  uint32
	gen   uint32

	// class caches Trace.Inst.Class() — the issue window re-checks the
	// class on every wake-up/select edge, so one table walk at allocation
	// pays for thousands of reads.
	class isa.Class

	// srcReady memoizes SourcesReadyAt once every producer has issued
	// (-1 = not yet known); blockRef caches the unissued producer that
	// blocked the last walk. See SourcesReadyAt and readyAtCached for why
	// the memo is exact.
	srcReady int64
	blockRef Ref

	// Issue-window wake-up plumbing: the slot this instruction occupies in
	// its window (-1 when not inserted), whether it is on the window's
	// ready list, the head of the chain of entries parked waiting on this
	// instruction's result, and this instruction's link in the chain it is
	// parked on. See IssueWindow.
	iwSlot  int32
	iwReady bool
	wHead   Ref
	wNext   Ref
}

// NewDynInst wraps an oracle trace record in a standalone (non-arena)
// instruction. The timing cores allocate through an Arena instead; this
// constructor remains for tests and one-off uses.
func NewDynInst(tr emu.Trace) *DynInst {
	return &DynInst{
		Trace: tr, ResultAt: FarFuture, DoneAt: FarFuture, IssueUnit: -1,
		class: tr.Inst.Class(), srcReady: -1, iwSlot: -1,
	}
}

// Ref returns the generation-checked reference to this instruction, or
// NoRef for a standalone (non-arena) instruction.
func (d *DynInst) Ref() Ref {
	if d.arena == nil {
		return NoRef
	}
	return makeRef(d.slot, d.gen)
}

// Seq returns the dynamic sequence number.
func (d *DynInst) Seq() uint64 { return d.Trace.Seq }

// Inst returns the static instruction.
func (d *DynInst) Inst() isa.Instruction { return d.Trace.Inst }

// Class returns the instruction class (cached at allocation).
func (d *DynInst) Class() isa.Class { return d.class }

// IsLoad reports whether this is a load.
func (d *DynInst) IsLoad() bool { return d.Class() == isa.ClassLoad }

// IsStore reports whether this is a store.
func (d *DynInst) IsStore() bool { return d.Class() == isa.ClassStore }

// IsControl reports whether this instruction can redirect fetch.
func (d *DynInst) IsControl() bool { return d.Trace.Inst.IsControl() }

// IsHalt reports whether this is the halt instruction.
func (d *DynInst) IsHalt() bool { return d.Trace.Inst.Op == isa.HALT }

// SourcesReadyAt returns the earliest edge at which every register operand
// is available. extraDelayPS widens the wake-up loop (the pipelined
// wake-up/select study of Figure 2 passes one back-end period here).
// Producers whose references no longer resolve have retired; their values
// are architecturally ready.
//
// Once every producer has issued the answer is final and is memoized:
// a producer's ResultAt is written exactly once (at issue), and a producer
// can only be freed at retirement, at or after its own DoneAt >= ResultAt —
// by which time the memoized bound has already passed (the wake-up extra
// delay never exceeds one period, the gap between ResultAt and DoneAt).
// Producers freed by a squash were unissued, so no finite value was
// memoized for their consumers. The select loop re-asks this question
// every cycle for every waiting instruction; the memo turns the common
// case into one comparison.
func (d *DynInst) SourcesReadyAt(extraDelayPS int64) int64 {
	if d.srcReady >= 0 {
		return d.srcReady
	}
	return d.sourcesReadyWalk(extraDelayPS)
}

// sourcesReadyWalk is the full producer walk behind SourcesReadyAt. It
// memoizes a finite answer (producers' ResultAt are written exactly once,
// at issue, so a finite maximum is final) and caches the first unissued
// producer it meets for readyAtCached's fast blocked-recheck.
func (d *DynInst) sourcesReadyWalk(extraDelayPS int64) int64 {
	ready := int64(0)
	for _, ref := range d.Src {
		if ref == NoRef || d.arena == nil {
			continue
		}
		src := d.arena.Get(ref)
		if src == nil {
			continue
		}
		t := src.ResultAt
		if t >= FarFuture {
			d.blockRef = ref
			return FarFuture
		}
		t += extraDelayPS
		if t > ready {
			ready = t
		}
	}
	d.srcReady = ready
	return ready
}

// readyAtCached is SourcesReadyAt with an exact fast path for the select
// loop's dominant case, an entry waiting on an unissued producer: while
// the cached blocking producer still resolves and has not issued, the
// answer is still "not ready" — one generation-checked load instead of a
// full walk. The check is exact, not heuristic: a recycled slot fails the
// generation check and an issued producer has a finite ResultAt, and
// either triggers the full walk.
func (d *DynInst) readyAtCached(extraDelayPS int64) int64 {
	if d.srcReady >= 0 {
		return d.srcReady
	}
	if d.blockRef != NoRef {
		if p := d.arena.Get(d.blockRef); p != nil && p.ResultAt >= FarFuture {
			return FarFuture
		}
		d.blockRef = NoRef
	}
	return d.sourcesReadyWalk(extraDelayPS)
}

// Overlaps reports whether two memory accesses touch overlapping bytes.
func (d *DynInst) Overlaps(o *DynInst) bool {
	a0, a1 := d.Trace.Addr, d.Trace.Addr+uint64(d.Inst().MemWidth())
	b0, b1 := o.Trace.Addr, o.Trace.Addr+uint64(o.Inst().MemWidth())
	return a0 < b1 && b0 < a1
}
