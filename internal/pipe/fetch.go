package pipe

import (
	"flywheel/internal/branch"
	"flywheel/internal/emu"
	"flywheel/internal/mem"
)

// InstSource supplies the dynamic instruction stream in program order.
// *emu.Stream implements it directly; the Flywheel core interposes its
// oracle window so trace replay and the front-end share one stream.
type InstSource interface {
	Next() (emu.Trace, bool)
}

// Fetcher models the instruction fetch stage. It pulls the dynamic
// instruction stream from the architectural oracle and follows the
// *predicted* control flow indirectly: fetch proceeds down the correct path,
// but whenever the branch predictor would have disagreed with the oracle the
// fetcher blocks — exactly as a real front-end stops producing useful work
// after a mispredict — until the core reports the branch resolved. This
// charges the full misprediction penalty without simulating wrong-path
// instructions (see DESIGN.md, substitutions).
//
// Fetch groups follow the paper's baseline: up to width instructions per
// cycle from one aligned block, ending early at taken control flow.
type Fetcher struct {
	stream InstSource
	pred   *branch.Predictor
	hier   *mem.Hierarchy
	width  int

	pending   *DynInst // lookahead when a group ends on an alignment break
	blockedOn *DynInst // unresolved mispredicted control instruction
	done      bool

	// Stats
	Groups      uint64
	Fetched     uint64
	Mispredicts uint64
}

// NewFetcher builds a fetch stage of the given width.
func NewFetcher(stream InstSource, pred *branch.Predictor, hier *mem.Hierarchy, width int) *Fetcher {
	return &Fetcher{stream: stream, pred: pred, hier: hier, width: width}
}

// TakePending removes and returns the lookahead instruction, if any; the
// Flywheel core returns it to the oracle window when switching into trace
// execution.
func (f *Fetcher) TakePending() *DynInst {
	d := f.pending
	f.pending = nil
	return d
}

// ForceUnblock clears any mispredict block (mode switches reset the
// front-end).
func (f *Fetcher) ForceUnblock() { f.blockedOn = nil }

// Blocked reports whether fetch is stalled behind a mispredicted control
// instruction.
func (f *Fetcher) Blocked() bool { return f.blockedOn != nil }

// BlockedOn returns the instruction fetch is stalled on, or nil.
func (f *Fetcher) BlockedOn() *DynInst { return f.blockedOn }

// Done reports whether the instruction stream is exhausted.
func (f *Fetcher) Done() bool { return f.done && f.pending == nil }

// Unblock resumes fetch after the mispredicted instruction d resolved.
func (f *Fetcher) Unblock(d *DynInst) {
	if f.blockedOn == d {
		f.blockedOn = nil
	}
}

// next returns the next dynamic instruction, honouring the lookahead slot.
func (f *Fetcher) next() *DynInst {
	if f.pending != nil {
		d := f.pending
		f.pending = nil
		return d
	}
	tr, ok := f.stream.Next()
	if !ok {
		f.done = true
		return nil
	}
	return NewDynInst(tr)
}

// FetchGroup fetches one group. It returns the instructions and the
// instruction-cache latency in cycles (the core turns that into the
// fetch-buffer visibility time). It returns a nil group when fetch is
// blocked or the stream ended.
func (f *Fetcher) FetchGroup(now, periodPS int64) ([]*DynInst, int) {
	if f.blockedOn != nil || f.Done() {
		return nil, 0
	}
	var group []*DynInst
	blockID := int64(-1)
	for len(group) < f.width {
		d := f.next()
		if d == nil {
			break
		}
		// Aligned fetch: all instructions of a group come from one
		// width-instruction block.
		id := int64(d.Trace.PC) / (int64(f.width) * 4)
		if blockID == -1 {
			blockID = id
		} else if id != blockID {
			f.pending = d
			break
		}
		d.FetchedAt = now
		d.State = StateFetched
		group = append(group, d)
		f.Fetched++

		if d.IsControl() {
			pred := f.pred.Predict(d.Trace.PC, d.Inst())
			wrong := pred.Taken != d.Trace.Taken ||
				(d.Trace.Taken && (!pred.TargetKnown || pred.Target != d.Trace.NextPC))
			f.pred.RecordOutcome(d.Inst(), wrong)
			if wrong {
				d.Mispredicted = true
				f.blockedOn = d
				f.Mispredicts++
				break
			}
			if d.Trace.Taken {
				// Correctly predicted taken: group ends, next group
				// starts at the target next cycle.
				break
			}
		}
		if d.IsHalt() {
			break
		}
	}
	if len(group) == 0 {
		return nil, 0
	}
	f.Groups++
	lat := f.hier.Access(mem.AccessFetch, group[0].Trace.PC, periodPS)
	return group, lat.Cycles
}
