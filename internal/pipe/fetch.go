package pipe

import (
	"flywheel/internal/branch"
	"flywheel/internal/emu"
	"flywheel/internal/mem"
)

// InstSource supplies the dynamic instruction stream in program order.
// *emu.Stream implements it directly; the Flywheel core interposes its
// oracle window so trace replay and the front-end share one stream.
type InstSource interface {
	Next() (emu.Trace, bool)
}

// Filler is optionally implemented by instruction sources that can
// batch-deliver records into a caller-owned buffer (*emu.Stream does). The
// fetcher uses it to amortize per-record interface calls.
type Filler interface {
	Fill(buf []emu.Trace) int
}

// fetchBatch is the fetcher's trace read-ahead when the source supports
// batching.
const fetchBatch = 64

// Fetcher models the instruction fetch stage. It pulls the dynamic
// instruction stream from the architectural oracle and follows the
// *predicted* control flow indirectly: fetch proceeds down the correct path,
// but whenever the branch predictor would have disagreed with the oracle the
// fetcher blocks — exactly as a real front-end stops producing useful work
// after a mispredict — until the core reports the branch resolved. This
// charges the full misprediction penalty without simulating wrong-path
// instructions (see DESIGN.md, substitutions).
//
// Fetch groups follow the paper's baseline: up to width instructions per
// cycle from one aligned block, ending early at taken control flow.
type Fetcher struct {
	stream InstSource
	pred   *branch.Predictor
	hier   *mem.Hierarchy
	width  int
	arena  *Arena

	pending   *DynInst // lookahead when a group ends on an alignment break
	blockedOn *DynInst // unresolved mispredicted control instruction
	done      bool

	// group is the reused FetchGroup result buffer.
	group []*DynInst

	// Batched delivery (when the source implements Filler): buf[bufPos:
	// bufLen] holds records read ahead of the pipeline.
	filler Filler
	buf    []emu.Trace
	bufPos int
	bufLen int

	// Stats
	Groups      uint64
	Fetched     uint64
	Mispredicts uint64
}

// NewFetcher builds a fetch stage of the given width, drawing in-flight
// instruction storage from the arena.
func NewFetcher(stream InstSource, pred *branch.Predictor, hier *mem.Hierarchy, width int, arena *Arena) *Fetcher {
	f := &Fetcher{
		stream: stream, pred: pred, hier: hier, width: width, arena: arena,
		group: make([]*DynInst, 0, width),
	}
	if filler, ok := stream.(Filler); ok {
		f.filler = filler
		f.buf = make([]emu.Trace, fetchBatch)
	}
	return f
}

// TakePending removes and returns the lookahead instruction, if any; the
// Flywheel core returns it to the oracle window when switching into trace
// execution.
func (f *Fetcher) TakePending() *DynInst {
	d := f.pending
	f.pending = nil
	return d
}

// ForceUnblock clears any mispredict block (mode switches reset the
// front-end).
func (f *Fetcher) ForceUnblock() { f.blockedOn = nil }

// Blocked reports whether fetch is stalled behind a mispredicted control
// instruction.
func (f *Fetcher) Blocked() bool { return f.blockedOn != nil }

// BlockedOn returns the instruction fetch is stalled on, or nil.
func (f *Fetcher) BlockedOn() *DynInst { return f.blockedOn }

// Done reports whether the instruction stream is exhausted.
func (f *Fetcher) Done() bool { return f.done && f.pending == nil }

// Reopen clears the end-of-stream latch so fetch resumes pulling from the
// source. Sampled execution uses it between detailed windows: the source is
// a budget gate that reads empty at a window's end and is refilled before
// the next one.
func (f *Fetcher) Reopen() { f.done = false }

// Unblock resumes fetch after the mispredicted instruction d resolved.
func (f *Fetcher) Unblock(d *DynInst) {
	if f.blockedOn == d {
		f.blockedOn = nil
	}
}

// next returns the next dynamic instruction, honouring the lookahead slot.
// The end-of-stream latch clears itself when the source delivers again: a
// front-end squash can hand records back to the oracle window after the
// stream read empty, and those must still reach fetch.
func (f *Fetcher) next() *DynInst {
	if f.pending != nil {
		d := f.pending
		f.pending = nil
		return d
	}
	if f.filler != nil {
		if f.bufPos >= f.bufLen {
			f.bufLen = f.filler.Fill(f.buf)
			f.bufPos = 0
			if f.bufLen == 0 {
				f.done = true
				return nil
			}
		}
		tr := f.buf[f.bufPos]
		f.bufPos++
		f.done = false
		return f.arena.Alloc(tr)
	}
	tr, ok := f.stream.Next()
	if !ok {
		f.done = true
		return nil
	}
	f.done = false
	return f.arena.Alloc(tr)
}

// FetchGroup fetches one group. It returns the instructions and the
// instruction-cache latency in cycles (the core turns that into the
// fetch-buffer visibility time). It returns a nil group when fetch is
// blocked or the stream ended. The returned slice is reused by the next
// FetchGroup call; callers must consume it before fetching again.
func (f *Fetcher) FetchGroup(now, periodPS int64) ([]*DynInst, int) {
	if f.blockedOn != nil {
		return nil, 0
	}
	group := f.group[:0]
	blockID := int64(-1)
	for len(group) < f.width {
		d := f.next()
		if d == nil {
			break
		}
		// Aligned fetch: all instructions of a group come from one
		// width-instruction block.
		id := int64(d.Trace.PC) / (int64(f.width) * 4)
		if blockID == -1 {
			blockID = id
		} else if id != blockID {
			f.pending = d
			break
		}
		d.FetchedAt = now
		d.State = StateFetched
		group = append(group, d)
		f.Fetched++

		if d.IsControl() {
			pred := f.pred.Predict(d.Trace.PC, d.Inst())
			wrong := pred.Taken != d.Trace.Taken ||
				(d.Trace.Taken && (!pred.TargetKnown || pred.Target != d.Trace.NextPC))
			f.pred.RecordOutcome(d.Inst(), wrong)
			if wrong {
				d.Mispredicted = true
				f.blockedOn = d
				f.Mispredicts++
				break
			}
			if d.Trace.Taken {
				// Correctly predicted taken: group ends, next group
				// starts at the target next cycle.
				break
			}
		}
		if d.IsHalt() {
			break
		}
	}
	f.group = group
	if len(group) == 0 {
		return nil, 0
	}
	f.Groups++
	lat := f.hier.Access(mem.AccessFetch, group[0].Trace.PC, group[0].Trace.PC, periodPS)
	return group, lat.Cycles
}
