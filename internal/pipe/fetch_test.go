package pipe

import (
	"testing"

	"flywheel/internal/asm"
	"flywheel/internal/branch"
	"flywheel/internal/emu"
	"flywheel/internal/mem"
)

func newFetcher(t *testing.T, src string) (*Fetcher, *branch.Predictor) {
	t.Helper()
	prog, err := asm.Assemble("f.s", src)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(prog)
	pred := branch.New(branch.DefaultConfig())
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig(1000))
	return NewFetcher(emu.NewStream(m, 0), pred, hier, 4, NewArena(64)), pred
}

func TestFetcherAlignedGroups(t *testing.T) {
	// Eight straight-line instructions from an aligned base: two groups.
	f, _ := newFetcher(t, `
	addi r1, r0, 1
	addi r2, r0, 2
	addi r3, r0, 3
	addi r4, r0, 4
	addi r5, r0, 5
	addi r6, r0, 6
	addi r7, r0, 7
	halt
`)
	g1, lat := f.FetchGroup(0, 1000)
	if len(g1) != 4 {
		t.Fatalf("group 1 size = %d, want 4 (aligned block)", len(g1))
	}
	if lat <= 0 {
		t.Error("no i-cache latency reported")
	}
	g2, _ := f.FetchGroup(1000, 1000)
	if len(g2) != 4 {
		t.Fatalf("group 2 size = %d, want 4", len(g2))
	}
	if !g2[3].IsHalt() {
		t.Error("halt not at end of second group")
	}
	// The stream ends after halt; the next fetch attempt comes up empty
	// and latches Done.
	if g, _ := f.FetchGroup(2000, 1000); g != nil {
		t.Error("fetch past end returned a group")
	}
	if !f.Done() {
		t.Error("fetcher not done after draining the stream")
	}
}

func TestFetcherStopsAtTakenBranchAndBlocksOnMispredict(t *testing.T) {
	// The backward branch is taken 3 times; the cold predictor's first
	// guess comes from the weakly-taken PHT init, so direction is right,
	// but the group must still end at the taken branch.
	f, _ := newFetcher(t, `
	addi r1, r0, 3
loop:
	addi r1, r1, -1
	bnez r1, loop
	halt
`)
	groups := 0
	fetched := 0
	now := int64(0)
	for !f.Done() && groups < 50 {
		g, _ := f.FetchGroup(now, 1000)
		now += 1000
		if f.Blocked() {
			// Resolve immediately for this test.
			f.Unblock(f.BlockedOn())
		}
		if len(g) == 0 {
			continue
		}
		groups++
		fetched += len(g)
		for _, d := range g[:len(g)-1] {
			if d.IsControl() && d.Trace.Taken {
				t.Error("taken control instruction not at group end")
			}
		}
	}
	if fetched != 1+3*2+1+1 { // li + 3*(addi,bne) + final addi? (loop exits) + halt
		// dynamic: li, then 3 iterations of (addi, bnez): bnez taken twice,
		// not taken once, then halt -> 1 + 6 + 1 = 8
		if fetched != 8 {
			t.Errorf("fetched %d instructions, want 8", fetched)
		}
	}
}

func TestFetcherMispredictBlocksUntilUnblocked(t *testing.T) {
	// An indirect jump with a cold BTB must block fetch.
	f, _ := newFetcher(t, `
	la r1, target
	jr r1
	nop
target:
	halt
`)
	var blocked *DynInst
	for i := 0; i < 10 && blocked == nil; i++ {
		f.FetchGroup(int64(i)*1000, 1000)
		if f.Blocked() {
			blocked = f.BlockedOn()
		}
	}
	if blocked == nil {
		t.Fatal("cold indirect jump did not block fetch")
	}
	if g, _ := f.FetchGroup(99_000, 1000); g != nil {
		t.Error("fetch proceeded while blocked")
	}
	f.Unblock(blocked)
	g, _ := f.FetchGroup(100_000, 1000)
	if len(g) == 0 || !g[0].IsHalt() {
		t.Errorf("after unblock, expected halt at target, got %v", g)
	}
}

func TestFetcherMispredictStats(t *testing.T) {
	// Alternating unpredictable-ish branch drives mispredicts > 0.
	f, _ := newFetcher(t, `
	li r1, 64
	li r9, 88172645
loop:
	slli r2, r9, 13
	xor  r9, r9, r2
	srli r2, r9, 7
	xor  r9, r9, r2
	andi r2, r9, 1
	beqz r2, skip
	addi r3, r3, 1
skip:
	addi r1, r1, -1
	bnez r1, loop
	halt
`)
	now := int64(0)
	for !f.Done() && now < 100_000_000 {
		f.FetchGroup(now, 1000)
		if f.Blocked() {
			f.Unblock(f.BlockedOn())
		}
		now += 1000
	}
	if f.Mispredicts == 0 {
		t.Error("no mispredicts recorded on a random branch")
	}
	if f.Fetched == 0 || f.Groups == 0 {
		t.Error("fetch statistics empty")
	}
}
