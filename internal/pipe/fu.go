package pipe

import "flywheel/internal/isa"

// FUGroup partitions functional units, mirroring the paper's Table 2.
type FUGroup uint8

// Functional unit groups.
const (
	GIntALU FUGroup = iota // also executes branches and jumps
	GIntMulDiv
	GMem // load/store ports
	GFPAdd
	GFPMulDiv
	numFUGroups
)

// NumFUGroups is the number of functional unit groups.
const NumFUGroups = int(numFUGroups)

// String names the group.
func (g FUGroup) String() string {
	switch g {
	case GIntALU:
		return "int-alu"
	case GIntMulDiv:
		return "int-muldiv"
	case GMem:
		return "mem-port"
	case GFPAdd:
		return "fp-add"
	case GFPMulDiv:
		return "fp-muldiv"
	default:
		return "fu?"
	}
}

// GroupOf maps an instruction class to its functional unit group.
func GroupOf(c isa.Class) FUGroup {
	switch c {
	case isa.ClassIntMul, isa.ClassIntDiv:
		return GIntMulDiv
	case isa.ClassLoad, isa.ClassStore:
		return GMem
	case isa.ClassFPAdd:
		return GFPAdd
	case isa.ClassFPMul, isa.ClassFPDiv:
		return GFPMulDiv
	default:
		// Integer ALU ops, branches, jumps, nops, halt.
		return GIntALU
	}
}

// FUConfig sizes the execution resources.
type FUConfig struct {
	// Count is the number of units per group.
	Count [NumFUGroups]int
	// Latency is the execution latency in cycles per class.
	Latency [isa.NumClasses]int
	// Unpipelined marks classes whose unit is busy for the whole latency
	// (dividers); pipelined units accept a new operation every cycle.
	Unpipelined [isa.NumClasses]bool
}

// DefaultFUConfig returns the paper's Table 2 mix: 4 integer ALUs,
// 2 integer MUL/DIV, 2 memory ports, 2 FP adders, 1 FP MUL/DIV.
func DefaultFUConfig() FUConfig {
	var c FUConfig
	c.Count[GIntALU] = 4
	c.Count[GIntMulDiv] = 2
	c.Count[GMem] = 2
	c.Count[GFPAdd] = 2
	c.Count[GFPMulDiv] = 1

	lat := map[isa.Class]int{
		isa.ClassNop:    1,
		isa.ClassIntALU: 1,
		isa.ClassIntMul: 3,
		isa.ClassIntDiv: 12,
		isa.ClassLoad:   1, // address generation; cache latency added by the core
		isa.ClassStore:  1,
		isa.ClassBranch: 1,
		isa.ClassJump:   1,
		isa.ClassFPAdd:  2,
		isa.ClassFPMul:  4,
		isa.ClassFPDiv:  12,
		isa.ClassHalt:   1,
	}
	for cl, l := range lat {
		c.Latency[cl] = l
	}
	c.Unpipelined[isa.ClassIntDiv] = true
	c.Unpipelined[isa.ClassFPDiv] = true
	return c
}

// FUPool tracks functional unit occupancy on the picosecond timeline.
type FUPool struct {
	cfg FUConfig
	// busyUntil per unit; pipelined operations do not set it.
	busyUntil [NumFUGroups][]int64
	// usedThisEdge counts issues per group at the current select edge.
	usedThisEdge [NumFUGroups]int
	edgeTime     int64
	// Issued counts operations per group (for utilization stats).
	Issued [NumFUGroups]uint64
}

// NewFUPool builds a pool from the configuration.
func NewFUPool(cfg FUConfig) *FUPool {
	p := &FUPool{cfg: cfg}
	for g := 0; g < NumFUGroups; g++ {
		p.busyUntil[g] = make([]int64, cfg.Count[g])
	}
	return p
}

// Config returns the pool configuration.
func (p *FUPool) Config() FUConfig { return p.cfg }

// Latency returns the execution latency for a class, in cycles.
func (p *FUPool) Latency(c isa.Class) int { return p.cfg.Latency[c] }

// BeginCycle resets the per-edge issue counters; the core calls it once per
// select edge.
func (p *FUPool) BeginCycle(now int64) {
	if now != p.edgeTime {
		p.edgeTime = now
		for g := range p.usedThisEdge {
			p.usedThisEdge[g] = 0
		}
	}
}

// TryReserve claims a unit for one instruction of the given class at the
// current edge. It reports false when no unit is available. periodPS is
// the issuing domain's clock period (needed to hold unpipelined units).
func (p *FUPool) TryReserve(c isa.Class, now, periodPS int64) bool {
	g := GroupOf(c)
	free := -1
	avail := 0
	for i, bu := range p.busyUntil[g] {
		if bu <= now {
			avail++
			if free < 0 {
				free = i
			}
		}
	}
	if avail-p.usedThisEdge[g] <= 0 {
		return false
	}
	p.usedThisEdge[g]++
	p.Issued[g]++
	if p.cfg.Unpipelined[c] {
		p.busyUntil[g][free] = now + int64(p.cfg.Latency[c])*periodPS
	}
	return true
}

// AvailableFor returns how many more instructions needing the given group
// could issue at the current edge (after BeginCycle and any reservations
// already made this edge).
func (p *FUPool) AvailableFor(g FUGroup, now int64) int {
	avail := 0
	for _, bu := range p.busyUntil[g] {
		if bu <= now {
			avail++
		}
	}
	return avail - p.usedThisEdge[g]
}

// Reset clears all occupancy (between runs).
func (p *FUPool) Reset() {
	for g := range p.busyUntil {
		for i := range p.busyUntil[g] {
			p.busyUntil[g][i] = 0
		}
		p.usedThisEdge[g] = 0
		p.Issued[g] = 0
	}
	p.edgeTime = 0
}
