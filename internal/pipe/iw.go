package pipe

import "math/bits"

// IssueWindow models the monolithic R10000-style issue queue: dispatched
// instructions wait here until their operands are ready (wake-up) and a
// functional unit accepts them (select). Entries carry a visibility
// timestamp so the same structure serves both the fully synchronous
// baseline (visibleAt = dispatch time) and the Dual-Clock Issue Window
// (visibleAt = arrival + synchronization delay, §3.2).
//
// The dual-clock design adopts the paper's Figure 5 solution (duplicated
// tag matching over the previous two producer cycles), so no wake-ups are
// lost; the modelled cost is the synchronization latency on insertion.
//
// Implementation. Entries live in stable slots; a bitmap tracks the small
// set that must be examined at the next select edge. An examined entry
// that cannot issue leaves the per-edge set along the axis that blocks it:
//
//   - waiting on an unissued producer — parked on that producer's waiter
//     chain and re-activated when it issues (the tag broadcast);
//   - waiting for a known future time (visibility, an issued producer's
//     ready time) — scheduled on a min-heap timer wheel and re-activated
//     when the time arrives;
//   - blocked on per-edge state (functional unit occupancy, the cores'
//     extra predicate) — stays active and is re-examined every edge.
//
// The previous implementation rescanned the whole window every edge,
// re-walking every entry's producers; with a full 128-entry window that
// single loop dominated the entire simulator's profile. The scan now
// touches only entries whose eligibility can actually have changed.
// Selection order is unchanged: eligible candidates issue oldest-first.
type IssueWindow struct {
	slots  []iwEntry
	occ    []uint64 // occupied slots
	act    []uint64 // occupied slots to examine at the next edge
	count  int
	timers timerHeap // slots scheduled to re-activate at a known time
	// ready holds the entries whose time-based eligibility is proven and
	// permanent (visible, operands ready), sorted oldest-first. They wait
	// only for per-edge structural resources, so selection traverses this
	// list in age order and stops at the issue width — the deep backlog
	// behind a structural bottleneck costs nothing per edge.
	ready  []readyNode
	picked []*DynInst // reused Select result buffer

	// ExtraWakeupDelayPS widens the wake-up loop; the pipelined
	// wake-up/select variant of Figure 2 sets it to one back-end period,
	// breaking back-to-back scheduling of dependent instructions.
	ExtraWakeupDelayPS int64

	// Stats
	Inserted     uint64
	Selected     uint64
	OccupancySum uint64 // summed occupancy at each select edge (avg = /SelectEdges)
	SelectEdges  uint64
}

type iwEntry struct {
	inst      *DynInst
	visibleAt int64
	seq       uint64 // age for oldest-first selection
}

// timerNode schedules one slot's re-examination.
type timerNode struct {
	t    int64
	slot int32
}

// readyNode is one eligible entry in the age-sorted ready list.
type readyNode struct {
	seq  uint64
	slot int32
}

// SelectVerdict is the extra predicate's answer for one candidate.
type SelectVerdict uint8

// Verdicts. SelectStop declares that this candidate and every younger one
// is blocked (an age-monotone condition like the trace-change gate), so
// the selection traversal can end immediately.
const (
	SelectOK SelectVerdict = iota
	SelectSkip
	SelectStop
)

// timerHeap is a plain binary min-heap on t.
type timerHeap []timerNode

func (h *timerHeap) push(n timerNode) {
	*h = append(*h, n)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].t <= s[i].t {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *timerHeap) pop() timerNode {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s) && s[l].t < s[m].t {
			m = l
		}
		if r < len(s) && s[r].t < s[m].t {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// NewIssueWindow builds a window with the given capacity.
func NewIssueWindow(capacity int) *IssueWindow {
	words := (capacity + 63) / 64
	return &IssueWindow{
		slots: make([]iwEntry, capacity),
		occ:   make([]uint64, words),
		act:   make([]uint64, words),
	}
}

// Cap returns the window capacity.
func (w *IssueWindow) Cap() int { return len(w.slots) }

// Len returns the current occupancy.
func (w *IssueWindow) Len() int { return w.count }

// Full reports whether the window has no free entries.
func (w *IssueWindow) Full() bool { return w.count >= len(w.slots) }

// Insert places an instruction into a free entry; it becomes visible to
// wake-up/select at visibleAt. Insert reports false when the window is full.
func (w *IssueWindow) Insert(d *DynInst, visibleAt int64) bool {
	if w.Full() {
		return false
	}
	idx := -1
	for wi, word := range w.occ {
		if word != ^uint64(0) {
			idx = wi*64 + bits.TrailingZeros64(^word)
			break
		}
	}
	if idx < 0 || idx >= len(w.slots) {
		return false // unreachable: Full() above guarantees a real free slot
	}
	w.slots[idx] = iwEntry{inst: d, visibleAt: visibleAt, seq: d.Seq()}
	w.occ[idx/64] |= 1 << (idx % 64)
	w.act[idx/64] |= 1 << (idx % 64)
	d.iwSlot = int32(idx)
	w.count++
	w.Inserted++
	return true
}

// Select performs one wake-up/select cycle at edge time now: among the
// entries that are visible and operand-ready it picks up to width oldest
// instructions that pass the extra predicate (the cores use it for
// load/store ordering) and for which a functional unit is available,
// removes them from the window and returns them. The returned slice is
// reused by the next Select call; callers must consume it before selecting
// again.
func (w *IssueWindow) Select(now, periodPS int64, width int, fu *FUPool, extra func(*DynInst) SelectVerdict) []*DynInst {
	w.SelectEdges++
	w.OccupancySum += uint64(w.count)
	if w.count == 0 || width <= 0 {
		return nil
	}
	// Release due timers into the active set.
	for len(w.timers) > 0 && w.timers[0].t <= now {
		n := w.timers.pop()
		w.act[n.slot/64] |= 1 << (n.slot % 64)
	}

	// Wake-up: examine the (small, transient) active set, moving each
	// entry onto the structure that will next need it: the timer wheel for
	// known future times, a producer's waiter chain for unissued operands,
	// or the ready list once eligibility is proven — eligibility is
	// permanent, so it is established exactly once per entry.
	for wi, word := range w.act {
		for word != 0 {
			idx := wi*64 + bits.TrailingZeros64(word)
			word &= word - 1
			e := &w.slots[idx]
			if e.inst.iwReady {
				// Spurious re-activation (conservative chain recovery or a
				// stale timer): already on the ready list.
				w.act[wi] &^= 1 << (idx % 64)
				continue
			}
			if e.visibleAt > now {
				w.act[wi] &^= 1 << (idx % 64)
				w.timers.push(timerNode{t: e.visibleAt, slot: int32(idx)})
				continue
			}
			r := e.inst.readyAtCached(w.ExtraWakeupDelayPS)
			if r > now {
				if r < FarFuture {
					w.act[wi] &^= 1 << (idx % 64)
					w.timers.push(timerNode{t: r, slot: int32(idx)})
				} else {
					w.park(idx, e.inst)
				}
				continue
			}
			w.act[wi] &^= 1 << (idx % 64)
			e.inst.iwReady = true
			w.insertReady(readyNode{seq: e.seq, slot: int32(idx)})
		}
	}
	if len(w.ready) == 0 {
		return nil
	}

	// Select: structural checks oldest-first over the ready list, stop at
	// the issue width. Entries that lose only here (unit busy, predicate)
	// simply stay listed and are retried next edge.
	fu.BeginCycle(now)
	picked := w.picked[:0]
	nDrop := 0
	var drop [16]int
	for ri := range w.ready {
		if len(picked) >= width {
			break
		}
		e := &w.slots[w.ready[ri].slot]
		d := e.inst
		if d == nil || e.seq != w.ready[ri].seq {
			// Stale node (only possible after a drop-scratch overflow):
			// the slot was recycled; discard the node.
			if nDrop < len(drop) {
				drop[nDrop] = ri
			}
			nDrop++
			continue
		}
		if extra != nil {
			if v := extra(d); v != SelectOK {
				if v == SelectStop {
					break
				}
				continue
			}
		}
		if !fu.TryReserve(d.Class(), now, periodPS) {
			continue
		}
		picked = append(picked, d)
		w.remove(int(w.ready[ri].slot), d)
		w.wakeWaiters(d)
		if nDrop < len(drop) {
			drop[nDrop] = ri
		}
		nDrop++
	}
	if nDrop > len(drop) {
		w.rebuildReady()
	} else if nDrop > 0 {
		w.deleteReady(drop[:nDrop])
	}
	w.picked = picked
	w.Selected += uint64(len(picked))
	return picked
}

// rebuildReady drops every stale node (drop-scratch overflow path).
func (w *IssueWindow) rebuildReady() {
	out := w.ready[:0]
	for _, n := range w.ready {
		e := &w.slots[n.slot]
		if e.inst != nil && e.seq == n.seq && e.inst.iwReady {
			out = append(out, n)
		}
	}
	w.ready = out
}

// insertReady places a node into the age-sorted ready list.
func (w *IssueWindow) insertReady(n readyNode) {
	s := w.ready
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid].seq < n.seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, readyNode{})
	copy(s[lo+1:], s[lo:])
	s[lo] = n
	w.ready = s
}

// deleteReady removes the picked nodes (ascending indexes; if the pick
// count ever exceeded the scratch, fall back to rebuilding by liveness).
func (w *IssueWindow) deleteReady(idxs []int) {
	s := w.ready
	if len(idxs) == 1 {
		copy(s[idxs[0]:], s[idxs[0]+1:])
		w.ready = s[:len(s)-1]
		return
	}
	out := s[:idxs[0]]
	prev := idxs[0]
	for _, di := range idxs[1:] {
		out = append(out, s[prev+1:di]...)
		prev = di
	}
	out = append(out, s[prev+1:]...)
	w.ready = out
}

// park blocks a slot on its entry's cached unissued producer: the active
// bit clears and the entry chains onto the producer's waiter list. The
// producer is necessarily still in flight (readyAtCached just resolved
// it); if it is picked later this very edge, wakeWaiters re-activates the
// entry in the same call.
func (w *IssueWindow) park(idx int, d *DynInst) {
	blocker := d.arena.Get(d.blockRef)
	if blocker == nil {
		return // cannot happen after a FarFuture readyAtCached; stay active
	}
	d.wNext = blocker.wHead
	blocker.wHead = d.Ref()
	w.act[idx/64] &^= 1 << (idx % 64)
}

// wakeWaiters re-activates every entry parked on d (called when d issues).
// Refs make the walk self-validating: a stale link (its holder recycled)
// would orphan the rest of the chain, so it conservatively re-activates
// everything parked — correctness never depends on chain integrity.
func (w *IssueWindow) wakeWaiters(d *DynInst) {
	ref := d.wHead
	d.wHead = NoRef
	for ref != NoRef {
		c := d.arena.Get(ref)
		if c == nil {
			// Orphaned tail: wake all parked entries instead.
			copy(w.act, w.occ)
			return
		}
		ref = c.wNext
		c.wNext = NoRef
		c.blockRef = NoRef
		if s := c.iwSlot; s >= 0 {
			w.act[s/64] |= 1 << (s % 64)
		}
	}
}

// remove clears a picked slot. A timer node may still reference the slot
// only if the entry was scheduled and not yet due — impossible for a
// picked entry, which had to be active this edge; parked entries likewise
// return through the active set before they can issue.
func (w *IssueWindow) remove(idx int, d *DynInst) {
	w.occ[idx/64] &^= 1 << (idx % 64)
	w.act[idx/64] &^= 1 << (idx % 64)
	w.slots[idx].inst = nil
	d.iwSlot = -1
	d.iwReady = false
	w.count--
}

// Flush empties the window (pipeline squash).
func (w *IssueWindow) Flush() {
	for wi, word := range w.occ {
		for word != 0 {
			idx := wi*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if d := w.slots[idx].inst; d != nil {
				d.iwSlot = -1
				d.iwReady = false
				d.wNext = NoRef
				w.slots[idx].inst = nil
			}
		}
		w.occ[wi] = 0
		w.act[wi] = 0
	}
	w.timers = w.timers[:0]
	w.ready = w.ready[:0]
	w.count = 0
}

// AvgOccupancy returns the mean occupancy observed at select edges.
func (w *IssueWindow) AvgOccupancy() float64 {
	if w.SelectEdges == 0 {
		return 0
	}
	return float64(w.OccupancySum) / float64(w.SelectEdges)
}
