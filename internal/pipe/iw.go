package pipe

// IssueWindow models the monolithic R10000-style issue queue: dispatched
// instructions wait here until their operands are ready (wake-up) and a
// functional unit accepts them (select). Entries carry a visibility
// timestamp so the same structure serves both the fully synchronous
// baseline (visibleAt = dispatch time) and the Dual-Clock Issue Window
// (visibleAt = arrival + synchronization delay, §3.2).
//
// The dual-clock design adopts the paper's Figure 5 solution (duplicated
// tag matching over the previous two producer cycles), so no wake-ups are
// lost; the modelled cost is the synchronization latency on insertion.
type IssueWindow struct {
	entries []iwEntry
	cap     int
	picked  []*DynInst // reused Select result buffer

	// ExtraWakeupDelayPS widens the wake-up loop; the pipelined
	// wake-up/select variant of Figure 2 sets it to one back-end period,
	// breaking back-to-back scheduling of dependent instructions.
	ExtraWakeupDelayPS int64

	// Stats
	Inserted     uint64
	Selected     uint64
	OccupancySum uint64 // summed occupancy at each select edge (avg = /SelectEdges)
	SelectEdges  uint64
}

type iwEntry struct {
	inst      *DynInst
	visibleAt int64
}

// NewIssueWindow builds a window with the given capacity.
func NewIssueWindow(capacity int) *IssueWindow {
	return &IssueWindow{cap: capacity}
}

// Cap returns the window capacity.
func (w *IssueWindow) Cap() int { return w.cap }

// Len returns the current occupancy.
func (w *IssueWindow) Len() int { return len(w.entries) }

// Full reports whether the window has no free entries.
func (w *IssueWindow) Full() bool { return len(w.entries) >= w.cap }

// Insert places an instruction into a free entry; it becomes visible to
// wake-up/select at visibleAt. Insert reports false when the window is full.
func (w *IssueWindow) Insert(d *DynInst, visibleAt int64) bool {
	if w.Full() {
		return false
	}
	w.entries = append(w.entries, iwEntry{d, visibleAt})
	w.Inserted++
	return true
}

// Select performs one wake-up/select cycle at edge time now: it scans
// entries oldest-first, picks up to width instructions whose operands are
// ready and that pass the extra predicate (the cores use it for load/store
// ordering) and for which a functional unit is available, removes them from
// the window and returns them. The returned slice is reused by the next
// Select call; callers must consume it before selecting again.
func (w *IssueWindow) Select(now, periodPS int64, width int, fu *FUPool, extra func(*DynInst) bool) []*DynInst {
	w.SelectEdges++
	w.OccupancySum += uint64(len(w.entries))
	if len(w.entries) == 0 || width <= 0 {
		return nil
	}
	fu.BeginCycle(now)
	picked := w.picked[:0]
	kept := w.entries[:0]
	for i, e := range w.entries {
		if len(picked) >= width {
			kept = append(kept, w.entries[i:]...)
			break
		}
		d := e.inst
		switch {
		case e.visibleAt > now,
			d.SourcesReadyAt(w.ExtraWakeupDelayPS) > now,
			extra != nil && !extra(d),
			!fu.TryReserve(d.Class(), now, periodPS):
			kept = append(kept, e)
		default:
			picked = append(picked, d)
		}
	}
	w.entries = kept
	w.picked = picked
	w.Selected += uint64(len(picked))
	return picked
}

// Flush empties the window (pipeline squash).
func (w *IssueWindow) Flush() { w.entries = w.entries[:0] }

// AvgOccupancy returns the mean occupancy observed at select edges.
func (w *IssueWindow) AvgOccupancy() float64 {
	if w.SelectEdges == 0 {
		return 0
	}
	return float64(w.OccupancySum) / float64(w.SelectEdges)
}
