package pipe

import "flywheel/internal/isa"

// LSQ is the load/store queue. Entries sit in program order from dispatch
// until retirement. The model uses conservative memory disambiguation: a
// load may not access the cache until every older store has computed its
// address (i.e. has issued); when an older store to overlapping bytes
// exists, the load forwards from it instead of accessing the cache.
type LSQ struct {
	entries []*DynInst
	cap     int

	// Forwards counts store-to-load forwards (for statistics).
	Forwards uint64
}

// NewLSQ builds a queue with the given capacity.
func NewLSQ(capacity int) *LSQ {
	return &LSQ{cap: capacity}
}

// Cap returns the capacity.
func (q *LSQ) Cap() int { return q.cap }

// Len returns the occupancy.
func (q *LSQ) Len() int { return len(q.entries) }

// Full reports whether the queue is at capacity.
func (q *LSQ) Full() bool { return len(q.entries) >= q.cap }

// Insert adds a memory instruction at dispatch; it reports false when full.
func (q *LSQ) Insert(d *DynInst) bool {
	if q.Full() {
		return false
	}
	q.entries = append(q.entries, d)
	return true
}

// CanIssueLoad reports whether the load may access memory now: every older
// store must have issued (computed its address and data).
func (q *LSQ) CanIssueLoad(load *DynInst) bool {
	return load.Seq() < q.LoadBarrier()
}

// LoadBarrier returns the sequence number of the oldest store that has not
// issued yet (or the maximum sequence when every store has): loads older
// than the barrier may access memory. Issue loops compute the barrier once
// per select edge instead of rescanning the queue per waiting load — store
// states do not change inside a select scan, so one snapshot is exact.
func (q *LSQ) LoadBarrier() uint64 {
	for _, e := range q.entries {
		if e.class == isa.ClassStore && e.State < StateIssued {
			return e.Seq()
		}
	}
	return ^uint64(0)
}

// ForwardSource returns the youngest older store with overlapping bytes, if
// any; the load takes its data from the store buffer instead of the cache.
func (q *LSQ) ForwardSource(load *DynInst) *DynInst {
	var src *DynInst
	for _, e := range q.entries {
		if e.Seq() >= load.Seq() {
			break
		}
		if e.IsStore() && e.Overlaps(load) {
			src = e
		}
	}
	if src != nil {
		q.Forwards++
	}
	return src
}

// Remove drops a retired instruction from the queue head region. Instructions
// retire in program order, so the entry is expected at the front.
func (q *LSQ) Remove(d *DynInst) {
	for i, e := range q.entries {
		if e == d {
			copy(q.entries[i:], q.entries[i+1:])
			q.entries = q.entries[:len(q.entries)-1]
			return
		}
	}
}

// Flush empties the queue.
func (q *LSQ) Flush() { q.entries = q.entries[:0] }
