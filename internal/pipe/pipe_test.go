package pipe

import (
	"testing"

	"flywheel/internal/emu"
	"flywheel/internal/isa"
)

// testArena backs the in-flight instructions built by the test helpers, so
// Src references resolve the way they do inside a core. Tests never free,
// and the arena grows on demand.
var testArena = NewArena(64)

func alu(seq uint64, rd, rs1, rs2 int) *DynInst {
	return testArena.Alloc(emu.Trace{
		Seq: seq,
		Inst: isa.Instruction{
			Op: isa.ADD, Rd: isa.IntReg(rd), Rs1: isa.IntReg(rs1), Rs2: isa.IntReg(rs2),
		},
	})
}

func load(seq uint64, rd int, addr uint64) *DynInst {
	d := testArena.Alloc(emu.Trace{
		Seq:  seq,
		Inst: isa.Instruction{Op: isa.LD, Rd: isa.IntReg(rd), Rs1: isa.IntReg(1), Rs2: isa.RegNone},
		Addr: addr,
	})
	return d
}

func store(seq uint64, addr uint64) *DynInst {
	return testArena.Alloc(emu.Trace{
		Seq:  seq,
		Inst: isa.Instruction{Op: isa.SD, Rs2: isa.IntReg(2), Rs1: isa.IntReg(1), Rd: isa.RegNone},
		Addr: addr,
	})
}

func TestDynInstSourcesReadyAt(t *testing.T) {
	p1 := alu(0, 1, 0, 0)
	p2 := alu(1, 2, 0, 0)
	d := alu(2, 3, 1, 2)
	d.Src[0], d.Src[1] = p1.Ref(), p2.Ref()

	if got := d.SourcesReadyAt(0); got != FarFuture {
		t.Errorf("unissued producers: ready at %d, want FarFuture", got)
	}
	p1.ResultAt = 100
	p2.ResultAt = 300
	if got := d.SourcesReadyAt(50); got != 350 {
		t.Errorf("with extra delay: %d, want 350 (max of producers + delay)", got)
	}
	// Once every producer has issued the answer is final and memoized; the
	// issue loops always ask with their window's constant extra delay.
	if got := d.SourcesReadyAt(50); got != 350 {
		t.Errorf("memoized: %d, want 350", got)
	}
	d2 := alu(3, 3, 1, 2)
	if got := d2.SourcesReadyAt(0); got != 0 {
		t.Errorf("no producers: %d, want 0", got)
	}
}

func TestDynInstSourcesReadyAtMemoSkipsUnissued(t *testing.T) {
	p1 := alu(0, 1, 0, 0)
	d := alu(1, 2, 1, 0)
	d.Src[0] = p1.Ref()
	if got := d.SourcesReadyAt(0); got != FarFuture {
		t.Fatalf("unissued producer: %d, want FarFuture", got)
	}
	// FarFuture is never memoized: once the producer issues, the consumer
	// sees the real wake-up time.
	p1.ResultAt = 700
	if got := d.SourcesReadyAt(0); got != 700 {
		t.Fatalf("after producer issue: %d, want 700", got)
	}
}

func TestDynInstOverlaps(t *testing.T) {
	a := store(0, 100) // bytes 100..107
	b := load(1, 3, 104)
	c := load(2, 3, 108)
	if !a.Overlaps(b) {
		t.Error("overlapping accesses not detected")
	}
	if a.Overlaps(c) {
		t.Error("adjacent accesses flagged as overlap")
	}
}

func TestFUPoolWidthLimit(t *testing.T) {
	pool := NewFUPool(DefaultFUConfig())
	now, p := int64(1000), int64(100)
	pool.BeginCycle(now)
	got := 0
	for i := 0; i < 10; i++ {
		if pool.TryReserve(isa.ClassIntALU, now, p) {
			got++
		}
	}
	if got != 4 {
		t.Errorf("ALU issues in one cycle = %d, want 4", got)
	}
	// Next edge: units free again (pipelined).
	pool.BeginCycle(now + p)
	if !pool.TryReserve(isa.ClassIntALU, now+p, p) {
		t.Error("ALU not available on next edge")
	}
}

func TestFUPoolUnpipelinedDivider(t *testing.T) {
	pool := NewFUPool(DefaultFUConfig())
	p := int64(100)
	pool.BeginCycle(1000)
	if !pool.TryReserve(isa.ClassFPDiv, 1000, p) {
		t.Fatal("first div rejected")
	}
	// Only one FP divider: busy for 12 cycles.
	pool.BeginCycle(1100)
	if pool.TryReserve(isa.ClassFPDiv, 1100, p) {
		t.Error("second div accepted while divider busy")
	}
	pool.BeginCycle(1000 + 12*p)
	if !pool.TryReserve(isa.ClassFPDiv, 1000+12*p, p) {
		t.Error("divider not free after latency elapsed")
	}
}

func TestFUPoolSharedMulDivGroup(t *testing.T) {
	pool := NewFUPool(DefaultFUConfig())
	p := int64(100)
	pool.BeginCycle(0)
	if !pool.TryReserve(isa.ClassIntMul, 0, p) || !pool.TryReserve(isa.ClassIntDiv, 0, p) {
		t.Fatal("mul+div pair rejected")
	}
	if pool.TryReserve(isa.ClassIntMul, 0, p) {
		t.Error("third op accepted on 2-unit group")
	}
}

func TestIssueWindowBackToBack(t *testing.T) {
	w := NewIssueWindow(8)
	pool := NewFUPool(DefaultFUConfig())
	p := int64(100)

	prod := alu(0, 1, 0, 0)
	cons := alu(1, 2, 1, 0)
	cons.Src[0] = prod.Ref()
	w.Insert(prod, 0)
	w.Insert(cons, 0)

	sel := w.Select(1000, p, 6, pool, nil)
	if len(sel) != 1 || sel[0] != prod {
		t.Fatalf("edge 1: selected %d, want only producer", len(sel))
	}
	prod.ResultAt = 1000 + p // single-cycle ALU

	// Back-to-back: consumer issues on the very next edge.
	sel = w.Select(1000+p, p, 6, pool, nil)
	if len(sel) != 1 || sel[0] != cons {
		t.Fatalf("edge 2: selected %d, want consumer", len(sel))
	}
}

func TestIssueWindowPipelinedWakeupBreaksBackToBack(t *testing.T) {
	w := NewIssueWindow(8)
	pool := NewFUPool(DefaultFUConfig())
	p := int64(100)
	w.ExtraWakeupDelayPS = p // Figure 2: pipelined wake-up/select

	prod := alu(0, 1, 0, 0)
	cons := alu(1, 2, 1, 0)
	cons.Src[0] = prod.Ref()
	w.Insert(prod, 0)
	w.Insert(cons, 0)

	w.Select(1000, p, 6, pool, nil)
	prod.ResultAt = 1000 + p
	if sel := w.Select(1000+p, p, 6, pool, nil); len(sel) != 0 {
		t.Fatal("consumer issued back-to-back despite pipelined wake-up")
	}
	if sel := w.Select(1000+2*p, p, 6, pool, nil); len(sel) != 1 {
		t.Fatal("consumer did not issue one cycle later")
	}
}

func TestIssueWindowVisibility(t *testing.T) {
	w := NewIssueWindow(4)
	pool := NewFUPool(DefaultFUConfig())
	d := alu(0, 1, 0, 0)
	w.Insert(d, 500) // synchronization delay: visible at 500
	if sel := w.Select(400, 100, 6, pool, nil); len(sel) != 0 {
		t.Error("entry selected before visibility time")
	}
	if sel := w.Select(500, 100, 6, pool, nil); len(sel) != 1 {
		t.Error("entry not selected at visibility time")
	}
}

func TestIssueWindowOldestFirstAndWidth(t *testing.T) {
	w := NewIssueWindow(16)
	pool := NewFUPool(DefaultFUConfig())
	var all []*DynInst
	for i := 0; i < 8; i++ {
		d := alu(uint64(i), 1+i%4, 0, 0)
		all = append(all, d)
		w.Insert(d, 0)
	}
	sel := w.Select(100, 100, 6, pool, nil)
	// Width 6 but only 4 ALUs: FU-bound.
	if len(sel) != 4 {
		t.Fatalf("selected %d, want 4 (ALU bound)", len(sel))
	}
	for i, d := range sel {
		if d != all[i] {
			t.Errorf("selection not oldest-first at %d", i)
		}
	}
	if w.Len() != 4 {
		t.Errorf("window kept %d, want 4", w.Len())
	}
}

func TestIssueWindowExtraPredicate(t *testing.T) {
	w := NewIssueWindow(4)
	pool := NewFUPool(DefaultFUConfig())
	d := load(0, 3, 0x100)
	w.Insert(d, 0)
	block := func(*DynInst) SelectVerdict { return SelectSkip }
	if sel := w.Select(100, 100, 6, pool, block); len(sel) != 0 {
		t.Error("predicate did not block selection")
	}
	allow := func(*DynInst) SelectVerdict { return SelectOK }
	if sel := w.Select(200, 100, 6, pool, allow); len(sel) != 1 {
		t.Error("predicate blocked valid selection")
	}
}

func TestIssueWindowCapacity(t *testing.T) {
	w := NewIssueWindow(2)
	if !w.Insert(alu(0, 1, 0, 0), 0) || !w.Insert(alu(1, 1, 0, 0), 0) {
		t.Fatal("insert below capacity failed")
	}
	if w.Insert(alu(2, 1, 0, 0), 0) {
		t.Error("insert above capacity succeeded")
	}
	if !w.Full() {
		t.Error("window not full")
	}
}

func TestROBOrdering(t *testing.T) {
	r := NewROB(4)
	a, b := alu(0, 1, 0, 0), alu(1, 2, 0, 0)
	r.Push(a)
	r.Push(b)
	if r.Head() != a {
		t.Error("head is not oldest")
	}
	if got := r.PopHead(); got != a {
		t.Error("pop did not return oldest")
	}
	if got := r.PopHead(); got != b {
		t.Error("second pop wrong")
	}
	if r.PopHead() != nil {
		t.Error("pop from empty returned non-nil")
	}
}

func TestROBWrapAround(t *testing.T) {
	r := NewROB(2)
	for i := 0; i < 5; i++ {
		d := alu(uint64(i), 1, 0, 0)
		if !r.Push(d) {
			t.Fatalf("push %d failed", i)
		}
		if got := r.PopHead(); got != d {
			t.Fatalf("wraparound pop %d wrong", i)
		}
	}
	r.Push(alu(10, 1, 0, 0))
	r.Push(alu(11, 1, 0, 0))
	if r.Push(alu(12, 1, 0, 0)) {
		t.Error("push to full ROB succeeded")
	}
	if !r.Full() || r.Len() != 2 {
		t.Error("occupancy accounting wrong")
	}
}

func TestLSQLoadOrdering(t *testing.T) {
	q := NewLSQ(8)
	st := store(0, 0x100)
	ld := load(1, 3, 0x200)
	q.Insert(st)
	q.Insert(ld)
	if q.CanIssueLoad(ld) {
		t.Error("load allowed before older store issued")
	}
	st.State = StateIssued
	if !q.CanIssueLoad(ld) {
		t.Error("load blocked after older store issued")
	}
}

func TestLSQForwarding(t *testing.T) {
	q := NewLSQ(8)
	st1 := store(0, 0x100)
	st2 := store(1, 0x100) // younger store, same address
	ld := load(2, 3, 0x100)
	other := load(3, 4, 0x500)
	q.Insert(st1)
	q.Insert(st2)
	q.Insert(ld)
	q.Insert(other)
	if src := q.ForwardSource(ld); src != st2 {
		t.Errorf("forward source = %v, want youngest matching store", src)
	}
	if src := q.ForwardSource(other); src != nil {
		t.Error("non-overlapping load got a forward source")
	}
	if q.Forwards != 1 {
		t.Errorf("forward count = %d, want 1", q.Forwards)
	}
}

func TestLSQRemove(t *testing.T) {
	q := NewLSQ(4)
	a, b := store(0, 0), load(1, 3, 8)
	q.Insert(a)
	q.Insert(b)
	q.Remove(a)
	if q.Len() != 1 {
		t.Errorf("len = %d after remove, want 1", q.Len())
	}
	if q.CanIssueLoad(b) != true {
		t.Error("removed store still blocks load")
	}
}

func TestRATLinksDependencies(t *testing.T) {
	rat := NewRAT(testArena)
	p := alu(0, 1, 0, 0) // writes r1
	c := alu(1, 2, 1, 3) // reads r1, r3
	rat.Link(p)
	rat.Link(c)
	if c.Src[0] != p.Ref() {
		t.Error("consumer not linked to producer")
	}
	if c.Src[1] != NoRef {
		t.Error("unwritten register linked to a producer")
	}
	// A third instruction reading r2 links to c.
	d := alu(2, 4, 2, 0)
	rat.Link(d)
	if d.Src[0] != c.Ref() {
		t.Error("chain not linked")
	}
}

func TestRATRetireClears(t *testing.T) {
	rat := NewRAT(testArena)
	p := alu(0, 1, 0, 0)
	rat.Link(p)
	p.State = StateRetired
	rat.Retire(p)
	c := alu(1, 2, 1, 0)
	rat.Link(c)
	if c.Src[0] != NoRef {
		t.Error("retired producer still linked")
	}
}

func TestRATIgnoresRetiredProducers(t *testing.T) {
	rat := NewRAT(testArena)
	p := alu(0, 1, 0, 0)
	rat.Link(p)
	p.State = StateRetired // retired but not yet cleared from the table
	c := alu(1, 2, 1, 0)
	rat.Link(c)
	if c.Src[0] != NoRef {
		t.Error("linked to a retired producer")
	}
}
