package pipe

import (
	"flywheel/internal/isa"
)

// RAT is the register alias table used at dispatch to link register
// dependencies: it remembers the most recent in-flight producer of every
// architected register. (The baseline core models MIPS R10000-style
// renaming; the Flywheel core adds its two-phase scheme on top in package
// core, but dependency linking works the same way.)
//
// Producers are held as generation-checked arena references, never as
// pointers: when a producer retires and its arena slot is recycled, its
// reference silently stops resolving, which reads as "architecturally
// ready" — no eager invalidation walk is needed.
type RAT struct {
	arena *Arena
	last  [isa.NumArchRegs]Ref
}

// NewRAT returns an empty alias table resolving producers in the given
// arena.
func NewRAT(arena *Arena) *RAT { return &RAT{arena: arena} }

// producer resolves the live, in-flight producer of a register, if any.
func (t *RAT) producer(r isa.Reg) *DynInst {
	ref := t.last[r]
	if ref == NoRef {
		return nil
	}
	p := t.arena.Get(ref)
	if p == nil || p.State >= StateRetired {
		return nil
	}
	return p
}

// Link fills d.Src with references to the current producers of its source
// registers and records d as the new producer of its destination.
func (t *RAT) Link(d *DynInst) {
	in := d.Inst()
	rs1, rs2 := in.SrcRegs()
	slot := 0
	if rs1 != isa.RegNone {
		if p := t.producer(rs1); p != nil {
			d.Src[slot] = p.Ref()
		}
		slot++
	}
	if rs2 != isa.RegNone && slot < len(d.Src) {
		if p := t.producer(rs2); p != nil {
			d.Src[slot] = p.Ref()
		}
	}
	if in.HasDest() {
		t.last[in.Rd] = d.Ref()
	}
}

// SourceRegsReady reports whether the source operands of the given static
// instruction are available at time now. It needs no in-flight
// instruction, so the replay path can test issuability before allocating
// arena slots.
func (t *RAT) SourceRegsReady(in isa.Instruction, now int64) bool {
	rs1, rs2 := in.SrcRegs()
	if rs1 != isa.RegNone {
		if p := t.producer(rs1); p != nil && p.ResultAt > now {
			return false
		}
	}
	if rs2 != isa.RegNone {
		if p := t.producer(rs2); p != nil && p.ResultAt > now {
			return false
		}
	}
	return true
}

// Retire clears the producer entry if d is still the latest writer of its
// destination (so fully drained machines hold no stale references).
func (t *RAT) Retire(d *DynInst) {
	in := d.Inst()
	if in.HasDest() && t.last[in.Rd] == d.Ref() {
		t.last[in.Rd] = NoRef
	}
}

// Reset clears the table.
func (t *RAT) Reset() {
	for i := range t.last {
		t.last[i] = NoRef
	}
}

// Producer returns the current in-flight producer of a register, or nil
// (diagnostic hook for the replay scoreboard).
func (t *RAT) Producer(r isa.Reg) *DynInst { return t.producer(r) }
