package pipe

import (
	"flywheel/internal/isa"
)

// RAT is the register alias table used at dispatch to link register
// dependencies: it remembers the most recent in-flight producer of every
// architected register. (The baseline core models MIPS R10000-style
// renaming; the Flywheel core adds its two-phase scheme on top in package
// core, but dependency linking works the same way.)
type RAT struct {
	last [isa.NumArchRegs]*DynInst
}

// NewRAT returns an empty alias table.
func NewRAT() *RAT { return &RAT{} }

// Link fills d.Src with pointers to the current producers of its source
// registers and records d as the new producer of its destination.
func (t *RAT) Link(d *DynInst) {
	in := d.Inst()
	srcs := in.Sources()
	for i, r := range srcs {
		if i >= len(d.Src) {
			break
		}
		if p := t.last[r]; p != nil && p.State < StateRetired {
			d.Src[i] = p
		}
	}
	if in.HasDest() {
		t.last[in.Rd] = d
	}
}

// SourcesReady reports whether every register source of d has its value
// available at time now, according to the current producer table. Used by
// the Flywheel replay scoreboard, where instructions are linked at issue.
func (t *RAT) SourcesReady(d *DynInst, now int64) bool {
	for _, r := range d.Inst().Sources() {
		p := t.last[r]
		if p == nil || p.State == StateRetired {
			continue
		}
		if p.ResultAt > now {
			return false
		}
	}
	return true
}

// Retire clears the producer entry if d is still the latest writer of its
// destination (so fully drained machines hold no stale pointers).
func (t *RAT) Retire(d *DynInst) {
	in := d.Inst()
	if in.HasDest() && t.last[in.Rd] == d {
		t.last[in.Rd] = nil
	}
}

// Reset clears the table.
func (t *RAT) Reset() {
	for i := range t.last {
		t.last[i] = nil
	}
}

// Producer returns the current in-flight producer of a register, or nil
// (diagnostic hook for the replay scoreboard).
func (t *RAT) Producer(r isa.Reg) *DynInst { return t.last[r] }
