package pipe

// ROB is the reorder (retire) buffer: a bounded FIFO of in-flight
// instructions in program order. Retirement pops from the head once an
// instruction is done.
type ROB struct {
	buf   []*DynInst
	head  int
	count int
}

// NewROB builds a reorder buffer with the given capacity.
func NewROB(capacity int) *ROB {
	return &ROB{buf: make([]*DynInst, capacity)}
}

// Cap returns the capacity.
func (r *ROB) Cap() int { return len(r.buf) }

// Len returns the occupancy.
func (r *ROB) Len() int { return r.count }

// Full reports whether no entries are free.
func (r *ROB) Full() bool { return r.count == len(r.buf) }

// Push appends an instruction in program order; it reports false when full.
func (r *ROB) Push(d *DynInst) bool {
	if r.Full() {
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = d
	r.count++
	return true
}

// Head returns the oldest in-flight instruction, or nil when empty.
func (r *ROB) Head() *DynInst {
	if r.count == 0 {
		return nil
	}
	return r.buf[r.head]
}

// PopHead removes and returns the oldest instruction; nil when empty.
func (r *ROB) PopHead() *DynInst {
	if r.count == 0 {
		return nil
	}
	d := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return d
}

// Flush discards everything (used only by tests; the timing cores never
// hold wrong-path instructions).
func (r *ROB) Flush() {
	for i := range r.buf {
		r.buf[i] = nil
	}
	r.head, r.count = 0, 0
}
