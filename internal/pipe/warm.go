package pipe

import (
	"flywheel/internal/branch"
	"flywheel/internal/emu"
	"flywheel/internal/isa"
	"flywheel/internal/mem"
)

// Warmer performs functional warming: during the fast-forward over a
// workload's initialization (the paper skips 500M instructions before
// measuring), the caches and the branch predictor observe the architectural
// access stream so the measured window starts from realistic state instead
// of compulsory-miss cold start.
type Warmer struct {
	pred      *branch.Predictor
	hier      *mem.Hierarchy
	lastFetch uint64
}

// NewWarmer builds a warmer over a core's predictor and memory hierarchy.
func NewWarmer(pred *branch.Predictor, hier *mem.Hierarchy) *Warmer {
	return &Warmer{pred: pred, hier: hier, lastFetch: ^uint64(0)}
}

// Observe feeds one architectural record into the caches and predictor.
func (w *Warmer) Observe(tr emu.Trace) {
	// Instruction fetch, one access per cache line actually entered.
	line := tr.PC &^ uint64(w.hier.L1I.Config().LineBytes-1)
	if line != w.lastFetch {
		w.hier.Access(mem.AccessFetch, tr.PC, 1)
		w.lastFetch = line
	}
	if tr.Inst.IsMem() {
		kind := mem.AccessLoad
		if tr.Inst.Class() == isa.ClassStore {
			kind = mem.AccessStore
		}
		w.hier.Access(kind, tr.Addr, 1)
	}
	if tr.Inst.IsControl() {
		w.pred.Predict(tr.PC, tr.Inst)
		w.pred.Update(tr.PC, tr.Inst, tr.Taken, tr.NextPC)
	}
}

// Finish clears the statistics accumulated while warming so measurements
// start clean (cache and predictor *state* is kept — that is the point).
func (w *Warmer) Finish() {
	w.hier.ResetStats()
	w.pred.Stats = branch.Stats{}
}
