package pipe

import (
	"flywheel/internal/branch"
	"flywheel/internal/emu"
	"flywheel/internal/isa"
	"flywheel/internal/mem"
)

// Warmer performs functional warming: during the fast-forward over a
// workload's initialization (the paper skips 500M instructions before
// measuring), the caches and the branch predictor observe the architectural
// access stream so the measured window starts from realistic state instead
// of compulsory-miss cold start.
type Warmer struct {
	pred      *branch.Predictor
	hier      *mem.Hierarchy
	lastFetch uint64
}

// NewWarmer builds a warmer over a core's predictor and memory hierarchy.
func NewWarmer(pred *branch.Predictor, hier *mem.Hierarchy) *Warmer {
	return &Warmer{pred: pred, hier: hier, lastFetch: ^uint64(0)}
}

// SeedFrom copies already warmed predictor and cache state into this
// warmer's structures: the O(state-size) equivalent of replaying the whole
// warm observation stream. Source and destination configurations must
// match.
func (w *Warmer) SeedFrom(pred *branch.Predictor, hier *mem.Hierarchy) {
	w.pred.CopyStateFrom(pred)
	w.hier.CopyStateFrom(hier)
}

// Observe feeds one architectural record into the caches and predictor.
func (w *Warmer) Observe(tr emu.Trace) {
	// Instruction fetch, one access per cache line actually entered.
	line := tr.PC &^ uint64(w.hier.L1I.Config().LineBytes-1)
	if line != w.lastFetch {
		w.hier.Access(mem.AccessFetch, tr.PC, tr.PC, 1)
		w.lastFetch = line
	}
	if tr.Inst.IsMem() {
		kind := mem.AccessLoad
		if tr.Inst.Class() == isa.ClassStore {
			kind = mem.AccessStore
		}
		w.hier.Access(kind, tr.PC, tr.Addr, 1)
	}
	if tr.Inst.IsControl() {
		w.pred.Predict(tr.PC, tr.Inst)
		w.pred.Update(tr.PC, tr.Inst, tr.Taken, tr.NextPC)
	}
}

// Finish clears the statistics accumulated while warming so measurements
// start clean (cache and predictor *state* is kept — that is the point).
func (w *Warmer) Finish() {
	w.hier.ResetStats()
	w.pred.Stats = branch.Stats{}
}

// MaxWarmLogRecords bounds how many observations a WarmLog buffers — and
// therefore how much memory one workload's log can pin for the life of the
// process (one emu.Trace per record, ~56 B, so ~56 MiB at the cap). The
// repo's kernels warm in 20k-45k records; a workload whose initialization
// exceeds the cap cannot be warm-cached and callers fall back to
// functional re-execution (see Overflowed).
const MaxWarmLogRecords = 1 << 20

// WarmLog records the architectural observations of a workload's
// initialization phase once, so later runs can warm their caches and
// predictor by replaying the log instead of re-executing initialization on
// a functional machine. Replay is append-order, which reproduces exactly
// the warm state the live observation sequence would have built.
//
// A WarmLog is written once (Observe) and then only read (Replay), so one
// log may warm any number of cores concurrently.
type WarmLog struct {
	recs       []emu.Trace
	overflowed bool
}

// Observe appends one architectural record.
func (l *WarmLog) Observe(tr emu.Trace) {
	if len(l.recs) >= MaxWarmLogRecords {
		l.overflowed = true
		return
	}
	l.recs = append(l.recs, tr)
}

// Len reports how many observations are recorded.
func (l *WarmLog) Len() int { return len(l.recs) }

// Overflowed reports that the initialization phase was too long to record;
// the log is incomplete and must not be replayed.
func (l *WarmLog) Overflowed() bool { return l.overflowed }

// Replay feeds every recorded observation into the warmer and finishes it.
func (l *WarmLog) Replay(w *Warmer) {
	for i := range l.recs {
		w.Observe(l.recs[i])
	}
	w.Finish()
}
