package power

import (
	"math"

	"flywheel/internal/mem"
	"flywheel/internal/pipe"
)

// MachineShape describes the structure sizes that scale per-access energies
// and determine leakage device counts.
type MachineShape struct {
	IWEntries int
	RFEntries int
	L1IBytes  int
	L1DBytes  int
	L2Bytes   int
	// ECBytes is zero for the baseline machine.
	ECBytes int
	// FlywheelTables adds the RT/FRT/SRT and per-pool rename bookkeeping.
	FlywheelTables bool
}

// BaselineShape returns the Table 2 baseline machine.
func BaselineShape() MachineShape {
	return MachineShape{
		IWEntries: 128, RFEntries: 192,
		L1IBytes: 64 << 10, L1DBytes: 64 << 10, L2Bytes: 512 << 10,
	}
}

// FlywheelShape returns the Table 2 Flywheel machine (512-entry RF, 128K EC).
func FlywheelShape() MachineShape {
	s := BaselineShape()
	s.RFEntries = 512
	s.ECBytes = 128 << 10
	s.FlywheelTables = true
	return s
}

// EffectiveDevices estimates the Butts/Sohi effective device count for
// leakage: raw transistor counts weighted by per-structure design factors
// (stacked SRAM cells leak less per device than free-running logic; the
// EC's wide banked blocks carry more peripheral logic per bit).
func (m MachineShape) EffectiveDevices() float64 {
	const (
		kSRAM  = 0.05
		kEC    = 0.25
		kLogic = 0.30
		kRF    = 0.10
	)
	sramDevices := func(bytes int) float64 { return float64(bytes) * 8 * 6 } // 6T cells
	dev := 0.0
	dev += sramDevices(m.L1IBytes) * kSRAM
	dev += sramDevices(m.L1DBytes) * kSRAM
	dev += sramDevices(m.L2Bytes) * kSRAM
	dev += sramDevices(m.ECBytes) * 1.3 * kEC // +30% peripheral per bit
	dev += float64(m.RFEntries) * 64 * 10 * kRF
	dev += float64(m.IWEntries) * 200 * 8 * kLogic // CAM-heavy
	// Core logic: decoders, FUs, bypass, control — a fixed block.
	dev += 8e6 * kLogic
	if m.FlywheelTables {
		dev += 0.4e6 * kLogic
	}
	return dev
}

// UnitEnergies lists per-event dynamic energies in picojoules at the
// operating node. Build with Units.
type UnitEnergies struct {
	ICacheAccess float64 // per fetch group
	DCacheAccess float64
	L2Access     float64
	BPredLookup  float64
	BPredUpdate  float64
	DecodeOp     float64 // per instruction
	RenameOp     float64 // per instruction (map read + write)
	IWInsert     float64
	IWWakeup     float64 // tag broadcast per selected instruction
	IWSelect     float64
	RegRead      float64 // per operand
	RegWrite     float64 // per result
	FUOp         [pipe.NumFUGroups]float64
	ROBWrite     float64
	ROBRetire    float64
	LSQOp        float64
	Bypass       float64 // result-bus drive per completing instruction

	// Flywheel-specific events.
	ECTagLookup  float64
	ECBlockRead  float64 // whole 8-instruction block
	ECBlockWrite float64
	UpdateOp     float64 // RT/SRT access per instruction in Register Update
	Checkpoint   float64 // FRT -> RT copy

	// Clock grids, charged per delivered (ungated) cycle of each domain.
	ClockGlobalPerCycle float64
	ClockFEPerCycle     float64
	ClockBEPerCycle     float64
}

// Units computes the per-event energies for a machine shape at a node.
// Base values are calibrated at 0.13 µm and scale with capacitance and
// Vdd²; array energies additionally scale with structure size.
func Units(t TechParams, shape MachineShape) UnitEnergies {
	s := t.DynScale()
	// The Flywheel register file is organized as per-architected-register
	// pools (banks), so its access energy grows far slower than capacity:
	// sqrt scaling instead of linear.
	rf := math.Sqrt(float64(shape.RFEntries) / 192.0)
	iw := float64(shape.IWEntries) / 128.0
	u := UnitEnergies{
		ICacheAccess: 400 * s,
		DCacheAccess: 350 * s,
		L2Access:     800 * s,
		BPredLookup:  60 * s,
		BPredUpdate:  60 * s,
		DecodeOp:     45 * s,
		RenameOp:     55 * s,
		IWInsert:     80 * s * iw,
		IWWakeup:     200 * s * iw, // broadcast across all entries
		IWSelect:     45 * s * iw,
		RegRead:      50 * s * rf,
		RegWrite:     60 * s * rf,
		ROBWrite:     40 * s,
		ROBRetire:    40 * s,
		LSQOp:        50 * s,
		Bypass:       50 * s,

		ECTagLookup:  80 * s,
		ECBlockRead:  250 * s,
		ECBlockWrite: 250 * s,
		UpdateOp:     25 * s,
		Checkpoint:   100 * s,

		ClockGlobalPerCycle: 650 * s,
		ClockFEPerCycle:     520 * s,
		ClockBEPerCycle:     420 * s,
	}
	fu := map[pipe.FUGroup]float64{
		pipe.GIntALU:    60,
		pipe.GIntMulDiv: 220,
		pipe.GMem:       40, // address generation; cache access charged separately
		pipe.GFPAdd:     150,
		pipe.GFPMulDiv:  280,
	}
	for g, e := range fu {
		u.FUOp[g] = e * s
	}
	return u
}

// Activity is the event record one simulation run produces; the cores fill
// it from their statistics.
type Activity struct {
	TimePS int64
	// Active (ungated) cycles per domain. The baseline core reports all
	// cycles as back-end cycles with FECycles equal to BECycles (single
	// grid spanning both, modelled as global+FE+BE).
	FECycles uint64
	BECycles uint64

	FetchGroups uint64
	Fetched     uint64 // instructions through decode
	Renamed     uint64 // instructions through rename
	BPLookups   uint64
	BPUpdates   uint64
	IWInserts   uint64
	IWSelects   uint64
	RegReads    uint64
	RegWrites   uint64
	FUOps       [pipe.NumFUGroups]uint64
	ROBWrites   uint64
	Retires     uint64
	LSQOps      uint64

	L1I mem.CacheStats
	L1D mem.CacheStats
	L2  mem.CacheStats

	ECTagLookups  uint64
	ECBlockReads  uint64
	ECBlockWrites uint64
	UpdateOps     uint64
	Checkpoints   uint64
}

// Breakdown is dynamic energy per structure group, in picojoules, plus
// leakage.
type Breakdown struct {
	Fetch   float64 // I-cache + branch prediction
	Decode  float64
	Rename  float64
	Window  float64 // issue window insert + wakeup + select
	RegFile float64
	Execute float64 // FUs + bypass
	DCache  float64
	L2      float64
	ROBLsq  float64
	EC      float64 // execution cache + update stage + checkpoints
	Clock   float64
	Leakage float64
}

// Total returns the total energy in picojoules.
func (b Breakdown) Total() float64 {
	return b.Fetch + b.Decode + b.Rename + b.Window + b.RegFile + b.Execute +
		b.DCache + b.L2 + b.ROBLsq + b.EC + b.Clock + b.Leakage
}

// Report is the full energy/power result of one run.
type Report struct {
	Breakdown Breakdown
	// TotalPJ is the total energy in picojoules.
	TotalPJ float64
	// AvgPowerW is TotalPJ / time.
	AvgPowerW float64
	// LeakageFrac is the leakage share of total energy.
	LeakageFrac float64
}

// Compute turns an activity record into an energy report.
func Compute(act Activity, shape MachineShape, t TechParams) Report {
	u := Units(t, shape)
	var b Breakdown
	b.Fetch = f(act.FetchGroups)*u.ICacheAccess +
		f(act.BPLookups)*u.BPredLookup + f(act.BPUpdates)*u.BPredUpdate
	b.Decode = f(act.Fetched) * u.DecodeOp
	b.Rename = f(act.Renamed) * u.RenameOp
	b.Window = f(act.IWInserts)*u.IWInsert + f(act.IWSelects)*(u.IWWakeup+u.IWSelect)
	b.RegFile = f(act.RegReads)*u.RegRead + f(act.RegWrites)*u.RegWrite
	for g := 0; g < pipe.NumFUGroups; g++ {
		b.Execute += f(act.FUOps[g]) * u.FUOp[g]
	}
	b.Execute += f(act.IWSelects) * u.Bypass
	b.DCache = f(act.L1D.Accesses()) * u.DCacheAccess
	b.L2 = f(act.L2.Accesses()) * u.L2Access
	b.ROBLsq = f(act.ROBWrites)*u.ROBWrite + f(act.Retires)*u.ROBRetire + f(act.LSQOps)*u.LSQOp
	b.EC = f(act.ECTagLookups)*u.ECTagLookup +
		f(act.ECBlockReads)*u.ECBlockRead +
		f(act.ECBlockWrites)*u.ECBlockWrite +
		f(act.UpdateOps)*u.UpdateOp +
		f(act.Checkpoints)*u.Checkpoint

	// One global grid plus per-domain local grids; gated cycles cost
	// nothing. The global grid follows the faster (back-end) domain.
	b.Clock = f(act.BECycles)*(u.ClockGlobalPerCycle+u.ClockBEPerCycle) +
		f(act.FECycles)*u.ClockFEPerCycle

	leakW := t.LeakagePowerW(shape.EffectiveDevices())
	b.Leakage = leakW * float64(act.TimePS) // W * ps = pJ

	total := b.Total()
	rep := Report{Breakdown: b, TotalPJ: total}
	if act.TimePS > 0 {
		rep.AvgPowerW = total / float64(act.TimePS) // pJ/ps = W
	}
	if total > 0 {
		rep.LeakageFrac = b.Leakage / total
	}
	return rep
}

func f(v uint64) float64 { return float64(v) }
