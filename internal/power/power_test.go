package power

import (
	"testing"

	"flywheel/internal/cacti"
	"flywheel/internal/pipe"
)

// sampleActivity builds a plausible baseline activity record for n cycles
// at period ps.
func sampleActivity(cycles uint64, periodPS int64) Activity {
	var a Activity
	a.BECycles = cycles
	a.FECycles = cycles
	a.TimePS = int64(cycles) * periodPS
	retired := cycles * 2 // IPC 2
	a.FetchGroups = retired / 3
	a.Fetched = retired
	a.Renamed = retired
	a.BPLookups = retired / 6
	a.BPUpdates = retired / 6
	a.IWInserts = retired
	a.IWSelects = retired
	a.RegReads = retired * 2
	a.RegWrites = retired * 7 / 10
	a.FUOps[pipe.GIntALU] = retired * 6 / 10
	a.FUOps[pipe.GMem] = retired * 3 / 10
	a.ROBWrites = retired
	a.Retires = retired
	a.LSQOps = retired * 3 / 10
	a.L1D.Reads = retired / 4
	a.L1D.Writes = retired / 12
	a.L2.Reads = retired / 100
	return a
}

func TestTechTableComplete(t *testing.T) {
	for _, n := range cacti.Nodes {
		tech, err := Tech(n)
		if err != nil {
			t.Errorf("Tech(%v): %v", n, err)
			continue
		}
		if tech.Vdd <= 0 || tech.LeakNA <= 0 || tech.CapScale <= 0 {
			t.Errorf("Tech(%v) has non-positive fields: %+v", n, tech)
		}
	}
	if _, err := Tech(cacti.Node(0.5)); err == nil {
		t.Error("unsupported node accepted")
	}
}

func TestDynScaleShrinksWithNode(t *testing.T) {
	prev := 1e9
	for _, n := range cacti.Nodes {
		s := MustTech(n).DynScale()
		if s >= prev {
			t.Errorf("DynScale(%v) = %.3f, not decreasing", n, s)
		}
		prev = s
	}
	if got := MustTech(cacti.Node130).DynScale(); got != 1.0 {
		t.Errorf("0.13um scale = %v, want 1 (calibration point)", got)
	}
}

func TestLeakageGrowsInRelativeImportance(t *testing.T) {
	// The paper's premise for Figure 15: dynamic power shrinks with newer
	// nodes while leakage does not, so the leakage fraction must rise
	// sharply from 0.13um to 0.06um.
	shape := BaselineShape()
	fracs := map[cacti.Node]float64{}
	for _, n := range []cacti.Node{cacti.Node130, cacti.Node90, cacti.Node60} {
		// Same cycle count; period shrinks with the node's baseline clock.
		act := sampleActivity(1_000_000, cacti.BaselinePeriodPS(n))
		rep := Compute(act, shape, MustTech(n))
		fracs[n] = rep.LeakageFrac
	}
	if !(fracs[cacti.Node130] < fracs[cacti.Node90] && fracs[cacti.Node90] <= fracs[cacti.Node60]+0.02) {
		t.Errorf("leakage fractions not rising: %v", fracs)
	}
	if fracs[cacti.Node130] > 0.2 {
		t.Errorf("0.13um leakage fraction = %.2f, want modest (<20%%)", fracs[cacti.Node130])
	}
	if fracs[cacti.Node60] < 0.25 {
		t.Errorf("0.06um leakage fraction = %.2f, want substantial (>25%%)", fracs[cacti.Node60])
	}
}

func TestFlywheelShapeLeaksMore(t *testing.T) {
	b := BaselineShape().EffectiveDevices()
	fw := FlywheelShape().EffectiveDevices()
	if fw <= b*1.2 {
		t.Errorf("flywheel effective devices %.2e not clearly above baseline %.2e (EC + big RF)", fw, b)
	}
	if fw > b*2.0 {
		t.Errorf("flywheel leakage ratio %.2f implausibly high", fw/b)
	}
}

func TestEnergyScalesWithActivity(t *testing.T) {
	tech := MustTech(cacti.Node130)
	shape := BaselineShape()
	small := Compute(sampleActivity(1000, 870), shape, tech)
	big := Compute(sampleActivity(2000, 870), shape, tech)
	ratio := big.TotalPJ / small.TotalPJ
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("doubling activity scaled energy by %.2f, want ~2", ratio)
	}
}

func TestPowerIsEnergyOverTime(t *testing.T) {
	tech := MustTech(cacti.Node130)
	act := sampleActivity(1000, 870)
	rep := Compute(act, BaselineShape(), tech)
	want := rep.TotalPJ / float64(act.TimePS)
	if diff := rep.AvgPowerW - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("power = %v, want %v", rep.AvgPowerW, want)
	}
	if rep.AvgPowerW < 0.5 || rep.AvgPowerW > 50 {
		t.Errorf("baseline power = %.1f W, outside plausibility band", rep.AvgPowerW)
	}
}

func TestClockGatingSavesEnergy(t *testing.T) {
	tech := MustTech(cacti.Node130)
	shape := FlywheelShape()
	act := sampleActivity(1000, 870)
	gated := act
	gated.FECycles = 100 // front-end clock-gated 90% of the time
	full := Compute(act, shape, tech)
	saved := Compute(gated, shape, tech)
	if saved.TotalPJ >= full.TotalPJ {
		t.Error("gating the front-end grid did not save energy")
	}
}

func TestRegFileEnergyScalesWithSize(t *testing.T) {
	tech := MustTech(cacti.Node130)
	small := Units(tech, BaselineShape()) // 192 entries
	large := Units(tech, FlywheelShape()) // 512 entries
	if large.RegRead <= small.RegRead {
		t.Error("bigger register file not more expensive per read")
	}
	// The Flywheel RF is pool-banked, so access energy scales ~sqrt with
	// capacity rather than linearly.
	ratio := large.RegRead / small.RegRead
	if ratio < 1.3 || ratio > 2.2 {
		t.Errorf("512/192 RF energy ratio = %.2f, want ~1.6 (banked pools)", ratio)
	}
}

func TestECEventsCharged(t *testing.T) {
	tech := MustTech(cacti.Node130)
	shape := FlywheelShape()
	act := sampleActivity(1000, 870)
	withEC := act
	withEC.ECBlockReads = 500
	withEC.ECTagLookups = 20
	withEC.UpdateOps = 2000
	withEC.Checkpoints = 20
	base := Compute(act, shape, tech)
	ec := Compute(withEC, shape, tech)
	if ec.Breakdown.EC <= base.Breakdown.EC {
		t.Error("EC events not charged")
	}
	if ec.TotalPJ <= base.TotalPJ {
		t.Error("EC activity did not increase total energy")
	}
}

func TestBreakdownTotalConsistent(t *testing.T) {
	tech := MustTech(cacti.Node90)
	rep := Compute(sampleActivity(5000, 650), FlywheelShape(), tech)
	if got := rep.Breakdown.Total(); got != rep.TotalPJ {
		t.Errorf("breakdown total %v != report total %v", got, rep.TotalPJ)
	}
}

func TestFrontEndShareIsSubstantial(t *testing.T) {
	// The Flywheel savings story requires the front-end (fetch + decode +
	// rename + window + FE clock) to be a meaningful share of baseline
	// dynamic energy — the paper reports ~30% total energy savings when
	// bypassing it.
	tech := MustTech(cacti.Node130)
	act := sampleActivity(100_000, 870)
	rep := Compute(act, BaselineShape(), tech)
	b := rep.Breakdown
	fe := b.Fetch + b.Decode + b.Rename + b.Window +
		float64(act.FECycles)*Units(tech, BaselineShape()).ClockFEPerCycle
	dyn := rep.TotalPJ - b.Leakage
	share := fe / dyn
	if share < 0.25 || share > 0.55 {
		t.Errorf("front-end dynamic share = %.2f, want 0.25-0.55", share)
	}
}
