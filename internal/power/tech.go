// Package power implements the energy model of the evaluation: Wattch-style
// per-access dynamic energies for every pipeline structure, technology
// scaling of capacitance and supply voltage, a Butts/Sohi-style static
// leakage model using the paper's normalized per-device leakage currents
// (Table 2), and an Alpha-21264-style clock-grid model with one global grid
// plus one local grid per clock domain (§4).
//
// Absolute watts are not the point — the experiments only consume energy and
// power *relative to the baseline at the same node* — but the accounting
// structure matches the paper: when the Flywheel core replays traces from
// the Execution Cache, the front-end's dynamic energy (fetch, decode,
// rename, wake-up/select, and the front-end clock grid) disappears, paid
// for by EC reads, the Update stage, a larger register file, and the EC's
// extra leakage, which grows in importance at newer technology nodes.
package power

import (
	"fmt"

	"flywheel/internal/cacti"
)

// TechParams captures per-node electrical parameters (paper Table 2;
// the 0.25/0.18 µm rows are extrapolated for completeness).
type TechParams struct {
	Node cacti.Node
	// Vdd is the supply voltage in volts.
	Vdd float64
	// LeakNA is the normalized leakage current per effective device in
	// nanoamperes.
	LeakNA float64
	// CapScale is the structure capacitance relative to 0.13 µm.
	CapScale float64
}

// Tech returns the parameters for a supported node.
func Tech(n cacti.Node) (TechParams, error) {
	switch n {
	case cacti.Node250:
		return TechParams{n, 2.0, 2, 0.25 / 0.13}, nil
	case cacti.Node180:
		return TechParams{n, 1.6, 20, 0.18 / 0.13}, nil
	case cacti.Node130:
		return TechParams{n, 1.4, 80, 1.0}, nil
	case cacti.Node90:
		return TechParams{n, 1.2, 280, 0.09 / 0.13}, nil
	case cacti.Node60:
		return TechParams{n, 1.1, 280, 0.06 / 0.13}, nil
	default:
		return TechParams{}, fmt.Errorf("power: unsupported node %v", n)
	}
}

// MustTech is Tech for known-good nodes.
func MustTech(n cacti.Node) TechParams {
	t, err := Tech(n)
	if err != nil {
		panic(err)
	}
	return t
}

// DynScale returns the dynamic-energy scale factor relative to 0.13 µm:
// C(node)/C(0.13) * (Vdd/Vdd(0.13))^2.
func (t TechParams) DynScale() float64 {
	r := t.Vdd / 1.4
	return t.CapScale * r * r
}

// LeakagePowerW returns the static power of the given effective device
// count: N * I_leak * Vdd.
func (t TechParams) LeakagePowerW(effectiveDevices float64) float64 {
	return effectiveDevices * t.LeakNA * 1e-9 * t.Vdd
}
