package sample

import "math"

// meanVar is Welford's online mean/variance accumulator.
type meanVar struct {
	n    int
	mean float64
	m2   float64
}

func (v *meanVar) observe(x float64) {
	v.n++
	d := x - v.mean
	v.mean += d / float64(v.n)
	v.m2 += d * (x - v.mean)
}

// stderr is the standard error of the mean; zero until two observations
// exist.
func (v *meanVar) stderr() float64 {
	if v.n < 2 {
		return 0
	}
	return math.Sqrt(v.m2 / float64(v.n-1) / float64(v.n))
}

// Obs is one window's measured deltas.
type Obs struct {
	Insts    uint64
	Cycles   uint64
	TimePS   int64
	EnergyPJ float64
}

// Accumulator aggregates per-window observations into per-instruction
// rate estimates. Rates are accumulated per instruction (CPI rather than
// IPC) because the sampling unit is a fixed instruction quantum: the
// per-window per-instruction rates are i.i.d. draws whose mean estimates
// the whole-program rate, and the usual s/sqrt(n) standard error applies
// across windows.
type Accumulator struct {
	windows int
	insts   uint64
	cpi     meanVar // cycles per instruction
	tpi     meanVar // picoseconds per instruction
	epi     meanVar // picojoules per instruction
}

// Observe folds in one window. Empty windows are ignored.
func (a *Accumulator) Observe(o Obs) {
	if o.Insts == 0 {
		return
	}
	a.windows++
	a.insts += o.Insts
	n := float64(o.Insts)
	a.cpi.observe(float64(o.Cycles) / n)
	a.tpi.observe(float64(o.TimePS) / n)
	a.epi.observe(o.EnergyPJ / n)
}

// Windows returns the number of observed (non-empty) windows.
func (a *Accumulator) Windows() int { return a.windows }

// Estimate is the aggregated point estimate with per-metric standard
// errors.
type Estimate struct {
	Windows       int
	MeasuredInsts uint64

	CPI, TPI, EPI          float64 // per-instruction means
	CPIErr, TPIErr, EPIErr float64 // standard errors of the means
}

// Estimate returns the current aggregate.
func (a *Accumulator) Estimate() Estimate {
	return Estimate{
		Windows:       a.windows,
		MeasuredInsts: a.insts,
		CPI:           a.cpi.mean, CPIErr: a.cpi.stderr(),
		TPI: a.tpi.mean, TPIErr: a.tpi.stderr(),
		EPI: a.epi.mean, EPIErr: a.epi.stderr(),
	}
}

// RelCI95 converts a mean and its standard error into a relative 95%
// confidence half-interval (1.96 sigma over the mean).
func RelCI95(mean, stderr float64) float64 {
	if mean == 0 {
		return 0
	}
	return math.Abs(1.96 * stderr / mean)
}
