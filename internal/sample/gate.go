package sample

import (
	"flywheel/internal/emu"
	"flywheel/internal/pipe"
)

// Gate meters a shared instruction source into a core during sampled
// execution. Between windows the gate is closed: the core reads
// end-of-stream and drains, exactly as if the program had ended. Opening
// the gate with a budget admits the next window's records. One gate (and
// one core behind it) persists for the whole run, so microarchitectural
// state — caches, predictor, Execution Cache, rename pools — carries
// across windows instead of restarting cold.
type Gate struct {
	src       pipe.InstSource
	filler    pipe.Filler
	budget    uint64
	delivered uint64
}

// NewGate wraps src. The fast batched Fill path is used when src supports
// it.
func NewGate(src pipe.InstSource) *Gate {
	g := &Gate{src: src}
	if f, ok := src.(pipe.Filler); ok {
		g.filler = f
	}
	return g
}

// Open adds n records to the deliverable budget.
func (g *Gate) Open(n uint64) { g.budget += n }

// TakeDelivered returns the number of records delivered since the last
// call and resets the count; the sampled runner uses it to track the
// stream position (which can fall short of the budget when the program
// ends inside a window).
func (g *Gate) TakeDelivered() uint64 {
	d := g.delivered
	g.delivered = 0
	return d
}

// Next implements pipe.InstSource.
func (g *Gate) Next() (emu.Trace, bool) {
	if g.budget == 0 {
		return emu.Trace{}, false
	}
	tr, ok := g.src.Next()
	if ok {
		g.budget--
		g.delivered++
	}
	return tr, ok
}

// Fill implements pipe.Filler, truncating the batch to the open budget.
func (g *Gate) Fill(buf []emu.Trace) int {
	if g.budget == 0 {
		return 0
	}
	if uint64(len(buf)) > g.budget {
		buf = buf[:g.budget]
	}
	var n int
	if g.filler != nil {
		n = g.filler.Fill(buf)
	} else {
		for n < len(buf) {
			tr, ok := g.src.Next()
			if !ok {
				break
			}
			buf[n] = tr
			n++
		}
	}
	g.budget -= uint64(n)
	g.delivered += uint64(n)
	return n
}

// Skipper is the optional fast-skip capability of an instruction source
// (the trace cache's Reader implements it via chunk-indexed seek).
type Skipper interface {
	Skip(n uint64) uint64
}

// FastForward consumes up to n records from src, feeding each into the
// warmer (functional warming: state updates, no timing), and returns how
// many records were actually consumed. When src supports fast skipping and
// the gap is longer than the warming horizon, the excess beyond the last
// WarmHorizon records is skipped without decoding.
func FastForward(src pipe.InstSource, warm *pipe.Warmer, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	var done uint64
	if sk, ok := src.(Skipper); ok && n > WarmHorizon {
		done = sk.Skip(n - WarmHorizon)
	}
	var buf [512]emu.Trace
	filler, _ := src.(pipe.Filler)
	for done < n {
		want := n - done
		if filler != nil {
			b := buf[:]
			if uint64(len(b)) > want {
				b = b[:want]
			}
			m := filler.Fill(b)
			if m == 0 {
				break
			}
			for i := range b[:m] {
				warm.Observe(b[i])
			}
			done += uint64(m)
		} else {
			tr, ok := src.Next()
			if !ok {
				break
			}
			warm.Observe(tr)
			done++
		}
	}
	return done
}
