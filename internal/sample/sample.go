// Package sample implements SMARTS-style systematic sampling for the
// timing cores: short detailed windows simulated at full fidelity at a
// fixed period, with the regions between them fast-forwarded at
// near-emulator speed while the branch predictor and memory hierarchy are
// functionally warmed. Per-window observations aggregate into point
// estimates of IPC, time, and energy with a standard error computed across
// windows, so a sampled run reports not just a number but how much to
// trust it — the explorer uses that confidence interval to decide which
// cells still need an exact run.
package sample

import "fmt"

// Defaults and structural constants of the sampling schedule.
const (
	// DefaultPeriod is the systematic sampling period in instructions.
	// With the default window geometry it keeps ~14% of a 300k-instruction
	// stream in detailed simulation (bootstrap included) — a >=5x per-cell
	// wall-clock reduction on the cycle-accurate cores. Longer windows at a
	// longer period beat many short windows here: the Flywheel cores'
	// per-window estimates are dominated by Execution Cache warm-up bias,
	// not by sampling variance, so window length buys more accuracy than
	// window count.
	DefaultPeriod = 60_000

	// DefaultWindowInsts is the measured length of one detailed window.
	DefaultWindowInsts = 6_000

	// DefaultWarmupInsts is the detailed (timed but unmeasured) warm-up
	// run before each window's measurement interval: long enough to fill
	// the ROB, issue window, and store queues with realistic occupancy,
	// and to let the Flywheel cores re-enter trace replay after the
	// resume's build-mode restart.
	DefaultWarmupInsts = 2_000

	// TailInsts is the detailed run past each window's measurement mark.
	// It keeps the pipeline fed while the last measured instructions
	// drain toward retirement, so the end-of-window statistics snapshot
	// is taken on a machine still in steady state rather than one
	// starved by the closed instruction gate.
	TailInsts = 256

	// BootstrapInsts is the length of the detailed, unmeasured bootstrap
	// run at the stream origin before the periodic schedule starts. The
	// exact run builds its hot Execution Cache traces once, from a cold
	// pipeline, at the very start of the program; a sampled run replays
	// that genesis so its EC holds the same traces — with the same
	// boundaries and issue-unit structure — rather than variants built
	// mid-stream under different conditions.
	BootstrapInsts = 8_192

	// WarmHorizon is the functional-warming horizon: when a fast-forward
	// gap is longer than this, the excess is skipped outright (the trace
	// reader's chunk-indexed seek) and only the last WarmHorizon records
	// before the next window are warmed. The cores' caches and predictor
	// persist across windows, so the horizon only has to refresh recency
	// state, not rebuild it from cold; on the repo suite the estimates
	// are insensitive to the horizon down to well below this value while
	// fast-forward cost drops with it.
	WarmHorizon = 24_576
)

// Config parameterizes a sampled run. The zero value (Period == 0) means
// exact, unsampled execution.
type Config struct {
	// Period is the systematic sampling period: one detailed window
	// starts every Period instructions. Zero disables sampling.
	Period uint64

	// WindowInsts is the measured instruction count per detailed window.
	WindowInsts uint64

	// WarmupInsts is the detailed warm-up preceding each measurement.
	WarmupInsts uint64

	// Seed selects the phase offset of the first window within the first
	// period, so repeated studies can vary window placement without
	// changing the schedule's density.
	Seed uint64
}

// Enabled reports whether sampling is on.
func (c Config) Enabled() bool { return c.Period > 0 }

// Normalize canonicalizes the configuration: disabled configs collapse to
// the zero value (stray fields must not perturb exact-run cache keys),
// enabled ones get defaults filled in. Cache keys and schedules are built
// from the normalized form only.
func (c Config) Normalize() Config {
	if c.Period == 0 {
		return Config{}
	}
	if c.WindowInsts == 0 {
		c.WindowInsts = DefaultWindowInsts
	}
	if c.WarmupInsts == 0 {
		c.WarmupInsts = DefaultWarmupInsts
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Span is the total detailed-execution length of one window: warm-up,
// measurement, and drain tail.
func (c Config) Span() uint64 { return c.WarmupInsts + c.WindowInsts + TailInsts }

// Validate rejects schedules whose windows cannot fit their period.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if s := c.Span(); s >= c.Period {
		return fmt.Errorf("sample: window span %d (warmup %d + window %d + tail %d) must be smaller than period %d",
			s, c.WarmupInsts, c.WindowInsts, TailInsts, c.Period)
	}
	return nil
}

// Offset is the seeded phase offset of the first window's start within
// [0, Period-Span]: systematic sampling with a random phase, so the
// schedule cannot alias with a workload's own periodicity the same way
// for every seed.
func (c Config) Offset() uint64 {
	return splitmix64(c.Seed) % (c.Period - c.Span() + 1)
}

// splitmix64 is the standard 64-bit finalizing mixer; one application
// turns a counter-like seed into a well-distributed value.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
