package sim

import (
	"testing"

	"flywheel/internal/cacti"
)

// TestAllocsPerInstBudget pins the steady-state heap behavior of every
// timing core: a warm run (workload snapshot and dynamic trace already
// cached) must stay within a small allocation budget per simulated
// instruction. The flywheel and regalloc budgets cover the trace-creation
// and replay machinery, which recycles builders, block storage and
// traceRuns instead of allocating per trace; a regression here shows up
// long before it costs measurable wall-clock in cmd/bench.
func TestAllocsPerInstBudget(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("allocation budgets are measured without -short/-race")
	}
	cases := []struct {
		arch   Arch
		budget float64 // allocs per retired instruction
	}{
		{ArchBaseline, 0.05},
		{ArchFlywheel, 0.10},
		{ArchRegAlloc, 0.10},
	}
	for _, tc := range cases {
		cfg := RunConfig{
			Workload: "ijpeg", Arch: tc.arch, Node: cacti.Node130,
			FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: 40_000,
		}
		warm, err := Run(cfg) // prime the snapshot and trace caches
		if err != nil {
			t.Fatal(err)
		}
		if warm.Retired == 0 {
			t.Fatalf("%v: no instructions retired", tc.arch)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
		perInst := allocs / float64(warm.Retired)
		t.Logf("%v: %.0f allocs/run, %.4f allocs/inst", tc.arch, allocs, perInst)
		if perInst > tc.budget {
			t.Errorf("%v: %.4f allocs/inst exceeds the %.2f budget", tc.arch, perInst, tc.budget)
		}
	}
}
