package sim

// Differential test suite: the functional emulator is the golden model,
// and the timing cores are execution-driven off its trace stream — so a
// timing core that drops, duplicates or reorders architectural work ends
// its run with a machine state that differs from a pure emulator run of
// the same program. Seeded synthetic programs make the check cover corners
// the ten hand-written proxies never reach (FP-heavy mixes, unpredictable
// branch storms, register-reuse pressure), and the seeds make any failure
// exactly reproducible.

import (
	"math"
	"testing"

	"flywheel/internal/asm"
	"flywheel/internal/branch"
	"flywheel/internal/cacti"
	"flywheel/internal/core"
	"flywheel/internal/emu"
	"flywheel/internal/mem"
	"flywheel/internal/ooo"
	"flywheel/internal/workload/synth"
)

// differentialProfiles are the seeded programs under test: each stresses a
// different generator corner, all small enough to run to completion.
var differentialProfiles = []synth.Profile{
	{MemFootprintKB: 2, CodeFootprintKB: 1, Passes: 1, Seed: 1},
	{ILP: 1, BranchEntropy: 1, MemFootprintKB: 2, CodeFootprintKB: 1, Passes: 1, Seed: 2},
	{ILP: 6, FPMix: 1, MemFootprintKB: 2, CodeFootprintKB: 1, Passes: 1, Seed: 3},
	{ILP: 2, BranchEntropy: 0.5, FPMix: 0.5, RegReuse: 1, StrideFrac: 1, MemFootprintKB: 2, CodeFootprintKB: 1, Passes: 1, Seed: 4},
	{ILP: 4, BranchEntropy: 0.25, StrideFrac: 0.5, MemFootprintKB: 4, CodeFootprintKB: 2, Passes: 1, Seed: 5},
}

// goldenRun executes the program to completion on the pure emulator.
func goldenRun(t *testing.T, prog *asm.Program) *emu.Machine {
	t.Helper()
	m := emu.New(prog)
	if _, err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Fatal("golden run did not halt")
	}
	return m
}

// checkState compares a timing run's final architectural state and retired
// count against the golden machine.
func checkState(t *testing.T, label string, golden, m *emu.Machine, coreRetired uint64) {
	t.Helper()
	if !m.Halted {
		t.Errorf("%s: machine did not halt", label)
		return
	}
	if m.PC != golden.PC {
		t.Errorf("%s: final PC %#x, golden %#x", label, m.PC, golden.PC)
	}
	if m.Retired != golden.Retired {
		t.Errorf("%s: machine retired %d, golden %d", label, m.Retired, golden.Retired)
	}
	if coreRetired != golden.Retired {
		t.Errorf("%s: core counted %d retired, golden %d", label, coreRetired, golden.Retired)
	}
	for i := range m.IntRegs {
		if m.IntRegs[i] != golden.IntRegs[i] {
			t.Errorf("%s: r%d = %#x, golden %#x", label, i, m.IntRegs[i], golden.IntRegs[i])
		}
	}
	for i := range m.FPRegs {
		got, want := math.Float64bits(m.FPRegs[i]), math.Float64bits(golden.FPRegs[i])
		if got != want {
			t.Errorf("%s: f%d = %#x, golden %#x", label, i, got, want)
		}
	}
}

// TestDifferentialSynthetic runs every seeded synthetic program through
// the emulator and through all three timing cores, asserting identical
// final architectural state and retired-instruction counts.
func TestDifferentialSynthetic(t *testing.T) {
	period := cacti.BaselinePeriodPS(cacti.Node130)
	for _, p := range differentialProfiles {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			src, err := synth.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := asm.Assemble(p.Name()+".s", src)
			if err != nil {
				t.Fatal(err)
			}
			golden := goldenRun(t, prog)

			// Baseline superscalar core.
			m := emu.New(prog)
			c := ooo.New(baselineConfig(RunConfig{}, period), emu.NewStream(m, 0))
			stats, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			checkState(t, "baseline", golden, m, stats.Retired)

			// Flywheel core (with EC) and the RegAlloc-only configuration.
			for _, arch := range []Arch{ArchFlywheel, ArchRegAlloc} {
				m := emu.New(prog)
				cfg := RunConfig{Arch: arch, FEBoostPct: 50, BEBoostPct: 50}
				fc := core.New(flywheelConfig(cfg, period), emu.NewStream(m, 0))
				stats, err := fc.Run()
				if err != nil {
					t.Fatal(err)
				}
				checkState(t, arch.String(), golden, m, stats.Retired)
			}
		})
	}
}

// TestDifferentialFrontends runs every (direction predictor × prefetcher)
// combination over frontend-stressing synthetic programs on all three
// timing cores. The frontend is pure speculation machinery — predictors
// steer fetch, prefetchers move cache lines — so every combination must
// retire the exact architectural state the golden emulator run produces; a
// predictor that corrupts the retired stream or a prefetcher that observes
// (rather than merely warms) memory shows up here, not in a paper figure.
func TestDifferentialFrontends(t *testing.T) {
	period := cacti.BaselinePeriodPS(cacti.Node130)
	profiles := []synth.Profile{
		// Periodic branches exercise TAGE's long-history tables; the chase
		// and wide-stride knobs exercise the delta prefetcher's PC table.
		{ILP: 4, BranchPeriod: 16, StrideFrac: 1, MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: 6},
		{ILP: 2, ChaseFrac: 0.5, StrideFrac: 0.5, StrideBytes: 256, MemFootprintKB: 8, CodeFootprintKB: 1, Passes: 1, Seed: 7},
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			src, err := synth.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := asm.Assemble(p.Name()+".s", src)
			if err != nil {
				t.Fatal(err)
			}
			golden := goldenRun(t, prog)
			for _, pred := range branch.Directions() {
				for _, pf := range mem.Prefetchers() {
					cfg := RunConfig{Predictor: pred, Prefetcher: pf}
					label := pred + "/" + pf

					m := emu.New(prog)
					c := ooo.New(baselineConfig(cfg, period), emu.NewStream(m, 0))
					stats, err := c.Run()
					if err != nil {
						t.Fatal(err)
					}
					checkState(t, "baseline "+label, golden, m, stats.Retired)

					for _, arch := range []Arch{ArchFlywheel, ArchRegAlloc} {
						cfg := cfg
						cfg.Arch, cfg.FEBoostPct, cfg.BEBoostPct = arch, 50, 50
						m := emu.New(prog)
						fc := core.New(flywheelConfig(cfg, period), emu.NewStream(m, 0))
						stats, err := fc.Run()
						if err != nil {
							t.Fatal(err)
						}
						checkState(t, arch.String()+" "+label, golden, m, stats.Retired)
					}
				}
			}
		})
	}
}

// TestDifferentialProxyWorkloads extends the same check to two of the
// paper's hand-written proxies (instruction-bounded: the full kernels run
// hundreds of millions of instructions), pinning agreement between the
// emulator's count and the timing cores' on the real benchmark encodings.
func TestDifferentialProxyBudgets(t *testing.T) {
	const budget = 8_000
	for _, bench := range []string{"gcc", "equake"} {
		res, err := Run(RunConfig{Workload: bench, Arch: ArchFlywheel, FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: budget})
		if err != nil {
			t.Fatal(err)
		}
		if res.Retired < budget {
			t.Errorf("%s: flywheel retired %d, want >= %d", bench, res.Retired, budget)
		}
		base, err := Run(RunConfig{Workload: bench, Arch: ArchBaseline, MaxInstructions: budget})
		if err != nil {
			t.Fatal(err)
		}
		if base.Retired != res.Retired {
			t.Errorf("%s: baseline retired %d, flywheel %d — same stream, same budget", bench, base.Retired, res.Retired)
		}
	}
}
