package sim

import (
	"testing"

	"flywheel/internal/branch"
	"flywheel/internal/mem"
	"flywheel/internal/workload"
	"flywheel/internal/workload/synth"
)

func registerStress(t *testing.T) {
	t.Helper()
	for _, p := range synth.StressProfiles(7) {
		w, err := synth.Build(p)
		if err != nil {
			t.Fatalf("build %s: %v", p.Name(), err)
		}
		if err := workload.Register(w); err != nil {
			t.Fatalf("register %s: %v", p.Name(), err)
		}
	}
}

func runFrontend(t *testing.T, wl, pred, pf string) Result {
	t.Helper()
	r, err := Run(RunConfig{
		Workload:        wl,
		Arch:            ArchBaseline,
		MaxInstructions: 400_000,
		Predictor:       pred,
		Prefetcher:      pf,
	})
	if err != nil {
		t.Fatalf("run %s pred=%s pf=%s: %v", wl, pred, pf, err)
	}
	return r
}

// TestTAGEBeatsGShareOnPeriodicBranches is the predictor's reason to exist:
// the high-entropy-branch stress profile flips direction every 16 bodies —
// random noise to a 12-bit global history, a learnable position to TAGE's
// geometric histories.
func TestTAGEBeatsGShareOnPeriodicBranches(t *testing.T) {
	registerStress(t)
	wl := synth.HighEntropyBranch(7).Name()
	gs := runFrontend(t, wl, branch.DirGShare, mem.PFNone)
	tg := runFrontend(t, wl, branch.DirTAGE, mem.PFNone)
	if gs.CondBranches == 0 || tg.CondBranches == 0 {
		t.Fatalf("no conditional branches measured: gshare=%d tage=%d", gs.CondBranches, tg.CondBranches)
	}
	if tg.BranchAccuracy <= gs.BranchAccuracy {
		t.Fatalf("TAGE accuracy %.4f not above gshare %.4f on %s",
			tg.BranchAccuracy, gs.BranchAccuracy, wl)
	}
	t.Logf("accuracy: gshare %.4f, tage %.4f (mispredicts %d -> %d of %d)",
		gs.BranchAccuracy, tg.BranchAccuracy, gs.Mispredicts, tg.Mispredicts, tg.CondBranches)
}

// TestDeltaPrefetchLiftsStridedProfile is the prefetcher's reason to exist:
// the long-stride profile opens a fresh line on every access at a constant
// per-PC delta, so the delta prefetcher should convert demand L2 misses
// into hits and cut the average demand latency.
func TestDeltaPrefetchLiftsStridedProfile(t *testing.T) {
	registerStress(t)
	wl := synth.LongStrideFP(7).Name()
	off := runFrontend(t, wl, branch.DirGShare, mem.PFNone)
	on := runFrontend(t, wl, branch.DirGShare, mem.PFDelta)
	if on.PrefetchIssued == 0 {
		t.Fatalf("delta prefetcher issued nothing on %s", wl)
	}
	if on.AvgDataCycles >= off.AvgDataCycles {
		t.Fatalf("prefetching did not cut demand latency: %.3f cycles with delta vs %.3f without",
			on.AvgDataCycles, off.AvgDataCycles)
	}
	if on.DemandL2HitRate <= off.DemandL2HitRate {
		t.Fatalf("prefetching did not lift demand L2 hit rate: %.4f with delta vs %.4f without",
			on.DemandL2HitRate, off.DemandL2HitRate)
	}
	t.Logf("avg data cycles %.3f -> %.3f, L2 hit rate %.4f -> %.4f, accuracy %.3f coverage %.3f",
		off.AvgDataCycles, on.AvgDataCycles, off.DemandL2HitRate, on.DemandL2HitRate,
		on.PrefetchAccuracy, on.PrefetchCoverage)
}

// TestDeltaPrefetchInertOnPointerChase: dependent loads have no learnable
// stride, so the prefetcher must not tank accuracy-insensitive metrics —
// the chase profile is the negative control.
func TestDeltaPrefetchInertOnPointerChase(t *testing.T) {
	registerStress(t)
	wl := synth.PointerChase(7).Name()
	off := runFrontend(t, wl, branch.DirGShare, mem.PFNone)
	on := runFrontend(t, wl, branch.DirGShare, mem.PFDelta)
	// A pathological prefetcher would flood the L2 with useless lines and
	// evict the demand working set; allow noise but not a collapse.
	if off.AvgDataCycles > 0 && on.AvgDataCycles > off.AvgDataCycles*1.10 {
		t.Fatalf("prefetching hurt the chase profile: %.3f cycles with delta vs %.3f without",
			on.AvgDataCycles, off.AvgDataCycles)
	}
	t.Logf("chase: avg data cycles %.3f -> %.3f, issued %d useful %d",
		off.AvgDataCycles, on.AvgDataCycles, on.PrefetchIssued, on.PrefetchUseful)
}
